package hwsim

import (
	"math"
	"testing"

	"convmeter/internal/graph"
	"convmeter/internal/models"
)

func resnet18(t *testing.T, img int) *graph.Graph {
	t.Helper()
	g, err := models.Build("resnet18", img)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestForwardExactPositiveAndDeterministic(t *testing.T) {
	g := resnet18(t, 224)
	s := NewSimulator(A100(), 0, 1)
	a := s.ForwardExact(g, 8)
	b := s.ForwardExact(g, 8)
	if a <= 0 {
		t.Fatalf("forward time = %g", a)
	}
	if a != b {
		t.Fatal("ForwardExact must be deterministic")
	}
}

func TestForwardMonotonicInBatch(t *testing.T) {
	g := resnet18(t, 224)
	s := NewSimulator(A100(), 0, 1)
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		cur := s.ForwardExact(g, b)
		if cur <= prev {
			t.Fatalf("forward time not monotonic at batch %d: %g <= %g", b, cur, prev)
		}
		prev = cur
	}
}

func TestForwardSublinearAtSmallBatch(t *testing.T) {
	// Per-kernel overhead means doubling a tiny batch must not double the
	// time (the A100 underutilisation effect the paper observes for small
	// batches), while at large batches scaling approaches linear.
	g := resnet18(t, 224)
	s := NewSimulator(A100(), 0, 1)
	t1 := s.ForwardExact(g, 1)
	t2 := s.ForwardExact(g, 2)
	if ratio := t2 / t1; ratio >= 2.0 {
		t.Fatalf("small-batch scaling ratio = %g, want < 2", ratio)
	}
	t256 := s.ForwardExact(g, 256)
	t512 := s.ForwardExact(g, 512)
	if ratio := t512 / t256; ratio < 1.8 {
		t.Fatalf("large-batch scaling ratio = %g, want ≈2", ratio)
	}
}

func TestBackwardSlowerThanForward(t *testing.T) {
	g := resnet18(t, 224)
	for _, dev := range []Device{A100(), XeonCore()} {
		s := NewSimulator(dev, 0, 1)
		fwd := s.ForwardExact(g, 32)
		bwd := s.BackwardExact(g, 32)
		if bwd <= fwd {
			t.Fatalf("%s: backward (%g) should exceed forward (%g)", dev.Name, bwd, fwd)
		}
		if bwd > 3*fwd {
			t.Fatalf("%s: backward/forward ratio %g implausible", dev.Name, bwd/fwd)
		}
	}
}

func TestCPUMuchSlowerThanGPU(t *testing.T) {
	g := resnet18(t, 224)
	gpu := NewSimulator(A100(), 0, 1)
	cpu := NewSimulator(XeonCore(), 0, 1)
	tg := gpu.ForwardExact(g, 16)
	tc := cpu.ForwardExact(g, 16)
	if tc < 20*tg {
		t.Fatalf("single Xeon core (%g) should be far slower than A100 (%g)", tc, tg)
	}
}

func TestNoiseIsMultiplicativeAndSeeded(t *testing.T) {
	g := resnet18(t, 224)
	exact := NewSimulator(A100(), 0, 7).ForwardExact(g, 8)
	s1 := NewSimulator(A100(), 0.05, 7)
	s2 := NewSimulator(A100(), 0.05, 7)
	var prevDiffer bool
	for i := 0; i < 10; i++ {
		a := s1.Forward(g, 8)
		b := s2.Forward(g, 8)
		if a != b {
			t.Fatal("same seed must reproduce the same noise sequence")
		}
		if a <= 0 {
			t.Fatal("noisy time must stay positive")
		}
		if ratio := a / exact; ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("noise ratio %g outside plausible band", ratio)
		}
		if a != exact {
			prevDiffer = true
		}
	}
	if !prevDiffer {
		t.Fatal("noise never perturbed the measurement")
	}
}

func TestNegativeNoisePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative sigma")
		}
	}()
	NewSimulator(A100(), -0.1, 1)
}

func TestBackwardLayerTimesOrderAndSum(t *testing.T) {
	g := resnet18(t, 224)
	s := NewSimulator(A100(), 0, 1)
	times := s.BackwardLayerTimes(g, 8)
	if len(times) != len(g.Nodes) {
		t.Fatalf("got %d layer times, want %d", len(times), len(g.Nodes))
	}
	sum := 0.0
	for _, v := range times {
		if v < 0 {
			t.Fatal("negative layer time")
		}
		sum += v
	}
	if total := s.BackwardExact(g, 8); math.Abs(sum-total)/total > 1e-9 {
		t.Fatalf("layer times sum %g != total %g", sum, total)
	}
	// Reverse order: the last entry corresponds to the input node (zero).
	if times[len(times)-1] != 0 {
		t.Fatal("input node backward time should be zero and last in reverse order")
	}
}

func TestMemoryFeasibility(t *testing.T) {
	g := resnet18(t, 224)
	s := NewSimulator(A100(), 0, 1)
	if !s.Fits(g, 1, false) {
		t.Fatal("batch 1 inference must fit in 80 GB")
	}
	if !s.Fits(g, 256, true) {
		t.Fatal("batch 256 training of ResNet-18 must fit in 80 GB")
	}
	if s.Fits(g, 1<<20, true) {
		t.Fatal("absurd batch must not fit")
	}
	if MemoryBytes(g, 2, true) <= MemoryBytes(g, 1, true) {
		t.Fatal("training memory must grow with batch")
	}
	if MemoryBytes(g, 1, true) <= MemoryBytes(g, 1, false) {
		t.Fatal("training must need more memory than inference")
	}
}

func TestMemoryBoundVsComputeBoundModels(t *testing.T) {
	// MobileNet-V3 (depthwise heavy, low arithmetic intensity) must run at
	// far lower achieved FLOP/s than VGG-16 (dense 3x3 convs) on the A100
	// — the effect that breaks FLOPs-only prediction (paper Fig. 2).
	s := NewSimulator(A100(), 0, 1)
	mb, err := models.Build("mobilenet_v3_large", 224)
	if err != nil {
		t.Fatal(err)
	}
	vgg, err := models.Build("vgg16", 224)
	if err != nil {
		t.Fatal(err)
	}
	achieved := func(g *graph.Graph) float64 {
		return float64(g.TotalFLOPs()) * 64 / s.ForwardExact(g, 64)
	}
	if am, av := achieved(mb), achieved(vgg); am >= av/3 {
		t.Fatalf("mobilenet achieved %g FLOP/s should be well below vgg %g", am, av)
	}
}

func TestDeviceSpeedOrdering(t *testing.T) {
	// The device hierarchy must hold: A100 > Jetson-class > single Xeon
	// core > Pi-class for a ConvNet forward pass.
	g := resnet18(t, 128)
	times := map[string]float64{}
	for _, dev := range []Device{A100(), JetsonLike(), XeonCore(), PiLike()} {
		times[dev.Name] = NewSimulator(dev, 0, 1).ForwardExact(g, 8)
	}
	order := []string{"a100", "jetson", "xeon", "pi"}
	for i := 1; i < len(order); i++ {
		if times[order[i]] <= times[order[i-1]] {
			t.Fatalf("%s (%g) should be slower than %s (%g)",
				order[i], times[order[i]], order[i-1], times[order[i-1]])
		}
	}
}

func TestEdgeMemoryLimits(t *testing.T) {
	g := resnet18(t, 224)
	pi := NewSimulator(PiLike(), 0, 1)
	a100 := NewSimulator(A100(), 0, 1)
	// A batch that fits in 80 GB must not fit in 8 GB.
	const batch = 2048
	if !a100.Fits(g, batch, false) {
		t.Fatal("batch should fit the A100")
	}
	if pi.Fits(g, batch, false) {
		t.Fatal("batch should not fit the Pi-class device")
	}
}

func TestForwardRangeSumsToTotal(t *testing.T) {
	g := resnet18(t, 128)
	s := NewSimulator(A100(), 0, 1)
	total := s.ForwardExact(g, 8)
	for _, cut := range []int{1, len(g.Nodes) / 3, len(g.Nodes) / 2, len(g.Nodes) - 1} {
		a := s.ForwardRangeExact(g, 0, cut, 8)
		b := s.ForwardRangeExact(g, cut, len(g.Nodes), 8)
		if math.Abs(a+b-total)/total > 1e-12 {
			t.Fatalf("cut %d: ranges sum to %g, total %g", cut, a+b, total)
		}
	}
	// Out-of-range bounds are clamped, not panicking.
	if got := s.ForwardRangeExact(g, -5, len(g.Nodes)+5, 8); math.Abs(got-total)/total > 1e-12 {
		t.Fatalf("clamped range = %g, want %g", got, total)
	}
}

func TestEffFallback(t *testing.T) {
	d := Device{PeakFLOPS: 1, MemBW: 1, DefaultEfficiency: 0.5}
	if d.effFor("conv2d") != 0.5 {
		t.Fatal("fallback efficiency not applied")
	}
	d2 := Device{PeakFLOPS: 1, MemBW: 1}
	if d2.effFor("anything") != 1 {
		t.Fatal("zero-value device should default to efficiency 1")
	}
}
