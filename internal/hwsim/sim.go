package hwsim

import (
	"fmt"
	"math"
	"math/rand"

	"convmeter/internal/graph"
)

// Simulator executes graphs on a simulated device, producing "measured"
// runtimes. A non-zero NoiseSigma applies multiplicative log-normal noise
// per measurement, driven by the seeded generator, so whole benchmark
// sweeps are reproducible.
type Simulator struct {
	Dev        Device
	NoiseSigma float64
	rng        *rand.Rand
}

// NewSimulator returns a simulator for dev with the given measurement
// noise level (e.g. 0.05 for 5 % run-to-run variation) and RNG seed.
func NewSimulator(dev Device, noiseSigma float64, seed int64) *Simulator {
	if noiseSigma < 0 {
		panic(fmt.Sprintf("hwsim: negative noise sigma %g", noiseSigma))
	}
	return &Simulator{Dev: dev, NoiseSigma: noiseSigma, rng: rand.New(rand.NewSource(seed))}
}

// noisy applies one multiplicative log-normal noise draw.
func (s *Simulator) noisy(t float64) float64 {
	if s.NoiseSigma == 0 {
		return t
	}
	return t * math.Exp(s.rng.NormFloat64()*s.NoiseSigma)
}

// groupEff scales compute efficiency for grouped convolutions: with few
// channels per group the kernel cannot fill wide SIMD/tensor units, so
// efficiency degrades from 1 (dense-like, ≥16 channels per group) down to
// the device's depthwise floor (1 channel per group).
func groupEff(dev Device, conv *graph.Conv2dOp) float64 {
	if conv.Groups <= 1 {
		return 1
	}
	cpg := float64(conv.InC) / float64(conv.Groups)
	f := cpg / 16
	if f > 1 {
		f = 1
	}
	if f < dev.DepthwisePenalty {
		f = dev.DepthwisePenalty
	}
	return f
}

// nodeForwardTime is the roofline cost of one node at the given batch.
func nodeForwardTime(dev Device, g *graph.Graph, i int, batch int) float64 {
	n := g.Nodes[i]
	kind := n.Op.Kind()
	if kind == "input" {
		return 0
	}
	b := float64(batch)
	flops := float64(g.NodeFLOPs(i)) * b
	eff := dev.effFor(kind)
	if conv, ok := n.Op.(*graph.Conv2dOp); ok {
		eff *= groupEff(dev, conv)
	}
	compute := flops / (dev.PeakFLOPS * eff)
	bytes := (float64(g.NodeInputElems(i))*b + float64(n.Out.Elems())*b + float64(n.Op.Params())) * BytesPerElem
	mem := bytes / dev.MemBW
	t := compute
	if mem > t {
		t = mem
	}
	return t + dev.KernelOverhead
}

// nodeBackwardTime is the roofline cost of one node's backward pass.
// Parameterised layers compute two gradient products (w.r.t. inputs and
// w.r.t. weights) for ≈2× the forward FLOPs, re-read saved activations and
// write gradient tensors for ≈2× the forward traffic plus one weight-
// gradient write, and backward kernels dispatch with the same overhead.
func nodeBackwardTime(dev Device, g *graph.Graph, i int, batch int) float64 {
	n := g.Nodes[i]
	kind := n.Op.Kind()
	if kind == "input" {
		return 0
	}
	b := float64(batch)
	params := float64(n.Op.Params())
	flopsMult := 1.0
	if params > 0 {
		flopsMult = 2.0
	}
	flops := float64(g.NodeFLOPs(i)) * b * flopsMult
	eff := dev.effFor(kind)
	if conv, ok := n.Op.(*graph.Conv2dOp); ok {
		eff *= groupEff(dev, conv)
	}
	compute := flops / (dev.PeakFLOPS * eff)
	bytes := (2*(float64(g.NodeInputElems(i))+float64(n.Out.Elems()))*b + 2*params) * BytesPerElem
	mem := bytes / dev.MemBW
	t := compute
	if mem > t {
		t = mem
	}
	return t + dev.KernelOverhead
}

// ForwardExact returns the noise-free forward (inference) time in seconds
// for the whole graph at the given batch size.
func (s *Simulator) ForwardExact(g *graph.Graph, batch int) float64 {
	total := 0.0
	for i := range g.Nodes {
		total += nodeForwardTime(s.Dev, g, i, batch)
	}
	return total
}

// Forward returns a noisy forward-pass measurement.
func (s *Simulator) Forward(g *graph.Graph, batch int) float64 {
	return s.noisy(s.ForwardExact(g, batch))
}

// ForwardRangeExact returns the noise-free forward time of the node range
// [from, to) — the cost of one pipeline-parallel stage (nodes are in
// topological order, so a contiguous range is a valid stage).
func (s *Simulator) ForwardRangeExact(g *graph.Graph, from, to, batch int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(g.Nodes) {
		to = len(g.Nodes)
	}
	total := 0.0
	for i := from; i < to; i++ {
		total += nodeForwardTime(s.Dev, g, i, batch)
	}
	return total
}

// BackwardExact returns the noise-free backward-pass compute time.
func (s *Simulator) BackwardExact(g *graph.Graph, batch int) float64 {
	total := 0.0
	for i := range g.Nodes {
		total += nodeBackwardTime(s.Dev, g, i, batch)
	}
	return total
}

// Backward returns a noisy backward-pass measurement.
func (s *Simulator) Backward(g *graph.Graph, batch int) float64 {
	return s.noisy(s.BackwardExact(g, batch))
}

// BackwardLayerTimes returns per-node backward times in *reverse
// execution order* (last graph node first), which is the order gradients
// become available for synchronisation. Used by the distributed-training
// overlap timeline.
func (s *Simulator) BackwardLayerTimes(g *graph.Graph, batch int) []float64 {
	out := make([]float64, 0, len(g.Nodes))
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		out = append(out, nodeBackwardTime(s.Dev, g, i, batch))
	}
	return out
}

// MemoryBytes estimates the device memory footprint of running the graph
// at the given batch size. Inference holds weights plus the two largest
// activation tensors; training additionally stores every activation for
// the backward pass, gradients, and two Adam optimizer states.
func MemoryBytes(g *graph.Graph, batch int, training bool) float64 {
	b := float64(batch)
	params := float64(g.TotalParams())
	var actSum, actMax float64
	for _, n := range g.Nodes {
		e := float64(n.Out.Elems()) * b
		actSum += e
		if e > actMax {
			actMax = e
		}
	}
	if training {
		// weights + gradients + 2 optimizer states + stored activations
		return (4*params + actSum) * BytesPerElem
	}
	return (params + 2*actMax) * BytesPerElem
}

// Fits reports whether the graph at the given batch size fits into the
// device memory (the benchmark sweep feasibility rule).
func (s *Simulator) Fits(g *graph.Graph, batch int, training bool) bool {
	return MemoryBytes(g, batch, training) <= s.Dev.MemBytes
}
