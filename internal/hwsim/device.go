// Package hwsim is the hardware execution simulator that stands in for
// the paper's measurement testbed (Intel Xeon Gold 5318Y CPUs and NVIDIA
// A100-80GB GPUs running PyTorch).
//
// Per layer it charges a roofline cost — the maximum of compute time
// (FLOPs over sustained throughput) and memory time (tensor plus weight
// traffic over bandwidth) — plus a fixed per-kernel dispatch overhead,
// and sums over the graph. Seeded log-normal noise models run-to-run
// measurement variation. The resulting "measured" runtimes have exactly
// the nonlinear structure that makes FLOPs-only prediction fail and the
// paper's combined FLOPs+Inputs+Outputs regression succeed, while
// remaining only *approximately* linear — so the fitted ConvMeter model
// exhibits realistic (10–30 %) error bands rather than an artificial
// perfect fit.
package hwsim

// BytesPerElem is the tensor element width (fp32 everywhere, matching the
// paper's PyTorch defaults).
const BytesPerElem = 4.0

// Device is a simulated processor profile.
type Device struct {
	Name string
	// PeakFLOPS is the sustained floating-point throughput in FLOP/s for
	// dense convolution-like kernels at efficiency 1.0.
	PeakFLOPS float64
	// MemBW is the sustained memory bandwidth in bytes/s.
	MemBW float64
	// KernelOverhead is the fixed per-operation dispatch cost in seconds
	// (kernel launch on GPUs, loop/dispatch overhead on CPUs).
	KernelOverhead float64
	// MemBytes is the device memory capacity, used for batch-size
	// feasibility checks (the paper sweeps "as long as the available
	// memory on the target system allows").
	MemBytes float64
	// Efficiency maps op kinds to the fraction of PeakFLOPS they sustain;
	// kinds not present fall back to DefaultEfficiency. Convolutions run
	// near peak, elementwise ops are bandwidth-bound anyway, grouped and
	// depthwise convolutions achieve poor arithmetic utilisation.
	Efficiency map[string]float64
	// DefaultEfficiency is the fallback compute efficiency.
	DefaultEfficiency float64
	// DepthwisePenalty additionally scales efficiency for grouped
	// convolutions (groups > 1), which map poorly onto wide SIMD/tensor
	// units.
	DepthwisePenalty float64
}

// effFor returns the compute efficiency for an op kind.
func (d Device) effFor(kind string) float64 {
	if e, ok := d.Efficiency[kind]; ok {
		return e
	}
	if d.DefaultEfficiency > 0 {
		return d.DefaultEfficiency
	}
	return 1
}

// A100 returns an NVIDIA A100-80GB-like profile. Throughput numbers are
// calibrated to the magnitude of real A100 fp32/TF32 kernels: dense
// convolutions sustain tens of TFLOP/s via tensor cores, HBM2e delivers
// ≈2 TB/s, and kernel launches cost a few microseconds.
func A100() Device {
	return Device{
		Name:           "a100",
		PeakFLOPS:      60e12,
		MemBW:          1.8e12,
		KernelOverhead: 4e-6,
		MemBytes:       80e9,
		Efficiency: map[string]float64{
			"conv2d":       0.75,
			"linear":       0.55,
			"token_linear": 0.60,
			"attention":    0.35,
			"batchnorm":    0.05,
			"layernorm":    0.05,
		},
		DefaultEfficiency: 0.05,
		DepthwisePenalty:  0.12,
	}
}

// JetsonLike returns an embedded-GPU profile in the class of an NVIDIA
// Jetson Orin module — the "edge processors with limited resources" the
// paper names as future work: ~5 TFLOP/s sustained, ~100 GB/s LPDDR5
// bandwidth, higher relative launch overhead, 32 GB of shared memory.
func JetsonLike() Device {
	return Device{
		Name:           "jetson",
		PeakFLOPS:      5e12,
		MemBW:          1.0e11,
		KernelOverhead: 8e-6,
		MemBytes:       32e9,
		Efficiency: map[string]float64{
			"conv2d":       0.65,
			"linear":       0.50,
			"token_linear": 0.55,
			"attention":    0.30,
			"batchnorm":    0.05,
			"layernorm":    0.05,
		},
		DefaultEfficiency: 0.05,
		DepthwisePenalty:  0.15,
	}
}

// PiLike returns a small-ARM-core profile in the class of a Raspberry Pi
// 4 (Cortex-A72, NEON): ~10 GFLOP/s sustained on one core, ~3 GB/s of
// memory bandwidth, 8 GB of RAM.
func PiLike() Device {
	return Device{
		Name:           "pi",
		PeakFLOPS:      1.0e10,
		MemBW:          3.0e9,
		KernelOverhead: 2e-6,
		MemBytes:       8e9,
		Efficiency: map[string]float64{
			"conv2d":       0.60,
			"linear":       0.55,
			"token_linear": 0.55,
			"attention":    0.35,
			"batchnorm":    0.20,
			"layernorm":    0.20,
		},
		DefaultEfficiency: 0.20,
		DepthwisePenalty:  0.50,
	}
}

// XeonCore returns a single-core Intel Xeon Gold 5318Y-like profile (the
// paper runs CPU inference on one core): ~100 GFLOP/s AVX-512 fp32 peak
// with realistic GEMM efficiency and ~20 GB/s of per-core memory
// bandwidth.
func XeonCore() Device {
	return Device{
		Name:           "xeon",
		PeakFLOPS:      1.1e11,
		MemBW:          2.0e10,
		KernelOverhead: 5e-7,
		MemBytes:       256e9,
		Efficiency: map[string]float64{
			"conv2d":       0.70,
			"linear":       0.60,
			"token_linear": 0.65,
			"attention":    0.40,
			"batchnorm":    0.15,
			"layernorm":    0.15,
		},
		DefaultEfficiency: 0.15,
		DepthwisePenalty:  0.35,
	}
}
