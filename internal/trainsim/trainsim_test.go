package trainsim

import (
	"math"
	"testing"

	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
)

func newSim(t *testing.T, noise, commNoise float64) *Simulator {
	t.Helper()
	s, err := New(Config{
		Device:         hwsim.A100(),
		Fabric:         netsim.Cluster(),
		NoiseSigma:     noise,
		CommNoiseSigma: commNoise,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func build(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := models.Build(name, 128)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainStepPhasesSumToIter(t *testing.T) {
	s := newSim(t, 0, 0)
	g := build(t, "resnet50")
	p, err := s.TrainStepExact(g, 32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fwd <= 0 || p.Bwd <= 0 || p.Grad <= 0 {
		t.Fatalf("non-positive phase: %+v", p)
	}
	if math.Abs(p.Iter-(p.Fwd+p.Bwd+p.Grad)) > 1e-12 {
		t.Fatalf("Iter %g != sum of phases", p.Iter)
	}
	if p.Bwd <= p.Fwd {
		t.Fatal("backward should exceed forward")
	}
}

func TestSingleDeviceGradIsOptimizerOnly(t *testing.T) {
	// With one device there is no ring to traverse; grad time is the
	// optimizer pass plus per-bucket overheads, far below compute.
	s := newSim(t, 0, 0)
	g := build(t, "resnet50")
	p, err := s.TrainStepExact(g, 32, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Grad >= p.Bwd/2 {
		t.Fatalf("single-device grad %g implausibly large vs bwd %g", p.Grad, p.Bwd)
	}
}

func TestGradGrowsWithNodes(t *testing.T) {
	s := newSim(t, 0, 0)
	g := build(t, "resnet50")
	prev := -1.0
	for _, nodes := range []int{1, 2, 4, 8} {
		p, err := s.TrainStepExact(g, 16, nodes*4, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if nodes > 1 && p.Grad <= prev {
			t.Fatalf("grad should grow with nodes at %d: %g <= %g", nodes, p.Grad, prev)
		}
		prev = p.Grad
	}
}

func TestFwdBwdIndependentOfNodes(t *testing.T) {
	// Compute phases depend only on the per-device batch.
	s := newSim(t, 0, 0)
	g := build(t, "resnet18")
	p1, err := s.TrainStepExact(g, 32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.TrainStepExact(g, 32, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fwd != p2.Fwd || p1.Bwd != p2.Bwd {
		t.Fatal("fwd/bwd must not depend on cluster size at fixed per-device batch")
	}
}

func TestLargeBatchHidesCommunication(t *testing.T) {
	// The paper: communication overhead is relatively smaller for larger
	// per-device batches, so grad share of the step shrinks.
	s := newSim(t, 0, 0)
	g := build(t, "resnet50")
	small, err := s.TrainStepExact(g, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.TrainStepExact(g, 128, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.Grad/small.Iter <= large.Grad/large.Iter {
		t.Fatalf("grad share should shrink with batch: small %g, large %g",
			small.Grad/small.Iter, large.Grad/large.Iter)
	}
}

func TestAlexNetCommunicationHeavy(t *testing.T) {
	// AlexNet has few FLOPs but 61 M parameters: in multi-node training
	// its gradient phase must dominate far more than ResNet-50's — the
	// cause of its early scaling saturation in Fig. 8.
	s := newSim(t, 0, 0)
	alex := build(t, "alexnet")
	rn := build(t, "resnet50")
	pa, err := s.TrainStepExact(alex, 64, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.TrainStepExact(rn, 64, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Grad/pa.Iter <= pr.Grad/pr.Iter {
		t.Fatalf("alexnet grad share %g should exceed resnet50 %g",
			pa.Grad/pa.Iter, pr.Grad/pr.Iter)
	}
}

func TestTrainStepErrors(t *testing.T) {
	s := newSim(t, 0, 0)
	g := build(t, "resnet18")
	cases := []struct {
		name                  string
		batch, devices, nodes int
	}{
		{"zero batch", 0, 1, 1},
		{"zero devices", 8, 0, 1},
		{"zero nodes", 8, 4, 0},
		{"uneven split", 8, 6, 4},
		{"over capacity", 8, 16, 2},
	}
	for _, c := range cases {
		if _, err := s.TrainStepExact(g, c.batch, c.devices, c.nodes); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Device: hwsim.A100(), Fabric: netsim.Fabric{}}); err == nil {
		t.Fatal("invalid fabric must be rejected")
	}
	if _, err := New(Config{Device: hwsim.A100(), Fabric: netsim.Cluster(), NoiseSigma: -1}); err == nil {
		t.Fatal("negative noise must be rejected")
	}
	if _, err := New(Config{Device: hwsim.A100(), Fabric: netsim.Cluster(), FusionBytes: -5}); err == nil {
		t.Fatal("negative fusion buffer must be rejected")
	}
}

func TestNoiseSeededAndScoped(t *testing.T) {
	g := build(t, "resnet18")
	a := newSim(t, 0.05, 0.15)
	b := newSim(t, 0.05, 0.15)
	pa, err := a.TrainStep(g, 16, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.TrainStep(g, 16, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("same seed must reproduce measurements")
	}
	exact, _ := a.TrainStepExact(g, 16, 8, 2)
	if pa.Fwd == exact.Fwd && pa.Bwd == exact.Bwd && pa.Grad == exact.Grad {
		t.Fatal("noise should perturb the phases")
	}
	if math.Abs(pa.Iter-(pa.Fwd+pa.Bwd+pa.Grad)) > 1e-12 {
		t.Fatal("noisy Iter must remain the sum of noisy phases")
	}
}

func TestEpochTime(t *testing.T) {
	// ImageNet-scale: 1.28 M images, batch 64 on 8 devices → 2500 steps.
	got := EpochTime(0.1, 1280000, 64, 8)
	if math.Abs(got-250) > 1e-9 {
		t.Fatalf("EpochTime = %g, want 250", got)
	}
}

func TestThroughput(t *testing.T) {
	p := Phases{Iter: 0.5}
	if got := Throughput(p, 64, 8); got != 1024 {
		t.Fatalf("Throughput = %g, want 1024", got)
	}
	if Throughput(Phases{}, 64, 8) != 0 {
		t.Fatal("zero iter must yield zero throughput")
	}
}

func TestThroughputScalingShape(t *testing.T) {
	// Weak scaling must increase total throughput with more nodes but at
	// diminishing per-node efficiency.
	s := newSim(t, 0, 0)
	g := build(t, "resnet50")
	var tput []float64
	for _, nodes := range []int{1, 2, 4, 8} {
		p, err := s.TrainStepExact(g, 64, nodes*4, nodes)
		if err != nil {
			t.Fatal(err)
		}
		tput = append(tput, Throughput(p, 64, nodes*4))
	}
	for i := 1; i < len(tput); i++ {
		if tput[i] <= tput[i-1] {
			t.Fatalf("throughput should still grow at step %d: %v", i, tput)
		}
	}
	// Efficiency at 8 nodes must be below 100% of linear scaling.
	if eff := tput[3] / (tput[0] * 8); eff >= 1.0 {
		t.Fatalf("8-node efficiency = %g, want < 1", eff)
	}
}

func TestFusionBufferAblation(t *testing.T) {
	// A tiny fusion buffer means many small all-reduces (per-tensor
	// overhead dominates); a huge buffer means one big late all-reduce
	// (no overlap). Horovod's 64 MiB default should beat the tiny buffer.
	g := build(t, "resnet50")
	mk := func(fusion float64) Phases {
		s, err := New(Config{Device: hwsim.A100(), Fabric: netsim.Cluster(), FusionBytes: fusion, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.TrainStepExact(g, 32, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	tiny := mk(1 << 10)
	def := mk(DefaultFusionBytes)
	if def.Grad >= tiny.Grad {
		t.Fatalf("default fusion (%g) should beat 1 KiB buckets (%g)", def.Grad, tiny.Grad)
	}
}

func TestFitsDelegates(t *testing.T) {
	s := newSim(t, 0, 0)
	g := build(t, "resnet18")
	if !s.Fits(g, 8) {
		t.Fatal("small batch must fit")
	}
	if s.Fits(g, 1<<22) {
		t.Fatal("absurd batch must not fit")
	}
}
