// Package trainsim simulates full data-parallel training steps by
// combining the hardware execution model (hwsim) with the communication
// model (netsim): forward pass, backward pass, Horovod-style fused
// gradient all-reduce overlapped with the backward pass, and the Adam
// optimizer update. It produces the per-phase "measurements" the paper's
// training-time model is fitted against (Figures 5 and 7, Table 3).
package trainsim

import (
	"fmt"
	"math"
	"math/rand"

	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/netsim"
)

// DefaultFusionBytes is Horovod's default tensor-fusion buffer (64 MiB).
const DefaultFusionBytes = 64 << 20

// PerTensorFrameworkOverhead is the per-parameter-tensor cost of the
// framework's gradient bookkeeping during the update phase: Horovod's
// per-layer gradient hooks plus the optimizer's per-tensor kernel
// launches. It makes the single-device gradient phase scale with the
// layer count L — the structure the paper's T_grad = c1·L model relies
// on.
const PerTensorFrameworkOverhead = 1.8e-5

// Config assembles a training simulator.
type Config struct {
	Device hwsim.Device
	Fabric netsim.Fabric
	// FusionBytes is the gradient fusion buffer size; 0 selects
	// DefaultFusionBytes.
	FusionBytes float64
	// NoiseSigma is the log-normal measurement noise on compute phases.
	NoiseSigma float64
	// CommNoiseSigma is the (typically larger) noise on the gradient
	// phase when networking is involved — the paper observes much more
	// variance on multi-node measurements (§4.2.1).
	CommNoiseSigma float64
	Seed           int64
}

// Phases is the decomposition of one training step, in seconds,
// mirroring the paper's T_iter = T_fwd + T_bwd + T_grad.
type Phases struct {
	Fwd  float64 // forward pass
	Bwd  float64 // backward pass compute
	Grad float64 // exposed gradient synchronisation + optimizer update
	Iter float64 // total step time
}

// Simulator produces training-step measurements.
type Simulator struct {
	cfg Config
	hw  *hwsim.Simulator
	rng *rand.Rand
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.FusionBytes == 0 {
		cfg.FusionBytes = DefaultFusionBytes
	}
	if cfg.FusionBytes < 0 {
		return nil, fmt.Errorf("trainsim: negative fusion buffer %g", cfg.FusionBytes)
	}
	if cfg.NoiseSigma < 0 || cfg.CommNoiseSigma < 0 {
		return nil, fmt.Errorf("trainsim: negative noise sigma")
	}
	if err := cfg.Fabric.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{
		cfg: cfg,
		hw:  hwsim.NewSimulator(cfg.Device, 0, cfg.Seed+1),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Hardware exposes the underlying (noise-free) hardware simulator.
func (s *Simulator) Hardware() *hwsim.Simulator { return s.hw }

// checkTopology validates a device/node combination against the fabric.
func (s *Simulator) checkTopology(devices, nodes int) error {
	if devices <= 0 || nodes <= 0 {
		return fmt.Errorf("trainsim: devices=%d nodes=%d", devices, nodes)
	}
	if devices%nodes != 0 {
		return fmt.Errorf("trainsim: %d devices do not divide evenly over %d nodes", devices, nodes)
	}
	if devices/nodes > s.cfg.Fabric.GPUsPerNode {
		return fmt.Errorf("trainsim: %d GPUs per node exceeds fabric capacity %d",
			devices/nodes, s.cfg.Fabric.GPUsPerNode)
	}
	return nil
}

// gradientBuckets replays the backward pass in reverse layer order and
// groups parameter gradients into fusion-buffer-sized buckets, each
// stamped with the backward-pass time at which it becomes ready.
func (s *Simulator) gradientBuckets(g *graph.Graph, batch int) []netsim.Bucket {
	layerTimes := s.hw.BackwardLayerTimes(g, batch) // reverse execution order
	var buckets []netsim.Bucket
	elapsed := 0.0
	pending := 0.0
	for idx, lt := range layerTimes {
		elapsed += lt
		node := g.Nodes[len(g.Nodes)-1-idx]
		if p := node.Op.Params(); p > 0 {
			pending += float64(p) * hwsim.BytesPerElem
		}
		if pending >= s.cfg.FusionBytes {
			buckets = append(buckets, netsim.Bucket{Bytes: pending, ReadyAt: elapsed})
			pending = 0
		}
	}
	if pending > 0 {
		buckets = append(buckets, netsim.Bucket{Bytes: pending, ReadyAt: elapsed})
	}
	return buckets
}

// optimizerTime models the Adam update: an elementwise pass over the
// weights touching parameter, gradient and two moment tensors (≈7 memory
// accesses per parameter), bandwidth bound, launched as one kernel per
// parameter tensor — which is why the single-device gradient phase scales
// with the layer count L, the structure the paper's T_grad = c1·L model
// exploits.
func (s *Simulator) optimizerTime(g *graph.Graph) float64 {
	w := float64(g.TotalParams())
	launches := float64(g.ParamLayers())
	return w*hwsim.BytesPerElem*7/s.cfg.Device.MemBW +
		launches*(s.cfg.Device.KernelOverhead+PerTensorFrameworkOverhead)
}

// TrainStepExact returns the noise-free phase decomposition of one
// training step with batchPerDevice images on each of devices GPUs spread
// over nodes.
func (s *Simulator) TrainStepExact(g *graph.Graph, batchPerDevice, devices, nodes int) (Phases, error) {
	if batchPerDevice <= 0 {
		return Phases{}, fmt.Errorf("trainsim: non-positive batch %d", batchPerDevice)
	}
	if err := s.checkTopology(devices, nodes); err != nil {
		return Phases{}, err
	}
	fwd := s.hw.ForwardExact(g, batchPerDevice)
	bwd := s.hw.BackwardExact(g, batchPerDevice)
	buckets := s.gradientBuckets(g, batchPerDevice)
	_, exposed, err := s.cfg.Fabric.OverlapTimeline(buckets, devices, nodes, bwd)
	if err != nil {
		return Phases{}, err
	}
	grad := exposed + s.optimizerTime(g)
	return Phases{Fwd: fwd, Bwd: bwd, Grad: grad, Iter: fwd + bwd + grad}, nil
}

// noisy applies one log-normal draw with the given sigma.
func (s *Simulator) noisy(t, sigma float64) float64 {
	if sigma == 0 {
		return t
	}
	return t * math.Exp(s.rng.NormFloat64()*sigma)
}

// TrainStep returns a noisy training-step measurement. Compute phases use
// NoiseSigma; the gradient phase uses CommNoiseSigma when more than one
// device participates (network jitter), otherwise NoiseSigma.
func (s *Simulator) TrainStep(g *graph.Graph, batchPerDevice, devices, nodes int) (Phases, error) {
	p, err := s.TrainStepExact(g, batchPerDevice, devices, nodes)
	if err != nil {
		return Phases{}, err
	}
	gradSigma := s.cfg.NoiseSigma
	if devices > 1 {
		gradSigma = s.cfg.CommNoiseSigma
	}
	p.Fwd = s.noisy(p.Fwd, s.cfg.NoiseSigma)
	p.Bwd = s.noisy(p.Bwd, s.cfg.NoiseSigma)
	p.Grad = s.noisy(p.Grad, gradSigma)
	p.Iter = p.Fwd + p.Bwd + p.Grad
	return p, nil
}

// TimelineEvent is one span of a simulated training step, suitable for
// trace visualisation (see the tracefmt package). Track 0 is compute,
// track 1 the communication link.
type TimelineEvent struct {
	Name       string
	Track      int
	Start, Dur float64 // seconds from the start of the step
}

// Timeline reconstructs the noise-free schedule of one training step:
// the forward span, the backward span, every fused gradient bucket's
// all-reduce on the link (overlapping the backward pass), and the
// optimizer update — the structure of the paper's Figure 1.
func (s *Simulator) Timeline(g *graph.Graph, batchPerDevice, devices, nodes int) ([]TimelineEvent, Phases, error) {
	p, err := s.TrainStepExact(g, batchPerDevice, devices, nodes)
	if err != nil {
		return nil, Phases{}, err
	}
	events := []TimelineEvent{
		{Name: "forward", Track: 0, Start: 0, Dur: p.Fwd},
		{Name: "backward", Track: 0, Start: p.Fwd, Dur: p.Bwd},
	}
	buckets := s.gradientBuckets(g, batchPerDevice)
	comm, err := s.cfg.Fabric.Schedule(buckets, devices, nodes)
	if err != nil {
		return nil, Phases{}, err
	}
	commEnd := 0.0
	for _, c := range comm {
		events = append(events, TimelineEvent{
			Name:  fmt.Sprintf("allreduce bucket %d (%.1f MiB)", c.Bucket, c.Bytes/(1<<20)),
			Track: 1, Start: p.Fwd + c.Start, Dur: c.End - c.Start,
		})
		if c.End > commEnd {
			commEnd = c.End
		}
	}
	optStart := p.Fwd + p.Bwd
	if p.Fwd+commEnd > optStart {
		optStart = p.Fwd + commEnd
	}
	events = append(events, TimelineEvent{
		Name: "optimizer", Track: 0, Start: optStart, Dur: s.optimizerTime(g),
	})
	return events, p, nil
}

// EpochTime converts a step time into an epoch time for a dataset of
// datasetSize images: D/(B·N) steps of T_iter each (paper §2).
func EpochTime(iter float64, datasetSize, batchPerDevice, devices int) float64 {
	steps := float64(datasetSize) / (float64(batchPerDevice) * float64(devices))
	return steps * iter
}

// Throughput converts a step time into images per second across the
// whole cluster — the metric of the paper's scalability figures (8, 9).
func Throughput(p Phases, batchPerDevice, devices int) float64 {
	if p.Iter <= 0 {
		return 0
	}
	return float64(batchPerDevice*devices) / p.Iter
}

// Fits reports whether training the graph at the given per-device batch
// fits into device memory.
func (s *Simulator) Fits(g *graph.Graph, batchPerDevice int) bool {
	return s.hw.Fits(g, batchPerDevice, true)
}
