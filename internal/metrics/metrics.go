// Package metrics extracts the five inherent ConvNet metrics the paper's
// performance model is built on — FLOPs (F), Inputs (I), Outputs (O),
// Weights (W), and Layers (L) — by statically traversing a graph. No
// execution is required, which is the paper's key efficiency argument.
//
// Following §3 of the paper, Inputs and Outputs are accumulated over the
// *convolutional* layers only (they dominate ConvNet runtime and memory
// traffic), FLOPs over all layers, Weights over all learnable parameters,
// and Layers counts parameter-carrying layers (the granularity of
// per-layer gradient synchronisation). All values are for batch size 1;
// they scale linearly with the batch size.
package metrics

import (
	"fmt"

	"convmeter/internal/graph"
)

// ioCarrier marks the op kinds whose input/output tensor sizes define the
// I and O metrics: the compute-dominant layers. For ConvNets this is the
// paper's "convolutional layers only" rule; the transformer extension
// (future work in the paper) treats per-token linear layers and the
// attention core the same way.
var ioCarrier = map[string]bool{
	"conv2d":       true,
	"token_linear": true,
	"attention":    true,
}

// Metrics holds the ConvMeter model features for one network at batch
// size 1. The fields carry their dimensions as types (see units.go);
// regression feature vectors de-dimension explicitly via Vector and
// friends.
type Metrics struct {
	Model   string // graph name
	FLOPs   FLOPs  // F: floating point operations over all layers
	Inputs  Count  // I: summed input tensor elements of conv layers
	Outputs Count  // O: summed output tensor elements of conv layers
	Weights Count  // W: learnable parameter count
	Layers  Count  // L: number of parameter-carrying layers
}

// FromGraph extracts the metrics from a validated graph.
func FromGraph(g *graph.Graph) (Metrics, error) {
	if err := g.Validate(); err != nil {
		return Metrics{}, fmt.Errorf("metrics: %w", err)
	}
	m := Metrics{Model: g.Name}
	for i, n := range g.Nodes {
		m.FLOPs += FLOPs(g.NodeFLOPs(i))
		if ioCarrier[n.Op.Kind()] {
			m.Inputs += Count(g.NodeInputElems(i))
			m.Outputs += Count(n.Out.Elems())
		}
		if p := n.Op.Params(); p > 0 {
			m.Weights += Count(p)
			m.Layers++
		}
	}
	return m, nil
}

// FromGraphRange extracts the metrics of the node range [from, to) — a
// pipeline-parallel stage. Nodes are in topological order, so contiguous
// ranges are valid stages; the block-wise prediction capability the paper
// demonstrates in §4.1.2 then applies to each stage ("ConvMeter can be
// extended to support model parallelism by leveraging its capability to
// predict subgraphs or blocks", §3).
func FromGraphRange(g *graph.Graph, from, to int) (Metrics, error) {
	if from < 0 || to > len(g.Nodes) || from >= to {
		return Metrics{}, fmt.Errorf("metrics: invalid node range [%d, %d) of %d", from, to, len(g.Nodes))
	}
	m := Metrics{Model: fmt.Sprintf("%s[%d:%d]", g.Name, from, to)}
	for i := from; i < to; i++ {
		n := g.Nodes[i]
		m.FLOPs += FLOPs(g.NodeFLOPs(i))
		if ioCarrier[n.Op.Kind()] {
			m.Inputs += Count(g.NodeInputElems(i))
			m.Outputs += Count(n.Out.Elems())
		}
		if p := n.Op.Params(); p > 0 {
			m.Weights += Count(p)
			m.Layers++
		}
	}
	return m, nil
}

// Scale returns the metrics multiplied by a per-device mini-batch size b.
// Weights and Layers are batch-independent and stay unchanged; FLOPs,
// Inputs and Outputs scale linearly (paper §3).
func (m Metrics) Scale(b float64) Metrics {
	if b <= 0 {
		panic(fmt.Sprintf("metrics: non-positive batch scale %g", b))
	}
	s := m
	s.FLOPs = FLOPs(float64(m.FLOPs) * b)
	s.Inputs = Count(float64(m.Inputs) * b)
	s.Outputs = Count(float64(m.Outputs) * b)
	return s
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: F=%.3g I=%.3g O=%.3g W=%.3g L=%.0f",
		m.Model, m.FLOPs, m.Inputs, m.Outputs, m.Weights, m.Layers)
}

// Vector assembles the feature columns used by the forward/backward
// performance model: [F, I, O] at mini-batch b plus a trailing 1 for the
// intercept (the paper's Equation 3 layout).
func (m Metrics) Vector(b float64) []float64 {
	s := m.Scale(b)
	return []float64{float64(s.FLOPs), float64(s.Inputs), float64(s.Outputs), 1}
}

// GradVectorSingle is the gradient-update feature layout for a single
// device: [L, 1] (the paper's T_grad = c1·L case, with an intercept).
func (m Metrics) GradVectorSingle() []float64 {
	return []float64{float64(m.Layers), 1}
}

// GradVectorMulti is the gradient-update feature layout for N>1 devices:
// [L, W, N, 1] (paper's T_grad = c1·L + c2·W + c3·N, with an intercept).
func (m Metrics) GradVectorMulti(devices int) []float64 {
	return []float64{float64(m.Layers), float64(m.Weights), float64(devices), 1}
}

// CombinedVector is the 7-coefficient feature layout for the overlapped
// backward-pass-plus-gradient-update model described in §3.3 of the
// paper: the backward features [F, I, O] at mini-batch b joined with the
// gradient features [L, W, N] and one shared intercept.
func (m Metrics) CombinedVector(b float64, devices int) []float64 {
	s := m.Scale(b)
	return []float64{float64(s.FLOPs), float64(s.Inputs), float64(s.Outputs), float64(m.Layers), float64(m.Weights), float64(devices), 1}
}
