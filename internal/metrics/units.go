package metrics

// The quantity types below give the model's numbers physical
// dimensions the type system can see. The unitcheck analyzer (see
// internal/lint) treats each as a dimension: converting one unit
// directly into another, multiplying two values of the same unit, or
// dividing them without de-dimensioning is reported. The sanctioned
// way to change dimension is explicit — drop to float64, apply the
// factor that changes the quantity, tag the result:
//
//	secs := Seconds(float64(flops) * secondsPerFLOP)
//
// All four are defined float64 so the numerics (regression, linalg)
// keep operating on raw floats after an explicit de-dimensioning.
type (
	// Seconds is a wall-time duration. Phase times, predictions and
	// residuals carry it; throughputs (1/Seconds-shaped) stay float64.
	Seconds float64

	// FLOPs counts floating-point operations — the paper's F metric.
	FLOPs float64

	// Bytes is a memory or traffic volume.
	Bytes float64

	// Count is a dimensionless-but-meaningful cardinality: tensor
	// elements (I, O), parameters (W), layers (L).
	Count float64
)
