package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"convmeter/internal/graph"
)

func buildNet(t *testing.T) *graph.Graph {
	t.Helper()
	b, x := graph.NewBuilder("net", graph.Shape{C: 3, H: 16, W: 16})
	x = b.Conv(x, "conv1", 8, 3, 1, 1) // in 3*16*16=768, out 8*16*16=2048
	x = b.BatchNorm(x, "bn1")
	x = b.ReLU(x, "relu1")
	x = b.Conv(x, "conv2", 16, 3, 2, 1) // in 2048, out 16*8*8=1024
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flat")
	x = b.Linear(x, "fc", 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromGraphConvOnlyIO(t *testing.T) {
	g := buildNet(t)
	m, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Model != "net" {
		t.Fatalf("Model = %q", m.Model)
	}
	// Inputs: conv1 reads 3*16*16, conv2 reads 8*16*16.
	wantIn := Count(3*16*16 + 8*16*16)
	if m.Inputs != wantIn {
		t.Fatalf("Inputs = %g, want %g", m.Inputs, wantIn)
	}
	// Outputs: conv1 8*16*16, conv2 16*8*8. Linear layer must NOT count.
	wantOut := Count(8*16*16 + 16*8*8)
	if m.Outputs != wantOut {
		t.Fatalf("Outputs = %g, want %g", m.Outputs, wantOut)
	}
	// Layers: conv1, bn1, conv2, fc = 4 parameterised layers.
	if m.Layers != 4 {
		t.Fatalf("Layers = %g, want 4", m.Layers)
	}
	if m.Weights != Count(g.TotalParams()) {
		t.Fatalf("Weights = %g, want %d", m.Weights, g.TotalParams())
	}
	if m.FLOPs != FLOPs(g.TotalFLOPs()) {
		t.Fatalf("FLOPs = %g, want %d", m.FLOPs, g.TotalFLOPs())
	}
}

func TestScaleLinearity(t *testing.T) {
	g := buildNet(t)
	m, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Property from the paper: F, I, O scale linearly with batch size;
	// W and L are invariant.
	f := func(raw uint16) bool {
		b := float64(raw%4096) + 1
		s := m.Scale(b)
		return float64(s.FLOPs) == float64(m.FLOPs)*b &&
			float64(s.Inputs) == float64(m.Inputs)*b &&
			float64(s.Outputs) == float64(m.Outputs)*b &&
			s.Weights == m.Weights &&
			s.Layers == m.Layers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	m := Metrics{FLOPs: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for b <= 0")
		}
	}()
	m.Scale(0)
}

func TestVectors(t *testing.T) {
	m := Metrics{FLOPs: 100, Inputs: 10, Outputs: 20, Weights: 1000, Layers: 5}
	v := m.Vector(2)
	want := []float64{200, 20, 40, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vector = %v, want %v", v, want)
		}
	}
	gs := m.GradVectorSingle()
	if gs[0] != 5 || gs[1] != 1 || len(gs) != 2 {
		t.Fatalf("GradVectorSingle = %v", gs)
	}
	gm := m.GradVectorMulti(8)
	wantGM := []float64{5, 1000, 8, 1}
	for i := range wantGM {
		if gm[i] != wantGM[i] {
			t.Fatalf("GradVectorMulti = %v", gm)
		}
	}
	cv := m.CombinedVector(4, 16)
	wantCV := []float64{400, 40, 80, 5, 1000, 16, 1}
	if len(cv) != 7 {
		t.Fatalf("CombinedVector has %d entries, want 7", len(cv))
	}
	for i := range wantCV {
		if cv[i] != wantCV[i] {
			t.Fatalf("CombinedVector = %v, want %v", cv, wantCV)
		}
	}
}

func TestFromGraphRejectsInvalid(t *testing.T) {
	g := buildNet(t)
	g.Nodes[1].Out.C++ // corrupt
	if _, err := FromGraph(g); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestStringNonEmpty(t *testing.T) {
	m := Metrics{Model: "x", FLOPs: 1, Layers: 1}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestFromGraphRangePartitionsSum(t *testing.T) {
	// Any split point must conserve the whole-graph totals: range metrics
	// of [0,k) plus [k,n) equal FromGraph for F, I, O, W and L.
	g := buildNet(t)
	whole, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	n := len(g.Nodes)
	for k := 1; k < n; k++ {
		a, err := FromGraphRange(g, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromGraphRange(g, k, n)
		if err != nil {
			t.Fatal(err)
		}
		if a.FLOPs+b.FLOPs != whole.FLOPs ||
			a.Inputs+b.Inputs != whole.Inputs ||
			a.Outputs+b.Outputs != whole.Outputs ||
			a.Weights+b.Weights != whole.Weights ||
			a.Layers+b.Layers != whole.Layers {
			t.Fatalf("split at %d does not conserve totals", k)
		}
	}
}

func TestFromGraphRangeErrors(t *testing.T) {
	g := buildNet(t)
	cases := [][2]int{{-1, 2}, {2, 2}, {3, 1}, {0, len(g.Nodes) + 1}}
	for _, c := range cases {
		if _, err := FromGraphRange(g, c[0], c[1]); err == nil {
			t.Errorf("range [%d,%d) should be rejected", c[0], c[1])
		}
	}
}

func TestFractionalMiniBatchScale(t *testing.T) {
	// b = B/N can be fractional when the global batch does not divide the
	// device count; the model must still scale smoothly.
	m := Metrics{FLOPs: 100, Inputs: 10, Outputs: 20, Weights: 7, Layers: 3}
	s := m.Scale(2.5)
	if math.Abs(float64(s.FLOPs)-250) > 1e-12 {
		t.Fatalf("fractional scale FLOPs = %g", s.FLOPs)
	}
}
