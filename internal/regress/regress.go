// Package regress provides the ordinary-least-squares fitting and the
// evaluation metrics (R², RMSE, NRMSE, MAPE) used throughout ConvMeter.
//
// The paper deliberately restricts itself to plain linear regression: the
// hardware influence on runtime is captured entirely by the fitted
// coefficients, while the ConvNet influence is captured by the feature
// columns (FLOPs, Inputs, Outputs, ...).
package regress

import (
	"errors"
	"fmt"
	"math"

	"convmeter/internal/linalg"
)

// Model is a fitted linear model y ≈ Σ coef_j · x_j.
// Whether an intercept is present is up to the caller: append a constant-1
// feature column to get one (the paper's c4 term).
type Model struct {
	Coef []float64 // one per feature column
}

// FitWeighted computes weighted least-squares coefficients: it minimises
// Σ wᵢ·(xᵢ·c − yᵢ)². ConvMeter uses wᵢ = 1/yᵢ² (see FitRelative) so that
// relative residuals are equalised across the four-orders-of-magnitude
// runtime range of a benchmark sweep — plain OLS would let the largest
// runtimes dominate and park the intercept milliseconds away from the
// smallest measurements.
func FitWeighted(features [][]float64, y, weights []float64) (*Model, error) {
	if len(weights) != len(y) {
		return nil, fmt.Errorf("regress: %d weights for %d targets", len(weights), len(y))
	}
	scaledF := make([][]float64, len(features))
	scaledY := make([]float64, len(y))
	for i := range features {
		w := weights[i]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("regress: invalid weight %g at row %d", w, i)
		}
		sw := math.Sqrt(w)
		row := make([]float64, len(features[i]))
		for j, v := range features[i] {
			row[j] = v * sw
		}
		scaledF[i] = row
		scaledY[i] = y[i] * sw
	}
	return Fit(scaledF, scaledY)
}

// FitRelative fits with wᵢ = 1/max(|yᵢ|, floor)² — i.e. it minimises the
// sum of squared *relative* residuals, aligning the fit objective with
// the MAPE metric the paper reports. floor guards against zero targets;
// pass 0 to use a floor of 1e-12.
func FitRelative(features [][]float64, y []float64) (*Model, error) {
	const floor = 1e-12
	w := make([]float64, len(y))
	for i, v := range y {
		av := math.Abs(v)
		if av < floor {
			av = floor
		}
		w[i] = 1 / (av * av)
	}
	return FitWeighted(features, y, w)
}

// Fit computes the least-squares coefficients for the design matrix whose
// rows are feature vectors and the target vector y. If the design matrix is
// rank deficient (e.g. a feature is constant zero over the sample), Fit
// falls back to a lightly ridge-regularised solve so that callers always
// get a usable model from degenerate benchmark subsets.
func Fit(features [][]float64, y []float64) (*Model, error) {
	if len(features) == 0 {
		return nil, errors.New("regress: empty feature set")
	}
	if len(features) != len(y) {
		return nil, fmt.Errorf("regress: %d feature rows but %d targets", len(features), len(y))
	}
	a, err := linalg.FromRows(features)
	if err != nil {
		return nil, err
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("regress: %d samples cannot determine %d coefficients", a.Rows, a.Cols)
	}
	// Normalise each column to unit maximum magnitude before solving.
	// Feature scales differ by >10 orders of magnitude (FLOPs ≈ 1e12 vs
	// the intercept column of ones), which would otherwise wreck the QR
	// conditioning and make any ridge fallback penalise columns unevenly.
	scale := make([]float64, a.Cols)
	for j := 0; j < a.Cols; j++ {
		maxAbs := 0.0
		for i := 0; i < a.Rows; i++ {
			if v := math.Abs(a.At(i, j)); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1 // zero column: leave as-is, ridge handles it
		}
		scale[j] = maxAbs
		for i := 0; i < a.Rows; i++ {
			a.Set(i, j, a.At(i, j)/maxAbs)
		}
	}
	coef, err := linalg.LeastSquares(a, y)
	if errors.Is(err, linalg.ErrRankDeficient) {
		coef, err = linalg.RidgeLeastSquares(a, y, 1e-10)
	}
	if err != nil {
		return nil, err
	}
	for j := range coef {
		coef[j] /= scale[j]
	}
	return &Model{Coef: coef}, nil
}

// Predict evaluates the model on a single feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Coef) {
		panic(fmt.Sprintf("regress: feature vector has %d entries, model has %d coefficients", len(x), len(m.Coef)))
	}
	return linalg.Dot(m.Coef, x)
}

// PredictAll evaluates the model on every row of features.
func (m *Model) PredictAll(features [][]float64) []float64 {
	out := make([]float64, len(features))
	for i, x := range features {
		out[i] = m.Predict(x)
	}
	return out
}

// CoefStats carries per-coefficient inference statistics for a fitted
// model: the estimate, its standard error, and the t-statistic. They let
// a user judge which ConvNet metrics carry signal on a given platform
// (e.g. Inputs and Outputs dominating FLOPs on bandwidth-bound devices).
type CoefStats struct {
	Estimate []float64
	StdErr   []float64
	TValue   []float64
	DoF      int // residual degrees of freedom
}

// FitStats computes OLS coefficient statistics for the (optionally
// weighted, pass nil for unweighted) regression: SE_j = sqrt(σ̂²·
// [(XᵀX)⁻¹]_jj with σ̂² the residual variance. The fit itself matches
// FitWeighted/Fit.
func FitStats(features [][]float64, y, weights []float64) (*Model, *CoefStats, error) {
	var m *Model
	var err error
	if weights == nil {
		m, err = Fit(features, y)
	} else {
		m, err = FitWeighted(features, y, weights)
	}
	if err != nil {
		return nil, nil, err
	}
	n := len(features)
	k := len(m.Coef)
	dof := n - k
	if dof <= 0 {
		return m, &CoefStats{Estimate: m.Coef, StdErr: make([]float64, k), TValue: make([]float64, k)}, nil
	}
	// Residual variance on the (weighted) scale.
	ssr := 0.0
	for i, row := range features {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		r := m.Predict(row) - y[i]
		ssr += w * r * r
	}
	sigma2 := ssr / float64(dof)
	// Column-normalise before forming the normal matrix — feature scales
	// differ by >10 orders of magnitude, which would otherwise make
	// (XᵀWX) numerically singular. SEs rescale back at the end.
	scale := make([]float64, k)
	for j := 0; j < k; j++ {
		maxAbs := 0.0
		for _, row := range features {
			if v := math.Abs(row[j]); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		scale[j] = maxAbs
	}
	xtwx := linalg.NewMatrix(k, k)
	for i, row := range features {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				xtwx.Set(a, b, xtwx.At(a, b)+w*(row[a]/scale[a])*(row[b]/scale[b]))
			}
		}
	}
	stats := &CoefStats{
		Estimate: append([]float64(nil), m.Coef...),
		StdErr:   make([]float64, k),
		TValue:   make([]float64, k),
		DoF:      dof,
	}
	for j := 0; j < k; j++ {
		e := make([]float64, k)
		e[j] = 1
		col, err := linalg.SolveLinearSystem(xtwx, e)
		if err != nil {
			// Rank-deficient normal matrix: statistics undefined for this
			// coefficient; leave SE at 0 and flag with a NaN t-value.
			stats.TValue[j] = math.NaN()
			continue
		}
		v := sigma2 * col[j]
		if v < 0 {
			v = 0
		}
		stats.StdErr[j] = math.Sqrt(v) / scale[j]
		if stats.StdErr[j] > 0 {
			stats.TValue[j] = m.Coef[j] / stats.StdErr[j]
		}
	}
	return m, stats, nil
}

// Report bundles the four accuracy metrics the paper reports.
type Report struct {
	R2    float64 // coefficient of determination
	RMSE  float64 // root mean squared error, same unit as y
	NRMSE float64 // RMSE normalised by the range of the actual values
	MAPE  float64 // mean absolute percentage error, as a fraction (0.17 = 17%)
	N     int     // number of evaluated points
}

// Evaluate computes the accuracy metrics of predictions pred against
// measured values actual.
func Evaluate(actual, pred []float64) (Report, error) {
	if len(actual) != len(pred) {
		return Report{}, fmt.Errorf("regress: %d actual vs %d predicted values", len(actual), len(pred))
	}
	if len(actual) == 0 {
		return Report{}, errors.New("regress: nothing to evaluate")
	}
	return Report{
		R2:    R2(actual, pred),
		RMSE:  RMSE(actual, pred),
		NRMSE: NRMSE(actual, pred),
		MAPE:  MAPE(actual, pred),
		N:     len(actual),
	}, nil
}

// String renders the report in the paper's style.
func (r Report) String() string {
	return fmt.Sprintf("R²=%.3f RMSE=%.4g NRMSE=%.3f MAPE=%.3f (n=%d)", r.R2, r.RMSE, r.NRMSE, r.MAPE, r.N)
}

// R2 returns the coefficient of determination 1 − SS_res/SS_tot.
// A constant actual series yields R2 = 0 by convention (no variance to
// explain) unless the prediction is exact, in which case it is 1.
func R2(actual, pred []float64) float64 {
	mu := linalg.Mean(actual)
	ssRes, ssTot := 0.0, 0.0
	for i := range actual {
		r := actual[i] - pred[i]
		d := actual[i] - mu
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root mean squared error.
func RMSE(actual, pred []float64) float64 {
	s := 0.0
	for i := range actual {
		r := actual[i] - pred[i]
		s += r * r
	}
	return math.Sqrt(s / float64(len(actual)))
}

// NRMSE returns the RMSE normalised by the range (max−min) of the actual
// values, following the paper's definition. If the range is zero the RMSE
// itself is returned.
func NRMSE(actual, pred []float64) float64 {
	lo, hi := linalg.MinMax(actual)
	rmse := RMSE(actual, pred)
	rng := hi - lo
	if rng == 0 {
		return rmse
	}
	return rmse / rng
}

// MAPE returns the mean absolute percentage error as a fraction.
// Points with a zero actual value are skipped (percentage error undefined).
func MAPE(actual, pred []float64) float64 {
	s, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs((actual[i] - pred[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
