package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversExactLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var feats [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		f, in, out := rng.Float64()*1e9, rng.Float64()*1e7, rng.Float64()*1e7
		feats = append(feats, []float64{f, in, out, 1})
		y = append(y, 2e-9*f+3e-8*in+4e-8*out+0.005)
	}
	m, err := Fit(feats, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2e-9, 3e-8, 4e-8, 0.005}
	for i := range want {
		if rel := math.Abs(m.Coef[i]-want[i]) / want[i]; rel > 1e-6 {
			t.Fatalf("coef %d = %g, want %g", i, m.Coef[i], want[i])
		}
	}
	pred := m.PredictAll(feats)
	rep, err := Evaluate(y, pred)
	if err != nil {
		t.Fatal(err)
	}
	if rep.R2 < 0.999999 {
		t.Fatalf("R2 = %g, want ≈1", rep.R2)
	}
	if rep.MAPE > 1e-6 {
		t.Fatalf("MAPE = %g, want ≈0", rep.MAPE)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for row/target count mismatch")
	}
	// Fewer samples than coefficients.
	if _, err := Fit([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Fatal("expected error for underdetermined fit")
	}
}

func TestFitRankDeficientFallsBackToRidge(t *testing.T) {
	// Duplicate feature columns: plain OLS rank deficient, ridge must cope.
	feats := [][]float64{
		{1, 1, 1},
		{2, 2, 1},
		{3, 3, 1},
		{4, 4, 1},
	}
	y := []float64{2, 4, 6, 8}
	m, err := Fit(feats, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range feats {
		if got := m.Predict(x); math.Abs(got-y[i]) > 1e-3 {
			t.Fatalf("ridge fallback prediction %d = %g, want %g", i, got, y[i])
		}
	}
}

func TestPredictPanicsOnBadWidth(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched feature width")
		}
	}()
	m.Predict([]float64{1})
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	if r := R2(actual, actual); r != 1 {
		t.Fatalf("perfect R2 = %g, want 1", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := R2(actual, mean); math.Abs(r) > 1e-12 {
		t.Fatalf("mean-prediction R2 = %g, want 0", r)
	}
	// Constant actual series conventions.
	if r := R2([]float64{5, 5}, []float64{5, 5}); r != 1 {
		t.Fatalf("constant exact R2 = %g, want 1", r)
	}
	if r := R2([]float64{5, 5}, []float64{4, 6}); r != 0 {
		t.Fatalf("constant inexact R2 = %g, want 0", r)
	}
}

func TestRMSEAndNRMSE(t *testing.T) {
	actual := []float64{0, 10}
	pred := []float64{1, 9}
	if r := RMSE(actual, pred); math.Abs(r-1) > 1e-12 {
		t.Fatalf("RMSE = %g, want 1", r)
	}
	if n := NRMSE(actual, pred); math.Abs(n-0.1) > 1e-12 {
		t.Fatalf("NRMSE = %g, want 0.1", n)
	}
	// Zero-range fallback returns raw RMSE.
	if n := NRMSE([]float64{3, 3}, []float64{4, 4}); math.Abs(n-1) > 1e-12 {
		t.Fatalf("zero-range NRMSE = %g, want 1", n)
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200}
	pred := []float64{110, 180}
	// |10/100| and |20/200| → mean of 0.1 and 0.1 = 0.1
	if m := MAPE(actual, pred); math.Abs(m-0.1) > 1e-12 {
		t.Fatalf("MAPE = %g, want 0.1", m)
	}
	// Zero actuals are skipped.
	if m := MAPE([]float64{0, 100}, []float64{5, 150}); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("MAPE with zero actual = %g, want 0.5", m)
	}
	if m := MAPE([]float64{0}, []float64{1}); m != 0 {
		t.Fatalf("all-zero-actual MAPE = %g, want 0", m)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("expected empty-input error")
	}
}

func TestReportString(t *testing.T) {
	r := Report{R2: 0.96, RMSE: 0.0088, NRMSE: 0.13, MAPE: 0.17, N: 100}
	s := r.String()
	if s == "" {
		t.Fatal("empty report string")
	}
}

func TestFitStatsRecoversKnownModel(t *testing.T) {
	// y = 2x + 1 + noise: estimates close to truth, t-values large,
	// noise-free columns get tight standard errors.
	rng := rand.New(rand.NewSource(12))
	n := 200
	feats := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		feats[i] = []float64{x, 1}
		y[i] = 2*x + 1 + rng.NormFloat64()*0.1
	}
	m, stats, err := FitStats(feats, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 0.02 || math.Abs(m.Coef[1]-1) > 0.05 {
		t.Fatalf("coef = %v", m.Coef)
	}
	if stats.DoF != n-2 {
		t.Fatalf("DoF = %d", stats.DoF)
	}
	for j := range stats.StdErr {
		if stats.StdErr[j] <= 0 {
			t.Fatalf("SE[%d] = %g", j, stats.StdErr[j])
		}
	}
	// The slope on 0.1 noise over 200 points is overwhelmingly significant.
	if stats.TValue[0] < 100 {
		t.Fatalf("slope t-value = %g, want large", stats.TValue[0])
	}
	// SE must shrink with more data: refit on a quarter of the sample.
	_, statsQ, err := FitStats(feats[:50], y[:50], nil)
	if err != nil {
		t.Fatal(err)
	}
	if statsQ.StdErr[0] <= stats.StdErr[0] {
		t.Fatalf("SE should shrink with sample size: %g vs %g", statsQ.StdErr[0], stats.StdErr[0])
	}
}

func TestFitStatsWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 100
	feats := make([][]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		x := 1 + rng.Float64()*10
		feats[i] = []float64{x, 1}
		y[i] = 3*x + rng.NormFloat64()*0.05*x // heteroscedastic
		w[i] = 1 / (x * x)
	}
	m, stats, err := FitStats(feats, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 0.05 {
		t.Fatalf("weighted slope = %g", m.Coef[0])
	}
	if stats.StdErr[0] <= 0 {
		t.Fatal("weighted SE missing")
	}
}

func TestFitStatsDegenerate(t *testing.T) {
	// Exactly as many points as coefficients: no residual DoF.
	feats := [][]float64{{1, 1}, {2, 1}}
	y := []float64{1, 2}
	_, stats, err := FitStats(feats, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DoF != 0 {
		t.Fatalf("DoF = %d", stats.DoF)
	}
	for _, se := range stats.StdErr {
		if se != 0 {
			t.Fatal("degenerate fit must have zero SEs")
		}
	}
}

func TestR2NeverExceedsOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		actual := make([]float64, n)
		pred := make([]float64, n)
		for i := range actual {
			actual[i] = rng.NormFloat64() * 10
			pred[i] = rng.NormFloat64() * 10
		}
		r := R2(actual, pred)
		return r <= 1.0+1e-12 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOLSMinimisesRMSEProperty(t *testing.T) {
	// The fitted model's RMSE must never exceed that of a perturbed model.
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 20; iter++ {
		n := 20
		feats := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			feats[i] = []float64{rng.Float64(), rng.Float64(), 1}
			y[i] = 3*feats[i][0] - feats[i][1] + 0.5 + rng.NormFloat64()*0.1
		}
		m, err := Fit(feats, y)
		if err != nil {
			t.Fatal(err)
		}
		base := RMSE(y, m.PredictAll(feats))
		for trial := 0; trial < 5; trial++ {
			pert := &Model{Coef: append([]float64(nil), m.Coef...)}
			pert.Coef[rng.Intn(len(pert.Coef))] += rng.NormFloat64() * 0.05
			if RMSE(y, pert.PredictAll(feats)) < base-1e-12 {
				t.Fatalf("iter %d: perturbed model beat OLS fit", iter)
			}
		}
	}
}
