package driftwatch

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"convmeter/internal/obs"
	"convmeter/internal/regress"
)

// trackerOpts: a short window and an aggressive detector so tests drive
// state transitions in few samples.
func trackerOpts() Options {
	return Options{Window: 16, Delta: 0.5, Lambda: 8, Warmup: 3}
}

func TestNilMonitorAndStream(t *testing.T) {
	var m *Monitor
	st := m.Stream("net", "iter")
	if st != nil {
		t.Fatal("nil monitor handed out a non-nil stream")
	}
	st.Observe(1, 2) // must not panic
	st.Recalibrate()
	if st.Events() != 0 || st.Model() != "" || st.Phase() != "" {
		t.Error("nil stream is not a no-op")
	}
	if got := st.Snapshot(); got != (StreamSnapshot{}) {
		t.Errorf("nil stream snapshot = %+v", got)
	}
	if m.Events() != 0 {
		t.Error("nil monitor reports events")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Streams []json.RawMessage `json:"streams"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil monitor JSON invalid: %v\n%s", err, buf.Bytes())
	}
	if doc.Streams == nil {
		t.Errorf("nil monitor JSON must serialise streams as [], got:\n%s", buf.Bytes())
	}
}

// TestWindowAgreesWithOfflineEvaluation: with κ = 1 (no calibration) a
// stream's rolling window must report exactly what core/eval's regress
// metrics report offline on the same suffix of the pair stream. This is
// the satellite guarantee that /drift numbers are comparable to the
// LOMO reports.
func TestWindowAgreesWithOfflineEvaluation(t *testing.T) {
	const window, total = 16, 40
	m := New(Config{Defaults: Options{Window: window}})
	st := m.Stream("alexnet", "iter")
	rng := rand.New(rand.NewSource(3))
	var pred, actual []float64
	for i := 0; i < total; i++ {
		p := 0.01 + 0.05*rng.Float64()
		a := p * (1 + 0.15*rng.NormFloat64())
		if a <= 0 {
			a = p
		}
		pred = append(pred, p)
		actual = append(actual, a)
		st.Observe(p, a)
	}
	n := window
	want, err := regress.Evaluate(actual[len(actual)-n:], pred[len(pred)-n:])
	if err != nil {
		t.Fatal(err)
	}
	got := st.Snapshot().Window
	if got.N != n {
		t.Fatalf("window N = %d, want %d", got.N, n)
	}
	if got.R2 != want.R2 || got.RMSE != want.RMSE || got.NRMSE != want.NRMSE || got.MAPE != want.MAPE {
		t.Errorf("window report %+v differs from offline regress %+v", got, want)
	}
}

func TestCalibrationComputesKappa(t *testing.T) {
	m := New(Config{})
	opts := trackerOpts()
	opts.CalibrateN = 2
	st := m.StreamOpts("net", "iter", opts)
	// Predictor runs 4x fast (sim coefficients): measured = 4*predicted.
	st.Observe(0.01, 0.04)
	st.Observe(0.03, 0.12)
	snap := st.Snapshot()
	if math.Abs(snap.Kappa-4) > 1e-12 {
		t.Fatalf("kappa = %g, want 4", snap.Kappa)
	}
	if snap.Window.N != 0 {
		t.Errorf("calibration pairs leaked into the window: N = %d", snap.Window.N)
	}
	// Post-calibration the scaled residuals are ~0: state reaches ok and
	// the window is near-perfect.
	for i := 0; i < 10; i++ {
		p := 0.01 + 0.001*float64(i)
		st.Observe(p, 4*p)
	}
	snap = st.Snapshot()
	if snap.State != StateOK {
		t.Errorf("state = %q after clean tracked feed, want ok", snap.State)
	}
	if snap.Events != 0 {
		t.Errorf("events = %d on a clean feed", snap.Events)
	}
	if snap.Window.R2 < 0.999 {
		t.Errorf("window R² = %g after calibration, want ≈1", snap.Window.R2)
	}
}

// TestDriftFiresOnSlowdownShift mimics the straggler scenario: the
// predictor keeps predicting the healthy step time while measured steps
// suddenly take much longer. The detector must fire, telemetry must
// record it, and a clean continuation must stay latched drifting.
func TestDriftFiresOnSlowdownShift(t *testing.T) {
	o := obs.New()
	var hookEvents []Event
	m := New(Config{Obs: o, OnDrift: func(ev Event) { hookEvents = append(hookEvents, ev) }})
	opts := trackerOpts()
	opts.CalibrateN = 2
	st := m.StreamOpts("trainreal", "iter", opts)

	const healthy = 0.008
	for i := 0; i < 8; i++ {
		st.Observe(healthy, healthy*1.05)
	}
	if st.Snapshot().State != StateOK {
		t.Fatalf("state = %q on healthy prefix", st.Snapshot().State)
	}
	// Straggler onset: +60ms on ~8ms steps.
	for i := 0; i < 6; i++ {
		st.Observe(healthy, healthy+0.060)
	}
	snap := st.Snapshot()
	if snap.Events < 1 {
		t.Fatalf("no drift event on an ~8x slowdown: %+v", snap)
	}
	if snap.State != StateDrifting {
		t.Errorf("state = %q, want drifting", snap.State)
	}
	if len(hookEvents) != snap.Events {
		t.Errorf("OnDrift invoked %d times, events = %d", len(hookEvents), snap.Events)
	}
	if hookEvents[0].Model != "trainreal" || hookEvents[0].Phase != "iter" || hookEvents[0].Stream != st {
		t.Errorf("OnDrift event misdescribes the stream: %+v", hookEvents[0])
	}

	// Telemetry: the counter and the span annotation.
	var counter float64
	for _, p := range o.Reg.Snapshot() {
		if p.Name == obs.Label("convmeter_drift_events_total", "model", "trainreal", "phase", "iter") {
			counter = p.Value
		}
	}
	if counter != float64(snap.Events) {
		t.Errorf("convmeter_drift_events_total = %g, want %d", counter, snap.Events)
	}
	var spans int
	for _, sp := range o.Trc.Spans() {
		if strings.HasPrefix(sp.Name, "drift:trainreal/iter") {
			spans++
		}
	}
	if spans != snap.Events {
		t.Errorf("%d drift span annotations, want %d", spans, snap.Events)
	}

	// Recalibrate: the refit path clears the latch and re-detects later.
	st.Recalibrate()
	if got := st.Snapshot(); got.State != StateCalibrating || got.Events != snap.Events {
		t.Errorf("after Recalibrate: %+v", got)
	}
	slow := healthy + 0.060
	for i := 0; i < 8; i++ {
		st.Observe(healthy, slow) // κ recalibrates onto the slow regime
	}
	if got := st.Snapshot().State; got != StateOK {
		t.Errorf("state = %q after refit onto the new regime, want ok", got)
	}
}

func TestCleanFeedStaysSilent(t *testing.T) {
	m := New(Config{})
	opts := trackerOpts()
	opts.CalibrateN = 2
	st := m.StreamOpts("trainreal", "iter", opts)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		p := 0.008
		st.Observe(p, p*(1+0.1*math.Abs(rng.NormFloat64())))
	}
	snap := st.Snapshot()
	if snap.Events != 0 || snap.State == StateDrifting {
		t.Errorf("clean noisy feed drifted: %+v", snap)
	}
	if m.Events() != 0 {
		t.Errorf("monitor events = %d on clean feed", m.Events())
	}
}

func TestDegeneratePairsIgnored(t *testing.T) {
	m := New(Config{Defaults: trackerOpts()})
	st := m.Stream("net", "fwd")
	st.Observe(math.NaN(), 1)
	st.Observe(0, 1)
	st.Observe(-1, 1)
	st.Observe(1, math.Inf(1))
	st.Observe(1, 0)
	snap := st.Snapshot()
	if snap.Pairs != 5 {
		t.Errorf("pairs = %d, want 5 (counted)", snap.Pairs)
	}
	if snap.Window.N != 0 {
		t.Errorf("degenerate pairs entered the window: N = %d", snap.Window.N)
	}
}

func TestSnapshotSortedAndJSON(t *testing.T) {
	m := New(Config{Defaults: trackerOpts()})
	m.Stream("b", "iter").Observe(1, 1.1)
	m.Stream("a", "iter").Observe(1, 1.1)
	m.Stream("a", "fwd").Observe(1, 1.1)
	snap := m.Snapshot()
	var order []string
	for _, s := range snap.Streams {
		order = append(order, s.Model+"/"+s.Phase)
	}
	want := []string{"a/fwd", "a/iter", "b/iter"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", order, want)
		}
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc Snapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output invalid: %v", err)
	}
	if len(doc.Streams) != 3 || doc.Streams[0].Model != "a" {
		t.Errorf("round-tripped snapshot = %+v", doc)
	}
}

// TestConcurrentObserve exercises the stream under -race: concurrent
// feeders, snapshot readers, and stream lookups must be safe.
func TestConcurrentObserve(t *testing.T) {
	o := obs.New()
	m := New(Config{Obs: o, Defaults: trackerOpts()})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := m.Stream("net", "iter")
			for i := 0; i < 200; i++ {
				st.Observe(0.01, 0.0105)
				if i%50 == 0 {
					_ = m.Snapshot()
					_ = st.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot()
	if len(snap.Streams) != 1 {
		t.Fatalf("streams = %d, want 1 (lookup races must converge)", len(snap.Streams))
	}
	if snap.Streams[0].Pairs != 800 {
		t.Errorf("pairs = %d, want 800", snap.Streams[0].Pairs)
	}
}

// TestNoteCausePropagates: the latest critical-path attribution fed via
// NoteCause must surface on the stream snapshot and ride along on the
// drift event fired afterwards, so an alert names the blamed worker.
func TestNoteCausePropagates(t *testing.T) {
	var nilStream *Stream
	nilStream.NoteCause("wait", 2) // nil-safe

	var hookEvents []Event
	m := New(Config{OnDrift: func(ev Event) { hookEvents = append(hookEvents, ev) }})
	opts := trackerOpts()
	opts.CalibrateN = 2
	st := m.StreamOpts("trainreal", "iter", opts)
	if snap := st.Snapshot(); snap.CausePhase != "" || snap.CauseWorker != -1 {
		t.Fatalf("fresh stream cause = %q/%d, want \"\"/-1", snap.CausePhase, snap.CauseWorker)
	}

	const healthy = 0.008
	for i := 0; i < 8; i++ {
		st.Observe(healthy, healthy*1.05)
	}
	st.NoteCause("wait", 2)
	for i := 0; i < 6; i++ {
		st.Observe(healthy, healthy+0.060)
	}
	snap := st.Snapshot()
	if snap.Events < 1 {
		t.Fatalf("no drift event: %+v", snap)
	}
	if snap.CausePhase != "wait" || snap.CauseWorker != 2 {
		t.Errorf("snapshot cause = %q/%d, want wait/2", snap.CausePhase, snap.CauseWorker)
	}
	if len(hookEvents) == 0 {
		t.Fatal("OnDrift never fired")
	}
	last := hookEvents[len(hookEvents)-1]
	if last.CausePhase != "wait" || last.CauseWorker != 2 {
		t.Errorf("event cause = %q/%d, want wait/2", last.CausePhase, last.CauseWorker)
	}
	// The cause must serialise with the snapshot.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"cause_phase": "wait"`) {
		t.Errorf("snapshot JSON misses cause_phase:\n%s", buf.String())
	}
}
