// Package streamstat is the deterministic stats kernel under
// internal/driftwatch: Welford online moments, a fixed-capacity
// (predicted, actual) ring window whose summary reproduces the exact
// accuracy metrics of internal/regress (R², RMSE, NRMSE, MAPE — the
// paper's reported quartet), and a Page-Hinkley change detector over
// residual streams.
//
// The package is pure computation over its inputs: no clocks, no
// goroutines, no maps — it is declared `deterministic` in lint.config,
// so the same input stream always yields bit-identical summaries and
// detection points. Concurrency, telemetry and wall-clock feeding live
// one level up, in internal/driftwatch.
//
// Every method is nil-safe: a nil *Welford, *Window or *PageHinkley is
// a true no-op, so disabled monitoring costs nothing on hot paths.
package streamstat

import (
	"math"

	"convmeter/internal/regress"
)

// Welford accumulates online mean and variance (Welford's algorithm),
// numerically stable over arbitrarily long residual streams. The zero
// value is ready; a nil *Welford ignores Add and reports zeros.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the moments. NaN and ±Inf are ignored:
// one poisoned residual must not contaminate the lifetime statistics.
func (w *Welford) Add(x float64) {
	if w == nil || math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations (0 on nil).
func (w *Welford) N() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Mean returns the running mean (0 on nil or empty).
func (w *Welford) Mean() float64 {
	if w == nil {
		return 0
	}
	return w.mean
}

// Var returns the population variance (0 below two observations).
func (w *Welford) Var() float64 {
	if w == nil || w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 {
	if w == nil {
		return 0
	}
	return math.Sqrt(w.Var())
}

// Window is a fixed-capacity ring buffer of (predicted, actual) pairs.
// Summary recomputes the regress accuracy metrics over the pairs still
// in the window, in arrival order, so a full window reports exactly what
// an offline regress.Evaluate over the same suffix would. A nil *Window
// ignores Add and summarises to zero.
type Window struct {
	pred   []float64
	actual []float64
	next   int // ring write cursor
	n      int // pairs held, <= cap

	// Summary scratch: arrival-order copies handed to regress.Evaluate,
	// preallocated so the per-step observe path never allocates.
	sumPred   []float64
	sumActual []float64
}

// NewWindow returns a window holding the last `capacity` pairs.
// A non-positive capacity yields nil (a no-op window).
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		return nil
	}
	return &Window{
		pred:      make([]float64, capacity),
		actual:    make([]float64, capacity),
		sumPred:   make([]float64, capacity),
		sumActual: make([]float64, capacity),
	}
}

// Add appends a pair, evicting the oldest once the window is full.
// Pairs with a NaN or infinite member are ignored — the regress metrics
// are undefined on them and one bad sample must not wedge the window.
func (w *Window) Add(pred, actual float64) {
	if w == nil ||
		math.IsNaN(pred) || math.IsInf(pred, 0) ||
		math.IsNaN(actual) || math.IsInf(actual, 0) {
		return
	}
	w.pred[w.next] = pred
	w.actual[w.next] = actual
	w.next = (w.next + 1) % len(w.pred)
	if w.n < len(w.pred) {
		w.n++
	}
}

// Len returns the number of pairs currently held (0 on nil).
func (w *Window) Len() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Cap returns the window capacity (0 on nil).
func (w *Window) Cap() int {
	if w == nil {
		return 0
	}
	return len(w.pred)
}

// Pairs returns the held (predicted, actual) pairs in arrival order,
// oldest first. Nil-safe (returns nil slices).
func (w *Window) Pairs() (pred, actual []float64) {
	if w == nil || w.n == 0 {
		return nil, nil
	}
	pred = make([]float64, 0, w.n)
	actual = make([]float64, 0, w.n)
	start := (w.next - w.n + len(w.pred)) % len(w.pred)
	for i := 0; i < w.n; i++ {
		j := (start + i) % len(w.pred)
		pred = append(pred, w.pred[j])
		actual = append(actual, w.actual[j])
	}
	return pred, actual
}

// Summary evaluates the regress accuracy metrics over the window's
// current pairs — by construction identical to regress.Evaluate on the
// same suffix of the stream. An empty (or nil) window reports the zero
// Report. The pairs are staged in the window's preallocated scratch, so
// a Summary allocates nothing regardless of window size.
func (w *Window) Summary() regress.Report {
	if w == nil || w.n == 0 {
		return regress.Report{}
	}
	pred := w.sumPred[:w.n]
	actual := w.sumActual[:w.n]
	start := (w.next - w.n + len(w.pred)) % len(w.pred)
	for i := 0; i < w.n; i++ {
		j := (start + i) % len(w.pred)
		pred[i] = w.pred[j]
		actual[i] = w.actual[j]
	}
	// The only error paths are length mismatch and emptiness, both
	// excluded above.
	rep, err := regress.Evaluate(actual, pred)
	if err != nil {
		return regress.Report{}
	}
	return rep
}

// Direction selects which residual shifts a PageHinkley detector tests.
type Direction int

// Detection directions. Increase is the deployment default — a predictor
// whose target got *slower* than predicted (stragglers, contention,
// thermal throttling) is the failure mode the paper's accuracy claim
// breaks on first.
const (
	Increase Direction = iota // residuals shifted up (measured > predicted)
	Decrease                  // residuals shifted down
	Both                      // either direction
)

// PHConfig parameterises a PageHinkley detector. Zero values select the
// package defaults.
type PHConfig struct {
	// Delta is the magnitude tolerance δ: shifts smaller than δ per
	// sample never accumulate. Default 0.05 (5 % relative residual).
	Delta float64
	// Lambda is the detection threshold λ on the accumulated deviation.
	// Default 5.
	Lambda float64
	// Warmup is the number of samples consumed before testing begins, so
	// the running mean settles first. Default 5.
	Warmup int
	// Direction selects which shifts fire. Default Increase.
	Direction Direction
}

func (c PHConfig) delta() float64 {
	if c.Delta <= 0 {
		return 0.05
	}
	return c.Delta
}

func (c PHConfig) lambda() float64 {
	if c.Lambda <= 0 {
		return 5
	}
	return c.Lambda
}

func (c PHConfig) warmup() int {
	if c.Warmup <= 0 {
		return 5
	}
	return c.Warmup
}

// PageHinkley is the classic Page-Hinkley test over a residual stream:
// it accumulates deviations of each sample from the running mean beyond
// a tolerance δ and fires when the accumulation escapes its historical
// extremum by more than λ. The running mean self-adapts, so a *constant*
// prediction bias (simulated coefficients vs a real host) is absorbed
// and only genuine shifts fire. A nil *PageHinkley ignores Add.
type PageHinkley struct {
	cfg PHConfig

	n      int
	mean   float64
	mInc   float64 // cumulative (x − mean − δ), tests upward shifts
	minInc float64
	mDec   float64 // cumulative (x − mean + δ), tests downward shifts
	maxDec float64
}

// NewPageHinkley returns a detector with the given configuration.
func NewPageHinkley(cfg PHConfig) *PageHinkley {
	return &PageHinkley{cfg: cfg}
}

// N returns the number of samples since the last reset (0 on nil).
func (d *PageHinkley) N() int {
	if d == nil {
		return 0
	}
	return d.n
}

// Warmup returns the effective warmup length after defaulting (0 on nil).
func (d *PageHinkley) Warmup() int {
	if d == nil {
		return 0
	}
	return d.cfg.warmup()
}

// Reset clears the detector's state (mean and accumulations), keeping
// its configuration. Called automatically after a detection so each
// fired event represents one distinct shift.
func (d *PageHinkley) Reset() {
	if d == nil {
		return
	}
	d.n, d.mean = 0, 0
	d.mInc, d.minInc = 0, 0
	d.mDec, d.maxDec = 0, 0
}

// Add feeds one residual and reports whether a shift was detected. On
// detection the detector resets itself. Non-finite samples are ignored.
func (d *PageHinkley) Add(x float64) bool {
	if d == nil || math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	delta, lambda := d.cfg.delta(), d.cfg.lambda()
	d.mInc += x - d.mean - delta
	if d.mInc < d.minInc {
		d.minInc = d.mInc
	}
	d.mDec += x - d.mean + delta
	if d.mDec > d.maxDec {
		d.maxDec = d.mDec
	}
	if d.n <= d.cfg.warmup() {
		return false
	}
	up := d.mInc-d.minInc > lambda
	down := d.maxDec-d.mDec > lambda
	var fired bool
	switch d.cfg.Direction {
	case Increase:
		fired = up
	case Decrease:
		fired = down
	case Both:
		fired = up || down
	}
	if fired {
		d.Reset()
	}
	return fired
}
