package streamstat

import (
	"math"
	"math/rand"
	"testing"

	"convmeter/internal/regress"
)

func TestWelfordMatchesClosedForm(t *testing.T) {
	xs := []float64{1.5, 2.25, -0.5, 4, 4, 0.125, 3.75}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varSum float64
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	wantVar := varSum / float64(len(xs))
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("Mean = %g, want %g", w.Mean(), mean)
	}
	if math.Abs(w.Var()-wantVar) > 1e-12 {
		t.Errorf("Var = %g, want %g", w.Var(), wantVar)
	}
	if math.Abs(w.Std()-math.Sqrt(wantVar)) > 1e-12 {
		t.Errorf("Std = %g, want %g", w.Std(), math.Sqrt(wantVar))
	}
}

func TestWelfordIgnoresNonFinite(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(math.NaN())
	w.Add(math.Inf(1))
	w.Add(3)
	if w.N() != 2 || math.Abs(w.Mean()-2) > 1e-15 {
		t.Errorf("N=%d Mean=%g after non-finite adds, want 2 / 2", w.N(), w.Mean())
	}
}

// TestWindowSummaryMatchesOffline is the satellite agreement guarantee:
// a window summary over a stream must equal an offline regress.Evaluate
// over the last-capacity suffix of the same stream, bit for bit.
func TestWindowSummaryMatchesOffline(t *testing.T) {
	const capacity, total = 16, 53
	rng := rand.New(rand.NewSource(7))
	w := NewWindow(capacity)
	var pred, actual []float64
	for i := 0; i < total; i++ {
		p := 1 + rng.Float64()
		a := p * (1 + 0.1*rng.NormFloat64())
		pred = append(pred, p)
		actual = append(actual, a)
		w.Add(p, a)

		n := i + 1
		if n > capacity {
			n = capacity
		}
		if w.Len() != n {
			t.Fatalf("step %d: Len = %d, want %d", i, w.Len(), n)
		}
		suffixP := pred[len(pred)-n:]
		suffixA := actual[len(actual)-n:]
		want, err := regress.Evaluate(suffixA, suffixP)
		if err != nil {
			t.Fatal(err)
		}
		got := w.Summary()
		if got != want {
			t.Fatalf("step %d: Summary = %+v, offline regress.Evaluate = %+v", i, got, want)
		}
	}
}

func TestWindowPairsOrder(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Add(float64(i), float64(10*i))
	}
	pred, actual := w.Pairs()
	wantP := []float64{3, 4, 5}
	wantA := []float64{30, 40, 50}
	for i := range wantP {
		if pred[i] != wantP[i] || actual[i] != wantA[i] {
			t.Fatalf("Pairs = %v/%v, want %v/%v", pred, actual, wantP, wantA)
		}
	}
	if w.Cap() != 3 {
		t.Errorf("Cap = %d, want 3", w.Cap())
	}
}

func TestWindowRejectsNonFinite(t *testing.T) {
	w := NewWindow(4)
	w.Add(math.NaN(), 1)
	w.Add(1, math.Inf(-1))
	if w.Len() != 0 {
		t.Errorf("Len = %d after non-finite pairs, want 0", w.Len())
	}
	if got := w.Summary(); got != (regress.Report{}) {
		t.Errorf("empty Summary = %+v, want zero report", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var w *Welford
	w.Add(1)
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("nil Welford is not a no-op")
	}
	var win *Window
	win.Add(1, 2)
	if win.Len() != 0 || win.Cap() != 0 {
		t.Error("nil Window is not a no-op")
	}
	if p, a := win.Pairs(); p != nil || a != nil {
		t.Error("nil Window.Pairs not nil")
	}
	if win.Summary() != (regress.Report{}) {
		t.Error("nil Window.Summary not zero")
	}
	if NewWindow(0) != nil {
		t.Error("NewWindow(0) must be nil")
	}
	var ph *PageHinkley
	if ph.Add(100) || ph.N() != 0 {
		t.Error("nil PageHinkley is not a no-op")
	}
	ph.Reset()
}

// TestPageHinkleySilentOnStationaryNoise: zero-mean noise around a
// constant level must never fire — the running mean absorbs the level
// and δ absorbs the noise.
func TestPageHinkleySilentOnStationaryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewPageHinkley(PHConfig{Delta: 0.5, Lambda: 8, Warmup: 3})
	for i := 0; i < 2000; i++ {
		x := 0.25 + 0.1*rng.NormFloat64()
		if d.Add(x) {
			t.Fatalf("fired on stationary noise at sample %d", i)
		}
	}
}

// TestPageHinkleyFiresOnUpwardShift: a sustained upward level shift
// well beyond δ must fire within a few samples, then the detector
// resets and can fire again on the next shift.
func TestPageHinkleyFiresOnUpwardShift(t *testing.T) {
	d := NewPageHinkley(PHConfig{Delta: 0.5, Lambda: 8, Warmup: 3})
	for i := 0; i < 20; i++ {
		if d.Add(0.1) {
			t.Fatalf("fired on the flat prefix at sample %d", i)
		}
	}
	fired := -1
	for i := 0; i < 10; i++ {
		if d.Add(10) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("never fired on a 100x upward shift")
	}
	if d.N() != 0 {
		t.Errorf("detector did not reset after firing: N = %d", d.N())
	}
	// After the reset the new level is the baseline; it must re-arm and
	// detect a second, later shift.
	for i := 0; i < 20; i++ {
		if d.Add(10) && d.N() != 0 {
			t.Fatal("inconsistent reset state")
		}
	}
}

// TestPageHinkleyDirection: increase-only detectors must ignore
// speedups; Both must catch them.
func TestPageHinkleyDirection(t *testing.T) {
	feed := func(d *PageHinkley) bool {
		for i := 0; i < 20; i++ {
			if d.Add(10) {
				return true
			}
		}
		for i := 0; i < 10; i++ {
			if d.Add(0.1) {
				return true
			}
		}
		return false
	}
	if feed(NewPageHinkley(PHConfig{Delta: 0.5, Lambda: 8, Warmup: 3, Direction: Increase})) {
		t.Error("Increase detector fired on a downward shift")
	}
	if !feed(NewPageHinkley(PHConfig{Delta: 0.5, Lambda: 8, Warmup: 3, Direction: Both})) {
		t.Error("Both detector missed a downward shift")
	}
	if !feed(NewPageHinkley(PHConfig{Delta: 0.5, Lambda: 8, Warmup: 3, Direction: Decrease})) {
		t.Error("Decrease detector missed a downward shift")
	}
}

func TestPageHinkleyWarmupSuppresses(t *testing.T) {
	d := NewPageHinkley(PHConfig{Delta: 0.01, Lambda: 0.1, Warmup: 50})
	for i := 0; i < 50; i++ {
		if d.Add(float64(i)) {
			t.Fatalf("fired inside warmup at sample %d", i)
		}
	}
}
