package streamstat

import (
	"testing"

	"convmeter/internal/testrace"
)

// TestStreamStatZeroAllocs pins the per-observation allocation contract
// of the stats kernel roots declared in lint.config: Welford.Add,
// Window.Add, Window.Summary and PageHinkley.Add run on every drift
// observation and must not touch the heap — Summary stages its pairs in
// the window's preallocated scratch.
func TestStreamStatZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	var wf Welford
	win := NewWindow(128)
	ph := NewPageHinkley(PHConfig{})
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		x := float64(i%16) * 0.001
		wf.Add(x)
		win.Add(1+x, 1+2*x)
		if sum := win.Summary(); sum.RMSE < 0 {
			t.Fatal("impossible summary")
		}
		ph.Add(x)
		i++
	}); n != 0 {
		t.Errorf("streamstat observe path allocates %.2f/op, want 0", n)
	}
}
