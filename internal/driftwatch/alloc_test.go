package driftwatch

import (
	"testing"

	"convmeter/internal/obs"
	"convmeter/internal/testrace"
)

// TestObserveZeroAllocs pins the Stream.Observe allocation contract the
// hotpath analyzer enforces statically: a steady-state observation —
// window update, Welford fold, Page-Hinkley test, rolling accuracy
// summary and live telemetry — allocates nothing. Only a drift event
// (rare by construction) pays for its span. The feed here is drift-free
// so the hot path stays on the non-fired branch.
func TestObserveZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	m := New(Config{Obs: obs.New()})
	s := m.Stream("resnet50", "fwd")
	i := 0
	observe := func() {
		// Small bounded jitter, far below the detector's delta.
		p := 1 + 1e-4*float64(i%8)
		s.Observe(p, p)
		i++
	}
	for j := 0; j < 256; j++ {
		observe() // fill the rolling window to steady state
	}
	if n := testing.AllocsPerRun(200, observe); n != 0 {
		t.Errorf("Stream.Observe allocates %.2f/op, want 0", n)
	}
}
