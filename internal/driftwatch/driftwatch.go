// Package driftwatch is ConvMeter's streaming prediction-quality
// monitor: it ingests (predicted, measured) runtime pairs per
// model/phase — from the live training loop, bench sweeps, and the
// experiments harness — and continuously answers the question the
// offline LOMO reports only answer at exit: are the analytical model's
// predictions still tracking reality *right now*?
//
// Each stream keeps a rolling window whose R²/RMSE/NRMSE/MAPE are the
// exact internal/regress definitions (see streamstat.Window.Summary), a
// Welford accumulator over relative residuals, and a Page-Hinkley
// detector that raises a drift event when the residual level shifts.
// A drift event increments convmeter_drift_events_total{model,phase},
// drops a zero-length span annotation into the trace, latches the
// stream's /drift state to "drifting", and invokes the monitor's
// OnDrift hook (the experiments harness uses it as a refit trigger).
//
// driftwatch sits on the *measured* side of the repository's boundary:
// it consumes wall-clock measurements. The arithmetic it runs on them
// lives in the deterministic sub-package streamstat. All handles are
// nil-safe — a nil *Monitor hands out nil *Streams whose Observe is a
// true no-op — so disabled monitoring costs nothing.
package driftwatch

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"

	"convmeter/internal/driftwatch/streamstat"
	"convmeter/internal/obs"
)

// State is a stream's lifecycle position, as reported on /drift.
type State string

// Stream states. Drifting latches: once a drift event fires the stream
// stays drifting until Recalibrate.
const (
	StateCalibrating State = "calibrating" // collecting the κ calibration pairs
	StateWarmup      State = "warmup"      // detector mean still settling
	StateOK          State = "ok"          // tracking, no shift detected
	StateDrifting    State = "drifting"    // a residual shift was detected
)

// stateValue maps states onto the convmeter_drift_state gauge.
func stateValue(s State) float64 {
	switch s {
	case StateCalibrating:
		return 0
	case StateWarmup:
		return 1
	case StateOK:
		return 2
	case StateDrifting:
		return 3
	}
	return math.NaN()
}

// Options parameterise one stream. The zero value selects the package
// defaults, so feeds only set what they know about their own residual
// scale.
type Options struct {
	// Window is the rolling-window capacity for the online accuracy
	// metrics. Default 128.
	Window int
	// Delta, Lambda, Warmup and Direction parameterise the Page-Hinkley
	// detector; see streamstat.PHConfig for the defaults.
	Delta     float64
	Lambda    float64
	Warmup    int
	Direction streamstat.Direction
	// CalibrateN is the number of leading pairs folded into a one-point
	// hardware calibration factor κ = mean(measured)/mean(predicted):
	// a predictor fitted on simulated coefficients then retargets the
	// deployment host from its first observations, so drift detection
	// measures *shifts*, not the constant sim-vs-host offset. Default 0
	// (κ = 1 — feeds whose predictor already matches the data source,
	// e.g. in-sample sweeps, stay bit-comparable to offline evaluation).
	CalibrateN int
}

func (o Options) window() int {
	if o.Window <= 0 {
		return 128
	}
	return o.Window
}

// Event describes one drift detection, delivered to Config.OnDrift.
type Event struct {
	Model  string
	Phase  string
	Events int     // cumulative events on this stream, including this one
	Stream *Stream // the stream that drifted; hooks may Recalibrate it

	// CausePhase and CauseWorker carry the latest critical-path
	// attribution fed via NoteCause at the moment the event fired:
	// which phase (compute/comm/wait) dominated the last analyzed step
	// and which worker, if any, was blamed for its waits. Empty / -1
	// when no attribution source is wired.
	CausePhase  string
	CauseWorker int
}

// Config parameterises a Monitor.
type Config struct {
	// Defaults applies to streams created via Stream; StreamOpts
	// overrides it per stream.
	Defaults Options
	// OnDrift, when set, is invoked synchronously (outside stream locks)
	// on every drift event.
	OnDrift func(Event)
	// Obs receives the drift counters, gauges and span annotations.
	Obs *obs.Obs
}

// Monitor multiplexes drift streams keyed by (model, phase). A nil
// *Monitor is a valid disabled monitor.
type Monitor struct {
	cfg      Config
	streamsG *obs.Gauge
	mu       sync.Mutex
	streams  map[string]*Stream
}

// New returns an enabled monitor.
func New(cfg Config) *Monitor {
	return &Monitor{
		cfg: cfg, streams: make(map[string]*Stream),
		streamsG: cfg.Obs.Gauge("convmeter_drift_streams",
			"drift streams currently monitored"),
	}
}

// Stream returns the stream for (model, phase), creating it with the
// monitor's default options on first use. Nil on a nil monitor.
func (m *Monitor) Stream(model, phase string) *Stream {
	if m == nil {
		return nil
	}
	return m.StreamOpts(model, phase, m.cfg.Defaults)
}

// StreamOpts returns the stream for (model, phase), creating it with
// opts on first use. Options of an existing stream are not changed:
// the first creator wins, later callers share its stream.
func (m *Monitor) StreamOpts(model, phase string, opts Options) *Stream {
	if m == nil {
		return nil
	}
	key := model + "\x00" + phase
	m.mu.Lock()
	s, ok := m.streams[key]
	m.mu.Unlock()
	if ok {
		return s
	}
	// Build outside the monitor lock: handle registration takes the
	// registry lock and must not nest under ours.
	s = newStream(model, phase, opts, m.cfg)
	m.mu.Lock()
	if prior, ok := m.streams[key]; ok {
		s = prior // lost a creation race; the first insert wins
	} else {
		m.streams[key] = s
	}
	n := len(m.streams)
	m.mu.Unlock()
	m.streamsG.Set(float64(n))
	return s
}

// Events returns the cumulative drift-event count across all streams
// (0 on nil).
func (m *Monitor) Events() int {
	var total int
	for _, s := range m.snapshotStreams() {
		total += s.Events()
	}
	return total
}

func (m *Monitor) snapshotStreams() []*Stream {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		out = append(out, s)
	}
	m.mu.Unlock()
	return out
}

// Snapshot captures every stream's state, sorted by (model, phase).
// Safe on nil (empty snapshot).
func (m *Monitor) Snapshot() Snapshot {
	streams := m.snapshotStreams()
	snap := Snapshot{Streams: make([]StreamSnapshot, 0, len(streams))}
	for _, s := range streams {
		ss := s.Snapshot()
		snap.Streams = append(snap.Streams, ss)
		snap.Events += ss.Events
	}
	sort.Slice(snap.Streams, func(i, j int) bool {
		a, b := snap.Streams[i], snap.Streams[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Phase < b.Phase
	})
	return snap
}

// WriteJSON writes the monitor snapshot as indented JSON — the /drift
// payload. Safe on nil (writes an empty snapshot).
func (m *Monitor) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Snapshot is the JSON document served on /drift.
type Snapshot struct {
	Streams []StreamSnapshot `json:"streams"`
	Events  int              `json:"events_total"`
}

// WindowReport carries the rolling window's regress metrics.
type WindowReport struct {
	N     int     `json:"n"`
	R2    float64 `json:"r2"`
	RMSE  float64 `json:"rmse"`
	NRMSE float64 `json:"nrmse"`
	MAPE  float64 `json:"mape"`
}

// StreamSnapshot is one stream's entry in the /drift document.
type StreamSnapshot struct {
	Model        string       `json:"model"`
	Phase        string       `json:"phase"`
	State        State        `json:"state"`
	Pairs        int          `json:"pairs"`
	Events       int          `json:"events"`
	Kappa        float64      `json:"kappa"`
	ResidualMean float64      `json:"residual_mean"`
	ResidualStd  float64      `json:"residual_std"`
	CausePhase   string       `json:"cause_phase,omitempty"`
	CauseWorker  int          `json:"cause_worker"`
	Window       WindowReport `json:"window"`
}

// Stream watches one (model, phase) prediction feed. A nil *Stream
// ignores every call.
type Stream struct {
	model, phase string
	driftSpan    string // precomputed span name, so drift events do not build strings on the observe path
	opts         Options
	o            *obs.Obs
	onDrift      func(Event)

	// handles, created once at stream construction
	eventsC *obs.Counter
	pairsC  *obs.Counter
	stateG  *obs.Gauge
	kappaG  *obs.Gauge
	r2G     *obs.Gauge
	rmseG   *obs.Gauge
	nrmseG  *obs.Gauge
	mapeG   *obs.Gauge

	mu          sync.Mutex
	calN        int
	calPred     float64
	calMeas     float64
	kappa       float64
	win         *streamstat.Window
	res         streamstat.Welford
	ph          *streamstat.PageHinkley
	pairs       int
	events      int
	drifting    bool
	causePhase  string
	causeWorker int
}

func newStream(model, phase string, opts Options, cfg Config) *Stream {
	o := cfg.Obs
	lbl := func(name string) string {
		return obs.Label(name, "model", model, "phase", phase)
	}
	s := &Stream{
		model:     model,
		phase:     phase,
		driftSpan: "drift:" + model + "/" + phase,
		opts:      opts,
		o:         o,
		onDrift:   cfg.OnDrift,

		eventsC: o.Counter(lbl("convmeter_drift_events_total"), "prediction-drift events detected (Page-Hinkley)"),
		pairsC:  o.Counter(lbl("convmeter_drift_pairs_total"), "(predicted, measured) pairs observed"),
		stateG:  o.Gauge(lbl("convmeter_drift_state"), "stream state: 0 calibrating, 1 warmup, 2 ok, 3 drifting"),
		kappaG:  o.Gauge(lbl("convmeter_drift_kappa"), "one-point hardware calibration factor applied to predictions"),
		r2G:     o.Gauge(lbl("convmeter_drift_window_r2"), "rolling-window R² of predicted vs measured"),
		rmseG:   o.Gauge(lbl("convmeter_drift_window_rmse"), "rolling-window RMSE (seconds)"),
		nrmseG:  o.Gauge(lbl("convmeter_drift_window_nrmse"), "rolling-window NRMSE"),
		mapeG:   o.Gauge(lbl("convmeter_drift_window_mape"), "rolling-window MAPE (percent)"),

		kappa:       1,
		causeWorker: -1,
		win:         streamstat.NewWindow(opts.window()),
		ph: streamstat.NewPageHinkley(streamstat.PHConfig{
			Delta:     opts.Delta,
			Lambda:    opts.Lambda,
			Warmup:    opts.Warmup,
			Direction: opts.Direction,
		}),
	}
	s.stateG.Set(stateValue(s.initialState()))
	s.kappaG.Set(1)
	return s
}

func (s *Stream) initialState() State {
	if s.opts.CalibrateN > 0 {
		return StateCalibrating
	}
	return StateWarmup
}

// Model returns the stream's model label ("" on nil).
func (s *Stream) Model() string {
	if s == nil {
		return ""
	}
	return s.model
}

// Phase returns the stream's phase label ("" on nil).
func (s *Stream) Phase() string {
	if s == nil {
		return ""
	}
	return s.phase
}

// Observe feeds one (predicted, measured) pair, both in seconds.
// Non-finite or non-positive predictions are counted but otherwise
// ignored — a degenerate predictor must not wedge the detector.
// Safe on nil and from concurrent goroutines.
func (s *Stream) Observe(predicted, measured float64) {
	if s == nil {
		return
	}
	finite := !math.IsNaN(predicted) && !math.IsInf(predicted, 0) &&
		!math.IsNaN(measured) && !math.IsInf(measured, 0)

	s.mu.Lock()
	s.pairs++
	if !finite || predicted <= 0 || measured <= 0 {
		s.mu.Unlock()
		s.pairsC.Inc()
		return
	}
	if s.calN < s.opts.CalibrateN {
		s.calN++
		s.calPred += predicted
		s.calMeas += measured
		if s.calN == s.opts.CalibrateN && s.calPred > 0 {
			s.kappa = s.calMeas / s.calPred
		}
		kappa, state := s.kappa, s.stateLocked()
		s.mu.Unlock()
		s.pairsC.Inc()
		s.kappaG.Set(kappa)
		s.stateG.Set(stateValue(state))
		return
	}
	adj := s.kappa * predicted
	s.win.Add(adj, measured)
	x := (measured - adj) / adj // relative residual; adj > 0 by the guards above
	s.res.Add(x)
	fired := s.ph.Add(x)
	if fired {
		s.events++
		s.drifting = true
	}
	events := s.events
	state := s.stateLocked()
	sum := s.win.Summary()
	causePhase, causeWorker := s.causePhase, s.causeWorker
	s.mu.Unlock()

	// Telemetry and hooks run outside the stream lock: handle methods are
	// lock-free or take the registry's own lock, and OnDrift may call
	// back into the stream (Recalibrate).
	s.pairsC.Inc()
	s.stateG.Set(stateValue(state))
	s.r2G.Set(sum.R2)
	s.rmseG.Set(sum.RMSE)
	s.nrmseG.Set(sum.NRMSE)
	s.mapeG.Set(sum.MAPE)
	if fired {
		s.eventsC.Inc()
		s.o.Start(s.driftSpan).End()
		if s.onDrift != nil {
			s.onDrift(Event{
				Model: s.model, Phase: s.phase, Events: events, Stream: s,
				CausePhase: causePhase, CauseWorker: causeWorker,
			})
		}
	}
}

// NoteCause records the latest critical-path attribution for this
// stream's feed: the dominant phase of the last analyzed step and the
// blamed worker (-1 when none). Drift events fired by subsequent
// Observe calls carry these values, so an alert names not just *that*
// predictions drifted but *where* the step time went when they did.
// Safe on nil and from concurrent goroutines.
func (s *Stream) NoteCause(phase string, worker int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.causePhase = phase
	s.causeWorker = worker
	s.mu.Unlock()
}

func (s *Stream) stateLocked() State {
	switch {
	case s.drifting:
		return StateDrifting
	case s.calN < s.opts.CalibrateN:
		return StateCalibrating
	case s.ph.N() < s.ph.Warmup():
		return StateWarmup
	default:
		return StateOK
	}
}

// Events returns the stream's cumulative drift-event count (0 on nil).
func (s *Stream) Events() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Snapshot captures the stream's current state. Safe on nil.
func (s *Stream) Snapshot() StreamSnapshot {
	if s == nil {
		return StreamSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := s.win.Summary()
	return StreamSnapshot{
		Model:        s.model,
		Phase:        s.phase,
		State:        s.stateLocked(),
		Pairs:        s.pairs,
		Events:       s.events,
		Kappa:        s.kappa,
		ResidualMean: s.res.Mean(),
		ResidualStd:  s.res.Std(),
		CausePhase:   s.causePhase,
		CauseWorker:  s.causeWorker,
		Window: WindowReport{
			N:     s.win.Len(),
			R2:    sum.R2,
			RMSE:  sum.RMSE,
			NRMSE: sum.NRMSE,
			MAPE:  sum.MAPE,
		},
	}
}

// Recalibrate resets the stream to a fresh calibration: κ, window,
// residual moments and detector restart from the next observations,
// the drifting latch clears, and only the cumulative pair and event
// counts survive. This is the refit path after a detected hardware
// regime change. Safe on nil.
func (s *Stream) Recalibrate() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.calN, s.calPred, s.calMeas = 0, 0, 0
	s.kappa = 1
	s.win = streamstat.NewWindow(s.opts.window())
	s.res = streamstat.Welford{}
	s.ph.Reset()
	s.drifting = false
	state := s.stateLocked()
	s.mu.Unlock()
	s.kappaG.Set(1)
	s.stateG.Set(stateValue(state))
}
