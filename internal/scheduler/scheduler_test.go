package scheduler

import (
	"testing"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/netsim"
	"convmeter/internal/trainsim"
)

// fitPlanner builds a planner from a reduced distributed sweep.
func fitPlanner(t *testing.T) *Planner {
	t.Helper()
	sc := bench.DefaultDistributedScenario(21)
	sc.Models = []string{"alexnet", "resnet18", "resnet50", "vgg11", "mobilenet_v2", "densenet121"}
	sc.Images = []int{64, 128}
	sc.Batches = []int{16, 64}
	samples, err := bench.CollectTraining(sc)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := core.FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(tm)
}

func groundTruthSim(t *testing.T) *trainsim.Simulator {
	t.Helper()
	sim, err := trainsim.New(trainsim.Config{
		Device: hwsim.A100(), Fabric: netsim.Cluster(), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// heterogeneousJobs mixes a heavy job with light ones so allocation
// actually matters.
func heterogeneousJobs() []Job {
	return []Job{
		{ID: "big-resnet", Model: "resnet50", Image: 128, DatasetSize: 1281167, Epochs: 2, BatchPerDevice: 64},
		{ID: "small-mobilenet", Model: "mobilenet_v2", Image: 64, DatasetSize: 50000, Epochs: 2, BatchPerDevice: 64},
		{ID: "tiny-alexnet", Model: "alexnet", Image: 64, DatasetSize: 50000, Epochs: 2, BatchPerDevice: 64},
	}
}

func TestPredictJobTimeScalesDown(t *testing.T) {
	p := fitPlanner(t)
	job := heterogeneousJobs()[0]
	t1, err := p.PredictJobTime(job, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := p.PredictJobTime(job, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4 >= t1 {
		t.Fatalf("more nodes should shorten the job: %g vs %g", t4, t1)
	}
	if t1 <= 0 {
		t.Fatal("non-positive prediction")
	}
}

func TestPlanUsesWholeClusterSensibly(t *testing.T) {
	p := fitPlanner(t)
	jobs := heterogeneousJobs()
	cluster := Cluster{Nodes: 12, GPUsPerNode: 4}
	alloc, makespan, err := p.Plan(jobs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalNodes() > cluster.Nodes {
		t.Fatalf("allocated %d nodes of %d", alloc.TotalNodes(), cluster.Nodes)
	}
	for _, j := range jobs {
		if alloc[j.ID] < 1 {
			t.Fatalf("job %s got no nodes", j.ID)
		}
	}
	if makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	// The ImageNet-scale ResNet-50 job must receive the lion's share.
	if alloc["big-resnet"] <= alloc["tiny-alexnet"] {
		t.Fatalf("heavy job got %d nodes, light job %d", alloc["big-resnet"], alloc["tiny-alexnet"])
	}
}

func TestPlannerBeatsEqualSplit(t *testing.T) {
	p := fitPlanner(t)
	jobs := heterogeneousJobs()
	cluster := Cluster{Nodes: 12, GPUsPerNode: 4}
	planned, _, err := p.Plan(jobs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	equal, err := EqualSplit(jobs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	sim := groundTruthSim(t)
	plannedMakespan, err := SimulateMakespan(jobs, planned, cluster, sim)
	if err != nil {
		t.Fatal(err)
	}
	equalMakespan, err := SimulateMakespan(jobs, equal, cluster, sim)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim of predictive scheduling: the ConvMeter-driven
	// plan finishes the workload sooner than the prediction-free split,
	// measured against the simulator ground truth.
	if plannedMakespan >= equalMakespan {
		t.Fatalf("planned makespan %.1fs should beat equal split %.1fs", plannedMakespan, equalMakespan)
	}
}

func TestPlanErrors(t *testing.T) {
	p := fitPlanner(t)
	if _, _, err := p.Plan(nil, Cluster{Nodes: 4, GPUsPerNode: 4}); err == nil {
		t.Fatal("expected no-jobs error")
	}
	jobs := heterogeneousJobs()
	if _, _, err := p.Plan(jobs, Cluster{Nodes: 2, GPUsPerNode: 4}); err == nil {
		t.Fatal("expected too-few-nodes error")
	}
	dup := append([]Job{}, jobs...)
	dup[1].ID = dup[0].ID
	if _, _, err := p.Plan(dup, Cluster{Nodes: 12, GPUsPerNode: 4}); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
	bad := append([]Job{}, jobs...)
	bad[0].Epochs = 0
	if _, _, err := p.Plan(bad, Cluster{Nodes: 12, GPUsPerNode: 4}); err == nil {
		t.Fatal("expected invalid-job error")
	}
}

func TestEqualSplit(t *testing.T) {
	jobs := heterogeneousJobs()
	alloc, err := EqualSplit(jobs, Cluster{Nodes: 8, GPUsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalNodes() != 8 {
		t.Fatalf("equal split allocated %d of 8", alloc.TotalNodes())
	}
	if _, err := EqualSplit(nil, Cluster{Nodes: 8}); err == nil {
		t.Fatal("expected no-jobs error")
	}
	if _, err := EqualSplit(jobs, Cluster{Nodes: 2}); err == nil {
		t.Fatal("expected too-few-nodes error")
	}
}

func TestSimulateMakespanErrors(t *testing.T) {
	sim := groundTruthSim(t)
	jobs := heterogeneousJobs()
	if _, err := SimulateMakespan(jobs, Allocation{}, Cluster{GPUsPerNode: 4}, sim); err == nil {
		t.Fatal("expected missing-allocation error")
	}
}
