// Package scheduler is the downstream use case the paper's introduction
// motivates: DNN-specific training schedulers "commonly depend on or can
// profit from a performance prediction tool". It plans node allocations
// for a set of training jobs on a shared GPU cluster using ConvMeter's
// predicted epoch times — no job has to run before the plan is made —
// and is evaluated against the training simulator as ground truth.
package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"convmeter/internal/core"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/trainsim"
)

// Job is one training job to place.
type Job struct {
	ID             string
	Model          string // zoo model name
	Image          int    // input image size
	DatasetSize    int    // images per epoch
	Epochs         int
	BatchPerDevice int
}

// validate rejects malformed jobs.
func (j Job) validate() error {
	if j.ID == "" {
		return errors.New("scheduler: job without ID")
	}
	if j.DatasetSize <= 0 || j.Epochs <= 0 || j.BatchPerDevice <= 0 || j.Image <= 0 {
		return fmt.Errorf("scheduler: job %s has non-positive parameters", j.ID)
	}
	return nil
}

// Cluster is a pool of identical GPU nodes.
type Cluster struct {
	Nodes       int
	GPUsPerNode int
}

// Allocation maps job IDs to node counts. Jobs run side by side, each on
// its own node subset.
type Allocation map[string]int

// TotalNodes sums the allocated nodes.
func (a Allocation) TotalNodes() int {
	total := 0
	for _, n := range a {
		total += n
	}
	return total
}

// Planner allocates cluster nodes using a fitted ConvMeter training
// model.
type Planner struct {
	tm *core.TrainingModel
	// met caches job-model metrics.
	met map[string]metrics.Metrics
}

// NewPlanner wraps a fitted training model.
func NewPlanner(tm *core.TrainingModel) *Planner {
	return &Planner{tm: tm, met: map[string]metrics.Metrics{}}
}

// jobMetrics builds (and caches) the metrics for a job's model/image.
func (p *Planner) jobMetrics(j Job) (metrics.Metrics, error) {
	key := fmt.Sprintf("%s@%d", j.Model, j.Image)
	if m, ok := p.met[key]; ok {
		return m, nil
	}
	g, err := models.Build(j.Model, j.Image)
	if err != nil {
		return metrics.Metrics{}, err
	}
	m, err := metrics.FromGraph(g)
	if err != nil {
		return metrics.Metrics{}, err
	}
	p.met[key] = m
	return m, nil
}

// PredictJobTime estimates a job's total training time on the given node
// count.
func (p *Planner) PredictJobTime(j Job, nodes, gpusPerNode int) (float64, error) {
	if err := j.validate(); err != nil {
		return 0, err
	}
	if nodes <= 0 || gpusPerNode <= 0 {
		return 0, fmt.Errorf("scheduler: invalid topology %d nodes × %d GPUs", nodes, gpusPerNode)
	}
	m, err := p.jobMetrics(j)
	if err != nil {
		return 0, err
	}
	devices := nodes * gpusPerNode
	epoch := p.tm.PredictEpoch(m, j.DatasetSize, float64(j.BatchPerDevice), devices, nodes)
	return float64(epoch) * float64(j.Epochs), nil
}

// Plan allocates every node of the cluster across the jobs to minimise
// the predicted makespan (the time until the slowest job finishes). The
// algorithm starts every job on one node, then repeatedly grants one more
// node to the job that currently dominates the makespan as long as the
// grant helps — a classic greedy that is optimal for monotone speedup
// curves at this granularity.
func (p *Planner) Plan(jobs []Job, cluster Cluster) (Allocation, float64, error) {
	if len(jobs) == 0 {
		return nil, 0, errors.New("scheduler: no jobs")
	}
	if cluster.Nodes < len(jobs) {
		return nil, 0, fmt.Errorf("scheduler: %d jobs need at least as many nodes, cluster has %d", len(jobs), cluster.Nodes)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if err := j.validate(); err != nil {
			return nil, 0, err
		}
		if seen[j.ID] {
			return nil, 0, fmt.Errorf("scheduler: duplicate job ID %q", j.ID)
		}
		seen[j.ID] = true
	}
	alloc := Allocation{}
	times := map[string]float64{}
	for _, j := range jobs {
		alloc[j.ID] = 1
		t, err := p.PredictJobTime(j, 1, cluster.GPUsPerNode)
		if err != nil {
			return nil, 0, err
		}
		times[j.ID] = t
	}
	free := cluster.Nodes - len(jobs)
	byID := map[string]Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for free > 0 {
		// Find the job dominating the makespan.
		worstID := ""
		worst := -1.0
		for id, t := range times {
			if t > worst {
				worst, worstID = t, id
			}
		}
		j := byID[worstID]
		t, err := p.PredictJobTime(j, alloc[worstID]+1, cluster.GPUsPerNode)
		if err != nil {
			return nil, 0, err
		}
		if t >= times[worstID] {
			// Adding a node no longer helps the bottleneck job; granting
			// it elsewhere cannot reduce the makespan either.
			break
		}
		alloc[worstID]++
		times[worstID] = t
		free--
	}
	makespan := 0.0
	for _, t := range times {
		if t > makespan {
			makespan = t
		}
	}
	return alloc, makespan, nil
}

// EqualSplit is the prediction-free baseline: nodes divided as evenly as
// possible, remainders to the first jobs in ID order.
func EqualSplit(jobs []Job, cluster Cluster) (Allocation, error) {
	if len(jobs) == 0 {
		return nil, errors.New("scheduler: no jobs")
	}
	if cluster.Nodes < len(jobs) {
		return nil, fmt.Errorf("scheduler: %d jobs, %d nodes", len(jobs), cluster.Nodes)
	}
	ids := make([]string, 0, len(jobs))
	for _, j := range jobs {
		ids = append(ids, j.ID)
	}
	sort.Strings(ids)
	alloc := Allocation{}
	base := cluster.Nodes / len(jobs)
	rem := cluster.Nodes % len(jobs)
	for i, id := range ids {
		alloc[id] = base
		if i < rem {
			alloc[id]++
		}
	}
	return alloc, nil
}

// SimulateMakespan measures an allocation's actual makespan with the
// training simulator as ground truth.
func SimulateMakespan(jobs []Job, alloc Allocation, cluster Cluster, sim *trainsim.Simulator) (float64, error) {
	makespan := 0.0
	for _, j := range jobs {
		nodes, ok := alloc[j.ID]
		if !ok || nodes <= 0 {
			return 0, fmt.Errorf("scheduler: job %s missing from allocation", j.ID)
		}
		g, err := models.Build(j.Model, j.Image)
		if err != nil {
			return 0, err
		}
		devices := nodes * cluster.GPUsPerNode
		p, err := sim.TrainStepExact(g, j.BatchPerDevice, devices, nodes)
		if err != nil {
			return 0, err
		}
		epoch := trainsim.EpochTime(p.Iter, j.DatasetSize, j.BatchPerDevice, devices)
		if t := epoch * float64(j.Epochs); t > makespan {
			makespan = t
		}
	}
	return makespan, nil
}
