package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFitFeedsDriftMetrics: a fit run with -metrics-out must export the
// drift monitor's per-model rolling-window series — the in-sample feed
// that makes a fitted model's accuracy scrapeable alongside the runtime
// metrics.
func TestFitFeedsDriftMetrics(t *testing.T) {
	data := writeSmallDataset(t, false)
	dir := t.TempDir()
	coeff := filepath.Join(dir, "m.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	code, _, errOut := run(t, "fit", "-kind", "inference", "-data", data,
		"-out", coeff, "-metrics-out", metricsPath)
	if code != 0 {
		t.Fatalf("fit failed: %s", errOut)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		`convmeter_drift_pairs_total{model="resnet18",phase="fwd"}`,
		`convmeter_drift_window_r2{model="alexnet",phase="fwd"}`,
		`convmeter_drift_state{model="mobilenet_v2",phase="fwd"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics file missing %s", series)
		}
	}
	if strings.Contains(text, `convmeter_drift_events_total{model="resnet18",phase="fwd"} 1`) {
		t.Error("in-sample feed raised a drift event")
	}

	// Training fit feeds the "iter" phase.
	trainData := writeSmallDataset(t, true)
	metrics2 := filepath.Join(dir, "metrics2.prom")
	code, _, errOut = run(t, "fit", "-kind", "train-multi", "-data", trainData,
		"-out", filepath.Join(dir, "t.json"), "-metrics-out", metrics2)
	if code != 0 {
		t.Fatalf("train fit failed: %s", errOut)
	}
	raw, err = os.ReadFile(metrics2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `convmeter_drift_pairs_total{model="resnet50",phase="iter"}`) {
		t.Error("training fit did not feed the iter phase")
	}
}

// TestOpsAddrRejected: a malformed -ops-addr must fail the command
// before any work runs.
func TestOpsAddrRejected(t *testing.T) {
	code, _, errOut := run(t, "predict", "-model", "alexnet", "-image", "64",
		"-ops-addr", "256.256.256.256:0")
	if code != 1 || errOut == "" {
		t.Fatalf("bad ops address accepted: code=%d err=%q", code, errOut)
	}
}
