package cli

import (
	"flag"

	"convmeter/internal/obs"
)

// obsOpts carries the shared telemetry flags (-metrics-out, -trace-out,
// -pprof) that the data-heavy commands (fit, predict, dissect) accept.
type obsOpts struct {
	metricsOut *string
	traceOut   *string
	pprofAddr  *string
}

// addObsFlags registers the telemetry flags on the command's flag set.
func addObsFlags(fs *flag.FlagSet) obsOpts {
	return obsOpts{
		metricsOut: fs.String("metrics-out", "",
			"write collected metrics to this file (Prometheus text; JSONL when the path ends in .jsonl)"),
		traceOut: fs.String("trace-out", "",
			"write recorded spans as Chrome trace-event JSON to this file (open in Perfetto)"),
		pprofAddr: fs.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060) while the command runs; off by default"),
	}
}

// start activates the requested telemetry: a bundle when an output file
// was asked for (nil otherwise — the zero-cost disabled path), and the
// pprof server when -pprof was given. The returned finish func stops
// pprof and exports the output files; call it once the command's work is
// done.
func (oo obsOpts) start() (*obs.Obs, func() error, error) {
	stopPprof := func() {}
	if *oo.pprofAddr != "" {
		stop, err := obs.StartPprof(*oo.pprofAddr)
		if err != nil {
			return nil, nil, err
		}
		stopPprof = stop
	}
	var o *obs.Obs
	if *oo.metricsOut != "" || *oo.traceOut != "" {
		o = obs.New()
	}
	finish := func() error {
		stopPprof()
		return o.Export(*oo.metricsOut, *oo.traceOut)
	}
	return o, finish, nil
}
