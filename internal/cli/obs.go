package cli

import (
	"flag"
	"io"
	"sort"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/driftwatch"
	"convmeter/internal/obs"
	"convmeter/internal/obs/ops"
)

// obsOpts carries the shared observability flags (-metrics-out,
// -trace-out, -ops-addr) that the data-heavy commands (fit, predict,
// dissect) accept.
type obsOpts struct {
	metricsOut *string
	traceOut   *string
	opsAddr    *string
}

// addObsFlags registers the observability flags on the command's flag set.
func addObsFlags(fs *flag.FlagSet) obsOpts {
	return obsOpts{
		metricsOut: fs.String("metrics-out", "",
			"write collected metrics to this file (Prometheus text; JSONL when the path ends in .jsonl)"),
		traceOut: fs.String("trace-out", "",
			"write recorded spans as Chrome trace-event JSON to this file (open in Perfetto)"),
		opsAddr: fs.String("ops-addr", "",
			"serve the live ops endpoints (/metrics, /healthz, /readyz, /trace, /drift, /debug/pprof) on this address (e.g. localhost:6060) while the command runs; off by default"),
	}
}

// obsSession is one command's live observability: the telemetry bundle,
// the drift monitor scraped by /drift, and the ops server (each nil when
// its flags are off). Every accessor tolerates a nil session, so command
// code never branches on whether observability is enabled.
type obsSession struct {
	o     *obs.Obs
	drift *driftwatch.Monitor
	srv   *ops.Server
	oo    obsOpts
}

// start activates whatever the flags asked for: a telemetry bundle and
// drift monitor when any output or the ops server was requested, and the
// ops server itself on -ops-addr (its actual bound address — meaningful
// with :0 — is reported on stderr). Call finish once the command's work
// is done.
func (oo obsOpts) start(stderr io.Writer) (*obsSession, error) {
	s := &obsSession{oo: oo}
	if *oo.metricsOut != "" || *oo.traceOut != "" || *oo.opsAddr != "" {
		s.o = obs.New()
		s.drift = driftwatch.New(driftwatch.Config{Obs: s.o})
	}
	if *oo.opsAddr != "" {
		srv, err := ops.Start(ops.Config{Addr: *oo.opsAddr, Obs: s.o, Drift: s.drift})
		if err != nil {
			return nil, err
		}
		s.srv = srv
		printf(stderr, "convmeter: ops server on http://%s\n", srv.Addr())
	}
	return s, nil
}

// obs returns the telemetry bundle (nil when disabled).
func (s *obsSession) obs() *obs.Obs {
	if s == nil {
		return nil
	}
	return s.o
}

// feedFit streams a fitted model's in-sample accuracy into the drift
// monitor, one stream per model so the /drift endpoint and the rolling
// windows mirror the per-ConvNet layout of the offline reports. A
// session without a monitor drops the feed for free.
func (s *obsSession) feedFit(samples []core.Sample, phase string, predict, actual func(core.Sample) float64) {
	if s == nil || s.drift == nil {
		return
	}
	byModel := map[string][]core.Sample{}
	for _, smp := range samples {
		byModel[smp.Model] = append(byModel[smp.Model], smp)
	}
	names := make([]string, 0, len(byModel))
	for name := range byModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bench.FeedDrift(s.drift.Stream(name, phase), byModel[name], predict, actual)
	}
}

// finish shuts the ops server down (unblocking in-flight scrapes) and
// exports the requested output files.
func (s *obsSession) finish() error {
	if s == nil {
		return nil
	}
	var first error
	if s.srv != nil {
		first = s.srv.Close()
	}
	if err := s.o.Export(*s.oo.metricsOut, *s.oo.traceOut); err != nil && first == nil {
		first = err
	}
	return first
}
