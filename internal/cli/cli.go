// Package cli implements the convmeter command-line tool: model
// inspection (metrics, graph, dot), coefficient fitting with persistence,
// and inference/training/scalability prediction. It lives in a package of
// its own (cmd/convmeter is a thin shim) so every command is unit-tested.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/obs"
	"convmeter/internal/tracefmt"
	"convmeter/internal/trainsim"
)

// Env carries the command environment, injectable for tests.
type Env struct {
	Stdout io.Writer
	Stderr io.Writer
}

// printf and printLn write best-effort console output. The CLI's
// contract is its exit code plus the error path on stderr; once a
// stdout write fails (closed pipe, full disk) there is no better
// channel left to report on, so the write error is discarded here —
// and only here, so convlint's droppederr stays meaningful everywhere
// else.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func printLn(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// Run dispatches a full argument vector (without the program name) and
// returns the process exit code.
func Run(args []string, env Env) int {
	if env.Stdout == nil {
		env.Stdout = os.Stdout
	}
	if env.Stderr == nil {
		env.Stderr = os.Stderr
	}
	if len(args) == 0 {
		usage(env.Stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "models":
		for _, n := range models.Names() {
			printLn(env.Stdout, n)
		}
	case "blocks":
		for _, n := range models.BlockNames() {
			info, _ := models.Block(n)
			printf(env.Stdout, "%-22s from %-18s natural input %dx%dx%d\n",
				n, info.Source, info.InC, info.NaturalHW, info.NaturalHW)
		}
	case "metrics":
		err = runMetrics(rest, env)
	case "graph":
		err = runGraph(rest, env)
	case "dot":
		err = runDot(rest, env)
	case "dissect":
		err = runDissect(rest, env)
	case "timeline":
		err = runTimeline(rest, env)
	case "fit":
		err = runFit(rest, env)
	case "predict":
		err = runPredict(rest, env)
	case "train":
		err = runTrain(rest, env)
	case "scale":
		err = runScale(rest, env)
	case "help", "-h", "--help":
		usage(env.Stdout)
	default:
		printf(env.Stderr, "convmeter: unknown command %q\n\n", cmd)
		usage(env.Stderr)
		return 2
	}
	if err != nil {
		printLn(env.Stderr, "convmeter:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	printLn(w, `convmeter — ConvNet runtime & scalability prediction (ICPP'24 reproduction)

commands:
  models      list the ConvNet zoo
  blocks      list the named Table-2 blocks
  metrics     print the five ConvMeter metrics of a model
  graph       dump a model's computational graph as JSON
  dot         dump a model's computational graph as Graphviz DOT
  dissect     per-segment runtime breakdown of a model (the paper's title operation)
  timeline    Chrome-trace JSON of one simulated training step (Figure 1 structure)
  fit         fit a performance model and save its coefficients as JSON
  predict     predict inference time
  train       predict training step / epoch time
  scale       predict throughput vs node count (weak or strong scaling)`)
}

// modelFlags adds the common -model/-image flags.
func modelFlags(fs *flag.FlagSet) (*string, *int) {
	model := fs.String("model", "resnet50", "zoo model name (see `convmeter models`)")
	image := fs.Int("image", 224, "square input image size in pixels")
	return model, image
}

// parse runs the flag set in error-returning mode.
func parse(fs *flag.FlagSet, args []string, env Env) error {
	fs.SetOutput(env.Stderr)
	return fs.Parse(args)
}

func buildWithMetrics(model string, image int) (*graph.Graph, metrics.Metrics, error) {
	g, err := models.Build(model, image)
	if err != nil {
		return nil, metrics.Metrics{}, err
	}
	met, err := metrics.FromGraph(g)
	if err != nil {
		return nil, metrics.Metrics{}, err
	}
	return g, met, nil
}

func runMetrics(args []string, env Env) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	model, image := modelFlags(fs)
	if err := parse(fs, args, env); err != nil {
		return err
	}
	g, met, err := buildWithMetrics(*model, *image)
	if err != nil {
		return err
	}
	printf(env.Stdout, "model:    %s @ %dx%d\n", *model, *image, *image)
	printf(env.Stdout, "FLOPs:    %.4g\n", met.FLOPs)
	printf(env.Stdout, "Inputs:   %.4g elements\n", met.Inputs)
	printf(env.Stdout, "Outputs:  %.4g elements\n", met.Outputs)
	printf(env.Stdout, "Weights:  %.0f parameters\n", met.Weights)
	printf(env.Stdout, "Layers:   %.0f parameterised layers\n", met.Layers)
	printf(env.Stdout, "Graph:    %d nodes\n", len(g.Nodes))
	return nil
}

func runGraph(args []string, env Env) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	model, image := modelFlags(fs)
	if err := parse(fs, args, env); err != nil {
		return err
	}
	g, err := models.Build(*model, *image)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(env.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

func runDot(args []string, env Env) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	model, image := modelFlags(fs)
	if err := parse(fs, args, env); err != nil {
		return err
	}
	g, err := models.Build(*model, *image)
	if err != nil {
		return err
	}
	return g.WriteDOT(env.Stdout)
}

// segment is a contiguous run of nodes sharing a top-level name prefix
// (e.g. ResNet's stem / layer1..4 / head).
type segment struct {
	name     string
	from, to int
}

// segments groups the graph's nodes by their top-level name prefix.
func segments(g *graph.Graph) []segment {
	var out []segment
	prefix := func(name string) string {
		for i := 0; i < len(name); i++ {
			if name[i] == '.' {
				return name[:i]
			}
		}
		return name
	}
	for i := 1; i < len(g.Nodes); i++ { // skip the input node
		p := prefix(g.Nodes[i].Name)
		if len(out) > 0 && out[len(out)-1].name == p {
			out[len(out)-1].to = i + 1
			continue
		}
		out = append(out, segment{name: p, from: i, to: i + 1})
	}
	return out
}

// runDissect prints the per-segment breakdown: metrics plus the fitted
// model's predicted time share — the block-level "dissection" the paper
// demonstrates in §4.1.2 for NAS and bottleneck hunting.
func runDissect(args []string, env Env) error {
	fs := flag.NewFlagSet("dissect", flag.ContinueOnError)
	model, image := modelFlags(fs)
	batch := fs.Int("batch", 64, "batch size")
	device := fs.String("device", "a100", "simulated device when fitting fresh")
	data := fs.String("data", "", "benchmark dataset CSV")
	coeff := fs.String("coeff", "", "fitted coefficients JSON")
	seed := fs.Int64("seed", 1, "simulator seed")
	oo := addObsFlags(fs)
	if err := parse(fs, args, env); err != nil {
		return err
	}
	sess, err := oo.start(env.Stderr)
	if err != nil {
		return err
	}
	g, met, err := buildWithMetrics(*model, *image)
	if err != nil {
		return err
	}
	m, err := loadInferenceModel(*coeff, *data, *device, *seed, sess.obs())
	if err != nil {
		return err
	}
	total := m.Predict(met, float64(*batch))
	segs := segments(g)
	type row struct {
		seg  segment
		met  metrics.Metrics
		pred float64
	}
	rows := make([]row, 0, len(segs))
	sum := 0.0
	for _, s := range segs {
		sm, err := metrics.FromGraphRange(g, s.from, s.to)
		if err != nil {
			return err
		}
		p := float64(m.Predict(sm, float64(*batch)))
		if p < 0 {
			p = 0
		}
		rows = append(rows, row{seg: s, met: sm, pred: p})
		sum += p
	}
	printf(env.Stdout, "dissection of %s @ %dpx, batch %d (predicted total %.3f ms):\n",
		*model, *image, *batch, total*1e3)
	printf(env.Stdout, "  %-14s %10s %10s %10s %9s %7s\n",
		"segment", "GFLOPs", "In(M)", "Out(M)", "pred ms", "share")
	for _, r := range rows {
		share := 0.0
		if sum > 0 {
			share = r.pred / sum
		}
		printf(env.Stdout, "  %-14s %10.2f %10.2f %10.2f %9.3f %6.1f%%\n",
			r.seg.name,
			float64(r.met.FLOPs)*float64(*batch)/1e9,
			float64(r.met.Inputs)*float64(*batch)/1e6,
			float64(r.met.Outputs)*float64(*batch)/1e6,
			r.pred*1e3, share*100)
	}
	return sess.finish()
}

// runTimeline emits a Chrome trace of one simulated training step.
func runTimeline(args []string, env Env) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	model, image := modelFlags(fs)
	batch := fs.Int("batch", 64, "per-device batch size")
	gpus := fs.Int("gpus", 16, "total GPUs")
	nodes := fs.Int("nodes", 4, "physical nodes")
	out := fs.String("out", "", "output trace path (default stdout)")
	if err := parse(fs, args, env); err != nil {
		return err
	}
	g, err := models.Build(*model, *image)
	if err != nil {
		return err
	}
	sim, err := trainsim.New(trainsim.Config{Device: hwsim.A100(), Fabric: netsim.Cluster(), Seed: 1})
	if err != nil {
		return err
	}
	events, phases, err := sim.Timeline(g, *batch, *gpus, *nodes)
	if err != nil {
		return err
	}
	w := env.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tracefmt.WriteChromeTrace(w, events); err != nil {
		return err
	}
	printf(env.Stderr, "step %.3f ms (fwd %.3f, bwd %.3f, grad %.3f) — open in chrome://tracing or Perfetto\n",
		phases.Iter*1e3, phases.Fwd*1e3, phases.Bwd*1e3, phases.Grad*1e3)
	return nil
}

// deviceByName resolves the simulated device profiles.
func deviceByName(name string) (hwsim.Device, error) {
	switch name {
	case "a100":
		return hwsim.A100(), nil
	case "xeon":
		return hwsim.XeonCore(), nil
	case "jetson":
		return hwsim.JetsonLike(), nil
	case "pi":
		return hwsim.PiLike(), nil
	default:
		return hwsim.Device{}, fmt.Errorf("unknown device %q (a100, xeon, jetson, pi)", name)
	}
}

// loadSamples reads a CSV dataset or collects a simulated sweep. The
// telemetry bundle (nil when disabled) times the CSV read.
func loadSamples(dataPath string, o *obs.Obs, collect func() ([]core.Sample, error)) ([]core.Sample, error) {
	if dataPath == "" {
		return collect()
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.ReadCSVObs(f, o)
}

func runFit(args []string, env Env) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	kind := fs.String("kind", "inference", "inference, train-single or train-multi")
	device := fs.String("device", "a100", "simulated device for dataset generation")
	data := fs.String("data", "", "benchmark dataset CSV (default: simulate)")
	out := fs.String("out", "", "write fitted coefficients to this JSON file (default stdout)")
	seed := fs.Int64("seed", 1, "simulator seed when no dataset is given")
	stats := fs.Bool("stats", false, "also print per-coefficient standard errors and t-values (inference only)")
	oo := addObsFlags(fs)
	if err := parse(fs, args, env); err != nil {
		return err
	}
	sess, err := oo.start(env.Stderr)
	if err != nil {
		return err
	}
	o := sess.obs()
	var payload any
	switch *kind {
	case "inference":
		samples, err := loadSamples(*data, o, func() ([]core.Sample, error) {
			dev, err := deviceByName(*device)
			if err != nil {
				return nil, err
			}
			sc := bench.DefaultInferenceScenario(dev, *seed)
			sc.Obs = o
			return bench.CollectInference(sc)
		})
		if err != nil {
			return err
		}
		m, cs, err := core.InferenceCoefStats(samples)
		if err != nil {
			return err
		}
		sess.feedFit(samples, "fwd",
			func(s core.Sample) float64 { return float64(m.Predict(s.Met, float64(s.BatchPerDevice))) },
			func(s core.Sample) float64 { return float64(s.Fwd) })
		if *stats {
			names := []string{"c1 (FLOPs)", "c2 (Inputs)", "c3 (Outputs)", "c4 (intercept)"}
			printf(env.Stderr, "coefficient statistics (%d samples, %d dof):\n", len(samples), cs.DoF)
			for j, name := range names {
				printf(env.Stderr, "  %-14s %12.4g ± %-10.3g t=%8.1f\n",
					name, cs.Estimate[j], cs.StdErr[j], cs.TValue[j])
			}
		}
		payload = m
	case "train-single", "train-multi":
		samples, err := loadSamples(*data, o, func() ([]core.Sample, error) {
			sc := bench.DefaultSingleGPUScenario(*seed)
			if *kind == "train-multi" {
				sc = bench.DefaultDistributedScenario(*seed)
			}
			sc.Obs = o
			return bench.CollectTraining(sc)
		})
		if err != nil {
			return err
		}
		m, err := core.FitTraining(samples)
		if err != nil {
			return err
		}
		sess.feedFit(samples, "iter",
			func(s core.Sample) float64 {
				return float64(m.PredictIter(s.Met, float64(s.BatchPerDevice), s.Devices, s.Nodes))
			},
			func(s core.Sample) float64 { return float64(s.Iter()) })
		payload = m
	default:
		return fmt.Errorf("unknown fit kind %q", *kind)
	}
	w := env.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		return err
	}
	return sess.finish()
}

// loadInferenceModel builds a predictor from -coeff JSON, -data CSV, or a
// simulated sweep.
func loadInferenceModel(coeffPath, dataPath, device string, seed int64, o *obs.Obs) (*core.InferenceModel, error) {
	if coeffPath != "" {
		data, err := os.ReadFile(coeffPath)
		if err != nil {
			return nil, err
		}
		var m core.InferenceModel
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, err
		}
		return &m, nil
	}
	samples, err := loadSamples(dataPath, o, func() ([]core.Sample, error) {
		dev, err := deviceByName(device)
		if err != nil {
			return nil, err
		}
		sc := bench.DefaultInferenceScenario(dev, seed)
		sc.Obs = o
		return bench.CollectInference(sc)
	})
	if err != nil {
		return nil, err
	}
	return core.FitInference(samples)
}

// loadTrainingModel mirrors loadInferenceModel for training predictors.
func loadTrainingModel(coeffPath, dataPath string, multi bool, seed int64) (*core.TrainingModel, error) {
	if coeffPath != "" {
		data, err := os.ReadFile(coeffPath)
		if err != nil {
			return nil, err
		}
		var m core.TrainingModel
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, err
		}
		return &m, nil
	}
	samples, err := loadSamples(dataPath, nil, func() ([]core.Sample, error) {
		if multi {
			return bench.CollectTraining(bench.DefaultDistributedScenario(seed))
		}
		return bench.CollectTraining(bench.DefaultSingleGPUScenario(seed))
	})
	if err != nil {
		return nil, err
	}
	return core.FitTraining(samples)
}

func runPredict(args []string, env Env) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	model, image := modelFlags(fs)
	batch := fs.Int("batch", 64, "batch size")
	device := fs.String("device", "a100", "simulated device when fitting fresh")
	data := fs.String("data", "", "benchmark dataset CSV")
	coeff := fs.String("coeff", "", "fitted coefficients JSON (from `convmeter fit`)")
	seed := fs.Int64("seed", 1, "simulator seed")
	oo := addObsFlags(fs)
	if err := parse(fs, args, env); err != nil {
		return err
	}
	sess, err := oo.start(env.Stderr)
	if err != nil {
		return err
	}
	_, met, err := buildWithMetrics(*model, *image)
	if err != nil {
		return err
	}
	m, err := loadInferenceModel(*coeff, *data, *device, *seed, sess.obs())
	if err != nil {
		return err
	}
	t := float64(m.Predict(met, float64(*batch)))
	printf(env.Stdout, "predicted inference time for %s @ %dpx, batch %d: %.4g ms (%.1f images/s)\n",
		*model, *image, *batch, t*1e3, float64(*batch)/t)
	return sess.finish()
}

func runTrain(args []string, env Env) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	model, image := modelFlags(fs)
	batch := fs.Int("batch", 64, "per-device batch size")
	gpus := fs.Int("gpus", 4, "total GPUs")
	nodes := fs.Int("nodes", 1, "physical nodes")
	dataset := fs.Int("dataset", 1281167, "dataset size in images (default ImageNet-1k)")
	data := fs.String("data", "", "benchmark dataset CSV")
	coeff := fs.String("coeff", "", "fitted coefficients JSON")
	seed := fs.Int64("seed", 1, "simulator seed")
	if err := parse(fs, args, env); err != nil {
		return err
	}
	_, met, err := buildWithMetrics(*model, *image)
	if err != nil {
		return err
	}
	tm, err := loadTrainingModel(*coeff, *data, *nodes > 1, *seed)
	if err != nil {
		return err
	}
	p := tm.PredictPhases(met, float64(*batch), *gpus, *nodes)
	printf(env.Stdout, "training-step prediction for %s @ %dpx, batch %d/device on %d GPU(s) over %d node(s):\n",
		*model, *image, *batch, *gpus, *nodes)
	printf(env.Stdout, "  forward:   %8.3f ms\n", p.Fwd*1e3)
	printf(env.Stdout, "  backward:  %8.3f ms\n", p.Bwd*1e3)
	printf(env.Stdout, "  gradient:  %8.3f ms\n", p.Grad*1e3)
	printf(env.Stdout, "  step:      %8.3f ms  (%.1f images/s)\n", p.Iter*1e3,
		float64(*batch**gpus)/float64(p.Iter))
	epoch := tm.PredictEpoch(met, *dataset, float64(*batch), *gpus, *nodes)
	printf(env.Stdout, "  epoch over %d images: %.1f s\n", *dataset, epoch)
	return nil
}

func runScale(args []string, env Env) error {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	model, image := modelFlags(fs)
	batch := fs.Int("batch", 64, "per-device batch size (weak scaling)")
	globalBatch := fs.Int("global-batch", 0, "fixed global batch (enables strong scaling)")
	maxNodes := fs.Int("max-nodes", 16, "largest node count")
	gpn := fs.Int("gpus-per-node", 4, "GPUs per node")
	data := fs.String("data", "", "benchmark dataset CSV")
	coeff := fs.String("coeff", "", "fitted coefficients JSON")
	seed := fs.Int64("seed", 1, "simulator seed")
	if err := parse(fs, args, env); err != nil {
		return err
	}
	_, met, err := buildWithMetrics(*model, *image)
	if err != nil {
		return err
	}
	tm, err := loadTrainingModel(*coeff, *data, true, *seed)
	if err != nil {
		return err
	}
	var nodeCounts []int
	for n := 1; n <= *maxNodes; n *= 2 {
		nodeCounts = append(nodeCounts, n)
	}
	if *globalBatch > 0 {
		points, err := tm.PredictStrongScaling(met, float64(*globalBatch), *gpn, nodeCounts)
		if err != nil {
			return err
		}
		printf(env.Stdout, "strong scaling of %s @ %dpx, global batch %d, %d GPUs/node:\n",
			*model, *image, *globalBatch, *gpn)
		for _, p := range points {
			printf(env.Stdout, "  %3d node(s): step %8.3f ms, %9.0f images/s, speedup %.2fx (b=%.3g/device)\n",
				p.Nodes, p.Iter*1e3, p.Throughput, p.Speedup, p.BatchPerDevice)
		}
		return nil
	}
	printf(env.Stdout, "weak scaling of %s @ %dpx, batch %d/device, %d GPUs/node:\n",
		*model, *image, *batch, *gpn)
	for _, n := range nodeCounts {
		tput := tm.PredictThroughput(met, float64(*batch), n**gpn, n)
		printf(env.Stdout, "  %3d node(s): %9.0f images/s\n", n, tput)
	}
	tp, err := tm.TurningPoint(met, float64(*batch), *gpn, *maxNodes, 0.10)
	if err != nil {
		return err
	}
	printf(env.Stdout, "diminishing-return turning point (<10%% gain per added node): %d node(s)\n", tp)
	return nil
}
