package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
)

// run executes a CLI invocation and returns exit code, stdout and stderr.
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := Run(args, Env{Stdout: &out, Stderr: &errBuf})
	return code, out.String(), errBuf.String()
}

// writeSmallDataset writes a reduced benchmark CSV for fast fitting.
func writeSmallDataset(t *testing.T, training bool) string {
	t.Helper()
	var samples []core.Sample
	var err error
	if training {
		sc := bench.DefaultDistributedScenario(3)
		sc.Models = []string{"resnet18", "resnet50", "mobilenet_v2", "alexnet"}
		sc.Images = []int{64}
		sc.Batches = []int{16, 64}
		samples, err = bench.CollectTraining(sc)
	} else {
		sc := bench.DefaultInferenceScenario(hwsim.A100(), 3)
		sc.Models = []string{"resnet18", "resnet50", "mobilenet_v2", "alexnet"}
		sc.Images = []int{64, 128}
		sc.Batches = []int{1, 8, 64}
		samples, err = bench.CollectInference(sc)
	}
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bench.WriteCSV(f, samples); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNoArgs(t *testing.T) {
	code, _, errOut := run(t)
	if code != 2 || !strings.Contains(errOut, "commands:") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	code, _, errOut := run(t, "frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestHelp(t *testing.T) {
	code, out, _ := run(t, "help")
	if code != 0 || !strings.Contains(out, "scale") {
		t.Fatalf("help failed: %d %q", code, out)
	}
}

func TestModelsAndBlocks(t *testing.T) {
	code, out, _ := run(t, "models")
	if code != 0 || !strings.Contains(out, "resnet50") || !strings.Contains(out, "vit_b_16") {
		t.Fatalf("models output incomplete")
	}
	code, out, _ = run(t, "blocks")
	if code != 0 || !strings.Contains(out, "MBConv") {
		t.Fatalf("blocks output incomplete")
	}
}

func TestMetricsCommand(t *testing.T) {
	code, out, _ := run(t, "metrics", "-model", "resnet50", "-image", "224")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "25557032") {
		t.Fatalf("missing parameter count: %q", out)
	}
	code, _, errOut := run(t, "metrics", "-model", "nope")
	if code != 1 || !strings.Contains(errOut, "unknown model") {
		t.Fatalf("bad model not rejected: %d %q", code, errOut)
	}
}

func TestGraphCommandEmitsValidJSON(t *testing.T) {
	code, out, _ := run(t, "graph", "-model", "squeezenet1_1", "-image", "64")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var g graph.Graph
	if err := json.Unmarshal([]byte(out), &g); err != nil {
		t.Fatalf("output is not a valid graph: %v", err)
	}
	if g.Name != "squeezenet1_1" {
		t.Fatalf("graph name %q", g.Name)
	}
}

func TestDotCommand(t *testing.T) {
	code, out, _ := run(t, "dot", "-model", "alexnet")
	if code != 0 || !strings.HasPrefix(out, "digraph") {
		t.Fatalf("dot output wrong: %d %q", code, out[:min(40, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFitPredictRoundTripViaCoefficients(t *testing.T) {
	data := writeSmallDataset(t, false)
	coeff := filepath.Join(t.TempDir(), "model.json")
	code, _, errOut := run(t, "fit", "-kind", "inference", "-data", data, "-out", coeff)
	if code != 0 {
		t.Fatalf("fit failed: %s", errOut)
	}
	raw, err := os.ReadFile(coeff)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "convmeter-inference-v1") {
		t.Fatalf("coefficient file malformed: %s", raw)
	}
	code, out, errOut := run(t, "predict", "-model", "densenet121", "-image", "128", "-batch", "32", "-coeff", coeff)
	if code != 0 {
		t.Fatalf("predict failed: %s", errOut)
	}
	if !strings.Contains(out, "images/s") {
		t.Fatalf("predict output: %q", out)
	}
}

func TestFitTrainingAndScale(t *testing.T) {
	data := writeSmallDataset(t, true)
	coeff := filepath.Join(t.TempDir(), "train.json")
	code, _, errOut := run(t, "fit", "-kind", "train-multi", "-data", data, "-out", coeff)
	if code != 0 {
		t.Fatalf("fit failed: %s", errOut)
	}
	code, out, errOut := run(t, "train", "-model", "efficientnet_b0", "-image", "64",
		"-batch", "32", "-gpus", "16", "-nodes", "4", "-coeff", coeff)
	if code != 0 {
		t.Fatalf("train failed: %s", errOut)
	}
	for _, want := range []string{"forward:", "backward:", "gradient:", "epoch over"} {
		if !strings.Contains(out, want) {
			t.Fatalf("train output missing %q: %q", want, out)
		}
	}
	// Weak scaling.
	code, out, errOut = run(t, "scale", "-model", "resnet50", "-image", "64", "-coeff", coeff, "-max-nodes", "8")
	if code != 0 {
		t.Fatalf("scale failed: %s", errOut)
	}
	if !strings.Contains(out, "turning point") {
		t.Fatalf("scale output: %q", out)
	}
	// Strong scaling.
	code, out, errOut = run(t, "scale", "-model", "resnet50", "-image", "64", "-coeff", coeff,
		"-global-batch", "512", "-max-nodes", "8")
	if code != 0 {
		t.Fatalf("strong scale failed: %s", errOut)
	}
	if !strings.Contains(out, "strong scaling") || !strings.Contains(out, "speedup") {
		t.Fatalf("strong-scaling output: %q", out)
	}
}

func TestDissectCommand(t *testing.T) {
	data := writeSmallDataset(t, false)
	coeff := filepath.Join(t.TempDir(), "m.json")
	if code, _, errOut := run(t, "fit", "-kind", "inference", "-data", data, "-out", coeff); code != 0 {
		t.Fatalf("fit failed: %s", errOut)
	}
	code, out, errOut := run(t, "dissect", "-model", "resnet50", "-image", "128", "-batch", "32", "-coeff", coeff)
	if code != 0 {
		t.Fatalf("dissect failed: %s", errOut)
	}
	for _, seg := range []string{"stem", "layer1", "layer2", "layer3", "layer4", "head"} {
		if !strings.Contains(out, seg) {
			t.Fatalf("dissection missing segment %q:\n%s", seg, out)
		}
	}
	if !strings.Contains(out, "share") {
		t.Fatal("dissection missing share column")
	}
}

func TestSegmentsCoverGraph(t *testing.T) {
	g, _, err := buildWithMetrics("resnet18", 64)
	if err != nil {
		t.Fatal(err)
	}
	segs := segments(g)
	if len(segs) < 3 {
		t.Fatalf("too few segments: %d", len(segs))
	}
	if segs[0].from != 1 || segs[len(segs)-1].to != len(g.Nodes) {
		t.Fatal("segments do not tile the node range")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].from != segs[i-1].to {
			t.Fatal("gap between segments")
		}
		if segs[i].name == segs[i-1].name {
			t.Fatal("adjacent segments share a prefix and should have merged")
		}
	}
}

func TestTimelineCommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, errOut := run(t, "timeline", "-model", "resnet18", "-image", "64", "-out", path)
	if code != 0 {
		t.Fatalf("timeline failed: %s", errOut)
	}
	if !strings.Contains(errOut, "step") {
		t.Fatalf("summary missing: %q", errOut)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 4 {
		t.Fatalf("trace has only %d events", len(doc.TraceEvents))
	}
}

func TestFitRejectsUnknownKind(t *testing.T) {
	code, _, errOut := run(t, "fit", "-kind", "wizardry")
	if code != 1 || !strings.Contains(errOut, "unknown fit kind") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestPredictUnknownDevice(t *testing.T) {
	code, _, errOut := run(t, "predict", "-device", "abacus", "-model", "resnet18")
	if code != 1 || !strings.Contains(errOut, "unknown device") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadFlagReturnsError(t *testing.T) {
	code, _, _ := run(t, "metrics", "-bogus-flag")
	if code != 1 {
		t.Fatalf("bad flag exit = %d", code)
	}
}
