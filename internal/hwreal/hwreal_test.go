package hwreal

import (
	"testing"

	"convmeter/internal/core"
	"convmeter/internal/models"
)

func TestMeasurePositiveAndOrdered(t *testing.T) {
	g, err := models.Build("squeezenet1_1", 32)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Measure(g, 1, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= 0 {
		t.Fatalf("measured time %g", t1)
	}
	t8, err := Measure(g, 8, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t8 <= t1 {
		t.Fatalf("batch 8 (%g s) should take longer than batch 1 (%g s)", t8, t1)
	}
}

func TestMeasureValidation(t *testing.T) {
	g, err := models.Build("squeezenet1_1", 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(g, 0, 0, 1, 1); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := Measure(g, 1, -1, 1, 1); err == nil {
		t.Fatal("expected warmup error")
	}
	if _, err := Measure(g, 1, 0, 0, 1); err == nil {
		t.Fatal("expected reps error")
	}
}

func TestCollectAndFitRealMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("real measurement sweep in short mode")
	}
	// The full loop on real wall-clock data: measure → fit → LOMO.
	sc := Scenario{
		Models:  []string{"squeezenet1_1", "mobilenet_v3_small", "resnet18"},
		Images:  []int{32},
		Batches: []int{1, 2, 4},
		Warmup:  1,
		Reps:    2,
		Seed:    1,
	}
	samples, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 9 {
		t.Fatalf("collected %d samples, want 9", len(samples))
	}
	for _, s := range samples {
		if s.Fwd <= 0 {
			t.Fatalf("non-positive real measurement: %+v", s)
		}
	}
	ev, err := core.EvaluateInferenceLOMO(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Real wall-clock on a shared CI machine is noisy and the sweep is
	// tiny; require only a usable fit, not paper-grade accuracy.
	if ev.Overall.MAPE > 2.0 {
		t.Fatalf("real-measurement LOMO MAPE %.3f unusable", ev.Overall.MAPE)
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect(Scenario{}); err == nil {
		t.Fatal("expected empty-scenario error")
	}
	sc := Scenario{Models: []string{"alexnet"}, Images: []int{32}, Batches: []int{1}, Reps: 1}
	// alexnet cannot build at 32px → no feasible configuration.
	if _, err := Collect(sc); err == nil {
		t.Fatal("expected no-feasible-configuration error")
	}
}
