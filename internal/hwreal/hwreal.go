// Package hwreal is the *real-hardware* measurement backend: it times
// actual executions of ConvMeter graphs (internal/exec's float32 kernels)
// on the host CPU and produces benchmark samples in the same format as
// the simulators. It closes the loop the paper's methodology describes —
// benchmark on the target device, fit coefficients, predict unseen
// models — with genuine wall-clock measurements instead of simulated
// ones: the "target device" is the Go runtime on the machine running the
// tests ("gocpu").
//
// Real measurement campaigns are wall-clock-bounded, so the default
// scenario is deliberately small; the fitted model is still evaluated
// with the paper's leave-one-model-out protocol in the tests and the
// extension experiment.
package hwreal

import (
	"fmt"
	"time"

	"convmeter/internal/core"
	"convmeter/internal/exec"
	"convmeter/internal/graph"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
)

// DeviceName tags samples measured by this backend.
const DeviceName = "gocpu"

// Measure times the forward pass of a graph at the given batch size:
// warmup runs (untimed) followed by reps timed runs, returning the
// fastest observed time in seconds (the standard benchmarking practice
// for minimising scheduler noise).
func Measure(g *graph.Graph, batch, warmup, reps int, seed int64) (float64, error) {
	if batch <= 0 || reps <= 0 || warmup < 0 {
		return 0, fmt.Errorf("hwreal: invalid measurement plan (batch %d, warmup %d, reps %d)", batch, warmup, reps)
	}
	e, err := exec.NewExecutor(g, seed)
	if err != nil {
		return 0, err
	}
	in, err := e.RandomInput(batch)
	if err != nil {
		return 0, err
	}
	for i := 0; i < warmup; i++ {
		if _, err := e.Run(in); err != nil {
			return 0, err
		}
	}
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := e.Run(in); err != nil {
			return 0, err
		}
		d := time.Since(start).Seconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Scenario configures a real-hardware inference campaign.
type Scenario struct {
	Models  []string
	Images  []int
	Batches []int
	Warmup  int
	Reps    int
	Seed    int64
}

// DefaultScenario is a small campaign sized so the whole sweep measures
// in seconds on a development machine: light models, small images.
func DefaultScenario(seed int64) Scenario {
	return Scenario{
		Models:  []string{"squeezenet1_1", "mobilenet_v3_small", "resnet18", "mobilenet_v2"},
		Images:  []int{32, 48},
		Batches: []int{1, 2, 4},
		Warmup:  1,
		Reps:    2,
		Seed:    seed,
	}
}

// Collect runs the campaign and returns fitted-ready samples measured on
// the host CPU.
func Collect(sc Scenario) ([]core.Sample, error) {
	if len(sc.Models) == 0 || len(sc.Images) == 0 || len(sc.Batches) == 0 {
		return nil, fmt.Errorf("hwreal: empty scenario")
	}
	if sc.Reps <= 0 {
		sc.Reps = 1
	}
	var samples []core.Sample
	for _, name := range sc.Models {
		for _, img := range sc.Images {
			g, err := models.Build(name, img)
			if err != nil {
				continue // architecture cannot process this image size
			}
			met, err := metrics.FromGraph(g)
			if err != nil {
				return nil, err
			}
			for _, batch := range sc.Batches {
				t, err := Measure(g, batch, sc.Warmup, sc.Reps, sc.Seed)
				if err != nil {
					return nil, fmt.Errorf("hwreal: %s@%d b%d: %w", name, img, batch, err)
				}
				samples = append(samples, core.Sample{
					Model: name, Met: met, Image: img,
					BatchPerDevice: batch, Devices: 1, Nodes: 1,
					Fwd: metrics.Seconds(t),
				})
			}
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("hwreal: no feasible configurations in the scenario")
	}
	return samples, nil
}
