// Package faults is ConvMeter's deterministic fault-injection framework:
// the chaos-engineering counterpart of the resilient measured-side stack
// (ring all-reduce transports, data-parallel trainer). The paper fits its
// gradient-update model from all-reduce runs on a real InfiniBand
// cluster, where stragglers, dropped connections and worker failures are
// routine; this package reproduces those conditions on demand so the
// measurement pipeline's fault tolerance is itself testable.
//
// Everything is reproducible from a single seed. A fault decision is a
// pure function of (seed, operation identity): the operation names its
// transport, worker, direction and a caller-assigned logical sequence
// number, so the same seed yields the identical fault schedule no matter
// how goroutines interleave or how often a timed-out operation is
// retried. Injected faults are recorded as events (and, with telemetry
// attached, as convmeter_faults_injected_total counters) so a chaos run
// can be audited after the fact.
//
// The package lives on the measured side of the analytical/measured
// boundary (lint.config): it sleeps, closes sockets and corrupts wire
// bytes — the analytical core must never see any of that.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"convmeter/internal/obs"
)

// Class enumerates the injectable fault classes.
type Class string

// The fault classes. Delay models transient stragglers; Drop and Reset
// kill a connection (Reset abruptly, with an RST where the transport
// supports it); Corrupt flips payload bits so CRC validation must catch
// them; Truncate cuts a frame short; Crash kills a worker at a
// training-step boundary; Slow is a *persistent* straggler — from its
// scheduled onset step a worker's compute is slowed on every step, the
// hardware-regime change the drift monitor must detect.
const (
	ClassDelay    Class = "delay"
	ClassDrop     Class = "drop"
	ClassReset    Class = "reset"
	ClassCorrupt  Class = "corrupt"
	ClassTruncate Class = "truncate"
	ClassCrash    Class = "crash"
	ClassSlow     Class = "slow"
)

// classes lists the probabilistic classes in the order Decide consumes
// probability mass (Crash is scheduled explicitly, not drawn).
var classes = []Class{ClassDelay, ClassDrop, ClassReset, ClassCorrupt, ClassTruncate}

// Profile configures how much of each fault class an Injector deals out.
// Probabilities are per transport operation and must sum to at most 1.
type Profile struct {
	Delay    float64 // straggler probability per op
	MaxDelay time.Duration
	Drop     float64 // connection/message drop probability per op
	Reset    float64 // abrupt connection reset probability per op
	Corrupt  float64 // payload bit-flip probability per op
	Truncate float64 // short-frame probability per op

	// Workers, when non-nil, restricts injection to operations owned by
	// the listed worker ids (crashes are always explicit via Crashes).
	Workers []int

	// Crashes schedules hard worker deaths: worker id → training step at
	// whose boundary the worker crashes (before computing that step).
	Crashes map[int]int

	// Slowdowns schedules persistent stragglers: worker id → training
	// step from which the worker's compute takes SlowDelay extra on every
	// subsequent step. Unlike Delay (transient, probabilistic) this is a
	// level shift — the scenario a runtime predictor drifts on.
	Slowdowns map[int]int
	SlowDelay time.Duration

	// NodeCrashes schedules orchestrator-level process crashes: DAG node
	// id → crash point (NodeCrashBoundary kills the run before the node
	// executes, NodeCrashMid after its work but before its manifest
	// commits). Like Crashes this is an explicit schedule, not a draw, so
	// a resume matrix can kill a run at every boundary deterministically;
	// the fired crash is recorded as a ClassCrash event like every other
	// injection.
	NodeCrashes map[string]string
}

// Node crash points for Profile.NodeCrashes.
const (
	// NodeCrashBoundary kills the process at the node boundary, before
	// the node runs: resume finds no trace of the node.
	NodeCrashBoundary = "boundary"
	// NodeCrashMid kills the process after the node's work completes but
	// before its manifest commits: resume finds the work lost and must
	// re-run it — the torn state fail-close manifests exist for.
	NodeCrashMid = "mid"
)

// prob returns the probability assigned to a drawable class.
func (p Profile) prob(c Class) float64 {
	switch c {
	case ClassDelay:
		return p.Delay
	case ClassDrop:
		return p.Drop
	case ClassReset:
		return p.Reset
	case ClassCorrupt:
		return p.Corrupt
	case ClassTruncate:
		return p.Truncate
	}
	return 0
}

// Validate checks the profile is a well-formed distribution.
func (p Profile) Validate() error {
	sum := 0.0
	for _, c := range classes {
		pr := p.prob(c)
		if pr < 0 || pr > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0,1]", c, pr)
		}
		sum += pr
	}
	if sum > 1 {
		return fmt.Errorf("faults: class probabilities sum to %g > 1", sum)
	}
	if p.Delay > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("faults: Delay %g needs a positive MaxDelay", p.Delay)
	}
	// Iterate the schedule in sorted worker order so the reported error
	// is the same entry on every run (map order would pick one at random).
	workers := make([]int, 0, len(p.Crashes))
	for w := range p.Crashes {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		if s := p.Crashes[w]; w < 0 || s < 0 {
			return fmt.Errorf("faults: crash schedule entry worker %d step %d", w, s)
		}
	}
	slowed := make([]int, 0, len(p.Slowdowns))
	for w := range p.Slowdowns {
		slowed = append(slowed, w)
	}
	sort.Ints(slowed)
	for _, w := range slowed {
		if s := p.Slowdowns[w]; w < 0 || s < 0 {
			return fmt.Errorf("faults: slowdown schedule entry worker %d step %d", w, s)
		}
	}
	if len(p.Slowdowns) > 0 && p.SlowDelay <= 0 {
		return fmt.Errorf("faults: slowdown schedule needs a positive SlowDelay")
	}
	nodes := make([]string, 0, len(p.NodeCrashes))
	for n := range p.NodeCrashes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if n == "" {
			return fmt.Errorf("faults: node crash schedule entry with empty node id")
		}
		if pt := p.NodeCrashes[n]; pt != NodeCrashBoundary && pt != NodeCrashMid {
			return fmt.Errorf("faults: node crash point %q for node %s (want %s or %s)",
				pt, n, NodeCrashBoundary, NodeCrashMid)
		}
	}
	return nil
}

// ByName returns a canned profile. "none" injects nothing; "light" adds
// stragglers and rare corruption; "heavy" adds frequent transient faults;
// "chaos" is the acceptance profile: one scheduled worker crash plus
// drops, resets, corruption and truncation at rates the resilient stack
// must absorb; "slowdown" injects no transport faults at all but turns
// worker 0 into a persistent straggler from step 5 — the clean
// hardware-regime change the drift monitor's acceptance test detects.
func ByName(name string) (Profile, error) {
	switch name {
	case "", "none":
		return Profile{}, nil
	case "light":
		return Profile{Delay: 0.05, MaxDelay: 10 * time.Millisecond, Corrupt: 0.002}, nil
	case "heavy":
		return Profile{
			Delay: 0.10, MaxDelay: 20 * time.Millisecond,
			Drop: 0.01, Reset: 0.004, Corrupt: 0.01, Truncate: 0.004,
		}, nil
	case "chaos":
		return Profile{
			Delay: 0.05, MaxDelay: 15 * time.Millisecond,
			Drop: 0.006, Reset: 0.002, Corrupt: 0.008, Truncate: 0.002,
			Crashes: map[int]int{1: 2},
		}, nil
	case "slowdown":
		// The delay is sized to dominate a step of the test fixtures on any
		// plausible host (including race-instrumented CI, where baseline
		// steps are an order of magnitude slower), so the relative residual
		// the drift detector sees is unambiguous rather than marginal.
		return Profile{
			Slowdowns: map[int]int{0: 5},
			SlowDelay: 250 * time.Millisecond,
		}, nil
	}
	return Profile{}, fmt.Errorf("faults: unknown profile %q (want none, light, heavy, chaos or slowdown)", name)
}

// Op identifies one logical transport operation. Seq is assigned by the
// caller and must be stable across retries of the same logical operation
// (and distinct across different ones) — that is what makes schedules
// reproducible under timeouts and re-attempts.
type Op struct {
	Transport string // "chan" or "tcp"
	Worker    int    // owning worker id (original trainer id)
	Dir       string // "send"/"recv" (chan), "in"/"out" (tcp)
	Seq       uint64
}

func (o Op) String() string {
	return fmt.Sprintf("%s/w%d/%s/%d", o.Transport, o.Worker, o.Dir, o.Seq)
}

// Fault is one injection decision. A zero Fault (Class "") means the
// operation proceeds untouched. Arg carries deterministic hash residue
// callers use to pick corruption offsets or truncation points.
type Fault struct {
	Class Class
	Delay time.Duration
	Arg   uint64
}

// Event records one fault that an execution actually hit.
type Event struct {
	Op    Op
	Class Class
	Delay time.Duration
}

// Injector deals faults according to a Profile, deterministically from
// its seed. A nil *Injector is a no-op: Decide returns the zero Fault and
// CrashAt reports false, so fault-aware code paths need no guards.
type Injector struct {
	seed uint64
	prof Profile

	counters map[Class]*obs.Counter

	mu     sync.Mutex
	seen   map[string]bool // executed-event dedup across retries
	events []Event
}

// New builds an injector from a seed and profile, validating the profile.
// With a non-nil Obs, every injected fault increments
// convmeter_faults_injected_total{class=...}.
func New(seed int64, prof Profile, o *obs.Obs) (*Injector, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		seed: uint64(seed),
		prof: prof,
		seen: make(map[string]bool),
	}
	if o != nil {
		in.counters = make(map[Class]*obs.Counter, len(classes)+2)
		for _, c := range append(append([]Class{}, classes...), ClassCrash, ClassSlow) {
			in.counters[c] = o.Counter(obs.Label("convmeter_faults_injected_total", "class", string(c)),
				"faults injected into the measured stack, by class")
		}
	}
	return in, nil
}

// Profile returns the injector's profile (zero for a nil injector).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.prof
}

// eligible reports whether worker w is a fault target under the profile.
func (in *Injector) eligible(w int) bool {
	if in.prof.Workers == nil {
		return true
	}
	for _, id := range in.prof.Workers {
		if id == w {
			return true
		}
	}
	return false
}

// decide is the pure decision function: same (seed, op) → same Fault.
func (in *Injector) decide(op Op) Fault {
	if !in.eligible(op.Worker) {
		return Fault{}
	}
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s/%d/%s", op.Transport, op.Worker, op.Dir)
	base := mix(in.seed ^ h.Sum64() ^ (op.Seq * 0x9e3779b97f4a7c15))
	u := frac(base)
	for _, c := range classes {
		p := in.prof.prob(c)
		if u < p {
			f := Fault{Class: c, Arg: mix(base + 2)}
			if c == ClassDelay {
				f.Delay = time.Duration(frac(mix(base+1)) * float64(in.prof.MaxDelay))
			}
			return f
		}
		u -= p
	}
	return Fault{}
}

// Decide returns the fault (if any) for a logical operation and records
// it as executed. Calling Decide again with the same Op — a retry of the
// same logical operation — returns the same decision and records nothing
// new, keeping event logs identical across timing-dependent retries.
func (in *Injector) Decide(op Op) Fault {
	if in == nil {
		return Fault{}
	}
	f := in.decide(op)
	if f.Class == "" {
		return f
	}
	in.record(Event{Op: op, Class: f.Class, Delay: f.Delay})
	return f
}

// CrashAt reports whether the profile schedules worker w to crash at the
// boundary of training step `step`, recording the crash when it does.
func (in *Injector) CrashAt(worker, step int) bool {
	if in == nil {
		return false
	}
	s, ok := in.prof.Crashes[worker]
	if !ok || s != step {
		return false
	}
	in.record(Event{
		Op:    Op{Transport: "train", Worker: worker, Dir: "crash", Seq: uint64(step)},
		Class: ClassCrash,
	})
	return true
}

// NodeCrashAt reports whether the profile schedules a process crash at
// the given point of DAG node id, recording the crash when it fires. The
// schedule replays identically across runs and resumes: a resumed run
// consults the same schedule, so callers clear or re-seed it when the
// crash must fire only once.
func (in *Injector) NodeCrashAt(node, point string) bool {
	if in == nil {
		return false
	}
	pt, ok := in.prof.NodeCrashes[node]
	if !ok || pt != point {
		return false
	}
	in.record(Event{
		Op:    Op{Transport: "dag/" + node, Worker: 0, Dir: point, Seq: 0},
		Class: ClassCrash,
	})
	return true
}

// SlowAt returns the extra compute delay scheduled for worker w at
// training step `step` — SlowDelay once the profile's slowdown onset is
// reached, 0 before it — recording each slowed step as an event.
func (in *Injector) SlowAt(worker, step int) time.Duration {
	if in == nil {
		return 0
	}
	onset, ok := in.prof.Slowdowns[worker]
	if !ok || step < onset {
		return 0
	}
	in.record(Event{
		Op:    Op{Transport: "train", Worker: worker, Dir: "slow", Seq: uint64(step)},
		Class: ClassSlow,
		Delay: in.prof.SlowDelay,
	})
	return in.prof.SlowDelay
}

// record stores an executed event once and bumps its class counter.
func (in *Injector) record(ev Event) {
	key := ev.Op.String()
	in.mu.Lock()
	dup := in.seen[key]
	if !dup {
		in.seen[key] = true
		in.events = append(in.events, ev)
	}
	in.mu.Unlock()
	if !dup {
		in.counters[ev.Class].Inc()
	}
}

// Events returns the executed fault events, sorted into a canonical
// order (by op identity) so two runs can be compared directly.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := append([]Event(nil), in.events...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Op.String() < out[j].Op.String() })
	return out
}

// CountByClass tallies executed events per class.
func (in *Injector) CountByClass() map[Class]int {
	out := make(map[Class]int)
	for _, ev := range in.Events() {
		out[ev.Class]++
	}
	return out
}

// Planned previews the decisions for a hypothetical op set without
// recording anything — the pure schedule, useful for reproducibility
// assertions and for sizing a chaos run before executing it.
func (in *Injector) Planned(ops []Op) []Event {
	if in == nil {
		return nil
	}
	var out []Event
	for _, op := range ops {
		if f := in.decide(op); f.Class != "" {
			out = append(out, Event{Op: op, Class: f.Class, Delay: f.Delay})
		}
	}
	return out
}

// Hash01 derives a uniform [0,1) value from a seed and mix-in parts —
// the deterministic randomness source resilient code uses for retry
// jitter, so fault-free reruns stay reproducible too.
func Hash01(seed int64, parts ...uint64) float64 {
	x := uint64(seed)
	for _, p := range parts {
		x = mix(x ^ (p * 0x9e3779b97f4a7c15))
	}
	return frac(mix(x))
}

// mix is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// frac maps a uint64 onto [0,1) with 53 bits of precision.
func frac(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}
