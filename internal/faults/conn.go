package faults

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// InjectedError marks an error as deliberately injected, carrying the
// class and operation so transports can attribute blame and tests can
// distinguish injected failures from real ones.
type InjectedError struct {
	Class Class
	Op    Op
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s at %s", e.Class, e.Op)
}

// Conn wraps a net.Conn with fault injection. The transport assigns each
// logical chunk operation a sequence number via SetReadSeq/SetWriteSeq
// before performing it; the first Read/Write of that logical operation
// consults the injector, and continuation calls (resumed partial reads
// after a timeout) pass through untouched — so retries never shift the
// fault schedule.
type Conn struct {
	net.Conn
	in        *Injector
	transport string
	worker    int

	readSeq, writeSeq   atomic.Uint64 // current logical op seq (+1; 0 = unset)
	readDone, writeDone atomic.Uint64 // last seq whose fault was applied (+1)
}

// WrapConn attaches an injector to a connection. With a nil injector the
// connection is returned unwrapped, so the fault-free path costs nothing.
func WrapConn(c net.Conn, in *Injector, transport string, worker int) net.Conn {
	if in == nil {
		return c
	}
	return &Conn{Conn: c, in: in, transport: transport, worker: worker}
}

// SetReadSeq declares the logical sequence number of the next read op.
func (c *Conn) SetReadSeq(seq uint64) { c.readSeq.Store(seq + 1) }

// SetWriteSeq declares the logical sequence number of the next write op.
func (c *Conn) SetWriteSeq(seq uint64) { c.writeSeq.Store(seq + 1) }

// Read injects read-side faults (delay, drop, reset) on the first call
// of each logical operation, then delegates to the wrapped connection.
func (c *Conn) Read(p []byte) (int, error) {
	if seq := c.readSeq.Load(); seq != 0 && c.readDone.Swap(seq) != seq {
		op := Op{Transport: c.transport, Worker: c.worker, Dir: "in", Seq: seq - 1}
		switch f := c.in.Decide(op); f.Class {
		case ClassDelay:
			sleep(f.Delay)
		case ClassDrop, ClassTruncate:
			_ = c.Conn.Close()
			return 0, &InjectedError{Class: ClassDrop, Op: op}
		case ClassReset:
			c.reset()
			return 0, &InjectedError{Class: ClassReset, Op: op}
		}
		// Corrupt is a write-side fault: flipping received bytes here
		// would blame the wrong link. Treat it as a pass on reads.
	}
	return c.Conn.Read(p)
}

// Write injects write-side faults on the first call of each logical
// operation: delay, payload corruption (CRC must catch it downstream),
// truncation (partial frame then close), drop and reset.
func (c *Conn) Write(p []byte) (int, error) {
	seq := c.writeSeq.Load()
	if seq == 0 || c.writeDone.Swap(seq) == seq {
		return c.Conn.Write(p)
	}
	op := Op{Transport: c.transport, Worker: c.worker, Dir: "out", Seq: seq - 1}
	switch f := c.in.Decide(op); f.Class {
	case ClassDelay:
		sleep(f.Delay)
	case ClassCorrupt:
		// Flip one bit beyond the length prefix so framing survives and
		// the receiver's CRC check is what has to catch it.
		if len(p) > 5 {
			buf := append([]byte(nil), p...)
			idx := 4 + int(f.Arg%uint64(len(p)-4))
			buf[idx] ^= 1 << (f.Arg % 8)
			return c.Conn.Write(buf)
		}
	case ClassTruncate:
		if len(p) > 1 {
			n, _ := c.Conn.Write(p[:len(p)/2])
			_ = c.Conn.Close()
			return n, &InjectedError{Class: ClassTruncate, Op: op}
		}
	case ClassDrop:
		_ = c.Conn.Close()
		return 0, &InjectedError{Class: ClassDrop, Op: op}
	case ClassReset:
		c.reset()
		return 0, &InjectedError{Class: ClassReset, Op: op}
	}
	return c.Conn.Write(p)
}

// sleep pauses for an injected delay, ignoring non-positive durations.
func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// reset closes the connection abruptly: for TCP, linger 0 makes the
// close send an RST so the peer sees ECONNRESET instead of EOF.
func (c *Conn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}
