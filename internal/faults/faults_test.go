package faults

import (
	"net"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"convmeter/internal/obs"
)

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"zero", Profile{}, true},
		{"light-ish", Profile{Delay: 0.1, MaxDelay: time.Millisecond, Drop: 0.01}, true},
		{"negative", Profile{Drop: -0.1}, false},
		{"over-one", Profile{Drop: 1.5}, false},
		{"sum-over-one", Profile{Drop: 0.6, Corrupt: 0.6}, false},
		{"delay-no-max", Profile{Delay: 0.1}, false},
		{"bad-crash", Profile{Crashes: map[int]int{-1: 0}}, false},
		{"slowdown", Profile{Slowdowns: map[int]int{0: 5}, SlowDelay: time.Millisecond}, true},
		{"slowdown-no-delay", Profile{Slowdowns: map[int]int{0: 5}}, false},
		{"bad-slowdown", Profile{Slowdowns: map[int]int{0: -1}, SlowDelay: time.Millisecond}, false},
		{"node-crash", Profile{NodeCrashes: map[string]string{"lomo": NodeCrashBoundary}}, true},
		{"node-crash-mid", Profile{NodeCrashes: map[string]string{"fit": NodeCrashMid}}, true},
		{"node-crash-empty-id", Profile{NodeCrashes: map[string]string{"": NodeCrashBoundary}}, false},
		{"node-crash-bad-point", Profile{NodeCrashes: map[string]string{"lomo": "sometime"}}, false},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", tc.name, err, tc.ok)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "none", "light", "heavy", "chaos", "slowdown"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ByName(%q) profile invalid: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

// TestDecideDeterministic is the framework's core property: the decision
// is a pure function of (seed, op), so two injectors with the same seed
// agree on every operation, and a different seed disagrees somewhere.
func TestDecideDeterministic(t *testing.T) {
	prof := Profile{
		Delay: 0.2, MaxDelay: time.Millisecond,
		Drop: 0.1, Reset: 0.05, Corrupt: 0.1, Truncate: 0.05,
	}
	a, err := New(11, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(11, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(12, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for w := 0; w < 4; w++ {
		for seq := uint64(0); seq < 200; seq++ {
			op := Op{Transport: "tcp", Worker: w, Dir: "out", Seq: seq}
			fa, fb, fc := a.Decide(op), b.Decide(op), c.Decide(op)
			if fa != fb {
				t.Fatalf("same seed disagrees at %s: %+v vs %+v", op, fa, fb)
			}
			if fa != fc {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical 800-op schedules")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different event logs")
	}
}

// TestDecideRetryDedup: re-deciding the same logical op (a retry) returns
// the same fault but records no new event, so event logs are identical no
// matter how often timeouts force re-attempts.
func TestDecideRetryDedup(t *testing.T) {
	in, err := New(3, Profile{Drop: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := Op{Transport: "tcp", Worker: 0, Dir: "out", Seq: 9}
	f1 := in.Decide(op)
	f2 := in.Decide(op)
	if f1 != f2 {
		t.Fatalf("retry decision changed: %+v vs %+v", f1, f2)
	}
	if got := len(in.Events()); got != 1 {
		t.Fatalf("retries recorded %d events, want 1", got)
	}
}

func TestPlannedMatchesDecide(t *testing.T) {
	prof := Profile{Drop: 0.3, Corrupt: 0.3}
	in, err := New(5, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for seq := uint64(0); seq < 50; seq++ {
		ops = append(ops, Op{Transport: "chan", Worker: 1, Dir: "send", Seq: seq})
	}
	planned := in.Planned(ops)
	if len(in.Events()) != 0 {
		t.Fatal("Planned recorded events")
	}
	for _, op := range ops {
		in.Decide(op)
	}
	// Events() canonicalises by op identity; apply the same order to the
	// plan before comparing.
	sort.Slice(planned, func(i, j int) bool { return planned[i].Op.String() < planned[j].Op.String() })
	if got := in.Events(); !reflect.DeepEqual(got, planned) {
		t.Fatalf("executed events diverge from plan:\nplan: %+v\ngot:  %+v", planned, got)
	}
	if len(planned) == 0 {
		t.Fatal("plan injected nothing at 60% fault probability over 50 ops")
	}
}

func TestWorkerFilterAndCrash(t *testing.T) {
	in, err := New(1, Profile{Drop: 1, Workers: []int{2}, Crashes: map[int]int{3: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := in.Decide(Op{Transport: "tcp", Worker: 1, Dir: "out", Seq: 0}); f.Class != "" {
		t.Fatalf("ineligible worker got fault %+v", f)
	}
	if f := in.Decide(Op{Transport: "tcp", Worker: 2, Dir: "out", Seq: 0}); f.Class != ClassDrop {
		t.Fatalf("eligible worker got %+v, want drop", f)
	}
	if in.CrashAt(3, 4) || in.CrashAt(2, 5) {
		t.Fatal("crash fired at wrong (worker, step)")
	}
	if !in.CrashAt(3, 5) {
		t.Fatal("scheduled crash did not fire")
	}
	if got := in.CountByClass(); got[ClassCrash] != 1 || got[ClassDrop] != 1 {
		t.Fatalf("CountByClass = %v", got)
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if f := in.Decide(Op{}); f.Class != "" {
		t.Fatal("nil injector decided a fault")
	}
	if in.CrashAt(0, 0) {
		t.Fatal("nil injector crashed a worker")
	}
	if in.Events() != nil || in.Planned([]Op{{}}) != nil {
		t.Fatal("nil injector recorded events")
	}
}

func TestInjectorCounters(t *testing.T) {
	o := obs.New()
	in, err := New(1, Profile{Drop: 1}, o)
	if err != nil {
		t.Fatal(err)
	}
	in.Decide(Op{Transport: "tcp", Worker: 0, Dir: "out", Seq: 1})
	var sb strings.Builder
	if err := o.Reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `convmeter_faults_injected_total{class="drop"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("metric line %q missing from:\n%s", want, sb.String())
	}
}

// TestConnWriteFaults drives the net.Conn wrapper over a real loopback
// socket pair, one fault class at a time.
func TestConnWriteFaults(t *testing.T) {
	cases := []struct {
		name  string
		prof  Profile
		class Class
	}{
		{"drop", Profile{Drop: 1}, ClassDrop},
		{"reset", Profile{Reset: 1}, ClassReset},
		{"truncate", Profile{Truncate: 1}, ClassTruncate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			client, server := loopbackPair(t)
			in, err := New(7, tc.prof, nil)
			if err != nil {
				t.Fatal(err)
			}
			fc := WrapConn(client, in, "tcp", 0).(*Conn)
			fc.SetWriteSeq(0)
			msg := []byte("0123456789abcdef")
			_, werr := fc.Write(msg)
			var ie *InjectedError
			switch tc.class {
			case ClassTruncate:
				if !asInjected(werr, &ie) || ie.Class != ClassTruncate {
					t.Fatalf("Write() err = %v, want injected truncate", werr)
				}
				buf := make([]byte, len(msg))
				n, _ := server.Read(buf)
				if n >= len(msg) || n == 0 {
					t.Fatalf("peer read %d bytes of a truncated frame (len %d)", n, len(msg))
				}
			default:
				if !asInjected(werr, &ie) || ie.Class != tc.class {
					t.Fatalf("Write() err = %v, want injected %s", werr, tc.class)
				}
				if _, rerr := server.Read(make([]byte, 1)); rerr == nil {
					t.Fatal("peer read from a dropped/reset connection")
				}
			}
		})
	}
}

func TestConnCorruptPreservesLength(t *testing.T) {
	client, server := loopbackPair(t)
	in, err := New(7, Profile{Corrupt: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc := WrapConn(client, in, "tcp", 0).(*Conn)
	fc.SetWriteSeq(0)
	msg := []byte("0123456789abcdef")
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("corrupting write failed: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := readFullConn(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(msg) {
		t.Fatal("payload not corrupted")
	}
	if string(buf[:4]) != string(msg[:4]) {
		t.Fatal("corruption hit the first 4 bytes (the frame length prefix)")
	}
	diff := 0
	for i := range buf {
		if buf[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

// TestConnContinuationPassesThrough: only the first Read/Write of a
// logical op consults the injector; resumed calls of the same op pass
// through, so partial-frame retries cannot shift the schedule.
func TestConnContinuationPassesThrough(t *testing.T) {
	client, server := loopbackPair(t)
	in, err := New(7, Profile{Drop: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc := WrapConn(server, in, "tcp", 0).(*Conn)
	fc.SetReadSeq(4)
	if _, rerr := fc.Read(make([]byte, 4)); rerr == nil {
		t.Fatal("first read of the op should hit the injected drop")
	}
	_ = client.Close()
	// Same logical op again: injector must not be consulted a second time
	// (the conn is closed, so the underlying error surfaces instead).
	_, rerr := fc.Read(make([]byte, 4))
	var ie *InjectedError
	if asInjected(rerr, &ie) {
		t.Fatalf("continuation read re-injected: %v", rerr)
	}
	if got := len(in.Events()); got != 1 {
		t.Fatalf("continuation recorded %d events, want 1", got)
	}
}

func TestHash01Range(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		v := Hash01(99, i)
		if v < 0 || v >= 1 {
			t.Fatalf("Hash01 out of range: %g", v)
		}
	}
	if Hash01(1, 2) != Hash01(1, 2) {
		t.Fatal("Hash01 not deterministic")
	}
	if Hash01(1, 2) == Hash01(2, 2) {
		t.Fatal("Hash01 ignores the seed")
	}
}

// --- helpers ---

// loopbackPair returns two ends of a real TCP connection, closed at
// cleanup.
func loopbackPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = l.Accept()
	}()
	client, derr := net.Dial("tcp", l.Addr().String())
	<-done
	if derr != nil || err != nil {
		t.Fatalf("loopback pair: dial=%v accept=%v", derr, err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	_ = server.SetDeadline(time.Now().Add(5 * time.Second))
	_ = client.SetDeadline(time.Now().Add(5 * time.Second))
	return client, server
}

func asInjected(err error, target **InjectedError) bool {
	ie, ok := err.(*InjectedError)
	if ok {
		*target = ie
	}
	return ok
}

func readFullConn(c net.Conn, buf []byte) (int, error) {
	off := 0
	for off < len(buf) {
		n, err := c.Read(buf[off:])
		off += n
		if err != nil {
			return off, err
		}
	}
	return off, nil
}

// TestSlowAt: a slowdown schedule is silent before its onset step, then
// slows every subsequent step by exactly SlowDelay, recording each
// slowed step once (dedup across retries like every other event).
func TestSlowAt(t *testing.T) {
	prof, err := ByName("slowdown")
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(1, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	onset := prof.Slowdowns[0]
	for step := 0; step < onset; step++ {
		if d := in.SlowAt(0, step); d != 0 {
			t.Fatalf("step %d slowed by %v before onset %d", step, d, onset)
		}
	}
	for step := onset; step < onset+3; step++ {
		if d := in.SlowAt(0, step); d != prof.SlowDelay {
			t.Fatalf("step %d: SlowAt = %v, want %v", step, d, prof.SlowDelay)
		}
		// A retried step decides identically and records nothing new.
		if d := in.SlowAt(0, step); d != prof.SlowDelay {
			t.Fatalf("step %d retry: SlowAt = %v", step, d)
		}
	}
	if d := in.SlowAt(1, onset+1); d != 0 {
		t.Errorf("unscheduled worker slowed by %v", d)
	}
	if got := in.CountByClass()[ClassSlow]; got != 3 {
		t.Errorf("slow events = %d, want 3 (one per slowed step)", got)
	}
	var nil_ *Injector
	if d := nil_.SlowAt(0, 10); d != 0 {
		t.Errorf("nil injector slowed by %v", d)
	}
}

func TestNodeCrashAt(t *testing.T) {
	var nilInj *Injector
	if nilInj.NodeCrashAt("lomo", NodeCrashBoundary) {
		t.Fatal("nil injector scheduled a crash")
	}

	in, err := New(3, Profile{NodeCrashes: map[string]string{"lomo": NodeCrashBoundary}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.NodeCrashAt("fit", NodeCrashBoundary) {
		t.Fatal("crash fired for an unscheduled node")
	}
	if in.NodeCrashAt("lomo", NodeCrashMid) {
		t.Fatal("crash fired at the wrong point")
	}
	if len(in.Events()) != 0 {
		t.Fatalf("%d events recorded before any crash fired", len(in.Events()))
	}
	if !in.NodeCrashAt("lomo", NodeCrashBoundary) {
		t.Fatal("scheduled crash did not fire")
	}
	evs := in.Events()
	if len(evs) != 1 || evs[0].Class != ClassCrash {
		t.Fatalf("events after crash = %+v, want one ClassCrash", evs)
	}
	if evs[0].Op.Transport != "dag/lomo" || evs[0].Op.Dir != NodeCrashBoundary {
		t.Fatalf("crash event blames %s@%s, want dag/lomo@boundary", evs[0].Op.Transport, evs[0].Op.Dir)
	}

	// The schedule replays: a resumed run consulting the same profile
	// sees the crash again, so resume paths must clear or re-seed it.
	if !in.NodeCrashAt("lomo", NodeCrashBoundary) {
		t.Fatal("schedule did not replay on second consult")
	}
}
