// Package tracefmt serialises simulated training-step timelines into the
// Chrome trace-event JSON format (chrome://tracing, Perfetto), so the
// phase structure the paper's Figure 1 sketches — forward, backward, the
// overlapped per-bucket gradient all-reduces, the optimizer tail — can be
// inspected visually for any model and cluster topology.
package tracefmt

import (
	"encoding/json"
	"fmt"
	"io"

	"convmeter/internal/trainsim"
)

// chromeEvent is one complete ("ph":"X") trace event. Timestamps are in
// microseconds per the trace-event spec.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	Ts    float64
	Dur   float64
	Pid   int `json:"pid"`
	Tid   int `json:"tid"`
}

// MarshalJSON renders the event with the spec's lower-case keys.
func (e chromeEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"name": e.Name, "ph": e.Phase,
		"ts": e.Ts, "dur": e.Dur,
		"pid": e.Pid, "tid": e.Tid,
	})
}

// trackNames labels the two tracks of a training-step timeline.
var trackNames = map[int]string{0: "compute", 1: "network"}

// WriteChromeTrace writes the events as a Chrome trace-event JSON
// document (object form with a traceEvents array plus thread-name
// metadata).
func WriteChromeTrace(w io.Writer, events []trainsim.TimelineEvent) error {
	if len(events) == 0 {
		return fmt.Errorf("tracefmt: no events")
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	seenTracks := map[int]bool{}
	for _, e := range events {
		if e.Dur < 0 || e.Start < 0 {
			return fmt.Errorf("tracefmt: event %q has negative time", e.Name)
		}
		seenTracks[e.Track] = true
		raw, err := json.Marshal(chromeEvent{
			Name: e.Name, Phase: "X",
			Ts: e.Start * 1e6, Dur: e.Dur * 1e6,
			Pid: 1, Tid: e.Track,
		})
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, raw)
	}
	for track := range seenTracks {
		name := trackNames[track]
		if name == "" {
			name = fmt.Sprintf("track %d", track)
		}
		meta, err := json.Marshal(map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": track,
			"args": map[string]string{"name": name},
		})
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, meta)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
