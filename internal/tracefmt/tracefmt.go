// Package tracefmt serialises simulated training-step timelines into the
// Chrome trace-event JSON format (chrome://tracing, Perfetto), so the
// phase structure the paper's Figure 1 sketches — forward, backward, the
// overlapped per-bucket gradient all-reduces, the optimizer tail — can be
// inspected visually for any model and cluster topology.
//
// The event serialisation itself lives in internal/obs (TraceEvent,
// WriteTraceEvents), which the runtime telemetry layer also uses for real
// measured spans; this package is the adapter that renders trainsim's
// *simulated* timelines in the same format.
package tracefmt

import (
	"fmt"
	"io"
	"sort"

	"convmeter/internal/obs"
	"convmeter/internal/trainsim"
)

// trackNames labels the two tracks of a training-step timeline.
var trackNames = map[int]string{0: "compute", 1: "network"}

// WriteChromeTrace writes one worker's events as a Chrome trace-event
// JSON document (object form with a traceEvents array plus thread-name
// metadata). An empty timeline — a zero-layer or otherwise degenerate
// model — yields a valid empty document, not an error, so every
// timeline pipes cleanly into Perfetto.
func WriteChromeTrace(w io.Writer, events []trainsim.TimelineEvent) error {
	return WriteChromeTraceWorkers(w, [][]trainsim.TimelineEvent{events})
}

// WriteChromeTraceWorkers renders a data-parallel step: one timeline per
// worker, each on its own trace process so the viewer shows per-worker
// compute/network track pairs side by side. Worker i maps to pid i+1
// (pid 0 renders as "idle process" in some viewers), named "worker i";
// a single-worker document keeps the bare track names with no process
// metadata, so the pre-data-parallel output format is unchanged.
//
// Every (pid, tid) pairing is registered in sorted order: trace
// documents are serialized output and must be bit-identical across
// runs, and Perfetto sorts same-sort-index threads by insertion, not
// name — unsorted metadata scrambles the worker tracks.
func WriteChromeTraceWorkers(w io.Writer, perWorker [][]trainsim.TimelineEvent) error {
	var out []obs.TraceEvent
	type key struct{ pid, tid int }
	seen := map[key]bool{}
	multi := len(perWorker) > 1
	for wk, events := range perWorker {
		pid := 1
		if multi {
			pid = wk + 1
		}
		for _, e := range events {
			if e.Dur < 0 || e.Start < 0 {
				return fmt.Errorf("tracefmt: worker %d event %q has negative time", wk, e.Name)
			}
			seen[key{pid, e.Track}] = true
			out = append(out, obs.TraceEvent{
				Name: e.Name, Phase: "X",
				TsUS: e.Start * 1e6, DurUS: e.Dur * 1e6,
				Pid: pid, Tid: e.Track,
			})
		}
	}
	// Emit the metadata in sorted (pid, track) order.
	keys := make([]key, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	lastPid := 0
	for _, k := range keys {
		if multi && k.pid != lastPid {
			out = append(out, obs.TraceEvent{
				Name: "process_name", Phase: "M", Pid: k.pid, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", k.pid-1)},
			})
			lastPid = k.pid
		}
		name := trackNames[k.tid]
		if name == "" {
			name = fmt.Sprintf("track %d", k.tid)
		}
		out = append(out, obs.TraceEvent{
			Name: "thread_name", Phase: "M", Pid: k.pid, Tid: k.tid,
			Args: map[string]any{"name": name},
		})
	}
	return obs.WriteTraceEvents(w, out)
}
