// Package tracefmt serialises simulated training-step timelines into the
// Chrome trace-event JSON format (chrome://tracing, Perfetto), so the
// phase structure the paper's Figure 1 sketches — forward, backward, the
// overlapped per-bucket gradient all-reduces, the optimizer tail — can be
// inspected visually for any model and cluster topology.
//
// The event serialisation itself lives in internal/obs (TraceEvent,
// WriteTraceEvents), which the runtime telemetry layer also uses for real
// measured spans; this package is the adapter that renders trainsim's
// *simulated* timelines in the same format.
package tracefmt

import (
	"fmt"
	"io"
	"sort"

	"convmeter/internal/obs"
	"convmeter/internal/trainsim"
)

// trackNames labels the two tracks of a training-step timeline.
var trackNames = map[int]string{0: "compute", 1: "network"}

// WriteChromeTrace writes the events as a Chrome trace-event JSON
// document (object form with a traceEvents array plus thread-name
// metadata). An empty timeline — a zero-layer or otherwise degenerate
// model — yields a valid empty document, not an error, so every
// timeline pipes cleanly into Perfetto.
func WriteChromeTrace(w io.Writer, events []trainsim.TimelineEvent) error {
	var out []obs.TraceEvent
	seenTracks := map[int]bool{}
	for _, e := range events {
		if e.Dur < 0 || e.Start < 0 {
			return fmt.Errorf("tracefmt: event %q has negative time", e.Name)
		}
		seenTracks[e.Track] = true
		out = append(out, obs.TraceEvent{
			Name: e.Name, Phase: "X",
			TsUS: e.Start * 1e6, DurUS: e.Dur * 1e6,
			Pid: 1, Tid: e.Track,
		})
	}
	// Emit the metadata in sorted track order: the trace document is
	// serialized output and must be bit-identical across runs.
	tracks := make([]int, 0, len(seenTracks))
	for track := range seenTracks {
		tracks = append(tracks, track)
	}
	sort.Ints(tracks)
	for _, track := range tracks {
		name := trackNames[track]
		if name == "" {
			name = fmt.Sprintf("track %d", track)
		}
		out = append(out, obs.TraceEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: track,
			Args: map[string]any{"name": name},
		})
	}
	return obs.WriteTraceEvents(w, out)
}
