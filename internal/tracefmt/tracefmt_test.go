package tracefmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"convmeter/internal/hwsim"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/trainsim"
)

func makeTimeline(t *testing.T) []trainsim.TimelineEvent {
	t.Helper()
	sim, err := trainsim.New(trainsim.Config{
		Device: hwsim.A100(), Fabric: netsim.Cluster(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := models.Build("resnet50", 128)
	if err != nil {
		t.Fatal(err)
	}
	events, phases, err := sim.Timeline(g, 32, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if phases.Iter <= 0 {
		t.Fatal("bad phases")
	}
	return events
}

func TestTimelineStructure(t *testing.T) {
	events := makeTimeline(t)
	var fwd, bwd, opt *trainsim.TimelineEvent
	comm := 0
	for i := range events {
		switch {
		case events[i].Name == "forward":
			fwd = &events[i]
		case events[i].Name == "backward":
			bwd = &events[i]
		case events[i].Name == "optimizer":
			opt = &events[i]
		case events[i].Track == 1:
			comm++
		}
	}
	if fwd == nil || bwd == nil || opt == nil {
		t.Fatal("missing core phases")
	}
	if comm == 0 {
		t.Fatal("no communication buckets on the network track")
	}
	if fwd.Start != 0 || bwd.Start != fwd.Dur {
		t.Fatal("forward/backward must be contiguous from t=0")
	}
	if opt.Start < bwd.Start+bwd.Dur {
		t.Fatal("optimizer cannot start before the backward pass ends")
	}
	// Communication must overlap the backward pass (Horovod tensor
	// fusion): the first bucket starts before the backward pass ends.
	firstComm := events[2]
	if firstComm.Track != 1 || firstComm.Start >= bwd.Start+bwd.Dur {
		t.Fatalf("first all-reduce at %g does not overlap backward ending %g",
			firstComm.Start, bwd.Start+bwd.Dur)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := makeTimeline(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(events) {
		t.Fatalf("trace has %d events, want >= %d", len(doc.TraceEvents), len(events))
	}
	if !strings.Contains(buf.String(), "allreduce bucket") {
		t.Fatal("bucket spans missing from trace")
	}
	if !strings.Contains(buf.String(), `"network"`) {
		t.Fatal("thread-name metadata missing")
	}
	sawComplete := false
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" {
			sawComplete = true
			if e["ts"].(float64) < 0 || e["dur"].(float64) < 0 {
				t.Fatal("negative timestamps")
			}
		}
	}
	if !sawComplete {
		t.Fatal("no complete events")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	// An empty timeline must render as a valid empty document — Perfetto
	// accepts it — rather than an error.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("empty timeline: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid empty-trace JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents must be an empty array, not null")
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty timeline produced %d events", len(doc.TraceEvents))
	}
}

func TestWriteChromeTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	bad := []trainsim.TimelineEvent{{Name: "x", Start: -1, Dur: 1}}
	if err := WriteChromeTrace(&buf, bad); err == nil {
		t.Fatal("expected negative-time error")
	}
}

// TestWriteChromeTraceWorkers: a data-parallel render puts worker i on
// pid i+1 with a "worker i" process name, keeps per-worker compute and
// network tracks, and emits metadata in sorted (pid, tid) order so the
// document is bit-identical across runs.
func TestWriteChromeTraceWorkers(t *testing.T) {
	perWorker := [][]trainsim.TimelineEvent{
		{
			{Name: "forward", Track: 0, Start: 0, Dur: 1},
			{Name: "allreduce bucket", Track: 1, Start: 1, Dur: 0.5},
		},
		{
			{Name: "forward", Track: 0, Start: 0, Dur: 2},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceWorkers(&buf, perWorker); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	pids := map[int]bool{}
	var processNames []string
	var metaOrder [][2]int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			pids[e.Pid] = true
		case "M":
			if e.Name == "process_name" {
				processNames = append(processNames, e.Args["name"].(string))
			}
			if e.Name == "thread_name" {
				metaOrder = append(metaOrder, [2]int{e.Pid, e.Tid})
			}
		}
	}
	if !pids[1] || !pids[2] || len(pids) != 2 {
		t.Fatalf("event pids = %v, want exactly {1, 2}", pids)
	}
	if len(processNames) != 2 || processNames[0] != "worker 0" || processNames[1] != "worker 1" {
		t.Fatalf("process names = %v, want [worker 0, worker 1]", processNames)
	}
	for i := 1; i < len(metaOrder); i++ {
		prev, cur := metaOrder[i-1], metaOrder[i]
		if cur[0] < prev[0] || (cur[0] == prev[0] && cur[1] <= prev[1]) {
			t.Fatalf("thread metadata out of (pid, tid) order: %v", metaOrder)
		}
	}
	// Two renders must be byte-identical: the trace is serialized output
	// under the replayability contract.
	var again bytes.Buffer
	if err := WriteChromeTraceWorkers(&again, perWorker); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("multi-worker trace render is not deterministic")
	}

	// The single-worker path through the same writer must keep the
	// original format: pid 1, no process metadata.
	var single bytes.Buffer
	if err := WriteChromeTraceWorkers(&single, perWorker[:1]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(single.String(), "process_name") {
		t.Fatalf("single-worker trace grew process metadata:\n%s", single.String())
	}

	bad := [][]trainsim.TimelineEvent{{{Name: "x", Start: 0, Dur: 1}}, {{Name: "y", Start: -1, Dur: 1}}}
	if err := WriteChromeTraceWorkers(&buf, bad); err == nil || !strings.Contains(err.Error(), "worker 1") {
		t.Fatalf("negative time on worker 1 = %v, want error naming the worker", err)
	}
}
