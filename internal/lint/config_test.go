package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestParseConfig covers the happy path: comments, blank lines, and
// all three directives, with prefix matching over path segments.
func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(`
# the boundary
analytical convmeter/internal/core
measured   convmeter/internal/exec
allow      convmeter/internal/core convmeter/internal/exec
`), "test.config")
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.classify("convmeter/internal/core"); got != "analytical" {
		t.Errorf("classify(core) = %q", got)
	}
	if got := cfg.classify("convmeter/internal/core/sub"); got != "analytical" {
		t.Errorf("classify(core/sub) = %q, want prefix match on path segments", got)
	}
	if got := cfg.classify("convmeter/internal/corette"); got != "" {
		t.Errorf("classify(corette) = %q, want no match: %q is not a path-segment prefix", got, "core")
	}
	if got := cfg.classify("convmeter/internal/exec"); got != "measured" {
		t.Errorf("classify(exec) = %q", got)
	}
	if !cfg.allowed("convmeter/internal/core", "convmeter/internal/exec") {
		t.Error("allow entry not honoured")
	}
	if cfg.allowed("convmeter/internal/metrics", "convmeter/internal/exec") {
		t.Error("allow entry leaked to a different importer")
	}
}

// TestParseConfigScopes covers the dataflow-analyzer stanzas:
// deterministic and lockcheck scopes match on path segments like the
// boundary classification, unit entries form a qualified-name set, and
// hotpath entries resolve to per-package local root names.
func TestParseConfigScopes(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(`
deterministic convmeter/internal/metrics
deterministic convmeter/internal/checkpoint
lockcheck     convmeter/internal/allreduce
unit          convmeter/internal/metrics.Seconds
unit          convmeter/internal/metrics.FLOPs
hotpath       convmeter/internal/exec.conv2d
hotpath       convmeter/internal/exec.convTask.run
hotpath       convmeter/internal/obs.Counter.Add
`), "scopes.config")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.deterministicScope("convmeter/internal/metrics") {
		t.Error("deterministic scope misses a declared package")
	}
	if !cfg.deterministicScope("convmeter/internal/checkpoint/sub") {
		t.Error("deterministic scope must match path-segment prefixes")
	}
	if cfg.deterministicScope("convmeter/internal/metricsplus") {
		t.Error("deterministic scope matched a non-segment prefix")
	}
	if cfg.deterministicScope("convmeter/internal/allreduce") {
		t.Error("lockcheck declaration leaked into the deterministic scope")
	}
	if !cfg.lockcheckScope("convmeter/internal/allreduce") {
		t.Error("lockcheck scope misses a declared package")
	}
	units := cfg.unitSet()
	if !units["convmeter/internal/metrics.Seconds"] || !units["convmeter/internal/metrics.FLOPs"] {
		t.Errorf("unit set %v misses declared entries", units)
	}
	if len(units) != 2 {
		t.Errorf("unit set %v has stray entries", units)
	}
	// hotpathRoots strips the exact package prefix and keeps the local
	// name, including the Recv.Method form; other packages see nothing.
	if got := cfg.hotpathRoots("convmeter/internal/exec"); len(got) != 2 || got[0] != "conv2d" || got[1] != "convTask.run" {
		t.Errorf("hotpathRoots(exec) = %v, want [conv2d convTask.run]", got)
	}
	if got := cfg.hotpathRoots("convmeter/internal/obs"); len(got) != 1 || got[0] != "Counter.Add" {
		t.Errorf("hotpathRoots(obs) = %v, want [Counter.Add]", got)
	}
	if got := cfg.hotpathRoots("convmeter/internal"); got != nil {
		t.Errorf("hotpathRoots(parent) = %v, want nil: entries bind to one exact package", got)
	}
}

// TestParseConfigV4Scopes covers the convlint v4 stanzas: the three
// analyzer scopes match on path segments, acquire pairs map function to
// release method, and transfer/ctxroot form qualified-name sets.
func TestParseConfigV4Scopes(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(`
lifetime  convmeter/internal/allreduce
ctxflow   convmeter/internal/obs
chanproto convmeter/internal/exec
acquire   convmeter/internal/obs.Tracer.Start End
acquire   convmeter/internal/checkpoint.Open Close
transfer  convmeter/internal/faults.WrapConn
ctxroot   convmeter/internal/obs/ops.Server.Close
`), "v4.config")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.lifetimeScope("convmeter/internal/allreduce") || !cfg.lifetimeScope("convmeter/internal/allreduce/sub") {
		t.Error("lifetime scope misses a declared package or its path-segment children")
	}
	if cfg.lifetimeScope("convmeter/internal/allreducer") {
		t.Error("lifetime scope matched a non-segment prefix")
	}
	if cfg.lifetimeScope("convmeter/internal/obs") {
		t.Error("ctxflow declaration leaked into the lifetime scope")
	}
	if !cfg.ctxflowScope("convmeter/internal/obs") {
		t.Error("ctxflow scope misses a declared package")
	}
	if !cfg.chanprotoScope("convmeter/internal/exec") {
		t.Error("chanproto scope misses a declared package")
	}
	acq := cfg.acquireSet()
	if acq["convmeter/internal/obs.Tracer.Start"] != "End" || acq["convmeter/internal/checkpoint.Open"] != "Close" {
		t.Errorf("acquire set %v misses declared pairs", acq)
	}
	if len(acq) != 2 {
		t.Errorf("acquire set %v has stray entries", acq)
	}
	if !cfg.transferSet()["convmeter/internal/faults.WrapConn"] {
		t.Errorf("transfer set %v misses the declared sink", cfg.transferSet())
	}
	if !cfg.ctxrootSet()["convmeter/internal/obs/ops.Server.Close"] {
		t.Errorf("ctxroot set %v misses the declared entry point", cfg.ctxrootSet())
	}
}

// TestParseConfigDuplicatesAndConflicts: the same entry twice in one
// stanza and a package classified on both sides of the boundary are
// configuration bugs, not preferences.
func TestParseConfigDuplicatesAndConflicts(t *testing.T) {
	_, err := ParseConfig(strings.NewReader(`analytical convmeter/internal/core
analytical convmeter/internal/core
deterministic convmeter/internal/metrics
deterministic convmeter/internal/metrics
measured convmeter/internal/core
unit convmeter/internal/metrics.Seconds
unit convmeter/internal/metrics.Seconds
unit NoDotHere
lifetime convmeter/internal/allreduce
lifetime convmeter/internal/allreduce
acquire convmeter/internal/obs.Tracer.Start End
acquire convmeter/internal/obs.Tracer.Start Stop
`), "dup.config")
	if err == nil {
		t.Fatal("duplicate and contradictory config parsed without error")
	}
	msg := err.Error()
	for _, want := range []string{
		`dup.config:2: duplicate analytical entry`,
		`dup.config:4: duplicate deterministic entry`,
		`dup.config:7: duplicate unit entry`,
		`"NoDotHere" is not a qualified type`,
		`classified both analytical and measured`,
		`dup.config:10: duplicate lifetime entry`,
		// Two release methods for one acquire func is a contradiction,
		// so the dup check keys on the function alone.
		`dup.config:12: duplicate acquire entry`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not report %q:\n%s", want, msg)
		}
	}
	// The same prefix in *different* stanzas is not a duplicate: a
	// package is legitimately both analytical and deterministic.
	if _, err := ParseConfig(strings.NewReader(`analytical convmeter/internal/core
deterministic convmeter/internal/core
`), "ok.config"); err != nil {
		t.Errorf("analytical+deterministic on one package rejected: %v", err)
	}
}

// TestParseConfigBadLines: every malformed line must be reported with
// its line number — bad config must fail loudly, never be skipped.
func TestParseConfigBadLines(t *testing.T) {
	_, err := ParseConfig(strings.NewReader(`analytical convmeter/internal/core
analytycal convmeter/internal/metrics
measured
allow convmeter/internal/core
analytical a b c
acquire convmeter/internal/obs.Tracer.Start
acquire NoDot End
acquire convmeter/internal/obs.Tracer.Start pkg.End
transfer NoDot
ctxroot NoDot
`), "bad.config")
	if err == nil {
		t.Fatal("malformed config parsed without error")
	}
	msg := err.Error()
	for _, wantLine := range []string{"bad.config:2", "bad.config:3", "bad.config:4", "bad.config:5", "bad.config:6", "bad.config:7", "bad.config:8", "bad.config:9", "bad.config:10"} {
		if !strings.Contains(msg, wantLine) {
			t.Errorf("error does not report %s:\n%s", wantLine, msg)
		}
	}
	if !strings.Contains(msg, "unknown directive") {
		t.Errorf("error does not name the unknown directive:\n%s", msg)
	}
	for _, want := range []string{
		`"acquire" takes a qualified function and a release method name`,
		`acquire entry "NoDot" is not a qualified acquire`,
		`acquire release "pkg.End" must be a bare method name`,
		`transfer entry "NoDot" is not a qualified transfer`,
		`ctxroot entry "NoDot" is not a qualified ctxroot`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not report %q:\n%s", want, msg)
		}
	}
}

// TestRepoConfig guards the checked-in lint.config against drift: the
// paper's analytical and measured sides must stay classified.
func TestRepoConfig(t *testing.T) {
	cfg, err := LoadConfig(filepath.Join(repoRoot(t), "lint.config"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"core", "metrics", "graph", "regress", "linalg"} {
		if got := cfg.classify("convmeter/internal/" + p); got != "analytical" {
			t.Errorf("lint.config classifies %s as %q, want analytical", p, got)
		}
	}
	for _, p := range []string{"exec", "hwsim", "hwreal", "netsim", "trainsim", "pipesim", "allreduce", "obs", "obs/ops", "obs/tsdb", "obs/alert", "obs/runtimeprof", "driftwatch", "tracefmt", "dagrun"} {
		if got := cfg.classify("convmeter/internal/" + p); got != "measured" {
			t.Errorf("lint.config classifies %s as %q, want measured", p, got)
		}
	}
	if len(cfg.Allow) != 0 {
		t.Errorf("lint.config has %d allow entries; each one is a hole in the analytical boundary and needs a test update with justification", len(cfg.Allow))
	}
	// The replayability contract (DESIGN.md §6): the analytical side plus
	// the measured packages whose output is replayed or diffed.
	for _, p := range []string{"core", "metrics", "graph", "regress", "linalg", "faults", "checkpoint", "tracefmt", "driftwatch/streamstat", "dagrun/manifest", "obs/tsdb/seriesq"} {
		if !cfg.deterministicScope("convmeter/internal/" + p) {
			t.Errorf("lint.config drops %s from the deterministic scope; the replayability contract must stay enforced", p)
		}
	}
	// Packages whose job is to observe real time must stay out of it.
	for _, p := range []string{"exec", "hwreal", "obs", "driftwatch", "obs/tsdb", "obs/alert", "obs/runtimeprof"} {
		if cfg.deterministicScope("convmeter/internal/" + p) {
			t.Errorf("lint.config declares %s deterministic; it times real work and cannot honour the contract", p)
		}
	}
	for _, p := range []string{"allreduce", "obs", "train", "driftwatch"} {
		if !cfg.lockcheckScope("convmeter/internal/" + p) {
			t.Errorf("lint.config drops %s from the lockcheck scope", p)
		}
	}
	units := cfg.unitSet()
	for _, u := range []string{"Seconds", "FLOPs", "Bytes", "Count"} {
		if !units["convmeter/internal/metrics."+u] {
			t.Errorf("lint.config drops unit metrics.%s; unitcheck would stop guarding it", u)
		}
	}
	// The daemon-readiness contract (DESIGN.md §6c): resource lifetimes,
	// context discipline and channel protocol are enforced module-wide —
	// analytical packages simply have nothing to report.
	for _, scope := range []struct {
		name string
		in   func(string) bool
	}{
		{"lifetime", cfg.lifetimeScope},
		{"ctxflow", cfg.ctxflowScope},
		{"chanproto", cfg.chanprotoScope},
	} {
		for _, p := range []string{"convmeter/internal/allreduce", "convmeter/internal/obs/ops", "convmeter/internal/dagrun", "convmeter/cmd/convmeter"} {
			if !scope.in(p) {
				t.Errorf("lint.config drops %s from the %s scope; the daemon-readiness contract must stay module-wide", p, scope.name)
			}
		}
	}
	// Every ctxroot entry is a hole in the cancellation-propagation
	// contract: growing this set needs a test update with justification.
	ctxroots := cfg.ctxrootSet()
	for _, q := range []string{"convmeter/internal/obs/ops.Server.Close", "convmeter/internal/allreduce.Options.ctx"} {
		if !ctxroots[q] {
			t.Errorf("lint.config drops ctxroot %s; ctxflow would flag its deliberate root context", q)
		}
	}
	if len(ctxroots) != 2 {
		t.Errorf("lint.config has %d ctxroot entries; each one detaches work from caller deadlines and needs a test update with justification", len(ctxroots))
	}
	// The hot-path allocation contract: the kernels the runtime model
	// measures, the collective inner step, and the always-on telemetry
	// observe paths must stay declared, or the hotpath analyzer stops
	// guarding the numbers the paper's predictions are fitted to.
	for pkg, roots := range map[string][]string{
		"convmeter/internal/exec":                  {"conv2d", "linear", "attentionCore", "conv2dBackward"},
		"convmeter/internal/allreduce":             {"chanRing.step"},
		"convmeter/internal/obs":                   {"Counter.Add", "Gauge.Set", "Histogram.Observe", "Span.Context", "Span.LinkTo"},
		"convmeter/internal/driftwatch":            {"Stream.Observe"},
		"convmeter/internal/driftwatch/streamstat": {"Window.Add", "Window.Summary"},
		"convmeter/internal/obs/tsdb":              {"DB.Sample"},
		"convmeter/internal/obs/alert":             {"Engine.Eval"},
		"convmeter/internal/obs/runtimeprof":       {"Sampler.Sample"},
	} {
		declared := map[string]bool{}
		for _, r := range cfg.hotpathRoots(pkg) {
			declared[r] = true
		}
		for _, r := range roots {
			if !declared[r] {
				t.Errorf("lint.config drops hotpath root %s.%s; the allocation discipline on it is no longer enforced", pkg, r)
			}
		}
	}
}

// TestBoundaryAllowlist exercises the allow mechanics end to end on a
// synthetic pass: the same import is a finding without the entry and
// silent with it.
func TestBoundaryAllowlist(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "boundary")
	pkg, err := NewLoader(root).LoadDir(dir, "convmeter/internal/lint/testdata/boundary")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	cfg.Allow = nil // drop the netsim allowlist entry
	findings := Run([]*Package{pkg}, []*Analyzer{NewBoundary(cfg)})
	var netsim int
	for _, f := range findings {
		if strings.Contains(f.Message, "netsim") {
			netsim++
		}
	}
	if netsim != 1 {
		t.Errorf("without the allow entry the netsim import must be a finding; got %v", findings)
	}
}
