package lint

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseConfig hardens the lint.config parser against malformed
// input: it must either return an error or a self-consistent Config —
// never panic, never silently accept a contradiction. The parser is the
// root of trust for every analyzer scope; a crash or a laundered
// duplicate here disables the boundary rule for the whole repository.
// On-disk seeds live in testdata/fuzz/FuzzParseConfig.
func FuzzParseConfig(f *testing.F) {
	f.Add("analytical convmeter/internal/core\nmeasured convmeter/internal/exec\n")
	f.Add("# comment only\n\n   \n")
	f.Add("allow a b\nallow a\n")
	f.Add("unit convmeter/internal/metrics.Seconds\nunit NoDotHere\n")
	f.Add("deterministic p\ndeterministic p\n")
	f.Add("analytical p\nmeasured p\n")
	f.Add("bogus directive here\n")
	f.Add("analytical\tp\r\nmeasured\tq\r\n") // CRLF + tab separators
	f.Add("analytical p extra\n")
	f.Add("unit a.b\nunit a.b\nlockcheck x\nlockcheck x y\n")
	f.Add("hotpath convmeter/internal/exec.conv2d\nhotpath convmeter/internal/obs.Counter.Add\n")
	f.Add("hotpath NoDotHere\n")
	f.Add("hotpath a.b\nhotpath a.b\n")
	f.Add("lifetime convmeter/internal/allreduce\nctxflow convmeter/internal/obs\nchanproto convmeter/internal/exec\n")
	f.Add("acquire convmeter/internal/obs.Tracer.Start End\nacquire a.b Close\n")
	f.Add("acquire a.b End\nacquire a.b Stop\n") // contradictory release methods
	f.Add("acquire a.b\nacquire NoDot End\nacquire a.b x.End\n")
	f.Add("transfer a.b\ntransfer NoDot\nctxroot a.b\nctxroot NoDot\n")
	f.Add("lifetime p\nlifetime p\nchanproto q\nchanproto q\n")

	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := ParseConfig(strings.NewReader(input), "fuzz.config")
		if err != nil {
			if cfg != nil {
				t.Fatal("error and non-nil config together")
			}
			return // rejection is fine; panics are not
		}
		if cfg == nil {
			t.Fatal("nil config without error")
		}
		// Accepted configs must be internally consistent: no duplicates
		// within a stanza, no package on both sides of the boundary, and
		// every unit entry qualified.
		for stanza, entries := range map[string][]string{
			"analytical":    cfg.Analytical,
			"measured":      cfg.Measured,
			"deterministic": cfg.Deterministic,
			"lockcheck":     cfg.Lockcheck,
			"unit":          cfg.Units,
			"hotpath":       cfg.Hotpath,
			"lifetime":      cfg.Lifetime,
			"ctxflow":       cfg.Ctxflow,
			"chanproto":     cfg.Chanproto,
			"transfer":      cfg.Transfer,
			"ctxroot":       cfg.Ctxroot,
		} {
			seen := map[string]bool{}
			for _, e := range entries {
				if seen[e] {
					t.Fatalf("accepted duplicate %s entry %q", stanza, e)
				}
				seen[e] = true
				if strings.TrimSpace(e) != e || e == "" {
					t.Fatalf("accepted unstripped %s entry %q", stanza, e)
				}
			}
		}
		for _, a := range cfg.Analytical {
			for _, m := range cfg.Measured {
				if a == m {
					t.Fatalf("accepted %q on both sides of the boundary", a)
				}
			}
		}
		for _, u := range cfg.Units {
			if !strings.Contains(u, ".") {
				t.Fatalf("accepted unqualified unit entry %q", u)
			}
		}
		for _, h := range cfg.Hotpath {
			if !strings.Contains(h, ".") {
				t.Fatalf("accepted unqualified hotpath entry %q", h)
			}
		}
		for _, e := range cfg.Transfer {
			if !strings.Contains(e, ".") {
				t.Fatalf("accepted unqualified transfer entry %q", e)
			}
		}
		for _, e := range cfg.Ctxroot {
			if !strings.Contains(e, ".") {
				t.Fatalf("accepted unqualified ctxroot entry %q", e)
			}
		}
		acqSeen := map[string]bool{}
		for _, a := range cfg.Acquire {
			if !strings.Contains(a[0], ".") {
				t.Fatalf("accepted unqualified acquire entry %q", a[0])
			}
			if strings.Contains(a[1], ".") || strings.Contains(a[1], "/") || a[1] == "" {
				t.Fatalf("accepted acquire release %q that is not a bare method name", a[1])
			}
			if acqSeen[a[0]] {
				t.Fatalf("accepted two release methods for acquire func %q", a[0])
			}
			acqSeen[a[0]] = true
		}
		// An accepted config must round-trip: re-serialising its entries
		// as config lines and re-parsing yields the identical Config.
		var sb strings.Builder
		for _, e := range cfg.Analytical {
			fmt.Fprintf(&sb, "analytical %s\n", e)
		}
		for _, e := range cfg.Measured {
			fmt.Fprintf(&sb, "measured %s\n", e)
		}
		for _, a := range cfg.Allow {
			fmt.Fprintf(&sb, "allow %s %s\n", a[0], a[1])
		}
		for _, e := range cfg.Deterministic {
			fmt.Fprintf(&sb, "deterministic %s\n", e)
		}
		for _, e := range cfg.Lockcheck {
			fmt.Fprintf(&sb, "lockcheck %s\n", e)
		}
		for _, e := range cfg.Units {
			fmt.Fprintf(&sb, "unit %s\n", e)
		}
		for _, e := range cfg.Hotpath {
			fmt.Fprintf(&sb, "hotpath %s\n", e)
		}
		for _, e := range cfg.Lifetime {
			fmt.Fprintf(&sb, "lifetime %s\n", e)
		}
		for _, e := range cfg.Ctxflow {
			fmt.Fprintf(&sb, "ctxflow %s\n", e)
		}
		for _, e := range cfg.Chanproto {
			fmt.Fprintf(&sb, "chanproto %s\n", e)
		}
		for _, a := range cfg.Acquire {
			fmt.Fprintf(&sb, "acquire %s %s\n", a[0], a[1])
		}
		for _, e := range cfg.Transfer {
			fmt.Fprintf(&sb, "transfer %s\n", e)
		}
		for _, e := range cfg.Ctxroot {
			fmt.Fprintf(&sb, "ctxroot %s\n", e)
		}
		back, err := ParseConfig(strings.NewReader(sb.String()), "roundtrip.config")
		if err != nil {
			t.Fatalf("round trip of accepted config failed: %v", err)
		}
		if !equalConfig(cfg, back) {
			t.Fatalf("round trip changed config:\n%+v\nvs\n%+v", cfg, back)
		}
	})
}

func equalConfig(a, b *Config) bool {
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Analytical, b.Analytical) || !eq(a.Measured, b.Measured) ||
		!eq(a.Deterministic, b.Deterministic) || !eq(a.Lockcheck, b.Lockcheck) ||
		!eq(a.Units, b.Units) || !eq(a.Hotpath, b.Hotpath) ||
		!eq(a.Lifetime, b.Lifetime) || !eq(a.Ctxflow, b.Ctxflow) ||
		!eq(a.Chanproto, b.Chanproto) || !eq(a.Transfer, b.Transfer) ||
		!eq(a.Ctxroot, b.Ctxroot) ||
		len(a.Allow) != len(b.Allow) || len(a.Acquire) != len(b.Acquire) {
		return false
	}
	for i := range a.Allow {
		if a.Allow[i] != b.Allow[i] {
			return false
		}
	}
	for i := range a.Acquire {
		if a.Acquire[i] != b.Acquire[i] {
			return false
		}
	}
	return true
}
