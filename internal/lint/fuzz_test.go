package lint

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseConfig hardens the lint.config parser against malformed
// input: it must either return an error or a self-consistent Config —
// never panic, never silently accept a contradiction. The parser is the
// root of trust for every analyzer scope; a crash or a laundered
// duplicate here disables the boundary rule for the whole repository.
// On-disk seeds live in testdata/fuzz/FuzzParseConfig.
func FuzzParseConfig(f *testing.F) {
	f.Add("analytical convmeter/internal/core\nmeasured convmeter/internal/exec\n")
	f.Add("# comment only\n\n   \n")
	f.Add("allow a b\nallow a\n")
	f.Add("unit convmeter/internal/metrics.Seconds\nunit NoDotHere\n")
	f.Add("deterministic p\ndeterministic p\n")
	f.Add("analytical p\nmeasured p\n")
	f.Add("bogus directive here\n")
	f.Add("analytical\tp\r\nmeasured\tq\r\n") // CRLF + tab separators
	f.Add("analytical p extra\n")
	f.Add("unit a.b\nunit a.b\nlockcheck x\nlockcheck x y\n")
	f.Add("hotpath convmeter/internal/exec.conv2d\nhotpath convmeter/internal/obs.Counter.Add\n")
	f.Add("hotpath NoDotHere\n")
	f.Add("hotpath a.b\nhotpath a.b\n")

	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := ParseConfig(strings.NewReader(input), "fuzz.config")
		if err != nil {
			if cfg != nil {
				t.Fatal("error and non-nil config together")
			}
			return // rejection is fine; panics are not
		}
		if cfg == nil {
			t.Fatal("nil config without error")
		}
		// Accepted configs must be internally consistent: no duplicates
		// within a stanza, no package on both sides of the boundary, and
		// every unit entry qualified.
		for stanza, entries := range map[string][]string{
			"analytical":    cfg.Analytical,
			"measured":      cfg.Measured,
			"deterministic": cfg.Deterministic,
			"lockcheck":     cfg.Lockcheck,
			"unit":          cfg.Units,
			"hotpath":       cfg.Hotpath,
		} {
			seen := map[string]bool{}
			for _, e := range entries {
				if seen[e] {
					t.Fatalf("accepted duplicate %s entry %q", stanza, e)
				}
				seen[e] = true
				if strings.TrimSpace(e) != e || e == "" {
					t.Fatalf("accepted unstripped %s entry %q", stanza, e)
				}
			}
		}
		for _, a := range cfg.Analytical {
			for _, m := range cfg.Measured {
				if a == m {
					t.Fatalf("accepted %q on both sides of the boundary", a)
				}
			}
		}
		for _, u := range cfg.Units {
			if !strings.Contains(u, ".") {
				t.Fatalf("accepted unqualified unit entry %q", u)
			}
		}
		for _, h := range cfg.Hotpath {
			if !strings.Contains(h, ".") {
				t.Fatalf("accepted unqualified hotpath entry %q", h)
			}
		}
		// An accepted config must round-trip: re-serialising its entries
		// as config lines and re-parsing yields the identical Config.
		var sb strings.Builder
		for _, e := range cfg.Analytical {
			fmt.Fprintf(&sb, "analytical %s\n", e)
		}
		for _, e := range cfg.Measured {
			fmt.Fprintf(&sb, "measured %s\n", e)
		}
		for _, a := range cfg.Allow {
			fmt.Fprintf(&sb, "allow %s %s\n", a[0], a[1])
		}
		for _, e := range cfg.Deterministic {
			fmt.Fprintf(&sb, "deterministic %s\n", e)
		}
		for _, e := range cfg.Lockcheck {
			fmt.Fprintf(&sb, "lockcheck %s\n", e)
		}
		for _, e := range cfg.Units {
			fmt.Fprintf(&sb, "unit %s\n", e)
		}
		for _, e := range cfg.Hotpath {
			fmt.Fprintf(&sb, "hotpath %s\n", e)
		}
		back, err := ParseConfig(strings.NewReader(sb.String()), "roundtrip.config")
		if err != nil {
			t.Fatalf("round trip of accepted config failed: %v", err)
		}
		if !equalConfig(cfg, back) {
			t.Fatalf("round trip changed config:\n%+v\nvs\n%+v", cfg, back)
		}
	})
}

func equalConfig(a, b *Config) bool {
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Analytical, b.Analytical) || !eq(a.Measured, b.Measured) ||
		!eq(a.Deterministic, b.Deterministic) || !eq(a.Lockcheck, b.Lockcheck) ||
		!eq(a.Units, b.Units) || !eq(a.Hotpath, b.Hotpath) ||
		len(a.Allow) != len(b.Allow) {
		return false
	}
	for i := range a.Allow {
		if a.Allow[i] != b.Allow[i] {
			return false
		}
	}
	return true
}
