package lint

import (
	"strconv"
)

// NewBoundary returns the analyzer enforcing the paper's central
// architectural invariant: the five inherent metrics (F, I, O, W, L)
// are computable analytically, without running the network. Packages
// classified "analytical" in lint.config therefore must not import
// packages classified "measured" — if core or metrics ever reached
// into the executor or a simulator, the claim would silently break.
// Exceptions require an explicit allow entry in the config.
func NewBoundary(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "boundary",
		Doc:  "analytical packages must not import measurement/simulation packages",
		Run: func(pass *Pass) {
			if cfg.classify(pass.Pkg.ImportPath) != "analytical" {
				return
			}
			for _, file := range pass.Pkg.Files {
				if isTestFile(pass.Pkg.Fset, file.Pos()) {
					continue
				}
				for _, imp := range file.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if cfg.classify(path) != "measured" {
						continue
					}
					if cfg.allowed(pass.Pkg.ImportPath, path) {
						continue
					}
					pass.Reportf("boundary", imp.Pos(),
						"analytical package %s imports measured package %s (the inherent metrics must stay computable without running the network; add an allow entry to lint.config only with a written justification)",
						pass.Pkg.ImportPath, path)
				}
			}
		},
	}
}
