package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// NewLockCheck constructs the analyzer enforcing lock discipline in the
// packages declared `lockcheck` in lint.config — the concurrent
// measured stack (ring all-reduce, telemetry registry/tracer, the
// data-parallel trainer). A mutex held across a blocking operation
// turns one slow peer into a stall of every other lock user: a ring
// neighbour that stops reading blocks a send, the send blocks the lock
// holder, and the lock blocks the world. The paper's scalability
// numbers assume synchronisation costs stay bounded; a lock held over
// network I/O makes them unbounded.
//
// Within each function, the analyzer tracks critical sections — from a
// `mu.Lock()`/`mu.RLock()` call to the matching `mu.Unlock()`/
// `mu.RUnlock()`, or to the end of the function when the unlock is
// deferred — and reports blocking operations inside them:
//
//   - channel sends and receives (including `select` without a
//     `default` clause and `for range ch`);
//   - time.Sleep;
//   - sync.WaitGroup.Wait;
//   - calls into package net and methods on net types (Read, Write,
//     Accept, …).
//
// Bodies of nested function literals are skipped unless the literal is
// invoked immediately: a goroutine launched inside a critical section
// does not itself hold the lock. The analysis is lexical, not
// path-sensitive — a blocking call on an early-return path before the
// Lock can in principle be misattributed; such cases take a
// //lint:ignore lockcheck with the reasoning spelled out.
func NewLockCheck(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "lockcheck",
		Doc:  "flag mutexes held across blocking operations (channel ops, net I/O, time.Sleep) in lockcheck-scoped packages",
		Run: func(pass *Pass) {
			if !cfg.lockcheckScope(pass.Pkg.ImportPath) || pass.Pkg.TypesInfo == nil {
				return
			}
			for _, file := range pass.Pkg.Files {
				if isTestFile(pass.Pkg.Fset, file.Pos()) {
					continue
				}
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkLockRegions(pass, fd)
				}
			}
		},
	}
}

// lockRegion is one critical section: [start, end] positions between a
// Lock call and its matching Unlock (or function end for deferred
// unlocks), tagged with the rendered mutex expression.
type lockRegion struct {
	mutex      string
	start, end token.Pos
}

// blockingOp is one potentially blocking operation site.
type blockingOp struct {
	pos  token.Pos
	what string
}

// checkLockRegions reports blocking operations inside the critical
// sections of one function.
func checkLockRegions(pass *Pass, fd *ast.FuncDecl) {
	type lockEvent struct {
		mutex    string
		pos      token.Pos
		lock     bool // Lock/RLock vs Unlock/RUnlock
		deferred bool
	}
	var events []lockEvent
	record := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
			return
		}
		switch obj.Name() {
		case "Lock", "RLock":
			events = append(events, lockEvent{mutex: exprString(pass, sel.X), pos: call.Pos(), lock: true, deferred: deferred})
		case "Unlock", "RUnlock":
			events = append(events, lockEvent{mutex: exprString(pass, sel.X), pos: call.Pos(), deferred: deferred})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			record(x.Call, true)
			return false
		case *ast.CallExpr:
			record(x, false)
		}
		return true
	})
	var regions []lockRegion
	for _, e := range events {
		if !e.lock || e.deferred {
			continue
		}
		end := fd.Body.End()
		for _, u := range events {
			if u.lock || u.deferred || u.mutex != e.mutex || u.pos <= e.pos {
				continue
			}
			if u.pos < end {
				end = u.pos
			}
		}
		regions = append(regions, lockRegion{mutex: e.mutex, start: e.pos, end: end})
	}
	if len(regions) == 0 {
		return
	}
	for _, op := range blockingOps(pass, fd.Body) {
		for _, r := range regions {
			if op.pos > r.start && op.pos < r.end {
				pass.Reportf("lockcheck", op.pos,
					"%s while holding %s: a blocked peer stalls every other lock user; move the blocking operation outside the critical section", op.what, r.mutex)
				break
			}
		}
	}
}

// blockingOps collects the potentially blocking operations under a
// node. Goroutine launches, deferred calls, and function literals that
// are not invoked immediately are skipped: their bodies do not run
// while the caller holds its locks (defers are a documented blind spot
// — they run at return, interleaved with any deferred unlock).
func blockingOps(pass *Pass, root ast.Node) []blockingOp {
	info := pass.Pkg.TypesInfo
	var out []blockingOp
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt, *ast.FuncLit:
			// FuncLits reached here are not immediately invoked (that
			// case recurses explicitly below and never descends to the
			// literal through this path).
			return false
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				out = append(out, blockingOps(pass, lit.Body)...)
				for _, arg := range x.Args {
					out = append(out, blockingOps(pass, arg)...)
				}
				return false
			}
			if isPkgFunc(info, x, "time", "Sleep") {
				out = append(out, blockingOp{pos: x.Pos(), what: "time.Sleep"})
				return true
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
				out = append(out, blockingOp{pos: x.Pos(), what: "sync.WaitGroup.Wait"})
			case obj.Pkg().Path() == "net":
				out = append(out, blockingOp{pos: x.Pos(), what: "net I/O (" + obj.Name() + ")"})
			}
		case *ast.SendStmt:
			out = append(out, blockingOp{pos: x.Pos(), what: "channel send"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				out = append(out, blockingOp{pos: x.Pos(), what: "channel receive"})
			}
		case *ast.SelectStmt:
			blocking := true
			for _, clause := range x.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					blocking = false // a default clause makes the select a poll
				}
				// Clause bodies run after the select fires and can
				// block in their own right; the comm expressions
				// themselves are part of the (possibly non-blocking)
				// select and are never reported individually.
				for _, stmt := range cc.Body {
					out = append(out, blockingOps(pass, stmt)...)
				}
			}
			if blocking {
				out = append(out, blockingOp{pos: x.Pos(), what: "select without default"})
			}
			return false
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out = append(out, blockingOp{pos: x.For, what: "range over channel"})
				}
			}
		}
		return true
	})
	return out
}

// exprString renders a (usually small) expression for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Pkg.Fset, e); err != nil {
		return "mutex"
	}
	return buf.String()
}
