package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Config is the parsed lint.config: the classification of packages
// into analytical and measured sides of the paper's boundary, an
// allowlist of explicitly sanctioned analytical→measured imports, and
// the scopes of the dataflow analyzers — which packages promise
// deterministic (replayable) results, which named types carry physical
// units, and which packages are subject to lock-discipline checks.
//
// The file format is line-oriented:
//
//	# comment
//	analytical    <import-path-prefix>
//	measured      <import-path-prefix>
//	allow         <importer-prefix> <imported-prefix>
//	deterministic <import-path-prefix>
//	lockcheck     <import-path-prefix>
//	unit          <import-path>.<TypeName>
//	hotpath       <import-path>.<Func>
//	hotpath       <import-path>.<Recv>.<Method>
//	lifetime      <import-path-prefix>
//	ctxflow       <import-path-prefix>
//	chanproto     <import-path-prefix>
//	acquire       <import-path>.<Func-or-Recv.Method> <ReleaseMethod>
//	transfer      <import-path>.<Func-or-Recv.Method>
//	ctxroot       <import-path>.<Func-or-Recv.Method>
//
// Prefixes match whole path segments: "convmeter/internal/core" covers
// that package and everything below it. A unit entry names one defined
// type treated as a physical dimension by the unitcheck analyzer. A
// hotpath entry declares one function (or method, via its receiver type
// name) as a hot-path root: everything reachable from it inside its own
// package must stay allocation-free, which the hotpath and hotdefer
// analyzers enforce.
//
// The resource-lifetime family (DESIGN.md §6c) reads the last four
// stanzas: lifetime/ctxflow/chanproto scope the three analyzers of the
// same names; an acquire entry declares a custom constructor whose
// result carries a release obligation (the named method must be called
// on every path); a transfer entry declares a sink that takes ownership
// of a resource argument (passing a tracked resource to it discharges
// the obligation); a ctxroot entry names an entry-point function
// permitted to mint context.Background/TODO.
type Config struct {
	Analytical    []string
	Measured      []string
	Allow         [][2]string
	Deterministic []string
	Lockcheck     []string
	Units         []string    // qualified "import/path.TypeName" entries
	Hotpath       []string    // qualified "import/path.Func" or "import/path.Recv.Method" roots
	Lifetime      []string    // lifetime analyzer scope prefixes
	Ctxflow       []string    // ctxflow analyzer scope prefixes
	Chanproto     []string    // chanproto analyzer scope prefixes
	Acquire       [][2]string // {qualified acquire func, release method name}
	Transfer      []string    // qualified ownership-taking sinks
	Ctxroot       []string    // qualified functions allowed to mint root contexts
}

// ParseConfig reads a lint.config stream. Every malformed line is
// reported — bad configuration must fail loudly, or a typo could
// silently disable the boundary rule. The same prefix declared twice —
// in one stanza or on both sides of the boundary — is also an error:
// duplicate classifications are either dead weight or a contradiction.
func ParseConfig(r io.Reader, name string) (*Config, error) {
	cfg := &Config{}
	var errs []string
	seen := map[string]bool{} // stanza-qualified prefix or unit entries
	declare := func(ln int, stanza, key string) bool {
		if seen[stanza+"\x00"+key] {
			errs = append(errs, fmt.Sprintf("%s:%d: duplicate %s entry %q", name, ln, stanza, key))
			return false
		}
		seen[stanza+"\x00"+key] = true
		return true
	}
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		// qualified reports (and records) whether an entry names a single
		// function or type as <import-path>.<Name>; bare names cannot
		// resolve and would silently guard nothing.
		qualified := func(stanza, entry, want string) bool {
			if !strings.Contains(entry, ".") {
				errs = append(errs, fmt.Sprintf("%s:%d: %s entry %q is not a qualified %s (want %s)", name, ln, stanza, entry, stanza, want))
				return false
			}
			return true
		}
		switch fields[0] {
		case "analytical", "measured", "deterministic", "lockcheck", "unit", "hotpath",
			"lifetime", "ctxflow", "chanproto", "transfer", "ctxroot":
			if len(fields) != 2 {
				errs = append(errs, fmt.Sprintf("%s:%d: %q takes exactly one argument, got %d fields", name, ln, fields[0], len(fields)-1))
				continue
			}
			if !declare(ln, fields[0], fields[1]) {
				continue
			}
			switch fields[0] {
			case "analytical":
				cfg.Analytical = append(cfg.Analytical, fields[1])
			case "measured":
				cfg.Measured = append(cfg.Measured, fields[1])
			case "deterministic":
				cfg.Deterministic = append(cfg.Deterministic, fields[1])
			case "lockcheck":
				cfg.Lockcheck = append(cfg.Lockcheck, fields[1])
			case "unit":
				if !strings.Contains(fields[1], ".") {
					errs = append(errs, fmt.Sprintf("%s:%d: unit entry %q is not a qualified type (want <import-path>.<TypeName>)", name, ln, fields[1]))
					continue
				}
				cfg.Units = append(cfg.Units, fields[1])
			case "hotpath":
				if !strings.Contains(fields[1], ".") {
					errs = append(errs, fmt.Sprintf("%s:%d: hotpath entry %q is not a qualified function (want <import-path>.<Func> or <import-path>.<Recv>.<Method>)", name, ln, fields[1]))
					continue
				}
				cfg.Hotpath = append(cfg.Hotpath, fields[1])
			case "lifetime":
				cfg.Lifetime = append(cfg.Lifetime, fields[1])
			case "ctxflow":
				cfg.Ctxflow = append(cfg.Ctxflow, fields[1])
			case "chanproto":
				cfg.Chanproto = append(cfg.Chanproto, fields[1])
			case "transfer":
				if !qualified("transfer", fields[1], "<import-path>.<Func> or <import-path>.<Recv>.<Method>") {
					continue
				}
				cfg.Transfer = append(cfg.Transfer, fields[1])
			case "ctxroot":
				if !qualified("ctxroot", fields[1], "<import-path>.<Func> or <import-path>.<Recv>.<Method>") {
					continue
				}
				cfg.Ctxroot = append(cfg.Ctxroot, fields[1])
			}
		case "acquire":
			if len(fields) != 3 {
				errs = append(errs, fmt.Sprintf("%s:%d: \"acquire\" takes a qualified function and a release method name, got %d fields", name, ln, len(fields)-1))
				continue
			}
			if !qualified("acquire", fields[1], "<import-path>.<Func> or <import-path>.<Recv>.<Method>") {
				continue
			}
			if strings.Contains(fields[2], ".") || strings.Contains(fields[2], "/") {
				errs = append(errs, fmt.Sprintf("%s:%d: acquire release %q must be a bare method name", name, ln, fields[2]))
				continue
			}
			// Keyed by the acquire function alone: the same constructor
			// declared with two release methods is a contradiction.
			if !declare(ln, "acquire", fields[1]) {
				continue
			}
			cfg.Acquire = append(cfg.Acquire, [2]string{fields[1], fields[2]})
		case "allow":
			if len(fields) != 3 {
				errs = append(errs, fmt.Sprintf("%s:%d: \"allow\" takes importer and imported paths, got %d fields", name, ln, len(fields)-1))
				continue
			}
			cfg.Allow = append(cfg.Allow, [2]string{fields[1], fields[2]})
		default:
			errs = append(errs, fmt.Sprintf("%s:%d: unknown directive %q (want analytical, measured, allow, deterministic, lockcheck, unit, hotpath, lifetime, ctxflow, chanproto, acquire, transfer or ctxroot)", name, ln, fields[0]))
		}
	}
	// A package on both sides of the boundary is a contradiction the
	// boundary analyzer would resolve arbitrarily; reject it outright.
	for _, a := range cfg.Analytical {
		for _, m := range cfg.Measured {
			if a == m {
				errs = append(errs, fmt.Sprintf("%s: %q classified both analytical and measured", name, a))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: invalid config:\n\t%s", strings.Join(errs, "\n\t"))
	}
	return cfg, nil
}

// LoadConfig parses a lint.config file from disk.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f, path)
}

// pathHasPrefix reports whether the import path is the prefix itself
// or lies below it in the package hierarchy.
func pathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// classify returns which side of the boundary a package falls on:
// "analytical", "measured", or "" for unclassified packages.
func (c *Config) classify(importPath string) string {
	for _, p := range c.Analytical {
		if pathHasPrefix(importPath, p) {
			return "analytical"
		}
	}
	for _, p := range c.Measured {
		if pathHasPrefix(importPath, p) {
			return "measured"
		}
	}
	return ""
}

// allowed reports whether the analytical→measured import has an
// explicit allowlist entry.
func (c *Config) allowed(importer, imported string) bool {
	for _, a := range c.Allow {
		if pathHasPrefix(importer, a[0]) && pathHasPrefix(imported, a[1]) {
			return true
		}
	}
	return false
}

// deterministicScope reports whether a package declared itself
// deterministic: its exported results, serialized output and hash
// inputs must be bit-identical across runs and goroutine schedules.
func (c *Config) deterministicScope(importPath string) bool {
	for _, p := range c.Deterministic {
		if pathHasPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// lockcheckScope reports whether a package opted into the
// mutex-across-blocking-operation discipline.
func (c *Config) lockcheckScope(importPath string) bool {
	for _, p := range c.Lockcheck {
		if pathHasPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// unitSet returns the configured unit types as a lookup set of
// qualified "import/path.TypeName" names.
func (c *Config) unitSet() map[string]bool {
	set := make(map[string]bool, len(c.Units))
	for _, u := range c.Units {
		set[u] = true
	}
	return set
}

// hotpathRoots returns the local names ("Func" or "Recv.Method") of the
// hot-path roots declared for exactly the given package. Hotpath entries
// name single functions, so — unlike the prefix stanzas — the package
// part must match exactly: an entry for a subpackage has a '/' in its
// remainder and is skipped.
func (c *Config) hotpathRoots(importPath string) []string {
	var roots []string
	for _, e := range c.Hotpath {
		rest, ok := strings.CutPrefix(e, importPath+".")
		if !ok || rest == "" || strings.Contains(rest, "/") {
			continue
		}
		roots = append(roots, rest)
	}
	return roots
}

// lifetimeScope reports whether a package opted into the
// acquire/release resource-lifetime discipline.
func (c *Config) lifetimeScope(importPath string) bool {
	for _, p := range c.Lifetime {
		if pathHasPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// ctxflowScope reports whether a package opted into the
// context-discipline checks.
func (c *Config) ctxflowScope(importPath string) bool {
	for _, p := range c.Ctxflow {
		if pathHasPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// chanprotoScope reports whether a package opted into the
// channel-protocol checks.
func (c *Config) chanprotoScope(importPath string) bool {
	for _, p := range c.Chanproto {
		if pathHasPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// acquireSet returns the configured custom acquire functions as a map
// from qualified name ("import/path.Func" or "import/path.Recv.Method")
// to the release method the returned resource owes.
func (c *Config) acquireSet() map[string]string {
	set := make(map[string]string, len(c.Acquire))
	for _, a := range c.Acquire {
		set[a[0]] = a[1]
	}
	return set
}

// transferSet returns the configured ownership-taking sinks as a
// qualified-name lookup set.
func (c *Config) transferSet() map[string]bool {
	set := make(map[string]bool, len(c.Transfer))
	for _, t := range c.Transfer {
		set[t] = true
	}
	return set
}

// ctxrootSet returns the functions allowed to mint root contexts as a
// qualified-name lookup set.
func (c *Config) ctxrootSet() map[string]bool {
	set := make(map[string]bool, len(c.Ctxroot))
	for _, r := range c.Ctxroot {
		set[r] = true
	}
	return set
}
