package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Config is the parsed lint.config: the classification of packages
// into analytical and measured sides of the paper's boundary, plus an
// allowlist of explicitly sanctioned analytical→measured imports.
//
// The file format is line-oriented:
//
//	# comment
//	analytical <import-path-prefix>
//	measured   <import-path-prefix>
//	allow      <importer-prefix> <imported-prefix>
//
// Prefixes match whole path segments: "convmeter/internal/core" covers
// that package and everything below it.
type Config struct {
	Analytical []string
	Measured   []string
	Allow      [][2]string
}

// ParseConfig reads a lint.config stream. Every malformed line is
// reported — bad configuration must fail loudly, or a typo could
// silently disable the boundary rule.
func ParseConfig(r io.Reader, name string) (*Config, error) {
	cfg := &Config{}
	var errs []string
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "analytical", "measured":
			if len(fields) != 2 {
				errs = append(errs, fmt.Sprintf("%s:%d: %q takes exactly one import path, got %d fields", name, ln, fields[0], len(fields)-1))
				continue
			}
			if fields[0] == "analytical" {
				cfg.Analytical = append(cfg.Analytical, fields[1])
			} else {
				cfg.Measured = append(cfg.Measured, fields[1])
			}
		case "allow":
			if len(fields) != 3 {
				errs = append(errs, fmt.Sprintf("%s:%d: \"allow\" takes importer and imported paths, got %d fields", name, ln, len(fields)-1))
				continue
			}
			cfg.Allow = append(cfg.Allow, [2]string{fields[1], fields[2]})
		default:
			errs = append(errs, fmt.Sprintf("%s:%d: unknown directive %q (want analytical, measured or allow)", name, ln, fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: invalid config:\n\t%s", strings.Join(errs, "\n\t"))
	}
	return cfg, nil
}

// LoadConfig parses a lint.config file from disk.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f, path)
}

// pathHasPrefix reports whether the import path is the prefix itself
// or lies below it in the package hierarchy.
func pathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// classify returns which side of the boundary a package falls on:
// "analytical", "measured", or "" for unclassified packages.
func (c *Config) classify(importPath string) string {
	for _, p := range c.Analytical {
		if pathHasPrefix(importPath, p) {
			return "analytical"
		}
	}
	for _, p := range c.Measured {
		if pathHasPrefix(importPath, p) {
			return "measured"
		}
	}
	return ""
}

// allowed reports whether the analytical→measured import has an
// explicit allowlist entry.
func (c *Config) allowed(importer, imported string) bool {
	for _, a := range c.Allow {
		if pathHasPrefix(importer, a[0]) && pathHasPrefix(imported, a[1]) {
			return true
		}
	}
	return false
}
