package lint

// Suite returns the full convlint analyzer set in reporting order.
// The boundary, determinism, unitcheck, lockcheck, hotpath, hotdefer,
// lifetime, ctxflow and chanproto analyzers read their scope from the
// repo's lint.config.
func Suite(cfg *Config) []*Analyzer {
	return []*Analyzer{
		NewBoundary(cfg),
		NewDeterminism(cfg),
		NewUnitCheck(cfg),
		NewLockCheck(cfg),
		NewHotPath(cfg),
		NewHotDefer(cfg),
		NewLifetime(cfg),
		NewCtxflow(cfg),
		NewChanproto(cfg),
		FloatCmp,
		DroppedErr,
		SyncCopy,
		GoLeak,
	}
}
