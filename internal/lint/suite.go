package lint

// Suite returns the full convlint analyzer set in reporting order.
// The boundary analyzer is configured from the repo's lint.config.
func Suite(cfg *Config) []*Analyzer {
	return []*Analyzer{
		NewBoundary(cfg),
		FloatCmp,
		DroppedErr,
		SyncCopy,
		GoLeak,
	}
}
