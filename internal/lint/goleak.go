package lint

import (
	"go/ast"
)

// GoLeak heuristically flags `go func(){…}` literals whose body shows
// no sign of a join: no WaitGroup.Done (deferred or direct), no
// channel send, no close. Such a goroutine has no way to tell anyone
// it finished, which in this codebase's worker pools (exec kernels,
// train replicas, ring all-reduce, bench collector) means either a
// leak or a silently lost result.
//
// It is a heuristic by design: a goroutine may legitimately join
// through shared state or run for the process lifetime. Those cases
// take a //lint:ignore goleak <reason> stating why.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flag go func literals with no WaitGroup.Done/channel-send join in their body",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			if isTestFile(pass.Pkg.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true // named function: assume the callee documents its own lifecycle
				}
				if !hasJoinSignal(lit.Body) {
					pass.Reportf("goleak", gs.Pos(),
						"go func literal has no visible join (WaitGroup.Done, channel send, or close) in its body; it can leak or lose its result")
				}
				return true
			})
		}
	},
}

// hasJoinSignal reports whether a goroutine body contains any
// statement that can signal completion to another goroutine: a
// channel send, a close(), or a call to a method named Done
// (sync.WaitGroup's signature move, usually deferred).
func hasJoinSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fn := x.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fn.Sel.Name == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
