package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot locates the module root, two levels above this package.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// wantRx matches fixture expectation markers: `// want <analyzer>`.
var wantRx = regexp.MustCompile(`// want ([a-z]+)`)

// wantMarkers collects expected findings ("file:line analyzer") from
// marker comments in every fixture file of dir.
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d %s", path, i+1, m[1])] = true
			}
		}
	}
	return want
}

// fixtureConfig classifies the boundary fixture as analytical, the
// real simulator/executor packages as measured, allowlists the
// fixture's netsim import, and scopes the dataflow analyzers to their
// fixture packages.
func fixtureConfig() *Config {
	return &Config{
		Analytical: []string{"convmeter/internal/lint/testdata/boundary"},
		Measured: []string{
			"convmeter/internal/hwsim",
			"convmeter/internal/netsim",
			"convmeter/internal/exec",
		},
		Allow: [][2]string{
			{"convmeter/internal/lint/testdata/boundary", "convmeter/internal/netsim"},
		},
		Deterministic: []string{"convmeter/internal/lint/testdata/determinism"},
		Lockcheck:     []string{"convmeter/internal/lint/testdata/lockcheck"},
		Units: []string{
			"convmeter/internal/lint/testdata/unitcheck.Seconds",
			"convmeter/internal/lint/testdata/unitcheck.FLOPs",
			"convmeter/internal/lint/testdata/unitcheck.Count",
			"convmeter/internal/lint/testdata/unitcheck.Bytes",
		},
		Hotpath: []string{
			"convmeter/internal/lint/testdata/hotpath.Root",
			"convmeter/internal/lint/testdata/hotpath.ring.step",
			"convmeter/internal/lint/testdata/hotdefer.Root",
		},
		Lifetime:  []string{"convmeter/internal/lint/testdata/lifetime"},
		Ctxflow:   []string{"convmeter/internal/lint/testdata/ctxflow"},
		Chanproto: []string{"convmeter/internal/lint/testdata/chanproto"},
		Acquire: [][2]string{
			{"convmeter/internal/lint/testdata/lifetime.newHandle", "Release"},
		},
		Transfer: []string{"convmeter/internal/lint/testdata/lifetime.register"},
		Ctxroot:  []string{"convmeter/internal/lint/testdata/ctxflow.Main"},
	}
}

// TestAnalyzerFixtures drives every analyzer against its seeded
// fixture package: each `// want <analyzer>` marker must produce
// exactly one finding, nothing else may fire, and the //lint:ignore
// lines embedded in the fixtures must stay silent.
func TestAnalyzerFixtures(t *testing.T) {
	root := repoRoot(t)
	loader := NewLoader(root)
	for _, name := range []string{"boundary", "floatcmp", "droppederr", "synccopy", "goleak", "determinism", "unitcheck", "lockcheck", "hotpath", "hotdefer", "lifetime", "ctxflow", "chanproto"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "lint", "testdata", name)
			pkg, err := loader.LoadDir(dir, "convmeter/internal/lint/testdata/"+name)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run([]*Package{pkg}, Suite(fixtureConfig()))
			want := wantMarkers(t, dir)
			got := make(map[string]bool)
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d %s", f.Pos.Filename, f.Pos.Line, f.Analyzer)
				if got[key] {
					t.Errorf("duplicate finding: %s", f)
				}
				got[key] = true
				if !want[key] {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missing finding: want %s", key)
				}
			}
		})
	}
}

// TestHotpathUnknownRoot pins the config-hygiene rule: a hotpath root
// naming no function in its package is itself a finding — a typo'd
// root would otherwise silently guard nothing.
func TestHotpathUnknownRoot(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "hotpath")
	pkg, err := NewLoader(root).LoadDir(dir, "convmeter/internal/lint/testdata/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Hotpath: []string{"convmeter/internal/lint/testdata/hotpath.NoSuchFunc"}}
	var hot []Finding
	for _, f := range Run([]*Package{pkg}, []*Analyzer{NewHotPath(cfg), NewHotDefer(cfg)}) {
		if f.Analyzer == "hotpath" {
			hot = append(hot, f)
		}
	}
	if len(hot) != 1 {
		t.Fatalf("got %d hotpath findings, want exactly the unknown-root report: %v", len(hot), hot)
	}
	if !strings.Contains(hot[0].Message, "NoSuchFunc") {
		t.Errorf("finding does not name the missing root: %s", hot[0])
	}
}

// TestHotpathWhyChain checks that hotpath findings carry the
// root→…→function reachability chain convlint -why prints.
func TestHotpathWhyChain(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "hotpath")
	pkg, err := NewLoader(root).LoadDir(dir, "convmeter/internal/lint/testdata/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range Run([]*Package{pkg}, []*Analyzer{NewHotPath(fixtureConfig())}) {
		if f.Analyzer != "hotpath" {
			continue
		}
		if strings.Contains(f.Why, "ring.step") {
			found = true
			if want := "declared root ring.step → ring.note"; !strings.Contains(f.Why, want) {
				t.Errorf("finding why = %q, want it to contain %q", f.Why, want)
			}
		} else if f.Why == "" {
			t.Errorf("hotpath finding without a why chain: %s", f)
		}
	}
	if !found {
		t.Error("no finding for the method-root chain (ring.note)")
	}
}

// TestChanprotoHotChain drives chanproto's hot-reachability rule in
// isolation: with HotRoot declared a hotpath root, the unbuffered
// channel two frames down is a finding carrying the root→callee chain.
// (The full-suite fixture run leaves the root undeclared so the hotpath
// analyzer's own allocation findings stay out of the marker set.)
func TestChanprotoHotChain(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "chanproto")
	pkg, err := NewLoader(root).LoadDir(dir, "convmeter/internal/lint/testdata/chanproto")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	cfg.Hotpath = []string{"convmeter/internal/lint/testdata/chanproto.HotRoot"}
	var hot []Finding
	for _, f := range Run([]*Package{pkg}, []*Analyzer{NewChanproto(cfg)}) {
		if strings.Contains(f.Message, "hot path") {
			hot = append(hot, f)
		}
	}
	if len(hot) != 1 {
		t.Fatalf("got %d hot-path chanproto findings, want 1: %v", len(hot), hot)
	}
	if want := "declared root HotRoot → hotInner"; !strings.Contains(hot[0].Why, want) {
		t.Errorf("finding why = %q, want it to contain %q", hot[0].Why, want)
	}
}

// TestConvlintRepoClean runs the full convlint suite over the whole
// repository with the checked-in lint.config. Tier-1 (`go test ./...`)
// therefore enforces the analyzers' verdict on every future change: a
// new boundary violation, float comparison, dropped error, sync copy
// or joinless goroutine fails the build.
func TestConvlintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint load is not short")
	}
	root := repoRoot(t)
	cfg, err := LoadConfig(filepath.Join(root, "lint.config"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root).Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, f := range Run(pkgs, Suite(cfg)) {
		t.Errorf("%s", f)
	}
}

// TestLoaderRejectsBrokenPackage pins the loader's failure mode: type
// errors must surface as load errors, not be analysed silently.
func TestLoaderRejectsBrokenPackage(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc f() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewLoader(dir).LoadDir(dir, "example.com/broken")
	if err == nil {
		t.Fatal("loading a package with type errors succeeded")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error does not mention type-checking: %v", err)
	}
}
