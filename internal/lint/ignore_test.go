package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// loadSource type-checks one import-free source file from a temp dir.
func loadSource(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(dir).LoadDir(dir, "example.com/fix")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// analyzerNames extracts the analyzer of each finding in order.
func analyzerNames(findings []Finding) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.Analyzer
	}
	return out
}

// TestIgnorePlacement pins where a //lint:ignore directive acts: the
// same line and the line immediately above suppress; two lines away
// does not.
func TestIgnorePlacement(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b, c, d float64) []bool {
	return []bool{
		a == b, //lint:ignore floatcmp same-line directive
		//lint:ignore floatcmp line-above directive
		a == c,
		//lint:ignore floatcmp too far away to act

		a == d,
	}
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	if len(findings) != 1 {
		t.Fatalf("got findings %v, want exactly the two-lines-away comparison", findings)
	}
	if findings[0].Pos.Line != 10 {
		t.Errorf("finding at line %d, want line 10 (a == d)", findings[0].Pos.Line)
	}
}

// TestIgnoreWrongAnalyzer: a directive only suppresses the analyzer it
// names.
func TestIgnoreWrongAnalyzer(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b float64) bool {
	//lint:ignore droppederr names the wrong analyzer
	return a == b
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	if got := analyzerNames(findings); len(got) != 1 || got[0] != "floatcmp" {
		t.Fatalf("got %v, want exactly one floatcmp finding", got)
	}
}

// TestMalformedIgnoreReported: a directive without a reason (or
// without an analyzer) must itself become a finding — a typo must not
// silently suppress nothing, or worse, be believed to suppress.
func TestMalformedIgnoreReported(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	var sawMalformed, sawFloatcmp bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			sawMalformed = true
		case "floatcmp":
			sawFloatcmp = true
		}
	}
	if !sawMalformed {
		t.Errorf("malformed directive not reported: %v", findings)
	}
	if !sawFloatcmp {
		t.Errorf("malformed directive suppressed the finding anyway: %v", findings)
	}
}
