package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSource type-checks one import-free source file from a temp dir.
func loadSource(t *testing.T, src string) *Package {
	return loadNamedSource(t, "fix.go", src)
}

// loadNamedSource is loadSource with control over the file name, so
// tests can exercise the _test.go exemptions.
func loadNamedSource(t *testing.T, name, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(dir).LoadDir(dir, "example.com/fix")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// analyzerNames extracts the analyzer of each finding in order.
func analyzerNames(findings []Finding) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.Analyzer
	}
	return out
}

// TestIgnorePlacement pins where a //lint:ignore directive acts: the
// same line and the line immediately above suppress; two lines away
// does not — and the out-of-range directive, having suppressed
// nothing, is itself reported stale.
func TestIgnorePlacement(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b, c, d float64) []bool {
	return []bool{
		a == b, //lint:ignore floatcmp same-line directive
		//lint:ignore floatcmp line-above directive
		a == c,
		//lint:ignore floatcmp too far away to act

		a == d,
	}
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	if got := analyzerNames(findings); len(got) != 2 || got[0] != "lint" || got[1] != "floatcmp" {
		t.Fatalf("got %v, want a stale-directive finding then the two-lines-away comparison", findings)
	}
	if findings[0].Pos.Line != 8 || !strings.Contains(findings[0].Message, "stale") {
		t.Errorf("first finding %v, want the line-8 directive reported stale", findings[0])
	}
	if findings[1].Pos.Line != 10 {
		t.Errorf("finding at line %d, want line 10 (a == d)", findings[1].Pos.Line)
	}
}

// TestIgnoreWrongAnalyzer: a directive only suppresses the analyzer it
// names; one naming an analyzer that is not part of the run is
// reported as suppressing nothing.
func TestIgnoreWrongAnalyzer(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b float64) bool {
	//lint:ignore droppederr names the wrong analyzer
	return a == b
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	got := analyzerNames(findings)
	if len(got) != 2 || got[0] != "lint" || got[1] != "floatcmp" {
		t.Fatalf("got %v, want an unknown-analyzer finding and the unsuppressed floatcmp finding", findings)
	}
	if !strings.Contains(findings[0].Message, `unknown analyzer "droppederr"`) {
		t.Errorf("directive finding does not name the unknown analyzer: %v", findings[0])
	}
}

// TestStaleIgnoreReported: a well-formed directive naming a running
// analyzer that nevertheless suppresses nothing is dead weight — the
// code it excused has been fixed or moved — and must be flagged for
// deletion.
func TestStaleIgnoreReported(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b float64) bool {
	//lint:ignore floatcmp the comparison below was rewritten long ago
	return a < b
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	got := analyzerNames(findings)
	if len(got) != 1 || got[0] != "lint" {
		t.Fatalf("got %v, want exactly one stale-directive finding", findings)
	}
	if !strings.Contains(findings[0].Message, "stale //lint:ignore floatcmp") {
		t.Errorf("stale finding does not name the directive's analyzer: %v", findings[0])
	}
}

// TestStaleIgnoreExemptInTests: several analyzers skip _test.go files
// wholesale, so a directive there may legitimately guard a finding the
// run never produces — test files are exempt from directive hygiene.
func TestStaleIgnoreExemptInTests(t *testing.T) {
	pkg := loadNamedSource(t, "fix_test.go", `package fix

func cmp(a, b float64) bool {
	//lint:ignore floatcmp analyzers skip test files; never stale here
	return a < b
}
`)
	if findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp}); len(findings) != 0 {
		t.Fatalf("got %v, want no findings for a directive in a test file", findings)
	}
}

// TestIgnoreMustNameAnalyzer: a used directive must name the analyzer
// whose finding it suppresses — naming a different (running) analyzer
// both leaves the original finding live and marks the directive stale.
func TestIgnoreMustNameAnalyzer(t *testing.T) {
	pkg := loadSource(t, `package fix

import "sync"

type box struct{ mu sync.Mutex }

func cmp(a, b float64) bool {
	//lint:ignore synccopy wrong name: the finding below is floatcmp
	return a == b
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp, SyncCopy})
	var sawStale, sawFloatcmp bool
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "stale //lint:ignore synccopy"):
			sawStale = true
		case f.Analyzer == "floatcmp":
			sawFloatcmp = true
		}
	}
	if !sawFloatcmp {
		t.Errorf("directive naming a different analyzer suppressed the floatcmp finding: %v", findings)
	}
	if !sawStale {
		t.Errorf("mis-targeted directive not reported stale: %v", findings)
	}
}

// TestMalformedIgnoreReported: a directive without a reason (or
// without an analyzer) must itself become a finding — a typo must not
// silently suppress nothing, or worse, be believed to suppress.
func TestMalformedIgnoreReported(t *testing.T) {
	pkg := loadSource(t, `package fix

func cmp(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	var sawMalformed, sawFloatcmp bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			sawMalformed = true
		case "floatcmp":
			sawFloatcmp = true
		}
	}
	if !sawMalformed {
		t.Errorf("malformed directive not reported: %v", findings)
	}
	if !sawFloatcmp {
		t.Errorf("malformed directive suppressed the finding anyway: %v", findings)
	}
}
