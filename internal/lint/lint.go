// Package lint is convlint's analyzer framework: a self-contained
// static-analysis harness built on the standard library's go/ast,
// go/parser and go/types (no external module dependencies). It exists
// to enforce invariants the paper's method depends on — most
// importantly the boundary between packages that compute the five
// inherent metrics *analytically* and packages that *measure or
// simulate* execution — plus float-safety and goroutine hygiene in the
// regression and concurrency hot paths.
//
// The framework is deliberately small: an Analyzer inspects one fully
// type-checked package at a time and returns Findings; the Runner loads
// packages, applies every analyzer, and filters findings through
// //lint:ignore suppression comments.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Why, when non-empty, explains how the analyzer concluded the
	// finding applies — for the hotpath family, the call chain from the
	// declared root to the offending function. It is supplementary
	// detail (printed by convlint -why, carried in -json), not part of
	// the canonical String rendering.
	Why string
}

// String renders the canonical file:line:col analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package as seen by analyzers.
// TypesPkg and TypesInfo may be nil when the package was loaded in
// syntax-only mode; analyzers that need type information must tolerate
// that by returning no findings for expressions they cannot resolve.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	TypesPkg   *types.Package
	TypesInfo  *types.Info
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Pkg    *Package
	report []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	p.ReportWhyf(analyzer, pos, "", format, args...)
}

// ReportWhyf records a finding at pos with an explanation chain (see
// Finding.Why). An empty why degrades to Reportf.
func (p *Pass) ReportWhyf(analyzer string, pos token.Pos, why string, format string, args ...any) {
	p.report = append(p.report, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
		Why:      why,
	})
}

// TypeOf resolves the type of an expression, or nil when type
// information is unavailable (syntax-only loads).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.TypesInfo == nil {
		return nil
	}
	return p.Pkg.TypesInfo.TypeOf(e)
}

// An Analyzer checks one package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory; a directive without one is itself reported.
const IgnoreDirective = "//lint:ignore"

// ignoreKey identifies a suppression site.
type ignoreKey struct {
	file string
	line int
}

// ignoreEntry is one parsed //lint:ignore directive. Run tracks how
// many findings each directive suppressed so stale directives — ones
// guarding nothing — are themselves reported and cannot rot in place.
type ignoreEntry struct {
	pos      token.Position
	analyzer string
	used     int
}

// collectIgnores scans a package's comments for //lint:ignore
// directives. Malformed directives (missing analyzer or reason) are
// returned as findings so they cannot silently disable nothing.
func collectIgnores(pkg *Package) (map[ignoreKey][]*ignoreEntry, []Finding) {
	ignores := make(map[ignoreKey][]*ignoreEntry)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, IgnoreDirective)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				ignores[key] = append(ignores[key], &ignoreEntry{pos: pos, analyzer: fields[0]})
			}
		}
	}
	return ignores, bad
}

// Run applies analyzers to every package, filters suppressed findings,
// and returns the remainder sorted by position. Directive hygiene is
// enforced alongside, as findings of the pseudo-analyzer "lint":
// malformed //lint:ignore comments, directives naming an analyzer that
// is not part of the run (a typo'd name would otherwise silently
// suppress nothing), and stale directives that suppressed no finding
// (the code they excused has moved on; the directive must go too).
// Directives in test files are exempt from the staleness check —
// several analyzers skip test files wholesale, so a directive there
// may legitimately guard nothing.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg}
			a.Run(pass)
			for _, f := range pass.report {
				if suppressed(ignores, f) {
					continue
				}
				out = append(out, f)
			}
		}
		for _, entries := range ignores {
			for _, e := range entries {
				if strings.HasSuffix(e.pos.Filename, "_test.go") {
					continue
				}
				if !known[e.analyzer] {
					out = append(out, Finding{
						Pos:      e.pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q; the directive suppresses nothing", e.analyzer),
					})
					continue
				}
				if e.used == 0 {
					out = append(out, Finding{
						Pos:      e.pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("stale //lint:ignore %s: no %s finding on this line or the line below; delete the directive", e.analyzer, e.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressed reports whether an ignore directive for the finding's
// analyzer sits on the finding's line or the line immediately above,
// marking any matching directive as used.
func suppressed(ignores map[ignoreKey][]*ignoreEntry, f Finding) bool {
	hit := false
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, e := range ignores[ignoreKey{file: f.Pos.Filename, line: line}] {
			if e.analyzer == f.Analyzer {
				e.used++
				hit = true
			}
		}
	}
	return hit
}

// isTestFile reports whether the file a node belongs to is a Go test
// file. The loader normally excludes test files, but analyzers keep
// this guard so fixture runs behave identically.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
