package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags expression statements that call a function
// returning an error and let the value fall on the floor. A dropped
// error in the dataset pipeline or the regression fit silently
// corrupts the numbers the paper's accuracy claims rest on.
//
// Deliberate discards stay expressible: assign to blank (`_ = f()`),
// or suppress with //lint:ignore droppederr <reason>. Conventional
// never-fails cases are exempt: fmt.Print/Printf/Println (best-effort
// console output), fmt.Fprint* writing directly to os.Stdout or
// os.Stderr, and fmt.Fprint* into *strings.Builder / *bytes.Buffer,
// whose Write methods are documented never to return an error.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flag call statements whose error result is silently discarded in non-test code",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			if isTestFile(pass.Pkg.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pass, call) || exemptPrinter(pass, call) {
					return true
				}
				pass.Reportf("droppederr", call.Pos(),
					"call returns an error that is silently discarded; handle it or assign to _ explicitly")
				return true
			})
		}
	},
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

// exemptPrinter recognises calls whose error is impossible or
// conventionally unreportable: fmt.Print/Printf/Println,
// fmt.Fprint/Fprintf/Fprintln to literally os.Stdout / os.Stderr or to
// an in-memory builder, and any method on strings.Builder /
// bytes.Buffer (their Write* methods are documented never to return
// an error; Buffer panics on OOM instead).
func exemptPrinter(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if isBuilderType(pass.TypeOf(sel.X)) {
		return true
	}
	pkgName, fn := qualifiedName(pass, sel)
	if pkgName != "fmt" {
		return false
	}
	switch fn {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if dst, ok := call.Args[0].(*ast.SelectorExpr); ok {
			dstPkg, dstName := qualifiedName(pass, dst)
			if dstPkg == "os" && (dstName == "Stdout" || dstName == "Stderr") {
				return true
			}
		}
		if isBuilderType(pass.TypeOf(call.Args[0])) {
			return true
		}
	}
	return false
}

// isBuilderType reports whether t is strings.Builder or bytes.Buffer,
// directly or behind a pointer.
func isBuilderType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// qualifiedName resolves pkg.Name selectors to their package path's
// base name and identifier, or ("", "") for non-package selectors.
func qualifiedName(pass *Pass, sel *ast.SelectorExpr) (pkg, name string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.Pkg.TypesInfo == nil {
		return "", ""
	}
	pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
