package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewUnitCheck constructs the analyzer treating the named quantity
// types declared `unit` in lint.config (metrics.Seconds, metrics.FLOPs,
// metrics.Bytes, metrics.Count, …) as physical dimensions. Go's type
// system already refuses to add a Seconds to a FLOPs — what it cannot
// see is laundering: converting one unit into another, squaring a unit
// by multiplying it with itself, or building a "dimensionless" ratio
// that still carries the unit's type. Those are exactly the mistakes
// that produced the paper's hard-to-debug unit bugs (milliseconds fed
// where seconds were fitted, element counts multiplied into FLOPs), so
// they are flagged:
//
//   - a conversion from one unit type to a different unit type, even
//     through intermediate basic conversions (Seconds(float64(f)) with
//     f a FLOPs still changes the dimension without changing the bits);
//   - a product of two operands of the same unit type: seconds×seconds
//     is not seconds (constants are exempt, so `t * 2` stays legal);
//   - a quotient of two operands of the same unit type: the result is
//     dimensionless and must not keep wearing the unit.
//
// The sanctioned escape is explicit de-dimensioning: convert to
// float64, compute, and re-tag the result — visible at the call site
// and greppable. Cross-unit arithmetic without conversion is reported
// too, defensively, although the compiler usually rejects it first.
func NewUnitCheck(cfg *Config) *Analyzer {
	units := cfg.unitSet()
	return &Analyzer{
		Name: "unitcheck",
		Doc:  "flag arithmetic and conversions that mix or launder the configured unit types",
		Run: func(pass *Pass) {
			if len(units) == 0 || pass.Pkg.TypesInfo == nil {
				return
			}
			for _, file := range pass.Pkg.Files {
				if isTestFile(pass.Pkg.Fset, file.Pos()) {
					continue
				}
				ast.Inspect(file, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.CallExpr:
						checkUnitConversion(pass, units, x)
					case *ast.BinaryExpr:
						checkUnitBinary(pass, units, x.Op, x.OpPos, x.X, x.Y)
					case *ast.AssignStmt:
						if (x.Tok == token.MUL_ASSIGN || x.Tok == token.QUO_ASSIGN) && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
							op := token.MUL
							if x.Tok == token.QUO_ASSIGN {
								op = token.QUO
							}
							checkUnitBinary(pass, units, op, x.TokPos, x.Lhs[0], x.Rhs[0])
						}
					}
					return true
				})
			}
		},
	}
}

// unitOf returns the configured unit a type carries ("" for none),
// identified by its qualified import-path.TypeName.
func unitOf(t types.Type, units map[string]bool) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	q := obj.Pkg().Path() + "." + obj.Name()
	if units[q] {
		return obj.Name()
	}
	return ""
}

// checkUnitConversion flags conversions whose destination is a unit
// type and whose source — peeled through intermediate conversions to
// basic numeric types — carries a different unit.
func checkUnitConversion(pass *Pass, units map[string]bool, call *ast.CallExpr) {
	info := pass.Pkg.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := unitOf(tv.Type, units)
	if dst == "" {
		return
	}
	src := call.Args[0]
	for {
		inner, ok := src.(*ast.CallExpr)
		if !ok || len(inner.Args) != 1 {
			break
		}
		itv, ok := info.Types[inner.Fun]
		if !ok || !itv.IsType() {
			break
		}
		if _, basic := itv.Type.Underlying().(*types.Basic); !basic {
			break
		}
		if u := unitOf(itv.Type, units); u != "" {
			break // a unit-typed hop is itself the conversion to inspect
		}
		src = inner.Args[0]
	}
	if srcUnit := unitOf(pass.TypeOf(src), units); srcUnit != "" && srcUnit != dst {
		pass.Reportf("unitcheck", call.Pos(),
			"conversion launders %s into %s without changing the value's dimension; convert to float64, transform the quantity explicitly, then tag the result", srcUnit, dst)
	}
}

// checkUnitBinary flags cross-unit arithmetic and same-unit products
// and quotients. Constant operands are exempt: scaling a unit by a
// literal is the normal way to write `t * 2`.
func checkUnitBinary(pass *Pass, units map[string]bool, op token.Token, pos token.Pos, xe, ye ast.Expr) {
	ux := unitOf(pass.TypeOf(xe), units)
	uy := unitOf(pass.TypeOf(ye), units)
	if ux == "" || uy == "" {
		return
	}
	if ux != uy {
		pass.Reportf("unitcheck", pos,
			"arithmetic mixes units %s and %s; convert both to float64 and make the dimension change explicit", ux, uy)
		return
	}
	if isConstExpr(pass, xe) || isConstExpr(pass, ye) {
		return
	}
	switch op {
	case token.MUL:
		pass.Reportf("unitcheck", pos,
			"product of two %s values is %s², not %s; de-dimension with float64() before multiplying", ux, ux, ux)
	case token.QUO:
		pass.Reportf("unitcheck", pos,
			"quotient of two %s values is a dimensionless ratio still typed %s; compute it as float64(a)/float64(b)", ux, ux)
	}
}

// isConstExpr reports whether the expression is a compile-time constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
