package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterminismCatchesFingerprintRegression demonstrates the exact
// regression the determinism analyzer exists to stop: feeding a map
// range into a fingerprint. Checkpoint resume compares fingerprints
// across process restarts, so an iteration-order-dependent fingerprint
// silently discards valid resume state on a random fraction of runs —
// the kind of bug that passes every unit test and only bites in
// production sweeps. Introducing it into a deterministic-scoped
// package must fail `make lint` (and, via TestConvlintRepoClean, the
// ordinary test run).
func TestDeterminismCatchesFingerprintRegression(t *testing.T) {
	dir := t.TempDir()
	src := `package fp

import "hash/fnv"

// Fingerprint hashes the settings map — by ranging it directly, so the
// digest depends on map iteration order. This is the regression.
func Fingerprint(settings map[string]string) uint64 {
	h := fnv.New64a()
	for k, v := range settings {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte(v))
	}
	return h.Sum64()
}
`
	if err := os.WriteFile(filepath.Join(dir, "fp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(dir).LoadDir(dir, "example.com/fp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Deterministic: []string{"example.com/fp"}}
	findings := Run([]*Package{pkg}, Suite(cfg))
	var hit bool
	for _, f := range findings {
		if f.Analyzer == "determinism" && strings.Contains(f.Message, "map range") &&
			strings.Contains(f.Message, "Fingerprint") {
			hit = true
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !hit {
		t.Fatalf("the fingerprint map-range regression produced no determinism finding; findings: %v", findings)
	}

	// The fixed version — collect, sort, then index — must be clean:
	// the analyzer accepts the idiom it recommends.
	fixed := `package fp

import (
	"hash/fnv"
	"sort"
)

// Fingerprint hashes the settings in sorted key order.
func Fingerprint(settings map[string]string) uint64 {
	keys := make([]string, 0, len(settings))
	for k := range settings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte(settings[k]))
	}
	return h.Sum64()
}
`
	if err := os.WriteFile(filepath.Join(dir, "fp.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err = NewLoader(dir).LoadDir(dir, "example.com/fp")
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run([]*Package{pkg}, Suite(cfg)); len(findings) != 0 {
		t.Fatalf("sorted-key fingerprint still flagged: %v", findings)
	}
}
