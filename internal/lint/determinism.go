package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewDeterminism constructs the analyzer enforcing the replayability
// contract of packages declared `deterministic` in lint.config: their
// exported results, serialized output and hash/fingerprint inputs must
// be bit-identical across runs, retries and goroutine schedules — the
// property the fault-injection framework and the checkpoint store are
// built on, and the reason the paper's analytical metrics can be
// regression-tested against golden values at all.
//
// Unlike the per-expression analyzers, this one is dataflow-aware: it
// builds a lightweight intra-package call graph and only reports a
// nondeterminism source when the function containing it is reachable
// from the package's public surface — an exported function or method,
// an init function, or a function whose address escapes (assigned,
// passed, or stored, so it may be called from anywhere). A source in
// genuinely dead or purely internal code is noise; one reachable from
// an exported entry point is a replay bug waiting for a map resize.
//
// Sources recognised:
//
//   - `range` over a map: iteration order is randomised per run. The
//     canonical fix — collect keys, sort, then index — is recognised:
//     a range whose enclosing function calls a sort routine
//     (sort.Slice, sort.Strings, slices.Sort, …) lexically after the
//     loop is accepted as the collect-then-sort idiom.
//   - time.Now: wall-clock reads make output depend on when, not what.
//     Deterministic packages take injected clocks (cf. obs.Clock).
//   - math/rand package-level functions (rand.Intn, rand.Float64, …):
//     the global source is shared, lock-contended and — absent an
//     explicit Seed — differently seeded per process. Methods on a
//     locally constructed, explicitly seeded *rand.Rand are fine and
//     are not flagged.
//   - appends to a captured slice from inside a `go` literal: the
//     element order then depends on goroutine scheduling.
func NewDeterminism(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flag nondeterminism sources reachable from the exported surface of packages declared deterministic",
		Run: func(pass *Pass) {
			if !cfg.deterministicScope(pass.Pkg.ImportPath) {
				return
			}
			if pass.Pkg.TypesInfo == nil {
				return
			}
			g := buildCallGraph(pass)
			reach := g.reachableFromRoots()
			for fn, info := range g.funcs {
				root, ok := reach[fn]
				if !ok {
					continue
				}
				for _, src := range info.sources {
					pass.Reportf("determinism", src.pos,
						"%s in deterministic package %s is reachable from %s; %s",
						src.what, pass.Pkg.ImportPath, root, src.fix)
				}
			}
		},
	}
}

// ndSource is one nondeterminism source found in a function body.
type ndSource struct {
	pos  token.Pos
	what string // e.g. "map iteration order"
	fix  string // suggested remedy
}

// funcInfo is one node of the intra-package call graph.
type funcInfo struct {
	name      string
	exported  bool
	isInit    bool
	addrTaken bool
	calls     []*types.Func
	sources   []ndSource
}

// callGraph holds the per-package call graph keyed by function object.
type callGraph struct {
	funcs map[*types.Func]*funcInfo
}

// buildCallGraph walks every non-test file, recording for each declared
// function its intra-package callees and the nondeterminism sources in
// its body (including bodies of function literals it contains).
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{funcs: map[*types.Func]*funcInfo{}}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				name:     fd.Name.Name,
				exported: fd.Name.IsExported(),
				isInit:   fd.Recv == nil && fd.Name.Name == "init",
			}
			g.funcs[obj] = fi
			collectCallsAndSources(pass, fd, fi)
		}
	}
	// Second walk: a function identifier appearing anywhere other than
	// the Fun position of a call (assigned, passed as an argument,
	// returned, stored in a struct) escapes — treat it as a root, since
	// it may be invoked from outside the visible call graph.
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		callees := map[*ast.Ident]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callees[fun] = true
			case *ast.SelectorExpr:
				callees[fun.Sel] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callees[id] {
				return true
			}
			if obj, ok := info.Uses[id].(*types.Func); ok {
				if fi, ok := g.funcs[obj]; ok {
					fi.addrTaken = true
				}
			}
			return true
		})
	}
	return g
}

// collectCallsAndSources records intra-package calls and nondeterminism
// sources of one function declaration.
func collectCallsAndSources(pass *Pass, fd *ast.FuncDecl, fi *funcInfo) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if callee := calleeFunc(info, x); callee != nil {
				if callee.Pkg() == pass.Pkg.TypesPkg {
					fi.calls = append(fi.calls, callee)
				} else if isPkgFunc(info, x, "time", "Now") {
					fi.sources = append(fi.sources, ndSource{
						pos:  x.Pos(),
						what: "time.Now call (wall-clock read)",
						fix:  "inject a clock (cf. obs.Clock) so replays and tests control time",
					})
				} else if p := callee.Pkg(); p != nil && (p.Path() == "math/rand" || p.Path() == "math/rand/v2") && callee.Type().(*types.Signature).Recv() == nil && !isRandConstructor(callee.Name()) {
					fi.sources = append(fi.sources, ndSource{
						pos:  x.Pos(),
						what: "call to math/rand package-level " + callee.Name() + " (shared, per-process-seeded source)",
						fix:  "construct an explicitly seeded *rand.Rand and thread it through",
					})
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && !sortsAfter(pass, fd.Body, x.End()) {
					fi.sources = append(fi.sources, ndSource{
						pos:  x.For,
						what: "map range (iteration order is randomised per run)",
						fix:  "collect the keys, sort them, then index the map",
					})
				}
			}
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				for _, pos := range capturedAppends(pass, lit) {
					fi.sources = append(fi.sources, ndSource{
						pos:  pos,
						what: "append to a captured slice inside a go literal (element order depends on goroutine scheduling)",
						fix:  "write to a per-goroutine index or send results over a channel and order them after the join",
					})
				}
			}
		}
		return true
	})
}

// isRandConstructor exempts the math/rand functions that build an
// explicitly seeded generator rather than draw from the global source.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether a call is pkg.name for an imported package
// with the given import path.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// sortsAfter reports whether the function body contains a call to a
// recognised sorting routine lexically after pos — the signature of the
// collect-keys-then-sort idiom, which determinises a map range.
func sortsAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if f := calleeFunc(pass.Pkg.TypesInfo, call); f != nil && f.Pkg() != nil {
			switch f.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// capturedAppends returns the positions of append assignments inside a
// function literal whose target slice is declared outside the literal.
func capturedAppends(pass *Pass, lit *ast.FuncLit) []token.Pos {
	info := pass.Pkg.TypesInfo
	var out []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" {
				continue
			}
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			target, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[target]
			if obj == nil {
				obj = info.Defs[target]
			}
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				out = append(out, as.Pos())
			}
		}
		return true
	})
	return out
}

// reachableFromRoots walks the call graph from its roots — exported
// functions and methods, init functions, and functions whose address
// escapes — and returns, for each reachable function, a human-readable
// description of one root that reaches it.
func (g *callGraph) reachableFromRoots() map[*types.Func]string {
	reach := map[*types.Func]string{}
	var queue []*types.Func
	for fn, fi := range g.funcs {
		var why string
		switch {
		case fi.exported:
			why = "exported " + fi.name
		case fi.isInit:
			why = "package init"
		case fi.addrTaken:
			why = fi.name + " (address escapes)"
		default:
			continue
		}
		reach[fn] = why
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi := g.funcs[fn]
		if fi == nil {
			continue
		}
		for _, callee := range fi.calls {
			if _, ok := reach[callee]; ok {
				continue
			}
			if _, ok := g.funcs[callee]; !ok {
				continue
			}
			reach[callee] = reach[fn]
			queue = append(queue, callee)
		}
	}
	return reach
}
