// Package chanproto seeds the channel-protocol analyzer's fixture
// findings: receiver-side closes, send-after-close, unbounded channels
// in loops and hot-reachable code, and unterminable goroutine
// select-loops (directly and one call deep, the gap goleak's
// named-function exemption leaves) — plus the exempt idioms
// (coordinator close after join, sender-side close, cancellable loops)
// and a named suppression.
package chanproto

import (
	"context"
	"sync"
)

// --- true positives ---------------------------------------------------

// closeByReceiver closes a channel it only receives from while the
// spawned goroutine is still sending: a send-on-closed panic waiting
// for the right interleaving.
func closeByReceiver() int {
	ch := make(chan int, 4)
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
	}()
	total := <-ch
	close(ch) // want chanproto
	return total
}

// sendAfterClose panics on every execution that reaches the send.
func sendAfterClose() {
	done := make(chan struct{}, 1)
	close(done)
	done <- struct{}{} // want chanproto
}

// perIterationChan allocates an unbuffered channel every iteration and
// blocks on the synchronous handoff.
func perIterationChan(n int) {
	for i := 0; i < n; i++ {
		ack := make(chan struct{}) // want chanproto
		go func() { ack <- struct{}{} }()
		<-ack
	}
}

// spawnUnstoppable launches a select loop with no terminating case:
// the goroutine outlives its spawner with no cancellation path.
func spawnUnstoppable(in chan int, out chan int) {
	go func() {
		for { // want chanproto
			select {
			case v := <-in:
				out <- v
			}
		}
	}()
}

// pump.loop is the same defect one call deep — the named-function shape
// goleak deliberately exempts and the call-graph-aware rule catches.
type pump struct {
	in  chan int
	sum int
}

func (p *pump) loop() {
	for { // want chanproto
		select {
		case v := <-p.in:
			p.sum += v
		}
	}
}

func startPump(p *pump) {
	go p.loop()
}

// --- exempt idioms ----------------------------------------------------

// coordinatorClose joins the senders before closing: the Wait makes
// the receiver-side close safe.
func coordinatorClose(parts int) <-chan int {
	var wg sync.WaitGroup
	ch := make(chan int, parts)
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ch <- v
		}(i)
	}
	wg.Wait()
	close(ch)
	return ch
}

// senderClose is the canonical contract: the goroutine that sends is
// the one that closes.
func senderClose(vals []int) <-chan int {
	out := make(chan int, len(vals))
	go func() {
		for _, v := range vals {
			out <- v
		}
		close(out)
	}()
	return out
}

// spawnStoppable has the cancellation case every long-lived select
// loop needs.
func spawnStoppable(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// HotRoot/hotInner carry the hot-reachability case: the unbuffered
// channel below is only a finding when HotRoot is declared a hotpath
// root (TestChanprotoHotChain drives that config); under the plain
// fixture config this is cold code and stays silent.
func HotRoot(n int) int { return hotInner(n) }

func hotInner(n int) int {
	ready := make(chan int)
	go func() { ready <- n }()
	return <-ready
}

// --- suppression ------------------------------------------------------

// rendezvous wants the synchronous handoff; the directive records it.
func rendezvous(n int) {
	for i := 0; i < n; i++ {
		//lint:ignore chanproto deliberate synchronous handoff per step
		step := make(chan struct{})
		go func() { close(step) }()
		<-step
	}
}
