// Package droppederrfix seeds droppederr violations for the analyzer
// test.
package droppederrfix

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error            { return errors.New("boom") }
func pair() (int, error)     { return 0, errors.New("boom") }
func value() int             { return 1 }
func cleanup() func() error  { return func() error { return nil } }

func drops(sb *strings.Builder) {
	fail()      // want droppederr
	pair()      // want droppederr
	cleanup()() // want droppederr
	value()     // fine: no error result

	_ = fail()     // explicit discard: fine
	_, _ = pair()  // explicit discard: fine
	if err := fail(); err != nil {
		_ = err
	}

	fmt.Println("ok")            // exempt: best-effort console printer
	fmt.Fprintf(os.Stderr, "x")  // exempt: writes to os.Stderr
	fmt.Fprintln(os.Stdout, "x") // exempt: writes to os.Stdout
	fmt.Fprintf(sb, "x")         // exempt: strings.Builder never fails
	sb.WriteString("x")          // exempt: strings.Builder method

	//lint:ignore droppederr fixture proves suppression works
	fail()
}
