// Package hotpathfix seeds allocation-discipline violations for the
// hotpath analyzer test. fixtureConfig declares Root and ring.step as
// hot-path roots, so allocations reachable from them must be reported,
// constructors and cold exit paths must stay silent, and code not
// reachable from a root must be ignored entirely.
package hotpathfix

import (
	"errors"
	"fmt"
	"time"
)

var (
	errSink error
	boxSink any
	scratch []float64
)

type state struct{ n int }

// Root is the declared allocation-discipline root.
func Root(dst, src []float64, ch chan float64) (float64, error) {
	if len(src) == 0 {
		return 0, errors.New("hotpathfix: empty input") // cold exit path: not flagged
	}
	buf := make([]float64, len(src)) // want hotpath
	copy(buf, src)
	tmp := grow(len(src))  // want hotpath
	w := []float64{1, 0.5} // want hotpath
	var acc []float64
	for i := range src {
		acc = append(acc, src[i]*w[i%2]) // want hotpath
	}
	dst = append(dst, 1) // parameter target: preallocation unknown, not flagged
	total := sum(buf) + sum(tmp) + sum(acc) + sum(dst)
	total += pointerSum(src) + float64(stamp(len(src))) + float64(tag(nil))
	if err := checked(len(src)); err != nil { // cold-exit allocator: not a constructor, call not charged
		return 0, err
	}
	sink(total)    // want hotpath
	sink(&errSink) // pointer-shaped: stored inline, not flagged
	f := func() float64 { return total } // want hotpath
	total += f()
	errSink = errors.New("hotpathfix: observed") // want hotpath
	name := fmt.Sprintf("total=%g", total)       // want hotpath
	total += float64(len(name))
	//lint:ignore hotpath deliberate amortised growth; steady state reuses scratch
	scratch = make([]float64, len(src))
	copy(scratch, src)
	select {
	case v := <-ch:
		total += v
	case <-time.After(time.Millisecond): // want hotpath
	}
	return total, nil
}

// sum is hot by reachability from Root and allocation-free.
func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// grow is an allocating constructor: the make flowing to its return is
// exempt at the definition, but hot calls to grow are charged.
func grow(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// checked allocates only on its cold error branch, so it is not an
// allocating constructor: hot calls to it stay clean, and the error
// construction itself is cold-exempt.
func checked(n int) error {
	if n > 1<<20 {
		return fmt.Errorf("hotpathfix: %d elements exceed budget", n)
	}
	return nil
}

// pointerSum is hot; its new does not flow to the return value.
func pointerSum(v []float64) float64 {
	p := new(float64) // want hotpath
	for _, x := range v {
		*p += x
	}
	return *p
}

// stamp is hot; the composite literal escapes but is not returned.
func stamp(n int) int {
	st := &state{n: n} // want hotpath
	return st.n
}

// tag is hot; the conversion copies the byte slice.
func tag(b []byte) int {
	s := string(b) // want hotpath
	return len(s)
}

// sink is hot; boxing happens at its call sites, not here.
func sink(v any) { boxSink = v }

type ring struct{ buf []float64 }

// step is the declared method root.
func (r *ring) step(i int) {
	r.buf[i%len(r.buf)] += float64(i)
	r.note(i)
}

// note is hot by reachability from the method root.
func (r *ring) note(i int) {
	errSink = fmt.Errorf("ring step %d", i) // want hotpath
}

// coldPath is not reachable from any declared root: its allocations
// are outside the analyzer's scope.
func coldPath(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}
