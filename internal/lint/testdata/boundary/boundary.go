// Package boundaryfix stands in for an analytical package: the test's
// config classifies this fixture's import path as analytical, hwsim
// and exec as measured, and allowlists the netsim import.
package boundaryfix

import (
	_ "convmeter/internal/graph"  // analytical importing analytical: fine
	_ "convmeter/internal/hwsim"  // want boundary
	_ "convmeter/internal/netsim" // allowlisted by the test config
	//lint:ignore boundary fixture proves suppression works
	_ "convmeter/internal/exec"
)
