// Package unitcheckfix seeds unit-safety violations for the analyzer
// test. The four local quantity types mirror the real ones in
// internal/metrics and are declared as units by fixtureConfig.
package unitcheckfix

// Seconds, FLOPs, Count and Bytes are the fixture's dimensions.
type (
	Seconds float64
	FLOPs   float64
	Count   float64
	Bytes   float64
)

// Launder converts one unit straight into another: same bits, new
// dimension, no transformation — the canonical unit bug.
func Launder(f FLOPs) Seconds {
	return Seconds(f) // want unitcheck
}

// LaunderViaFloat hides the same mistake behind an intermediate basic
// conversion; the analyzer peels it.
func LaunderViaFloat(f FLOPs) Seconds {
	return Seconds(float64(f)) // want unitcheck
}

// Convert is the sanctioned idiom: de-dimension explicitly, apply the
// transformation that changes the quantity, then tag the result.
func Convert(f FLOPs, secPerFLOP float64) Seconds {
	return Seconds(float64(f) * secPerFLOP)
}

// Square multiplies two durations: the result is seconds², not seconds.
func Square(a, b Seconds) Seconds {
	return a * b // want unitcheck
}

// ScaleByConst is fine: literals are dimensionless scale factors.
func ScaleByConst(a Seconds) Seconds {
	return a * 2
}

// Ratio divides two byte counts; the ratio is dimensionless but stays
// typed Bytes.
func Ratio(a, b Bytes) Bytes {
	return a / b // want unitcheck
}

// RatioExplicit computes the same ratio the sanctioned way.
func RatioExplicit(a, b Bytes) float64 {
	return float64(a) / float64(b)
}

// CompoundScale squares a count in place through a compound assignment.
func CompoundScale(c, d Count) Count {
	c *= d // want unitcheck
	return c
}

// Sum of same-unit values is dimension-preserving and legal.
func Sum(a, b Seconds) Seconds {
	return a + b
}

// DeDimension drops to float64 for an external API: always allowed.
func DeDimension(s Seconds) float64 {
	return float64(s)
}

// Excused shows the suppression escape hatch.
func Excused(f FLOPs) Count {
	//lint:ignore unitcheck fixture: one FLOP per element in this synthetic kernel
	return Count(f)
}
