// Package goleakfix seeds goleak violations for the analyzer test.
package goleakfix

import "sync"

func spawn(done chan struct{}) {
	go func() { // want goleak
		_ = 1 + 1
	}()

	go func() { // joined: channel send
		done <- struct{}{}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // joined: deferred WaitGroup.Done
		defer wg.Done()
	}()
	wg.Wait()

	ch := make(chan int)
	go func() { // joined: close signals completion
		close(ch)
	}()
	<-ch

	go named() // named functions document their own lifecycle: not flagged

	//lint:ignore goleak fixture proves suppression works
	go func() {}()
}

func named() {}
