// Package determinismfix seeds determinism violations for the analyzer
// test. The fixture is classified deterministic by fixtureConfig, so
// nondeterminism sources reachable from its exported surface must be
// reported and sources in dead code must stay silent.
package determinismfix

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Emit ranges a map on an exported path without sorting: the classic
// nondeterministic-serialization bug.
func Emit(counts map[string]int) []string {
	var out []string
	for k := range counts { // want determinism
		out = append(out, k)
	}
	return out
}

// EmitSorted uses the collect-keys-then-sort idiom: accepted.
func EmitSorted(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// helper is unexported but reachable from exported Stamp below.
func helper() int64 {
	return time.Now().UnixNano() // want determinism
}

// Stamp reaches helper's wall-clock read.
func Stamp() int64 { return helper() }

// Roll uses the shared math/rand global source.
func Roll() int {
	return rand.Intn(6) // want determinism
}

// RollSeeded draws from an explicitly seeded local source: accepted.
func RollSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Gather appends to a captured slice from goroutines: element order
// depends on the scheduler.
func Gather(inputs []int) []int {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out []int
	)
	for _, v := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, v*v) // want determinism
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// deadMapRange is unreachable from any root: its source must stay
// silent — reporting it would be noise, not a replay bug.
func deadMapRange(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// escaped is unexported but its address escapes through Pick, so its
// source is reachable.
func escaped(m map[int]bool) int {
	n := 0
	for range m { // want determinism
		n++
	}
	return n
}

// Pick hands out escaped as a value without calling it.
func Pick() func(map[int]bool) int { return escaped }

// Excused shows the suppression escape hatch.
func Excused(m map[string]int) int {
	n := 0
	//lint:ignore determinism fixture: order-insensitive aggregation, sum is commutative
	for _, v := range m {
		n += v
	}
	return n
}
