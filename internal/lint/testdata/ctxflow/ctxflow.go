// Package ctxflow seeds the context-discipline analyzer's fixture
// findings: misplaced ctx parameters, stored contexts, root contexts
// below the declared entry points, and context-blind net/http calls —
// plus the exempt idioms (ctxroot entry points, DialContext) and a
// named suppression for the options-struct idiom.
package ctxflow

import (
	"context"
	"net"
	"net/http"
	"time"
)

// --- true positives ---------------------------------------------------

// ctxLast buries the context at the end of the signature.
func ctxLast(addr string, ctx context.Context) error { // want ctxflow
	<-ctx.Done()
	_ = addr
	return nil
}

// worker stores a context: it will outlive the request it belonged to.
type worker struct {
	ctx context.Context // want ctxflow
}

// orphanRoot mints a root context in library code, detaching the work
// from every caller deadline.
func orphanRoot() context.Context {
	return context.Background() // want ctxflow
}

// dialBlind has a context and throws its deadline away at the socket.
func dialBlind(ctx context.Context, addr string) (net.Conn, error) {
	_ = ctx
	return net.Dial("tcp", addr) // want ctxflow
}

// fetchBlind builds a request without the context it already has.
func fetchBlind(ctx context.Context, url string) (*http.Request, error) {
	_ = ctx
	return http.NewRequest("GET", url, nil) // want ctxflow
}

// --- exempt idioms ----------------------------------------------------

// Main is declared `ctxroot` in the fixture config: entry points own
// the right to mint root contexts with their own budgets.
func Main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	work(ctx)
}

// dialAware is the clean shape: ctx first, deadline propagated through
// DialContext all the way into the socket.
func dialAware(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func work(ctx context.Context) {
	<-ctx.Done()
}

// --- suppression ------------------------------------------------------

// options carries a context the sanctioned way: consumed once at call
// start, never outliving the run — the directive records the idiom.
type options struct {
	//lint:ignore ctxflow options struct consumed at run start, does not outlive the request
	Ctx context.Context
}
