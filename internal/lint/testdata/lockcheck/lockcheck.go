// Package lockcheckfix seeds lock-discipline violations for the
// analyzer test. The fixture is in lockcheck scope via fixtureConfig.
package lockcheckfix

import (
	"net"
	"sync"
	"time"
)

// Ring mimics the shape of the real all-reduce transport state.
type Ring struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn net.Conn
	wg   sync.WaitGroup
	last int
}

// SendLocked holds the mutex across a channel send.
func (r *Ring) SendLocked(v int) {
	r.mu.Lock()
	r.ch <- v // want lockcheck
	r.mu.Unlock()
}

// SendAfterUnlock releases first: accepted.
func (r *Ring) SendAfterUnlock(v int) {
	r.mu.Lock()
	r.last = v
	r.mu.Unlock()
	r.ch <- v
}

// SleepDeferred holds a deferred-unlock mutex across time.Sleep: the
// critical section runs to the end of the function.
func (r *Ring) SleepDeferred(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	time.Sleep(d) // want lockcheck
}

// WriteLocked holds the mutex across network I/O.
func (r *Ring) WriteLocked(p []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.conn.Write(p) // want lockcheck
	return err
}

// ReceiveReadLocked holds a read lock across a channel receive.
func (r *Ring) ReceiveReadLocked() int {
	r.rw.RLock()
	v := <-r.ch // want lockcheck
	r.rw.RUnlock()
	return v
}

// SelectLocked blocks in a select with no default while locked.
func (r *Ring) SelectLocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want lockcheck
	case v := <-r.ch:
		r.last = v
	}
}

// SelectDefaultLocked polls without blocking: accepted.
func (r *Ring) SelectDefaultLocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case v := <-r.ch:
		r.last = v
	default:
	}
}

// DrainLocked ranges a channel while holding the lock.
func (r *Ring) DrainLocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for v := range r.ch { // want lockcheck
		r.last = v
	}
}

// WaitLocked holds the mutex across a WaitGroup join.
func (r *Ring) WaitLocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wg.Wait() // want lockcheck
}

// SpawnLocked launches a goroutine inside the critical section; the
// goroutine's send runs without the caller's lock and is accepted.
func (r *Ring) SpawnLocked(v int) {
	r.mu.Lock()
	go func() {
		r.ch <- v
	}()
	r.mu.Unlock()
}

// Excused shows the suppression escape hatch.
func (r *Ring) Excused(v int) {
	r.mu.Lock()
	//lint:ignore lockcheck fixture: buffered handoff channel is never full by construction
	r.ch <- v
	r.mu.Unlock()
}
