// Package synccopyfix seeds synccopy violations for the analyzer test.
package synccopyfix

import "sync"

func byValue(mu sync.Mutex)   {} // want synccopy
func byPointer(mu *sync.Mutex) {}

func returnsWG() sync.WaitGroup { // want synccopy
	var wg sync.WaitGroup
	return wg
}

func inLiteral() {
	f := func(o sync.Once) {} // want synccopy
	f(sync.Once{})
}

// holder embeds a mutex; passing holder by value is a real hazard too,
// but this analyzer deliberately flags only direct sync types — go
// vet's copylocks covers transitive cases.
type holder struct{ mu sync.Mutex }

func (h holder) method() {}

//lint:ignore synccopy fixture proves suppression works
func ignored(m sync.Map) {}
