// Test files are outside floatcmp's jurisdiction: exact comparisons
// are how tests assert bit-identical results. Nothing here may be
// reported even though the fixture loader feeds this file through the
// analyzers.
package floatcmpfix

func inTest(a, b float64) bool {
	return a == b // exempt: *_test.go
}
