// Package floatcmpfix seeds floatcmp violations for the analyzer test.
// Lines carrying a marker comment naming the analyzer must be
// reported; all other lines must stay silent.
package floatcmpfix

type seconds float64

func compare(a, b float64, c float32, s, t seconds) []bool {
	return []bool{
		a == b,          // want floatcmp
		a != b,          // want floatcmp
		float64(c) == a, // want floatcmp
		s == t,          // want floatcmp
		a == 1.0,        // want floatcmp
		a == 0,          // exact-zero guard: exempt
		0.0 != b,        // exact-zero guard: exempt
		len("x") == 1,   // integers: not this analyzer's business
		//lint:ignore floatcmp fixture proves suppression works
		a == 3.14,
	}
}
