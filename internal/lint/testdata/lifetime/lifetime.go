// Package lifetime seeds the lifetime analyzer's fixture findings:
// acquire→release obligations leaked on some path, discarded acquire
// results, WaitGroup accounting hazards — plus the exempt idioms
// (defer, error guards, ownership transfer, releasing helpers) and a
// named suppression.
package lifetime

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// --- true positives ---------------------------------------------------

// leakOnEarlyReturn loses the file on the strict-mode path: the error
// guard is fine, but the second return leaves Close unreachable.
func leakOnEarlyReturn(p string, bad bool) error {
	f, err := os.Create(p) // want lifetime
	if err != nil {
		return err
	}
	if bad {
		return errors.New("bad")
	}
	return f.Close()
}

// discardTicker drops the only handle that could ever stop the ticker.
func discardTicker(d time.Duration) {
	time.NewTicker(d) // want lifetime
}

// blankCancel throws away the cancel func: the derived context can now
// never be released before its parent dies.
func blankCancel(ctx context.Context) context.Context {
	c, _ := context.WithCancel(ctx) // want lifetime
	return c
}

// cancelOnePath calls cancel on the fast path only; the slow path
// leaks the timer the context holds.
func cancelOnePath(ctx context.Context, fast bool) error {
	ctx2, cancel := context.WithCancel(ctx) // want lifetime
	if fast {
		cancel()
		return ctx2.Err()
	}
	return ctx2.Err()
}

// leakViaConstructor leaks a file acquired through a same-package
// constructor: inference gives openLog's callers os.OpenFile's
// obligation.
func leakViaConstructor(dir string, strict bool) error {
	f, err := openLog(dir) // want lifetime
	if err != nil {
		return err
	}
	if strict {
		return errors.New("strict mode rejects logs")
	}
	return f.Close()
}

// leakHandle exercises a config-declared acquire/release pair
// (`acquire …lifetime.newHandle Release` in the fixture config).
func leakHandle(bad bool) error {
	h := newHandle() // want lifetime
	if bad {
		return errors.New("no release on this path")
	}
	h.Release()
	return nil
}

// addInsideGoroutine races Wait: nothing guarantees the Add runs
// before the spawner's Wait returns.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want lifetime
		defer wg.Done()
	}()
	wg.Wait()
}

// doneAfterReturn can skip the Done when the guard trips, hanging the
// spawner's Wait forever.
func doneAfterReturn(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if !ok {
			return
		}
		wg.Done() // want lifetime
	}()
	wg.Wait()
}

// --- exempt idioms ----------------------------------------------------

// deferClose is the canonical clean shape: the deferred release covers
// every path, including the error returns below it.
func deferClose(p string) ([]byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// errGuard releases on the success path; on the error path the
// connection was never established, so there is nothing to close.
func errGuard(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// openLog transfers ownership by returning: the caller owes the Close
// (and inference marks this function a constructor).
func openLog(dir string) (*os.File, error) {
	return os.OpenFile(dir+"/log", os.O_CREATE, 0o644)
}

// newServer escapes the listener into the struct it returns: the
// lifecycle belongs to the server's own Close contract now.
type server struct{ ln net.Listener }

func newServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &server{ln: ln}, nil
}

// register only borrows its argument, but the fixture config declares
// it a `transfer` sink: handOff's obligation moves with the call.
func register(c net.Conn) {
	_ = c.RemoteAddr()
}

func handOff(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	register(c)
	return nil
}

// closeQuietly releases its parameter, so helperRelease's obligation is
// discharged interprocedurally — no transfer stanza needed.
func closeQuietly(f *os.File) {
	_ = f.Close()
}

func helperRelease(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	closeQuietly(f)
	return nil
}

// --- suppression ------------------------------------------------------

// tickForever leaks by design; the named directive records why.
func tickForever(d time.Duration) {
	//lint:ignore lifetime ticker deliberately runs for the process lifetime
	time.NewTicker(d)
}

// handle is the resource behind the config-declared acquire pair.
type handle struct{ closed bool }

func (h *handle) Release() { h.closed = true }

func newHandle() *handle { return &handle{} }

// --- select exhaustiveness --------------------------------------------

// backoffWait releases the timer in every select clause. A select runs
// exactly one clause, so the clause set is exhaustive and the
// obligation is discharged on every path — no finding. (exempt)
func backoffWait(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	case <-t.C:
		t.Stop()
	}
	return nil
}

// lopsidedWait stops the timer on the cancellation arm only; the
// fall-through arm leaks it.
func lopsidedWait(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d) // want lifetime
	select {
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	case <-t.C:
	}
	return nil
}
