// Package hotdeferfix seeds defer/closure-discipline violations for
// the hotdefer analyzer test. fixtureConfig declares Root as a
// hot-path root: defers inside loops and per-iteration capturing
// closures on paths reachable from it must be reported, while defers
// outside loops and named calls in loops stay silent.
package hotdeferfix

import "sync"

var mu sync.Mutex

// Root is the declared hot-path root.
func Root(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		defer mu.Unlock() // want hotdefer
		mu.Lock()
		total += v
		mu.Unlock()
	}
	for i := range vals {
		f := func() float64 { return vals[i] * total } // want hotdefer
		total += f()
	}
	for _, v := range vals {
		total += scale(v) // named call in a loop: fine
	}
	for _, v := range vals {
		//lint:ignore hotdefer cleanup must run at function exit even on panic
		defer release(v)
	}
	defer mu.Unlock() // defer outside a loop: open-coded, not flagged
	mu.Lock()
	return total
}

// scale is hot by reachability and allocation-free.
func scale(v float64) float64 { return v * 2 }

// release is reached through the deferred call.
func release(float64) {}
