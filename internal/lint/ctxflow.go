package lint

import (
	"go/ast"
	"go/types"
)

// NewCtxflow constructs the context-discipline analyzer for packages
// declared `ctxflow` in lint.config. The measured stack is about to
// become a long-running daemon (ROADMAP item 1), and a daemon's
// cancellation story is only as good as its context plumbing. Four
// rules:
//
//  1. A context.Context parameter must come first. Context-last (or
//     context-in-the-middle) signatures break the call-site convention
//     every Go reader relies on and tend to indicate a context bolted
//     on after the fact.
//
//  2. No context.Context struct fields. A stored context outlives the
//     request it belonged to; pass it per call instead. The one
//     sanctioned exception — an options struct handed to a constructor —
//     gets a named `//lint:ignore ctxflow <reason>` directive.
//
//  3. No context.Background() or context.TODO() below the entry-point
//     roots declared by `ctxroot` stanzas in lint.config. Minting a
//     root context deep in library code detaches the work from the
//     caller's deadline and cancellation; only declared entry points
//     (main wiring, shutdown paths with their own budgets) may do it.
//     The `-why` chain names the function that should have threaded a
//     caller context through.
//
//  4. Deadline propagation into net ops: a function that receives a
//     context must not call the context-blind net.Dial/net.DialTimeout
//     or http.Get/Post/Head/PostForm/NewRequest — the ctx-aware
//     spellings (net.Dialer.DialContext, http.NewRequestWithContext)
//     exist precisely so the caller's deadline reaches the socket.
func NewCtxflow(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "context discipline: ctx-first params, no stored contexts, no root contexts below declared entry points, deadlines propagated into net ops",
		Run: func(pass *Pass) {
			if pass.Pkg.TypesInfo == nil || !cfg.ctxflowScope(pass.Pkg.ImportPath) {
				return
			}
			roots := cfg.ctxrootSet()
			for _, file := range pass.Pkg.Files {
				if isTestFile(pass.Pkg.Fset, file.Pos()) {
					continue
				}
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.GenDecl:
						checkCtxFields(pass, d)
					case *ast.FuncDecl:
						checkCtxFunc(pass, cfg, roots, d)
					}
				}
			}
		},
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// checkCtxFields flags struct fields of type context.Context (rule 2).
func checkCtxFields(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if isContextType(pass.TypeOf(field.Type)) {
				pass.Reportf("ctxflow", field.Pos(),
					"struct %s stores a context.Context; a stored context outlives its request — pass it as the first parameter of each method instead",
					ts.Name.Name)
			}
		}
	}
}

// checkCtxFunc applies rules 1, 3 and 4 to one declaration.
func checkCtxFunc(pass *Pass, cfg *Config, roots map[string]bool, fd *ast.FuncDecl) {
	hasCtx := false
	if fd.Type.Params != nil {
		pos := 0
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextType(pass.TypeOf(field.Type)) {
				hasCtx = true
				if pos > 0 {
					pass.Reportf("ctxflow", field.Pos(),
						"context.Context is parameter %d of %s; the context goes first by convention",
						pos+1, localFuncName(fd))
				}
			}
			pos += n
		}
	}
	if fd.Body == nil {
		return
	}
	qname := pass.Pkg.ImportPath + "." + localFuncName(fd)
	isRoot := roots[qname]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Pkg.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		switch f.Pkg().Path() {
		case "context":
			if (f.Name() == "Background" || f.Name() == "TODO") && !isRoot {
				pass.ReportWhyf("ctxflow", call.Pos(),
					qname+" is not declared a ctxroot entry point in lint.config",
					"context.%s below an entry point detaches this work from the caller's deadline and cancellation; accept a ctx parameter, or declare `ctxroot %s` with justification",
					f.Name(), qname)
			}
		case "net":
			if hasCtx && (f.Name() == "Dial" || f.Name() == "DialTimeout") {
				pass.Reportf("ctxflow", call.Pos(),
					"net.%s ignores the context this function already has; use net.Dialer.DialContext so the caller's deadline reaches the socket",
					f.Name())
			}
		case "net/http":
			if !hasCtx {
				return true
			}
			switch f.Name() {
			case "Get", "Post", "PostForm", "Head":
				pass.Reportf("ctxflow", call.Pos(),
					"http.%s ignores the context this function already has; build the request with http.NewRequestWithContext",
					f.Name())
			case "NewRequest":
				pass.Reportf("ctxflow", call.Pos(),
					"http.NewRequest ignores the context this function already has; use http.NewRequestWithContext")
			}
		}
		return true
	})
}
