package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands outside
// test files. Exact float equality is almost always a latent bug in
// this codebase's hot paths — LOMO fitting, metric aggregation,
// simulator cost models — where values are the result of arithmetic
// and two mathematically equal expressions need not be bit-equal.
//
// One comparison is exempt: against an exact zero constant. Zero is
// representable exactly, and `x == 0` guards (division, empty-input
// checks) are deliberate and well-defined. Every other constant —
// 1.0, sentinels like -1 — is still flagged; use an explicit epsilon
// or a //lint:ignore with a reason.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on float operands outside *_test.go (exact-zero guards exempt)",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			if isTestFile(pass.Pkg.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
					return true
				}
				if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
					return true
				}
				pass.Reportf("floatcmp", be.OpPos,
					"floating-point %s comparison; use an epsilon (math.Abs(a-b) < eps) or compare against exact zero", be.Op)
				return true
			})
		}
	},
}

// isFloat reports whether a type's underlying kind is float32/float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether the expression is a compile-time
// constant exactly equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	if pass.Pkg.TypesInfo == nil {
		return false
	}
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
