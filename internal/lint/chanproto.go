package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewChanproto constructs the channel-protocol analyzer for packages
// declared `chanproto` in lint.config. It reasons about the channel
// operations of one function *set* — the function body plus every
// goroutine it launches — because that is the unit inside which Go's
// channel-closing contract ("the sender closes, nobody else") can be
// checked statically. Four rules:
//
//	A. close-by-sender-only: a region (the main body or one launched
//	   goroutine) that closes a local channel it never sends on, while
//	   a sibling region does send, is closing from the receiver side —
//	   the classic recipe for "send on closed channel" panics. A region
//	   that joins the senders first (a Wait() call before the close) is
//	   exempt: that is the coordinator-close idiom.
//
//	B. send-after-close: a send lexically below a close of the same
//	   channel in the same region panics on every execution that
//	   reaches it.
//
//	C. unbounded channels where boundedness is the contract: an
//	   unbuffered `make(chan T)` inside a loop, or anywhere in a
//	   function reachable from the `hotpath` roots declared in
//	   lint.config, introduces a synchronous handoff (and an
//	   allocation) on a path the paper's measurements assume is
//	   allocation-free and non-blocking. The `-why` chain shows the
//	   call path from the declared root.
//
//	D. unterminable goroutine loops: `go func() { for { select {…} } }`
//	   (directly, or one call deep into a same-package function — the
//	   gap v1's syntactic goleak deliberately left) where no select
//	   case returns is a goroutine that outlives its spawner with no
//	   cancellation path. Every such loop needs a `<-ctx.Done()` or
//	   done-channel case that returns.
//
// Channels reached through struct fields are out of scope (their
// protocol spans functions and is the lockcheck/goleak analyzers'
// territory); only channels held in locals and parameters are tracked.
func NewChanproto(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "chanproto",
		Doc:  "channel protocol safety: close-by-sender-only, no send-after-close, no unbounded channels in loops or hot paths, no unterminable goroutine select-loops",
		Run: func(pass *Pass) {
			if pass.Pkg.TypesInfo == nil || !cfg.chanprotoScope(pass.Pkg.ImportPath) {
				return
			}
			hot := hotReach(pass, cfg)
			for _, file := range pass.Pkg.Files {
				if isTestFile(pass.Pkg.Fset, file.Pos()) {
					continue
				}
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkChanFunc(pass, fd, hot)
				}
			}
		},
	}
}

// chanOp is one channel operation attributed to a region.
type chanOp struct {
	kind   string // "send", "recv", "close"
	region int
	pos    token.Pos
}

// chanRegions collects per-channel-object operations across the
// function set: region 0 is the main body, each launched goroutine
// literal gets its own region. Closures not launched via `go` run on
// the caller's goroutine and stay in the enclosing region.
type chanRegions struct {
	pass    *Pass
	ops     map[types.Object][]chanOp
	waits   map[int][]token.Pos // positions of Wait() calls per region
	regions int
}

// checkChanFunc runs all four rules on one declaration.
func checkChanFunc(pass *Pass, fd *ast.FuncDecl, hot map[*types.Func]string) {
	cr := &chanRegions{pass: pass, ops: map[types.Object][]chanOp{}, waits: map[int][]token.Pos{}}
	cr.collect(fd.Body, 0, false)
	cr.reportCloseRules()

	info := pass.Pkg.TypesInfo

	// Rule C: unbuffered make(chan T) in loops or hot-reachable code.
	var chain string
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		chain = hot[obj]
	}
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch x := c.(type) {
			case *ast.ForStmt:
				inLoop(x.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(x.Body, depth+1)
				return false
			case *ast.CallExpr:
				if isUnbufferedMakeChan(info, x) {
					switch {
					case depth > 0:
						pass.Reportf("chanproto", x.Pos(),
							"unbuffered make(chan) inside a loop: every iteration allocates and every send blocks until a receiver arrives; hoist it or give it capacity")
					case chain != "":
						pass.ReportWhyf("chanproto", x.Pos(), chain,
							"unbuffered make(chan) on a hot path: the synchronous handoff blocks the measured kernel; give it capacity or move it off the hot path")
					}
				}
			}
			return true
		})
	}
	inLoop(fd.Body, 0)

	// Rule D: unterminable select-loops in launched goroutines, looking
	// one call deep into same-package named functions — the gap goleak's
	// named-function exemption leaves open.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := gs.Call.Fun.(type) {
		case *ast.FuncLit:
			if pos, ok := unterminableSelectLoop(fun.Body); ok {
				pass.Reportf("chanproto", pos,
					"select loop in a spawned goroutine has no terminating case; add a <-ctx.Done() or done-channel case that returns, or the goroutine outlives its spawner")
			}
		case *ast.Ident, *ast.SelectorExpr:
			callee := calleeFunc(info, gs.Call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pass.Pkg.ImportPath {
				return true
			}
			if body := funcBody(pass, callee); body != nil {
				if pos, ok := unterminableSelectLoop(body); ok {
					line := pass.Pkg.Fset.Position(gs.Pos()).Line
					pass.ReportWhyf("chanproto", pos,
						fmtGoChain(line, callee.Name()),
						"select loop has no terminating case and runs on a goroutine spawned at line %d; add a <-ctx.Done() or done-channel case that returns",
						line)
				}
			}
		}
		return true
	})
}

func fmtGoChain(line int, name string) string {
	return "go statement at line " + itoa(line) + " → " + name
}

// itoa avoids pulling strconv into the hot import set for one call.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// collect walks a body attributing channel ops to regions.
func (cr *chanRegions) collect(n ast.Node, region int, skipGo bool) {
	info := cr.pass.Pkg.TypesInfo
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				cr.regions++
				cr.collect(lit.Body, cr.regions, false)
				for _, arg := range x.Call.Args {
					cr.collect(arg, region, false)
				}
				return false
			}
		case *ast.SendStmt:
			if obj := cr.chanObj(x.Chan); obj != nil {
				cr.ops[obj] = append(cr.ops[obj], chanOp{"send", region, x.Pos()})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if obj := cr.chanObj(x.X); obj != nil {
					cr.ops[obj] = append(cr.ops[obj], chanOp{"recv", region, x.Pos()})
				}
			}
		case *ast.RangeStmt:
			if obj := cr.chanObj(x.X); obj != nil {
				cr.ops[obj] = append(cr.ops[obj], chanOp{"recv", region, x.Pos()})
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) == 1 {
					if obj := cr.chanObj(x.Args[0]); obj != nil {
						cr.ops[obj] = append(cr.ops[obj], chanOp{"close", region, x.Pos()})
					}
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				cr.waits[region] = append(cr.waits[region], x.Pos())
			}
		}
		return true
	})
}

// chanObj resolves a channel expression to a local identifier's object;
// nil for fields, globals and anything else out of scope.
func (cr *chanRegions) chanObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := cr.pass.Pkg.TypesInfo.Uses[id]
	if obj == nil {
		obj = cr.pass.Pkg.TypesInfo.Defs[id]
	}
	if obj == nil || obj.Parent() == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	// Package-scope channels span function sets; skip them.
	if obj.Parent() == cr.pass.Pkg.TypesPkg.Scope() {
		return nil
	}
	return obj
}

// reportCloseRules applies rules A and B to the collected ops.
func (cr *chanRegions) reportCloseRules() {
	for _, ops := range cr.ops {
		sendsIn := map[int]bool{}
		for _, op := range ops {
			if op.kind == "send" {
				sendsIn[op.region] = true
			}
		}
		for _, op := range ops {
			if op.kind != "close" {
				continue
			}
			// Rule B: a send in the same region lexically after the close.
			for _, other := range ops {
				if other.kind == "send" && other.region == op.region && other.pos > op.pos {
					cr.pass.Reportf("chanproto", other.pos,
						"send on a channel closed at line %d; this panics on every execution that reaches it",
						cr.pass.Pkg.Fset.Position(op.pos).Line)
				}
			}
			// Rule A: closing a channel this region never sends on while
			// another region does, without joining the senders first.
			if sendsIn[op.region] {
				continue
			}
			otherSends := false
			for r := range sendsIn {
				if r != op.region {
					otherSends = true
				}
			}
			if !otherSends {
				continue
			}
			joined := false
			for _, wp := range cr.waits[op.region] {
				if wp < op.pos {
					joined = true
				}
			}
			if joined {
				continue
			}
			cr.pass.Reportf("chanproto", op.pos,
				"close on a channel this goroutine only receives from while another goroutine sends; close from the sender side, or join the senders (Wait) before closing")
		}
	}
}

// unterminableSelectLoop finds a `for { select {…} }` with no case that
// returns, reporting the for-statement's position.
func unterminableSelectLoop(body *ast.BlockStmt) (token.Pos, bool) {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil || fs.Init != nil || fs.Post != nil {
			return true
		}
		var sel *ast.SelectStmt
		for _, s := range fs.Body.List {
			if ss, ok := s.(*ast.SelectStmt); ok {
				sel = ss
			}
		}
		if sel == nil {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			terminates := false
			for _, s := range cc.Body {
				ast.Inspect(s, func(b ast.Node) bool {
					switch br := b.(type) {
					case *ast.ReturnStmt:
						terminates = true
					case *ast.BranchStmt:
						// A labeled break/goto escapes the loop; a bare
						// break only leaves the select.
						if br.Label != nil {
							terminates = true
						}
					case *ast.FuncLit:
						return false
					}
					return true
				})
			}
			if terminates {
				return true // exempt: some case exits the loop
			}
		}
		found = fs.Pos()
		return false
	})
	return found, found != token.NoPos
}

// funcBody returns the body of a same-package function's declaration.
func funcBody(pass *Pass, f *types.Func) *ast.BlockStmt {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Pkg.TypesInfo.Defs[fd.Name] == f {
				return fd.Body
			}
		}
	}
	return nil
}

// isUnbufferedMakeChan matches `make(chan T)` with no capacity argument.
func isUnbufferedMakeChan(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) != 1 {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	t := info.TypeOf(call.Args[0])
	_, isChan := t.(*types.Chan)
	return isChan
}

// hotReach computes, for every function reachable from the lint.config
// hotpath roots of this package, the call chain from its root — the
// same reachability hotpath itself uses, rebuilt here so rule C can
// attach a -why chain without coupling the two analyzers' reporting.
func hotReach(pass *Pass, cfg *Config) map[*types.Func]string {
	roots := cfg.hotpathRoots(pass.Pkg.ImportPath)
	if len(roots) == 0 {
		return nil
	}
	g := buildHotGraph(pass)
	chains := map[*types.Func]string{}
	var queue []*types.Func
	for _, r := range roots {
		if fn, ok := g.byName[r]; ok {
			chains[fn] = "declared root " + r
			queue = append(queue, fn)
		}
		// Unknown roots are hotpath's finding to make, not ours.
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi := g.funcs[fn]
		if fi == nil {
			continue
		}
		for _, callee := range fi.calls {
			if _, seen := chains[callee]; seen {
				continue
			}
			ci := g.funcs[callee]
			if ci == nil {
				continue
			}
			chains[callee] = chains[fn] + " → " + ci.localName
			queue = append(queue, callee)
		}
	}
	return chains
}
