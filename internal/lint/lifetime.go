package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewLifetime constructs the resource-lifetime analyzer: a path-aware
// abstract interpretation of acquire→release obligations in packages
// declared `lifetime` in lint.config. Every resource acquired on some
// path — a dialled connection, an opened file, a started ticker, a
// context cancel func — must, on every path out of the function, be
// released, deferred, or have its ownership visibly transferred
// (returned to the caller, stored in a struct, handed to a goroutine,
// or passed to a `transfer`-declared sink). A return statement reachable
// with a live, unreleased obligation is the leak the daemonised
// measured stack cannot afford.
//
// The interpretation is branch-cloned: if/else, switch and select each
// walk a copy of the abstract state, and a path that releases before
// returning is clean even when a sibling path releases elsewhere. Two
// idioms get first-class treatment:
//
//   - the error guard: `c, err := net.Dial(…); if err != nil { return err }`
//     is not a leak — on the error path the resource was never acquired;
//   - a cold exit (panic, os.Exit, log.Fatal) discharges everything: the
//     process is dying and the kernel reaps its descriptors.
//
// It is also interprocedural, two ways. Same-package constructor
// returns propagate: a function that returns a freshly acquired
// resource transfers the obligation to its call sites, which are then
// tracked with the same release method (the `-why` chain names the
// constructor). And passing a tracked resource to a same-package
// function consults that callee's body: a callee that releases the
// parameter discharges the obligation, one that stores or forwards it
// takes ownership, and one that merely uses it borrows — the caller
// still owes the release. Cross-package calls (other than configured
// `transfer` sinks) conservatively take ownership.
//
// Custom acquire→release pairs come from `acquire` stanzas in
// lint.config; the built-in set covers net dials/listens/accepts,
// os file opens, time.NewTicker/NewTimer, and the cancel funcs of
// context.WithCancel/WithTimeout/WithDeadline.
//
// Separately, the analyzer checks sync.WaitGroup accounting around
// goroutine launches: an Add inside the goroutine it accounts for races
// Wait, and a non-deferred Done below a conditional return can be
// skipped. Both are reported under this analyzer's name.
func NewLifetime(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "lifetime",
		Doc:  "track acquire→release obligations (conns, files, tickers, cancel funcs, WaitGroups) through branches, error paths, defers and ownership transfers",
		Run: func(pass *Pass) {
			if pass.Pkg.TypesInfo == nil || !cfg.lifetimeScope(pass.Pkg.ImportPath) {
				return
			}
			w := newLifeWalker(pass, cfg)
			w.inferConstructors()
			for _, fd := range w.declOrder {
				w.checkFunc(fd)
			}
		},
	}
}

// acquireSpec describes one recognised acquire function.
type acquireSpec struct {
	release string // method owed by the result; "" means the result is itself the release func
	what    string // human description of the resource
	result  int    // index of the obligated result in the call's result tuple
	via     string // constructor chain for -why, "" for direct acquires
}

// builtinAcquires is the always-on acquire set; lint.config `acquire`
// stanzas and inferred same-package constructors extend it.
func builtinAcquires() map[string]acquireSpec {
	m := map[string]acquireSpec{}
	add := func(spec acquireSpec, names ...string) {
		for _, n := range names {
			m[n] = spec
		}
	}
	add(acquireSpec{release: "Close", what: "network connection"},
		"net.Dial", "net.DialTimeout", "net.DialTCP", "net.DialUDP", "net.DialIP", "net.DialUnix",
		"net.Dialer.Dial", "net.Dialer.DialContext",
		"net.Listener.Accept", "net.TCPListener.Accept", "net.TCPListener.AcceptTCP",
		"crypto/tls.Dial")
	add(acquireSpec{release: "Close", what: "listener"},
		"net.Listen", "net.ListenTCP", "net.ListenUDP", "net.ListenPacket", "net.ListenConfig.Listen")
	add(acquireSpec{release: "Close", what: "file"},
		"os.Open", "os.Create", "os.OpenFile", "os.CreateTemp")
	add(acquireSpec{release: "Stop", what: "ticker"}, "time.NewTicker")
	add(acquireSpec{release: "Stop", what: "timer"}, "time.NewTimer")
	add(acquireSpec{what: "context cancel func", result: 1},
		"context.WithCancel", "context.WithTimeout", "context.WithDeadline", "context.WithCancelCause",
		"os/signal.NotifyContext")
	return m
}

// qualifiedFuncName renders a *types.Func as its lint.config-addressable
// qualified name: "import/path.Func" or "import/path.Recv.Method"
// (pointer receivers spelled the same as value receivers). "" for
// builtins and functions without a package.
func qualifiedFuncName(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	name := f.Pkg().Path() + "."
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name += named.Obj().Name() + "."
		}
	}
	return name + f.Name()
}

// resource is one live obligation: a value that must be released before
// the function gives it up.
type resource struct {
	aliases  map[types.Object]bool // every local identifier bound to the resource
	spec     acquireSpec
	acquired string // rendering of the acquire call for messages
	pos      token.Pos
	errObj   types.Object // error result paired with the acquire; nil if none
	reported bool         // one finding per acquire site, not per leaking path
}

// releaseName renders what discharging the obligation looks like.
func (r *resource) releaseName() string {
	if r.spec.release == "" {
		return "calling it"
	}
	return r.spec.release
}

// lifeState is the abstract state of one control-flow path: the set of
// still-pending obligations. Branches clone it; merges union it (a
// resource pending on any surviving path is pending after the merge).
type lifeState struct {
	pending    map[*resource]bool
	terminated bool
}

func newLifeState() *lifeState {
	return &lifeState{pending: map[*resource]bool{}}
}

func (s *lifeState) clone() *lifeState {
	c := &lifeState{pending: make(map[*resource]bool, len(s.pending)), terminated: s.terminated}
	for r := range s.pending {
		c.pending[r] = true
	}
	return c
}

// find returns the pending resource aliased by obj, or nil.
func (s *lifeState) find(obj types.Object) *resource {
	if obj == nil {
		return nil
	}
	for r := range s.pending {
		if r.aliases[obj] {
			return r
		}
	}
	return nil
}

// dropErrPaired removes obligations paired with the given error object:
// on a path where that error is known non-nil, the acquire failed and
// there is nothing to release.
func (s *lifeState) dropErrPaired(errObj types.Object) {
	if errObj == nil {
		return
	}
	for r := range s.pending {
		if r.errObj == errObj {
			delete(s.pending, r)
		}
	}
}

// paramUse summarises how a same-package callee treats one parameter.
type paramUse struct {
	escapes bool            // stored, returned, forwarded cross-package, captured — callee takes ownership
	called  map[string]bool // method names the callee invokes on the parameter
}

// lifeWalker holds the per-package machinery shared by every function
// walk: the acquire set (builtin + configured + inferred constructors),
// transfer sinks, declaration index and the callee-disposition cache.
type lifeWalker struct {
	pass      *Pass
	acquires  map[string]acquireSpec
	transfer  map[string]bool
	decls     map[*types.Func]*ast.FuncDecl
	declOrder []*ast.FuncDecl
	dispos    map[string]paramUse // keyed by qualifiedName + "\x00" + paramIndex
	infer     bool                // constructor-inference mode: collect return escapes, report nothing
	retSpec   *acquireSpec        // set in infer mode when an owned resource escapes via return
}

func newLifeWalker(pass *Pass, cfg *Config) *lifeWalker {
	w := &lifeWalker{
		pass:     pass,
		acquires: builtinAcquires(),
		transfer: cfg.transferSet(),
		decls:    map[*types.Func]*ast.FuncDecl{},
		dispos:   map[string]paramUse{},
	}
	for q, release := range cfg.acquireSet() {
		w.acquires[q] = acquireSpec{release: release, what: "resource from " + q}
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				w.decls[obj] = fd
				w.declOrder = append(w.declOrder, fd)
			}
		}
	}
	return w
}

// inferConstructors runs the walk in inference mode to a fixpoint: a
// function that returns a freshly acquired resource becomes an acquire
// site itself, so its same-package callers inherit the obligation.
func (w *lifeWalker) inferConstructors() {
	w.infer = true
	for round := 0; round < 4; round++ {
		added := false
		for _, fd := range w.declOrder {
			q := w.pass.Pkg.ImportPath + "." + localFuncName(fd)
			if _, ok := w.acquires[q]; ok {
				continue
			}
			w.retSpec = nil
			st := newLifeState()
			w.walkStmts(fd.Body.List, st)
			if w.retSpec != nil {
				spec := *w.retSpec
				spec.result = 0
				if spec.via == "" {
					spec.via = localFuncName(fd)
				} else {
					spec.via = localFuncName(fd) + " → " + spec.via
				}
				w.acquires[q] = spec
				added = true
			}
		}
		if !added {
			break
		}
	}
	w.infer = false
	w.retSpec = nil
}

// checkFunc reports the leaks of one function: the main body as one
// path walk, each launched goroutine body as its own (a goroutine is
// its own control-flow universe with its own exits), plus the
// WaitGroup accounting checks.
func (w *lifeWalker) checkFunc(fd *ast.FuncDecl) {
	st := newLifeState()
	w.walkStmts(fd.Body.List, st)
	if !st.terminated {
		w.reportPending(st, fd.Body.End())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				gst := newLifeState()
				w.walkStmts(lit.Body.List, gst)
				if !gst.terminated {
					w.reportPending(gst, lit.Body.End())
				}
			}
		}
		return true
	})
	w.checkWaitGroups(fd)
}

// reportPending emits one finding per leaked acquire site on the path
// ending at end.
func (w *lifeWalker) reportPending(st *lifeState, end token.Pos) {
	for r := range st.pending {
		if r.reported {
			continue
		}
		r.reported = true
		line := w.pass.Pkg.Fset.Position(end).Line
		why := fmt.Sprintf("acquired by %s; the exit at line %d is reached with the obligation still pending", r.acquired, line)
		if r.spec.via != "" {
			why = "via constructor " + r.spec.via + "; " + why
		}
		w.pass.ReportWhyf("lifetime", r.pos, why,
			"%s from %s is not released on every path: the exit at line %d is reachable without %s; release it, defer the release, or transfer ownership",
			r.spec.what, r.acquired, line, r.releaseName())
	}
}

func (w *lifeWalker) walkStmts(list []ast.Stmt, st *lifeState) {
	for _, s := range list {
		if st.terminated {
			return
		}
		w.walkStmt(s, st)
	}
}

func (w *lifeWalker) walkStmt(s ast.Stmt, st *lifeState) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(x.List, st)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if w.isExitCall(call) {
				// Cold exit: the process dies here, the kernel releases
				// everything. Panics unwind through defers, which were
				// already credited.
				st.pending = map[*resource]bool{}
				st.terminated = true
				return
			}
			if spec, name, ok := w.acquireCall(call); ok && spec.release != "" {
				if !w.infer {
					w.pass.Reportf("lifetime", call.Pos(),
						"result of %s is discarded; the %s it returns owes a %s that can now never happen",
						name, spec.what, spec.release)
				}
				return
			}
		}
		w.scanUses(x.X, st)
	case *ast.AssignStmt:
		w.walkAssign(x, st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					w.walkValueSpec(vs, st)
				}
			}
		}
	case *ast.DeferStmt:
		w.walkDefer(x, st)
	case *ast.GoStmt:
		// The goroutine takes ownership of everything it can see; its own
		// body is walked as a separate path universe by checkFunc.
		w.untrackIn(x.Call, st)
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			w.returnExpr(res, st)
		}
		if w.infer {
			st.terminated = true
			return
		}
		w.reportPending(st, x.Pos())
		st.terminated = true
	case *ast.IfStmt:
		w.walkIf(x, st)
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			w.scanUses(x.Cond, st)
		}
		body := st.clone()
		body.terminated = false
		w.walkStmts(x.Body.List, body)
		if x.Post != nil && !body.terminated {
			w.walkStmt(x.Post, body)
		}
		for r := range body.pending {
			st.pending[r] = true
		}
		if x.Cond == nil && body.terminated {
			// `for { … }` whose body always exits the function.
			st.terminated = true
		}
	case *ast.RangeStmt:
		w.scanUses(x.X, st)
		body := st.clone()
		body.terminated = false
		w.walkStmts(x.Body.List, body)
		for r := range body.pending {
			st.pending[r] = true
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			w.scanUses(x.Tag, st)
		}
		w.walkCases(x.Body, st, hasDefaultClause(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		w.walkCases(x.Body, st, hasDefaultClause(x.Body))
	case *ast.SelectStmt:
		// A select always executes exactly one clause (it blocks until one
		// is ready), so the clause set is exhaustive even without default.
		w.walkCases(x.Body, st, true)
	case *ast.SendStmt:
		w.scanUses(x.Chan, st)
		w.scanUses(x.Value, st)
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, st)
	case *ast.BranchStmt:
		if x.Tok == token.BREAK || x.Tok == token.CONTINUE || x.Tok == token.GOTO {
			st.terminated = true
		}
	}
}

// walkCases clones the state per case clause and unions the survivors —
// a resource pending on any path through the switch/select stays
// pending after it. When the clause set is exhaustive (any select, or a
// switch with a default clause) control cannot skip past every clause,
// so the pre-state is NOT part of the union: a resource released in
// every clause is released, full stop. Non-exhaustive switches keep the
// pre-state because no case may match.
func (w *lifeWalker) walkCases(body *ast.BlockStmt, st *lifeState, exhaustive bool) {
	merged := map[*resource]bool{}
	if !exhaustive || len(body.List) == 0 {
		for r := range st.pending {
			merged[r] = true
		}
	}
	allTerminated := len(body.List) > 0
	for _, c := range body.List {
		cs := st.clone()
		cs.terminated = false
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.scanUses(e, cs)
			}
			w.walkStmts(cc.Body, cs)
		case *ast.CommClause:
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, cs)
			}
			w.walkStmts(cc.Body, cs)
		}
		if !cs.terminated {
			allTerminated = false
		}
		for r := range cs.pending {
			merged[r] = true
		}
	}
	st.pending = merged
	if exhaustive && allTerminated {
		// Every clause returns/exits: nothing after the statement runs.
		st.terminated = true
	}
}

// hasDefaultClause reports whether a switch body contains a default
// case (a CaseClause with a nil expression list).
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkIf is where the path sensitivity lives: each branch walks a clone
// of the state, the error-guard idiom prunes failed acquires, and the
// merge unions the pendings of the branches that fall through.
func (w *lifeWalker) walkIf(x *ast.IfStmt, st *lifeState) {
	if x.Init != nil {
		w.walkStmt(x.Init, st)
	}
	w.scanUses(x.Cond, st)
	errNonNil, errNil := w.errGuard(x.Cond)

	thenSt := st.clone()
	thenSt.terminated = false
	thenSt.dropErrPaired(errNonNil) // inside `if err != nil`, err-paired acquires failed
	w.walkStmts(x.Body.List, thenSt)

	elseSt := st.clone()
	elseSt.terminated = false
	elseSt.dropErrPaired(errNil) // inside/after `if err == nil`'s negation, likewise
	switch e := x.Else.(type) {
	case *ast.BlockStmt:
		w.walkStmts(e.List, elseSt)
	case *ast.IfStmt:
		w.walkStmt(e, elseSt)
	}

	st.pending = map[*resource]bool{}
	st.terminated = thenSt.terminated && elseSt.terminated
	if !thenSt.terminated {
		for r := range thenSt.pending {
			st.pending[r] = true
		}
	}
	if !elseSt.terminated {
		for r := range elseSt.pending {
			st.pending[r] = true
		}
	}
}

// errGuard recognises `x != nil` / `x == nil` conditions over an
// error-typed identifier and returns the identifier's object in the
// matching slot.
func (w *lifeWalker) errGuard(cond ast.Expr) (nonNil, isNil types.Object) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, nil
	}
	id, other := be.X, be.Y
	if isNilIdent(id) {
		id, other = other, id
	}
	if !isNilIdent(other) {
		return nil, nil
	}
	ident, ok := id.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := w.objOf(ident)
	if obj == nil || !isErrorType(obj.Type()) {
		return nil, nil
	}
	if be.Op == token.NEQ {
		return obj, nil
	}
	return nil, obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkAssign handles acquires, alias moves, and generic RHS uses.
func (w *lifeWalker) walkAssign(x *ast.AssignStmt, st *lifeState) {
	// Acquire: a single call whose callee is in the acquire set.
	if len(x.Rhs) == 1 {
		if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
			if spec, name, ok := w.acquireCall(call); ok {
				w.scanUses(call, st) // the call's own arguments may consume resources
				w.bindAcquire(x.Lhs, call, spec, name, st)
				return
			}
		}
	}
	for i, rhs := range x.Rhs {
		// Alias move: `c2 := c` binds another name to the same obligation.
		if id, ok := rhs.(*ast.Ident); ok && i < len(x.Lhs) {
			if r := st.find(w.objOf(id)); r != nil {
				if lhs, ok := x.Lhs[i].(*ast.Ident); ok && lhs.Name != "_" {
					if obj := w.objOf(lhs); obj != nil {
						r.aliases[obj] = true
						continue
					}
				}
				// Stored into a field, slice or map: ownership moves to the
				// container; its lifecycle is a separate concern.
				delete(st.pending, r)
				continue
			}
		}
		w.scanUses(rhs, st)
	}
}

func (w *lifeWalker) walkValueSpec(vs *ast.ValueSpec, st *lifeState) {
	if len(vs.Values) == 1 {
		if call, ok := vs.Values[0].(*ast.CallExpr); ok {
			if spec, name, ok := w.acquireCall(call); ok {
				w.scanUses(call, st)
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.bindAcquire(lhs, call, spec, name, st)
				return
			}
		}
	}
	for _, v := range vs.Values {
		w.scanUses(v, st)
	}
}

// bindAcquire creates the obligation for an acquire call's results.
func (w *lifeWalker) bindAcquire(lhs []ast.Expr, call *ast.CallExpr, spec acquireSpec, name string, st *lifeState) {
	if spec.result >= len(lhs) {
		return
	}
	target := lhs[spec.result]
	id, ok := target.(*ast.Ident)
	if !ok {
		return // stored straight into a field or slice: the container owns it
	}
	if id.Name == "_" {
		if !w.infer {
			w.pass.Reportf("lifetime", call.Pos(),
				"%s from %s is assigned to _; its %s can now never happen",
				spec.what, name, spec.release+"()")
		}
		return
	}
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	r := &resource{
		aliases:  map[types.Object]bool{obj: true},
		spec:     spec,
		acquired: name,
		pos:      call.Pos(),
	}
	for _, l := range lhs {
		if lid, ok := l.(*ast.Ident); ok && lid != id && lid.Name != "_" {
			if o := w.objOf(lid); o != nil && isErrorType(o.Type()) {
				r.errObj = o
			}
		}
	}
	st.pending[r] = true
}

// walkDefer credits deferred releases: `defer c.Close()`,
// `defer cancel()`, a deferred closure that releases captured
// resources, or a deferred same-package helper whose parameter
// disposition releases.
func (w *lifeWalker) walkDefer(x *ast.DeferStmt, st *lifeState) {
	call := x.Call
	if w.dischargeReleaseCall(call, st) {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Anything the deferred closure touches is its responsibility
		// now: releases in its body discharge, other captures transfer
		// ownership to the closure.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				w.dischargeReleaseCall(c, st)
			}
			return true
		})
		w.untrackIn(lit, st)
		return
	}
	w.callArgs(call, st)
}

// dischargeReleaseCall discharges an obligation met by the call:
// `c.Close()` (any wrapping of the receiver ident) or `cancel()`.
func (w *lifeWalker) dischargeReleaseCall(call *ast.CallExpr, st *lifeState) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id := baseIdent(fun.X); id != nil {
			if r := st.find(w.objOf(id)); r != nil && r.spec.release == fun.Sel.Name {
				delete(st.pending, r)
				return true
			}
		}
	case *ast.Ident:
		if r := st.find(w.objOf(fun)); r != nil && r.spec.release == "" {
			delete(st.pending, r)
			return true
		}
	}
	return false
}

// returnExpr processes one return result: returning a tracked resource
// (alone or inside a composite literal) transfers ownership to the
// caller; in inference mode it marks the function as a constructor.
func (w *lifeWalker) returnExpr(e ast.Expr, st *lifeState) {
	// `return f.Close()`: a release, not a transfer — must win over the
	// tracked-ident scan below or inference mistakes it for a
	// constructor return.
	if call, ok := e.(*ast.CallExpr); ok {
		if w.dischargeReleaseCall(call, st) {
			return
		}
	}
	transferred := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if r := st.find(w.objOf(id)); r != nil {
				if w.infer && w.retSpec == nil {
					spec := r.spec
					w.retSpec = &spec
				}
				delete(st.pending, r)
				transferred = true
			}
		}
		return true
	})
	if transferred {
		return
	}
	// `return os.Open(p)`: a constructor forwarding the acquire directly.
	if call, ok := e.(*ast.CallExpr); ok {
		if spec, _, ok := w.acquireCall(call); ok && spec.result == 0 {
			if w.infer && w.retSpec == nil {
				w.retSpec = &spec
			}
			return
		}
	}
	w.scanUses(e, st)
}

// scanUses walks an expression, classifying every appearance of a
// tracked resource. Benign uses (method receiver, field access,
// comparisons) keep the obligation; release calls discharge it; call
// arguments consult the transfer set and same-package callee
// dispositions; everything else — captures, stores, sends, unknown
// sinks — conservatively transfers ownership and stops tracking.
func (w *lifeWalker) scanUses(e ast.Expr, st *lifeState) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		if r := st.find(w.objOf(x)); r != nil {
			delete(st.pending, r) // unclassified use: assume ownership moved
		}
	case *ast.CallExpr:
		if w.dischargeReleaseCall(x, st) {
			for _, a := range x.Args {
				w.scanUses(a, st)
			}
			return
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			// A method call on the resource is a borrow; scan deeper in
			// case the receiver expression itself contains calls.
			if id := baseIdent(sel.X); id == nil || st.find(w.objOf(id)) == nil {
				w.scanUses(sel.X, st)
			}
		} else if _, ok := x.Fun.(*ast.FuncLit); ok {
			w.untrackIn(x.Fun, st)
		}
		w.callArgs(x, st)
	case *ast.SelectorExpr:
		// Field access on a tracked resource is a borrow.
		if id := baseIdent(x.X); id != nil && st.find(w.objOf(id)) != nil {
			return
		}
		w.scanUses(x.X, st)
	case *ast.BinaryExpr:
		// Comparisons (`c != nil`) and arithmetic never move ownership.
		if _, ok := x.X.(*ast.Ident); !ok {
			w.scanUses(x.X, st)
		}
		if _, ok := x.Y.(*ast.Ident); !ok {
			w.scanUses(x.Y, st)
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Address-of lets the pointer escape anywhere: ownership moves.
			w.untrackIn(x.X, st)
			return
		}
		// Receives (`<-t.C`), negation, etc. read through the resource
		// without moving it — a borrow.
		w.scanUses(x.X, st)
	case *ast.ParenExpr:
		w.scanUses(x.X, st)
	case *ast.TypeAssertExpr:
		w.scanUses(x.X, st)
	case *ast.StarExpr:
		w.scanUses(x.X, st)
	case *ast.IndexExpr:
		w.scanUses(x.X, st)
		w.scanUses(x.Index, st)
	case *ast.FuncLit:
		w.untrackIn(x, st)
	default:
		w.untrackIn(e, st)
	}
}

// callArgs applies the ownership policy to a call's arguments.
func (w *lifeWalker) callArgs(call *ast.CallExpr, st *lifeState) {
	callee := calleeFunc(w.pass.Pkg.TypesInfo, call)
	q := qualifiedFuncName(callee)
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			w.scanUses(arg, st)
			continue
		}
		r := st.find(w.objOf(id))
		if r == nil {
			w.scanUses(arg, st)
			continue
		}
		switch {
		case w.transfer[q]:
			delete(st.pending, r) // declared sink takes ownership
		case callee != nil && callee.Pkg() == w.pass.Pkg.TypesPkg:
			use := w.paramDisposition(callee, i, map[string]bool{})
			switch {
			case use.called[r.spec.release]:
				delete(st.pending, r) // callee releases it
			case use.escapes:
				delete(st.pending, r) // callee takes ownership
			}
			// Otherwise the callee only borrows; the obligation stays here.
		default:
			// Unknown or cross-package sink: assume it takes ownership.
			delete(st.pending, r)
		}
	}
}

// untrackIn drops every obligation whose alias appears anywhere in the
// node — the blanket ownership-transfer rule for captures, goroutines
// and composite stores.
func (w *lifeWalker) untrackIn(n ast.Node, st *lifeState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			if r := st.find(w.objOf(id)); r != nil {
				delete(st.pending, r)
			}
		}
		return true
	})
}

// acquireCall resolves a call against the acquire set, returning the
// spec and the callee's qualified name.
func (w *lifeWalker) acquireCall(call *ast.CallExpr) (acquireSpec, string, bool) {
	callee := calleeFunc(w.pass.Pkg.TypesInfo, call)
	q := qualifiedFuncName(callee)
	if q == "" {
		return acquireSpec{}, "", false
	}
	spec, ok := w.acquires[q]
	return spec, q, ok
}

// paramDisposition summarises, with memoisation and a cycle guard, how
// a same-package callee treats its idx-th parameter: the method names
// it invokes on it and whether it stores, returns or forwards it.
func (w *lifeWalker) paramDisposition(fn *types.Func, idx int, seen map[string]bool) paramUse {
	key := fmt.Sprintf("%s\x00%d", qualifiedFuncName(fn), idx)
	if use, ok := w.dispos[key]; ok {
		return use
	}
	if seen[key] {
		return paramUse{escapes: true} // recursion: give up conservatively
	}
	seen[key] = true
	use := paramUse{called: map[string]bool{}}
	fd := w.decls[fn]
	obj := w.paramObj(fd, idx)
	if fd == nil || obj == nil {
		use.escapes = true
		w.dispos[key] = use
		return use
	}
	info := w.pass.Pkg.TypesInfo
	receiverOf := map[*ast.Ident]bool{} // idents in method-call receiver position
	argPolicy := map[*ast.Ident]bool{}  // idents handled by forwarding analysis
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id := baseIdent(sel.X); id != nil && info.Uses[id] == obj {
				receiverOf[id] = true
				use.called[sel.Sel.Name] = true
			}
		}
		callee := calleeFunc(info, call)
		for i, a := range call.Args {
			id, ok := a.(*ast.Ident)
			if !ok || info.Uses[id] != obj {
				continue
			}
			argPolicy[id] = true
			if callee != nil && callee.Pkg() == w.pass.Pkg.TypesPkg {
				sub := w.paramDisposition(callee, i, seen)
				if sub.escapes {
					use.escapes = true
				}
				for m := range sub.called {
					use.called[m] = true
				}
			} else {
				use.escapes = true // forwarded out of the package
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj || receiverOf[id] || argPolicy[id] {
			return true
		}
		// Any other appearance — returned, stored, captured, compared…
		// Comparisons are benign but rare enough in helpers that the
		// conservative answer (ownership taken, caller stops tracking,
		// no finding) is the right default.
		use.escapes = true
		return true
	})
	w.dispos[key] = use
	return use
}

// paramObj resolves the types.Object of a declaration's idx-th
// parameter (flattening multi-name fields).
func (w *lifeWalker) paramObj(fd *ast.FuncDecl, idx int) types.Object {
	if fd == nil || fd.Type.Params == nil {
		return nil
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i == idx {
				return w.pass.Pkg.TypesInfo.Defs[name]
			}
			i++
		}
	}
	return nil
}

// objOf resolves an identifier to its object (use or def).
func (w *lifeWalker) objOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	info := w.pass.Pkg.TypesInfo
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// baseIdent unwraps parens, type assertions and selectors down to the
// root identifier of an expression, nil when there is none.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isExitCall reports calls that terminate the process: panic, os.Exit,
// runtime.Goexit, log.Fatal*, and the testing fatals.
func (w *lifeWalker) isExitCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := w.pass.Pkg.TypesInfo.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		f := calleeFunc(w.pass.Pkg.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return false
		}
		switch f.Pkg().Path() {
		case "os":
			return f.Name() == "Exit"
		case "runtime":
			return f.Name() == "Goexit"
		case "log":
			return f.Name() == "Fatal" || f.Name() == "Fatalf" || f.Name() == "Fatalln"
		}
	}
	return false
}

// --- WaitGroup accounting ---------------------------------------------

// checkWaitGroups flags the two Add/Done shapes that break the
// happens-before contract around goroutine launches.
func (w *lifeWalker) checkWaitGroups(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		w.checkGoroutineWG(lit)
		return true
	})
}

// checkGoroutineWG inspects one goroutine literal: an Add on a captured
// WaitGroup races the spawner's Wait, and a plain Done below an earlier
// conditional return can be skipped.
func (w *lifeWalker) checkGoroutineWG(lit *ast.FuncLit) {
	var firstReturn token.Pos
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if x != lit {
				return // nested goroutine/closure: its own analysis
			}
			walk(x.Body, inDefer)
			return
		case *ast.DeferStmt:
			walk(x.Call, true)
			return
		case *ast.ReturnStmt:
			if firstReturn == token.NoPos {
				firstReturn = x.Pos()
			}
			return
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && w.isWaitGroupRecv(sel.X) {
				switch sel.Sel.Name {
				case "Add":
					if id := baseIdent(sel.X); id != nil {
						if obj := w.objOf(id); obj != nil && !within(obj.Pos(), lit) {
							w.pass.Reportf("lifetime", x.Pos(),
								"sync.WaitGroup.Add inside the goroutine it accounts for; Wait can pass before this runs — call Add before the go statement")
						}
					}
				case "Done":
					if !inDefer && firstReturn != token.NoPos && firstReturn < x.Pos() {
						w.pass.ReportWhyf("lifetime", x.Pos(),
							fmt.Sprintf("a return at line %d precedes this Done", w.pass.Pkg.Fset.Position(firstReturn).Line),
							"sync.WaitGroup.Done can be skipped by the earlier conditional return; defer wg.Done() at the top of the goroutine")
					}
				}
			}
		}
		// Generic recursion over children.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, inDefer)
			return false
		})
	}
	walk(lit.Body, false)
}

// isWaitGroupRecv reports whether an expression has type sync.WaitGroup
// (or pointer to it).
func (w *lifeWalker) isWaitGroupRecv(e ast.Expr) bool {
	t := w.pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// within reports whether pos falls inside the literal's extent.
func within(pos token.Pos, lit *ast.FuncLit) bool {
	return pos >= lit.Pos() && pos <= lit.End()
}
