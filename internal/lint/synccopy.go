package lint

import (
	"go/ast"
	"go/types"
)

// syncNoCopy is the set of sync types whose by-value copies are bugs:
// a copied Mutex forks the lock state, a copied WaitGroup forks the
// counter — both produce the exact silent-corruption failure mode the
// ring all-reduce and the parallel bench collector cannot afford.
var syncNoCopy = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// SyncCopy flags functions that pass or return sync.Mutex, WaitGroup
// and friends by value — in parameters, results, or receivers. These
// must travel as pointers (or live in a struct passed by pointer).
var SyncCopy = &Analyzer{
	Name: "synccopy",
	Doc:  "flag sync.Mutex/sync.WaitGroup (and friends) passed or received by value",
	Run: func(pass *Pass) {
		check := func(ft *ast.FuncType, recv *ast.FieldList) {
			lists := []*ast.FieldList{recv, ft.Params, ft.Results}
			for _, fl := range lists {
				if fl == nil {
					continue
				}
				for _, field := range fl.List {
					if name := syncValueType(pass, field.Type); name != "" {
						pass.Reportf("synccopy", field.Type.Pos(),
							"sync.%s passed by value; copying it copies its internal state — use *sync.%s", name, name)
					}
				}
			}
		}
		for _, file := range pass.Pkg.Files {
			if isTestFile(pass.Pkg.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					check(fn.Type, fn.Recv)
				case *ast.FuncLit:
					check(fn.Type, nil)
				}
				return true
			})
		}
	},
}

// syncValueType returns the bare type name ("Mutex", "WaitGroup", …)
// when the expression's type is one of the no-copy sync types held by
// value, or "" otherwise. Pointers to them are fine.
func syncValueType(pass *Pass, e ast.Expr) string {
	t := pass.TypeOf(e)
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || !syncNoCopy[obj.Name()] {
		return ""
	}
	return obj.Name()
}
