package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The hotpath analyzer family enforces allocation discipline on the
// paper's measured hot paths. The repo's value proposition is that
// prediction is cheap relative to running the network; that only holds
// if the measured stack — exec kernels, the all-reduce ring step, the
// obs observe path, the streaming drift statistics — does no per-call
// heap work. lint.config declares the hot-path roots
// (`hotpath <import-path>.<Func>` or `.<Recv>.<Method>`); everything
// reachable from a root through the intra-package call graph is "hot"
// and must not allocate.
//
// hotpath (allocation discipline) flags, in hot functions:
//
//   - make/new and heap-escaping composite literals (&T{…}, slice and
//     map literals);
//   - append where the target slice is declared locally without
//     capacity (growth allocates; even preallocated appends ride on a
//     flagged make);
//   - string ↔ []byte/[]rune conversions (always copy);
//   - fmt.*, errors.New/Join and time.NewTimer/NewTicker/After/Tick
//     calls (format buffers, heap-allocated errors, runtime timers);
//   - interface boxing at call sites: a non-pointer-shaped concrete
//     value passed where an interface is expected heap-allocates its
//     copy (pointers, chans, maps and funcs are stored inline and are
//     exempt, as are constants, which the compiler materialises in
//     static data);
//   - capturing closures outside loops (the closure cell allocates);
//   - calls to same-package functions whose warm-path returns hand out
//     freshly allocated memory (allocating constructors — exempt at
//     their definition, charged at the hot call site; a function that
//     allocates only on cold error exits is not a constructor).
//
// hotdefer (defer/closure discipline) flags, in hot functions:
//
//   - defer inside a loop (defer records accumulate until return);
//   - capturing closures created inside a loop (one cell per
//     iteration).
//
// Exemptions, applied uniformly: allocations flowing to the enclosing
// function's return (constructors hand memory to their caller — unless
// the function is itself a declared root, which promises 0 allocs/op),
// and allocations on cold exit paths — inside an if/case/select branch
// whose body terminates in return or panic (error construction on the
// way out is not steady-state cost).
//
// Like the determinism analyzer the family is call-graph based and
// shares its limitations: calls through function values and interface
// method dispatch are invisible, so functions invoked only that way
// (e.g. worker-pool task bodies) must be declared as roots themselves.
// Each finding records the root→…→function chain in Finding.Why;
// convlint -why prints it.

// NewHotPath constructs the allocation-discipline analyzer.
func NewHotPath(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "flag heap allocations, boxing and allocating calls reachable from declared hot-path roots",
		Run: func(pass *Pass) {
			scanHot(pass, cfg, true, func(analyzer string, pos token.Pos, why, format string, args ...any) {
				if analyzer == "hotpath" {
					pass.ReportWhyf(analyzer, pos, why, format, args...)
				}
			})
		},
	}
}

// NewHotDefer constructs the defer/closure-discipline analyzer.
func NewHotDefer(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "hotdefer",
		Doc:  "flag defer in loops and per-iteration capturing closures on declared hot paths",
		Run: func(pass *Pass) {
			scanHot(pass, cfg, false, func(analyzer string, pos token.Pos, why, format string, args ...any) {
				if analyzer == "hotdefer" {
					pass.ReportWhyf(analyzer, pos, why, format, args...)
				}
			})
		},
	}
}

// hotFuncInfo is one node of the hot-path call graph.
type hotFuncInfo struct {
	localName string // "Func" or "Recv.Method"
	decl      *ast.FuncDecl
	calls     []*types.Func // intra-package direct callees, in source order
	allocRet  bool          // returns freshly allocated memory (allocating constructor)
}

// hotGraph is the per-package call graph used by the hotpath family.
type hotGraph struct {
	funcs  map[*types.Func]*hotFuncInfo
	byName map[string]*types.Func // localName → object
	order  []*types.Func          // declaration order, for deterministic output
}

// scanHot builds the call graph, resolves the configured roots, and
// walks every hot function emitting findings through emit. reportRoots
// additionally reports configured roots that match no function — only
// one of the two analyzers does this, so the finding is not duplicated.
func scanHot(pass *Pass, cfg *Config, reportRoots bool, emit func(analyzer string, pos token.Pos, why, format string, args ...any)) {
	roots := cfg.hotpathRoots(pass.Pkg.ImportPath)
	if len(roots) == 0 || pass.Pkg.TypesInfo == nil {
		return
	}
	g := buildHotGraph(pass)
	rootSet := make(map[*types.Func]bool, len(roots))
	chains := map[*types.Func]string{}
	var queue []*types.Func
	sort.Strings(roots)
	for _, r := range roots {
		fn, ok := g.byName[r]
		if !ok {
			if reportRoots {
				emit("hotpath", token.NoPos, "",
					"lint.config declares hotpath root %s.%s, but no such function exists in the package", pass.Pkg.ImportPath, r)
			}
			continue
		}
		rootSet[fn] = true
		chains[fn] = "declared root " + r
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi := g.funcs[fn]
		if fi == nil {
			continue
		}
		for _, callee := range fi.calls {
			ci, ok := g.funcs[callee]
			if !ok {
				continue
			}
			if _, seen := chains[callee]; seen {
				continue
			}
			chains[callee] = chains[fn] + " → " + ci.localName
			queue = append(queue, callee)
		}
	}
	for _, fn := range g.order {
		chain, hot := chains[fn]
		if !hot {
			continue
		}
		fi := g.funcs[fn]
		s := &hotScanner{
			pass:   pass,
			graph:  g,
			emit:   emit,
			why:    "hot path: " + chain,
			isRoot: rootSet[fn],
		}
		s.scanFunc(fi.decl)
	}
}

// buildHotGraph records, for every declared function, its local name,
// intra-package callees and whether it returns fresh allocations.
func buildHotGraph(pass *Pass) *hotGraph {
	g := &hotGraph{
		funcs:  map[*types.Func]*hotFuncInfo{},
		byName: map[string]*types.Func{},
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &hotFuncInfo{localName: localFuncName(fd), decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(info, call); callee != nil && callee.Pkg() == pass.Pkg.TypesPkg {
					fi.calls = append(fi.calls, callee)
				}
				return true
			})
			fi.allocRet = returnsAllocation(info, fd)
			g.funcs[obj] = fi
			g.byName[fi.localName] = obj
			g.order = append(g.order, obj)
		}
	}
	return g
}

// localFuncName renders a function's config-addressable name: "Func"
// for plain functions, "Recv.Method" for methods (pointer receivers
// spelled the same as value receivers).
func localFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// returnsAllocation reports whether a warm-path return statement of fd
// hands freshly allocated memory to the caller — directly (return
// make(…), return &T{…}, an allocating conversion) or via a local
// variable that was assigned an allocation somewhere in the body.
// Allocating returns on cold branches do not count: a function that
// builds an error value only on its divergent exit paths is not an
// allocating constructor, and its steady-state call sites stay clean.
func returnsAllocation(info *types.Info, fd *ast.FuncDecl) bool {
	returned := returnedObjects(info, fd.Body)
	cold := coldReturns(fd.Body)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if cold[x] {
				return true
			}
			for _, r := range x.Results {
				if isAllocExpr(info, r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !isAllocExpr(info, rhs) || i >= len(x.Lhs) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && returned[obj] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// coldReturns collects the return statements of body that sit on cold
// branches — inside an if body, case clause or comm clause whose
// statement list diverges from the main flow (terminatesExit). The
// walk mirrors walkStmt's coldness rules so the constructor
// classification and the in-function exemptions agree on what "cold"
// means. Function literals are not descended into: a closure's returns
// belong to the closure.
func coldReturns(body *ast.BlockStmt) map[*ast.ReturnStmt]bool {
	out := map[*ast.ReturnStmt]bool{}
	var walk func(st ast.Stmt, cold bool)
	walkList := func(list []ast.Stmt, cold bool) {
		for _, sub := range list {
			walk(sub, cold)
		}
	}
	walk = func(st ast.Stmt, cold bool) {
		switch x := st.(type) {
		case nil:
		case *ast.BlockStmt:
			walkList(x.List, cold)
		case *ast.LabeledStmt:
			walk(x.Stmt, cold)
		case *ast.IfStmt:
			walk(x.Body, cold || terminatesExit(x.Body.List))
			if blk, ok := x.Else.(*ast.BlockStmt); ok {
				walk(blk, cold || terminatesExit(blk.List))
			} else if x.Else != nil {
				walk(x.Else, cold)
			}
		case *ast.ForStmt:
			walk(x.Body, cold)
		case *ast.RangeStmt:
			walk(x.Body, cold)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body, cold || terminatesExit(cc.Body))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body, cold || terminatesExit(cc.Body))
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body, cold || terminatesExit(cc.Body))
				}
			}
		case *ast.ReturnStmt:
			if cold {
				out[x] = true
			}
		}
	}
	walkList(body.List, false)
	return out
}

// returnedObjects collects the objects of identifiers (and named
// results) that appear as return results anywhere in the body.
func returnedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if id, ok := r.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isAllocExpr reports whether an expression syntactically produces a
// fresh heap allocation: make, new, append, &T{…}, a slice or map
// literal, or a string↔[]byte conversion.
func isAllocExpr(info *types.Info, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				switch id.Name {
				case "make", "new", "append":
					return true
				}
			}
		}
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return isCopyConversion(info.TypeOf(x.Fun), info.TypeOf(x.Args[0]))
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, lit := x.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CompositeLit:
		if t := info.TypeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				return true
			}
		}
	}
	return false
}

// isCopyConversion reports whether a conversion to dst from src is a
// string ↔ []byte/[]rune conversion, which copies its operand.
func isCopyConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// hotCtx is the lexical context a node is scanned in.
type hotCtx struct {
	inLoop bool // inside a for/range body
	cold   bool // inside a branch that terminates in return/panic
	exempt bool // value flows to the enclosing function's return
}

// hotScanner walks one hot function (or literal) body.
type hotScanner struct {
	pass   *Pass
	graph  *hotGraph
	emit   func(analyzer string, pos token.Pos, why, format string, args ...any)
	why    string
	isRoot bool

	fn       ast.Node                // enclosing FuncDecl body owner or FuncLit, for capture checks
	returned map[types.Object]bool   // objects returned by the current function
	sliceVar map[types.Object]string // local slice vars: "nocap" or "cap"
}

// scanFunc scans the body of the current hot function declaration. The
// whole declaration (not just the body) is kept as the capture scope so
// closures over receivers and parameters are recognised.
func (s *hotScanner) scanFunc(fd *ast.FuncDecl) {
	s.fn = fd
	s.returned = returnedObjects(s.pass.Pkg.TypesInfo, fd.Body)
	s.sliceVar = collectSliceDecls(s.pass.Pkg.TypesInfo, fd.Body)
	s.walkStmt(fd.Body, hotCtx{})
}

// collectSliceDecls records how local slice variables were declared:
// "cap" when built by a 3-argument make (preallocated), "nocap" for
// `var x []T`, 2-argument make, or an empty slice literal.
func collectSliceDecls(info *types.Info, body *ast.BlockStmt) map[types.Object]string {
	out := map[types.Object]string{}
	record := func(id *ast.Ident, form string) {
		if obj := info.Defs[id]; obj != nil {
			out[obj] = form
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GenDecl:
			if x.Tok != token.VAR {
				return true
			}
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					if t := info.TypeOf(id); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							record(id, "nocap")
						}
					}
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch r := rhs.(type) {
				case *ast.CallExpr:
					if fid, ok := r.Fun.(*ast.Ident); ok && fid.Name == "make" {
						if _, builtin := info.Uses[fid].(*types.Builtin); builtin {
							if len(r.Args) >= 3 {
								record(id, "cap")
							} else {
								record(id, "nocap")
							}
						}
					}
				case *ast.CompositeLit:
					if t := info.TypeOf(r); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							record(id, "nocap")
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// report emits a finding unless the context exempts it.
func (s *hotScanner) report(analyzer string, ctx hotCtx, pos token.Pos, format string, args ...any) {
	if ctx.cold || (ctx.exempt && !s.isRoot) {
		return
	}
	s.emit(analyzer, pos, s.why, format, args...)
}

func (s *hotScanner) walkStmt(st ast.Stmt, ctx hotCtx) {
	switch x := st.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range x.List {
			s.walkStmt(sub, ctx)
		}
	case *ast.IfStmt:
		s.walkStmt(x.Init, ctx)
		s.walkExpr(x.Cond, ctx)
		bodyCtx := ctx
		bodyCtx.cold = ctx.cold || terminatesExit(x.Body.List)
		s.walkStmt(x.Body, bodyCtx)
		if x.Else != nil {
			elseCtx := ctx
			if blk, ok := x.Else.(*ast.BlockStmt); ok {
				elseCtx.cold = ctx.cold || terminatesExit(blk.List)
			}
			s.walkStmt(x.Else, elseCtx)
		}
	case *ast.ForStmt:
		s.walkStmt(x.Init, ctx)
		s.walkExpr(x.Cond, ctx)
		s.walkStmt(x.Post, ctx)
		loopCtx := ctx
		loopCtx.inLoop = true
		s.walkStmt(x.Body, loopCtx)
	case *ast.RangeStmt:
		s.walkExpr(x.X, ctx)
		loopCtx := ctx
		loopCtx.inLoop = true
		s.walkStmt(x.Body, loopCtx)
	case *ast.SwitchStmt:
		s.walkStmt(x.Init, ctx)
		s.walkExpr(x.Tag, ctx)
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseCtx := ctx
			caseCtx.cold = ctx.cold || terminatesExit(cc.Body)
			for _, e := range cc.List {
				s.walkExpr(e, ctx)
			}
			for _, sub := range cc.Body {
				s.walkStmt(sub, caseCtx)
			}
		}
	case *ast.TypeSwitchStmt:
		s.walkStmt(x.Init, ctx)
		s.walkStmt(x.Assign, ctx)
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseCtx := ctx
			caseCtx.cold = ctx.cold || terminatesExit(cc.Body)
			for _, sub := range cc.Body {
				s.walkStmt(sub, caseCtx)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			commCtx := ctx
			commCtx.cold = ctx.cold || terminatesExit(cc.Body)
			s.walkStmt(cc.Comm, ctx)
			for _, sub := range cc.Body {
				s.walkStmt(sub, commCtx)
			}
		}
	case *ast.ReturnStmt:
		retCtx := ctx
		retCtx.exempt = true
		for _, r := range x.Results {
			s.walkExpr(r, retCtx)
		}
	case *ast.DeferStmt:
		if ctx.inLoop {
			s.report("hotdefer", ctx, x.Pos(),
				"defer inside a loop on the hot path: the deferred call queues one record per iteration, all held until the function returns; hoist the defer out of the loop or call the cleanup directly")
		}
		// The deferred closure itself is exempt from the capturing-
		// closure rule outside loops: non-loop defers are open-coded
		// and keep their closure on the stack.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			s.walkFuncLit(lit, ctx, true)
		} else {
			s.walkExpr(x.Call.Fun, ctx)
		}
		for _, a := range x.Call.Args {
			s.walkExpr(a, ctx)
		}
	case *ast.GoStmt:
		s.walkExpr(x.Call, ctx)
	case *ast.AssignStmt:
		for _, l := range x.Lhs {
			s.walkExpr(l, ctx)
		}
		for i, r := range x.Rhs {
			rhsCtx := ctx
			if i < len(x.Lhs) && isAllocExpr(s.pass.Pkg.TypesInfo, r) {
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					obj := s.pass.Pkg.TypesInfo.Defs[id]
					if obj == nil {
						obj = s.pass.Pkg.TypesInfo.Uses[id]
					}
					if obj != nil && s.returned[obj] {
						rhsCtx.exempt = true
					}
				}
			}
			s.walkExpr(r, rhsCtx)
		}
	case *ast.ExprStmt:
		s.walkExpr(x.X, ctx)
	case *ast.SendStmt:
		s.walkExpr(x.Chan, ctx)
		s.walkExpr(x.Value, ctx)
	case *ast.IncDecStmt:
		s.walkExpr(x.X, ctx)
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					s.walkExpr(v, ctx)
				}
			}
		}
	case *ast.LabeledStmt:
		s.walkStmt(x.Stmt, ctx)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (s *hotScanner) walkExpr(e ast.Expr, ctx hotCtx) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		s.checkCall(x, ctx)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := x.X.(*ast.CompositeLit); ok {
				s.report("hotpath", ctx, x.Pos(),
					"&%s composite literal escapes to the heap on the hot path; reuse a preallocated value or restructure to pass by value", typeLabel(s.pass, lit))
				for _, el := range lit.Elts {
					s.walkExpr(el, ctx)
				}
				return
			}
		}
		s.walkExpr(x.X, ctx)
	case *ast.CompositeLit:
		if t := s.pass.TypeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				s.report("hotpath", ctx, x.Pos(),
					"slice literal allocates its backing array on the hot path; hoist it to a package-level var or preallocated scratch")
			case *types.Map:
				s.report("hotpath", ctx, x.Pos(),
					"map literal allocates on the hot path; hoist the map out of the per-call path")
			}
		}
		for _, el := range x.Elts {
			s.walkExpr(el, ctx)
		}
	case *ast.FuncLit:
		s.walkFuncLit(x, ctx, false)
	case *ast.BinaryExpr:
		s.walkExpr(x.X, ctx)
		s.walkExpr(x.Y, ctx)
	case *ast.ParenExpr:
		s.walkExpr(x.X, ctx)
	case *ast.SelectorExpr:
		s.walkExpr(x.X, ctx)
	case *ast.IndexExpr:
		s.walkExpr(x.X, ctx)
		s.walkExpr(x.Index, ctx)
	case *ast.SliceExpr:
		s.walkExpr(x.X, ctx)
		s.walkExpr(x.Low, ctx)
		s.walkExpr(x.High, ctx)
		s.walkExpr(x.Max, ctx)
	case *ast.StarExpr:
		s.walkExpr(x.X, ctx)
	case *ast.TypeAssertExpr:
		s.walkExpr(x.X, ctx)
	case *ast.KeyValueExpr:
		s.walkExpr(x.Key, ctx)
		s.walkExpr(x.Value, ctx)
	}
}

// walkFuncLit checks a function literal for closure-allocation findings
// and scans its body as hot code (it was created on a hot path, so its
// body is presumed to run there).
func (s *hotScanner) walkFuncLit(lit *ast.FuncLit, ctx hotCtx, deferred bool) {
	if capt := capturedVar(s.pass, lit, s.fn); capt != "" {
		if ctx.inLoop {
			s.report("hotdefer", ctx, lit.Pos(),
				"closure capturing %q inside a loop allocates one closure cell per iteration; hoist the closure or pass the variable as a parameter", capt)
		} else if !deferred {
			s.report("hotpath", ctx, lit.Pos(),
				"closure capturing %q allocates on the hot path; use a named function or a preallocated task struct", capt)
		}
	}
	inner := &hotScanner{
		pass:   s.pass,
		graph:  s.graph,
		emit:   s.emit,
		why:    s.why,
		isRoot: false,
		fn:     lit,
	}
	inner.returned = returnedObjects(s.pass.Pkg.TypesInfo, lit.Body)
	inner.sliceVar = collectSliceDecls(s.pass.Pkg.TypesInfo, lit.Body)
	inner.walkStmt(lit.Body, hotCtx{inLoop: false, cold: ctx.cold})
}

// checkCall applies the call-site rules: builtin allocators, banned
// stdlib calls, allocating same-package callees, copying conversions,
// and interface boxing of arguments.
func (s *hotScanner) checkCall(call *ast.CallExpr, ctx hotCtx) {
	info := s.pass.Pkg.TypesInfo
	flagged := false

	// Conversions: T(x) where Fun is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isCopyConversion(info.TypeOf(call.Fun), info.TypeOf(call.Args[0])) {
			s.report("hotpath", ctx, call.Pos(),
				"string/[]byte conversion copies its operand on the hot path; keep one representation end to end")
		}
		for _, a := range call.Args {
			s.walkExpr(a, ctx)
		}
		return
	}

	// Builtins: make/new allocate; append grows.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				s.report("hotpath", ctx, call.Pos(),
					"make on the hot path allocates per call; hoist the buffer to a reused field, pool, or caller-provided scratch")
			case "new":
				s.report("hotpath", ctx, call.Pos(),
					"new on the hot path allocates per call; reuse a preallocated value")
			case "append":
				s.checkAppend(call, ctx)
			}
			for _, a := range call.Args {
				s.walkExpr(a, ctx)
			}
			return
		}
	}

	if callee := calleeFunc(info, call); callee != nil {
		if p := callee.Pkg(); p != nil {
			switch {
			case p.Path() == "fmt":
				s.report("hotpath", ctx, call.Pos(),
					"fmt.%s on the hot path allocates (format buffer and boxed arguments); format off the hot path or precompute the string", callee.Name())
				flagged = true
			case p.Path() == "errors" && (callee.Name() == "New" || callee.Name() == "Join"):
				s.report("hotpath", ctx, call.Pos(),
					"errors.%s on the hot path allocates a new error per call; declare the error as a package-level var", callee.Name())
				flagged = true
			case p.Path() == "time" && isTimerAlloc(callee.Name()):
				s.report("hotpath", ctx, call.Pos(),
					"time.%s on the hot path allocates a runtime timer per call; create the timer once and Reset it", callee.Name())
				flagged = true
			case p == s.pass.Pkg.TypesPkg:
				if fi := s.graph.funcs[callee]; fi != nil && fi.allocRet {
					s.report("hotpath", ctx, call.Pos(),
						"call to %s on the hot path: it returns freshly allocated memory each call; fill a caller-owned buffer instead", fi.localName)
					flagged = true
				}
			}
		}
	}

	if !flagged {
		s.checkBoxing(call, ctx)
	}
	s.walkExpr(call.Fun, ctx)
	for _, a := range call.Args {
		s.walkExpr(a, ctx)
	}
}

// checkAppend flags appends whose target slice is a local declared
// without capacity — each growth reallocates the backing array.
func (s *hotScanner) checkAppend(call *ast.CallExpr, ctx hotCtx) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	info := s.pass.Pkg.TypesInfo
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return
	}
	if form, known := s.sliceVar[obj]; known && form == "nocap" {
		s.report("hotpath", ctx, call.Pos(),
			"append to %q, declared without capacity, reallocates as it grows on the hot path; preallocate with make(…, 0, n)", id.Name)
	}
}

// isTimerAlloc lists the time functions that allocate a runtime timer.
func isTimerAlloc(name string) bool {
	switch name {
	case "NewTimer", "NewTicker", "After", "Tick", "AfterFunc":
		return true
	}
	return false
}

// checkBoxing flags non-pointer-shaped concrete values passed where an
// interface parameter is expected: the copy is heap-allocated.
// Pointer-shaped types (pointers, chans, maps, funcs) are stored in the
// interface word directly; constants are materialised in static data.
func (s *hotScanner) checkBoxing(call *ast.CallExpr, ctx hotCtx) {
	sig, ok := s.pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := s.pass.Pkg.TypesInfo.Types[arg]
		if !ok || tv.Value != nil { // constants live in static data
			continue
		}
		at := tv.Type
		if at == nil || tv.IsNil() {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue
		}
		s.report("hotpath", ctx, arg.Pos(),
			"argument of concrete type %s is boxed into an interface at this call; the copy heap-allocates on every hot call", types.TypeString(at, types.RelativeTo(s.pass.Pkg.TypesPkg)))
	}
}

// capturedVar returns the name of one variable the literal captures
// from its enclosing function, or "" when it captures nothing that
// costs a closure cell (package-level references are free).
func capturedVar(pass *Pass, lit *ast.FuncLit, enclosing ast.Node) string {
	if enclosing == nil {
		return ""
	}
	info := pass.Pkg.TypesInfo
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal itself. Package-level variables fail the first
		// test; the literal's own params/locals fail the second.
		if obj.Pos() >= enclosing.Pos() && obj.Pos() <= enclosing.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			name = obj.Name()
		}
		return name == ""
	})
	return name
}

// typeLabel renders the composite literal's type for a finding message.
func typeLabel(pass *Pass, lit *ast.CompositeLit) string {
	if t := pass.TypeOf(lit); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg.TypesPkg))
	}
	return "T"
}

// terminatesExit reports whether a statement list ends in return or
// panic — the shape of a cold exit path, on which error-construction
// allocations are not steady-state cost.
func terminatesExit(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminatesExit(last.List)
	}
	return false
}
