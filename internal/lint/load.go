package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader loads and type-checks packages for analysis. It resolves
// dependencies through the go toolchain's export data (`go list
// -export`), so it needs no module dependencies of its own and agrees
// exactly with the compiler about types.
type Loader struct {
	// ModuleDir is the directory `go list` runs in; it anchors package
	// pattern resolution (e.g. "./...") and import path lookup.
	ModuleDir string

	fset    *token.FileSet
	imp     types.ImporterFrom
	exports map[string]string // import path -> export data file
}

// NewLoader returns a loader anchored at the given module directory.
func NewLoader(moduleDir string) *Loader {
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   make(map[string]string),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList invokes the go toolchain and decodes its JSON package stream.
func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.ModuleDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup feeds the gc importer export data for an import path,
// shelling out to `go list -export` for paths not already known.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		pkgs, err := l.goList("-export", "-json", "--", path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		file = l.exports[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Load lists, parses and type-checks every package matching the given
// patterns (e.g. "./..."). Test files are excluded: convlint's rules
// govern production code, and several analyzers exempt tests anyway.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(append([]string{"-export", "-deps", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks all .go files of a single directory
// as one package with the given import path. Used for analyzer
// fixtures under testdata/, which the go tool never lists. Unlike
// Load, files named *_test.go are included (they must declare the same
// package) so fixtures can prove the analyzers' test-file exemptions.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(importPath, dir, files)
}

// check parses the given files and type-checks them as one package.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, len(typeErrs))
		for i, e := range typeErrs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		TypesPkg:   tpkg,
		TypesInfo:  info,
	}, nil
}
