package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace-event: a complete span ("X"), an
// instant ("i"), or metadata ("M"). Timestamps and durations are in
// microseconds per the trace-event format spec. This generic form is
// shared by real measured runs (Tracer.WriteChromeTrace) and the
// simulated training-step timelines of internal/tracefmt.
type TraceEvent struct {
	Name  string
	Phase string // defaults to "X" when empty
	TsUS  float64
	DurUS float64
	Pid   int
	Tid   int
	Args  map[string]any
}

// MarshalJSON renders the event with the spec's lower-case keys.
func (e TraceEvent) MarshalJSON() ([]byte, error) {
	ph := e.Phase
	if ph == "" {
		ph = "X"
	}
	m := map[string]any{
		"name": e.Name, "ph": ph,
		"ts": e.TsUS, "dur": e.DurUS,
		"pid": e.Pid, "tid": e.Tid,
	}
	if len(e.Args) > 0 {
		m["args"] = e.Args
	}
	return json.Marshal(m)
}

// WriteTraceEvents writes a Chrome trace-event JSON document (object
// form with a traceEvents array). An empty event slice produces a valid
// empty document — Perfetto accepts it — rather than an error, so
// zero-span runs and zero-layer timelines pipe cleanly into tooling.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	out := struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}{TraceEvents: []json.RawMessage{}}
	for _, e := range events {
		if e.TsUS < 0 || e.DurUS < 0 {
			return fmt.Errorf("obs: trace event %q has negative time", e.Name)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, raw)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Chrome-trace pids: unattributed spans render under the main process,
// worker-attributed spans under a separate "workers" process whose
// threads are the worker ids — one stable, sorted timeline row per
// worker regardless of span interleaving.
const (
	tracePidMain    = 1
	tracePidWorkers = 2
)

// WriteChromeTrace exports every finished span as a complete event.
// Unattributed spans get one Chrome "thread" per span track named after
// the track's root span, so nested spans render as Perfetto flame
// slices; worker-attributed spans are merged onto a per-worker thread of
// a dedicated "workers" process, with their timestamps aligned onto the
// reference worker's timeline using the tracer's clock-offset table.
// Every X event carries args {id, parent} (+ worker and link when set)
// so the span graph survives the export. Nil-safe (writes a valid empty
// document).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	off := t.Offsets()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Track != spans[j].Track {
			return spans[i].Track < spans[j].Track
		}
		return spans[i].Start < spans[j].Start
	})
	var events []TraceEvent
	trackName := map[int64]string{}
	workers := map[int]bool{}
	var minTS float64
	for _, s := range spans {
		start := s.Start
		pid, tid := tracePidMain, int(s.Track)
		if s.Worker >= 0 {
			start -= off.Get(s.Worker)
			pid, tid = tracePidWorkers, s.Worker
			workers[s.Worker] = true
		} else if s.ID == s.Track {
			trackName[s.Track] = s.Name
		}
		args := map[string]any{"id": s.ID, "parent": s.Parent}
		if s.Worker >= 0 {
			args["worker"] = s.Worker
		}
		if s.Link.Valid() {
			args["link"] = s.Link.Span
		}
		ts := float64(start.Nanoseconds()) / 1e3
		minTS = min(minTS, ts)
		events = append(events, TraceEvent{
			Name: s.Name, Phase: "X",
			TsUS:  ts,
			DurUS: float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:   pid, Tid: tid, Args: args,
		})
	}
	// Clock alignment can shift an early span before the epoch; the
	// trace format rejects negative timestamps, so shift the whole
	// document instead — relative placement is what matters.
	if minTS < 0 {
		for i := range events {
			events[i].TsUS -= minTS
		}
	}
	tracks := make([]int64, 0, len(trackName))
	for tr := range trackName {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, tr := range tracks {
		events = append(events, TraceEvent{
			Name: "thread_name", Phase: "M", Pid: tracePidMain, Tid: int(tr),
			Args: map[string]any{"name": trackName[tr]},
		})
	}
	if len(workers) > 0 {
		events = append(events, TraceEvent{
			Name: "process_name", Phase: "M", Pid: tracePidWorkers,
			Args: map[string]any{"name": "workers"},
		})
		ws := make([]int, 0, len(workers))
		for w := range workers {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		for _, wk := range ws {
			events = append(events, TraceEvent{
				Name: "thread_name", Phase: "M", Pid: tracePidWorkers, Tid: wk,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", wk)},
			})
		}
	}
	return WriteTraceEvents(w, events)
}
