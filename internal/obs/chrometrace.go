package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace-event: a complete span ("X"), an
// instant ("i"), or metadata ("M"). Timestamps and durations are in
// microseconds per the trace-event format spec. This generic form is
// shared by real measured runs (Tracer.WriteChromeTrace) and the
// simulated training-step timelines of internal/tracefmt.
type TraceEvent struct {
	Name  string
	Phase string // defaults to "X" when empty
	TsUS  float64
	DurUS float64
	Pid   int
	Tid   int
	Args  map[string]any
}

// MarshalJSON renders the event with the spec's lower-case keys.
func (e TraceEvent) MarshalJSON() ([]byte, error) {
	ph := e.Phase
	if ph == "" {
		ph = "X"
	}
	m := map[string]any{
		"name": e.Name, "ph": ph,
		"ts": e.TsUS, "dur": e.DurUS,
		"pid": e.Pid, "tid": e.Tid,
	}
	if len(e.Args) > 0 {
		m["args"] = e.Args
	}
	return json.Marshal(m)
}

// WriteTraceEvents writes a Chrome trace-event JSON document (object
// form with a traceEvents array). An empty event slice produces a valid
// empty document — Perfetto accepts it — rather than an error, so
// zero-span runs and zero-layer timelines pipe cleanly into tooling.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	out := struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}{TraceEvents: []json.RawMessage{}}
	for _, e := range events {
		if e.TsUS < 0 || e.DurUS < 0 {
			return fmt.Errorf("obs: trace event %q has negative time", e.Name)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, raw)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChromeTrace exports every finished span as a complete event, one
// Chrome "thread" per span track named after the track's root span, so
// nested spans render as Perfetto flame slices. Nil-safe (writes a valid
// empty document).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Track != spans[j].Track {
			return spans[i].Track < spans[j].Track
		}
		return spans[i].Start < spans[j].Start
	})
	var events []TraceEvent
	trackName := map[int64]string{}
	for _, s := range spans {
		if s.ID == s.Track {
			trackName[s.Track] = s.Name
		}
		events = append(events, TraceEvent{
			Name: s.Name, Phase: "X",
			TsUS:  float64(s.Start.Nanoseconds()) / 1e3,
			DurUS: float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:   1, Tid: int(s.Track),
		})
	}
	tracks := make([]int64, 0, len(trackName))
	for tr := range trackName {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, tr := range tracks {
		events = append(events, TraceEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: int(tr),
			Args: map[string]any{"name": trackName[tr]},
		})
	}
	return WriteTraceEvents(w, events)
}
