package obs

import (
	"testing"
	"time"
)

// fakeClock returns a Clock that advances by step on every reading.
func fakeClock(step time.Duration) Clock {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	root := tr.Start("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.Parent != 0 {
		t.Fatalf("root parent %d, want 0", r.Parent)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %d, want root id %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Fatalf("grand parent %d, want child id %d", g.Parent, c.ID)
	}
	// Track groups a whole span tree under its root's ID.
	for name, s := range byName {
		if s.Track != r.ID {
			t.Fatalf("%s track %d, want root id %d", name, s.Track, r.ID)
		}
	}
	// The fake clock advances 1ms per reading: starts at 1,2,3ms and ends
	// span durations deterministically (grand ends first).
	if g.Dur <= 0 || c.Dur <= g.Dur || r.Dur <= c.Dur {
		t.Fatalf("durations not nested: root=%v child=%v grand=%v", r.Dur, c.Dur, g.Dur)
	}
	if !(r.Start < c.Start && c.Start < g.Start) {
		t.Fatalf("starts not ordered: %v %v %v", r.Start, c.Start, g.Start)
	}
}

func TestTracerSeparateRootsGetSeparateTracks(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	a := tr.Start("a")
	b := tr.Start("b")
	a.End()
	b.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if spans[0].Track == spans[1].Track {
		t.Fatal("independent roots must land on distinct tracks")
	}
}

func TestSpansReturnsCopy(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	sp := tr.Start("x")
	sp.End()
	got := tr.Spans()
	got[0].Name = "mutated"
	if tr.Spans()[0].Name != "x" {
		t.Fatal("Spans must return a copy, not the internal slice")
	}
}

func TestUnendedSpanNotRecorded(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	tr.Start("open") // never ended
	done := tr.Start("done")
	done.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "done" {
		t.Fatalf("spans = %+v, want only the ended span", spans)
	}
}

func TestObsWithSpanParenting(t *testing.T) {
	o := New()
	outer := o.Start("outer")
	inner := o.WithSpan(outer).Start("inner")
	inner.End()
	outer.End()
	spans := o.Trc.Spans()
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["inner"].Parent != byName["outer"].ID {
		t.Fatalf("inner parent %d, want outer id %d",
			byName["inner"].Parent, byName["outer"].ID)
	}
}
