package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofHandler returns the net/http/pprof endpoints on a private mux
// rooted at /debug/pprof/, so nothing is registered on
// http.DefaultServeMux. The ops server (internal/obs/ops) folds this
// into its listener; StartPprof serves it standalone.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof serves the profiling endpoints on addr (e.g.
// "localhost:6060") and returns the actual bound address — so ":0"
// callers learn the kernel-chosen port — plus a stop function. It
// listens before returning so a bad address fails fast. Profiling is
// strictly opt-in: nothing in this package starts a server unless asked.
func StartPprof(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: PprofHandler(), ReadHeaderTimeout: 5 * time.Second}
	go servePprof(srv, ln)
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// servePprof runs the profiling server until Close. Serve always
// returns a non-nil error — http.ErrServerClosed after a clean stop —
// and there is no channel to report an unclean one on; the endpoint is
// best-effort diagnostics, never load-bearing.
func servePprof(srv *http.Server, ln net.Listener) {
	_ = srv.Serve(ln)
}
