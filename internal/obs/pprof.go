package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the net/http/pprof endpoints on addr (e.g.
// "localhost:6060") and returns a stop function. It listens before
// returning so a bad address fails fast, and uses a private mux so
// nothing is registered on http.DefaultServeMux. Profiling is strictly
// opt-in: nothing in this package starts a server unless asked.
func StartPprof(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go servePprof(srv, ln)
	return func() { _ = srv.Close() }, nil
}

// servePprof runs the profiling server until Close. Serve always
// returns a non-nil error — http.ErrServerClosed after a clean stop —
// and there is no channel to report an unclean one on; the endpoint is
// best-effort diagnostics, never load-bearing.
func servePprof(srv *http.Server, ln net.Listener) {
	_ = srv.Serve(ln)
}
