package obs

import (
	"encoding/json"
	"io"
	"math"
)

// jsonlMetric is one registry series as a JSONL record.
type jsonlMetric struct {
	Kind    string        `json:"type"`
	Name    string        `json:"name"`
	Value   float64       `json:"value"`
	Count   uint64        `json:"count,omitempty"`
	Buckets []jsonlBucket `json:"buckets,omitempty"`
}

// jsonlBucket renders LE as a string so +Inf survives JSON.
type jsonlBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// jsonlSpan is one finished span as a JSONL record. Times are in
// microseconds to match the Chrome trace exporter.
type jsonlSpan struct {
	Kind    string  `json:"type"`
	Name    string  `json:"name"`
	ID      int64   `json:"id"`
	Parent  int64   `json:"parent"`
	Track   int64   `json:"track"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// WriteJSONL writes one JSON object per line for every metric series.
// Nil-safe (writes nothing).
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, p := range r.Snapshot() {
		rec := jsonlMetric{Kind: p.Type, Name: p.Name, Value: p.Value, Count: p.Count}
		for _, b := range p.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = formatPromValue(b.LE)
			}
			rec.Buckets = append(rec.Buckets, jsonlBucket{LE: le, Count: b.Count})
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per line for every finished span.
// Nil-safe (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(jsonlSpan{
			Kind: "span", Name: s.Name, ID: s.ID, Parent: s.Parent, Track: s.Track,
			StartUS: float64(s.Start.Nanoseconds()) / 1e3,
			DurUS:   float64(s.Dur.Nanoseconds()) / 1e3,
		}); err != nil {
			return err
		}
	}
	return nil
}
