// Package critpath reconstructs a training step's span DAG from the
// distributed trace and explains where the step's wall-clock time went:
// compute, communication, or waiting — per worker, with a named blame
// worker when one straggler's compute made everyone else idle.
//
// The input is the per-step slice of finished spans the trainer records
// (per-worker "compute" spans, per-op "ar.send"/"ar.recv"/"ar.wait"
// spans from the all-reduce transports) plus the clock-offset table a
// transport alignment handshake measured; every timestamp is aligned
// onto the reference worker's timeline before any comparison, so
// cross-worker causality is judged on one clock.
//
// Two mechanisms attribute waiting:
//
//   - Ring waits: an "ar.wait" span carries a causal link to the
//     cross-worker send that ended it. The link chain is walked
//     transitively (a sender that was itself waiting forwards the blame)
//     to the root-cause worker.
//
//   - Barrier waits: the trainer's join barrier runs between compute and
//     gradient sync, so a straggler never shows up as a long ring wait —
//     the ring starts only after everyone finished. The gap between a
//     worker's compute end and the first communication activity is
//     inferred idle time, attributed to the last worker to finish.
//
// The package is analytical over recorded spans: it runs nothing and
// times nothing itself, and its output is deterministic for a given
// span slice.
package critpath

import (
	"sort"
	"time"

	"convmeter/internal/obs"
)

// SchemaV1 identifies the critpath report format; cmd/obscheck
// validates files claiming it.
const SchemaV1 = "convmeter/critpath/v1"

// Span-name classification vocabulary. fwd/bwd spans are children of
// the per-worker compute span and are skipped to avoid double counting.
const (
	ClassCompute = "compute"
	ClassComm    = "comm"
	ClassWait    = "wait"
)

// classOf maps a span name to its attribution class, "" to skip.
func classOf(name string) string {
	switch name {
	case "compute":
		return ClassCompute
	case "ar.send", "ar.recv":
		return ClassComm
	case "ar.wait":
		return ClassWait
	}
	return ""
}

// defaultTolerance absorbs residual cross-worker clock error (the
// alignment handshake is accurate to a fraction of the link round-trip)
// when ordering activities across workers.
const defaultTolerance = 5 * time.Millisecond

// blameComputeFactor gates barrier-idle attribution: the last worker to
// finish compute is charged with the others' idle time only when its
// own compute ran at least this much longer than its peers' median.
const blameComputeFactor = 2

// blameMinCaused is the absolute floor for naming a culprit: below it a
// worker's caused wait is indistinguishable from host noise — a
// race-instrumented oversubscribed box shows multi-millisecond compute
// preemptions and ring-formation skew that root-cause to an arbitrary
// worker. A real straggler stalls every peer for its full delay (the
// fault injector's smallest is 80ms, multiplied by the number of idle
// peers), so the floor sits well below any genuine signal and well
// above observed scheduler artefacts.
const blameMinCaused = 50 * time.Millisecond

// WorkerAttribution is one worker's share of a step.
type WorkerAttribution struct {
	Worker  int     `json:"worker"`
	Compute float64 `json:"compute_seconds"`
	Comm    float64 `json:"comm_seconds"`
	Wait    float64 `json:"wait_seconds"`
	// CausedWait is the waiting time across ALL workers whose root
	// cause was this worker — the quantity blame is decided on.
	CausedWait float64 `json:"caused_wait_seconds"`
}

// PathNode is one segment of the step's critical path.
type PathNode struct {
	Span   int64  `json:"span"`
	Name   string `json:"name"`
	Worker int    `json:"worker"`
	Class  string `json:"class"`
	// Contribution is the wall-clock time this activity exclusively
	// occupied on the critical path (its duration minus any overlap
	// with its predecessor).
	Contribution float64 `json:"contribution_seconds"`
}

// StepAttribution is the full explanation of one training step.
type StepAttribution struct {
	Step  int     `json:"step"`
	Total float64 `json:"total_seconds"` // aligned span extent of the step

	// Aggregates summed across workers.
	Compute float64 `json:"compute_seconds"`
	Comm    float64 `json:"comm_seconds"`
	Wait    float64 `json:"wait_seconds"`

	// Dominant is the largest aggregate: compute, comm, wait — or none
	// when the step produced no classifiable worker spans.
	Dominant string `json:"dominant"`

	// Blame names the worker whose stalls dominate the waiting time
	// (only assigned when the step is wait-dominated and one worker
	// caused at least half of it); -1 means no one is blamed.
	Blame     int     `json:"blame"`
	BlameWait float64 `json:"blame_wait_seconds"`

	Workers []WorkerAttribution `json:"workers"`

	// Path is the reconstructed critical path, earliest segment first,
	// with its own per-class decomposition.
	Path        []PathNode `json:"path,omitempty"`
	PathCompute float64    `json:"path_compute_seconds"`
	PathComm    float64    `json:"path_comm_seconds"`
	PathWait    float64    `json:"path_wait_seconds"`
}

// activity is one classified, clock-aligned span.
type activity struct {
	rec        obs.SpanRecord
	start, end time.Duration // aligned onto the reference worker
	class      string
}

// AnalyzeStep attributes one step's time from its recorded spans.
// offsets is the transport handshake's clock-offset table (nil means
// all clocks already agree); spans from unknown workers align with
// offset zero. The result is deterministic for a given input.
func AnalyzeStep(step int, spans []obs.SpanRecord, offsets map[int]time.Duration) StepAttribution {
	att := StepAttribution{Step: step, Dominant: "none", Blame: -1}
	acts := make([]activity, 0, len(spans))
	for _, s := range spans {
		cl := classOf(s.Name)
		if cl == "" || s.Worker < 0 {
			continue
		}
		start := s.Start - offsets[s.Worker]
		acts = append(acts, activity{rec: s, start: start, end: start + s.Dur, class: cl})
	}
	if len(acts) == 0 {
		return att
	}
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].start != acts[j].start {
			return acts[i].start < acts[j].start
		}
		return acts[i].rec.ID < acts[j].rec.ID
	})
	byID := make(map[int64]*activity, len(acts))
	for i := range acts {
		byID[acts[i].rec.ID] = &acts[i]
	}

	// Per-worker aggregates.
	type agg struct {
		compute, comm, wait, caused time.Duration
		computeEnd                  time.Duration
		hasCompute                  bool
	}
	aggs := map[int]*agg{}
	workerAgg := func(w int) *agg {
		a := aggs[w]
		if a == nil {
			a = &agg{}
			aggs[w] = a
		}
		return a
	}
	minStart, maxEnd := acts[0].start, acts[0].end
	commStart := time.Duration(1<<63 - 1)
	for i := range acts {
		a := &acts[i]
		w := workerAgg(a.rec.Worker)
		d := a.end - a.start
		switch a.class {
		case ClassCompute:
			w.compute += d
			if !w.hasCompute || a.end > w.computeEnd {
				w.computeEnd, w.hasCompute = a.end, true
			}
		case ClassComm:
			w.comm += d
		case ClassWait:
			w.wait += d
		}
		if a.class != ClassCompute && a.start < commStart {
			commStart = a.start
		}
		if a.start < minStart {
			minStart = a.start
		}
		if a.end > maxEnd {
			maxEnd = a.end
		}
	}
	workers := make([]int, 0, len(aggs))
	for w := range aggs {
		workers = append(workers, w)
	}
	sort.Ints(workers)

	// Barrier-wait inference: the trainer's join barrier sits between
	// compute and the ring, so the gap from a worker's compute end to
	// the first communication activity is idle time the straggler — the
	// last worker to finish compute — caused. The idle always counts as
	// the waiting worker's wait, but it is only *attributed* when the
	// last finisher actually computed longer than its peers: on an
	// oversubscribed host the compute goroutines serialize and someone
	// is always last, yet a worker whose own compute duration matches
	// the others' is a scheduling artefact, not a straggler.
	if commStart < 1<<62 {
		lastW, lastEnd, found := -1, time.Duration(0), false
		for _, w := range workers {
			a := aggs[w]
			if a.hasCompute && (!found || a.computeEnd > lastEnd) {
				lastW, lastEnd, found = w, a.computeEnd, true
			}
		}
		if found {
			var peers []time.Duration
			for _, w := range workers {
				if w != lastW && aggs[w].hasCompute {
					peers = append(peers, aggs[w].compute)
				}
			}
			straggler := false
			if len(peers) > 0 {
				sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
				straggler = aggs[lastW].compute >= blameComputeFactor*peers[(len(peers)-1)/2]
			}
			for _, w := range workers {
				a := aggs[w]
				if !a.hasCompute {
					continue
				}
				if idle := commStart - a.computeEnd; idle > 0 {
					a.wait += idle
					if straggler {
						workerAgg(lastW).caused += idle
					}
				}
			}
		}
	}

	// Ring waits: walk each wait's causal link chain to its root-cause
	// worker.
	for i := range acts {
		a := &acts[i]
		if a.class != ClassWait {
			continue
		}
		if root, ok := rootCause(a, acts, byID); ok {
			workerAgg(root).caused += a.end - a.start
		}
	}

	// Assemble the report.
	att.Total = (maxEnd - minStart).Seconds()
	for _, w := range workers {
		a := aggs[w]
		att.Compute += a.compute.Seconds()
		att.Comm += a.comm.Seconds()
		att.Wait += a.wait.Seconds()
		att.Workers = append(att.Workers, WorkerAttribution{
			Worker:     w,
			Compute:    a.compute.Seconds(),
			Comm:       a.comm.Seconds(),
			Wait:       a.wait.Seconds(),
			CausedWait: a.caused.Seconds(),
		})
	}
	switch {
	case att.Compute >= att.Comm && att.Compute >= att.Wait:
		att.Dominant = ClassCompute
	case att.Comm >= att.Wait:
		att.Dominant = ClassComm
	default:
		att.Dominant = ClassWait
	}
	if att.Dominant == ClassWait {
		blame, caused := -1, 0.0
		for _, wa := range att.Workers {
			if wa.CausedWait > caused {
				blame, caused = wa.Worker, wa.CausedWait
			}
		}
		// Blame needs a clear majority culprit above the jitter floor,
		// not diffuse sub-centisecond noise.
		if blame >= 0 && caused >= 0.5*att.Wait && caused >= blameMinCaused.Seconds() {
			att.Blame, att.BlameWait = blame, caused
		}
	}

	att.Path, att.PathCompute, att.PathComm, att.PathWait = criticalPath(acts, byID)
	return att
}

// rootCause walks a wait's causal link chain: the linked sender ended
// the wait; if the sender's own latest preceding activity was itself a
// linked wait, the blame forwards. Reports false when the chain dangles
// (the linked span was never recorded — a faulted sender).
func rootCause(a *activity, acts []activity, byID map[int64]*activity) (int, bool) {
	cur := a
	for depth := 0; depth < 1<<10; depth++ {
		if !cur.rec.Link.Valid() {
			return cur.rec.Worker, true
		}
		sender, ok := byID[cur.rec.Link.Span]
		if !ok {
			return 0, false
		}
		prev := latestBefore(acts, sender.rec.Worker, sender.start, sender.rec.ID)
		if prev != nil && prev.class == ClassWait && prev.rec.Link.Valid() {
			cur = prev
			continue
		}
		return sender.rec.Worker, true
	}
	return cur.rec.Worker, true
}

// latestBefore returns the latest activity that started strictly before
// t and ended by t (within the clock tolerance), excluding span exclID;
// w restricts to one worker, w < 0 searches all workers. Nil when none.
func latestBefore(acts []activity, w int, t time.Duration, exclID int64) *activity {
	var best *activity
	for i := range acts {
		a := &acts[i]
		if (w >= 0 && a.rec.Worker != w) || a.rec.ID == exclID ||
			a.start >= t || a.end > t+defaultTolerance {
			continue
		}
		if best == nil || a.end > best.end ||
			(a.end == best.end && a.rec.ID > best.rec.ID) {
			best = a
		}
	}
	return best
}

// criticalPath walks backward from the step's last-finishing activity:
// a linked wait jumps to the cross-worker send that released it, any
// other activity chains to the latest earlier activity on its own
// worker. Each node contributes the wall-clock it exclusively occupied.
func criticalPath(acts []activity, byID map[int64]*activity) ([]PathNode, float64, float64, float64) {
	if len(acts) == 0 {
		return nil, 0, 0, 0
	}
	cur := &acts[0]
	for i := range acts {
		a := &acts[i]
		if a.end > cur.end || (a.end == cur.end && a.rec.ID > cur.rec.ID) {
			cur = a
		}
	}
	var rev []PathNode
	var compute, comm, wait float64
	visited := map[int64]bool{}
	for cur != nil && !visited[cur.rec.ID] {
		visited[cur.rec.ID] = true
		var pred *activity
		if cur.class == ClassWait && cur.rec.Link.Valid() {
			pred = byID[cur.rec.Link.Span]
		}
		if pred == nil {
			// Any-worker search so the walk bridges the join barrier:
			// the activity that released a barrier-gated op is the last
			// compute to finish, which lives on another worker and left
			// no explicit link.
			pred = latestBefore(acts, -1, cur.start, cur.rec.ID)
		}
		boundary := cur.start
		if pred != nil && pred.end > boundary {
			boundary = pred.end
		}
		if boundary > cur.end {
			boundary = cur.end
		}
		contribution := (cur.end - boundary).Seconds()
		rev = append(rev, PathNode{
			Span: cur.rec.ID, Name: cur.rec.Name, Worker: cur.rec.Worker,
			Class: cur.class, Contribution: contribution,
		})
		switch cur.class {
		case ClassCompute:
			compute += contribution
		case ClassComm:
			comm += contribution
		case ClassWait:
			wait += contribution
		}
		cur = pred
	}
	path := make([]PathNode, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path, compute, comm, wait
}
