package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"convmeter/internal/obs"
)

// Validate checks a step attribution's internal consistency — the same
// invariants cmd/obscheck enforces on exported reports.
func Validate(a StepAttribution) error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"total", a.Total}, {"compute", a.Compute}, {"comm", a.Comm},
		{"wait", a.Wait}, {"blame_wait", a.BlameWait},
		{"path_compute", a.PathCompute}, {"path_comm", a.PathComm},
		{"path_wait", a.PathWait},
	} {
		if v.val < 0 || math.IsNaN(v.val) {
			return fmt.Errorf("critpath: step %d: %s_seconds = %g", a.Step, v.name, v.val)
		}
	}
	switch a.Dominant {
	case ClassCompute, ClassComm, ClassWait, "none":
	default:
		return fmt.Errorf("critpath: step %d: dominant %q", a.Step, a.Dominant)
	}
	if a.Blame >= 0 {
		if a.Dominant != ClassWait {
			return fmt.Errorf("critpath: step %d: blame %d with dominant %q", a.Step, a.Blame, a.Dominant)
		}
		found := false
		for _, w := range a.Workers {
			if w.Worker == a.Blame {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("critpath: step %d: blamed worker %d not in attribution", a.Step, a.Blame)
		}
	}
	for i := 1; i < len(a.Workers); i++ {
		if a.Workers[i].Worker <= a.Workers[i-1].Worker {
			return fmt.Errorf("critpath: step %d: workers not sorted", a.Step)
		}
	}
	for _, n := range a.Path {
		if n.Contribution < 0 {
			return fmt.Errorf("critpath: step %d: path node %d contribution %g",
				a.Step, n.Span, n.Contribution)
		}
	}
	return nil
}

// Report is the exported critpath artefact: the retained step
// attributions, newest last.
type Report struct {
	Schema string            `json:"schema"`
	Steps  []StepAttribution `json:"steps"`
}

// trackerRing bounds Tracker memory on long runs.
const trackerRing = 128

// Tracker retains the most recent step attributions and mirrors the
// latest one onto convmeter_critpath_* gauges, so the ops server can
// serve both a JSON report and live scrapeable metrics. Nil-safe: a nil
// *Tracker records nothing.
type Tracker struct {
	mu    sync.Mutex
	steps []StepAttribution
	next  int
	full  bool

	compute, comm, wait *obs.Gauge
	blame, blameWait    *obs.Gauge
	count               *obs.Counter
	blamed              *obs.Counter
}

// NewTracker returns a tracker publishing gauges on o (which may be nil
// — the tracker still retains attributions for the report).
func NewTracker(o *obs.Obs) *Tracker {
	return &Tracker{
		compute: o.Gauge("convmeter_critpath_compute_seconds",
			"last analyzed step: compute time summed across workers"),
		comm: o.Gauge("convmeter_critpath_comm_seconds",
			"last analyzed step: communication time summed across workers"),
		wait: o.Gauge("convmeter_critpath_wait_seconds",
			"last analyzed step: waiting time summed across workers"),
		blame: o.Gauge("convmeter_critpath_blame_worker",
			"worker blamed for the last analyzed step's waits; -1 when none"),
		blameWait: o.Gauge("convmeter_critpath_blame_wait_seconds",
			"waiting time attributed to the blamed worker; 0 when no blame"),
		count: o.Counter("convmeter_critpath_steps_total",
			"training steps analyzed by the critical-path engine"),
		blamed: o.Counter("convmeter_critpath_blamed_steps_total",
			"analyzed steps whose waits were blamed on a specific worker"),
	}
}

// Record retains one step attribution and refreshes the gauges.
// Nil-safe.
func (t *Tracker) Record(a StepAttribution) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.steps) < trackerRing {
		t.steps = append(t.steps, a)
	} else {
		t.steps[t.next] = a
		t.full = true
	}
	t.next = (t.next + 1) % trackerRing
	t.mu.Unlock()
	t.compute.Set(a.Compute)
	t.comm.Set(a.Comm)
	t.wait.Set(a.Wait)
	t.blame.Set(float64(a.Blame))
	t.blameWait.Set(a.BlameWait)
	t.count.Inc()
	if a.Blame >= 0 {
		// A rate over this counter is what the critpath-blame alert rule
		// watches: blamed steps, not merely analyzed ones.
		t.blamed.Inc()
	}
}

// Report snapshots the retained attributions, oldest first. Nil-safe
// (returns an empty, schema-stamped report).
func (t *Tracker) Report() Report {
	rep := Report{Schema: SchemaV1, Steps: []StepAttribution{}}
	if t == nil {
		return rep
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		rep.Steps = append(rep.Steps, t.steps[t.next:]...)
		rep.Steps = append(rep.Steps, t.steps[:t.next]...)
	} else {
		rep.Steps = append(rep.Steps, t.steps...)
	}
	return rep
}

// WriteJSON writes the report as indented JSON. Nil-safe (writes a
// valid empty report).
func (t *Tracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Report())
}
