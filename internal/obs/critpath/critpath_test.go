package critpath

import (
	"strings"
	"testing"
	"time"

	"convmeter/internal/obs"
)

const ms = time.Millisecond

// rec builds one finished-span record; link 0 means no causal link.
func rec(id int64, name string, w int, start, dur time.Duration, link int64) obs.SpanRecord {
	r := obs.SpanRecord{Name: name, ID: id, Track: 1, Start: start, Dur: dur, Worker: w}
	if link != 0 {
		r.Link = obs.SpanContext{Trace: 1, Span: link}
	}
	return r
}

// stragglerSpans models a 3-worker step where worker 0's compute runs
// 100ms while the others finish in ~10ms, then a short ring phase:
// send [100,101], wait [101,105] linked to the predecessor's send,
// recv [105,106].
func stragglerSpans() []obs.SpanRecord {
	spans := []obs.SpanRecord{
		rec(1, "compute", 0, 0, 100*ms, 0),
		rec(2, "compute", 1, 0, 10*ms, 0),
		rec(3, "compute", 2, 0, 12*ms, 0),
	}
	// Ring sends get ids 10+w; worker w's wait links to worker
	// (w-1+3)%3's send.
	for w := 0; w < 3; w++ {
		spans = append(spans, rec(int64(10+w), "ar.send", w, 100*ms, ms, 0))
	}
	for w := 0; w < 3; w++ {
		pred := int64(10 + (w+2)%3)
		spans = append(spans, rec(int64(20+w), "ar.wait", w, 101*ms, 4*ms, pred))
		spans = append(spans, rec(int64(30+w), "ar.recv", w, 105*ms, ms, 0))
	}
	return spans
}

func TestAnalyzeStepBlamesStraggler(t *testing.T) {
	att := AnalyzeStep(7, stragglerSpans(), nil)
	if err := Validate(att); err != nil {
		t.Fatal(err)
	}
	if att.Step != 7 {
		t.Fatalf("step = %d", att.Step)
	}
	if att.Dominant != ClassWait {
		t.Fatalf("dominant = %q, want wait (att %+v)", att.Dominant, att)
	}
	if att.Blame != 0 {
		t.Fatalf("blame = %d, want straggler 0 (workers %+v)", att.Blame, att.Workers)
	}
	// Barrier idles: worker 1 waits 90ms, worker 2 waits 88ms — all
	// caused by worker 0, plus the ring waits rooted at it.
	if att.BlameWait < 0.178 {
		t.Fatalf("blame_wait = %g, want >= 178ms of caused idle", att.BlameWait)
	}
	if len(att.Workers) != 3 {
		t.Fatalf("workers = %+v", att.Workers)
	}
	if w1 := att.Workers[1]; w1.Wait < 0.090 {
		t.Fatalf("worker 1 wait = %g, want >= inferred 90ms barrier idle", w1.Wait)
	}
	// The critical path must exist and start inside the straggler's
	// compute.
	if len(att.Path) == 0 {
		t.Fatal("empty critical path")
	}
	if first := att.Path[0]; first.Class != ClassCompute || first.Worker != 0 {
		t.Fatalf("path starts at %+v, want worker 0 compute", first)
	}
	if att.PathCompute < 0.090 {
		t.Fatalf("path compute = %g, want the straggler's 100ms dominating", att.PathCompute)
	}
}

func TestAnalyzeStepCleanComputeDominated(t *testing.T) {
	spans := []obs.SpanRecord{
		rec(1, "compute", 0, 0, 50*ms, 0),
		rec(2, "compute", 1, 0, 49*ms, 0),
		rec(3, "compute", 2, 0, 50*ms, 0),
	}
	for w := 0; w < 3; w++ {
		spans = append(spans, rec(int64(10+w), "ar.send", w, 50*ms, ms, 0))
		spans = append(spans, rec(int64(20+w), "ar.wait", w, 51*ms, ms, int64(10+(w+2)%3)))
		spans = append(spans, rec(int64(30+w), "ar.recv", w, 52*ms, ms, 0))
	}
	att := AnalyzeStep(0, spans, nil)
	if err := Validate(att); err != nil {
		t.Fatal(err)
	}
	if att.Dominant != ClassCompute {
		t.Fatalf("dominant = %q, want compute (att %+v)", att.Dominant, att)
	}
	if att.Blame != -1 {
		t.Fatalf("blame = %d, want -1 on a clean step", att.Blame)
	}
}

// TestAnalyzeStepAlignsClocks: worker 1's spans are recorded on a clock
// 7ms ahead; with the measured offset supplied, the attribution must
// match the skew-free run exactly.
func TestAnalyzeStepAlignsClocks(t *testing.T) {
	base := stragglerSpans()
	skewed := make([]obs.SpanRecord, len(base))
	copy(skewed, base)
	for i, s := range skewed {
		if s.Worker == 1 {
			skewed[i].Start += 7 * ms
		}
	}
	want := AnalyzeStep(3, base, nil)
	got := AnalyzeStep(3, skewed, map[int]time.Duration{1: 7 * ms})
	if got.Dominant != want.Dominant || got.Blame != want.Blame ||
		got.Wait != want.Wait || got.Compute != want.Compute {
		t.Fatalf("aligned attribution differs:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestRootCauseTransitive: worker 2 waits on worker 1's send, but
// worker 1 was itself waiting on worker 0 right before sending — the
// blame must forward to worker 0.
func TestRootCauseTransitive(t *testing.T) {
	spans := []obs.SpanRecord{
		rec(1, "ar.send", 0, 90*ms, ms, 0),    // the root cause's send
		rec(2, "ar.wait", 1, 10*ms, 81*ms, 1), // worker 1 stuck on worker 0
		rec(3, "ar.send", 1, 91*ms, ms, 0),    // then forwards
		rec(4, "ar.wait", 2, 10*ms, 82*ms, 3), // worker 2 stuck on worker 1
	}
	att := AnalyzeStep(0, spans, nil)
	var caused0 float64
	for _, w := range att.Workers {
		if w.Worker == 0 {
			caused0 = w.CausedWait
		}
	}
	// Both waits (81ms + 82ms) must be rooted at worker 0.
	if caused0 < 0.160 {
		t.Fatalf("worker 0 caused_wait = %g, want both waits (~163ms)", caused0)
	}
}

// TestAnalyzeStepSerializedComputeNoBlame: on an oversubscribed host
// the equal-duration compute goroutines run one after another, so the
// early finishers idle at the barrier and the step can read as
// wait-dominated — but nobody computed longer than their peers, so no
// one may be blamed for the scheduler's interleaving.
func TestAnalyzeStepSerializedComputeNoBlame(t *testing.T) {
	spans := []obs.SpanRecord{
		rec(1, "compute", 0, 0, 30*ms, 0),
		rec(2, "compute", 1, 30*ms, 29*ms, 0),
		rec(3, "compute", 2, 60*ms, 30*ms, 0),
	}
	for w := 0; w < 3; w++ {
		spans = append(spans, rec(int64(10+w), "ar.send", w, 90*ms, ms, 0))
		spans = append(spans, rec(int64(20+w), "ar.wait", w, 91*ms, ms, int64(10+(w+2)%3)))
	}
	att := AnalyzeStep(0, spans, nil)
	if err := Validate(att); err != nil {
		t.Fatal(err)
	}
	if att.Blame != -1 {
		t.Fatalf("blame = %d on serialized equal computes, want -1 (att %+v)", att.Blame, att)
	}
	// The idle time is still real wait for the early finishers.
	if att.Workers[0].Wait < 0.059 {
		t.Fatalf("worker 0 wait = %g, want ~60ms barrier idle", att.Workers[0].Wait)
	}
}

// TestAnalyzeStepJitterBelowFloorNoBlame: the same wait-dominated shape
// as the straggler fixture but at microsecond scale — stalls this small
// are scheduler jitter on a busy host, and naming a culprit for them
// would make blame flap on clean runs.
func TestAnalyzeStepJitterBelowFloorNoBlame(t *testing.T) {
	us := time.Microsecond
	spans := []obs.SpanRecord{
		rec(1, "compute", 0, 0, 900*us, 0),
		rec(2, "compute", 1, 0, 100*us, 0),
		rec(3, "compute", 2, 0, 120*us, 0),
	}
	for w := 0; w < 3; w++ {
		spans = append(spans, rec(int64(10+w), "ar.send", w, 900*us, 10*us, 0))
		spans = append(spans, rec(int64(20+w), "ar.wait", w, 910*us, 40*us, int64(10+(w+2)%3)))
	}
	att := AnalyzeStep(0, spans, nil)
	if err := Validate(att); err != nil {
		t.Fatal(err)
	}
	if att.Dominant != ClassWait {
		t.Fatalf("dominant = %q, want wait (att %+v)", att.Dominant, att)
	}
	if att.Blame != -1 {
		t.Fatalf("blame = %d on sub-millisecond jitter, want -1 (att %+v)", att.Blame, att)
	}
}

func TestAnalyzeStepEmpty(t *testing.T) {
	att := AnalyzeStep(5, nil, nil)
	if err := Validate(att); err != nil {
		t.Fatal(err)
	}
	if att.Dominant != "none" || att.Blame != -1 || len(att.Workers) != 0 {
		t.Fatalf("empty attribution = %+v", att)
	}
}

// TestAnalyzeStepDanglingLink: a wait linking to a span that was never
// recorded (a faulted sender) must not panic or misattribute — the
// dangling wait simply contributes no caused-wait.
func TestAnalyzeStepDanglingLink(t *testing.T) {
	spans := []obs.SpanRecord{
		rec(1, "compute", 0, 0, 10*ms, 0),
		rec(2, "ar.wait", 0, 10*ms, 5*ms, 999), // link target missing
	}
	att := AnalyzeStep(0, spans, nil)
	if err := Validate(att); err != nil {
		t.Fatal(err)
	}
	for _, w := range att.Workers {
		if w.CausedWait != 0 {
			t.Fatalf("dangling link attributed caused_wait: %+v", w)
		}
	}
}

func TestTrackerRingAndReport(t *testing.T) {
	tr := NewTracker(nil)
	for i := 0; i < trackerRing+2; i++ {
		tr.Record(StepAttribution{Step: i, Dominant: "none", Blame: -1})
	}
	rep := tr.Report()
	if rep.Schema != SchemaV1 {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Steps) != trackerRing {
		t.Fatalf("%d retained steps, want %d", len(rep.Steps), trackerRing)
	}
	if rep.Steps[0].Step != 2 || rep.Steps[len(rep.Steps)-1].Step != trackerRing+1 {
		t.Fatalf("ring order wrong: first %d last %d",
			rep.Steps[0].Step, rep.Steps[len(rep.Steps)-1].Step)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), SchemaV1) {
		t.Fatalf("report JSON missing schema:\n%s", sb.String())
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Record(StepAttribution{})
	rep := tr.Report()
	if rep.Schema != SchemaV1 || len(rep.Steps) != 0 {
		t.Fatalf("nil tracker report = %+v", rep)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerGauges: recording must mirror the attribution onto the
// convmeter_critpath_* gauges.
func TestTrackerGauges(t *testing.T) {
	o := obs.New()
	tr := NewTracker(o)
	tr.Record(StepAttribution{
		Step: 1, Compute: 0.5, Comm: 0.1, Wait: 1.5,
		Dominant: ClassWait, Blame: 3, BlameWait: 1.2,
	})
	checks := map[string]float64{
		"convmeter_critpath_compute_seconds":    0.5,
		"convmeter_critpath_comm_seconds":       0.1,
		"convmeter_critpath_wait_seconds":       1.5,
		"convmeter_critpath_blame_worker":       3,
		"convmeter_critpath_blame_wait_seconds": 1.2,
	}
	for name, want := range checks {
		if got := o.Gauge(name, "").Value(); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if got := o.Counter("convmeter_critpath_steps_total", "").Value(); got != 1 {
		t.Errorf("steps_total = %g", got)
	}
}
