package obs

import (
	"sync"
	"time"
)

// SpanContext identifies an in-flight span compactly enough to cross a
// transport boundary: the trace (track) it belongs to and the span
// itself. The zero value means "no context" — transports propagate it
// unconditionally, so a disabled tracer costs two zero int64s on the
// wire and nothing else.
type SpanContext struct {
	Trace int64 `json:"trace"`
	Span  int64 `json:"span"`
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Span != 0 }

// Context returns the span's propagatable identity. Nil-safe (returns
// the zero, invalid context) and allocation-free, so hot transport paths
// call it unconditionally.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.track, Span: s.id}
}

// LinkTo records a causal link from s to a span received from another
// worker — "this wait ended because that send happened". Nil-safe and
// allocation-free; linking to an invalid context is a no-op. The last
// link wins if called twice.
func (s *Span) LinkTo(ctx SpanContext) {
	if s == nil || !ctx.Valid() {
		return
	}
	s.link = ctx
}

// OffsetTable maps worker id → measured clock offset, the output of a
// transport clock-alignment handshake. Subtracting Get(w) from a span
// timestamp recorded on worker w's (possibly skewed) clock moves it onto
// worker 0's timeline. Safe for concurrent use; the zero value is ready.
// A nil *OffsetTable reads as all-zero offsets.
type OffsetTable struct {
	mu  sync.Mutex
	off map[int]time.Duration
}

// Set records worker w's clock offset relative to the reference worker.
func (t *OffsetTable) Set(w int, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.off == nil {
		t.off = make(map[int]time.Duration)
	}
	t.off[w] = d
	t.mu.Unlock()
}

// Get returns worker w's offset, zero when unknown. Nil-safe.
func (t *OffsetTable) Get(w int) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.off[w]
}

// Snapshot returns a copy of the table, nil when empty. Nil-safe.
func (t *OffsetTable) Snapshot() map[int]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.off) == 0 {
		return nil
	}
	m := make(map[int]time.Duration, len(t.off))
	for w, d := range t.off {
		m[w] = d
	}
	return m
}
