// Package obs is ConvMeter's runtime telemetry layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms), lightweight
// span tracing with parent/child nesting on a monotonic clock, and three
// exporters — Prometheus text, JSONL event log, and Chrome trace-event JSON
// (the format Perfetto and chrome://tracing read).
//
// The package depends only on the standard library and lives strictly on
// the *measured* side of the repository's analytical/measured boundary
// (see lint.config): it observes code that runs, simulates, or times
// things, and must never be imported by the analytical packages whose
// whole claim is that they compute without running anything.
//
// Every operation is nil-safe: a nil *Obs, *Registry, *Tracer, *Counter,
// *Gauge, *Histogram, or *Span is a true no-op, so instrumented hot paths
// pay nothing — zero allocations, no atomics — when telemetry is off.
// Callers therefore plumb a possibly-nil *Obs through unconditionally and
// never guard call sites (handle creation aside, which allocates and
// belongs outside loops).
package obs

import (
	"strings"
	"time"
)

// Obs bundles a metrics Registry and a span Tracer with an optional
// parent span, so instrumented packages take one handle instead of three.
// The zero of everything is off: a nil *Obs disables all telemetry.
type Obs struct {
	Reg *Registry
	Trc *Tracer

	// parent, when set, becomes the parent of spans started via Start —
	// the mechanism by which e.g. an experiment's span adopts the
	// fwd/bwd/grad spans created deep inside exec and train.
	parent *Span

	// worker, when non-zero, attributes spans started via Start to
	// worker id worker-1 (the +1 keeps the zero value meaning "unset").
	worker int

	// skew simulates a per-worker clock offset: spans started via Start
	// record timestamps as if read from a clock running skew ahead of
	// the tracer's. The alignment handshake measures it back out.
	skew time.Duration
}

// New returns an enabled Obs with a fresh registry and tracer.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Trc: NewTracer()}
}

// WithSpan returns a copy of o whose Start creates children of s. A nil
// receiver stays nil; a nil s resets to root spans.
func (o *Obs) WithSpan(s *Span) *Obs {
	if o == nil {
		return nil
	}
	c := *o
	c.parent = s
	return &c
}

// WithWorker returns a copy of o that attributes spans started via
// Start to worker w. Nil receiver stays nil.
func (o *Obs) WithWorker(w int) *Obs {
	if o == nil {
		return nil
	}
	c := *o
	c.worker = w + 1
	return &c
}

// WithClockSkew returns a copy of o whose spans carry timestamps shifted
// by d, simulating a worker whose clock disagrees with the tracer's.
// Nil receiver stays nil.
func (o *Obs) WithClockSkew(d time.Duration) *Obs {
	if o == nil {
		return nil
	}
	c := *o
	c.skew = d
	return &c
}

// Start begins a span: a child of the bundle's parent span when one is
// set, a root span otherwise. Returns nil (a no-op span) when disabled.
// A bundle worker or clock skew overrides whatever the parent span
// would have passed down.
func (o *Obs) Start(name string) *Span {
	if o == nil {
		return nil
	}
	var s *Span
	if o.parent != nil {
		s = o.parent.Child(name)
	} else {
		s = o.Trc.Start(name)
	}
	if s != nil {
		if o.worker != 0 {
			s.worker = o.worker
		}
		if o.skew != 0 {
			s.skew = o.skew
		}
	}
	return s
}

// Counter registers or fetches a counter; nil when disabled.
func (o *Obs) Counter(name, help string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name, help)
}

// Gauge registers or fetches a gauge; nil when disabled.
func (o *Obs) Gauge(name, help string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name, help)
}

// Histogram registers or fetches a histogram; nil when disabled.
func (o *Obs) Histogram(name, help string, buckets []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, help, buckets)
}

// Label renders a series name with Prometheus-style labels:
// Label("x_total", "kind", "conv2d") == `x_total{kind="conv2d"}`.
// kv must alternate key, value; label values are escaped per the
// Prometheus text format (backslash, double quote, newline).
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: Label takes alternating key, value pairs")
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(kv[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the Prometheus label-value escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// splitSeries separates a series name into its base (family) name and the
// label body, without braces: `x{k="v"}` → ("x", `k="v"`).
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}
