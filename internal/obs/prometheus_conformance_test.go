package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// conformanceRegistry builds a registry exercising every exposition
// feature the text format defines: all three family types, labelled
// and unlabelled series, label-value escaping (backslash, quote,
// newline), HELP escaping, multi-series families, and special float
// values.
func conformanceRegistry() *Registry {
	r := NewRegistry()
	r.Counter("convmeter_conf_total", "plain counter").Add(3)
	r.Counter(Label("convmeter_conf_labeled_total", "model", "vgg16", "phase", "train"),
		"labelled counter").Add(7)
	r.Counter(Label("convmeter_conf_labeled_total", "model", "res\\net\"50\nv2", "phase", "eval"),
		"labelled counter").Add(1)
	r.Gauge("convmeter_conf_gauge", "help with \\ backslash and\nnewline").Set(2.5)
	r.Gauge("convmeter_conf_inf_gauge", "special values").Set(4e9)
	h := r.Histogram(Label("convmeter_conf_seconds", "op", "fwd"),
		"labelled histogram", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // beyond the last finite bound: +Inf bucket only
	r.Histogram("convmeter_conf_plain_seconds", "bare histogram", []float64{1, 2}).Observe(1.5)
	return r
}

// TestPrometheusExpositionGolden locks the exact exposition byte-for-
// byte. Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs -run
// ExpositionGolden after a deliberate format change.
func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := conformanceRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusConformance checks the structural rules of the text
// exposition format on the rendered output, independent of the golden
// bytes: comment ordering, metadata coverage, bucket invariants and
// escaping.
func TestPrometheusConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := conformanceRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families := map[string]*confFamily{}
	var order []string
	current := ""
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if f, ok := families[name]; ok && f.sampleSeen {
				t.Errorf("# HELP %s appears after its samples", name)
			}
			fam := familyFor(families, &order, name)
			fam.help = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if f, ok := families[fields[0]]; ok && f.sampleSeen {
				t.Errorf("# TYPE %s appears after its samples", fields[0])
			}
			fam := familyFor(families, &order, fields[0])
			fam.typ = fields[1]
		case line == "":
			t.Error("blank line in exposition")
		default:
			series, _, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed sample line %q", line)
			}
			base := series
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if fam := strings.TrimSuffix(base, suffix); fam != base {
					if f, ok := families[fam]; ok && f.typ == "histogram" {
						base = fam
					}
				}
			}
			f, ok := families[base]
			if !ok {
				t.Errorf("sample %q precedes its # TYPE metadata", series)
				continue
			}
			f.sampleSeen = true
			if strings.Contains(series, "_bucket{") {
				f.bucketLines = append(f.bucketLines, line)
			}
			current = base
		}
	}
	_ = current
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(families) == 0 {
		t.Fatal("no families parsed")
	}
	for name, f := range families {
		if f.typ == "" {
			t.Errorf("family %s has no # TYPE", name)
		}
		if f.typ != "counter" && f.typ != "gauge" && f.typ != "histogram" {
			t.Errorf("family %s has invalid type %q", name, f.typ)
		}
		if f.typ == "histogram" {
			// Every labelled histogram series must end in a +Inf bucket,
			// and bucket counts must be cumulative (non-decreasing).
			bySeries := map[string][]string{}
			for _, line := range f.bucketLines {
				key := line[:strings.Index(line, `le="`)]
				bySeries[key] = append(bySeries[key], line)
			}
			for key, lines := range bySeries {
				lastLine := lines[len(lines)-1]
				if !strings.Contains(lastLine, `le="+Inf"`) {
					t.Errorf("histogram series %s… does not end in a +Inf bucket: %q", key, lastLine)
				}
				prev := -1.0
				for _, line := range lines {
					var c float64
					if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &c); err != nil {
						t.Fatalf("bucket line %q: %v", line, err)
					}
					if c < prev {
						t.Errorf("histogram series %s… buckets not cumulative: %q", key, line)
					}
					prev = c
				}
			}
		}
	}
	// Escaping: the raw label value with backslash, quote and newline
	// must appear escaped, never raw.
	out := buf.String()
	if !strings.Contains(out, `model="res\\net\"50\nv2"`) {
		t.Errorf("label escaping missing, output:\n%s", out)
	}
	if strings.Contains(out, "res\\net\"50\nv2") {
		t.Error("raw (unescaped) label value leaked into the exposition")
	}
	if !strings.Contains(out, `# HELP convmeter_conf_gauge help with \\ backslash and\nnewline`) {
		t.Error("HELP escaping drifted")
	}
}

// confFamily accumulates one family's parsed exposition state.
type confFamily struct {
	help, typ   string
	bucketLines []string
	sampleSeen  bool
}

func familyFor(m map[string]*confFamily, order *[]string, name string) *confFamily {
	if f, ok := m[name]; ok {
		return f
	}
	f := &confFamily{}
	m[name] = f
	*order = append(*order, name)
	return f
}
