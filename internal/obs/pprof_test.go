package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestStartPprofReportsBoundAddr: with ":0" the caller must learn the
// kernel-chosen port, and the reported address must actually serve the
// pprof index.
func TestStartPprofReportsBoundAddr(t *testing.T) {
	bound, stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if strings.HasSuffix(bound, ":0") {
		t.Fatalf("bound address %q still has port 0", bound)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", bound))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%s", body)
	}
}

func TestStartPprofBadAddr(t *testing.T) {
	if _, _, err := StartPprof("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address accepted")
	}
}
