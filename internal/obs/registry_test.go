package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("convmeter_test_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value %g, want 3.5", got)
	}
	if again := r.Counter("convmeter_test_total", "other help"); again != c {
		t.Fatal("re-registering a counter must return the same handle")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("convmeter_test_gauge", "help")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value %g, want 2.5", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("convmeter_test_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 106.5 {
		t.Fatalf("sum %g, want 106.5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("%d points, want 1", len(snap))
	}
	b := snap[0].Buckets
	// Cumulative: <=1 holds {0.5, 1}, <=10 adds {5}, +Inf adds {100}.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if b[i].Count != w {
			t.Fatalf("bucket %d count %d, want %d", i, b[i].Count, w)
		}
	}
	if !math.IsInf(b[2].LE, 1) {
		t.Fatalf("last bucket bound %g, want +Inf", b[2].LE)
	}
}

func TestSearchBucket(t *testing.T) {
	upper := []float64{1, 10, 100}
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1, 0}, {1.01, 1}, {10, 1}, {99, 2}, {100, 2}, {101, 3}}
	for _, c := range cases {
		if got := searchBucket(upper, c.v); got != c.want {
			t.Errorf("searchBucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestFamilyTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("convmeter_family_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a counter family as a gauge must panic")
		}
	}()
	r.Gauge(Label("convmeter_family_total", "k", "v"), "help")
}

func TestLabelledSeriesShareOneFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(Label("convmeter_ops_total", "kind", "conv"), "help")
	b := r.Counter(Label("convmeter_ops_total", "kind", "linear"), "help")
	if a == b {
		t.Fatal("distinct label sets must get distinct handles")
	}
	a.Add(2)
	b.Add(3)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("%d points, want 2", len(snap))
	}
	for _, p := range snap {
		if p.Base != "convmeter_ops_total" {
			t.Fatalf("base %q, want convmeter_ops_total", p.Base)
		}
	}
}

func TestLabelRendering(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Fatalf("no-label render %q", got)
	}
	got := Label("x_total", "kind", "conv2d", "dev", "a100")
	if got != `x_total{kind="conv2d",dev="a100"}` {
		t.Fatalf("label render %q", got)
	}
	esc := Label("x", "k", "a\"b\\c\nd")
	if esc != `x{k="a\"b\\c\nd"}` {
		t.Fatalf("escaped render %q", esc)
	}
	base, labels := splitSeries(got)
	if base != "x_total" || !strings.Contains(labels, `kind="conv2d"`) {
		t.Fatalf("splitSeries -> %q, %q", base, labels)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("convmeter_conc_total", "help")
	h := r.Histogram("convmeter_conc_seconds", "help", DefaultDurationBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("concurrent counter %g, want %d", got, workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("concurrent histogram count %d, want %d", h.Count(), workers*per)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	var r *Registry
	// None of these may panic.
	o.Counter("x", "h").Inc()
	o.Gauge("x2", "h").Set(1)
	o.Histogram("x3", "h", DefaultDurationBuckets()).Observe(1)
	o.Start("span").Child("c").End()
	o.WithSpan(nil).Start("s").End()
	r.Counter("x", "h").Add(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := o.Export("", ""); err != nil {
		t.Fatalf("nil Obs export: %v", err)
	}
}

// TestDisabledPathZeroAllocs pins the core contract: with telemetry off
// (nil handles), instrumented hot paths allocate nothing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var sp *Span
	var o *Obs
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(3)
		sp.End()
		o.Start("x").End()
	}); n != 0 {
		t.Fatalf("disabled telemetry allocates %.1f per op, want 0", n)
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Start("x").End()
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("convmeter_bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("convmeter_bench_seconds", "help", DefaultDurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}
