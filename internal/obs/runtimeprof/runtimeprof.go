// Package runtimeprof is ConvMeter's runtime self-telemetry: a sampler
// that projects the Go runtime's own metrics — GC pauses, heap size,
// goroutine count, scheduler latency — into the obs registry as
// convmeter_runtime_* series (so the tsdb retention layer, the alert
// engine and the dashboard see the process the same way they see the
// workload), plus a bounded ring of pprof profiles captured
// periodically and downloadable over the ops server.
//
// Like tsdb, sampling splits into a cold Sync (which sizes the
// histogram conversion buffers to the runtime's current bucket shapes)
// and a hot Sample (pure reads and ring-buffer writes; a histogram
// whose bucket count changed since the last Sync is skipped until the
// next one). Quantiles over the runtime's cumulative pause and latency
// histograms reuse the deterministic seriesq estimator. A nil *Sampler
// is a zero-cost no-op.
package runtimeprof

import (
	"bytes"
	"fmt"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"

	"convmeter/internal/obs"
	"convmeter/internal/obs/tsdb/seriesq"
)

// The runtime/metrics keys the sampler projects. Keys a runtime does
// not provide read as KindBad and are skipped.
const (
	keyGoroutines = "/sched/goroutines:goroutines"
	keyHeapBytes  = "/memory/classes/heap/objects:bytes"
	keyGCCycles   = "/gc/cycles/total:gc-cycles"
	keyGCPauses   = "/sched/pauses/total/gc:seconds"
	keySchedLat   = "/sched/latencies:seconds"
)

// Config parameterises a Sampler.
type Config struct {
	// Obs receives the convmeter_runtime_* series. Required: New
	// returns a nil (disabled) sampler without it.
	Obs *obs.Obs
	// Clock stamps captured profiles; defaults to a monotonic clock
	// with its epoch at New.
	Clock obs.Clock
	// Interval is Start's sampling cadence. Default 10s.
	Interval time.Duration
	// Profiles caps the profile ring. Default 8.
	Profiles int
	// CaptureEvery captures a heap and a goroutine profile every N
	// samples from the Start loop; 0 disables periodic capture.
	// Default 6 (once a minute at the default interval).
	CaptureEvery int
}

// histProj is one runtime histogram projected to two quantile gauges,
// with conversion buffers sized by Sync.
type histProj struct {
	key      string
	p50, p99 *obs.Gauge
	upper    []float64 // finite bucket bounds
	cum      []uint64  // len(upper)+1 scratch
}

// Profile is one captured pprof snapshot in the ring.
type Profile struct {
	ID           int     `json:"id"`
	Kind         string  `json:"kind"`
	TakenSeconds float64 `json:"taken_seconds"`
	SizeBytes    int     `json:"size_bytes"`
	data         []byte
}

// Sampler projects runtime self-telemetry into a registry and retains
// a ring of pprof profiles.
type Sampler struct {
	clock    obs.Clock
	interval time.Duration
	every    int

	goroutinesG *obs.Gauge
	heapG       *obs.Gauge
	gcCyclesG   *obs.Gauge
	profilesG   *obs.Gauge
	capturesC   *obs.Counter
	samplesC    *obs.Counter

	samples []metrics.Sample
	hists   []*histProj

	mu       sync.Mutex
	ring     []Profile
	ringNext int
	ringFull bool
	nextID   int

	loopMu  sync.Mutex
	quit    chan struct{}
	done    chan struct{}
	started bool
}

// New returns an enabled sampler, or nil (a valid disabled sampler)
// when cfg.Obs is nil.
func New(cfg Config) *Sampler {
	if cfg.Obs == nil {
		return nil
	}
	s := &Sampler{
		clock:    cfg.Clock,
		interval: cfg.Interval,
		every:    cfg.CaptureEvery,
		goroutinesG: cfg.Obs.Gauge("convmeter_runtime_goroutines",
			"live goroutines"),
		heapG: cfg.Obs.Gauge("convmeter_runtime_heap_bytes",
			"bytes of live heap objects"),
		gcCyclesG: cfg.Obs.Gauge("convmeter_runtime_gc_cycles",
			"completed GC cycles since process start"),
		profilesG: cfg.Obs.Gauge("convmeter_runtime_profiles",
			"pprof profiles retained in the ring"),
		capturesC: cfg.Obs.Counter("convmeter_runtime_profile_captures_total",
			"pprof profile captures"),
		samplesC: cfg.Obs.Counter("convmeter_runtime_samples_total",
			"runtime/metrics sampling sweeps"),
		samples: []metrics.Sample{
			{Name: keyGoroutines}, {Name: keyHeapBytes}, {Name: keyGCCycles},
			{Name: keyGCPauses}, {Name: keySchedLat},
		},
		hists: []*histProj{
			{key: keyGCPauses,
				p50: cfg.Obs.Gauge("convmeter_runtime_gc_pause_p50_seconds",
					"median GC pause since process start"),
				p99: cfg.Obs.Gauge("convmeter_runtime_gc_pause_p99_seconds",
					"99th-percentile GC pause since process start")},
			{key: keySchedLat,
				p50: cfg.Obs.Gauge("convmeter_runtime_sched_latency_p50_seconds",
					"median goroutine scheduling latency since process start"),
				p99: cfg.Obs.Gauge("convmeter_runtime_sched_latency_p99_seconds",
					"99th-percentile goroutine scheduling latency since process start")},
		},
	}
	if s.clock == nil {
		base := time.Now()
		s.clock = func() time.Duration { return time.Since(base) }
	}
	if s.interval <= 0 {
		s.interval = 10 * time.Second
	}
	if cfg.Profiles <= 0 {
		cfg.Profiles = 8
	}
	if cfg.CaptureEvery == 0 {
		s.every = 6
	}
	s.ring = make([]Profile, cfg.Profiles)
	s.Sync()
	return s
}

// Sync reads the runtime metrics once and (re)sizes the histogram
// conversion buffers to the current bucket shapes — the cold half of a
// sampling tick. Nil-safe.
func (s *Sampler) Sync() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	for _, hp := range s.hists {
		sm := s.sample(hp.key)
		if sm == nil || sm.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		upper, _ := finiteBounds(sm.Value.Float64Histogram())
		if len(hp.upper) != len(upper) {
			hp.upper = append([]float64(nil), upper...)
			hp.cum = make([]uint64, len(upper)+1)
		} else {
			copy(hp.upper, upper)
		}
	}
}

// sample returns the read slot for key, or nil.
func (s *Sampler) sample(key string) *metrics.Sample {
	for i := range s.samples {
		if s.samples[i].Name == key {
			return &s.samples[i]
		}
	}
	return nil
}

// finiteBounds splits a runtime histogram into its finite upper bounds
// and the per-bucket counts covering them; counts beyond the last
// finite bound belong in the +Inf slot.
func finiteBounds(h *metrics.Float64Histogram) (upper []float64, counts []uint64) {
	upper = h.Buckets[1:]
	counts = h.Counts
	if len(upper) > 0 && upper[len(upper)-1] > 1e308 { // +Inf terminal bound
		upper = upper[:len(upper)-1]
	}
	return upper, counts
}

// Sample reads the runtime metrics and projects them onto the gauges —
// the hot half of a tick, pure reads and writes against the buffers
// the last Sync sized. A histogram whose bucket count changed since
// that Sync is skipped until the next one. Nil-safe.
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	for i := range s.samples {
		sm := &s.samples[i]
		if sm.Value.Kind() != metrics.KindUint64 {
			continue
		}
		switch sm.Name {
		case keyGoroutines:
			s.goroutinesG.Set(float64(sm.Value.Uint64()))
		case keyHeapBytes:
			s.heapG.Set(float64(sm.Value.Uint64()))
		case keyGCCycles:
			s.gcCyclesG.Set(float64(sm.Value.Uint64()))
		}
	}
	for _, hp := range s.hists {
		sm := s.sample(hp.key)
		if sm == nil || sm.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := sm.Value.Float64Histogram()
		upper, counts := finiteBounds(h)
		if len(upper) != len(hp.upper) || len(hp.cum) != len(hp.upper)+1 {
			continue // shape drifted; the next Sync resizes
		}
		var acc uint64
		for j := range hp.cum {
			hp.cum[j] = 0
		}
		for j, c := range counts {
			acc += c
			k := j
			if k > len(hp.upper) {
				k = len(hp.upper)
			}
			hp.cum[k] = acc
		}
		// Buckets beyond the finite bounds folded into the +Inf slot;
		// make the prefix cumulative totals consistent.
		for j := 1; j < len(hp.cum); j++ {
			if hp.cum[j] < hp.cum[j-1] {
				hp.cum[j] = hp.cum[j-1]
			}
		}
		if v, ok := seriesq.Quantile(0.5, hp.upper, hp.cum); ok {
			hp.p50.Set(v)
		}
		if v, ok := seriesq.Quantile(0.99, hp.upper, hp.cum); ok {
			hp.p99.Set(v)
		}
	}
	s.samplesC.Inc()
}

// Capture records one pprof profile (a runtime/pprof profile name:
// "heap", "goroutine", "allocs", "block", "mutex", "threadcreate")
// into the ring, evicting the oldest entry when full. Nil-safe.
func (s *Sampler) Capture(kind string) (Profile, error) {
	if s == nil {
		return Profile{}, nil
	}
	p := pprof.Lookup(kind)
	if p == nil {
		return Profile{}, fmt.Errorf("runtimeprof: unknown profile kind %q", kind)
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return Profile{}, fmt.Errorf("runtimeprof: capture %s: %w", kind, err)
	}
	s.mu.Lock()
	s.nextID++
	prof := Profile{
		ID: s.nextID, Kind: kind,
		TakenSeconds: s.clock().Seconds(),
		SizeBytes:    buf.Len(), data: buf.Bytes(),
	}
	s.ring[s.ringNext] = prof
	s.ringNext++
	if s.ringNext == len(s.ring) {
		s.ringNext = 0
		s.ringFull = true
	}
	n := s.ringNext
	if s.ringFull {
		n = len(s.ring)
	}
	s.mu.Unlock()
	s.capturesC.Inc()
	s.profilesG.Set(float64(n))
	return prof, nil
}

// Profiles lists the retained profiles, oldest first, without their
// payloads. Nil-safe (nil).
func (s *Sampler) Profiles() []Profile {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, start := s.ringNext, 0
	if s.ringFull {
		n, start = len(s.ring), s.ringNext
	}
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		p := s.ring[(start+i)%len(s.ring)]
		p.data = nil
		out = append(out, p)
	}
	return out
}

// Profile returns a retained profile's payload by id. Nil-safe
// (false).
func (s *Sampler) Profile(id int) (Profile, bool) {
	if s == nil {
		return Profile{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.ring {
		if s.ring[i].ID == id && s.ring[i].ID != 0 {
			return s.ring[i], true
		}
	}
	return Profile{}, false
}

// Data returns the profile's raw pprof payload.
func (p Profile) Data() []byte { return p.data }

// Start launches the background sampling loop: a Sync+Sample per tick,
// plus a heap and goroutine profile capture every CaptureEvery ticks.
// Stop terminates it. Nil-safe and idempotent.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.quit, s.done)
}

func (s *Sampler) loop(quit, done chan struct{}) {
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	defer close(done)
	ticks := 0
	for {
		select {
		case <-tick.C:
			s.Sync()
			s.Sample()
			ticks++
			if s.every > 0 && ticks%s.every == 0 {
				// A capture failing (profile kind unavailable) is not worth
				// killing the loop over; the captures counter stops moving,
				// which is what an operator would notice.
				_, _ = s.Capture("heap")
				_, _ = s.Capture("goroutine")
			}
		case <-quit:
			return
		}
	}
}

// Stop terminates the background loop and waits for it to exit.
// Nil-safe; a no-op unless Start ran.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.loopMu.Lock()
	if !s.started {
		s.loopMu.Unlock()
		return
	}
	s.started = false
	quit, done := s.quit, s.done
	s.loopMu.Unlock()
	// The receive blocks until the loop exits; holding loopMu across it
	// would stall a concurrent Start.
	close(quit)
	<-done
}
