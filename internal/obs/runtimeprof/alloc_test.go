package runtimeprof

import (
	"testing"

	"convmeter/internal/testrace"
)

// A disabled (nil) sampler must cost zero allocations.
func TestNilSamplerZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)
	var s *Sampler
	cases := map[string]func(){
		"Sample":   func() { s.Sample() },
		"Sync":     func() { s.Sync() },
		"Profiles": func() { _ = s.Profiles() },
		"Profile":  func() { _, _ = s.Profile(1) },
	}
	for name, fn := range cases {
		if got := testing.AllocsPerRun(200, fn); got != 0 {
			t.Errorf("nil Sampler %s allocates %.0f/op, want 0", name, got)
		}
	}
}
