package runtimeprof

import (
	"bytes"
	"testing"
	"time"

	"convmeter/internal/obs"
)

func TestNilSamplerIsDisabled(t *testing.T) {
	var s *Sampler
	s.Sync()
	s.Sample()
	s.Start()
	s.Stop()
	if got := s.Profiles(); got != nil {
		t.Errorf("nil Profiles = %v", got)
	}
	if _, ok := s.Profile(1); ok {
		t.Error("nil Profile reported ok")
	}
	if _, err := s.Capture("heap"); err != nil {
		t.Errorf("nil Capture: %v", err)
	}
	if New(Config{}) != nil {
		t.Error("New without an Obs must return a nil (disabled) sampler")
	}
}

func TestSampleProjectsRuntimeMetrics(t *testing.T) {
	o := obs.New()
	s := New(Config{Obs: o})
	if s == nil {
		t.Fatal("New returned nil")
	}
	s.Sync()
	s.Sample()
	var buf bytes.Buffer
	o.Reg.WritePrometheus(&buf)
	for _, name := range []string{
		"convmeter_runtime_goroutines",
		"convmeter_runtime_heap_bytes",
		"convmeter_runtime_gc_cycles",
		"convmeter_runtime_samples_total 1",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// Goroutines and heap must read as live, positive values.
	pts := o.Reg.Snapshot()
	get := func(name string) float64 {
		for _, p := range pts {
			if p.Name == name {
				return p.Value
			}
		}
		t.Fatalf("series %s not registered", name)
		return 0
	}
	if get("convmeter_runtime_goroutines") < 1 {
		t.Error("goroutine gauge not positive")
	}
	if get("convmeter_runtime_heap_bytes") <= 0 {
		t.Error("heap gauge not positive")
	}
	// The quantile gauges exist; their values are runtime-dependent, so
	// only shape is pinned (non-negative, p50 <= p99 when both set).
	p50 := get("convmeter_runtime_sched_latency_p50_seconds")
	p99 := get("convmeter_runtime_sched_latency_p99_seconds")
	if p50 < 0 || p99 < 0 || (p50 > 0 && p99 > 0 && p50 > p99) {
		t.Errorf("sched latency quantiles malformed: p50=%g p99=%g", p50, p99)
	}
}

func TestProfileRing(t *testing.T) {
	o := obs.New()
	now := time.Duration(0)
	s := New(Config{Obs: o, Profiles: 3, Clock: func() time.Duration { return now }})
	if _, err := s.Capture("no-such-profile"); err == nil {
		t.Error("unknown profile kind must error")
	}
	for i := 0; i < 5; i++ {
		now += time.Second
		p, err := s.Capture("goroutine")
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if p.SizeBytes <= 0 || len(p.Data()) != p.SizeBytes {
			t.Fatalf("capture %d payload malformed: %+v", i, p)
		}
	}
	list := s.Profiles()
	if len(list) != 3 {
		t.Fatalf("ring holds %d profiles, capacity is 3", len(list))
	}
	// Oldest first, oldest two evicted.
	if list[0].ID != 3 || list[2].ID != 5 {
		t.Errorf("ring ids = %d..%d, want 3..5", list[0].ID, list[2].ID)
	}
	for i := 1; i < len(list); i++ {
		if list[i].TakenSeconds <= list[i-1].TakenSeconds {
			t.Errorf("ring not chronological: %+v", list)
		}
	}
	// Listings carry no payload; the by-id accessor does.
	if list[0].Data() != nil {
		t.Error("listing leaked profile payload")
	}
	p, ok := s.Profile(4)
	if !ok || p.Kind != "goroutine" || len(p.Data()) == 0 {
		t.Errorf("Profile(4) = (%+v, %t)", p, ok)
	}
	if _, ok := s.Profile(1); ok {
		t.Error("evicted profile still accessible")
	}
	if _, ok := s.Profile(99); ok {
		t.Error("unknown profile id reported ok")
	}
}

func TestStartStopLoop(t *testing.T) {
	o := obs.New()
	s := New(Config{Obs: o, Interval: time.Millisecond, CaptureEvery: 2, Profiles: 4})
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Profiles()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("loop never captured profiles")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
}
