package obs

import (
	"testing"

	"convmeter/internal/testrace"
)

// TestEnabledPathZeroAllocs pins the other half of the telemetry
// contract next to TestDisabledPathZeroAllocs: with live handles, the
// observe paths declared as hotpath roots in lint.config (Counter.Add,
// Counter.Inc, Gauge.Set, Gauge.Add, Histogram.Observe) are pure atomic
// updates and allocate nothing per observation.
func TestEnabledPathZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	o := New()
	c := o.Counter("convmeter_test_total", "alloc-contract counter")
	g := o.Gauge("convmeter_test_gauge", "alloc-contract gauge")
	h := o.Histogram("convmeter_test_seconds", "alloc-contract histogram", DefaultDurationBuckets())
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(-0.5)
		h.Observe(3e-3)
	}); n != 0 {
		t.Errorf("enabled telemetry allocates %.2f per op, want 0", n)
	}
}
