package ops

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"convmeter/internal/obs/tsdb"
)

// serveQuery answers GET /api/query: windowed reads over the retention
// store. Parameters:
//
//	op      series | range | rate | stats | quantile   (default series)
//	series  series or family name (required except op=series)
//	window  lookback, Go duration syntax                (default 5m)
//	q       quantile in [0,1], op=quantile only         (default 0.95)
//
// Malformed parameters answer 400; a series with no in-window data is
// not an error — the response carries ok=false (queries race workload
// startup, and pollers should not treat "not yet" as failure).
func serveQuery(db *tsdb.DB, w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	op := qp.Get("op")
	if op == "" {
		op = "series"
	}
	window := 5 * time.Minute
	if ws := qp.Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			http.Error(w, "window must be a positive Go duration", http.StatusBadRequest)
			return
		}
		window = d
	}
	name := qp.Get("series")
	if name == "" && op != "series" {
		http.Error(w, "series parameter is required", http.StatusBadRequest)
		return
	}
	now := db.Now()
	resp := map[string]any{
		"op": op, "now_seconds": now.Seconds(), "window_seconds": window.Seconds(),
	}
	if name != "" {
		resp["series"] = name
	}
	switch op {
	case "series":
		list := db.Series()
		if list == nil {
			list = []tsdb.SeriesInfo{}
		}
		resp["list"] = list
		resp["usage"] = db.Usage()
	case "range":
		pts := db.Range(name, now, window)
		if pts == nil {
			pts = []tsdb.Point{}
		}
		resp["points"] = pts
		resp["ok"] = len(pts) > 0
	case "rate":
		v, ok := db.Rate(name, now, window)
		resp["rate_per_second"] = v
		resp["ok"] = ok
	case "stats":
		st, ok := db.Stats(name, now, window)
		resp["stats"] = st
		resp["ok"] = ok
	case "quantile":
		q := 0.95
		if qs := qp.Get("q"); qs != "" {
			v, err := strconv.ParseFloat(qs, 64)
			if err != nil || v < 0 || v > 1 {
				http.Error(w, "q must be a number in [0,1]", http.StatusBadRequest)
				return
			}
			q = v
		}
		v, ok := db.Quantile(name, q, now, window)
		resp["q"] = q
		resp["value"] = v
		resp["ok"] = ok
	default:
		http.Error(w, "op must be series, range, rate, stats or quantile", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
