// Package ops is ConvMeter's live operational HTTP surface: one
// listener serving the *running* telemetry — not the export-at-exit
// files — so an operator (or CI smoke test) can watch a workload while
// it executes:
//
//	GET /metrics       live Prometheus text from the running registry
//	GET /healthz       liveness (200 once the listener is up)
//	GET /readyz        readiness (503 until the configured probe passes,
//	                   or while any critical alert fires)
//	GET /trace         Chrome trace-event JSON of the spans finished so far
//	GET /drift         the driftwatch monitor's prediction-quality state
//	GET /critpath      the critical-path tracker's per-step attributions
//	GET /dag           the experiment DAG's audit trail: per-node state,
//	                   manifest hash, attempt count, blame
//	GET /api/query     windowed queries over the tsdb retention store:
//	                   op=series|range|rate|stats|quantile
//	GET /alerts        the alert engine's statuses and transition history
//	                   (schema convmeter/alerts/v1)
//	GET /profiles      the runtimeprof pprof capture ring; /profiles/{id}
//	                   downloads one profile
//	GET /dashboard     a self-contained live HTML dashboard over
//	                   /api/query and /alerts
//	GET /debug/pprof/  the standard profiling endpoints (obs.PprofHandler)
//
// The server instruments itself through the same registry it serves:
// convmeter_ops_requests_total{path}, convmeter_ops_request_seconds{path}
// and convmeter_ops_inflight_requests appear in /metrics alongside the
// workload's own series. Start listens before returning and reports the
// actual bound address, so ":0" is race-free in tests; Close drains
// in-flight requests (graceful shutdown with a hard-close fallback).
// All of Config's handles may be nil — a nil Obs serves empty-but-valid
// payloads and a nil Drift serves an empty stream list.
package ops

import (
	"context"
	_ "embed"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"convmeter/internal/dagrun"
	"convmeter/internal/driftwatch"
	"convmeter/internal/obs"
	"convmeter/internal/obs/alert"
	"convmeter/internal/obs/critpath"
	"convmeter/internal/obs/runtimeprof"
	"convmeter/internal/obs/tsdb"
)

//go:embed dashboard.html
var dashboardHTML []byte

// contentTypePrometheus is the Prometheus text exposition content type
// matching the 0.0.4 format obs.WritePrometheus emits.
const contentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// Config parameterises an ops server.
type Config struct {
	// Addr is the listen address, e.g. "localhost:9090" or ":0".
	Addr string
	// Obs supplies the live registry (/metrics) and tracer (/trace), and
	// receives the server's own request instrumentation. May be nil.
	Obs *obs.Obs
	// Drift supplies /drift. May be nil.
	Drift *driftwatch.Monitor
	// Crit supplies /critpath. May be nil (empty, schema-stamped report).
	Crit *critpath.Tracker
	// Dag supplies /dag — the experiment executor's live audit trail.
	// May be nil (empty, schema-stamped report).
	Dag *dagrun.Runner
	// TSDB supplies /api/query and the dashboard's history. May be nil
	// (queries answer with empty results).
	TSDB *tsdb.DB
	// Alerts supplies /alerts and gates /readyz: the server answers 503
	// while any critical alert fires. May be nil (no alert gating).
	Alerts *alert.Engine
	// Prof supplies /profiles. May be nil (empty listing).
	Prof *runtimeprof.Sampler
	// Ready gates /readyz; nil means ready as soon as the server is up.
	// Composed with the alert gate: both must pass.
	Ready func() bool
}

// Server is a running ops server.
type Server struct {
	srv   *http.Server
	bound string
}

// Start binds cfg.Addr and serves the ops endpoints in the background.
// It listens before returning, so an address conflict fails here, not
// in a goroutine.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		return nil, errors.New("ops: empty listen address")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", cfg.Addr, err)
	}
	srv := &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second}
	go serve(srv, ln)
	return &Server{srv: srv, bound: ln.Addr().String()}, nil
}

// serve runs until Close; Serve always returns a non-nil error
// (http.ErrServerClosed after a clean stop) and there is no one to
// report an unclean one to — the workload must not die with its
// diagnostics.
func serve(srv *http.Server, ln net.Listener) {
	_ = srv.Serve(ln)
}

// Addr returns the actual bound address ("" on nil) — the port the
// kernel chose when Config.Addr was ":0".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.bound
}

// Close shuts the server down gracefully, draining in-flight scrapes
// for up to five seconds before hard-closing. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Drain deadline exceeded — usually a client-held keep-alive
		// connection (Shutdown won't reap a conn that never sent a request
		// until it is ~5s old), not a stuck handler. Scrapers and pollers
		// are entitled to keep-alives, and the caller asked for the server
		// to be down: hard-close the stragglers and report an error only
		// if that fails.
		return s.srv.Close()
	}
	return nil
}

// Handler builds the ops mux with per-path instrumentation. Exposed so
// tests (and embedders with their own listener) can serve it directly.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	inflight := cfg.Obs.Gauge("convmeter_ops_inflight_requests", "ops requests currently being served")
	handle := func(path string, h http.HandlerFunc) {
		// Handles are created here, once per route — never per request.
		reqs := cfg.Obs.Counter(obs.Label("convmeter_ops_requests_total", "path", path), "ops requests served")
		durH := cfg.Obs.Histogram(obs.Label("convmeter_ops_request_seconds", "path", path), "ops request latency", obs.DefaultDurationBuckets())
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			inflight.Add(1)
			t0 := time.Now()
			// Deferred, not sequential: a panicking handler (including
			// http.ErrAbortHandler, which net/http re-raises per request)
			// must still decrement the gauge and record the request, or
			// inflight drifts upward until the daemon looks saturated.
			defer func() {
				durH.Observe(time.Since(t0).Seconds())
				inflight.Add(-1)
				reqs.Inc()
			}()
			h(w, r)
		})
	}

	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentTypePrometheus)
		if cfg.Obs == nil {
			return // empty exposition is valid
		}
		// Write errors here mean the client hung up mid-scrape; the
		// truncated body is the only signal HTTP still allows.
		_ = cfg.Obs.Reg.WritePrometheus(w)
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	handle("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Ready != nil && !cfg.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "not ready\n")
			return
		}
		// A firing critical alert means the workload is violating an SLO
		// right now: report unready so orchestrators stop routing to it.
		// The gate releases the moment the alert resolves.
		if n := cfg.Alerts.FiringCritical(); n > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = fmt.Fprintf(w, "not ready: %d critical alert(s) firing\n", n)
			return
		}
		_, _ = io.WriteString(w, "ok\n")
	})
	handle("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if cfg.Obs == nil {
			_, _ = io.WriteString(w, "{\"traceEvents\":[]}\n")
			return
		}
		_ = cfg.Obs.Trc.WriteChromeTrace(w)
	})
	handle("/drift", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Drift.WriteJSON(w)
	})
	handle("/critpath", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Crit.WriteJSON(w)
	})
	handle("/dag", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Dag.WriteJSON(w)
	})
	handle("/api/query", func(w http.ResponseWriter, r *http.Request) {
		serveQuery(cfg.TSDB, w, r)
	})
	handle("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Alerts.WriteJSON(w, cfg.TSDB.Now())
	})
	handle("/profiles", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		list := cfg.Prof.Profiles()
		if list == nil {
			list = []runtimeprof.Profile{}
		}
		_ = json.NewEncoder(w).Encode(struct {
			Profiles []runtimeprof.Profile `json:"profiles"`
		}{list})
	})
	handle("/profiles/", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/profiles/"))
		if err != nil {
			http.Error(w, "profile id must be an integer", http.StatusBadRequest)
			return
		}
		p, ok := cfg.Prof.Profile(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s-%d.pprof", p.Kind, p.ID)))
		_, _ = w.Write(p.Data())
	})
	handle("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(dashboardHTML)
	})
	// The pprof mux carries its own sub-routing; instrument it as one
	// logical path.
	pprofReqs := cfg.Obs.Counter(obs.Label("convmeter_ops_requests_total", "path", "/debug/pprof/"), "ops requests served")
	pprofH := obs.PprofHandler()
	mux.Handle("/debug/pprof/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		defer func() {
			inflight.Add(-1)
			pprofReqs.Inc()
		}()
		pprofH.ServeHTTP(w, r)
	}))
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "convmeter ops server\n\n"+
			"GET /metrics       live Prometheus text\n"+
			"GET /healthz       liveness\n"+
			"GET /readyz        readiness\n"+
			"GET /trace         Chrome trace-event JSON\n"+
			"GET /drift         prediction-drift monitor state\n"+
			"GET /critpath      per-step critical-path attribution\n"+
			"GET /dag           experiment DAG audit trail\n"+
			"GET /api/query     windowed queries over retained series\n"+
			"GET /alerts        alert statuses and transition history\n"+
			"GET /profiles      pprof capture ring\n"+
			"GET /dashboard     live HTML dashboard\n"+
			"GET /debug/pprof/  profiling\n")
	})
	return mux
}
