package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"convmeter/internal/dagrun"
	"convmeter/internal/driftwatch"
	"convmeter/internal/obs"
	"convmeter/internal/obs/critpath"
)

func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		// Return our keep-alive connections so Close's graceful drain
		// doesn't have to wait out the client's idle pool.
		http.DefaultClient.CloseIdleConnections()
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestStartReportsBoundAddr(t *testing.T) {
	srv := startTestServer(t, Config{})
	if strings.HasSuffix(srv.Addr(), ":0") || srv.Addr() == "" {
		t.Fatalf("Addr() = %q, want a concrete port", srv.Addr())
	}
}

func TestEndpoints(t *testing.T) {
	o := obs.New()
	o.Counter("convmeter_test_total", "h").Inc()
	sp := o.Start("work")
	sp.End()
	mon := driftwatch.New(driftwatch.Config{Obs: o})
	mon.Stream("net", "iter").Observe(0.01, 0.011)
	crit := critpath.NewTracker(o)
	crit.Record(critpath.StepAttribution{
		Step: 3, Total: 0.1, Compute: 0.06, Comm: 0.01, Wait: 0.03,
		Dominant: critpath.ClassWait, Blame: 1, BlameWait: 0.025,
		Workers: []critpath.WorkerAttribution{{Worker: 1, CausedWait: 0.025}},
	})
	dag, err := dagrun.New(dagrun.Config{Workers: 2, Obs: o}, []dagrun.Node{
		{ID: "fit", Run: func(in dagrun.Inputs) (any, error) { return 1, nil }},
		{ID: "report", Deps: []string{"fit"}, Run: func(in dagrun.Inputs) (any, error) { return 2, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dag.Execute(); err != nil {
		t.Fatal(err)
	}
	var ready atomic.Bool
	srv := startTestServer(t, Config{Obs: o, Drift: mon, Ready: ready.Load, Crit: crit, Dag: dag})
	base := "http://" + srv.Addr()

	status, body, hdr := get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if got := hdr.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("/metrics content type %q", got)
	}
	for _, want := range []string{
		"convmeter_test_total 1",
		`convmeter_drift_pairs_total{model="net",phase="iter"} 1`,
		`convmeter_ops_requests_total{path="/metrics"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q:\n%s", want, body)
		}
	}
	// The scrape is live, not a file: a counter bumped after the first
	// scrape must appear in the next one.
	o.Counter("convmeter_test_total", "h").Inc()
	if _, body, _ := get(t, base+"/metrics"); !strings.Contains(body, "convmeter_test_total 2") {
		t.Errorf("second scrape is stale:\n%s", body)
	}

	if status, body, _ := get(t, base+"/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", status, body)
	}
	if status, _, _ := get(t, base+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", status)
	}
	ready.Store(true)
	if status, _, _ := get(t, base+"/readyz"); status != http.StatusOK {
		t.Errorf("/readyz after ready = %d", status)
	}

	status, body, hdr = get(t, base+"/trace")
	if status != http.StatusOK {
		t.Fatalf("/trace status %d", status)
	}
	if got := hdr.Get("Content-Disposition"); !strings.Contains(got, "trace.json") {
		t.Errorf("/trace disposition %q", got)
	}
	var traceDoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &traceDoc); err != nil {
		t.Fatalf("/trace invalid JSON: %v\n%s", err, body)
	}
	if len(traceDoc.TraceEvents) == 0 {
		t.Error("/trace has no events despite a finished span")
	}

	status, body, _ = get(t, base+"/drift")
	if status != http.StatusOK {
		t.Fatalf("/drift status %d", status)
	}
	var driftDoc driftwatch.Snapshot
	if err := json.Unmarshal([]byte(body), &driftDoc); err != nil {
		t.Fatalf("/drift invalid JSON: %v\n%s", err, body)
	}
	if len(driftDoc.Streams) != 1 || driftDoc.Streams[0].Model != "net" {
		t.Errorf("/drift = %+v", driftDoc)
	}

	status, body, _ = get(t, base+"/critpath")
	if status != http.StatusOK {
		t.Fatalf("/critpath status %d", status)
	}
	var critDoc critpath.Report
	if err := json.Unmarshal([]byte(body), &critDoc); err != nil {
		t.Fatalf("/critpath invalid JSON: %v\n%s", err, body)
	}
	if critDoc.Schema != critpath.SchemaV1 || len(critDoc.Steps) != 1 {
		t.Errorf("/critpath = %+v", critDoc)
	}
	if got := critDoc.Steps[0]; got.Step != 3 || got.Blame != 1 {
		t.Errorf("/critpath step = %+v, want recorded attribution", got)
	}
	// And the recorded step is live on the metrics endpoint too.
	if _, body, _ := get(t, base+"/metrics"); !strings.Contains(body, "convmeter_critpath_blame_worker 1") {
		t.Errorf("/metrics misses critpath gauges:\n%s", body)
	}

	status, body, _ = get(t, base+"/dag")
	if status != http.StatusOK {
		t.Fatalf("/dag status %d", status)
	}
	var dagDoc dagrun.Report
	if err := json.Unmarshal([]byte(body), &dagDoc); err != nil {
		t.Fatalf("/dag invalid JSON: %v\n%s", err, body)
	}
	if dagDoc.Schema != dagrun.SchemaV1 || len(dagDoc.Nodes) != 2 {
		t.Errorf("/dag = %+v", dagDoc)
	}
	for _, n := range dagDoc.Nodes {
		if n.State != dagrun.StateDone {
			t.Errorf("/dag node %s state %s, want done", n.ID, n.State)
		}
	}
	// The executor's gauges are live on the metrics endpoint too.
	if _, body, _ := get(t, base+"/metrics"); !strings.Contains(body, `convmeter_dag_nodes{state="done"} 2`) {
		t.Errorf("/metrics misses dag gauges:\n%s", body)
	}

	if status, body, _ := get(t, base+"/debug/pprof/"); status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d %q", status, body)
	}
	if status, body, _ := get(t, base+"/"); status != http.StatusOK || !strings.Contains(body, "/drift") || !strings.Contains(body, "/critpath") {
		t.Errorf("index = %d %q", status, body)
	}
	if status, _, _ := get(t, base+"/nope"); status != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", status)
	}
}

func TestNilHandlesServeValidPayloads(t *testing.T) {
	srv := startTestServer(t, Config{}) // no Obs, no Drift, no Ready
	base := "http://" + srv.Addr()
	if status, body, _ := get(t, base+"/metrics"); status != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil obs = %d %q, want empty 200", status, body)
	}
	if status, _, _ := get(t, base+"/readyz"); status != http.StatusOK {
		t.Errorf("/readyz with nil probe = %d, want ready", status)
	}
	status, body, _ := get(t, base+"/drift")
	if status != http.StatusOK {
		t.Fatalf("/drift status %d", status)
	}
	var doc driftwatch.Snapshot
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/drift on nil monitor invalid: %v\n%s", err, body)
	}
	status, body, _ = get(t, base+"/trace")
	if status != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace on nil obs = %d %q", status, body)
	}
	status, body, _ = get(t, base+"/critpath")
	if status != http.StatusOK {
		t.Fatalf("/critpath status %d", status)
	}
	var critDoc critpath.Report
	if err := json.Unmarshal([]byte(body), &critDoc); err != nil {
		t.Fatalf("/critpath on nil tracker invalid: %v\n%s", err, body)
	}
	if critDoc.Schema != critpath.SchemaV1 || len(critDoc.Steps) != 0 {
		t.Errorf("/critpath on nil tracker = %+v, want empty schema-stamped report", critDoc)
	}
	status, body, _ = get(t, base+"/dag")
	if status != http.StatusOK {
		t.Fatalf("/dag status %d", status)
	}
	var dagDoc dagrun.Report
	if err := json.Unmarshal([]byte(body), &dagDoc); err != nil {
		t.Fatalf("/dag on nil runner invalid: %v\n%s", err, body)
	}
	if dagDoc.Schema != dagrun.SchemaV1 || len(dagDoc.Nodes) != 0 {
		t.Errorf("/dag on nil runner = %+v, want empty schema-stamped report", dagDoc)
	}
}

func TestStartFailsFastOnBadAddr(t *testing.T) {
	if _, err := Start(Config{Addr: "256.256.256.256:1"}); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, err := Start(Config{}); err == nil {
		t.Fatal("empty address accepted")
	}
	// Binding the same port twice must fail on the second Start, not in
	// a background goroutine.
	srv := startTestServer(t, Config{})
	if _, err := Start(Config{Addr: srv.Addr()}); err == nil {
		t.Fatal("address conflict not reported")
	}
}

// TestConcurrentScrapes is the -race acceptance path: many goroutines
// scraping every endpoint while the workload mutates the registry,
// tracer and drift monitor underneath.
func TestConcurrentScrapes(t *testing.T) {
	o := obs.New()
	mon := driftwatch.New(driftwatch.Config{Obs: o})
	crit := critpath.NewTracker(o)
	srv := startTestServer(t, Config{Obs: o, Drift: mon, Crit: crit})
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var workload sync.WaitGroup
	workload.Add(1)
	go func() {
		defer workload.Done()
		c := o.Counter("convmeter_work_total", "h")
		st := mon.Stream("net", "iter")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			st.Observe(0.01, 0.0105)
			crit.Record(critpath.StepAttribution{
				Step: i, Dominant: "none", Blame: -1,
			})
			// Counter and stream mutation are O(1) state, but every span is
			// retained and /trace marshals all of them per scrape — an
			// unbounded span loop outruns the scrapers and makes each
			// response quadratically larger. Cap the trace size; the race
			// coverage (scrape-while-mutate) is unchanged.
			if i < 4096 {
				sp := o.Start("tick")
				sp.End()
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{"/metrics", "/drift", "/trace", "/critpath", "/healthz"} {
					resp, err := http.Get(base + path)
					if err != nil {
						errc <- err
						return
					}
					body, err := io.ReadAll(resp.Body)
					if cerr := resp.Body.Close(); err == nil {
						err = cerr
					}
					if err != nil {
						errc <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errc <- io.ErrUnexpectedEOF
						return
					}
					if path == "/drift" {
						var doc driftwatch.Snapshot
						if err := json.Unmarshal(body, &doc); err != nil {
							errc <- err
							return
						}
					}
					if path == "/critpath" {
						var doc critpath.Report
						if err := json.Unmarshal(body, &doc); err != nil {
							errc <- err
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	workload.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent scrape: %v", err)
	}
}

// TestCloseLeavesNoGoroutines: after Close returns, the listener and
// every connection goroutine must be gone.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	// Keep-alive client connections pin server goroutines; drop ours
	// before measuring.
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInstrumentationSurvivesHandlerPanic guards the deferred
// instrumentation in Handler: a panicking handler (net/http re-raises
// http.ErrAbortHandler per request, and probe callbacks can blow up)
// must still decrement the inflight gauge and count the request. The
// pre-fix sequential form left the gauge permanently elevated until the
// daemon looked saturated.
func TestInstrumentationSurvivesHandlerPanic(t *testing.T) {
	o := obs.New()
	h := Handler(Config{Obs: o, Ready: func() bool { panic("probe exploded") }})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("handler panic did not propagate")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/readyz", nil))
	}()
	var sb strings.Builder
	if err := o.Reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "convmeter_ops_inflight_requests 0") {
		t.Errorf("inflight gauge leaked after a handler panic:\n%s", out)
	}
	if !strings.Contains(out, `convmeter_ops_requests_total{path="/readyz"} 1`) {
		t.Errorf("panicking request was not counted:\n%s", out)
	}
}
