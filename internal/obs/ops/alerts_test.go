package ops

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"convmeter/internal/obs"
	"convmeter/internal/obs/alert"
	"convmeter/internal/obs/runtimeprof"
	"convmeter/internal/obs/tsdb"
)

// obsStack is a manual-clock obs+tsdb+alert stack behind an httptest
// handler, for deterministic endpoint tests.
type obsStack struct {
	o   *obs.Obs
	db  *tsdb.DB
	eng *alert.Engine
	now time.Duration
	ts  *httptest.Server
}

func newObsStack(t *testing.T, rules []alert.Rule) *obsStack {
	t.Helper()
	s := &obsStack{o: obs.New()}
	s.db = tsdb.New(tsdb.Config{Obs: s.o, Clock: func() time.Duration { return s.now }, Capacity: 128})
	s.eng = alert.New(alert.Config{Obs: s.o, DB: s.db, Rules: rules})
	s.ts = httptest.NewServer(Handler(Config{Obs: s.o, TSDB: s.db, Alerts: s.eng}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *obsStack) tick() {
	s.now += time.Second
	s.db.Sync()
	s.db.Sample(s.now)
	s.eng.Eval(s.now)
}

func TestQueryEndpoint(t *testing.T) {
	s := newObsStack(t, nil)
	c := s.o.Counter("convmeter_q_total", "t")
	h := s.o.Histogram("convmeter_q_seconds", "t", []float64{0.1, 1})
	s.tick()
	for i := 0; i < 5; i++ {
		c.Add(4)
		h.Observe(0.5)
		s.tick()
	}
	getJSON := func(path string) map[string]any {
		t.Helper()
		status, body, hdr := get(t, s.ts.URL+path)
		if status != http.StatusOK {
			t.Fatalf("GET %s status %d: %s", path, status, body)
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("GET %s content type %q", path, ct)
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
		return m
	}

	m := getJSON("/api/query")
	list, _ := m["list"].([]any)
	if len(list) == 0 {
		t.Fatal("op=series listed no series")
	}
	m = getJSON("/api/query?op=rate&series=convmeter_q_total&window=30s")
	if ok, _ := m["ok"].(bool); !ok || m["rate_per_second"].(float64) != 4 {
		t.Errorf("rate response = %v", m)
	}
	m = getJSON("/api/query?op=range&series=convmeter_q_total&window=30s")
	if pts, _ := m["points"].([]any); len(pts) != 6 {
		t.Errorf("range returned %d points, want 6", len(m["points"].([]any)))
	}
	m = getJSON("/api/query?op=stats&series=convmeter_q_total&window=30s")
	if ok, _ := m["ok"].(bool); !ok {
		t.Errorf("stats response = %v", m)
	}
	m = getJSON("/api/query?op=quantile&series=convmeter_q_seconds&q=0.5&window=30s")
	if ok, _ := m["ok"].(bool); !ok || m["value"].(float64) <= 0.1 || m["value"].(float64) > 1 {
		t.Errorf("quantile response = %v", m)
	}
	// A series with no data is ok=false, not an HTTP error.
	m = getJSON("/api/query?op=rate&series=convmeter_absent_total")
	if ok, _ := m["ok"].(bool); ok {
		t.Errorf("absent series reported ok: %v", m)
	}
	for _, bad := range []string{
		"/api/query?op=bogus",
		"/api/query?op=rate", // missing series
		"/api/query?op=rate&series=x&window=nope",
		"/api/query?op=quantile&series=x&q=7",
	} {
		if status, _, _ := get(t, s.ts.URL+bad); status != http.StatusBadRequest {
			t.Errorf("GET %s status %d, want 400", bad, status)
		}
	}
}

// TestReadyzCriticalAlertGate is the readiness regression: /readyz
// flips to 503 while a critical alert fires and recovers to 200 the
// moment it resolves.
func TestReadyzCriticalAlertGate(t *testing.T) {
	s := newObsStack(t, []alert.Rule{{
		Name: "gate", Severity: alert.SevCritical, Kind: alert.KindThreshold,
		Series: "convmeter_gate_gauge", Mode: alert.ModeValue,
		Op: alert.OpAbove, Value: 0.5, Window: 2 * time.Second,
	}})
	g := s.o.Gauge("convmeter_gate_gauge", "t")
	s.tick()
	if status, _, _ := get(t, s.ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz before any alert = %d, want 200", status)
	}
	g.Set(1)
	s.tick()
	status, body, _ := get(t, s.ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while critical fires = %d, want 503", status)
	}
	if !strings.Contains(body, "critical alert") {
		t.Errorf("/readyz 503 body %q does not name the cause", body)
	}
	// Warning-severity alerts must NOT gate readiness; only the critical
	// one does, and recovery is immediate on resolve.
	g.Set(0)
	for i := 0; i < 5; i++ {
		s.tick()
	}
	if status, _, _ := get(t, s.ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz after resolve = %d, want 200 again", status)
	}
}

func TestReadyzWarningDoesNotGate(t *testing.T) {
	s := newObsStack(t, []alert.Rule{{
		Name: "warn", Severity: alert.SevWarning, Kind: alert.KindThreshold,
		Series: "convmeter_warn_gauge", Mode: alert.ModeValue,
		Op: alert.OpAbove, Value: 0.5, Window: 2 * time.Second,
	}})
	s.o.Gauge("convmeter_warn_gauge", "t").Set(1)
	s.tick()
	if s.eng.Snapshot()[0].State != alert.StateFiring {
		t.Fatal("warning rule not firing")
	}
	if status, _, _ := get(t, s.ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz with only a warning firing = %d, want 200", status)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	s := newObsStack(t, []alert.Rule{
		alert.ThresholdRate("hot", alert.SevCritical, "convmeter_a_total", alert.OpAbove, 0, 10*time.Second),
	})
	c := s.o.Counter("convmeter_a_total", "t")
	for i := 0; i < 3; i++ {
		c.Add(2)
		s.tick()
	}
	status, body, hdr := get(t, s.ts.URL+"/alerts")
	if status != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/alerts status %d, content type %q", status, hdr.Get("Content-Type"))
	}
	var rep alert.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/alerts body is not a report: %v", err)
	}
	if rep.Schema != alert.ReportSchema {
		t.Errorf("/alerts schema %q, want %q", rep.Schema, alert.ReportSchema)
	}
	if len(rep.Alerts) != 1 || rep.Alerts[0].State != alert.StateFiring {
		t.Errorf("/alerts alerts = %+v", rep.Alerts)
	}
	if len(rep.Transitions) != 1 || rep.Transitions[0].To != alert.StateFiring {
		t.Errorf("/alerts transitions = %+v", rep.Transitions)
	}
}

func TestProfilesEndpoints(t *testing.T) {
	o := obs.New()
	prof := runtimeprof.New(runtimeprof.Config{Obs: o, Profiles: 4})
	if _, err := prof.Capture("goroutine"); err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Capture("heap"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(Config{Obs: o, Prof: prof}))
	defer ts.Close()

	status, body, _ := get(t, ts.URL+"/profiles")
	if status != http.StatusOK {
		t.Fatalf("/profiles status %d", status)
	}
	var listing struct {
		Profiles []runtimeprof.Profile `json:"profiles"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Profiles) != 2 || listing.Profiles[0].Kind != "goroutine" {
		t.Fatalf("/profiles listing = %+v", listing.Profiles)
	}
	id := listing.Profiles[1].ID
	status, body, hdr := get(t, ts.URL+"/profiles/"+strconv.Itoa(id))
	if status != http.StatusOK {
		t.Fatalf("/profiles/%d status %d", id, status)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("profile download content type %q", ct)
	}
	if len(body) != listing.Profiles[1].SizeBytes {
		t.Errorf("downloaded %d bytes, listing said %d", len(body), listing.Profiles[1].SizeBytes)
	}
	if status, _, _ := get(t, ts.URL+"/profiles/999"); status != http.StatusNotFound {
		t.Errorf("unknown profile id status %d, want 404", status)
	}
	if status, _, _ := get(t, ts.URL+"/profiles/xyz"); status != http.StatusBadRequest {
		t.Errorf("malformed profile id status %d, want 400", status)
	}
}

func TestDashboardServed(t *testing.T) {
	ts := httptest.NewServer(Handler(Config{}))
	defer ts.Close()
	status, body, hdr := get(t, ts.URL+"/dashboard")
	if status != http.StatusOK {
		t.Fatalf("/dashboard status %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("/dashboard content type %q", ct)
	}
	for _, want := range []string{"convmeter ops", "/api/query", "/alerts", "sparkline"} {
		if !strings.Contains(strings.ToLower(body), strings.ToLower(want)) {
			t.Errorf("/dashboard page missing %q", want)
		}
	}
}

func TestNilObsSurfacesServeValidPayloads(t *testing.T) {
	ts := httptest.NewServer(Handler(Config{}))
	defer ts.Close()
	if status, body, _ := get(t, ts.URL+"/api/query"); status != http.StatusOK || !strings.Contains(body, `"list"`) {
		t.Errorf("nil-TSDB /api/query = %d %q", status, body)
	}
	status, body, _ := get(t, ts.URL+"/alerts")
	var rep alert.Report
	if status != http.StatusOK || json.Unmarshal([]byte(body), &rep) != nil || rep.Schema != alert.ReportSchema {
		t.Errorf("nil-Alerts /alerts = %d %q", status, body)
	}
	if status, body, _ := get(t, ts.URL+"/profiles"); status != http.StatusOK || !strings.Contains(body, `"profiles"`) {
		t.Errorf("nil-Prof /profiles = %d %q", status, body)
	}
	if status, _, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Errorf("nil-Alerts /readyz = %d, want 200", status)
	}
}
