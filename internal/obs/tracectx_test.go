package obs

import (
	"testing"
	"time"

	"convmeter/internal/testrace"
)

func TestSpanContextNilSafe(t *testing.T) {
	var s *Span
	if ctx := s.Context(); ctx.Valid() {
		t.Fatalf("nil span context = %+v, want invalid", ctx)
	}
	s.LinkTo(SpanContext{Trace: 1, Span: 2}) // must not panic
}

func TestSpanContextRoundTrip(t *testing.T) {
	o := New()
	send := o.Start("ar.send")
	ctx := send.Context()
	if !ctx.Valid() {
		t.Fatalf("live span context invalid: %+v", ctx)
	}
	send.End()
	wait := o.Start("ar.wait")
	wait.LinkTo(ctx)
	wait.End()
	spans := o.Trc.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[1].Link != ctx {
		t.Fatalf("recorded link = %+v, want %+v", spans[1].Link, ctx)
	}
	if spans[0].Link.Valid() {
		t.Fatalf("unlinked span carries link %+v", spans[0].Link)
	}
}

func TestSpanLinkIgnoresInvalid(t *testing.T) {
	o := New()
	sp := o.Start("ar.wait")
	sp.LinkTo(SpanContext{Trace: 1, Span: 9})
	sp.LinkTo(SpanContext{}) // invalid: must not clear the link
	sp.End()
	if got := o.Trc.Spans()[0].Link.Span; got != 9 {
		t.Fatalf("link = %d, want 9 preserved past invalid LinkTo", got)
	}
}

func TestOffsetTable(t *testing.T) {
	var nilTab *OffsetTable
	nilTab.Set(1, time.Millisecond) // nil-safe
	if d := nilTab.Get(1); d != 0 {
		t.Fatalf("nil table Get = %v", d)
	}
	if snap := nilTab.Snapshot(); snap != nil {
		t.Fatalf("nil table snapshot = %v", snap)
	}
	var tab OffsetTable
	if snap := tab.Snapshot(); snap != nil {
		t.Fatalf("empty table snapshot = %v, want nil", snap)
	}
	tab.Set(2, -3*time.Millisecond)
	tab.Set(2, 5*time.Millisecond) // last write wins
	if d := tab.Get(2); d != 5*time.Millisecond {
		t.Fatalf("Get(2) = %v", d)
	}
	if d := tab.Get(7); d != 0 {
		t.Fatalf("Get(unknown) = %v, want 0", d)
	}
	snap := tab.Snapshot()
	snap[2] = 0 // the snapshot is a copy
	if d := tab.Get(2); d != 5*time.Millisecond {
		t.Fatalf("snapshot aliases the table: Get(2) = %v", d)
	}
}

// TestDisabledContextPropagationZeroAllocs pins the hotpath contract of
// the trace-context API: with tracing disabled (nil spans from a nil
// Obs), the full per-op propagation sequence — Start, Context, LinkTo,
// End — allocates nothing, so the transports pay zero when untraced.
func TestDisabledContextPropagationZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	var o *Obs
	if n := testing.AllocsPerRun(100, func() {
		sp := o.Start("ar.send")
		ctx := sp.Context()
		sp.End()
		wsp := o.Start("ar.wait")
		wsp.LinkTo(ctx)
		wsp.End()
	}); n != 0 {
		t.Errorf("disabled context propagation allocates %.2f per op, want 0", n)
	}
}

func BenchmarkDisabledSpanContext(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Context()
	}
}

func BenchmarkDisabledSpanLinkTo(b *testing.B) {
	var s *Span
	ctx := SpanContext{Trace: 1, Span: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.LinkTo(ctx)
	}
}
