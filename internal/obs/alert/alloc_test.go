package alert

import (
	"testing"
	"time"

	"convmeter/internal/testrace"
)

// A disabled (nil) engine must cost zero allocations — the same bar
// the rest of the obs surface pins.
func TestNilEngineZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)
	var e *Engine
	cases := map[string]func(){
		"Eval":           func() { e.Eval(time.Second) },
		"FiringCritical": func() { _ = e.FiringCritical() },
		"Snapshot":       func() { _ = e.Snapshot() },
		"History":        func() { _ = e.History() },
	}
	for name, fn := range cases {
		if got := testing.AllocsPerRun(200, fn); got != 0 {
			t.Errorf("nil Engine %s allocates %.0f/op, want 0", name, got)
		}
	}
}
