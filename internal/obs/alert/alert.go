// Package alert is ConvMeter's in-process alerting engine: a rule
// evaluator over the tsdb retention layer with threshold, absence and
// multi-window SLO burn-rate strategies, a firing/resolved lifecycle
// with flap latching, and a bounded transition history. State is
// mirrored into the metrics registry as convmeter_alert_* series and
// into the tracer as zero-duration annotation spans, so alert activity
// appears in every export surface the repository already has.
//
// Evaluation is deterministic with respect to the retained samples:
// rules are evaluated in declaration order against explicit windowed
// queries (see tsdb and seriesq), so two engines fed identical stores
// at identical timestamps produce identical lifecycles. The steady-state
// Eval path performs no in-package allocations — per-rule metric
// handles and span names are precomputed at construction, and the
// transition history is a preallocated ring — and a nil *Engine is a
// zero-cost no-op, matching the rest of the obs surface.
package alert

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"convmeter/internal/obs"
	"convmeter/internal/obs/tsdb"
)

// State is a rule's lifecycle position. Inactive rules have never
// fired; resolved rules fired at least once and recovered.
type State string

const (
	StateInactive State = "inactive"
	StateFiring   State = "firing"
	StateResolved State = "resolved"
)

// Config parameterises an Engine.
type Config struct {
	// Obs receives the engine's convmeter_alert_* telemetry and the
	// transition annotation spans. Required.
	Obs *obs.Obs
	// DB is the retention store rules are evaluated against. Required:
	// New returns a nil (disabled) engine without it.
	DB *tsdb.DB
	// Rules is the rule set, evaluated in order. Default BuiltinRules(1).
	Rules []Rule
	// Interval is Start's evaluation cadence. Default 1s.
	Interval time.Duration
	// History caps the transition ring. Default 256.
	History int
}

// Transition is one lifecycle edge in the engine's history.
type Transition struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	From     State    `json:"from"`
	To       State    `json:"to"`
	T        float64  `json:"t_seconds"`
	Value    float64  `json:"value"`
}

// Status is one rule's current state, as reported by Snapshot and the
// /alerts endpoint.
type Status struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Kind     Kind     `json:"kind"`
	Summary  string   `json:"summary,omitempty"`
	State    State    `json:"state"`
	Since    float64  `json:"since_seconds"`
	Value    float64  `json:"value"`
}

// ruleState is the engine's mutable per-rule record, with the handles
// and span names precomputed so Eval allocates nothing in-package.
type ruleState struct {
	rule        Rule
	state       State
	since       time.Duration // when the current state was entered
	firedAt     time.Duration // when the rule last fired
	value       float64       // last evaluated value
	firingG     *obs.Gauge
	transC      *obs.Counter
	fireSpan    string
	resolveSpan string
}

// Engine evaluates a rule set against a retention store.
type Engine struct {
	o        *obs.Obs
	db       *tsdb.DB
	interval time.Duration

	evalsC *obs.Counter
	critG  *obs.Gauge

	mu       sync.Mutex
	rules    []ruleState
	hist     []Transition
	histNext int
	histFull bool
	critical int

	loopMu  sync.Mutex
	quit    chan struct{}
	done    chan struct{}
	started bool
}

// New returns an enabled engine, or nil (a valid disabled engine) when
// cfg.Obs or cfg.DB is nil.
func New(cfg Config) *Engine {
	if cfg.Obs == nil || cfg.DB == nil {
		return nil
	}
	if cfg.Rules == nil {
		cfg.Rules = BuiltinRules(1)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.History <= 0 {
		cfg.History = 256
	}
	e := &Engine{
		o: cfg.Obs, db: cfg.DB, interval: cfg.Interval,
		hist: make([]Transition, cfg.History),
		evalsC: cfg.Obs.Counter("convmeter_alert_evals_total",
			"alert rule-set evaluation sweeps"),
		critG: cfg.Obs.Gauge("convmeter_alert_firing_critical",
			"critical alerts currently firing (readiness gates on this)"),
	}
	for _, r := range cfg.Rules {
		e.rules = append(e.rules, ruleState{
			rule:  r,
			state: StateInactive,
			firingG: cfg.Obs.Gauge(
				obs.Label("convmeter_alert_firing", "rule", r.Name, "severity", string(r.Severity)),
				"whether the alert rule is firing (1) or not (0)"),
			transC: cfg.Obs.Counter(
				obs.Label("convmeter_alert_transitions_total", "rule", r.Name),
				"alert lifecycle transitions"),
			fireSpan:    "alert/fire:" + r.Name,
			resolveSpan: "alert/resolve:" + r.Name,
		})
	}
	return e
}

// Eval runs one evaluation sweep at timestamp now, applying lifecycle
// transitions: a true condition fires the rule, a false one resolves it
// once the latch has elapsed. Nil-safe.
func (e *Engine) Eval(now time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	critical := 0
	for i := range e.rules {
		rs := &e.rules[i]
		value, active := e.condition(&rs.rule, now)
		rs.value = value
		switch {
		case active && rs.state != StateFiring:
			e.transition(rs, StateFiring, now, value)
			rs.firedAt = now
		case !active && rs.state == StateFiring:
			if now-rs.firedAt >= rs.rule.Latch {
				e.transition(rs, StateResolved, now, value)
			}
		}
		if rs.state == StateFiring && rs.rule.Severity == SevCritical {
			critical++
		}
	}
	e.critical = critical
	e.mu.Unlock()
	e.critG.Set(float64(critical))
	e.evalsC.Inc()
}

// transition moves rs to state, recording the edge in the history ring
// and mirroring it as a metric flip and an annotation span. Callers
// hold e.mu.
func (e *Engine) transition(rs *ruleState, to State, now time.Duration, value float64) {
	e.hist[e.histNext] = Transition{
		Rule: rs.rule.Name, Severity: rs.rule.Severity,
		From: rs.state, To: to, T: now.Seconds(), Value: value,
	}
	e.histNext++
	if e.histNext == len(e.hist) {
		e.histNext = 0
		e.histFull = true
	}
	rs.state = to
	rs.since = now
	rs.transC.Inc()
	if to == StateFiring {
		rs.firingG.Set(1)
		e.o.Start(rs.fireSpan).End()
	} else {
		rs.firingG.Set(0)
		e.o.Start(rs.resolveSpan).End()
	}
}

// condition evaluates one rule against the store, returning the
// measured value and whether the rule's predicate holds. Missing data
// reads as not-active for threshold and burn-rate rules (no evidence is
// not an incident) and as active for absence rules past their grace.
func (e *Engine) condition(r *Rule, now time.Duration) (float64, bool) {
	switch r.Kind {
	case KindThreshold:
		var v float64
		var ok bool
		if r.Mode == ModeValue {
			var st tsdb.GaugeStats
			st, ok = e.db.Stats(r.Series, now, r.Window)
			v = st.Last
		} else {
			v, ok = e.db.Rate(r.Series, now, r.Window)
		}
		if !ok {
			return 0, false
		}
		if r.Op == OpBelow {
			return v, v < r.Value
		}
		return v, v > r.Value
	case KindAbsence:
		if now < r.Window { // startup grace: the window has not existed yet
			return 0, false
		}
		n := len(e.db.Range(r.Series, now, r.Window))
		return float64(n), n == 0
	case KindBurnRate:
		fs, fl := e.burn(r, now, r.FastShort), e.burn(r, now, r.FastLong)
		ss, sl := e.burn(r, now, r.SlowShort), e.burn(r, now, r.SlowLong)
		fast := fs > r.FastFactor*r.Budget && fl > r.FastFactor*r.Budget
		slow := ss > r.SlowFactor*r.Budget && sl > r.SlowFactor*r.Budget
		v := fs
		if ss > v {
			v = ss
		}
		return v, fast || slow
	}
	return 0, false
}

// burn computes a burn-rate rule's error ratio rate(num)/rate(den)
// over one window; missing data or a zero denominator reads as 0.
func (e *Engine) burn(r *Rule, now, window time.Duration) float64 {
	num, ok := e.db.Rate(r.Num, now, window)
	if !ok {
		return 0
	}
	den, ok := e.db.Rate(r.Den, now, window)
	if !ok || den <= 0 {
		return 0
	}
	return num / den
}

// FiringCritical returns the number of critical rules currently firing
// — the readiness gate. Nil-safe (0).
func (e *Engine) FiringCritical() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.critical
}

// Snapshot returns every rule's current status, sorted by rule name.
// Nil-safe (nil).
func (e *Engine) Snapshot() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.rules))
	for i := range e.rules {
		rs := &e.rules[i]
		out = append(out, Status{
			Rule: rs.rule.Name, Severity: rs.rule.Severity,
			Kind: rs.rule.Kind, Summary: rs.rule.Summary,
			State: rs.state, Since: rs.since.Seconds(), Value: rs.value,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// History returns the recorded transitions in chronological order.
// Nil-safe (nil).
func (e *Engine) History() []Transition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n, start := e.histNext, 0
	if e.histFull {
		n, start = len(e.hist), e.histNext
	}
	out := make([]Transition, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, e.hist[(start+i)%len(e.hist)])
	}
	return out
}

// Report is the exported alert document, schema convmeter/alerts/v1 —
// what /alerts serves and obscheck -alerts validates.
type Report struct {
	Schema      string       `json:"schema"`
	NowSeconds  float64      `json:"now_seconds"`
	Alerts      []Status     `json:"alerts"`
	Transitions []Transition `json:"transitions"`
}

// ReportSchema identifies the alert export format.
const ReportSchema = "convmeter/alerts/v1"

// Snapshot-backed export: current statuses plus the transition history.
// Nil-safe (a valid empty report).
func (e *Engine) Report(now time.Duration) Report {
	return Report{
		Schema:      ReportSchema,
		NowSeconds:  now.Seconds(),
		Alerts:      e.Snapshot(),
		Transitions: e.History(),
	}
}

// WriteJSON writes the alert report for timestamp now. Nil-safe.
func (e *Engine) WriteJSON(w io.Writer, now time.Duration) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Report(now))
}

// Start launches the background evaluation loop at the configured
// cadence on the store's clock. Stop terminates it. Nil-safe and
// idempotent.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.loopMu.Lock()
	defer e.loopMu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.quit = make(chan struct{})
	e.done = make(chan struct{})
	go e.loop(e.quit, e.done)
}

func (e *Engine) loop(quit, done chan struct{}) {
	tick := time.NewTicker(e.interval)
	defer tick.Stop()
	defer close(done)
	for {
		select {
		case <-tick.C:
			e.Eval(e.db.Now())
		case <-quit:
			return
		}
	}
}

// Stop terminates the background evaluation loop and waits for it to
// exit. Nil-safe; a no-op unless Start ran.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.loopMu.Lock()
	if !e.started {
		e.loopMu.Unlock()
		return
	}
	e.started = false
	quit, done := e.quit, e.done
	e.loopMu.Unlock()
	// The receive blocks until the loop exits; holding loopMu across it
	// would stall a concurrent Start.
	close(quit)
	<-done
}
