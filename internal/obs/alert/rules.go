package alert

import "time"

// Severity ranks a rule's impact. Critical alerts gate readiness: the
// ops server answers /readyz with 503 while any critical rule fires.
type Severity string

const (
	SevCritical Severity = "critical"
	SevWarning  Severity = "warning"
)

// Kind selects a rule's evaluation strategy.
type Kind string

const (
	// KindThreshold compares a windowed query — a counter rate or a
	// gauge's last value — against a bound.
	KindThreshold Kind = "threshold"
	// KindAbsence fires when a series has recorded no sample in the
	// window (after a one-window startup grace, so a store that has not
	// lived long enough to contain the series cannot page).
	KindAbsence Kind = "absence"
	// KindBurnRate is the multi-window SLO burn-rate strategy: a fast
	// short/long window pair catches sharp error budget burn, a slow
	// pair catches sustained slow burn, and either pair firing — both of
	// its windows above its factor x budget — fires the rule.
	KindBurnRate Kind = "burnrate"
)

// Mode selects what a threshold rule measures on its series.
type Mode string

const (
	ModeRate  Mode = "rate"  // windowed per-second counter increase
	ModeValue Mode = "value" // last in-window gauge value
)

// Op is a threshold comparison direction.
type Op string

const (
	OpAbove Op = ">"
	OpBelow Op = "<"
)

// Rule is one declarative alert over the retention store. Build rules
// with the constructors below; zero fields of the unused strategy are
// ignored.
type Rule struct {
	Name     string
	Severity Severity
	Kind     Kind
	Summary  string

	// Threshold and absence strategy.
	Series string
	Mode   Mode
	Op     Op
	Value  float64
	Window time.Duration

	// Burn-rate strategy: burn = rate(Num)/rate(Den) must exceed
	// Factor x Budget on both windows of a pair.
	Num, Den               string
	Budget                 float64
	FastShort, FastLong    time.Duration
	SlowShort, SlowLong    time.Duration
	FastFactor, SlowFactor float64

	// Latch is the minimum time the rule stays firing once fired, so a
	// condition flickering at the eval cadence cannot flap the alert.
	Latch time.Duration
}

// ThresholdRate builds a threshold rule over a counter's windowed
// per-second rate.
func ThresholdRate(name string, sev Severity, series string, op Op, value float64, window time.Duration) Rule {
	return Rule{
		Name: name, Severity: sev, Kind: KindThreshold,
		Series: series, Mode: ModeRate, Op: op, Value: value, Window: window,
	}
}

// ThresholdValue builds a threshold rule over a gauge's last in-window
// value.
func ThresholdValue(name string, sev Severity, series string, op Op, value float64, window time.Duration) Rule {
	return Rule{
		Name: name, Severity: sev, Kind: KindThreshold,
		Series: series, Mode: ModeValue, Op: op, Value: value, Window: window,
	}
}

// Absence builds a rule that fires when series records no sample for a
// full window.
func Absence(name string, sev Severity, series string, window time.Duration) Rule {
	return Rule{
		Name: name, Severity: sev, Kind: KindAbsence,
		Series: series, Window: window,
	}
}

// The canonical multi-window burn-rate pairs (Google SRE workbook):
// 14.4x burn on 5m and 1h exhausts ~2% of a 30-day budget in an hour;
// 6x on 30m and 6h catches the sustained slow burn the fast pair
// misses. scale compresses the windows for simulated time — scale 1 is
// the production SLO, scale 0.005 turns 5m into 1.5s for smoke runs.
const (
	fastShortSLO = 5 * time.Minute
	fastLongSLO  = time.Hour
	slowShortSLO = 30 * time.Minute
	slowLongSLO  = 6 * time.Hour
	fastFactor   = 14.4
	slowFactor   = 6.0
)

// BurnRate builds a multi-window burn-rate rule: the error ratio
// rate(num)/rate(den) is compared against factor x budget on the
// canonical fast (5m/1h) and slow (30m/6h) window pairs, scaled by
// scale for compressed simulated time.
func BurnRate(name string, sev Severity, num, den string, budget, scale float64) Rule {
	if scale <= 0 {
		scale = 1
	}
	return Rule{
		Name: name, Severity: sev, Kind: KindBurnRate,
		Num: num, Den: den, Budget: budget,
		FastShort: scaleWindow(fastShortSLO, scale), FastLong: scaleWindow(fastLongSLO, scale),
		SlowShort: scaleWindow(slowShortSLO, scale), SlowLong: scaleWindow(slowLongSLO, scale),
		FastFactor: fastFactor, SlowFactor: slowFactor,
	}
}

func scaleWindow(w time.Duration, scale float64) time.Duration {
	return time.Duration(float64(w) * scale)
}

// BuiltinRules is ConvMeter's standing alert set over its own
// telemetry, with every window (and the flap latch) scaled for the
// caller's timebase: scale 1 for production cadence, much smaller for
// compressed smoke runs.
func BuiltinRules(scale float64) []Rule {
	if scale <= 0 {
		scale = 1
	}
	w := scaleWindow(5*time.Minute, scale)
	latch := scaleWindow(time.Minute, scale)
	rules := []Rule{
		// Straggler drift is the paper's headline failure mode: burning
		// more than 0.1% of per-pair comparisons as drift events means
		// the runtime predictions are degrading faster than the error
		// budget allows.
		BurnRate("drift-burn-rate", SevCritical,
			"convmeter_drift_events_total", "convmeter_drift_pairs_total",
			0.001, scale),
		// Allreduce retries burning more than 5% of steps signals a
		// transport on the edge of its retry budget.
		BurnRate("allreduce-retry-budget", SevWarning,
			"convmeter_allreduce_retries_total", "convmeter_allreduce_steps_total",
			0.05, scale),
		// Any step blamed on a straggler by critical-path attribution.
		ThresholdRate("critpath-blame", SevWarning,
			"convmeter_critpath_blamed_steps_total", OpAbove, 0, w),
		// DAG nodes failing closed drop experiment results on the floor.
		ThresholdRate("dag-failclose", SevCritical,
			"convmeter_dag_failclose_total", OpAbove, 0, w),
		// The drift monitor comparing zero pairs for a full window means
		// the feed wiring is broken, not that the fleet is healthy.
		Absence("drift-feed-stalled", SevWarning,
			"convmeter_drift_pairs_total", scaleWindow(10*time.Minute, scale)),
	}
	summaries := []string{
		"drift events are burning the prediction error budget",
		"allreduce retries are burning the transport retry budget",
		"critical-path attribution is blaming straggler workers",
		"DAG nodes are failing closed and dropping results",
		"the drift monitor has compared no pairs for a full window",
	}
	for i := range rules {
		rules[i].Latch = latch
		rules[i].Summary = summaries[i]
	}
	return rules
}
