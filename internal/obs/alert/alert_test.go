package alert

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"convmeter/internal/obs"
	"convmeter/internal/obs/tsdb"
)

// rig is a manual-clock obs+tsdb+engine stack for deterministic
// lifecycle tests.
type rig struct {
	o   *obs.Obs
	db  *tsdb.DB
	e   *Engine
	now time.Duration
}

func newRig(t *testing.T, rules []Rule) *rig {
	t.Helper()
	r := &rig{o: obs.New()}
	r.db = tsdb.New(tsdb.Config{Obs: r.o, Clock: func() time.Duration { return r.now }, Capacity: 256})
	r.e = New(Config{Obs: r.o, DB: r.db, Rules: rules})
	if r.e == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	return r
}

// tick advances simulated time one second, samples, and evaluates.
func (r *rig) tick() {
	r.now += time.Second
	r.db.Sync()
	r.db.Sample(r.now)
	r.e.Eval(r.now)
}

func (r *rig) state(name string) State {
	for _, st := range r.e.Snapshot() {
		if st.Rule == name {
			return st.State
		}
	}
	return ""
}

func TestNilEngineIsDisabled(t *testing.T) {
	var e *Engine
	e.Eval(0)
	e.Start()
	e.Stop()
	if e.FiringCritical() != 0 {
		t.Error("nil FiringCritical != 0")
	}
	if e.Snapshot() != nil || e.History() != nil {
		t.Error("nil Snapshot/History not nil")
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf, 0); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if New(Config{}) != nil {
		t.Error("New without Obs+DB must return nil")
	}
}

func TestThresholdLifecycleAndLatch(t *testing.T) {
	r := newRig(t, []Rule{{
		Name: "hot", Severity: SevCritical, Kind: KindThreshold,
		Series: "convmeter_hot_total", Mode: ModeRate,
		Op: OpAbove, Value: 2, Window: 10 * time.Second,
		Latch: 5 * time.Second,
	}})
	c := r.o.Counter("convmeter_hot_total", "t")
	r.tick()
	if got := r.state("hot"); got != StateInactive {
		t.Fatalf("state before any data = %s, want inactive", got)
	}
	for i := 0; i < 5; i++ {
		c.Add(10)
		r.tick()
	}
	if got := r.state("hot"); got != StateFiring {
		t.Fatalf("state under load = %s, want firing", got)
	}
	if r.e.FiringCritical() != 1 {
		t.Fatalf("FiringCritical = %d, want 1", r.e.FiringCritical())
	}
	// Load stops; the rule must stay latched until 5s after it fired.
	r.tick()
	r.tick()
	// The 10s rate window still sees the old increase for a while, so
	// advance until the condition is genuinely false, then check the
	// latch held and release happens.
	for i := 0; i < 20 && r.state("hot") == StateFiring; i++ {
		r.tick()
	}
	if got := r.state("hot"); got != StateResolved {
		t.Fatalf("state after recovery = %s, want resolved", got)
	}
	if r.e.FiringCritical() != 0 {
		t.Fatalf("FiringCritical after resolve = %d, want 0", r.e.FiringCritical())
	}
	hist := r.e.History()
	if len(hist) != 2 {
		t.Fatalf("history = %+v, want fire+resolve", hist)
	}
	if hist[0].To != StateFiring || hist[1].To != StateResolved || hist[1].T <= hist[0].T {
		t.Errorf("malformed lifecycle history: %+v", hist)
	}
	// Latch: the resolve must come no earlier than Latch after the fire.
	if hist[1].T-hist[0].T < 5 {
		t.Errorf("latch violated: fired %.0fs, resolved %.0fs", hist[0].T, hist[1].T)
	}
}

func TestLatchSuppressesFlap(t *testing.T) {
	r := newRig(t, []Rule{{
		Name: "flap", Severity: SevWarning, Kind: KindThreshold,
		Series: "convmeter_flap_gauge", Mode: ModeValue,
		Op: OpAbove, Value: 0.5, Window: 2 * time.Second,
		Latch: time.Minute,
	}})
	g := r.o.Gauge("convmeter_flap_gauge", "t")
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			g.Set(1)
		} else {
			g.Set(0)
		}
		r.tick()
	}
	if got := r.state("flap"); got != StateFiring {
		t.Fatalf("flapping rule state = %s, want firing (latched)", got)
	}
	fires := 0
	for _, tr := range r.e.History() {
		if tr.To == StateFiring {
			fires++
		}
	}
	if fires != 1 {
		t.Errorf("latched rule fired %d times across a flap, want 1", fires)
	}
}

func TestAbsenceRule(t *testing.T) {
	r := newRig(t, []Rule{Absence("gone", SevWarning, "convmeter_feed_total", 5*time.Second)})
	// Startup grace: no firing while the store is younger than the
	// window, even though the series is absent.
	for i := 0; i < 4; i++ {
		r.tick()
		if got := r.state("gone"); got != StateInactive {
			t.Fatalf("absence fired during startup grace at t=%v: %s", r.now, got)
		}
	}
	for i := 0; i < 3; i++ {
		r.tick()
	}
	if got := r.state("gone"); got != StateFiring {
		t.Fatalf("absence state = %s, want firing once grace elapsed", got)
	}
	// The series appears; samples flow; the rule resolves.
	r.o.Counter("convmeter_feed_total", "t").Inc()
	for i := 0; i < 3; i++ {
		r.tick()
	}
	if got := r.state("gone"); got != StateResolved {
		t.Fatalf("absence state after feed appears = %s, want resolved", got)
	}
}

// TestBurnRateMatrix drives the drift burn-rate rule through the same
// shape the end-to-end smoke asserts: a clean run stays silent, a
// degraded run fires via the fast window pair.
func TestBurnRateMatrix(t *testing.T) {
	run := func(errEvery int) (State, []Transition) {
		scale := 1.0 / 60 // 5m->5s, 1h->60s
		r := newRig(t, []Rule{BurnRate("burn", SevCritical,
			"convmeter_err_total", "convmeter_ops_total", 0.001, scale)})
		errs := r.o.Counter("convmeter_err_total", "t")
		ops := r.o.Counter("convmeter_ops_total", "t")
		for i := 1; i <= 90; i++ {
			ops.Add(100)
			if errEvery > 0 && i%errEvery == 0 {
				errs.Inc()
			}
			r.tick()
		}
		return r.state("burn"), r.e.History()
	}
	st, hist := run(0)
	if st != StateInactive || len(hist) != 0 {
		t.Errorf("clean run: state=%s history=%+v, want inactive and empty", st, hist)
	}
	// 1 error per 100 ops = 1% burn >> 14.4 x 0.1% budget.
	st, hist = run(1)
	if st != StateFiring {
		t.Errorf("degraded run: state=%s, want firing", st)
	}
	if len(hist) == 0 || hist[0].To != StateFiring {
		t.Errorf("degraded run history = %+v, want a fire edge", hist)
	}
}

// TestEvalDeterministic pins that two independently built stacks fed
// the identical load produce identical transition histories.
func TestEvalDeterministic(t *testing.T) {
	run := func() []Transition {
		r := newRig(t, BuiltinRules(1.0/60))
		ev := r.o.Counter(obs.Label("convmeter_drift_events_total", "model", "m", "phase", "p"), "t")
		pairs := r.o.Counter("convmeter_drift_pairs_total", "t")
		for i := 1; i <= 60; i++ {
			pairs.Add(50)
			if i > 20 && i <= 40 {
				ev.Add(3)
			}
			r.tick()
		}
		return r.e.History()
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("alert lifecycle not deterministic:\n%s\nvs\n%s", aj, bj)
	}
	if len(a) == 0 {
		t.Error("builtin drift burn-rate never fired under sustained drift load")
	}
}

func TestReportSchemaAndMetricsMirror(t *testing.T) {
	r := newRig(t, []Rule{ThresholdRate("r1", SevCritical, "convmeter_x_total", OpAbove, 0, 5*time.Second)})
	c := r.o.Counter("convmeter_x_total", "t")
	for i := 0; i < 3; i++ {
		c.Add(5)
		r.tick()
	}
	var buf bytes.Buffer
	if err := r.e.WriteJSON(&buf, r.now); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if len(rep.Alerts) != 1 || rep.Alerts[0].State != StateFiring {
		t.Errorf("report alerts = %+v", rep.Alerts)
	}
	// The metrics mirror: the per-rule firing gauge flips to 1 and the
	// transition counter counts the edge.
	var prom bytes.Buffer
	r.o.Reg.WritePrometheus(&prom)
	for _, want := range []string{
		`convmeter_alert_firing{rule="r1",severity="critical"} 1`,
		`convmeter_alert_transitions_total{rule="r1"} 1`,
		`convmeter_alert_firing_critical 1`,
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The span mirror: the fire edge left an annotation span.
	found := false
	for _, sp := range r.o.Trc.Spans() {
		if sp.Name == "alert/fire:r1" {
			found = true
		}
	}
	if !found {
		t.Error("no alert/fire:r1 annotation span recorded")
	}
}

func TestHistoryRingBound(t *testing.T) {
	r := &rig{o: obs.New()}
	r.db = tsdb.New(tsdb.Config{Obs: r.o, Clock: func() time.Duration { return r.now }, Capacity: 16})
	r.e = New(Config{Obs: r.o, DB: r.db, History: 4, Rules: []Rule{{
		Name: "tight", Severity: SevWarning, Kind: KindThreshold,
		Series: "convmeter_t_gauge", Mode: ModeValue,
		Op: OpAbove, Value: 0.5, Window: time.Second,
	}}})
	g := r.o.Gauge("convmeter_t_gauge", "t")
	for i := 0; i < 20; i++ {
		g.Set(float64(i % 2))
		r.tick()
	}
	hist := r.e.History()
	if len(hist) != 4 {
		t.Fatalf("history holds %d transitions, ring capacity is 4", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].T <= hist[i-1].T {
			t.Fatalf("wrapped history out of order: %+v", hist)
		}
	}
}

func TestStartStopLoop(t *testing.T) {
	o := obs.New()
	db := tsdb.New(tsdb.Config{Obs: o, Interval: time.Millisecond})
	e := New(Config{Obs: o, DB: db, Interval: time.Millisecond,
		Rules: []Rule{ThresholdValue("up", SevWarning, "convmeter_up_gauge", OpAbove, 0.5, time.Minute)}})
	o.Gauge("convmeter_up_gauge", "t").Set(1)
	db.Start()
	e.Start()
	e.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for e.FiringCritical() == 0 {
		st := e.Snapshot()
		if len(st) == 1 && st[0].State == StateFiring {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evaluation loop never fired the rule")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
	db.Stop()
}
