package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock returns the elapsed monotonic time since the tracer's epoch. The
// abstraction exists so tests drive deterministic timestamps and so a
// future simulated-time tracer can reuse the exporters unchanged.
type Clock func() time.Duration

// Tracer records spans. It is safe for concurrent use; spans from
// concurrent goroutines interleave freely and are ordered at export
// time by their timestamps. A nil *Tracer records nothing at zero cost.
type Tracer struct {
	clock Clock
	ids   atomic.Int64

	// offsets holds per-worker clock offsets measured by a transport
	// clock-alignment handshake; exporters and the critical-path engine
	// subtract them to place all workers on one timeline.
	offsets OffsetTable

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns a tracer on the real monotonic clock, with its epoch
// at the call.
func NewTracer() *Tracer {
	base := time.Now()
	return NewTracerWithClock(func() time.Duration { return time.Since(base) })
}

// NewTracerWithClock returns a tracer on a caller-supplied clock.
func NewTracerWithClock(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// SpanRecord is one finished span. Track groups spans for rendering: a
// root span opens a track (Track == ID) and its descendants inherit it,
// which becomes the Chrome-trace thread id, so each root's subtree nests
// by time containment on its own timeline row.
type SpanRecord struct {
	Name   string
	ID     int64
	Parent int64 // 0 for root spans
	Track  int64
	Start  time.Duration
	Dur    time.Duration
	Worker int         // owning worker id, -1 when unattributed
	Link   SpanContext // causal cross-worker link, zero when none
}

// Span is an in-flight span handle. A nil *Span is a no-op: Child
// returns nil and End does nothing.
type Span struct {
	t      *Tracer
	name   string
	id     int64
	parent int64
	track  int64
	start  time.Duration
	worker int // owning worker id + 1, 0 when unattributed
	skew   time.Duration
	link   SpanContext
}

// Start begins a root span. Nil-safe.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{t: t, name: name, id: id, track: id, start: t.clock()}
}

// Child begins a span nested under s, on s's track, inheriting s's
// worker attribution and clock skew. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.ids.Add(1)
	return &Span{t: s.t, name: name, id: id, parent: s.id, track: s.track,
		start: s.t.clock(), worker: s.worker, skew: s.skew}
}

// End finishes the span and records it. Nil-safe; ending a span twice
// records it twice, so don't. A simulated clock skew (WithClockSkew)
// shifts the recorded start — the span's timestamps read as the owning
// worker's own clock would have produced them, which is what the
// alignment handshake then measures away.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.clock()
	rec := SpanRecord{
		Name: s.name, ID: s.id, Parent: s.parent, Track: s.track,
		Start: s.start + s.skew, Dur: end - s.start,
		Worker: s.worker - 1, Link: s.link,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
}

// Spans returns a copy of every finished span. Nil-safe (returns nil).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Now returns the tracer's clock reading. Nil-safe (returns 0).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Len returns the number of finished spans, a cursor for SpansFrom.
// Nil-safe (returns 0).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpansFrom returns a copy of the finished spans recorded at index i and
// later — the spans finished since a Len() checkpoint. Nil-safe.
func (t *Tracer) SpansFrom(i int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(t.spans) {
		return nil
	}
	return append([]SpanRecord(nil), t.spans[i:]...)
}

// Offsets returns the tracer's clock-offset table, populated by a
// transport alignment handshake. Nil-safe (returns nil, which reads as
// all-zero offsets).
func (t *Tracer) Offsets() *OffsetTable {
	if t == nil {
		return nil
	}
	return &t.offsets
}
