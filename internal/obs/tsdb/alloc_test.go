package tsdb

import (
	"testing"
	"time"

	"convmeter/internal/testrace"
)

// A disabled (nil) retention layer must cost zero allocations anywhere
// it is touched — the acceptance bar every obs subsystem pins.
func TestNilDBZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)
	var db *DB
	cases := map[string]func(){
		"Sample": func() { db.Sample(time.Second) },
		"Sync":   func() { db.Sync() },
		"Now":    func() { _ = db.Now() },
		"Rate":   func() { _, _ = db.Rate("x", time.Second, time.Second) },
		"Stats":  func() { _, _ = db.Stats("x", time.Second, time.Second) },
		"Quantile": func() {
			_, _ = db.Quantile("x", 0.5, time.Second, time.Second)
		},
		"Range":  func() { _ = db.Range("x", time.Second, time.Second) },
		"Series": func() { _ = db.Series() },
		"Usage":  func() { _ = db.Usage() },
	}
	for name, fn := range cases {
		if got := testing.AllocsPerRun(200, fn); got != 0 {
			t.Errorf("nil DB %s allocates %.0f/op, want 0", name, got)
		}
	}
}
