package tsdb

import (
	"time"

	"convmeter/internal/obs/tsdb/seriesq"
)

// Every query resolves its series argument in two steps: an exact
// series name (possibly carrying a {label="..."} body) selects that one
// stream, and otherwise the argument is treated as a family (base)
// name selecting every labelled series of the family, iterated in
// sorted-name order so aggregation is deterministic. Windows are
// half-open lookbacks (now-window, now]: a query sees exactly the
// samples recorded in its window, and two queries over the same
// retained samples return bit-identical answers (see seriesq).

// SeriesInfo describes one retained series, for /api/query listings.
type SeriesInfo struct {
	Name    string `json:"name"`
	Base    string `json:"base"`
	Type    string `json:"type"`
	Samples int    `json:"samples"`
}

// Series lists the retained series, sorted by name. Nil-safe (nil).
func (db *DB) Series() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]SeriesInfo, 0, len(db.names))
	for _, name := range db.names {
		s := db.series[name]
		n := s.next
		if s.full {
			n = len(s.t)
		}
		out = append(out, SeriesInfo{Name: s.name, Base: s.base, Type: s.typ, Samples: n})
	}
	return out
}

// resolve returns the series matching name (exact first, then family),
// in sorted-name order. Callers hold db.mu.
func (db *DB) resolve(name string) []*series {
	if s, ok := db.series[name]; ok {
		return []*series{s}
	}
	var out []*series
	for _, n := range db.names {
		if s := db.series[n]; s.base == name {
			out = append(out, s)
		}
	}
	return out
}

// bounds returns the ring indexes of the first and last sample with
// from < T <= to, or (-1, -1) when the window is empty.
func (s *series) bounds(from, to time.Duration) (first, last int) {
	first, last = -1, -1
	n, start := s.next, 0
	if s.full {
		n, start = len(s.t), s.next
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % len(s.t)
		ts := s.t[idx]
		if ts <= from || ts > to {
			continue
		}
		if first < 0 {
			first = idx
		}
		last = idx
	}
	return first, last
}

// window appends s's samples with from < T <= to onto buf in
// chronological order.
func (s *series) window(buf []seriesq.Point, from, to time.Duration) []seriesq.Point {
	n, start := s.next, 0
	if s.full {
		n, start = len(s.t), s.next
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % len(s.t)
		ts := s.t[idx]
		if ts <= from || ts > to {
			continue
		}
		buf = append(buf, seriesq.Point{T: ts, V: s.v[idx]})
	}
	return buf
}

// Point is one (timestamp, value) entry of a Range result.
type Point struct {
	T float64 `json:"t_seconds"`
	V float64 `json:"v"`
}

// Range returns the windowed samples of a series — or, for a family,
// the per-timestamp sum across its series (samples recorded in the
// same sweep share one timestamp). Histogram series contribute their
// cumulative observation count, the rate-able part of a histogram.
// Nil-safe (nil).
func (db *DB) Range(name string, now, window time.Duration) []Point {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	matched := db.resolve(name)
	if len(matched) == 0 {
		return nil
	}
	var all []seriesq.Point
	for _, s := range matched {
		all = s.appendRange(all, now-window, now)
	}
	sortPointsStable(all)
	out := make([]Point, 0, len(all))
	var lastT time.Duration
	for _, p := range all {
		// Same-timestamp points across a family sum into one point; the
		// comparison is on the integer duration, not its float projection.
		if n := len(out); n > 0 && p.T == lastT {
			out[n-1].V += p.V
			continue
		}
		lastT = p.T
		out = append(out, Point{T: p.T.Seconds(), V: p.V})
	}
	return out
}

// appendRange is window with histogram-count substitution.
func (s *series) appendRange(buf []seriesq.Point, from, to time.Duration) []seriesq.Point {
	if s.typ != "histogram" {
		return s.window(buf, from, to)
	}
	n, start := s.next, 0
	if s.full {
		n, start = len(s.t), s.next
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % len(s.t)
		ts := s.t[idx]
		if ts <= from || ts > to {
			continue
		}
		buf = append(buf, seriesq.Point{T: ts, V: float64(s.n[idx])})
	}
	return buf
}

// sortPointsStable orders points by timestamp, preserving the
// sorted-series-name insertion order among equal timestamps so
// family-aggregation sums fold in a deterministic order. Insertion sort:
// inputs are concatenations of already-sorted runs, nearly in order.
func sortPointsStable(pts []seriesq.Point) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].T < pts[j-1].T; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}

// Rate returns the windowed per-second increase of a counter series —
// for a family, the sum of its series' rates. Reset detection follows
// seriesq.Rate. The bool is false when no matched series spans two
// in-window samples. Nil-safe.
func (db *DB) Rate(name string, now, window time.Duration) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var (
		sum float64
		any bool
		buf []seriesq.Point
	)
	for _, s := range db.resolve(name) {
		buf = s.appendRange(buf[:0], now-window, now)
		if r, ok := seriesq.Rate(buf); ok {
			sum += r
			any = true
		}
	}
	return sum, any
}

// GaugeStats carries a windowed min/max/avg/last summary.
type GaugeStats = seriesq.Stats

// Stats summarises the windowed samples of a series (for a family, of
// the per-timestamp sums). Nil-safe (false).
func (db *DB) Stats(name string, now, window time.Duration) (GaugeStats, bool) {
	if db == nil {
		return GaugeStats{}, false
	}
	merged := db.Range(name, now, window)
	pts := make([]seriesq.Point, len(merged))
	for i, p := range merged {
		pts[i] = seriesq.Point{T: time.Duration(p.T * float64(time.Second)), V: p.V}
	}
	return seriesq.Summarize(pts)
}

// Quantile estimates the q-quantile of a histogram series over the
// window: the cumulative-bucket delta between the window's first and
// last samples, interpolated per seriesq.Quantile. For a family the
// deltas are summed across series sharing the first-matched bucket
// layout (a mismatched layout is skipped). Nil-safe (false).
func (db *DB) Quantile(name string, q float64, now, window time.Duration) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var (
		upper []float64
		acc   []uint64
		delta []uint64
		got   bool
	)
	for _, s := range db.resolve(name) {
		if s.typ != "histogram" {
			continue
		}
		if upper == nil {
			upper = s.upper
			acc = make([]uint64, len(upper)+1)
			delta = make([]uint64, len(upper)+1)
		} else if len(s.upper) != len(upper) {
			continue
		}
		first, last := s.bounds(now-window, now)
		if first < 0 || first == last {
			continue
		}
		stride := len(s.upper) + 1
		seriesq.DeltaCounts(delta,
			s.b[last*stride:(last+1)*stride],
			s.b[first*stride:(first+1)*stride])
		for i := range acc {
			acc[i] += delta[i]
		}
		got = true
	}
	if !got {
		return 0, false
	}
	return seriesq.Quantile(q, upper, acc)
}
