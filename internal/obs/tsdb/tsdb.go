// Package tsdb is ConvMeter's in-process metrics retention layer: a
// bounded ring-buffer time-series store that samples the live obs
// registry at a configurable cadence and answers windowed queries —
// counter rates, gauge min/max/avg, histogram quantiles — over the
// retained history. It is the substrate the alert engine evaluates and
// the ops dashboard renders; nothing here leaves the process.
//
// Memory is hard-bounded by construction: every retained series owns
// fixed-capacity rings sized at admission (Config.Capacity samples),
// the series population is capped at Config.MaxSeries (excess series
// are counted as dropped and never stored), and query scratch is
// reused. Sampling splits into a cold admission path (Sync, which
// allocates rings for newly appeared series) and a hot record path
// (Sample, a pure ring write declared as a hotpath root in lint.config)
// so the steady-state per-tick cost allocates nothing in-package.
//
// Counters are stored delta-aware — the raw cumulative value is
// retained and rates apply Prometheus-style reset detection at query
// time — gauges as point-in-time snapshots, and histograms with their
// full cumulative bucket vectors, so windowed quantile estimation is
// exact with respect to the bucket layout. The arithmetic lives in the
// deterministic sub-package seriesq: the same retained samples produce
// bit-identical query answers on every run.
//
// Everything is nil-safe: a nil *DB ignores Sync/Sample/Start/Stop and
// answers every query negatively, so a disabled retention layer costs
// zero allocations on the observe path.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"convmeter/internal/obs"
)

// Config parameterises a DB.
type Config struct {
	// Obs supplies the registry to sample and receives the store's own
	// convmeter_tsdb_* telemetry. Required: New returns a nil (disabled)
	// DB without it.
	Obs *obs.Obs
	// Clock is the sampling timestamp source; defaults to a monotonic
	// clock with its epoch at New. Tests inject manual clocks for
	// deterministic timelines.
	Clock obs.Clock
	// Capacity is the number of samples each series ring retains.
	// Default 512.
	Capacity int
	// MaxSeries caps the retained series population; series beyond the
	// cap are dropped (and counted) rather than stored. Default 1024.
	MaxSeries int
	// Interval is Start's sampling cadence. Default 1s.
	Interval time.Duration
	// Prefix filters which registry series are retained. Default
	// "convmeter_".
	Prefix string
}

// DB is a bounded in-memory time-series store over one registry.
type DB struct {
	reg      *obs.Registry
	clock    obs.Clock
	capacity int
	maxSer   int
	interval time.Duration
	prefix   string

	samplesC *obs.Counter
	seriesG  *obs.Gauge
	droppedC *obs.Counter

	mu       sync.Mutex
	series   map[string]*series
	names    []string // sorted admission index, for deterministic family iteration
	dropped  map[string]bool
	memBytes int

	loopMu  sync.Mutex
	quit    chan struct{}
	done    chan struct{}
	started bool
}

// series is one retained metric stream with fixed-capacity rings.
type series struct {
	name, base, typ string
	upper           []float64 // histogram bucket bounds; nil otherwise

	t    []time.Duration // timestamp ring
	v    []float64       // counter/gauge value; histogram sum
	n    []uint64        // histogram observation count
	b    []uint64        // histogram cumulative buckets, stride len(upper)+1
	next int
	full bool
}

// New returns an enabled DB, or nil (a valid disabled store) when
// cfg.Obs is nil.
func New(cfg Config) *DB {
	if cfg.Obs == nil {
		return nil
	}
	db := &DB{
		reg:      cfg.Obs.Reg,
		clock:    cfg.Clock,
		capacity: cfg.Capacity,
		maxSer:   cfg.MaxSeries,
		interval: cfg.Interval,
		prefix:   cfg.Prefix,
		series:   map[string]*series{},
		dropped:  map[string]bool{},
		samplesC: cfg.Obs.Counter("convmeter_tsdb_samples_total",
			"registry sweeps recorded into the retention rings"),
		seriesG: cfg.Obs.Gauge("convmeter_tsdb_series",
			"metric series currently retained"),
		droppedC: cfg.Obs.Counter("convmeter_tsdb_dropped_series_total",
			"series refused admission by the MaxSeries bound"),
	}
	if db.clock == nil {
		base := time.Now()
		db.clock = func() time.Duration { return time.Since(base) }
	}
	if db.capacity <= 0 {
		db.capacity = 512
	}
	if db.maxSer <= 0 {
		db.maxSer = 1024
	}
	if db.interval <= 0 {
		db.interval = time.Second
	}
	if db.prefix == "" {
		db.prefix = "convmeter_"
	}
	return db
}

// Now returns the store's clock reading (0 on nil).
func (db *DB) Now() time.Duration {
	if db == nil {
		return 0
	}
	return db.clock()
}

// Sync admits registry series that appeared since the last Sync,
// allocating their rings — the cold half of a sampling tick. Series
// beyond the MaxSeries bound are recorded as dropped and skipped
// forever after. Nil-safe.
func (db *DB) Sync() {
	if db == nil {
		return
	}
	pts := db.reg.Snapshot()
	newlyDropped := 0
	db.mu.Lock()
	for i := range pts {
		p := &pts[i]
		if !strings.HasPrefix(p.Name, db.prefix) {
			continue
		}
		if _, ok := db.series[p.Name]; ok {
			continue
		}
		if db.dropped[p.Name] {
			continue
		}
		if len(db.series) >= db.maxSer {
			db.dropped[p.Name] = true
			newlyDropped++
			continue
		}
		s := &series{
			name: p.Name, base: p.Base, typ: p.Type,
			t: make([]time.Duration, db.capacity),
			v: make([]float64, db.capacity),
		}
		db.memBytes += db.capacity * 16
		if p.Type == "histogram" {
			s.upper = make([]float64, 0, len(p.Buckets)-1)
			for _, bc := range p.Buckets[:len(p.Buckets)-1] {
				s.upper = append(s.upper, bc.LE)
			}
			s.n = make([]uint64, db.capacity)
			s.b = make([]uint64, db.capacity*len(p.Buckets))
			db.memBytes += db.capacity * 8 * (1 + len(p.Buckets))
		}
		db.series[p.Name] = s
		db.names = append(db.names, p.Name)
	}
	sort.Strings(db.names)
	n := len(db.series)
	db.mu.Unlock()
	db.seriesG.Set(float64(n))
	db.droppedC.Add(float64(newlyDropped))
}

// Sample records one sweep of the registry into the rings at timestamp
// now: the hot half of a sampling tick, a pure ring write over the
// series the most recent Sync admitted. Unknown series are skipped (the
// next Sync picks them up). Nil-safe.
func (db *DB) Sample(now time.Duration) {
	if db == nil {
		return
	}
	pts := db.reg.Snapshot()
	db.mu.Lock()
	for i := range pts {
		p := &pts[i]
		s, ok := db.series[p.Name]
		if !ok {
			continue
		}
		s.t[s.next] = now
		s.v[s.next] = p.Value
		if s.typ == "histogram" {
			s.n[s.next] = p.Count
			stride := len(s.upper) + 1
			row := s.b[s.next*stride : (s.next+1)*stride]
			for j := 0; j < stride && j < len(p.Buckets); j++ {
				row[j] = p.Buckets[j].Count
			}
		}
		s.next++
		if s.next == len(s.t) {
			s.next = 0
			s.full = true
		}
	}
	db.mu.Unlock()
	db.samplesC.Inc()
}

// Start launches the background sampling loop at the configured
// cadence; each tick syncs then samples. Stop terminates it. Nil-safe
// and idempotent.
func (db *DB) Start() {
	if db == nil {
		return
	}
	db.loopMu.Lock()
	defer db.loopMu.Unlock()
	if db.started {
		return
	}
	db.started = true
	db.quit = make(chan struct{})
	db.done = make(chan struct{})
	go db.loop(db.quit, db.done)
}

func (db *DB) loop(quit, done chan struct{}) {
	tick := time.NewTicker(db.interval)
	defer tick.Stop()
	defer close(done)
	for {
		select {
		case <-tick.C:
			db.Sync()
			db.Sample(db.clock())
		case <-quit:
			return
		}
	}
}

// Stop terminates the background sampling loop and waits for it to
// exit. Nil-safe; a no-op unless Start ran.
func (db *DB) Stop() {
	if db == nil {
		return
	}
	db.loopMu.Lock()
	if !db.started {
		db.loopMu.Unlock()
		return
	}
	db.started = false
	quit, done := db.quit, db.done
	db.loopMu.Unlock()
	// The receive blocks until the loop exits; holding loopMu across it
	// would stall a concurrent Start.
	close(quit)
	<-done
}

// Usage reports the store's population and memory accounting — the
// numbers the bound tests pin.
type Usage struct {
	Series        int // retained series
	Dropped       int // series refused by the MaxSeries bound
	Capacity      int // ring capacity, samples per series
	MaxSeries     int
	RetainedBytes int // fixed ring footprint across all admitted series
}

// Usage returns the store's current accounting. Nil-safe (zero usage).
func (db *DB) Usage() Usage {
	if db == nil {
		return Usage{}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return Usage{
		Series: len(db.series), Dropped: len(db.dropped),
		Capacity: db.capacity, MaxSeries: db.maxSer,
		RetainedBytes: db.memBytes,
	}
}
