package tsdb

import (
	"math"
	"testing"
	"time"

	"convmeter/internal/obs"
)

// manualDB builds an enabled DB over a fresh registry with a test-owned
// clock, so timelines are fully deterministic.
func manualDB(t *testing.T, cfg Config) (*obs.Obs, *DB, *time.Duration) {
	t.Helper()
	o := obs.New()
	now := new(time.Duration)
	cfg.Obs = o
	cfg.Clock = func() time.Duration { return *now }
	db := New(cfg)
	if db == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	return o, db, now
}

func TestNilDBIsDisabled(t *testing.T) {
	var db *DB
	db.Sync()
	db.Sample(0)
	db.Start()
	db.Stop()
	if got := db.Series(); got != nil {
		t.Errorf("nil Series = %v", got)
	}
	if _, ok := db.Rate("x", 0, time.Second); ok {
		t.Error("nil Rate reported ok")
	}
	if _, ok := db.Stats("x", 0, time.Second); ok {
		t.Error("nil Stats reported ok")
	}
	if _, ok := db.Quantile("x", 0.5, 0, time.Second); ok {
		t.Error("nil Quantile reported ok")
	}
	if got := db.Range("x", 0, time.Second); got != nil {
		t.Errorf("nil Range = %v", got)
	}
	if u := db.Usage(); u != (Usage{}) {
		t.Errorf("nil Usage = %+v", u)
	}
	if New(Config{}) != nil {
		t.Error("New without an Obs must return a nil (disabled) DB")
	}
}

func TestCounterRateAndGaugeStats(t *testing.T) {
	o, db, now := manualDB(t, Config{Capacity: 64})
	c := o.Counter("convmeter_test_total", "t")
	g := o.Gauge("convmeter_test_gauge", "t")
	db.Sync()
	for i := 0; i < 10; i++ {
		c.Add(5)
		g.Set(float64(i))
		*now += time.Second
		db.Sample(*now)
	}
	r, ok := db.Rate("convmeter_test_total", *now, 20*time.Second)
	if !ok || math.Abs(r-5) > 1e-9 {
		t.Errorf("Rate = (%g, %t), want 5/s", r, ok)
	}
	// A 4s window sees samples at t=7..10s: values 35..50, increase 15
	// over 3s.
	r, ok = db.Rate("convmeter_test_total", *now, 4*time.Second)
	if !ok || math.Abs(r-5) > 1e-9 {
		t.Errorf("windowed Rate = (%g, %t), want 5/s", r, ok)
	}
	st, ok := db.Stats("convmeter_test_gauge", *now, 20*time.Second)
	if !ok || st.N != 10 || st.Min != 0 || st.Max != 9 || st.Last != 9 || math.Abs(st.Avg-4.5) > 1e-9 {
		t.Errorf("Stats = %+v ok=%t", st, ok)
	}
	if _, ok := db.Rate("convmeter_never_registered", *now, time.Second); ok {
		t.Error("unknown series must answer not-ok")
	}
}

func TestFamilyAggregation(t *testing.T) {
	o, db, now := manualDB(t, Config{Capacity: 64})
	a := o.Counter(obs.Label("convmeter_req_total", "path", "/a"), "t")
	b := o.Counter(obs.Label("convmeter_req_total", "path", "/b"), "t")
	db.Sync()
	for i := 0; i < 5; i++ {
		a.Add(2)
		b.Add(3)
		*now += time.Second
		db.Sample(*now)
	}
	r, ok := db.Rate("convmeter_req_total", *now, time.Minute)
	if !ok || math.Abs(r-5) > 1e-9 {
		t.Errorf("family Rate = (%g, %t), want 5/s", r, ok)
	}
	pts := db.Range("convmeter_req_total", *now, time.Minute)
	if len(pts) != 5 {
		t.Fatalf("family Range has %d points, want 5 (per-timestamp sums)", len(pts))
	}
	if last := pts[len(pts)-1]; math.Abs(last.V-25) > 1e-9 {
		t.Errorf("family Range last = %+v, want summed 25", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	o, db, now := manualDB(t, Config{Capacity: 64})
	h := o.Histogram("convmeter_lat_seconds", "t", []float64{0.1, 0.5, 1})
	db.Sync()
	*now += time.Second
	db.Sample(*now) // empty baseline
	for i := 0; i < 60; i++ {
		h.Observe(0.3) // lands in (0.1, 0.5]
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.7) // lands in (0.5, 1]
	}
	*now += time.Second
	db.Sample(*now)
	q50, ok := db.Quantile("convmeter_lat_seconds", 0.5, *now, time.Minute)
	// rank 50 of 100: 50/60 into the (0.1, 0.5] bucket.
	want := 0.1 + 0.4*(50.0/60)
	if !ok || math.Abs(q50-want) > 1e-12 {
		t.Errorf("q50 = (%g, %t), want %g", q50, ok, want)
	}
	// Only observations inside the window count: a window covering just
	// the last sample pair sees no increase before the baseline.
	if _, ok := db.Quantile("convmeter_lat_seconds", 0.5, *now, 500*time.Millisecond); ok {
		t.Error("single-sample window must answer not-ok")
	}
	if _, ok := db.Quantile("convmeter_lat_seconds", 0.5, *now+time.Hour, time.Minute); ok {
		t.Error("empty window must answer not-ok")
	}
}

// TestQuantileDeterministic pins bit-exact quantile answers across
// independently built, identically fed stores — the tsdb half of the
// determinism contract seriesq declares.
func TestQuantileDeterministic(t *testing.T) {
	build := func() (float64, bool) {
		o, db, now := manualDB(t, Config{Capacity: 32})
		h := o.Histogram("convmeter_lat_seconds", "t", obs.DefaultDurationBuckets())
		db.Sync()
		db.Sample(*now)
		v := 1e-6
		for i := 0; i < 500; i++ {
			h.Observe(v)
			v = math.Mod(v*1.7+1e-4, 2.5)
			if i%50 == 49 {
				*now += 250 * time.Millisecond
				db.Sample(*now)
			}
		}
		*now += 250 * time.Millisecond
		db.Sample(*now)
		return db.Quantile("convmeter_lat_seconds", 0.95, *now, time.Minute)
	}
	q1, ok1 := build()
	q2, ok2 := build()
	if !ok1 || !ok2 || math.Float64bits(q1) != math.Float64bits(q2) {
		t.Errorf("quantile not bit-stable across runs: %x vs %x (ok %t/%t)",
			math.Float64bits(q1), math.Float64bits(q2), ok1, ok2)
	}
}

func TestCounterResetDetection(t *testing.T) {
	o, db, now := manualDB(t, Config{Capacity: 16})
	c := o.Counter("convmeter_reset_total", "t")
	db.Sync()
	c.Add(10)
	*now += time.Second
	db.Sample(*now)
	c.Add(10)
	*now += time.Second
	db.Sample(*now)
	// The registry's counters never decrease, but a series can restart
	// from a fresh registry between process incarnations; simulate via a
	// second registry swap... not possible in-process, so verify the
	// seriesq-level behaviour through a gauge stored as the raw value.
	g := o.Gauge("convmeter_fake_total", "t")
	g.Set(100)
	*now += time.Second
	db.Sync()
	db.Sample(*now)
	g.Set(3) // reset: new value below predecessor
	*now += time.Second
	db.Sample(*now)
	r, ok := db.Rate("convmeter_fake_total", *now, 5*time.Second)
	if !ok || math.Abs(r-3) > 1e-9 { // 100→3 contributes 3 over 1s window span... increase 3 over 1s
		t.Errorf("reset Rate = (%g, %t), want 3/s", r, ok)
	}
}

// TestRingBound is the sustained high-cadence sampling test: memory
// must stay within the declared ring bound — fixed rings, capped
// series, no growth — no matter how many sweeps run.
func TestRingBound(t *testing.T) {
	o, db, now := manualDB(t, Config{Capacity: 32, MaxSeries: 8})
	for i := 0; i < 20; i++ {
		o.Counter(obs.Label("convmeter_many_total", "i", string(rune('a'+i))), "t").Inc()
	}
	db.Sync()
	u := db.Usage()
	if u.Series != 8 {
		t.Fatalf("admitted %d series, want the MaxSeries bound 8", u.Series)
	}
	if u.Dropped < 12 {
		t.Errorf("dropped %d series, want >= 12", u.Dropped)
	}
	bytesAfterAdmission := u.RetainedBytes
	if bytesAfterAdmission <= 0 || bytesAfterAdmission > 8*32*16 {
		t.Errorf("retained bytes %d outside the declared bound (8 series x 32 samples x 16B)", bytesAfterAdmission)
	}
	for i := 0; i < 10_000; i++ {
		*now += time.Millisecond
		db.Sample(*now)
		if i%100 == 0 {
			db.Sync()
		}
	}
	u = db.Usage()
	if u.RetainedBytes != bytesAfterAdmission {
		t.Errorf("retained bytes grew under sustained sampling: %d -> %d", bytesAfterAdmission, u.RetainedBytes)
	}
	if u.Series != 8 {
		t.Errorf("series population grew to %d under sustained sampling", u.Series)
	}
	for _, info := range db.Series() {
		if info.Samples > 32 {
			t.Errorf("series %s retains %d samples, ring capacity is 32", info.Name, info.Samples)
		}
	}
	// The rings wrapped thousands of times; the window must still read
	// in chronological order.
	pts := db.Range(db.Series()[0].Name, *now, 10*time.Millisecond)
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("wrapped ring reads out of order at %d: %v", i, pts)
		}
	}
}

func TestStartStopLoop(t *testing.T) {
	o := obs.New()
	c := o.Counter("convmeter_loop_total", "t")
	db := New(Config{Obs: o, Interval: time.Millisecond, Capacity: 128})
	db.Start()
	db.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.Inc()
		if len(db.Range("convmeter_loop_total", db.Now(), time.Minute)) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampling loop never recorded 3 sweeps")
		}
		time.Sleep(time.Millisecond)
	}
	db.Stop()
	db.Stop() // idempotent
	n := len(db.Range("convmeter_loop_total", db.Now(), time.Minute))
	time.Sleep(5 * time.Millisecond)
	if got := len(db.Range("convmeter_loop_total", db.Now(), time.Minute)); got != n {
		t.Errorf("loop still sampling after Stop: %d -> %d", n, got)
	}
}
