// Package seriesq is the tsdb query engine's arithmetic core: windowed
// rate, summary statistics and histogram-quantile estimation over
// explicit sample slices. It is deliberately free of clocks, locks and
// telemetry — the same inputs produce bit-identical outputs on every
// run, platform and goroutine schedule — so it joins the repository's
// deterministic lint scope while its parent package tsdb (which reads
// clocks and samples a live registry) stays on the measured side.
//
// The definitions mirror Prometheus's: Rate is the counter increase per
// second over the window with reset detection, and Quantile is the
// linear-interpolation estimate over cumulative histogram buckets that
// promql's histogram_quantile computes.
package seriesq

import (
	"math"
	"time"
)

// Point is one (timestamp, value) sample. Timestamps are durations on
// the sampling clock's epoch; only differences matter here.
type Point struct {
	T time.Duration
	V float64
}

// Rate returns the per-second increase of a counter series across pts,
// which must be in ascending time order. Counter resets (a sample below
// its predecessor) contribute the post-reset value, exactly like
// Prometheus's rate(): the increase is summed segment by segment and
// divided by the covered time span. The second return is false when
// fewer than two samples span a positive interval — no rate is
// computable from a single instant.
func Rate(pts []Point) (float64, bool) {
	if len(pts) < 2 {
		return 0, false
	}
	span := (pts[len(pts)-1].T - pts[0].T).Seconds()
	if span <= 0 {
		return 0, false
	}
	var inc float64
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d < 0 { // counter reset: the new value is all fresh increase
			d = pts[i].V
		}
		inc += d
	}
	return inc / span, true
}

// Stats is the windowed gauge summary Summarize computes.
type Stats struct {
	N    int
	Min  float64
	Max  float64
	Avg  float64
	Last float64
}

// Summarize folds pts into min/max/avg/last. NaN samples are skipped —
// one poisoned scrape must not wipe the whole window. The second return
// is false when no usable sample remains.
func Summarize(pts []Point) (Stats, bool) {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, p := range pts {
		if math.IsNaN(p.V) {
			continue
		}
		st.N++
		sum += p.V
		st.Last = p.V
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
	}
	if st.N == 0 {
		return Stats{}, false
	}
	st.Avg = sum / float64(st.N)
	return st, true
}

// Quantile estimates the q-quantile (0 <= q <= 1) of a histogram from
// cumulative bucket counts — the Prometheus representation, and what
// DeltaCounts produces for a window. upper holds the ascending finite
// bucket bounds; cum has len(upper)+1 entries, cum[i] counting the
// observations with value <= upper[i] and the final entry (the +Inf
// bucket) the total. A non-monotone prefix (possible after a clamped
// reset delta) is repaired by running maximum. Within a bucket the
// estimate interpolates linearly from the bucket's lower bound (0 for
// the first), and a rank landing in the +Inf bucket reports the highest
// finite bound — the same saturation promql's histogram_quantile
// applies. The second return is false when the histogram is empty or q
// is out of range.
func Quantile(q float64, upper []float64, cum []uint64) (float64, bool) {
	if q < 0 || q > 1 || math.IsNaN(q) || len(cum) != len(upper)+1 {
		return 0, false
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	prev := uint64(0)
	for i := range cum {
		c := cum[i]
		if c < prev { // repair a clamped-reset dent
			c = prev
		}
		if float64(c) >= rank {
			if i == len(upper) { // +Inf bucket: saturate at the last finite bound
				return upper[len(upper)-1], true
			}
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			in := c - prev
			if in == 0 {
				return upper[i], true
			}
			return lo + (upper[i]-lo)*((rank-float64(prev))/float64(in)), true
		}
		prev = c
	}
	return upper[len(upper)-1], true
}

// DeltaCounts subtracts an earlier cumulative-bucket snapshot from a
// later one into out, clamping each bucket at zero (a reset between the
// snapshots must not produce negative observation counts). out must
// have len(later); the slices must not alias unless identical. It
// returns out so callers can chain into Quantile without allocating.
func DeltaCounts(out, later, earlier []uint64) []uint64 {
	for i := range later {
		var e uint64
		if i < len(earlier) {
			e = earlier[i]
		}
		if later[i] >= e {
			out[i] = later[i] - e
		} else {
			out[i] = later[i]
		}
	}
	return out
}
