package seriesq

import (
	"math"
	"testing"
	"time"
)

func pts(vals ...float64) []Point {
	out := make([]Point, len(vals))
	for i, v := range vals {
		out[i] = Point{T: time.Duration(i) * time.Second, V: v}
	}
	return out
}

func TestRate(t *testing.T) {
	cases := []struct {
		name string
		in   []Point
		want float64
		ok   bool
	}{
		{"steady", pts(0, 10, 20, 30), 10, true},
		{"idle", pts(5, 5, 5), 0, true},
		{"reset", pts(0, 10, 2, 4), 14.0 / 3, true}, // 10 + 2 (post-reset) + 2 over 3s
		{"single", pts(7), 0, false},
		{"empty", nil, 0, false},
	}
	for _, tc := range cases {
		got, ok := Rate(tc.in)
		if ok != tc.ok || math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Rate = (%g, %t), want (%g, %t)", tc.name, got, ok, tc.want, tc.ok)
		}
	}
	if _, ok := Rate([]Point{{T: 5 * time.Second, V: 1}, {T: 5 * time.Second, V: 2}}); ok {
		t.Error("Rate over a zero-width span must report not-ok")
	}
}

func TestSummarize(t *testing.T) {
	st, ok := Summarize(pts(3, 1, 4, 1, 5))
	if !ok || st.N != 5 || st.Min != 1 || st.Max != 5 || st.Last != 5 || math.Abs(st.Avg-2.8) > 1e-12 {
		t.Errorf("Summarize = %+v ok=%t", st, ok)
	}
	st, ok = Summarize([]Point{{V: math.NaN()}, {T: time.Second, V: 2}})
	if !ok || st.N != 1 || st.Avg != 2 {
		t.Errorf("NaN sample not skipped: %+v ok=%t", st, ok)
	}
	if _, ok := Summarize([]Point{{V: math.NaN()}}); ok {
		t.Error("all-NaN window must report not-ok")
	}
	if _, ok := Summarize(nil); ok {
		t.Error("empty window must report not-ok")
	}
}

func TestQuantile(t *testing.T) {
	upper := []float64{0.1, 0.5, 1}
	// 10 obs <= 0.1, 30 <= 0.5, 30 <= 1, 10 beyond.
	cum := []uint64{10, 40, 70, 80}
	q50, ok := Quantile(0.5, upper, cum)
	// rank 40 lands exactly at the top of the (0.1, 0.5] bucket.
	if !ok || math.Abs(q50-0.5) > 1e-12 {
		t.Errorf("q50 = %g ok=%t, want 0.5", q50, ok)
	}
	q25, ok := Quantile(0.25, upper, cum)
	// rank 20: 10 into the 30-count (0.1, 0.5] bucket.
	want := 0.1 + 0.4*(10.0/30)
	if !ok || math.Abs(q25-want) > 1e-12 {
		t.Errorf("q25 = %g ok=%t, want %g", q25, ok, want)
	}
	if q0, _ := Quantile(0, upper, cum); q0 != 0 {
		t.Errorf("q0 = %g, want 0 (lower bound of first bucket)", q0)
	}
	if q1, _ := Quantile(1, upper, cum); q1 != 1 {
		t.Errorf("q1 = %g, want saturation at the last finite bound", q1)
	}
	if v, _ := Quantile(0.99, upper, []uint64{0, 0, 0, 100}); v != 1 {
		t.Errorf("all-+Inf histogram quantile = %g, want saturation at 1", v)
	}
	if _, ok := Quantile(0.5, upper, []uint64{0, 0, 0, 0}); ok {
		t.Error("empty histogram must report not-ok")
	}
	if _, ok := Quantile(1.5, upper, cum); ok {
		t.Error("out-of-range q must report not-ok")
	}
	if _, ok := Quantile(0.5, upper, []uint64{1, 2}); ok {
		t.Error("mismatched bucket shapes must report not-ok")
	}
}

// TestQuantileBitExact pins the determinism contract the lint scope
// declares: identical inputs produce bit-identical float64 outputs, on
// every run and regardless of how the window was assembled.
func TestQuantileBitExact(t *testing.T) {
	upper := []float64{1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 30, 60}
	cum := make([]uint64, len(upper)+1)
	acc := uint64(0)
	for i := range cum {
		acc += uint64((i*7919 + 13) % 97)
		cum[i] = acc
	}
	for _, q := range []float64{0.001, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		a, okA := Quantile(q, upper, cum)
		b, okB := Quantile(q, upper, append([]uint64(nil), cum...))
		if okA != okB || math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("q=%g: %x vs %x — quantile estimation is not bit-stable", q, math.Float64bits(a), math.Float64bits(b))
		}
	}
}

func TestDeltaCounts(t *testing.T) {
	out := make([]uint64, 4)
	got := DeltaCounts(out, []uint64{10, 40, 70, 80}, []uint64{5, 20, 30, 35})
	want := []uint64{5, 20, 40, 45}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DeltaCounts = %v, want %v", got, want)
		}
	}
	// A reset between snapshots: later < earlier clamps to the later
	// value, never underflows.
	got = DeltaCounts(out, []uint64{3, 6, 9, 12}, []uint64{10, 40, 70, 80})
	want = []uint64{3, 6, 9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reset DeltaCounts = %v, want %v", got, want)
		}
	}
	// Earlier snapshot shorter than later (bucket layout grew): missing
	// entries read as zero.
	got = DeltaCounts(out[:2], []uint64{7, 9}, nil)
	if got[0] != 7 || got[1] != 9 {
		t.Fatalf("nil-earlier DeltaCounts = %v, want [7 9]", got)
	}
}
