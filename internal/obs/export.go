package obs

import (
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Export writes the bundle's telemetry to files: metricsPath receives
// the registry (Prometheus text, or JSONL when the path ends in .jsonl —
// spans included, one record per line) and tracePath receives the Chrome
// trace-event JSON of all finished spans. Empty paths are skipped;
// a nil *Obs writes nothing. This is the shared backend of the
// --metrics-out/--trace-out command-line flags.
func (o *Obs) Export(metricsPath, tracePath string) error {
	if o == nil {
		return nil
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(f io.Writer) error {
			if strings.HasSuffix(metricsPath, ".jsonl") {
				if err := o.Reg.WriteJSONL(f); err != nil {
					return err
				}
				return o.Trc.WriteJSONL(f)
			}
			return o.Reg.WritePrometheus(f)
		}); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeFile(tracePath, o.Trc.WriteChromeTrace); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path — including any missing parent directories,
// so `-metrics-out out/run1/metrics.prom` works on a fresh checkout —
// runs write, and surfaces the first error, including Close, since a
// truncated telemetry file parses as a lie.
func writeFile(path string, write func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
