package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("convmeter_ops_total", "kind", "conv"), "op invocations").Add(7)
	r.Gauge("convmeter_workers", "worker pool size").Set(4)
	h := r.Histogram("convmeter_op_seconds", "op wall time", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# HELP convmeter_ops_total op invocations",
		"# TYPE convmeter_ops_total counter",
		`convmeter_ops_total{kind="conv"} 7`,
		"# TYPE convmeter_workers gauge",
		"convmeter_workers 4",
		"# TYPE convmeter_op_seconds histogram",
		`convmeter_op_seconds_bucket{le="0.001"} 1`,
		`convmeter_op_seconds_bucket{le="0.1"} 2`,
		`convmeter_op_seconds_bucket{le="+Inf"} 3`,
		"convmeter_op_seconds_sum 2.0505",
		"convmeter_op_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q\n%s", want, text)
		}
	}

	// Every non-comment line must be "<series> <value>" with a parseable
	// value — the same invariant cmd/obscheck enforces in CI.
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	o := New()
	o.Counter("convmeter_x_total", "h").Add(3)
	sp := o.Start("work")
	sp.End()

	var sb strings.Builder
	if err := o.Reg.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if err := o.Trc.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2:\n%s", len(lines), sb.String())
	}
	var metric struct {
		Type  string  `json:"type"`
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &metric); err != nil {
		t.Fatal(err)
	}
	if metric.Type != "counter" || metric.Name != "convmeter_x_total" || metric.Value != 3 {
		t.Fatalf("metric record = %+v", metric)
	}
	var span struct {
		Type string `json:"type"`
		Name string `json:"name"`
		ID   int64  `json:"id"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatal(err)
	}
	if span.Type != "span" || span.Name != "work" || span.ID == 0 {
		t.Fatalf("span record = %+v", span)
	}
}

// traceDoc decodes a Chrome trace-event document for assertions.
type traceDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TsUS  float64        `json:"ts"`
		DurUS float64        `json:"dur"`
		Pid   int            `json:"pid"`
		Tid   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteTraceEventsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTraceEvents(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents": []`) {
		t.Fatalf("empty doc must render an empty array, got:\n%s", sb.String())
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents decoded as null")
	}
}

func TestWriteTraceEventsRejectsNegativeTime(t *testing.T) {
	var sb strings.Builder
	err := WriteTraceEvents(&sb, []TraceEvent{{Name: "bad", TsUS: -1}})
	if err == nil {
		t.Fatal("negative timestamp must error")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	root := tr.Start("experiment")
	child := root.Child("step 0")
	child.End()
	root.End()

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	// Two X events plus one thread_name metadata event for the track.
	var xNames []string
	meta := 0
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			xNames = append(xNames, e.Name)
			if e.Pid != 1 {
				t.Fatalf("event %q pid %d, want 1", e.Name, e.Pid)
			}
		case "M":
			meta++
			if e.Name != "thread_name" {
				t.Fatalf("metadata event named %q", e.Name)
			}
			if got, _ := e.Args["name"].(string); got != "experiment" {
				t.Fatalf("track named %q, want experiment", got)
			}
		}
	}
	if len(xNames) != 2 || meta != 1 {
		t.Fatalf("got X=%v meta=%d, want 2 X events and 1 metadata event", xNames, meta)
	}
	// Child must be time-contained within the root event.
	var rootEv, childEv *struct{ ts, end float64 }
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		span := &struct{ ts, end float64 }{e.TsUS, e.TsUS + e.DurUS}
		if e.Name == "experiment" {
			rootEv = span
		} else {
			childEv = span
		}
	}
	if rootEv == nil || childEv == nil {
		t.Fatal("missing expected events")
	}
	if childEv.ts < rootEv.ts || childEv.end > rootEv.end {
		t.Fatalf("child [%g,%g] not contained in root [%g,%g]",
			childEv.ts, childEv.end, rootEv.ts, rootEv.end)
	}
}

func TestExportFiles(t *testing.T) {
	o := New()
	o.Counter("convmeter_export_total", "h").Inc()
	sp := o.Start("run")
	sp.End()

	dir := t.TempDir()
	prom := filepath.Join(dir, "metrics.prom")
	jsonl := filepath.Join(dir, "metrics.jsonl")
	trace := filepath.Join(dir, "trace.json")
	if err := o.Export(prom, trace); err != nil {
		t.Fatal(err)
	}
	if err := o.Export(jsonl, ""); err != nil {
		t.Fatal(err)
	}

	promData, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promData), "convmeter_export_total 1") {
		t.Fatalf("prometheus export:\n%s", promData)
	}
	jsonlData, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(jsonlData)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("jsonl line %d: %v", i+1, err)
		}
	}
	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(traceData, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, kind := range []string{"conv", "linear", "relu", "pool"} {
		r.Counter(Label("convmeter_ops_total", "kind", kind), "h").Add(100)
		h := r.Histogram(Label("convmeter_op_seconds", "kind", kind), "h", DefaultDurationBuckets())
		h.Observe(1e-4)
	}
	var sb strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := r.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteChromeTrace(b *testing.B) {
	tr := NewTracerWithClock(fakeClock(time.Microsecond))
	root := tr.Start("root")
	for i := 0; i < 64; i++ {
		sp := root.Child("op")
		sp.End()
	}
	root.End()
	var sb strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := tr.WriteChromeTrace(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExportCreatesParentDirs: -metrics-out/-trace-out paths under
// directories that don't exist yet must work — Export creates them.
func TestExportCreatesParentDirs(t *testing.T) {
	o := New()
	o.Counter("convmeter_export_total", "h").Inc()

	dir := t.TempDir()
	prom := filepath.Join(dir, "a", "b", "metrics.prom")
	trace := filepath.Join(dir, "c", "trace.json")
	if err := o.Export(prom, trace); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{prom, trace} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("export did not create %s: %v", p, err)
		}
	}
}
