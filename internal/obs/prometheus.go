package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines per family, then one
// sample line per series, with histogram families expanded into
// _bucket/_sum/_count series. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	lastBase := ""
	for _, p := range points {
		if p.Base != lastBase {
			lastBase = p.Base
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Base, escapeHelp(p.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Base, p.Type); err != nil {
				return err
			}
		}
		if err := writePromSeries(w, p); err != nil {
			return err
		}
	}
	return nil
}

// writePromSeries renders one Point's sample lines.
func writePromSeries(w io.Writer, p Point) error {
	if p.Type != "histogram" {
		_, err := fmt.Fprintf(w, "%s %s\n", p.Name, formatPromValue(p.Value))
		return err
	}
	_, labels := splitSeries(p.Name)
	for _, b := range p.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = formatPromValue(b.LE)
		}
		series := p.Base + "_bucket{"
		if labels != "" {
			series += labels + ","
		}
		series += `le="` + le + `"}`
		if _, err := fmt.Fprintf(w, "%s %d\n", series, b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", suffixSeries(p.Base, labels, "_sum"), formatPromValue(p.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixSeries(p.Base, labels, "_count"), p.Count)
	return err
}

// suffixSeries builds base_suffix{labels} (labels may be empty).
func suffixSeries(base, labels, suffix string) string {
	if labels == "" {
		return base + suffix
	}
	return base + suffix + "{" + labels + "}"
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the text-format escapes for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
