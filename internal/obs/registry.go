package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named metrics. Handles are
// registered once (typically at setup, outside loops) and then updated
// lock-free on hot paths via atomics. Series names may carry a
// Prometheus-style label body built with Label; series sharing a base
// name form one family and must share one metric type.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	families map[string]family // base name → fixed type and help
}

type family struct{ typ, help string }

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		families: map[string]family{},
	}
}

// register records a family's type and help, panicking on a type
// conflict: reusing one base name for two metric kinds is a programming
// error that would corrupt every exporter.
func (r *Registry) register(name, typ, help string) {
	base, _ := splitSeries(name)
	if f, ok := r.families[base]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric family %q registered as %s, reused as %s", base, f.typ, typ))
		}
		return
	}
	r.families[base] = family{typ: typ, help: help}
}

// Counter registers or fetches the named counter. Nil-safe.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, "counter", help)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers or fetches the named gauge. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, "gauge", help)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram registers or fetches the named histogram with the given
// ascending upper bucket bounds (an implicit +Inf bucket is appended).
// Nil-safe; panics on empty or unsorted bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not strictly ascending", name))
		}
	}
	r.register(name, "histogram", help)
	h := &Histogram{upper: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Uint64, len(buckets)+1)
	r.hists[name] = h
	return h
}

// addFloatBits atomically adds v to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing float64. The zero value is ready;
// a nil *Counter is a no-op.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter. Negative deltas are ignored — a counter
// that can decrease poisons every rate() computed from it.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloatBits(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrarily settable float64. The zero value is ready; a
// nil *Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloatBits(&g.bits, v)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. A nil *Histogram is
// a no-op.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // one per bound plus the final +Inf bucket
	sum    atomic.Uint64   // float64 bits
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[searchBucket(h.upper, v)].Add(1)
	addFloatBits(&h.sum, v)
	h.n.Add(1)
}

// searchBucket returns the index of the first bound >= v, or len(upper)
// for the +Inf bucket. Open-coded binary search: sort.SearchFloat64s
// takes a closure and costs an allocation-free but measurable call on
// the Observe hot path.
func searchBucket(upper []float64, v float64) int {
	lo, hi := 0, len(upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefaultDurationBuckets are the standard latency bounds, in seconds,
// used by every *_seconds histogram in the tree: 1µs to 60s.
func DefaultDurationBuckets() []float64 {
	return []float64{
		1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2,
		0.1, 0.5, 1, 5, 10, 30, 60,
	}
}

// BucketCount is one cumulative histogram bucket in a Snapshot:
// observations with value <= LE. LE is +Inf for the final bucket.
type BucketCount struct {
	LE    float64
	Count uint64
}

// Point is one metric series in a Snapshot.
type Point struct {
	Name    string // full series name, possibly with a label body
	Base    string // family name (Name up to any '{')
	Type    string // "counter", "gauge" or "histogram"
	Help    string
	Value   float64       // counter/gauge value; histogram sum
	Count   uint64        // histogram observation count
	Buckets []BucketCount // cumulative; histograms only
}

// Snapshot returns every series, sorted by (family, series name) so
// exports are deterministic. Nil-safe (returns nil).
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Point
	for name, c := range r.counters {
		base, _ := splitSeries(name)
		out = append(out, Point{
			Name: name, Base: base, Type: "counter",
			Help: r.families[base].help, Value: c.Value(),
		})
	}
	for name, g := range r.gauges {
		base, _ := splitSeries(name)
		out = append(out, Point{
			Name: name, Base: base, Type: "gauge",
			Help: r.families[base].help, Value: g.Value(),
		})
	}
	for name, h := range r.hists {
		base, _ := splitSeries(name)
		p := Point{
			Name: name, Base: base, Type: "histogram",
			Help: r.families[base].help, Value: h.Sum(), Count: h.Count(),
		}
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := math.Inf(1)
			if i < len(h.upper) {
				le = h.upper[i]
			}
			p.Buckets = append(p.Buckets, BucketCount{LE: le, Count: cum})
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base != out[j].Base {
			return out[i].Base < out[j].Base
		}
		return out[i].Name < out[j].Name
	})
	return out
}
