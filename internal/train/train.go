// Package train is a working data-parallel trainer — the real counterpart
// of the distributed-training pipeline the paper models: N worker
// replicas (one goroutine each) compute gradients on their own data
// shards with the real execution engine (internal/exec), synchronise them
// with the real ring all-reduce (internal/allreduce), and apply identical
// SGD updates, exactly the Horovod data-parallel semantics of §2. The
// tests verify the properties the paper's performance model presumes:
// replicas stay bit-synchronised, and N-way data parallelism computes the
// same update as one large batch.
package train

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"convmeter/internal/allreduce"
	"convmeter/internal/exec"
	"convmeter/internal/graph"
	"convmeter/internal/obs"
)

// Batch is one worker's training micro-batch.
type Batch struct {
	Input  *exec.Tensor
	Labels []int
}

// DataSource supplies each worker's batch for a step.
type DataSource func(worker, step int) (Batch, error)

// Optimizer selects the parameter-update rule.
type Optimizer int

// Available optimizers.
const (
	SGD Optimizer = iota
	// Adam is the optimizer of the paper's training setup ("Adam as the
	// optimizer method").
	Adam
)

// Config controls a data-parallel run.
type Config struct {
	Workers   int
	GroupSize int     // hierarchical all-reduce group size; 0 = flat ring
	LR        float32 // learning rate
	Optimizer Optimizer
	Seed      int64 // weight initialisation seed (shared by all replicas)
	// Obs, when non-nil, receives step counters/latencies and a span tree:
	// one "step N" span per training step, with the replicas' "fwd"/"bwd"
	// kernel spans and the all-reduce "grad" span nested underneath.
	Obs *obs.Obs
}

// Result reports a training run.
type Result struct {
	// Losses holds the per-step mean loss across workers.
	Losses []float64
	// Checksums holds each worker's weight digest after the final step;
	// data-parallel training is correct only if they are all equal.
	Checksums []float64
}

// DataParallel trains the graph for the given number of steps. All
// replicas start from the same seed (identical weights), compute local
// gradients concurrently, average them with ring all-reduce, and step.
func DataParallel(g *graph.Graph, cfg Config, steps int, data DataSource) (*Result, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("train: %d workers", cfg.Workers)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("train: non-positive learning rate %g", cfg.LR)
	}
	if steps <= 0 {
		return nil, fmt.Errorf("train: %d steps", steps)
	}
	replicas := make([]*exec.Executor, cfg.Workers)
	adam := make([]*exec.AdamState, cfg.Workers)
	for w := range replicas {
		e, err := exec.NewExecutor(g, cfg.Seed)
		if err != nil {
			return nil, err
		}
		replicas[w] = e
		if cfg.Optimizer == Adam {
			adam[w] = exec.NewAdamState()
		}
	}
	var (
		stepsC *obs.Counter
		stepH  *obs.Histogram
	)
	if cfg.Obs != nil {
		stepsC = cfg.Obs.Counter("convmeter_train_steps_total",
			"data-parallel training steps completed")
		stepH = cfg.Obs.Histogram("convmeter_train_step_seconds",
			"wall-clock per data-parallel step (compute + all-reduce + update)",
			obs.DefaultDurationBuckets())
	}
	res := &Result{}
	scale := float32(1) / float32(cfg.Workers)
	for step := 0; step < steps; step++ {
		var stepT0 time.Time
		stepSp := cfg.Obs.Start("step " + strconv.Itoa(step))
		stepObs := cfg.Obs.WithSpan(stepSp)
		if cfg.Obs != nil {
			stepT0 = time.Now()
			for w := range replicas {
				replicas[w].SetObs(stepObs)
			}
		}
		losses := make([]float64, cfg.Workers)
		gradMaps := make([]map[int]*exec.WeightGrads, cfg.Workers)
		vectors := make([][]float32, cfg.Workers)
		errs := make([]error, cfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				batch, err := data(w, step)
				if err != nil {
					errs[w] = err
					return
				}
				loss, grads, err := replicas[w].Gradients(batch.Input, batch.Labels)
				if err != nil {
					errs[w] = err
					return
				}
				losses[w] = loss
				gradMaps[w] = grads
				vectors[w] = replicas[w].FlattenGrads(grads)
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Gradient synchronisation: the real ring all-reduce.
		gradSp := stepObs.Start("grad")
		var err error
		if cfg.GroupSize > 0 && cfg.Workers%cfg.GroupSize == 0 {
			err = allreduce.HierarchicalObs(vectors, cfg.GroupSize, cfg.Obs)
		} else {
			err = allreduce.RingObs(vectors, cfg.Obs)
		}
		gradSp.End()
		if err != nil {
			return nil, err
		}
		// Average and apply — every replica performs the identical update.
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v := vectors[w]
				for i := range v {
					v[i] *= scale
				}
				if err := replicas[w].UnflattenGrads(v, gradMaps[w]); err != nil {
					errs[w] = err
					return
				}
				if cfg.Optimizer == Adam {
					replicas[w].ApplyAdam(adam[w], gradMaps[w], cfg.LR)
				} else {
					replicas[w].ApplySGD(gradMaps[w], cfg.LR)
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		mean := 0.0
		for _, l := range losses {
			mean += l
		}
		res.Losses = append(res.Losses, mean/float64(cfg.Workers))
		if cfg.Obs != nil {
			stepH.Observe(time.Since(stepT0).Seconds())
			stepsC.Inc()
		}
		stepSp.End()
	}
	for _, r := range replicas {
		res.Checksums = append(res.Checksums, r.WeightChecksum())
	}
	return res, nil
}

// PrototypeTask builds a learnable synthetic classification task: each
// class has a fixed random prototype tensor; samples are the class
// prototype plus Gaussian noise. A small CNN separates the classes within
// a few SGD steps.
type PrototypeTask struct {
	protos  []*exec.Tensor
	noise   float32
	classes int
	shape   graph.Shape
}

// NewPrototypeTask creates a task over the graph's input shape.
func NewPrototypeTask(g *graph.Graph, classes int, noise float32, seed int64) (*PrototypeTask, error) {
	in, err := g.InputShape()
	if err != nil {
		return nil, err
	}
	if classes < 2 {
		return nil, fmt.Errorf("train: need >=2 classes, got %d", classes)
	}
	rng := rand.New(rand.NewSource(seed))
	task := &PrototypeTask{noise: noise, classes: classes, shape: in}
	for c := 0; c < classes; c++ {
		p := exec.NewTensor(1, in)
		for i := range p.Data {
			p.Data[i] = float32(rng.NormFloat64())
		}
		task.protos = append(task.protos, p)
	}
	return task, nil
}

// Source returns a DataSource producing batchPerWorker samples per worker
// per step, deterministically derived from (worker, step).
func (t *PrototypeTask) Source(batchPerWorker int) DataSource {
	return func(worker, step int) (Batch, error) {
		if batchPerWorker <= 0 {
			return Batch{}, fmt.Errorf("train: batch %d", batchPerWorker)
		}
		rng := rand.New(rand.NewSource(int64(worker)*1_000_003 + int64(step)*7919 + 17))
		in := exec.NewTensor(batchPerWorker, t.shape)
		labels := make([]int, batchPerWorker)
		n := int(t.shape.Elems())
		for b := 0; b < batchPerWorker; b++ {
			l := rng.Intn(t.classes)
			labels[b] = l
			dst := in.Data[b*n : (b+1)*n]
			src := t.protos[l].Data
			for i := range dst {
				dst[i] = src[i] + t.noise*float32(rng.NormFloat64())
			}
		}
		return Batch{Input: in, Labels: labels}, nil
	}
}
