// Package train is a working data-parallel trainer — the real counterpart
// of the distributed-training pipeline the paper models: N worker
// replicas (one goroutine each) compute gradients on their own data
// shards with the real execution engine (internal/exec), synchronise them
// with the real ring all-reduce (internal/allreduce), and apply identical
// SGD updates, exactly the Horovod data-parallel semantics of §2. The
// tests verify the properties the paper's performance model presumes:
// replicas stay bit-synchronised, and N-way data parallelism computes the
// same update as one large batch.
//
// The trainer is elastic, in the style of the fault-tolerant Horovod
// deployments the paper's measurements come from: when a worker crashes
// at a step boundary (injected via internal/faults) or is declared dead
// after all-reduce retry exhaustion, the ring re-forms with N−1 members,
// gradient averaging renormalises to the survivor count, and data
// sources built with SourceGlobal recompute the per-device batch
// b = B/N — keeping the N-dependence of the paper's T_grad model
// observable across failures.
package train

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"convmeter/internal/allreduce"
	"convmeter/internal/driftwatch"
	"convmeter/internal/exec"
	"convmeter/internal/faults"
	"convmeter/internal/graph"
	"convmeter/internal/obs"
	"convmeter/internal/obs/critpath"
)

// Batch is one worker's training micro-batch.
type Batch struct {
	Input  *exec.Tensor
	Labels []int
}

// DataSource supplies each worker's batch for a step.
type DataSource func(worker, step int) (Batch, error)

// Optimizer selects the parameter-update rule.
type Optimizer int

// Available optimizers.
const (
	SGD Optimizer = iota
	// Adam is the optimizer of the paper's training setup ("Adam as the
	// optimizer method").
	Adam
)

// Transport selects the gradient-synchronisation transport.
type Transport int

// Available transports. TransportChan runs the ring over in-process
// channels; TransportTCP runs it over real loopback sockets, where
// dropped and reset connections are physically possible.
const (
	TransportChan Transport = iota
	TransportTCP
)

// Config controls a data-parallel run.
type Config struct {
	Workers   int
	GroupSize int     // hierarchical all-reduce group size; 0 = flat ring
	LR        float32 // learning rate
	Optimizer Optimizer
	Seed      int64 // weight initialisation seed (shared by all replicas)
	// Obs, when non-nil, receives step counters/latencies and a span tree:
	// one "step N" span per training step, with the replicas' "fwd"/"bwd"
	// kernel spans and the all-reduce "grad" span nested underneath.
	Obs *obs.Obs

	// Transport selects the all-reduce transport (default TransportChan).
	// GroupSize-based hierarchical reduction applies only to the chan
	// transport with resilience off; otherwise a flat ring is used.
	Transport Transport
	// Faults, when non-nil, injects deterministic faults into the
	// transports and schedules worker crashes at step boundaries.
	Faults *faults.Injector
	// OpTimeout bounds one chunk send/receive in the resilient
	// transports; 0 keeps the transport default.
	OpTimeout time.Duration
	// Retry bounds transport-level retries (timeouts, ring dials).
	Retry allreduce.RetryPolicy
	// StepRetries is how many times one step's all-reduce is re-attempted
	// over the same live set before a worker is blamed and declared dead;
	// <=0 means 2.
	StepRetries int
	// MinWorkers is the floor below which elastic degradation refuses to
	// drop further members and the step fails instead; <=0 means 1.
	MinWorkers int

	// Drift, when non-nil together with PredictStep, receives one
	// (predicted, measured) wall-clock pair per completed step — the live
	// feed of the prediction-quality monitor. The predicted side is the
	// fitted model's T_iter for the step's live-worker count; the
	// measured side is the step's wall-clock time.
	Drift *driftwatch.Stream
	// PredictStep returns the predicted step time in seconds for a given
	// live-worker count (the paper's T_iter at b = B/N).
	PredictStep func(liveWorkers int) float64

	// Crit, when non-nil together with a tracing Obs, receives one
	// critical-path attribution per completed step, reconstructed from
	// the step's worker-tagged span DAG. When Drift is also set, each
	// attribution is forwarded via NoteCause so drift events carry the
	// dominant phase and blamed worker.
	Crit *critpath.Tracker
	// AlignClocks runs the transports' clock-offset handshake when the
	// resilient all-reduce forms a ring, so cross-worker span timestamps
	// are mapped onto worker 0's timeline before attribution. Requires
	// Obs with a tracer; a no-op otherwise.
	AlignClocks bool
	// ClockSkews simulates per-worker clock skew (indexed by original
	// worker id; missing entries are zero): each worker's spans are
	// recorded shifted by its skew, and the alignment handshake must
	// measure the shifts back out. Test/chaos plumbing — production
	// clocks share the process monotonic clock and need no skew.
	ClockSkews []time.Duration
}

// skewOf returns worker w's simulated clock skew (zero when unset).
func (c Config) skewOf(w int) time.Duration {
	if w >= 0 && w < len(c.ClockSkews) {
		return c.ClockSkews[w]
	}
	return 0
}

// resilient reports whether the run needs the fault-tolerant paths.
func (c Config) resilient() bool {
	return c.Faults != nil || c.OpTimeout > 0
}

func (c Config) stepRetries() int {
	if c.StepRetries <= 0 {
		return 2
	}
	return c.StepRetries
}

func (c Config) minWorkers() int {
	if c.MinWorkers <= 0 {
		return 1
	}
	return c.MinWorkers
}

// Result reports a training run.
type Result struct {
	// Losses holds the per-step mean loss across live workers.
	Losses []float64
	// Checksums holds each live worker's weight digest after the final
	// step; data-parallel training is correct only if they are all equal.
	Checksums []float64
	// Live lists the surviving workers' original ids in ascending order.
	Live []int
}

// trainTelemetry bundles the trainer's metric handles; nil disables all.
type trainTelemetry struct {
	steps   *obs.Counter
	stepH   *obs.Histogram
	retries *obs.Counter
	removed *obs.Counter
	liveG   *obs.Gauge
	lossG   *obs.Gauge
}

func newTrainTelemetry(o *obs.Obs) *trainTelemetry {
	if o == nil {
		return nil
	}
	return &trainTelemetry{
		steps: o.Counter("convmeter_train_steps_total",
			"data-parallel training steps completed"),
		stepH: o.Histogram("convmeter_train_step_seconds",
			"wall-clock per data-parallel step (compute + all-reduce + update)",
			obs.DefaultDurationBuckets()),
		retries: o.Counter("convmeter_train_allreduce_retries_total",
			"whole-step gradient all-reduce re-attempts after transport failures"),
		removed: o.Counter("convmeter_train_workers_removed_total",
			"workers declared dead (crash schedule or blame after retry exhaustion)"),
		liveG: o.Gauge("convmeter_train_live_workers",
			"workers currently participating in the ring"),
		lossG: o.Gauge("convmeter_train_loss",
			"mean loss across live workers at the last completed step"),
	}
}

// Trainer is a stateful elastic data-parallel trainer. Create one with
// NewTrainer, drive it with Step/Run, and shrink it — explicitly via
// RemoveWorker or implicitly via fault handling — without losing the
// surviving replicas' state.
type Trainer struct {
	g        *graph.Graph
	cfg      Config
	replicas []*exec.Executor // indexed by original worker id
	adam     []*exec.AdamState
	live     []int // original ids, ascending
	step     int
	tel      *trainTelemetry
}

// NewTrainer builds the replica set: every worker starts from the same
// seed, so all replicas hold identical weights.
func NewTrainer(g *graph.Graph, cfg Config) (*Trainer, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("train: %d workers", cfg.Workers)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("train: non-positive learning rate %g", cfg.LR)
	}
	t := &Trainer{g: g, cfg: cfg, tel: newTrainTelemetry(cfg.Obs)}
	t.replicas = make([]*exec.Executor, cfg.Workers)
	t.adam = make([]*exec.AdamState, cfg.Workers)
	for w := range t.replicas {
		e, err := exec.NewExecutor(g, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.replicas[w] = e
		if cfg.Optimizer == Adam {
			t.adam[w] = exec.NewAdamState()
		}
		t.live = append(t.live, w)
	}
	if t.tel != nil {
		t.tel.liveG.Set(float64(len(t.live)))
	}
	return t, nil
}

// Live returns the surviving workers' original ids in ascending order.
func (t *Trainer) Live() []int {
	return append([]int(nil), t.live...)
}

// LiveCount returns the number of surviving workers. Data sources built
// around a global batch call this per step to recompute b = B/N.
func (t *Trainer) LiveCount() int { return len(t.live) }

// StepIndex returns the index of the next step to run.
func (t *Trainer) StepIndex() int { return t.step }

// Checksums returns the live replicas' weight digests in Live() order.
func (t *Trainer) Checksums() []float64 {
	out := make([]float64, 0, len(t.live))
	for _, w := range t.live {
		out = append(out, t.replicas[w].WeightChecksum())
	}
	return out
}

// RemoveWorker declares a worker dead: the ring re-forms without it and
// subsequent gradient averages renormalise over the survivors.
func (t *Trainer) RemoveWorker(id int) error {
	for i, w := range t.live {
		if w == id {
			if len(t.live)-1 < t.cfg.minWorkers() {
				return fmt.Errorf("train: removing worker %d leaves %d live, below minimum %d",
					id, len(t.live)-1, t.cfg.minWorkers())
			}
			// Copy-on-write: Step holds snapshots of the live slice across
			// removals, so the old backing array must stay intact.
			next := make([]int, 0, len(t.live)-1)
			next = append(next, t.live[:i]...)
			next = append(next, t.live[i+1:]...)
			t.live = next
			if t.tel != nil {
				t.tel.removed.Inc()
				t.tel.liveG.Set(float64(len(t.live)))
			}
			return nil
		}
	}
	return fmt.Errorf("train: worker %d is not live", id)
}

// join runs fn(0..n-1) concurrently and returns the first error —
// errgroup-style first-error capture, so a failed worker fails the step
// deterministically instead of contributing a partial result.
func join(n int, fn func(i int) error) error {
	var (
		wg    sync.WaitGroup
		once  sync.Once
		first error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(i); err != nil {
				once.Do(func() { first = err })
			}
		}(i)
	}
	wg.Wait()
	return first
}

// Step runs one data-parallel training step over the live workers:
// crash boundaries, gradient computation, fault-tolerant all-reduce with
// elastic degradation, renormalised averaging, and the optimizer update.
// It returns the mean loss across the workers that contributed.
func (t *Trainer) Step(data DataSource) (float64, error) {
	step := t.step
	// Crash boundary: scheduled deaths happen before the step's compute.
	for _, w := range t.Live() {
		if t.cfg.Faults.CrashAt(w, step) {
			if err := t.RemoveWorker(w); err != nil {
				return 0, fmt.Errorf("train: crash of worker %d at step %d: %w", w, step, err)
			}
		}
	}
	live := t.live
	n := len(live)
	if n == 0 {
		return 0, fmt.Errorf("train: no live workers at step %d", step)
	}

	var stepT0 time.Time
	// The attribution engine analyzes only this step's spans: remember
	// where the tracer's record stream stands before any step span ends.
	feedCrit := t.cfg.Crit != nil && t.cfg.Obs != nil && t.cfg.Obs.Trc != nil
	var critMark int
	if feedCrit {
		critMark = t.cfg.Obs.Trc.Len()
	}
	stepSp := t.cfg.Obs.Start("step " + strconv.Itoa(step))
	stepObs := t.cfg.Obs.WithSpan(stepSp)
	feedDrift := t.cfg.Drift != nil && t.cfg.PredictStep != nil
	if t.tel != nil || feedDrift {
		stepT0 = time.Now()
	}
	// The predicted side belongs to the worker count the step *computes*
	// with; mid-sync degradation changes the survivors, not the batches
	// already drawn at b = B/N.
	nCompute := n
	defer stepSp.End()

	// Local gradients, concurrently, with first-error capture.
	losses := make([]float64, n)
	gradMaps := make([]map[int]*exec.WeightGrads, n)
	vectors := make([][]float32, n)
	if err := join(n, func(i int) error {
		w := live[i]
		// Per-worker "compute" span, tagged with the worker's original id
		// (and simulated skew) so the tracer can attribute it — and the
		// fwd/bwd kernel spans nested under it — when reconstructing the
		// step's cross-worker DAG. It opens before the straggler sleep:
		// injected compute latency must be charged to compute.
		perObs := stepObs.WithWorker(w).WithClockSkew(t.cfg.skewOf(w))
		csp := perObs.Start("compute")
		defer csp.End()
		if t.cfg.Obs != nil {
			t.replicas[w].SetObs(perObs.WithSpan(csp))
		}
		// Persistent-straggler injection: a slowed worker pays its extra
		// compute latency here, before the ring, stretching the measured
		// step time the drift monitor compares against the prediction.
		if d := t.cfg.Faults.SlowAt(w, step); d > 0 {
			time.Sleep(d)
		}
		batch, err := data(w, step)
		if err != nil {
			return fmt.Errorf("train: worker %d step %d data: %w", w, step, err)
		}
		loss, grads, err := t.replicas[w].Gradients(batch.Input, batch.Labels)
		if err != nil {
			return fmt.Errorf("train: worker %d step %d gradients: %w", w, step, err)
		}
		losses[i] = loss
		gradMaps[i] = grads
		vectors[i] = t.replicas[w].FlattenGrads(grads)
		return nil
	}); err != nil {
		return 0, err
	}

	// Gradient synchronisation with elastic degradation. Each attempt
	// reduces snapshots so a failed ring never poisons the originals.
	reduced, err := t.syncGradients(stepObs, step, live, vectors)
	if err != nil {
		return 0, err
	}
	// Dead workers may have been dropped during sync; keep survivors only.
	if len(t.live) != n {
		idx := make(map[int]int, n)
		for i, w := range live {
			idx[w] = i
		}
		live = t.live
		kept := make([][]float32, 0, len(live))
		keptGrads := make([]map[int]*exec.WeightGrads, 0, len(live))
		keptLosses := make([]float64, 0, len(live))
		for _, w := range live {
			kept = append(kept, reduced[idx[w]])
			keptGrads = append(keptGrads, gradMaps[idx[w]])
			keptLosses = append(keptLosses, losses[idx[w]])
		}
		reduced, gradMaps, losses = kept, keptGrads, keptLosses
		n = len(live)
	}

	// Average and apply — every live replica performs the identical
	// update, renormalised over the survivor count.
	scale := float32(1) / float32(n)
	if err := join(n, func(i int) error {
		w := live[i]
		v := reduced[i]
		for k := range v {
			v[k] *= scale
		}
		if err := t.replicas[w].UnflattenGrads(v, gradMaps[i]); err != nil {
			return fmt.Errorf("train: worker %d step %d: %w", w, step, err)
		}
		if t.cfg.Optimizer == Adam {
			t.replicas[w].ApplyAdam(t.adam[w], gradMaps[i], t.cfg.LR)
		} else {
			t.replicas[w].ApplySGD(gradMaps[i], t.cfg.LR)
		}
		return nil
	}); err != nil {
		return 0, err
	}

	mean := 0.0
	for _, l := range losses {
		mean += l
	}
	mean /= float64(n)
	if t.tel != nil {
		t.tel.stepH.Observe(time.Since(stepT0).Seconds())
		t.tel.steps.Inc()
		t.tel.lossG.Set(mean)
	}
	if feedCrit {
		trc := t.cfg.Obs.Trc
		att := critpath.AnalyzeStep(step, trc.SpansFrom(critMark), trc.Offsets().Snapshot())
		t.cfg.Crit.Record(att)
		// Stamp the cause before the drift feed below so an event fired
		// by this step's pair already names the phase and blamed worker.
		t.cfg.Drift.NoteCause(att.Dominant, att.Blame)
	}
	if feedDrift {
		t.cfg.Drift.Observe(t.cfg.PredictStep(nCompute), time.Since(stepT0).Seconds())
	}
	t.step++
	return mean, nil
}

// syncGradients all-reduces the live workers' gradient vectors with
// retry and blame-based elastic degradation. It returns the reduced
// (summed) vectors indexed like the input; entries of workers that died
// mid-sync are stale and must be discarded by the caller.
func (t *Trainer) syncGradients(stepObs *obs.Obs, step int, live []int, vectors [][]float32) ([][]float32, error) {
	gradSp := stepObs.Start("grad")
	defer gradSp.End()
	// Per-op transport spans (ar.send/ar.wait/ar.recv) nest under grad.
	gradObs := stepObs.WithSpan(gradSp)

	// Fast path — the pre-elastic behaviour, including hierarchical
	// reduction, when no resilience features are requested.
	if !t.cfg.resilient() {
		var err error
		if t.cfg.GroupSize > 0 && len(vectors)%t.cfg.GroupSize == 0 {
			err = allreduce.HierarchicalObs(vectors, t.cfg.GroupSize, gradObs)
		} else {
			err = allreduce.RingObs(vectors, gradObs)
		}
		return vectors, err
	}

	index := make(map[int]int, len(live))
	for i, w := range live {
		index[w] = i
	}
	attempt := uint64(0)
	remaining := t.cfg.stepRetries()
	for {
		ids := t.Live()
		snaps := make([][]float32, len(ids))
		for i, w := range ids {
			snaps[i] = append([]float32(nil), vectors[index[w]]...)
		}
		// ClockSkews are indexed by ring position; re-map from original
		// worker ids each attempt, since elastic degradation reshapes the
		// ring.
		var skews []time.Duration
		if len(t.cfg.ClockSkews) > 0 {
			skews = make([]time.Duration, len(ids))
			for i, w := range ids {
				skews[i] = t.cfg.skewOf(w)
			}
		}
		opts := allreduce.Options{
			OpTimeout: t.cfg.OpTimeout,
			Retry:     t.cfg.Retry,
			Faults:    t.cfg.Faults,
			Obs:       gradObs,
			WorkerIDs: ids,
			// Distinct fault-decision space per (training step, attempt):
			// a retried all-reduce draws fresh faults, deterministically.
			SeqBase:     uint64(step)<<24 | attempt<<12,
			AlignClocks: t.cfg.AlignClocks,
			ClockSkews:  skews,
		}
		var err error
		if t.cfg.Transport == TransportTCP {
			err = allreduce.RingTCPOpts(snaps, opts)
		} else {
			err = allreduce.RingOpts(snaps, opts)
		}
		if err == nil {
			out := make([][]float32, len(vectors))
			for i, w := range ids {
				out[index[w]] = snaps[i]
			}
			return out, nil
		}
		attempt++
		remaining--
		if remaining > 0 {
			if t.tel != nil {
				t.tel.retries.Inc()
			}
			time.Sleep(t.cfg.Retry.StepBackoff(int(attempt), uint64(step)))
			continue
		}
		// Retry budget exhausted over this live set: declare the blamed
		// worker dead, re-form the ring with N−1 members, and start a
		// fresh budget. Shrinking strictly bounds the loop.
		blamed, ok := allreduce.Blame(err)
		if !ok {
			return nil, fmt.Errorf("train: step %d all-reduce failed without blame: %w", step, err)
		}
		if rmErr := t.RemoveWorker(blamed); rmErr != nil {
			return nil, fmt.Errorf("train: step %d all-reduce failed (%v); cannot degrade: %w", step, err, rmErr)
		}
		remaining = t.cfg.stepRetries()
	}
}

// Run executes `steps` training steps and reports the loss curve and
// final replica checksums.
func (t *Trainer) Run(steps int, data DataSource) (*Result, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("train: %d steps", steps)
	}
	res := &Result{}
	for s := 0; s < steps; s++ {
		loss, err := t.Step(data)
		if err != nil {
			return nil, err
		}
		res.Losses = append(res.Losses, loss)
	}
	res.Checksums = t.Checksums()
	res.Live = t.Live()
	return res, nil
}

// DataParallel trains the graph for the given number of steps. All
// replicas start from the same seed (identical weights), compute local
// gradients concurrently, average them with ring all-reduce, and step.
func DataParallel(g *graph.Graph, cfg Config, steps int, data DataSource) (*Result, error) {
	t, err := NewTrainer(g, cfg)
	if err != nil {
		return nil, err
	}
	if steps <= 0 {
		return nil, fmt.Errorf("train: %d steps", steps)
	}
	return t.Run(steps, data)
}

// PrototypeTask builds a learnable synthetic classification task: each
// class has a fixed random prototype tensor; samples are the class
// prototype plus Gaussian noise. A small CNN separates the classes within
// a few SGD steps.
type PrototypeTask struct {
	protos  []*exec.Tensor
	noise   float32
	classes int
	shape   graph.Shape
}

// NewPrototypeTask creates a task over the graph's input shape.
func NewPrototypeTask(g *graph.Graph, classes int, noise float32, seed int64) (*PrototypeTask, error) {
	in, err := g.InputShape()
	if err != nil {
		return nil, err
	}
	if classes < 2 {
		return nil, fmt.Errorf("train: need >=2 classes, got %d", classes)
	}
	rng := rand.New(rand.NewSource(seed))
	task := &PrototypeTask{noise: noise, classes: classes, shape: in}
	for c := 0; c < classes; c++ {
		p := exec.NewTensor(1, in)
		for i := range p.Data {
			p.Data[i] = float32(rng.NormFloat64())
		}
		task.protos = append(task.protos, p)
	}
	return task, nil
}

// Source returns a DataSource producing batchPerWorker samples per worker
// per step, deterministically derived from (worker, step).
func (t *PrototypeTask) Source(batchPerWorker int) DataSource {
	return t.sized(func(int, int) int { return batchPerWorker })
}

// SourceGlobal returns a DataSource that holds the global batch roughly
// constant under elastic degradation: each live worker draws
// b = max(1, globalBatch / live()) samples, so when the ring shrinks the
// per-device batch grows — the recomputation the paper's T_grad model
// needs to keep its N-dependence observable.
func (t *PrototypeTask) SourceGlobal(globalBatch int, live func() int) DataSource {
	return t.sized(func(int, int) int {
		n := live()
		if n <= 0 {
			return 0
		}
		b := globalBatch / n
		if b < 1 {
			b = 1
		}
		return b
	})
}

// sized builds the deterministic sampler around a per-call batch size.
func (t *PrototypeTask) sized(batchFor func(worker, step int) int) DataSource {
	return func(worker, step int) (Batch, error) {
		batch := batchFor(worker, step)
		if batch <= 0 {
			return Batch{}, fmt.Errorf("train: batch %d", batch)
		}
		rng := rand.New(rand.NewSource(int64(worker)*1_000_003 + int64(step)*7919 + 17))
		in := exec.NewTensor(batch, t.shape)
		labels := make([]int, batch)
		n := int(t.shape.Elems())
		for b := 0; b < batch; b++ {
			l := rng.Intn(t.classes)
			labels[b] = l
			dst := in.Data[b*n : (b+1)*n]
			src := t.protos[l].Data
			for i := range dst {
				dst[i] = src[i] + t.noise*float32(rng.NormFloat64())
			}
		}
		return Batch{Input: in, Labels: labels}, nil
	}
}
