package train

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"convmeter/internal/allreduce"
	"convmeter/internal/faults"
)

// elasticConfig is the resilient chan-transport config the elastic tests
// share: tight deadlines, small retry budgets, injected faults.
func elasticConfig(inj *faults.Injector) Config {
	return Config{
		Workers: 3, LR: 0.1, Seed: 7,
		Faults:    inj,
		OpTimeout: 50 * time.Millisecond,
		Retry:     allreduce.RetryPolicy{Attempts: 2, Backoff: time.Millisecond, Max: 5 * time.Millisecond},
	}
}

func mustInjector(t *testing.T, seed int64, prof faults.Profile) *faults.Injector {
	t.Helper()
	inj, err := faults.New(seed, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// closeEnough compares losses/checksums across runs that take different
// code paths (snapshot copies vs in-place reduction) but perform the
// identical arithmetic.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestElasticCrashAtStartMatchesReference: a worker crashing at step 0
// must leave a run indistinguishable from one that never had the worker —
// the elastic trainer's gradient renormalisation (scale 1/(N−1)) is what
// makes the two coincide.
func TestElasticCrashAtStartMatchesReference(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	steps, batch := 6, 4

	cfg := elasticConfig(mustInjector(t, 3, faults.Profile{Crashes: map[int]int{2: 0}}))
	faulty, err := DataParallel(g, cfg, steps, task.Source(batch))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(faulty.Live); got != "[0 1]" {
		t.Fatalf("live set after crash = %v", faulty.Live)
	}

	// Reference: 2 workers from the start; the same (worker, step)-keyed
	// source hands workers 0 and 1 the identical batches.
	ref, err := DataParallel(g, Config{Workers: 2, LR: 0.1, Seed: 7}, steps, task.Source(batch))
	if err != nil {
		t.Fatal(err)
	}
	for i := range faulty.Losses {
		if !closeEnough(faulty.Losses[i], ref.Losses[i]) {
			t.Fatalf("step %d loss %g, reference %g", i, faulty.Losses[i], ref.Losses[i])
		}
	}
	if len(faulty.Checksums) != len(ref.Checksums) {
		t.Fatalf("%d survivors, reference has %d", len(faulty.Checksums), len(ref.Checksums))
	}
	for i := range faulty.Checksums {
		if !closeEnough(faulty.Checksums[i], ref.Checksums[i]) {
			t.Fatalf("survivor %d checksum %g, reference %g", i, faulty.Checksums[i], ref.Checksums[i])
		}
	}
}

// TestElasticMidRunCrashMatchesManualRemoval: a scheduled mid-run crash
// must be equivalent to pausing the run at that boundary and removing the
// worker by hand through the Trainer API.
func TestElasticMidRunCrashMatchesManualRemoval(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	crashStep, steps, batch := 2, 6, 4

	cfg := elasticConfig(mustInjector(t, 3, faults.Profile{Crashes: map[int]int{2: crashStep}}))
	tr, err := NewTrainer(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := tr.Run(steps, task.Source(batch))
	if err != nil {
		t.Fatal(err)
	}

	refTr, err := NewTrainer(g, Config{Workers: 3, LR: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var refLosses []float64
	head, err := refTr.Run(crashStep, task.Source(batch))
	if err != nil {
		t.Fatal(err)
	}
	refLosses = append(refLosses, head.Losses...)
	if err := refTr.RemoveWorker(2); err != nil {
		t.Fatal(err)
	}
	tail, err := refTr.Run(steps-crashStep, task.Source(batch))
	if err != nil {
		t.Fatal(err)
	}
	refLosses = append(refLosses, tail.Losses...)

	for i := range faulty.Losses {
		if !closeEnough(faulty.Losses[i], refLosses[i]) {
			t.Fatalf("step %d loss %g, manual-removal reference %g", i, faulty.Losses[i], refLosses[i])
		}
	}
	refSums := tail.Checksums
	for i := range faulty.Checksums {
		if !closeEnough(faulty.Checksums[i], refSums[i]) {
			t.Fatalf("survivor %d checksum %g, reference %g", i, faulty.Checksums[i], refSums[i])
		}
	}
}

// TestElasticBlameRemovesFaultyWorker: persistent hard faults on one
// worker's TCP connections must get exactly that worker blamed and
// removed, after which the run completes on the survivors.
func TestElasticBlameRemovesFaultyWorker(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := elasticConfig(mustInjector(t, 9, faults.Profile{Drop: 1, Workers: []int{1}}))
	cfg.Transport = TransportTCP
	cfg.StepRetries = 1 // exhaust instantly; blame must still find worker 1
	res, err := DataParallel(g, cfg, 3, task.Source(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res.Live); got != "[0 2]" {
		t.Fatalf("live set = %v, want worker 1 removed", res.Live)
	}
	spread := 0.0
	for _, c := range res.Checksums {
		spread = math.Max(spread, math.Abs(c-res.Checksums[0]))
	}
	if spread != 0 {
		t.Fatalf("survivors desynchronised: spread %g", spread)
	}
}

// TestElasticMinWorkersFloor: degradation must refuse to drop below
// MinWorkers and surface a clean error instead.
func TestElasticMinWorkersFloor(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := elasticConfig(mustInjector(t, 3, faults.Profile{Crashes: map[int]int{0: 0, 1: 0}}))
	cfg.MinWorkers = 2
	_, err = DataParallel(g, cfg, 2, task.Source(4))
	if err == nil {
		t.Fatal("run should fail when crashes push below MinWorkers")
	}
}

// TestSourceGlobalRespreadsBatch: the global-batch source recomputes the
// per-device batch b = B/N from the live count.
func TestSourceGlobalRespreadsBatch(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	live := 4
	src := task.SourceGlobal(12, func() int { return live })
	b, err := src(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Input.Batch; got != 3 {
		t.Fatalf("batch at N=4: %d, want 3", got)
	}
	live = 3
	b, err = src(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Input.Batch; got != 4 {
		t.Fatalf("batch at N=3: %d, want 4", got)
	}
	live = 100
	b, err = src(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Input.Batch; got != 1 {
		t.Fatalf("batch floor: %d, want 1", got)
	}
}

// TestJoinFirstError: the errgroup-style join waits for every goroutine
// and reports the first error.
func TestJoinFirstError(t *testing.T) {
	if err := join(8, func(int) error { return nil }); err != nil {
		t.Fatalf("all-success join: %v", err)
	}
	wantErr := errors.New("boom")
	ran := make([]bool, 8)
	err := join(8, func(i int) error {
		ran[i] = true
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("join err = %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("goroutine %d never ran; join must not short-circuit execution", i)
		}
	}
}

// TestElasticNoGoroutineLeak: a chaotic TCP run must leave no ring or
// trainer goroutines behind.
func TestElasticNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := faults.ByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := elasticConfig(mustInjector(t, 7, prof))
	cfg.Workers = 4
	cfg.Transport = TransportTCP
	if _, err := DataParallel(g, cfg, 4, task.Source(4)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
