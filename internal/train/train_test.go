package train

import (
	"math"
	"testing"

	"convmeter/internal/exec"
	"convmeter/internal/graph"
)

// trainNet builds a small trainable CNN (3 classes).
func trainNet(t *testing.T) *graph.Graph {
	t.Helper()
	b, x := graph.NewBuilder("trainnet", graph.Shape{C: 2, H: 8, W: 8})
	x = b.Conv(x, "conv1", 4, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.MaxPool2d(x, "pool", 2, 2, 0)
	x = b.Conv(x, "conv2", 8, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flat")
	x = b.Linear(x, "fc", 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDataParallelLearns(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DataParallel(g, Config{Workers: 4, LR: 0.1, Seed: 7}, 25, task.Source(8))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first*0.5 {
		t.Fatalf("data-parallel training did not learn: loss %g -> %g", first, last)
	}
}

func TestReplicasStaySynchronised(t *testing.T) {
	// The core data-parallel invariant the paper's model relies on:
	// identical initialisation + all-reduced gradients keep every replica
	// identical.
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DataParallel(g, Config{Workers: 8, GroupSize: 4, LR: 0.05, Seed: 9}, 10, task.Source(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Checksums); i++ {
		if res.Checksums[i] != res.Checksums[0] {
			t.Fatalf("replica %d diverged: %g vs %g", i, res.Checksums[i], res.Checksums[0])
		}
	}
}

func TestDataParallelMatchesLargeBatch(t *testing.T) {
	// 2 workers × batch 4 must compute (numerically almost) the same
	// update as 1 worker × batch 8 on the concatenated data — the
	// weak-scaling equivalence distributed data parallelism is built on.
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	shard := task.Source(4)
	// Single-worker source concatenating both shards of step `step`.
	combined := func(worker, step int) (Batch, error) {
		a, err := shard(0, step)
		if err != nil {
			return Batch{}, err
		}
		b, err := shard(1, step)
		if err != nil {
			return Batch{}, err
		}
		in := exec.NewTensor(8, a.Input.Shape)
		copy(in.Data[:len(a.Input.Data)], a.Input.Data)
		copy(in.Data[len(a.Input.Data):], b.Input.Data)
		return Batch{Input: in, Labels: append(append([]int{}, a.Labels...), b.Labels...)}, nil
	}
	parallel, err := DataParallel(g, Config{Workers: 2, LR: 0.05, Seed: 11}, 5, shard)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := DataParallel(g, Config{Workers: 1, LR: 0.05, Seed: 11}, 5, combined)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(parallel.Checksums[0] - mono.Checksums[0]); diff > 1e-2*math.Abs(mono.Checksums[0]) {
		t.Fatalf("2×4 and 1×8 training diverged: %g vs %g", parallel.Checksums[0], mono.Checksums[0])
	}
	// Per-step mean losses must agree closely too.
	for i := range parallel.Losses {
		if rel := math.Abs(parallel.Losses[i]-mono.Losses[i]) / mono.Losses[i]; rel > 0.02 {
			t.Fatalf("step %d loss mismatch: %g vs %g", i, parallel.Losses[i], mono.Losses[i])
		}
	}
}

func TestDataParallelAdamLearnsAndStaysSynchronised(t *testing.T) {
	// The paper trains with Adam; the real trainer must support it with
	// the same invariants: learning progress and bit-identical replicas
	// (Adam moments are part of the replicated state).
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DataParallel(g, Config{Workers: 4, LR: 0.01, Optimizer: Adam, Seed: 3}, 25, task.Source(8))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first*0.6 {
		t.Fatalf("Adam training did not learn: %g -> %g", first, last)
	}
	for i := 1; i < len(res.Checksums); i++ {
		if res.Checksums[i] != res.Checksums[0] {
			t.Fatalf("Adam replica %d diverged", i)
		}
	}
}

func TestAdamDiffersFromSGD(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	sgd, err := DataParallel(g, Config{Workers: 2, LR: 0.01, Seed: 4}, 5, task.Source(4))
	if err != nil {
		t.Fatal(err)
	}
	adam, err := DataParallel(g, Config{Workers: 2, LR: 0.01, Optimizer: Adam, Seed: 4}, 5, task.Source(4))
	if err != nil {
		t.Fatal(err)
	}
	if sgd.Checksums[0] == adam.Checksums[0] {
		t.Fatal("Adam and SGD produced identical weights — optimizer switch inert")
	}
}

func TestDataParallelValidation(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := task.Source(2)
	if _, err := DataParallel(g, Config{Workers: 0, LR: 0.1, Seed: 1}, 1, src); err == nil {
		t.Fatal("expected worker-count error")
	}
	if _, err := DataParallel(g, Config{Workers: 1, LR: 0, Seed: 1}, 1, src); err == nil {
		t.Fatal("expected learning-rate error")
	}
	if _, err := DataParallel(g, Config{Workers: 1, LR: 0.1, Seed: 1}, 0, src); err == nil {
		t.Fatal("expected step-count error")
	}
	if _, err := DataParallel(g, Config{Workers: 1, LR: 0.1, Seed: 1}, 1, task.Source(0)); err == nil {
		t.Fatal("expected batch error from source")
	}
}

func TestPrototypeTaskValidation(t *testing.T) {
	g := trainNet(t)
	if _, err := NewPrototypeTask(g, 1, 0.3, 1); err == nil {
		t.Fatal("expected class-count error")
	}
}
