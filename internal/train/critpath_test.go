package train

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"convmeter/internal/allreduce"
	"convmeter/internal/faults"
	"convmeter/internal/obs"
	"convmeter/internal/obs/critpath"
)

// critpathRun trains a small net with the critical-path engine wired in
// and returns the tracker's report. A non-nil profile schedules the
// injected faults; OpTimeout keeps the trainer on the resilient
// transport paths (where the clock handshake and per-op spans live)
// even on a clean run.
func critpathRun(t *testing.T, transport Transport, prof *faults.Profile, steps int) critpath.Report {
	t.Helper()
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var inj *faults.Injector
	if prof != nil {
		inj = mustInjector(t, 7, *prof)
	}
	o := obs.New()
	tracker := critpath.NewTracker(o)
	cfg := Config{
		Workers: 3, LR: 0.05, Seed: 1,
		Obs:       o,
		Transport: transport,
		Faults:    inj,
		OpTimeout: 500 * time.Millisecond,
		Retry:     allreduce.RetryPolicy{Attempts: 2, Backoff: time.Millisecond, Max: 5 * time.Millisecond},
		Crit:      tracker,
		// Small deterministic skews: attribution must still be correct
		// because the alignment handshake measures them back out.
		AlignClocks: true,
		ClockSkews:  []time.Duration{0, 2 * time.Millisecond, -1500 * time.Microsecond},
	}
	if _, err := DataParallel(g, cfg, steps, task.Source(3)); err != nil {
		t.Fatal(err)
	}
	return tracker.Report()
}

// verifyBlame checks one run-plus-replay pair of a seeded-straggler
// scenario: every slowed step wait-dominated with worker 0 named and at
// least one full delay of caused idle, every verdict identical across
// the replay. Returns the violations instead of failing, so the caller
// can retry the whole scenario when the host's scheduler drowned the
// injected signal.
func verifyBlame(t *testing.T, rep, rep2 critpath.Report, steps, onset int, delay time.Duration) []string {
	t.Helper()
	var problems []string
	if len(rep.Steps) != steps {
		return []string{fmt.Sprintf("%d step attributions, want %d", len(rep.Steps), steps)}
	}
	for _, att := range rep.Steps {
		if err := critpath.Validate(att); err != nil {
			t.Fatal(err) // malformed attributions are a bug, never noise
		}
		if att.Step < onset {
			continue
		}
		if att.Dominant != critpath.ClassWait {
			problems = append(problems, fmt.Sprintf("slowed step %d dominant = %q, want wait (%+v)", att.Step, att.Dominant, att))
		}
		if att.Blame != 0 {
			problems = append(problems, fmt.Sprintf("slowed step %d blames worker %d, want straggler 0", att.Step, att.Blame))
		}
		if att.BlameWait < delay.Seconds() {
			problems = append(problems, fmt.Sprintf("slowed step %d blame_wait = %gs, want >= one straggler delay (%v)",
				att.Step, att.BlameWait, delay))
		}
	}
	// Seed replay: the blame sequence is a pure function of the seeded
	// schedule, not of host timing.
	for i := range rep.Steps {
		if i >= len(rep2.Steps) {
			problems = append(problems, fmt.Sprintf("replay produced %d steps, want %d", len(rep2.Steps), len(rep.Steps)))
			break
		}
		a, b := rep.Steps[i], rep2.Steps[i]
		if a.Step != b.Step || a.Blame != b.Blame || a.Dominant != b.Dominant {
			problems = append(problems, fmt.Sprintf("replay diverged at step %d: (%q, blame %d) vs (%q, blame %d)",
				a.Step, a.Dominant, a.Blame, b.Dominant, b.Blame))
		}
	}
	return problems
}

// TestCritpathBlamesSlowWorker: a seeded persistent straggler must be
// deterministically blamed — on both transports, every slowed step's
// attribution is wait-dominated with the slowed worker named, a second
// run with the same seed reproduces the identical blame sequence, and
// the handshake goroutines do not leak. The blame property is
// signal-over-noise: a race-instrumented oversubscribed host can stall
// a compute goroutine for hundreds of milliseconds, which genuinely —
// and correctly — reads as a compute-dominated step. Such stalls are
// rare, so the scenario gets a bounded number of full re-runs before a
// violation counts as a failure.
func TestCritpathBlamesSlowWorker(t *testing.T) {
	const (
		steps    = 5
		onset    = 2
		attempts = 3
	)
	// SlowDelay dwarfs the net's ~ms compute even under -race, so the
	// barrier idle it causes must dominate every slowed step.
	prof := &faults.Profile{
		Slowdowns: map[int]int{0: onset},
		SlowDelay: 80 * time.Millisecond,
	}
	for _, tc := range []struct {
		name      string
		transport Transport
	}{
		{"chan", TransportChan},
		{"tcp", TransportTCP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var baseline int
			var problems []string
			for attempt := 1; attempt <= attempts; attempt++ {
				rep := critpathRun(t, tc.transport, prof, steps)
				if attempt == 1 {
					// Baseline after the first run: the exec layer lazily
					// starts a persistent worker pool on first use, which is
					// shared state, not a leak. Later runs must return here.
					baseline = runtime.NumGoroutine()
				}
				rep2 := critpathRun(t, tc.transport, prof, steps)
				problems = verifyBlame(t, rep, rep2, steps, onset, prof.SlowDelay)
				if len(problems) == 0 {
					break
				}
				if attempt < attempts {
					t.Logf("attempt %d hit scheduler noise, retrying: %s", attempt, problems[0])
				}
			}
			for _, p := range problems {
				t.Error(p)
			}
			// The clock handshake and transport workers must all have
			// drained; poll briefly — goroutine teardown is asynchronous.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > baseline {
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<16)
					n := runtime.Stack(buf, true)
					t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
						runtime.NumGoroutine(), baseline, buf[:n])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestCritpathCleanRunNoBlame: without injected faults no worker may be
// blamed on either transport — natural scheduler jitter must not read
// as a straggler. Like the blame test, the property is
// signal-over-noise (an extreme host stall genuinely mimics a
// straggler), so the scenario gets a bounded number of re-runs.
func TestCritpathCleanRunNoBlame(t *testing.T) {
	const attempts = 3
	for _, tc := range []struct {
		name      string
		transport Transport
	}{
		{"chan", TransportChan},
		{"tcp", TransportTCP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var problems []string
			for attempt := 1; attempt <= attempts; attempt++ {
				rep := critpathRun(t, tc.transport, nil, 4)
				problems = problems[:0]
				if len(rep.Steps) != 4 {
					t.Fatalf("%d step attributions, want 4", len(rep.Steps))
				}
				var compute float64
				for _, att := range rep.Steps {
					if err := critpath.Validate(att); err != nil {
						t.Fatal(err)
					}
					if att.Blame != -1 {
						problems = append(problems, fmt.Sprintf("clean step %d blames worker %d (%+v)", att.Step, att.Blame, att))
					}
					compute += att.Compute
				}
				if compute <= 0 {
					t.Fatal("clean run attributed zero compute")
				}
				if len(problems) == 0 {
					break
				}
				if attempt < attempts {
					t.Logf("attempt %d hit scheduler noise, retrying: %s", attempt, problems[0])
				}
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}
