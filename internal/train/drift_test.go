package train

import (
	"testing"
	"time"

	"convmeter/internal/driftwatch"
	"convmeter/internal/faults"
)

// driftStream builds a stream tuned like the exttrainfaults feed: two
// calibration pairs, short warmup, drift threshold sized for relative
// step-time residuals.
func driftStream(mon *driftwatch.Monitor) *driftwatch.Stream {
	return mon.StreamOpts("trainnet", "iter", driftwatch.Options{
		Window: 32, CalibrateN: 2, Delta: 0.5, Lambda: 8, Warmup: 3,
	})
}

// TestStepFeedsDriftPairs: with Drift+PredictStep configured, every
// completed step contributes exactly one (predicted, measured) pair,
// and the predicted side sees the live-worker count.
func TestStepFeedsDriftPairs(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := driftwatch.New(driftwatch.Config{})
	var liveSeen []int
	cfg := Config{
		Workers: 2, LR: 0.05, Seed: 1,
		Drift: driftStream(mon),
		PredictStep: func(live int) float64 {
			liveSeen = append(liveSeen, live)
			return 0.001
		},
	}
	tr, err := NewTrainer(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 6
	if _, err := tr.Run(steps, task.Source(2)); err != nil {
		t.Fatal(err)
	}
	snap := mon.Snapshot()
	if len(snap.Streams) != 1 || snap.Streams[0].Pairs != steps {
		t.Fatalf("drift snapshot = %+v, want %d pairs on one stream", snap, steps)
	}
	if len(liveSeen) != steps {
		t.Fatalf("PredictStep called %d times, want %d", len(liveSeen), steps)
	}
	for i, n := range liveSeen {
		if n != 2 {
			t.Errorf("step %d: PredictStep saw %d live workers, want 2", i, n)
		}
	}
}

// TestDriftDisabledWithoutPredictor: a stream without a predictor (or a
// predictor without a stream) must not feed or crash.
func TestDriftDisabledWithoutPredictor(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := driftwatch.New(driftwatch.Config{})
	st := driftStream(mon)
	for _, cfg := range []Config{
		{Workers: 2, LR: 0.05, Seed: 1, Drift: st},
		{Workers: 2, LR: 0.05, Seed: 1, PredictStep: func(int) float64 { return 1 }},
	} {
		if _, err := DataParallel(g, cfg, 2, task.Source(2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Snapshot().Pairs; got != 0 {
		t.Errorf("half-configured drift feed observed %d pairs, want 0", got)
	}
}

// TestSlowdownProfileStretchesSteps: the slowdown profile injects its
// persistent straggler into the gradient closure, so measured step time
// jumps by ~SlowDelay from the onset step — and the drift stream fed
// from those measurements detects it while a clean run stays silent.
func TestSlowdownProfileStretchesSteps(t *testing.T) {
	g := trainNet(t)
	task, err := NewPrototypeTask(g, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := faults.ByName("slowdown")
	if err != nil {
		t.Fatal(err)
	}
	onset := prof.Slowdowns[0]
	const steps = 10

	run := func(inj *faults.Injector) *driftwatch.Stream {
		t.Helper()
		mon := driftwatch.New(driftwatch.Config{})
		st := driftStream(mon)
		cfg := Config{
			Workers: 2, LR: 0.05, Seed: 1,
			Faults: inj,
			Drift:  st,
			// A healthy-step estimate: the measured baseline is a couple of
			// ms of real compute; κ-calibration absorbs the exact offset.
			PredictStep: func(int) float64 { return 0.002 },
		}
		if _, err := DataParallel(g, cfg, steps, task.Source(2)); err != nil {
			t.Fatal(err)
		}
		return st
	}

	inj := mustInjector(t, 7, prof)
	t0 := time.Now()
	slowed := run(inj)
	elapsed := time.Since(t0)

	if got := inj.CountByClass()[faults.ClassSlow]; got != steps-onset {
		t.Errorf("slow events = %d, want %d (steps %d..%d)", got, steps-onset, onset, steps-1)
	}
	if minTotal := time.Duration(steps-onset) * prof.SlowDelay; elapsed < minTotal {
		t.Errorf("slowed run took %v, below the injected minimum %v", elapsed, minTotal)
	}
	snap := slowed.Snapshot()
	if snap.Events < 1 || snap.State != driftwatch.StateDrifting {
		t.Errorf("drift stream missed the slowdown: %+v", snap)
	}

	clean := run(nil)
	if snap := clean.Snapshot(); snap.Events != 0 {
		t.Errorf("clean run raised %d drift events: %+v", snap.Events, snap)
	}
}
