// Package testrace reports whether the binary was built with the race
// detector, so allocation-count assertions can skip themselves: the
// race runtime instruments memory operations and inflates
// testing.AllocsPerRun counts, making 0-allocs/op contracts
// unverifiable under -race. The race and non-race builds each compile
// exactly one of the two tagged files defining Enabled.
package testrace

import "testing"

// SkipIfRace skips t when the race detector is active. Call it at the
// top of every test that asserts exact allocation counts.
func SkipIfRace(t *testing.T) {
	if Enabled {
		t.Helper()
		t.Skip("allocation counts are inflated under the race detector")
	}
}
