//go:build !race

package testrace

// Enabled reports that this binary was built without -race.
const Enabled = false
