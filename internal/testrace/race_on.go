//go:build race

package testrace

// Enabled reports that this binary was built with -race.
const Enabled = true
