package allreduce

import (
	"bytes"
	"testing"

	"convmeter/internal/obs"
)

func TestRingTCPMatchesChannelRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		tcpVecs, want := makeVectors(n, 513, int64(n*31))
		chanVecs := make([][]float32, n)
		for i := range tcpVecs {
			chanVecs[i] = append([]float32(nil), tcpVecs[i]...)
		}
		if err := RingTCP(tcpVecs); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Ring(chanVecs); err != nil {
			t.Fatal(err)
		}
		checkAllEqualSum(t, tcpVecs, want)
		// Bitwise agreement with the channel implementation: both sum the
		// same chunks in the same ring order.
		for w := range tcpVecs {
			for k := range tcpVecs[w] {
				if tcpVecs[w][k] != chanVecs[w][k] {
					t.Fatalf("n=%d worker %d elem %d: tcp %g vs chan %g",
						n, w, k, tcpVecs[w][k], chanVecs[w][k])
				}
			}
		}
	}
}

func TestRingTCPSingleWorker(t *testing.T) {
	v := [][]float32{{1, 2, 3}}
	if err := RingTCP(v); err != nil {
		t.Fatal(err)
	}
	if v[0][1] != 2 {
		t.Fatal("single-worker TCP ring must not modify data")
	}
}

func TestRingTCPErrors(t *testing.T) {
	if err := RingTCP(nil); err == nil {
		t.Fatal("expected no-workers error")
	}
	if err := RingTCP([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestRingTCPShortVector(t *testing.T) {
	// More workers than elements: empty chunks must frame correctly.
	vectors, want := makeVectors(6, 2, 9)
	if err := RingTCP(vectors); err != nil {
		t.Fatal(err)
	}
	checkAllEqualSum(t, vectors, want)
}

func TestChunkFraming(t *testing.T) {
	var buf bytes.Buffer
	orig := []float32{1.5, -2.25, 0, 3e8}
	if err := writeChunk(&buf, orig, obs.SpanContext{}, nil); err != nil {
		t.Fatal(err)
	}
	back, err := readChunk(&buf, len(orig), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("length %d", len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("elem %d: %g vs %g", i, back[i], orig[i])
		}
	}
	// Empty chunk.
	buf.Reset()
	if err := writeChunk(&buf, nil, obs.SpanContext{}, nil); err != nil {
		t.Fatal(err)
	}
	if back, err := readChunk(&buf, 8, nil); err != nil || len(back) != 0 {
		t.Fatalf("empty chunk: %v %v", back, err)
	}
	// Truncated stream.
	buf.Reset()
	buf.Write([]byte{4, 0, 0, 0, 1, 2})
	if _, err := readChunk(&buf, 8, nil); err == nil {
		t.Fatal("expected truncation error")
	}
	// A length prefix beyond the ring's chunk bound must be rejected
	// before any allocation happens.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	buf.Write(make([]byte, frameHeaderLen-4)) // rest of the frame header
	if _, err := readChunk(&buf, 8, nil); err == nil {
		t.Fatal("expected size rejection")
	}
	// Corrupted payload must fail CRC validation.
	buf.Reset()
	if err := writeChunk(&buf, orig, obs.SpanContext{}, nil); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[frameHeaderLen+2] ^= 0x10 // flip a payload bit
	if _, err := readChunk(bytes.NewReader(frame), len(orig), nil); err == nil {
		t.Fatal("expected CRC rejection")
	}
}
