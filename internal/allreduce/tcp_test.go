package allreduce

import (
	"bytes"
	"context"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"convmeter/internal/obs"
)

func TestRingTCPMatchesChannelRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		tcpVecs, want := makeVectors(n, 513, int64(n*31))
		chanVecs := make([][]float32, n)
		for i := range tcpVecs {
			chanVecs[i] = append([]float32(nil), tcpVecs[i]...)
		}
		if err := RingTCP(tcpVecs); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Ring(chanVecs); err != nil {
			t.Fatal(err)
		}
		checkAllEqualSum(t, tcpVecs, want)
		// Bitwise agreement with the channel implementation: both sum the
		// same chunks in the same ring order.
		for w := range tcpVecs {
			for k := range tcpVecs[w] {
				if tcpVecs[w][k] != chanVecs[w][k] {
					t.Fatalf("n=%d worker %d elem %d: tcp %g vs chan %g",
						n, w, k, tcpVecs[w][k], chanVecs[w][k])
				}
			}
		}
	}
}

func TestRingTCPSingleWorker(t *testing.T) {
	v := [][]float32{{1, 2, 3}}
	if err := RingTCP(v); err != nil {
		t.Fatal(err)
	}
	if v[0][1] != 2 {
		t.Fatal("single-worker TCP ring must not modify data")
	}
}

func TestRingTCPErrors(t *testing.T) {
	if err := RingTCP(nil); err == nil {
		t.Fatal("expected no-workers error")
	}
	if err := RingTCP([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestRingTCPShortVector(t *testing.T) {
	// More workers than elements: empty chunks must frame correctly.
	vectors, want := makeVectors(6, 2, 9)
	if err := RingTCP(vectors); err != nil {
		t.Fatal(err)
	}
	checkAllEqualSum(t, vectors, want)
}

func TestChunkFraming(t *testing.T) {
	var buf bytes.Buffer
	orig := []float32{1.5, -2.25, 0, 3e8}
	if err := writeChunk(&buf, orig, obs.SpanContext{}, nil); err != nil {
		t.Fatal(err)
	}
	back, err := readChunk(&buf, len(orig), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("length %d", len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("elem %d: %g vs %g", i, back[i], orig[i])
		}
	}
	// Empty chunk.
	buf.Reset()
	if err := writeChunk(&buf, nil, obs.SpanContext{}, nil); err != nil {
		t.Fatal(err)
	}
	if back, err := readChunk(&buf, 8, nil); err != nil || len(back) != 0 {
		t.Fatalf("empty chunk: %v %v", back, err)
	}
	// Truncated stream.
	buf.Reset()
	buf.Write([]byte{4, 0, 0, 0, 1, 2})
	if _, err := readChunk(&buf, 8, nil); err == nil {
		t.Fatal("expected truncation error")
	}
	// A length prefix beyond the ring's chunk bound must be rejected
	// before any allocation happens.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	buf.Write(make([]byte, frameHeaderLen-4)) // rest of the frame header
	if _, err := readChunk(&buf, 8, nil); err == nil {
		t.Fatal("expected size rejection")
	}
	// Corrupted payload must fail CRC validation.
	buf.Reset()
	if err := writeChunk(&buf, orig, obs.SpanContext{}, nil); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[frameHeaderLen+2] ^= 0x10 // flip a payload bit
	if _, err := readChunk(bytes.NewReader(frame), len(orig), nil); err == nil {
		t.Fatal("expected CRC rejection")
	}
}

// countFDs reports the number of open file descriptors, or -1 where
// /proc is unavailable.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestRingTCPWiringFailureClosesConns reproduces the partial-wiring
// leak: when the accept side of the ring times out while the dials
// succeed (a peer that wires half its sockets, then stalls), the
// wiring-error return must tear down the connections that *were*
// established. The pre-fix code registered the teardown defer below the
// error check, so every dialled conn outlived the call.
//
// The scenario is forced deterministically: OpTimeout is chosen so the
// accept-deadline product overflows to zero (deadline = now, accepts
// fail immediately) while the dialer timeout stays effectively
// unbounded (dials succeed against the listener backlog).
func TestRingTCPWiringFailureClosesConns(t *testing.T) {
	before := countFDs(t)
	if before < 0 {
		t.Skip("/proc/self/fd unavailable; fd accounting needs Linux")
	}
	vectors, _ := makeVectors(3, 16, 7)
	err := RingTCPOpts(vectors, Options{
		OpTimeout: 1 << 62, // ×(attempts+1)=4 wraps to 0: accept deadline = now
		Retry:     RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Max: time.Millisecond},
	})
	if err == nil {
		t.Fatal("expected a ring wiring error from the expired accept deadline")
	}
	if !strings.Contains(err.Error(), "ring wiring") {
		t.Fatalf("error %v is not a wiring failure; the scenario no longer exercises the teardown path", err)
	}
	if after := countFDs(t); after > before {
		t.Fatalf("wiring failure leaked %d file descriptor(s): %d before, %d after", after-before, before, after)
	}
}

// TestDialRetryBackoffHonoursCancellation guards the backoff pause in
// dialRetry: once the run's context is cancelled, the retry loop must
// return promptly instead of sleeping out the remaining backoff
// schedule. The pre-fix time.Sleep kept a cancelled run pinned for the
// full pause (10s here; the test allows 2s of scheduler slack).
func TestDialRetryBackoffHonoursCancellation(t *testing.T) {
	// Bind then close a port so dials fail instantly with refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	c, err := dialRetry(addr, Options{
		Ctx:       ctx,
		OpTimeout: time.Second,
		Retry:     RetryPolicy{Attempts: 100, Backoff: 10 * time.Second, Max: 10 * time.Second},
	}, nil, 1)
	if err == nil {
		_ = c.Close()
		t.Fatal("expected a dial error against a closed port")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dialRetry returned after %v; the backoff pause must honour cancellation", elapsed)
	}
}
