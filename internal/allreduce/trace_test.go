package allreduce

import (
	"testing"
	"time"

	"convmeter/internal/obs"
)

// TestClockSyncMeasuresSkew injects known per-worker clock skews and
// checks the alignment handshake measures them back out on both
// transports: the offset table must hold each worker's skew relative to
// worker 0 within a small handshake-error tolerance.
func TestClockSyncMeasuresSkew(t *testing.T) {
	skews := []time.Duration{0, 5 * time.Millisecond, -3 * time.Millisecond, 8 * time.Millisecond}
	// The handshake's error is bounded by the asymmetry of one link
	// round-trip; both transports run on in-process links where that is
	// microseconds. 2ms absorbs scheduler noise on loaded CI hosts.
	const tol = 2 * time.Millisecond
	for _, transport := range []string{"chan", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			o := obs.New()
			vectors, want := makeVectors(len(skews), 64, 7)
			opts := Options{Obs: o, AlignClocks: true, ClockSkews: skews}
			var err error
			if transport == "tcp" {
				err = RingTCPOpts(vectors, opts)
			} else {
				err = RingOpts(vectors, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			checkAllEqualSum(t, vectors, want)
			off := o.Trc.Offsets().Snapshot()
			if off == nil {
				t.Fatal("no clock offsets measured")
			}
			for w := 1; w < len(skews); w++ {
				wantOff := skews[w] - skews[0]
				diff := off[w] - wantOff
				if diff < -tol || diff > tol {
					t.Errorf("worker %d offset = %v, want %v ± %v (table %v)",
						w, off[w], wantOff, tol, off)
				}
			}
		})
	}
}

// TestRingSpansCarryCrossWorkerLinks runs a traced all-reduce and checks
// the per-op span contract the critical-path engine depends on: every
// worker records ar.send/ar.wait/ar.recv spans, each wait carries a
// causal link, and the link resolves to an ar.send recorded by a
// DIFFERENT worker — the cross-worker edge of the step DAG.
func TestRingSpansCarryCrossWorkerLinks(t *testing.T) {
	for _, transport := range []string{"chan", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			o := obs.New()
			vectors, want := makeVectors(3, 32, 11)
			opts := Options{Obs: o}
			var err error
			if transport == "tcp" {
				err = RingTCPOpts(vectors, opts)
			} else {
				err = RingOpts(vectors, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			checkAllEqualSum(t, vectors, want)
			spans := o.Trc.Spans()
			byID := make(map[int64]obs.SpanRecord, len(spans))
			count := map[string]int{}
			for _, s := range spans {
				byID[s.ID] = s
			}
			for _, s := range spans {
				count[s.Name]++
				if s.Worker < 0 {
					t.Fatalf("span %q has no worker attribution", s.Name)
				}
				if s.Name != "ar.wait" {
					continue
				}
				if !s.Link.Valid() {
					t.Fatalf("ar.wait span %d on worker %d has no causal link", s.ID, s.Worker)
				}
				sender, ok := byID[s.Link.Span]
				if !ok {
					t.Fatalf("ar.wait span %d links to unrecorded span %d", s.ID, s.Link.Span)
				}
				if sender.Name != "ar.send" {
					t.Fatalf("ar.wait span %d links to %q, want ar.send", s.ID, sender.Name)
				}
				if sender.Worker == s.Worker {
					t.Fatalf("ar.wait span %d links to its own worker %d", s.ID, s.Worker)
				}
			}
			// 3 workers × 2·(N−1) ring steps = 12 of each op.
			for _, name := range []string{"ar.send", "ar.wait", "ar.recv"} {
				if count[name] != 12 {
					t.Errorf("%s spans = %d, want 12 (counts %v)", name, count[name], count)
				}
			}
		})
	}
}
