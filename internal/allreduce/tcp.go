package allreduce

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"convmeter/internal/obs"
)

// RingTCP performs the same ring all-reduce as Ring, but over real TCP
// connections (loopback sockets between the workers) instead of
// channels — the transport shape of the paper's inter-node phase, where
// gradients cross an actual network. Chunks are framed as
// length-prefixed float32 payloads.
//
// The ring is wired as n listeners; worker i dials worker (i+1) mod n, so
// each worker holds one inbound and one outbound connection.
func RingTCP(vectors [][]float32) error {
	return RingTCPObs(vectors, nil)
}

// RingTCPObs is RingTCP with telemetry: step counts and latencies under
// transport="tcp", plus framed byte counters in both directions. A nil
// Obs is exactly RingTCP.
func RingTCPObs(vectors [][]float32, o *obs.Obs) error {
	n := len(vectors)
	if n == 0 {
		return fmt.Errorf("allreduce: no workers")
	}
	rt := newRingTelemetry(o, "tcp")
	length := len(vectors[0])
	for i, v := range vectors {
		if len(v) != length {
			return fmt.Errorf("allreduce: worker %d has %d elements, worker 0 has %d", i, len(v), length)
		}
	}
	if n == 1 {
		return nil
	}
	// One loopback listener per worker.
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("allreduce: listen: %w", err)
		}
		listeners[i] = l
		defer l.Close()
	}
	// Accept inbound connections concurrently while dialling outbound.
	inConns := make([]net.Conn, n)
	outConns := make([]net.Conn, n)
	var wg sync.WaitGroup
	errs := make([]error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			c, err := listeners[i].Accept()
			if err != nil {
				errs[i] = err
				return
			}
			inConns[i] = c
		}(i)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("tcp", listeners[(i+1)%n].Addr().String())
			if err != nil {
				errs[n+i] = err
				return
			}
			outConns[i] = c
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("allreduce: ring wiring: %w", err)
		}
	}
	defer func() {
		for _, c := range inConns {
			_ = c.Close() // teardown of loopback conns; nothing to report to
		}
		for _, c := range outConns {
			_ = c.Close()
		}
	}()

	workerErrs := make([]error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			v := vectors[me]
			send := outConns[me]
			recv := inConns[me]
			step := func(sendChunk, recvChunk int, reduce bool) error {
				var t0 time.Time
				if rt != nil {
					t0 = time.Now()
				}
				a, b := chunkBounds(length, n, sendChunk)
				if err := writeChunk(send, v[a:b], sentBytes(rt)); err != nil {
					return err
				}
				in, err := readChunk(recv, recvBytes(rt))
				if err != nil {
					return err
				}
				a, b = chunkBounds(length, n, recvChunk)
				if len(in) != b-a {
					return fmt.Errorf("allreduce: chunk size %d, want %d", len(in), b-a)
				}
				if reduce {
					for k := range in {
						v[a+k] += in[k]
					}
				} else {
					copy(v[a:b], in)
				}
				if rt != nil {
					rt.step(time.Since(t0))
				}
				return nil
			}
			for s := 0; s < n-1; s++ {
				if err := step(((me-s)%n+n)%n, ((me-s-1)%n+n)%n, true); err != nil {
					workerErrs[me] = err
					return
				}
			}
			for s := 0; s < n-1; s++ {
				if err := step(((me-s+1)%n+n)%n, ((me-s)%n+n)%n, false); err != nil {
					workerErrs[me] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sentBytes/recvBytes pull the direction counters off a possibly nil
// telemetry bundle; a nil *obs.Counter is itself a no-op.
func sentBytes(rt *ringTelemetry) *obs.Counter {
	if rt == nil {
		return nil
	}
	return rt.sent
}

func recvBytes(rt *ringTelemetry) *obs.Counter {
	if rt == nil {
		return nil
	}
	return rt.recv
}

// writeChunk frames a float32 slice as a length-prefixed message,
// crediting the frame (prefix + payload) to the byte counter.
func writeChunk(w io.Writer, data []float32, sent *obs.Counter) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(data))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	if err == nil {
		sent.Add(float64(4 + len(buf)))
	}
	return err
}

// readChunk reads one length-prefixed float32 message, crediting the
// frame to the byte counter.
func readChunk(r io.Reader, recv *obs.Counter) ([]float32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("allreduce: implausible chunk size %d", n)
	}
	buf := make([]byte, 4*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	recv.Add(float64(4 + len(buf)))
	return out, nil
}
