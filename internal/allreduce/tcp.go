package allreduce

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"convmeter/internal/faults"
	"convmeter/internal/obs"
)

// RingTCP performs the same ring all-reduce as Ring, but over real TCP
// connections (loopback sockets between the workers) instead of
// channels — the transport shape of the paper's inter-node phase, where
// gradients cross an actual network. Chunks are framed as
// length-prefixed float32 payloads followed by an IEEE CRC-32 of the
// payload bytes, so corruption on the wire is detected rather than
// silently averaged into the gradients.
//
// The ring is wired as n listeners; worker i dials worker (i+1) mod n, so
// each worker holds one inbound and one outbound connection.
func RingTCP(vectors [][]float32) error {
	return RingTCPOpts(vectors, Options{})
}

// RingTCPObs is RingTCP with telemetry: step counts and latencies under
// transport="tcp", plus framed byte counters in both directions. A nil
// Obs is exactly RingTCP.
func RingTCPObs(vectors [][]float32, o *obs.Obs) error {
	return RingTCPOpts(vectors, Options{Obs: o})
}

// RingTCPOpts is the resilient TCP ring: Options add context
// cancellation, per-op socket deadlines, bounded read/dial retries with
// backoff + jitter, and fault injection on the connections. The zero
// Options is exactly RingTCP. On failure the returned error is a
// *RingError attributing blame per worker.
func RingTCPOpts(vectors [][]float32, opts Options) error {
	n, length, err := validate(vectors)
	if err != nil {
		return err
	}
	if n == 1 {
		return nil
	}
	rt := newRingTelemetry(opts.Obs, "tcp")
	resilient := opts.resilient()
	// One loopback listener per worker.
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("allreduce: listen: %w", err)
		}
		if resilient {
			// Bound the whole wiring phase so a peer that never dials
			// cannot hang the run.
			deadline := time.Now().Add(opts.opTimeout() * time.Duration(opts.Retry.attempts()+1))
			_ = l.(*net.TCPListener).SetDeadline(deadline)
		}
		listeners[i] = l
		defer l.Close()
	}
	// Accept inbound connections concurrently while dialling outbound.
	inConns := make([]net.Conn, n)
	outConns := make([]net.Conn, n)
	var wg sync.WaitGroup
	errs := make([]error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			c, err := listeners[i].Accept()
			if err != nil {
				errs[i] = err
				return
			}
			inConns[i] = faults.WrapConn(c, opts.Faults, "tcp", opts.workerID(i))
		}(i)
		go func(i int) {
			defer wg.Done()
			c, err := dialRetry(listeners[(i+1)%n].Addr().String(), opts, rt, uint64(i))
			if err != nil {
				errs[n+i] = err
				return
			}
			outConns[i] = faults.WrapConn(c, opts.Faults, "tcp", opts.workerID(i))
		}(i)
	}
	wg.Wait()
	// The teardown must be registered before the wiring-error check:
	// when one dial or accept fails, its peers may already hold live
	// sockets, and returning above a later-registered defer would leak
	// them. Partial wiring leaves nil entries, hence the guards.
	closeAll := func() {
		for _, c := range inConns {
			if c != nil {
				_ = c.Close() // teardown of loopback conns; nothing to report to
			}
		}
		for _, c := range outConns {
			if c != nil {
				_ = c.Close()
			}
		}
	}
	defer closeAll()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("allreduce: ring wiring: %w", err)
		}
	}
	if opts.Ctx != nil {
		// External cancellation tears the sockets down, unblocking any
		// worker mid-read; per-op deadlines bound everything else.
		stop := context.AfterFunc(opts.Ctx, closeAll)
		defer stop()
	}
	if opts.alignClocks() {
		if err := tcpClockSync(inConns, outConns, opts); err != nil {
			return err
		}
	}

	workerErrs := make([]*WorkerError, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			workerErrs[me] = tcpWorker(me, vectors[me], n, length, outConns[me], inConns[me], opts, rt, resilient)
		}(w)
	}
	wg.Wait()
	return joinWorkerErrs(workerErrs)
}

// tcpWorker runs one worker's 2·(n−1) ring steps over its socket pair.
func tcpWorker(me int, v []float32, n, length int, send, recv net.Conn, opts Options, rt *ringTelemetry, resilient bool) *WorkerError {
	self, succ := opts.workerID(me), opts.workerID((me+1)%n)
	pred := opts.workerID((me - 1 + n) % n)
	// The largest chunk the ring partition can produce — the bound that
	// keeps a corrupted length prefix from allocating unbounded memory.
	maxChunk := length/n + 1
	fcOut, _ := send.(*faults.Conn)
	fcIn, _ := recv.(*faults.Conn)
	wObs := opts.Obs.WithWorker(self).WithClockSkew(opts.skew(me))
	step := func(opIdx uint64, sendChunk, recvChunk int, reduce bool) *WorkerError {
		var t0 time.Time
		if rt != nil {
			t0 = time.Now()
		}
		a, b := chunkBounds(length, n, sendChunk)
		if resilient {
			_ = send.SetWriteDeadline(time.Now().Add(opts.opTimeout()))
		}
		if fcOut != nil {
			fcOut.SetWriteSeq(opts.SeqBase + opIdx)
		}
		ssp := wObs.Start("ar.send")
		err := writeChunk(send, v[a:b], ssp.Context(), sentBytes(rt))
		ssp.End()
		if err != nil {
			if isTimeout(err) {
				// The successor stopped draining; it may only be stalled
				// downstream of the real fault.
				return &WorkerError{Worker: succ, Err: fmt.Errorf("chunk write timed out: %w", err)}
			}
			return &WorkerError{Worker: self, Primary: true, Err: err}
		}
		if fcIn != nil {
			fcIn.SetReadSeq(opts.SeqBase + opIdx)
		}
		wsp := wObs.Start("ar.wait")
		in, inCtx, err := readChunkRetry(recv, maxChunk, opts, rt, recvBytes(rt), resilient)
		wsp.LinkTo(inCtx)
		wsp.End()
		if err != nil {
			switch {
			case errors.Is(err, errCRC):
				rt.crcFailure()
				return &WorkerError{Worker: pred, Primary: true, Err: err}
			case isTimeout(err):
				return &WorkerError{Worker: pred, Err: fmt.Errorf("chunk read timed out: %w", err)}
			default:
				return &WorkerError{Worker: pred, Primary: true, Err: err}
			}
		}
		a, b = chunkBounds(length, n, recvChunk)
		if len(in) != b-a {
			return &WorkerError{Worker: pred, Primary: true,
				Err: fmt.Errorf("allreduce: chunk size %d, want %d", len(in), b-a)}
		}
		rsp := wObs.Start("ar.recv")
		if reduce {
			for k := range in {
				v[a+k] += in[k]
			}
		} else {
			copy(v[a:b], in)
		}
		rsp.End()
		if rt != nil {
			rt.step(time.Since(t0))
		}
		return nil
	}
	for s := 0; s < n-1; s++ {
		if we := step(uint64(s), ((me-s)%n+n)%n, ((me-s-1)%n+n)%n, true); we != nil {
			return we
		}
	}
	for s := 0; s < n-1; s++ {
		if we := step(uint64(n-1+s), ((me-s+1)%n+n)%n, ((me-s)%n+n)%n, false); we != nil {
			return we
		}
	}
	return nil
}

// clockSyncSeq is the reserved fault sequence number for handshake
// traffic, far above any real step index so the handshake draws its own
// fault decisions instead of consuming a ring step's.
const clockSyncSeq = 0xFFF

// clockSyncRounds is the number of NTP-style ping-pong exchanges per
// ring link; the sample with the smallest round-trip wins, the standard
// filter against scheduler noise.
const clockSyncRounds = 3

// tcpClockSync measures each worker's clock offset relative to ring
// position 0 over the already-wired socket pairs and records it in the
// tracer's offset table. It runs sequentially before the worker
// goroutines launch (no leak surface, no new connections): for each ring
// link, the dial side writes a clock sample, the accept side replies
// with its own, and the classic NTP estimate offset = t_reply −
// (t0+t1)/2 cancels the symmetric wire delay. Offsets chain around the
// ring. Every exchange runs under a deadline; a failure comes back as a
// blame-attributed *RingError just like a ring-step failure.
func tcpClockSync(inConns, outConns []net.Conn, opts Options) error {
	trc := opts.Obs.Trc
	offsets := trc.Offsets()
	n := len(inConns)
	offsets.Set(opts.workerID(0), 0)
	var off time.Duration
	var buf [8]byte
	blame := func(w int, err error) error {
		return &RingError{Errs: []*WorkerError{{Worker: w, Err: fmt.Errorf("clock sync: %w", err)}}}
	}
	for i := 0; i < n-1; i++ {
		succ := i + 1
		// The socket pair for link i→succ is full-duplex: outConns[i] is
		// the dial side, inConns[succ] the accept side of the same
		// connection, so the reply flows back without extra wiring.
		a, b := outConns[i], inConns[succ]
		if fc, ok := a.(*faults.Conn); ok {
			fc.SetWriteSeq(opts.SeqBase + clockSyncSeq)
			fc.SetReadSeq(opts.SeqBase + clockSyncSeq)
		}
		if fc, ok := b.(*faults.Conn); ok {
			fc.SetWriteSeq(opts.SeqBase + clockSyncSeq)
			fc.SetReadSeq(opts.SeqBase + clockSyncSeq)
		}
		deadline := time.Now().Add(opts.opTimeout())
		_ = a.SetDeadline(deadline)
		_ = b.SetDeadline(deadline)
		bestRTT := time.Duration(1<<63 - 1)
		var d time.Duration // succ's clock minus worker i's clock
		for k := 0; k < clockSyncRounds; k++ {
			t0 := trc.Now() + opts.skew(i)
			binary.LittleEndian.PutUint64(buf[:], uint64(t0))
			if _, err := a.Write(buf[:]); err != nil {
				return blame(opts.workerID(i), err)
			}
			if _, err := io.ReadFull(b, buf[:]); err != nil {
				return blame(opts.workerID(i), err)
			}
			tr := trc.Now() + opts.skew(succ)
			binary.LittleEndian.PutUint64(buf[:], uint64(tr))
			if _, err := b.Write(buf[:]); err != nil {
				return blame(opts.workerID(succ), err)
			}
			if _, err := io.ReadFull(a, buf[:]); err != nil {
				return blame(opts.workerID(succ), err)
			}
			reply := time.Duration(binary.LittleEndian.Uint64(buf[:]))
			t1 := trc.Now() + opts.skew(i)
			if rtt := t1 - t0; rtt < bestRTT {
				bestRTT = rtt
				d = reply - (t0+t1)/2
			}
		}
		off += d
		offsets.Set(opts.workerID(succ), off)
		// Clear the handshake deadlines: the plain fast path expects
		// deadline-free sockets, and resilient workers arm their own.
		_ = a.SetDeadline(time.Time{})
		_ = b.SetDeadline(time.Time{})
	}
	return nil
}

// dialRetry dials the ring successor, retrying transient failures with
// exponential backoff + jitter when resilience is enabled.
func dialRetry(addr string, opts Options, rt *ringTelemetry, salt uint64) (net.Conn, error) {
	if !opts.resilient() {
		return net.Dial("tcp", addr)
	}
	attempts := opts.Retry.attempts()
	for attempt := 1; ; attempt++ {
		d := net.Dialer{Timeout: opts.opTimeout()}
		c, err := d.DialContext(opts.ctx(), "tcp", addr)
		if err == nil {
			return c, nil
		}
		if attempt >= attempts || opts.ctx().Err() != nil {
			return nil, err
		}
		rt.retry()
		// The backoff pause must honour cancellation: a plain Sleep keeps
		// a cancelled run wired up for the full backoff schedule.
		t := time.NewTimer(opts.Retry.backoff(attempt, salt))
		select {
		case <-opts.ctx().Done():
			t.Stop()
			return nil, fmt.Errorf("allreduce: dial %s: %w", addr, opts.ctx().Err())
		case <-t.C:
			// Stop on a fired timer is a no-op; keeps the release
			// unconditional on every path out of the loop.
			t.Stop()
		}
	}
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// errCRC marks a chunk whose payload failed CRC validation.
var errCRC = errors.New("allreduce: chunk CRC mismatch")

// sentBytes/recvBytes pull the direction counters off a possibly nil
// telemetry bundle; a nil *obs.Counter is itself a no-op.
func sentBytes(rt *ringTelemetry) *obs.Counter {
	if rt == nil {
		return nil
	}
	return rt.sent
}

func recvBytes(rt *ringTelemetry) *obs.Counter {
	if rt == nil {
		return nil
	}
	return rt.recv
}

// frameHeaderLen is the fixed frame prologue: a u32 element count
// followed by the sender's span context (trace id, span id — two i64s).
// A disabled tracer sends zeros; the header sits outside the payload
// CRC, whose job is protecting the gradient bits.
const frameHeaderLen = 4 + 8 + 8

// writeChunk frames a float32 slice as one length-prefixed message —
// element count, span context, payload, trailing CRC-32 of the payload —
// written in a single Write so fault injection and deadlines see one
// wire operation per chunk. The whole frame is credited to the byte
// counter.
func writeChunk(w io.Writer, data []float32, ctx obs.SpanContext, sent *obs.Counter) error {
	buf := make([]byte, frameHeaderLen+4*len(data)+4)
	binary.LittleEndian.PutUint32(buf, uint32(len(data)))
	binary.LittleEndian.PutUint64(buf[4:], uint64(ctx.Trace))
	binary.LittleEndian.PutUint64(buf[12:], uint64(ctx.Span))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[frameHeaderLen+4*i:], math.Float32bits(v))
	}
	payload := buf[frameHeaderLen : frameHeaderLen+4*len(data)]
	binary.LittleEndian.PutUint32(buf[frameHeaderLen+4*len(data):], crc32.ChecksumIEEE(payload))
	_, err := w.Write(buf)
	if err == nil {
		sent.Add(float64(len(buf)))
	}
	return err
}

// readChunk reads one framed message, validating the length prefix
// against maxElems before allocating (a corrupted or malicious peer must
// not be able to OOM the process) and the payload against its CRC.
func readChunk(r io.Reader, maxElems int, recv *obs.Counter) ([]float32, error) {
	data, _, err := readChunkRetry(r, maxElems, Options{}, nil, recv, false)
	return data, err
}

// readChunkRetry is readChunk with per-op deadlines and bounded retries:
// each wait for bytes runs under opts.OpTimeout, and a timed-out read
// resumes where it left off (partial frames are completed, not
// restarted) up to the retry budget.
func readChunkRetry(r io.Reader, maxElems int, opts Options, rt *ringTelemetry, recv *obs.Counter, resilient bool) ([]float32, obs.SpanContext, error) {
	attempts := 1
	if resilient {
		attempts = opts.Retry.attempts()
	}
	conn, _ := r.(net.Conn)
	readFull := func(buf []byte) error {
		off, attempt := 0, 1
		for off < len(buf) {
			if resilient && conn != nil {
				_ = conn.SetReadDeadline(time.Now().Add(opts.opTimeout()))
			}
			m, err := r.Read(buf[off:])
			off += m
			if err != nil {
				if off == len(buf) {
					break
				}
				if isTimeout(err) && attempt < attempts {
					attempt++
					rt.retry()
					continue
				}
				if err == io.EOF && off > 0 {
					return io.ErrUnexpectedEOF
				}
				return err
			}
		}
		return nil
	}
	var header [frameHeaderLen]byte
	if err := readFull(header[:]); err != nil {
		return nil, obs.SpanContext{}, err
	}
	n := binary.LittleEndian.Uint32(header[:])
	ctx := obs.SpanContext{
		Trace: int64(binary.LittleEndian.Uint64(header[4:])),
		Span:  int64(binary.LittleEndian.Uint64(header[12:])),
	}
	if maxElems < 0 || n > uint32(maxElems) {
		return nil, ctx, fmt.Errorf("allreduce: implausible chunk size %d (max %d)", n, maxElems)
	}
	body := make([]byte, 4*int(n)+4)
	if err := readFull(body); err != nil {
		return nil, ctx, err
	}
	payload := body[:4*int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[4*int(n):]) {
		return nil, ctx, errCRC
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	recv.Add(float64(len(header) + len(body)))
	return out, ctx, nil
}
