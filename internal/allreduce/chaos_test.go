package allreduce

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"convmeter/internal/faults"
	"convmeter/internal/obs"
)

// chaosOptions are tight bounds so every failing case errors out well
// inside the suite's time budget: 50ms per op, 2 attempts.
func chaosOptions(inj *faults.Injector) Options {
	return Options{
		OpTimeout: 50 * time.Millisecond,
		Retry:     RetryPolicy{Attempts: 2, Backoff: time.Millisecond, Max: 5 * time.Millisecond},
		Faults:    inj,
	}
}

// newInjector builds an injector or fails the test.
func newInjector(t *testing.T, seed int64, prof faults.Profile) *faults.Injector {
	t.Helper()
	inj, err := faults.New(seed, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// checkGoroutines fails the test if the goroutine count has not returned
// to its pre-test baseline — a leaked ring worker blocked on a channel or
// socket would hold it up.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosFaultClasses drives both transports through each fault class
// at probability 1 and asserts the bounded contract: delays are absorbed
// and the reduce still yields the exact sums; destructive classes produce
// a clean *RingError with blame, with no goroutine left behind.
func TestChaosFaultClasses(t *testing.T) {
	type runner struct {
		name string
		run  func(vectors [][]float32, opts Options) error
	}
	transports := []runner{
		{"chan", RingOpts},
		{"tcp", RingTCPOpts},
	}
	cases := []struct {
		name    string
		prof    faults.Profile
		succeed bool
	}{
		{"delay-absorbed", faults.Profile{Delay: 1, MaxDelay: 2 * time.Millisecond}, true},
		{"corrupt-detected", faults.Profile{Corrupt: 1, Workers: []int{1}}, false},
		{"drop-bounded", faults.Profile{Drop: 1, Workers: []int{1}}, false},
		{"truncate-detected", faults.Profile{Truncate: 1, Workers: []int{1}}, false},
		{"reset-bounded", faults.Profile{Reset: 1, Workers: []int{0}}, false},
	}
	for _, tr := range transports {
		for _, tc := range cases {
			t.Run(tr.name+"/"+tc.name, func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				vectors, want := makeVectors(4, 37, 7)
				opts := chaosOptions(newInjector(t, 21, tc.prof))
				start := time.Now()
				err := tr.run(vectors, opts)
				elapsed := time.Since(start)
				if elapsed > 10*time.Second {
					t.Fatalf("run took %v, want bounded well under the chaos budget", elapsed)
				}
				if tc.succeed {
					if err != nil {
						t.Fatalf("delays must be absorbed, got %v", err)
					}
					checkAllEqualSum(t, vectors, want)
				} else {
					var re *RingError
					if !errors.As(err, &re) {
						t.Fatalf("err = %v, want *RingError", err)
					}
					if _, ok := Blame(err); !ok {
						t.Fatalf("RingError carries no blame: %v", err)
					}
				}
				checkGoroutines(t, baseline)
			})
		}
	}
}

// TestChaosTCPBlameTargets: hard write-side faults on a single targeted
// worker must blame exactly that worker — the property the elastic
// trainer's degradation relies on to drop the right ring member.
func TestChaosTCPBlameTargets(t *testing.T) {
	for _, target := range []int{0, 2, 3} {
		vectors, _ := makeVectors(4, 64, int64(target)+3)
		opts := chaosOptions(newInjector(t, 5, faults.Profile{Drop: 1, Workers: []int{target}}))
		err := RingTCPOpts(vectors, opts)
		if err == nil {
			t.Fatalf("target %d: run succeeded despite dropped connections", target)
		}
		blamed, ok := Blame(err)
		if !ok || blamed != target {
			t.Fatalf("target %d: Blame = (%d, %t), err = %v", target, blamed, ok, err)
		}
	}
}

// TestChaosSameSeedSameDecisions: the transport consults the injector
// with stable logical op identities, so two runs over the same topology
// with same-seed injectors plan the identical fault schedule.
func TestChaosSameSeedSameDecisions(t *testing.T) {
	prof := faults.Profile{Corrupt: 0.3, Drop: 0.1}
	var ops []faults.Op
	for w := 0; w < 4; w++ {
		for s := uint64(0); s < 6; s++ {
			ops = append(ops,
				faults.Op{Transport: "tcp", Worker: w, Dir: "out", Seq: s},
				faults.Op{Transport: "tcp", Worker: w, Dir: "in", Seq: s})
		}
	}
	a := newInjector(t, 33, prof).Planned(ops)
	b := newInjector(t, 33, prof).Planned(ops)
	if len(a) == 0 {
		t.Fatal("plan injected nothing over 48 ops at 40% fault probability")
	}
	if len(a) != len(b) {
		t.Fatalf("plans differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChaosContextCancel: a canceled context aborts both transports
// promptly with a clean error instead of hanging on ring channels or
// sockets.
func TestChaosContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		run  func(vectors [][]float32, opts Options) error
	}{
		{"chan", RingOpts},
		{"tcp", RingTCPOpts},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			vectors, _ := makeVectors(3, 16, 1)
			start := time.Now()
			err := tc.run(vectors, Options{Ctx: ctx, OpTimeout: 100 * time.Millisecond})
			if err == nil {
				t.Fatal("canceled context did not abort the run")
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
			checkGoroutines(t, baseline)
		})
	}
}

// TestReadChunkRetryResumesPartialFrame: a frame delivered in two bursts
// separated by more than one op timeout must still be assembled — the
// retry budget re-arms the deadline and the read resumes mid-frame
// instead of desynchronising the stream.
func TestReadChunkRetryResumesPartialFrame(t *testing.T) {
	client, server := tcpPair(t)
	var frame []float32 = []float32{1, 2, 3, 4, 5}
	go func() {
		buf := frameBytes(frame)
		_, _ = client.Write(buf[:3]) // a sliver: less than the header
		time.Sleep(80 * time.Millisecond)
		_, _ = client.Write(buf[3:])
	}()
	opts := Options{
		OpTimeout: 50 * time.Millisecond,
		Retry:     RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Max: time.Millisecond},
	}
	got, _, err := readChunkRetry(server, len(frame), opts, nil, nil, true)
	if err != nil {
		t.Fatalf("resumed read failed: %v", err)
	}
	if len(got) != len(frame) {
		t.Fatalf("got %d elements, want %d", len(got), len(frame))
	}
	for i := range got {
		if got[i] != frame[i] {
			t.Fatalf("elem %d = %g, want %g", i, got[i], frame[i])
		}
	}
}

// TestReadChunkRetryBudgetExhausted: with too few attempts for the gap,
// the read must fail with a timeout instead of blocking forever.
func TestReadChunkRetryBudgetExhausted(t *testing.T) {
	client, server := tcpPair(t)
	go func() {
		buf := frameBytes([]float32{1, 2, 3})
		_, _ = client.Write(buf[:2])
		// Never send the rest inside the retry window.
		time.Sleep(400 * time.Millisecond)
		_, _ = client.Write(buf[2:])
	}()
	opts := Options{
		OpTimeout: 30 * time.Millisecond,
		Retry:     RetryPolicy{Attempts: 2, Backoff: time.Millisecond, Max: time.Millisecond},
	}
	start := time.Now()
	_, _, err := readChunkRetry(server, 3, opts, nil, nil, true)
	if err == nil {
		t.Fatal("read succeeded despite an exhausted retry budget")
	}
	if !isTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded read took %v", elapsed)
	}
}

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan struct{})
	var aerr error
	go func() {
		defer close(accepted)
		server, aerr = l.Accept()
	}()
	client, derr := net.Dial("tcp", l.Addr().String())
	<-accepted
	if derr != nil || aerr != nil {
		t.Fatalf("tcp pair: dial=%v accept=%v", derr, aerr)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return client, server
}

// frameBytes renders one wire frame the way writeChunk does.
func frameBytes(data []float32) []byte {
	var sink frameSink
	if err := writeChunk(&sink, data, obs.SpanContext{}, nil); err != nil {
		panic(err)
	}
	return sink.buf
}

type frameSink struct{ buf []byte }

func (s *frameSink) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
