package allreduce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeVectors builds n random vectors of the given length plus their
// elementwise sum as the expected result.
func makeVectors(n, length int, seed int64) (vectors [][]float32, want []float32) {
	rng := rand.New(rand.NewSource(seed))
	want = make([]float32, length)
	for i := 0; i < n; i++ {
		v := make([]float32, length)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			want[j] += v[j]
		}
		vectors = append(vectors, v)
	}
	return vectors, want
}

func checkAllEqualSum(t *testing.T, vectors [][]float32, want []float32) {
	t.Helper()
	for i, v := range vectors {
		for j := range v {
			if math.Abs(float64(v[j]-want[j])) > 1e-3*math.Max(1, math.Abs(float64(want[j]))) {
				t.Fatalf("worker %d elem %d = %g, want %g", i, j, v[j], want[j])
			}
		}
	}
}

func TestRingSmall(t *testing.T) {
	vectors := [][]float32{
		{1, 2, 3, 4},
		{10, 20, 30, 40},
		{100, 200, 300, 400},
	}
	want := []float32{111, 222, 333, 444}
	if err := Ring(vectors); err != nil {
		t.Fatal(err)
	}
	checkAllEqualSum(t, vectors, want)
}

func TestRingVariousTopologies(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, length := range []int{1, 3, 16, 1000, 1021} {
			vectors, want := makeVectors(n, length, int64(n*10000+length))
			if err := Ring(vectors); err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
			checkAllEqualSum(t, vectors, want)
		}
	}
}

func TestRingLengthShorterThanWorkers(t *testing.T) {
	// 8 workers, 3 elements: most chunks are empty — must still work.
	vectors, want := makeVectors(8, 3, 5)
	if err := Ring(vectors); err != nil {
		t.Fatal(err)
	}
	checkAllEqualSum(t, vectors, want)
}

func TestRingErrors(t *testing.T) {
	if err := Ring(nil); err == nil {
		t.Fatal("expected no-workers error")
	}
	if err := Ring([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestRingSingleWorkerNoOp(t *testing.T) {
	v := [][]float32{{1, 2, 3}}
	if err := Ring(v); err != nil {
		t.Fatal(err)
	}
	if v[0][0] != 1 || v[0][2] != 3 {
		t.Fatal("single-worker ring must not modify the vector")
	}
}

func TestHierarchical(t *testing.T) {
	for _, topo := range []struct{ n, group int }{
		{8, 4}, {16, 4}, {4, 2}, {6, 3}, {4, 4}, {4, 1},
	} {
		vectors, want := makeVectors(topo.n, 257, int64(topo.n))
		if err := Hierarchical(vectors, topo.group); err != nil {
			t.Fatalf("n=%d group=%d: %v", topo.n, topo.group, err)
		}
		checkAllEqualSum(t, vectors, want)
	}
}

func TestHierarchicalErrors(t *testing.T) {
	if err := Hierarchical(nil, 4); err == nil {
		t.Fatal("expected no-workers error")
	}
	vectors, _ := makeVectors(6, 8, 1)
	if err := Hierarchical(vectors, 4); err == nil {
		t.Fatal("expected indivisible-group error")
	}
	if err := Hierarchical(vectors, 0); err == nil {
		t.Fatal("expected zero-group error")
	}
}

func TestChunkBoundsTiling(t *testing.T) {
	f := func(rawN, rawP uint8) bool {
		n := int(rawN)
		p := int(rawP%16) + 1
		prevEnd := 0
		total := 0
		for i := 0; i < p; i++ {
			a, b := chunkBounds(n, p, i)
			if a != prevEnd || b < a {
				return false
			}
			total += b - a
			prevEnd = b
		}
		return total == n && prevEnd == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRingMatchesHierarchical(t *testing.T) {
	// Both algorithms must produce the identical mathematical result.
	a, want := makeVectors(8, 512, 77)
	b := make([][]float32, len(a))
	for i := range a {
		b[i] = append([]float32(nil), a[i]...)
	}
	if err := Ring(a); err != nil {
		t.Fatal(err)
	}
	if err := Hierarchical(b, 4); err != nil {
		t.Fatal(err)
	}
	checkAllEqualSum(t, a, want)
	checkAllEqualSum(t, b, want)
}
