package allreduce

import (
	"context"
	"fmt"
	"strings"
	"time"

	"convmeter/internal/faults"
	"convmeter/internal/obs"
)

// RetryPolicy bounds per-operation retries in the resilient transports:
// a timed-out chunk read/write (or a failed ring dial) is retried up to
// Attempts times with exponential backoff plus deterministic jitter.
type RetryPolicy struct {
	Attempts int           // total attempts per op; <=0 means defaultAttempts
	Backoff  time.Duration // base backoff between attempts; <=0 means defaultBackoff
	Max      time.Duration // backoff cap; <=0 means defaultMaxBackoff
}

const (
	defaultAttempts   = 3
	defaultBackoff    = 5 * time.Millisecond
	defaultMaxBackoff = 100 * time.Millisecond
	defaultOpTimeout  = 2 * time.Second
)

func (r RetryPolicy) attempts() int {
	if r.Attempts <= 0 {
		return defaultAttempts
	}
	return r.Attempts
}

// backoff returns the pause before retry `attempt` (1-based): exponential
// growth with ±50% jitter derived from faults.Hash01 so reruns with the
// same salt pause identically.
func (r RetryPolicy) backoff(attempt int, salt uint64) time.Duration {
	base, max := r.Backoff, r.Max
	if base <= 0 {
		base = defaultBackoff
	}
	if max <= 0 {
		max = defaultMaxBackoff
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	jitter := 0.5 + faults.Hash01(int64(salt), uint64(attempt))
	return time.Duration(float64(d) * jitter)
}

// StepBackoff is the exported pause calculator for callers (the elastic
// trainer) retrying a whole all-reduce: identical growth and jitter
// semantics to the per-op backoff.
func (r RetryPolicy) StepBackoff(attempt int, salt uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	return r.backoff(attempt, salt)
}

// Options configures a resilient all-reduce run. The zero Options is the
// plain fast path: no deadlines, no retries, no fault injection.
type Options struct {
	// Ctx cancels the run early; nil means context.Background().
	// The options-struct idiom: Options is consumed once at the top of a
	// run and never outlives it, so the stored-context hazard (a context
	// outliving its request) cannot arise.
	//lint:ignore ctxflow options struct consumed at run start, does not outlive the request
	Ctx context.Context
	// OpTimeout is the deadline for one chunk send or receive; 0 means
	// defaultOpTimeout when any resilience feature is active.
	OpTimeout time.Duration
	// Retry bounds per-op retries on timeouts and ring-wiring dials.
	Retry RetryPolicy
	// Faults injects deterministic faults into the transport.
	Faults *faults.Injector
	// Obs receives step/byte/retry/CRC telemetry.
	Obs *obs.Obs
	// WorkerIDs maps ring positions to external worker ids for fault
	// sites and error attribution; nil means identity.
	WorkerIDs []int
	// SeqBase offsets the logical operation sequence numbers handed to
	// the fault injector. Callers re-running an all-reduce (a trainer
	// retrying a step) advance it so each attempt draws fresh faults.
	SeqBase uint64
	// AlignClocks runs a clock-offset handshake over the transport
	// before the ring workers start, writing per-worker offsets into
	// Obs.Trc.Offsets() so exporters and the critical-path engine can
	// place all workers on one timeline. No-op when Obs is nil.
	AlignClocks bool
	// ClockSkews simulates per-worker clock disagreement, indexed by
	// ring position: worker i's spans and handshake samples read from a
	// clock running ClockSkews[i] ahead of the tracer's. The handshake
	// measures the skew back out — which is exactly what the alignment
	// tests assert.
	ClockSkews []time.Duration
}

// resilient reports whether the run needs deadlines/retry machinery.
func (o Options) resilient() bool {
	return o.Ctx != nil || o.OpTimeout > 0 || o.Faults != nil
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) opTimeout() time.Duration {
	if o.OpTimeout > 0 {
		return o.OpTimeout
	}
	return defaultOpTimeout
}

// workerID maps ring position i to its external id.
func (o Options) workerID(i int) int {
	if i < len(o.WorkerIDs) {
		return o.WorkerIDs[i]
	}
	return i
}

// skew returns ring position i's simulated clock skew.
func (o Options) skew(i int) time.Duration {
	if i < len(o.ClockSkews) {
		return o.ClockSkews[i]
	}
	return 0
}

// alignClocks reports whether the clock handshake should run.
func (o Options) alignClocks() bool {
	return o.AlignClocks && o.Obs != nil && o.Obs.Trc != nil
}

// WorkerError attributes a transport failure to a worker. Primary marks
// direct evidence (a dead or corrupting connection); timeouts are
// secondary — the stalled worker may only be downstream of the fault.
type WorkerError struct {
	Worker  int // blamed external worker id
	Primary bool
	Err     error
}

func (e *WorkerError) Error() string {
	kind := "secondary"
	if e.Primary {
		kind = "primary"
	}
	return fmt.Sprintf("allreduce: worker %d (%s): %v", e.Worker, kind, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// RingError aggregates every worker's failure from one all-reduce run so
// callers can attribute blame from the complete picture instead of a
// scheduling-dependent first error.
type RingError struct {
	Errs []*WorkerError
}

func (e *RingError) Error() string {
	var sb strings.Builder
	sb.WriteString("allreduce: ring failed:")
	for _, we := range e.Errs {
		sb.WriteString(" [")
		sb.WriteString(we.Error())
		sb.WriteString("]")
	}
	return sb.String()
}

// Blame picks the worker to declare dead after a failed run: the lowest
// primary-blamed id when direct evidence exists, else the lowest
// secondary id. ok is false when err carries no worker attribution.
func Blame(err error) (worker int, ok bool) {
	re, isRing := err.(*RingError)
	if !isRing {
		if we, isWorker := err.(*WorkerError); isWorker {
			return we.Worker, true
		}
		return 0, false
	}
	best, bestPrimary := 0, false
	for _, we := range re.Errs {
		if !ok || (we.Primary && !bestPrimary) || (we.Primary == bestPrimary && we.Worker < best) {
			best, bestPrimary, ok = we.Worker, we.Primary, true
		}
	}
	return best, ok
}

// joinWorkerErrs folds per-worker errors into a single error value:
// nil when all succeeded, a *RingError otherwise.
func joinWorkerErrs(errs []*WorkerError) error {
	var failed []*WorkerError
	for _, we := range errs {
		if we != nil {
			failed = append(failed, we)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &RingError{Errs: failed}
}
