package allreduce

import (
	"testing"

	"convmeter/internal/testrace"
)

// TestRingStepZeroAllocs pins the chanRing.step allocation contract the
// hotpath analyzer enforces statically: once the three rotating send
// buffers are warm, a fault-free ring step allocates nothing — no chunk
// copies, no timers, no CRC hasher. The test drives one worker's step
// directly, playing the predecessor by pre-filling the receive link and
// the successor by draining the send link (both links have capacity 1,
// exactly as Ring wires them).
func TestRingStepZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	const length = 64
	r := &chanRing{
		v: make([]float32, length), me: 0, n: 2, length: length,
		send: make(chan chanMsg, 1), recv: make(chan chanMsg, 1),
	}
	for i := range r.v {
		r.v[i] = float32(i)
	}
	a, b := chunkBounds(length, r.n, 1) // chunk this worker receives at step 0
	inbound := make([]float32, b-a)
	for i := range inbound {
		inbound[i] = 1
	}
	oneStep := func() {
		r.recv <- chanMsg{seq: 0, data: inbound}
		if we := r.step(0, 0, 1, false); we != nil {
			t.Fatalf("ring step: %v", we)
		}
		<-r.send
	}
	for i := 0; i < 3; i++ {
		oneStep() // warm the rotating send buffers
	}
	if n := testing.AllocsPerRun(100, oneStep); n != 0 {
		t.Errorf("chanRing.step allocates %.2f/op, want 0", n)
	}
}
