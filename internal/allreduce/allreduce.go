// Package allreduce is a working implementation of the ring all-reduce
// algorithm the paper's gradient-update model is built around (§3.3:
// "a ring-all-reduce pattern synchronizes all local updates"). N workers
// — one goroutine each, connected in a ring by channels — reduce their
// equally sized gradient vectors to the elementwise sum in 2·(N−1) steps:
// a reduce-scatter phase followed by an all-gather phase, each moving one
// 1/N-sized chunk per step. This is the communication pattern NCCL and
// Horovod use; netsim models its *cost*, this package executes it for
// real and pins down its semantics.
//
// Both transports (in-process channels, and real TCP sockets in tcp.go)
// additionally support a resilient mode (RingOpts/RingTCPOpts): per-op
// deadlines, context cancellation, bounded retries with exponential
// backoff and jitter, CRC validation of chunks, and deterministic fault
// injection via internal/faults. Failures come back as *RingError values
// attributing blame per worker, which the elastic trainer
// (internal/train) uses to drop dead members and re-form the ring.
package allreduce

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"

	"convmeter/internal/faults"
	"convmeter/internal/obs"
)

// ringTelemetry bundles the metric handles one all-reduce run shares
// across its worker goroutines (counters and histograms are internally
// atomic, so concurrent updates are safe). A nil *ringTelemetry — the
// disabled path — makes every method a no-op.
type ringTelemetry struct {
	steps      *obs.Counter
	stepH      *obs.Histogram
	retries    *obs.Counter
	crcFail    *obs.Counter
	sent, recv *obs.Counter // tcp transport only
}

// newRingTelemetry resolves handles for the given transport ("chan" or
// "tcp"); byte counters exist only for tcp, where real sockets move the
// gradient chunks.
func newRingTelemetry(o *obs.Obs, transport string) *ringTelemetry {
	if o == nil {
		return nil
	}
	rt := &ringTelemetry{
		steps: o.Counter(obs.Label("convmeter_allreduce_steps_total", "transport", transport),
			"ring all-reduce steps executed (per worker, reduce-scatter plus all-gather), by transport"),
		stepH: o.Histogram(obs.Label("convmeter_allreduce_step_seconds", "transport", transport),
			"ring step latency: one chunk sent, one received, reduced or stored", obs.DefaultDurationBuckets()),
		retries: o.Counter(obs.Label("convmeter_allreduce_retries_total", "transport", transport),
			"per-op retries after chunk timeouts or transient wiring failures, by transport"),
		crcFail: o.Counter(obs.Label("convmeter_allreduce_crc_failures_total", "transport", transport),
			"chunks rejected by CRC validation, by transport"),
	}
	if transport == "tcp" {
		rt.sent = o.Counter(obs.Label("convmeter_allreduce_tcp_bytes_total", "dir", "sent"),
			"framed gradient bytes written to ring sockets")
		rt.recv = o.Counter(obs.Label("convmeter_allreduce_tcp_bytes_total", "dir", "recv"),
			"framed gradient bytes read from ring sockets")
	}
	return rt
}

// step records one completed ring step.
func (rt *ringTelemetry) step(elapsed time.Duration) {
	if rt == nil {
		return
	}
	rt.steps.Inc()
	rt.stepH.Observe(elapsed.Seconds())
}

// retry records one per-op retry.
func (rt *ringTelemetry) retry() {
	if rt == nil {
		return
	}
	rt.retries.Inc()
}

// crcFailure records one CRC-rejected chunk.
func (rt *ringTelemetry) crcFailure() {
	if rt == nil {
		return
	}
	rt.crcFail.Inc()
}

// chunkBounds splits length n into p contiguous chunks; chunk i spans
// [start, end). Chunks differ in size by at most one element, and may be
// empty when n < p.
func chunkBounds(n, p, i int) (start, end int) {
	base := n / p
	rem := n % p
	start = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return start, start + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// validate checks the worker vectors and reports (n, length).
func validate(vectors [][]float32) (int, int, error) {
	n := len(vectors)
	if n == 0 {
		return 0, 0, fmt.Errorf("allreduce: no workers")
	}
	length := len(vectors[0])
	for i, v := range vectors {
		if len(v) != length {
			return 0, 0, fmt.Errorf("allreduce: worker %d has %d elements, worker 0 has %d", i, len(v), length)
		}
	}
	return n, length, nil
}

// chanMsg is one framed message on a ring channel: the chunk data plus
// the logical step index it belongs to, and a CRC when fault injection
// is active (an in-memory channel cannot corrupt data by itself). ctx
// carries the sender's span context so the receiver's wait span can
// link across workers; clock carries a clock sample during the
// alignment handshake that precedes the ring steps.
type chanMsg struct {
	seq    uint64
	data   []float32
	crc    uint32
	hasCRC bool
	ctx    obs.SpanContext
	clock  time.Duration
}

// crcFloats checksums the bit pattern of a float32 slice (IEEE CRC-32).
// It feeds crc32.Update directly instead of a hash.Hash32 so the hot
// ring step validates chunks without allocating the hasher.
func crcFloats(data []float32) uint32 {
	var crc uint32
	var b [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		crc = crc32.Update(crc, crc32.IEEETable, b[:])
	}
	return crc
}

// Ring reduces the workers' vectors in place to their elementwise sum
// using ring all-reduce. vectors[i] is worker i's local gradient; all
// vectors must have equal length. The run is fully concurrent: one
// goroutine per worker, synchronised only by the ring channels.
func Ring(vectors [][]float32) error {
	return RingOpts(vectors, Options{})
}

// RingObs is Ring with telemetry: per-step counts and latencies land on
// the bundle under transport="chan". A nil Obs is exactly Ring.
func RingObs(vectors [][]float32, o *obs.Obs) error {
	return RingOpts(vectors, Options{Obs: o})
}

// RingOpts is the resilient channel-transport ring: Options add context
// cancellation, per-op deadlines with bounded retries, CRC validation
// and fault injection. The zero Options is exactly Ring. On failure the
// returned error is a *RingError attributing blame per worker.
func RingOpts(vectors [][]float32, opts Options) error {
	n, length, err := validate(vectors)
	if err != nil {
		return err
	}
	if n == 1 {
		return nil // nothing to reduce
	}
	rt := newRingTelemetry(opts.Obs, "chan")
	// links[i] carries messages from worker i-1 to worker i (mod n).
	links := make([]chan chanMsg, n)
	for i := range links {
		links[i] = make(chan chanMsg, 1)
	}
	if opts.alignClocks() {
		chanClockSync(links, opts)
	}
	errs := make([]*WorkerError, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			errs[me] = chanWorker(vectors, me, length, links, opts, rt)
		}(w)
	}
	wg.Wait()
	return joinWorkerErrs(errs)
}

// chanRing is one worker's state for a channel-transport ring run: the
// ring wiring, three rotating send buffers, and a reusable op timer.
// Its step method is a declared hot-path root (lint.config): in steady
// state one ring step allocates nothing, so the step latencies the
// telemetry histograms record measure communication, not the garbage
// collector.
type chanRing struct {
	v          []float32
	me, n      int
	length     int
	send, recv chan chanMsg
	opts       Options
	rt         *ringTelemetry
	obs        *obs.Obs // worker-attributed handle, nil when telemetry is off
	resilient  bool
	timer      *time.Timer // armed per resilient op, nil on the fast path
	bufs       [3][]float32
	bufIdx     int
}

// chanWorker runs one worker's 2·(n−1) ring steps over the channels.
func chanWorker(vectors [][]float32, me, length int, links []chan chanMsg, opts Options, rt *ringTelemetry) *WorkerError {
	n := len(links)
	r := &chanRing{
		v: vectors[me], me: me, n: n, length: length,
		send: links[(me+1)%n], recv: links[me],
		opts: opts, rt: rt, resilient: opts.resilient(),
		// The worker-attributed handle is built once per run, outside the
		// hot step loop; a nil Obs flows through as nil.
		obs: opts.Obs.WithWorker(opts.workerID(me)).WithClockSkew(opts.skew(me)),
	}
	if r.resilient {
		// The reusable timer is born stopped and drained; each op arms
		// it with the op deadline and disarms it on completion.
		r.timer = time.NewTimer(time.Hour)
		if !r.timer.Stop() {
			<-r.timer.C
		}
		defer r.timer.Stop()
	}
	// Phase 1 — reduce-scatter: after step s, worker me holds the partial
	// sum of chunk (me−s) accumulated over s+1 workers. At the end, worker
	// me owns the fully reduced chunk (me+1) mod n.
	for s := 0; s < n-1; s++ {
		if we := r.step(uint64(s), ((me-s)%n+n)%n, ((me-s-1)%n+n)%n, true); we != nil {
			return we
		}
	}
	// Phase 2 — all-gather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		if we := r.step(uint64(n-1+s), ((me-s+1)%n+n)%n, ((me-s)%n+n)%n, false); we != nil {
			return we
		}
	}
	return nil
}

// sendBuf returns the next rotating send buffer resliced to size.
// Three buffers suffice on the fault-free path: the ring links have
// capacity 1, so this worker's send of step s+2 completing proves the
// successor dequeued step s+1 — which it only does after fully
// processing step s — so the buffer reused at step s+3 has no readers
// left. A fault skip breaks that signal chain; skips burn the rotation
// and later steps grow fresh buffers.
func (r *chanRing) sendBuf(size int) []float32 {
	if cap(r.bufs[r.bufIdx]) < size {
		//lint:ignore hotpath amortised send-buffer growth; steady-state steps rotate three reusable buffers
		r.bufs[r.bufIdx] = make([]float32, size)
	}
	b := r.bufs[r.bufIdx][:size]
	r.bufs[r.bufIdx] = b
	r.bufIdx = (r.bufIdx + 1) % 3
	return b
}

// burnBufs retires every rotating buffer. Called when a fault skips a
// send: without that send's completion signal the reuse proof in
// sendBuf no longer holds, so the old buffers must never be rewritten.
func (r *chanRing) burnBufs() {
	for i := range r.bufs {
		r.bufs[i] = nil
	}
}

// step executes one ring step: send one chunk to the successor, receive
// one from the predecessor, and reduce or store it.
func (r *chanRing) step(opIdx uint64, sendChunk, recvChunk int, reduce bool) *WorkerError {
	var t0 time.Time
	if r.rt != nil {
		t0 = time.Now()
	}
	a, b := chunkBounds(r.length, r.n, sendChunk)
	out := r.sendBuf(b - a)
	copy(out, r.v[a:b])
	ssp := r.obs.Start("ar.send")
	msg := chanMsg{seq: opIdx, data: out, ctx: ssp.Context()}
	skip := false
	if r.opts.Faults != nil {
		msg.crc, msg.hasCRC = crcFloats(out), true
		f := r.opts.Faults.Decide(faults.Op{
			Transport: "chan", Worker: r.opts.workerID(r.me), Dir: "send", Seq: r.opts.SeqBase + opIdx,
		})
		switch f.Class {
		case faults.ClassDelay:
			time.Sleep(f.Delay)
		case faults.ClassDrop, faults.ClassReset:
			skip = true // the message vanishes; the successor times out or sees a gap
			r.burnBufs()
		case faults.ClassCorrupt:
			if len(out) > 0 {
				i := int(f.Arg % uint64(len(out)))
				out[i] = math.Float32frombits(math.Float32bits(out[i]) ^ 1<<(f.Arg%23))
			}
		case faults.ClassTruncate:
			msg.data = out[:len(out)/2] // CRC still covers the full chunk
		}
	}
	self, succ := r.opts.workerID(r.me), r.opts.workerID((r.me+1)%r.n)
	pred := r.opts.workerID((r.me - 1 + r.n) % r.n)
	if !skip {
		if !r.resilient {
			r.send <- msg
		} else if we := r.sendResilient(msg, self, succ); we != nil {
			ssp.End()
			return we
		}
	}
	ssp.End()
	wsp := r.obs.Start("ar.wait")
	var in chanMsg
	if !r.resilient {
		in = <-r.recv
	} else {
		var we *WorkerError
		if in, we = r.recvResilient(self, pred); we != nil {
			wsp.End()
			return we
		}
	}
	wsp.LinkTo(in.ctx)
	wsp.End()
	if in.seq != opIdx {
		return &WorkerError{Worker: pred, Primary: true,
			Err: fmt.Errorf("lost ring message: got step %d, want %d", in.seq, opIdx)}
	}
	rsp := r.obs.Start("ar.recv")
	if in.hasCRC && crcFloats(in.data) != in.crc {
		r.rt.crcFailure()
		rsp.End()
		return &WorkerError{Worker: pred, Primary: true, Err: fmt.Errorf("chunk CRC mismatch at step %d", opIdx)}
	}
	a, b = chunkBounds(r.length, r.n, recvChunk)
	if len(in.data) != b-a {
		rsp.End()
		return &WorkerError{Worker: pred, Primary: true,
			Err: fmt.Errorf("chunk size %d, want %d at step %d", len(in.data), b-a, opIdx)}
	}
	if reduce {
		for k := range in.data {
			r.v[a+k] += in.data[k]
		}
	} else {
		copy(r.v[a:b], in.data)
	}
	rsp.End()
	if r.rt != nil {
		r.rt.step(time.Since(t0))
	}
	return nil
}

// armTimer resets the reusable timer to the op deadline.
func (r *chanRing) armTimer() {
	r.timer.Reset(r.opts.opTimeout())
}

// disarmTimer stops the timer and drains a concurrent expiry so the
// next armTimer starts clean.
func (r *chanRing) disarmTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
}

// sendResilient delivers one message under deadline + retry; a
// persistently full link means the successor stopped draining, so blame
// lands there.
func (r *chanRing) sendResilient(msg chanMsg, self, succ int) *WorkerError {
	attempts := r.opts.Retry.attempts()
	for attempt := 1; ; attempt++ {
		r.armTimer()
		select {
		case r.send <- msg:
			r.disarmTimer()
			return nil
		case <-r.opts.ctx().Done():
			r.disarmTimer()
			return &WorkerError{Worker: self, Err: r.opts.ctx().Err()}
		case <-r.timer.C:
			if attempt >= attempts {
				return &WorkerError{Worker: succ,
					Err: fmt.Errorf("send timed out after %d attempts", attempts)}
			}
			r.rt.retry()
		}
	}
}

// recvResilient awaits one message under deadline + retry; a silent
// link means the predecessor stalled or dropped the message, so blame
// lands there.
func (r *chanRing) recvResilient(self, pred int) (chanMsg, *WorkerError) {
	attempts := r.opts.Retry.attempts()
	for attempt := 1; ; attempt++ {
		r.armTimer()
		select {
		case msg := <-r.recv:
			r.disarmTimer()
			return msg, nil
		case <-r.opts.ctx().Done():
			r.disarmTimer()
			return chanMsg{}, &WorkerError{Worker: self, Err: r.opts.ctx().Err()}
		case <-r.timer.C:
			if attempt >= attempts {
				return chanMsg{}, &WorkerError{Worker: pred,
					Err: fmt.Errorf("receive timed out after %d attempts", attempts)}
			}
			r.rt.retry()
		}
	}
}

// chanClockSync measures each worker's clock offset relative to ring
// position 0 and records it in the tracer's offset table. It runs
// sequentially before the worker goroutines launch (no leak surface):
// for each link a symmetric NTP-style exchange samples the predecessor's
// clock between two local samples, so the link transfer delay cancels to
// first order. Offsets chain around the ring: position j's offset is
// position j-1's minus the measured pairwise delta.
func chanClockSync(links []chan chanMsg, opts Options) {
	trc := opts.Obs.Trc
	offsets := trc.Offsets()
	n := len(links)
	offsets.Set(opts.workerID(0), 0)
	var off time.Duration
	for j := 1; j < n; j++ {
		pred := j - 1
		t0 := trc.Now() + opts.skew(j)
		links[j] <- chanMsg{clock: trc.Now() + opts.skew(pred)}
		in := <-links[j]
		t1 := trc.Now() + opts.skew(j)
		// d = pred's clock minus position j's clock.
		d := in.clock - (t0+t1)/2
		off -= d
		offsets.Set(opts.workerID(j), off)
	}
}

// Hierarchical performs the two-level reduction the paper's cluster uses
// (NVLink ring inside each node, network ring across nodes): an
// intra-group ring reduce, an inter-group ring across group leaders, and
// an intra-group broadcast. groupSize is the number of workers per node.
func Hierarchical(vectors [][]float32, groupSize int) error {
	return HierarchicalObs(vectors, groupSize, nil)
}

// HierarchicalObs is Hierarchical with telemetry threaded into its
// constituent ring phases.
func HierarchicalObs(vectors [][]float32, groupSize int, o *obs.Obs) error {
	n := len(vectors)
	if n == 0 {
		return fmt.Errorf("allreduce: no workers")
	}
	if groupSize <= 0 || n%groupSize != 0 {
		return fmt.Errorf("allreduce: %d workers do not split into groups of %d", n, groupSize)
	}
	// Intra-group rings.
	var wg sync.WaitGroup
	errs := make([]error, n/groupSize)
	for g := 0; g < n/groupSize; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = RingObs(vectors[g*groupSize:(g+1)*groupSize], o)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Inter-group ring across the group leaders.
	leaders := make([][]float32, 0, n/groupSize)
	for g := 0; g < n/groupSize; g++ {
		leaders = append(leaders, vectors[g*groupSize])
	}
	if err := RingObs(leaders, o); err != nil {
		return err
	}
	// Broadcast inside each group.
	for g := 0; g < n/groupSize; g++ {
		src := vectors[g*groupSize]
		for w := 1; w < groupSize; w++ {
			copy(vectors[g*groupSize+w], src)
		}
	}
	return nil
}
