// Package allreduce is a working implementation of the ring all-reduce
// algorithm the paper's gradient-update model is built around (§3.3:
// "a ring-all-reduce pattern synchronizes all local updates"). N workers
// — one goroutine each, connected in a ring by channels — reduce their
// equally sized gradient vectors to the elementwise sum in 2·(N−1) steps:
// a reduce-scatter phase followed by an all-gather phase, each moving one
// 1/N-sized chunk per step. This is the communication pattern NCCL and
// Horovod use; netsim models its *cost*, this package executes it for
// real and pins down its semantics.
package allreduce

import (
	"fmt"
	"sync"
	"time"

	"convmeter/internal/obs"
)

// ringTelemetry bundles the metric handles one all-reduce run shares
// across its worker goroutines (counters and histograms are internally
// atomic, so concurrent updates are safe). A nil *ringTelemetry — the
// disabled path — makes every method a no-op.
type ringTelemetry struct {
	steps      *obs.Counter
	stepH      *obs.Histogram
	sent, recv *obs.Counter // tcp transport only
}

// newRingTelemetry resolves handles for the given transport ("chan" or
// "tcp"); byte counters exist only for tcp, where real sockets move the
// gradient chunks.
func newRingTelemetry(o *obs.Obs, transport string) *ringTelemetry {
	if o == nil {
		return nil
	}
	rt := &ringTelemetry{
		steps: o.Counter(obs.Label("convmeter_allreduce_steps_total", "transport", transport),
			"ring all-reduce steps executed (per worker, reduce-scatter plus all-gather), by transport"),
		stepH: o.Histogram(obs.Label("convmeter_allreduce_step_seconds", "transport", transport),
			"ring step latency: one chunk sent, one received, reduced or stored", obs.DefaultDurationBuckets()),
	}
	if transport == "tcp" {
		rt.sent = o.Counter(obs.Label("convmeter_allreduce_tcp_bytes_total", "dir", "sent"),
			"framed gradient bytes written to ring sockets")
		rt.recv = o.Counter(obs.Label("convmeter_allreduce_tcp_bytes_total", "dir", "recv"),
			"framed gradient bytes read from ring sockets")
	}
	return rt
}

// step records one completed ring step.
func (rt *ringTelemetry) step(elapsed time.Duration) {
	if rt == nil {
		return
	}
	rt.steps.Inc()
	rt.stepH.Observe(elapsed.Seconds())
}

// chunkBounds splits length n into p contiguous chunks; chunk i spans
// [start, end). Chunks differ in size by at most one element, and may be
// empty when n < p.
func chunkBounds(n, p, i int) (start, end int) {
	base := n / p
	rem := n % p
	start = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return start, start + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Ring reduces the workers' vectors in place to their elementwise sum
// using ring all-reduce. vectors[i] is worker i's local gradient; all
// vectors must have equal length. The run is fully concurrent: one
// goroutine per worker, synchronised only by the ring channels.
func Ring(vectors [][]float32) error {
	return RingObs(vectors, nil)
}

// RingObs is Ring with telemetry: per-step counts and latencies land on
// the bundle under transport="chan". A nil Obs is exactly Ring.
func RingObs(vectors [][]float32, o *obs.Obs) error {
	n := len(vectors)
	if n == 0 {
		return fmt.Errorf("allreduce: no workers")
	}
	rt := newRingTelemetry(o, "chan")
	length := len(vectors[0])
	for i, v := range vectors {
		if len(v) != length {
			return fmt.Errorf("allreduce: worker %d has %d elements, worker 0 has %d", i, len(v), length)
		}
	}
	if n == 1 {
		return nil // nothing to reduce
	}
	// links[i] carries messages from worker i-1 to worker i (mod n).
	links := make([]chan []float32, n)
	for i := range links {
		links[i] = make(chan []float32, 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			v := vectors[me]
			send := links[(me+1)%n]
			recv := links[me]
			// Phase 1 — reduce-scatter: after step s, worker me holds the
			// partial sum of chunk (me−s) accumulated over s+1 workers. At
			// the end, worker me owns the fully reduced chunk (me+1) mod n.
			for s := 0; s < n-1; s++ {
				var t0 time.Time
				if rt != nil {
					t0 = time.Now()
				}
				sendChunk := ((me-s)%n + n) % n
				recvChunk := ((me-s-1)%n + n) % n
				a, b := chunkBounds(length, n, sendChunk)
				out := make([]float32, b-a)
				copy(out, v[a:b])
				send <- out
				in := <-recv
				a, b = chunkBounds(length, n, recvChunk)
				for k := range in {
					v[a+k] += in[k]
				}
				if rt != nil {
					rt.step(time.Since(t0))
				}
			}
			// Phase 2 — all-gather: circulate the fully reduced chunks.
			for s := 0; s < n-1; s++ {
				var t0 time.Time
				if rt != nil {
					t0 = time.Now()
				}
				sendChunk := ((me-s+1)%n + n) % n
				recvChunk := ((me-s)%n + n) % n
				a, b := chunkBounds(length, n, sendChunk)
				out := make([]float32, b-a)
				copy(out, v[a:b])
				send <- out
				in := <-recv
				a, b = chunkBounds(length, n, recvChunk)
				copy(v[a:b], in)
				if rt != nil {
					rt.step(time.Since(t0))
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// Hierarchical performs the two-level reduction the paper's cluster uses
// (NVLink ring inside each node, network ring across nodes): an
// intra-group ring reduce, an inter-group ring across group leaders, and
// an intra-group broadcast. groupSize is the number of workers per node.
func Hierarchical(vectors [][]float32, groupSize int) error {
	return HierarchicalObs(vectors, groupSize, nil)
}

// HierarchicalObs is Hierarchical with telemetry threaded into its
// constituent ring phases.
func HierarchicalObs(vectors [][]float32, groupSize int, o *obs.Obs) error {
	n := len(vectors)
	if n == 0 {
		return fmt.Errorf("allreduce: no workers")
	}
	if groupSize <= 0 || n%groupSize != 0 {
		return fmt.Errorf("allreduce: %d workers do not split into groups of %d", n, groupSize)
	}
	// Intra-group rings.
	var wg sync.WaitGroup
	errs := make([]error, n/groupSize)
	for g := 0; g < n/groupSize; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = RingObs(vectors[g*groupSize:(g+1)*groupSize], o)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Inter-group ring across the group leaders.
	leaders := make([][]float32, 0, n/groupSize)
	for g := 0; g < n/groupSize; g++ {
		leaders = append(leaders, vectors[g*groupSize])
	}
	if err := RingObs(leaders, o); err != nil {
		return err
	}
	// Broadcast inside each group.
	for g := 0; g < n/groupSize; g++ {
		src := vectors[g*groupSize]
		for w := 1; w < groupSize; w++ {
			copy(vectors[g*groupSize+w], src)
		}
	}
	return nil
}
