package experiments

import (
	"fmt"

	"convmeter/internal/baselines"
	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/models"
	"convmeter/internal/regress"
)

// fig6Batches is the paper's comparison grid: fixed 128×128 images,
// batch sizes from 16 to 2,000.
func fig6Batches(quick bool) []int {
	if quick {
		return []int{16, 128, 1024, 2000}
	}
	return []int{16, 32, 64, 128, 256, 512, 1024, 2000}
}

// Fig6 reproduces Figure 6: ConvMeter vs the DIPPM surrogate, MAPE and
// NRMSE per ConvNet at a fixed 128 px image size. The surrogate follows
// the original DIPPM's constraints: it is trained on a narrower
// configuration sample (batches ≤ 256, mirroring its fixed-setting
// dataset) and cannot parse graphs without a linear classifier head, so
// squeezenet1_0 is skipped exactly as in the paper.
func Fig6(cfg Config) (*Result, error) {
	sc := bench.DefaultInferenceScenario(hwsim.A100(), cfg.Seed)
	sc.Images = []int{128}
	sc.Batches = fig6Batches(cfg.Quick)
	if cfg.Quick {
		sc.Models = []string{"alexnet", "resnet18", "resnet50", "mobilenet_v2", "vgg11", "squeezenet1_0"}
	}
	samples, err := bench.CollectInference(sc)
	if err != nil {
		return nil, err
	}
	// ConvMeter under LOMO.
	cm, err := core.EvaluateInferenceLOMO(samples)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig6",
		Title: "Figure 6: ConvMeter vs DIPPM surrogate (A100, image 128, batch 16–2000, LOMO)",
		Stats: map[string]float64{},
	}
	var rows [][]string
	wins, comparable := 0, 0
	for _, name := range cm.Models() {
		cmRep := cm.PerModel[name]
		g, err := models.Build(name, 128)
		if err != nil {
			return nil, err
		}
		dippmCell := "n/a (graph parse failed)"
		if parseErr := baselines.CanParse(g); parseErr == nil {
			train, held := lomoSplit(samples, name)
			// DIPPM's fixed-setting dataset: only moderate batch sizes
			// (mirroring the original's constraint to the configurations
			// its training dataset was collected at).
			var narrow []core.Sample
			for _, s := range train {
				if s.BatchPerDevice <= 128 {
					narrow = append(narrow, s)
				}
			}
			d, err := baselines.TrainDIPPM(narrow, baselines.DIPPMConfig{Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("dippm for %s: %w", name, err)
			}
			acts := make([]float64, len(held))
			preds := make([]float64, len(held))
			for i, s := range held {
				acts[i] = float64(s.Fwd)
				if preds[i], err = d.Predict(s.Met, float64(s.BatchPerDevice)); err != nil {
					return nil, err
				}
			}
			dRep, err := regress.Evaluate(acts, preds)
			if err != nil {
				return nil, err
			}
			dippmCell = fmt.Sprintf("%.3f / %.3f", dRep.MAPE, dRep.NRMSE)
			comparable++
			if cmRep.MAPE < dRep.MAPE {
				wins++
			}
			res.Stats["dippm_mape_"+name] = dRep.MAPE
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f / %.3f", cmRep.MAPE, cmRep.NRMSE),
			dippmCell,
		})
		res.Stats["convmeter_mape_"+name] = cmRep.MAPE
	}
	res.Stats["wins"] = float64(wins)
	res.Stats["comparable"] = float64(comparable)
	res.Text = table([]string{"ConvNet", "ConvMeter MAPE/NRMSE", "DIPPM MAPE/NRMSE"}, rows) +
		fmt.Sprintf("\nConvMeter outperforms the DIPPM surrogate on %d of %d comparable ConvNets.\n", wins, comparable)
	return res, nil
}

// lomoSplit mirrors core's internal split for baseline protocols.
func lomoSplit(samples []core.Sample, model string) (train, held []core.Sample) {
	for _, s := range samples {
		if s.Model == model {
			held = append(held, s)
		} else {
			train = append(train, s)
		}
	}
	return train, held
}
