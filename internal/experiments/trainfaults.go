package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"convmeter/internal/allreduce"
	"convmeter/internal/core"
	"convmeter/internal/driftwatch"
	"convmeter/internal/faults"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/netsim"
	"convmeter/internal/train"
	"convmeter/internal/trainsim"
)

// ExtTrainFaults is the chaos counterpart of ExtTrainReal: the same real
// data-parallel trainer, but over TCP with a deterministic fault injector
// dealing stragglers, dropped/reset connections, corrupted and truncated
// chunks, and a scheduled worker crash. The run must survive all of it —
// retries absorb the transient faults, CRC validation catches the
// corruption, and elastic degradation re-forms the ring without the
// crashed worker while the global batch is respread over the survivors.
// The invariants checked are the paper's data-parallel correctness
// conditions restated under failure: the loss still falls and every
// surviving replica holds bit-identical weights.
//
// The fault schedule is a pure function of the fault seed
// (Config.FaultsSeed, falling back to Config.Seed), so two runs with the
// same seed inject the identical fault set — the property the chaos tests
// assert.
func ExtTrainFaults(cfg Config) (*Result, error) {
	prof, err := faults.ByName(profileName(cfg))
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(faultsSeed(cfg), prof, cfg.Obs)
	if err != nil {
		return nil, err
	}
	g, err := trainRealNet()
	if err != nil {
		return nil, err
	}
	workers, steps, globalBatch := 4, 16, 24
	if cfg.Quick {
		steps, globalBatch = 10, 16
	}
	task, err := train.NewPrototypeTask(g, 3, 0.3, cfg.Seed+41)
	if err != nil {
		return nil, err
	}
	tcfg := train.Config{
		Workers: workers, LR: 0.1, Seed: cfg.Seed + 42, Obs: cfg.Obs,
		Transport: train.TransportTCP,
		Faults:    inj,
		OpTimeout: 200 * time.Millisecond,
		Retry:     allreduce.RetryPolicy{Attempts: 2, Backoff: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}
	if cfg.Drift != nil {
		predict, err := driftPredictor(cfg, g, globalBatch)
		if err != nil {
			return nil, err
		}
		tcfg.PredictStep = predict
		tcfg.Drift = cfg.Drift.StreamOpts("trainreal", "iter", driftwatch.Options{
			Window: 64, CalibrateN: 2, Warmup: 3, Delta: 0.5, Lambda: 8,
		})
	}
	if cfg.Crit != nil {
		tcfg.Crit = cfg.Crit
		// Exercise the full attribution stack: align worker clocks over
		// the TCP handshake, against small deterministic simulated skews
		// the alignment must measure back out.
		tcfg.AlignClocks = true
		tcfg.ClockSkews = []time.Duration{
			0, 2 * time.Millisecond, -1500 * time.Microsecond, 3 * time.Millisecond,
		}
	}
	tr, err := train.NewTrainer(g, tcfg)
	if err != nil {
		return nil, err
	}
	res, err := tr.Run(steps, task.SourceGlobal(globalBatch, tr.LiveCount))
	if err != nil {
		return nil, err
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first {
		return nil, fmt.Errorf("exttrainfaults: loss did not fall under faults (%g -> %g)", first, last)
	}
	minSum, maxSum := res.Checksums[0], res.Checksums[0]
	for _, c := range res.Checksums[1:] {
		if c < minSum {
			minSum = c
		}
		if c > maxSum {
			maxSum = c
		}
	}
	if spread := maxSum - minSum; spread != 0 {
		return nil, fmt.Errorf("exttrainfaults: survivors desynchronised (checksum spread %g)", spread)
	}
	counts := inj.CountByClass()
	// A crash-scheduled worker must be dead by the end — either its
	// scheduled crash fired, or blame-based degradation removed it first.
	for w := range prof.Crashes {
		for _, id := range res.Live {
			if id == w {
				return nil, fmt.Errorf("exttrainfaults: crash-scheduled worker %d survived", w)
			}
		}
	}
	out := &Result{
		ID:    "exttrainfaults",
		Title: "Extension: chaos run — resilient data-parallel training under injected faults",
		Stats: map[string]float64{
			"workers_start": float64(workers),
			"workers_live":  float64(len(res.Live)),
			"steps":         float64(steps),
			"global_batch":  float64(globalBatch),
			"loss_first":    first,
			"loss_last":     last,
		},
	}
	classes := []faults.Class{
		faults.ClassDelay, faults.ClassDrop, faults.ClassReset,
		faults.ClassCorrupt, faults.ClassTruncate, faults.ClassCrash,
		faults.ClassSlow,
	}
	var parts []string
	for _, c := range classes {
		out.Stats["faults_"+string(c)] = float64(counts[c])
		if counts[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, counts[c]))
		}
	}
	sort.Strings(parts)
	out.Text = fmt.Sprintf(
		"Trained %d steps on %d workers over TCP under profile %q (fault seed %d):\n"+
			"loss %.4f -> %.4f, %d/%d workers live, survivor checksums identical.\n"+
			"Faults injected: %s.\n",
		steps, workers, profileName(cfg), faultsSeed(cfg),
		first, last, len(res.Live), workers, strings.Join(parts, " "))
	return out, nil
}

// driftPredictor builds the chaos experiment's analytical step-time
// oracle: it fits the paper's training model on simulator samples of the
// chaos net itself, then predicts T_iter for whatever worker count is
// live (the global batch is respread over the survivors, exactly like
// the trainer's SourceGlobal). The drift stream's one-point κ
// calibration absorbs the constant simulator-vs-host offset, so the
// detector watches the *shape* of the residuals, not the absolute scale.
func driftPredictor(cfg Config, g *graph.Graph, globalBatch int) (func(int) float64, error) {
	met, err := metrics.FromGraph(g)
	if err != nil {
		return nil, err
	}
	sim, err := trainsim.New(trainsim.Config{
		Device: hwsim.XeonCore(), Fabric: netsim.Cluster(), Seed: cfg.Seed + 43,
	})
	if err != nil {
		return nil, err
	}
	var samples []core.Sample
	for _, devices := range []int{1, 2, 4} {
		for _, batch := range []int{2, 3, 4, 6, 8, 12, 24} {
			p, err := sim.TrainStep(g, batch, devices, 1)
			if err != nil {
				return nil, err
			}
			samples = append(samples, core.Sample{
				Model: g.Name, Met: met, Image: 8,
				BatchPerDevice: batch, Devices: devices, Nodes: 1,
				Fwd:  metrics.Seconds(p.Fwd),
				Bwd:  metrics.Seconds(p.Bwd),
				Grad: metrics.Seconds(p.Grad),
			})
		}
	}
	m, err := core.FitTraining(samples)
	if err != nil {
		return nil, err
	}
	return func(live int) float64 {
		if live < 1 {
			live = 1
		}
		b := float64(globalBatch) / float64(live)
		if b < 1 {
			b = 1
		}
		return float64(m.PredictIter(met, b, live, 1))
	}, nil
}

// profileName resolves the chaos experiment's fault profile.
func profileName(cfg Config) string {
	if cfg.FaultsProfile != "" {
		return cfg.FaultsProfile
	}
	return "chaos"
}

// faultsSeed resolves the fault-schedule seed.
func faultsSeed(cfg Config) int64 {
	if cfg.FaultsSeed != 0 {
		return cfg.FaultsSeed
	}
	return cfg.Seed
}
