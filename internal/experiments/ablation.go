package experiments

import (
	"fmt"

	"convmeter/internal/baselines"
	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/regress"
	"convmeter/internal/trainsim"
)

// Ablation quantifies the design choices DESIGN.md calls out:
//
//  1. Modeling effort (§3.4 / Table 4 context): prediction quality as a
//     function of benchmark dataset size — ConvMeter's claim is that a
//     few coefficients fitted on <5,000 points suffice, with no
//     fine-tuning iterations.
//  2. Pooled vs model-specific coefficients (§4.3): tuning on a specific
//     ConvNet of interest sharpens its own prediction.
//  3. Measurement-noise sensitivity: LOMO error under increasing
//     run-to-run variation.
//  4. Horovod fusion-buffer size: exposed gradient time across buffer
//     sizes in the overlap simulator.
func Ablation(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "ablation",
		Title: "Ablations: dataset size, per-model tuning, noise, fusion buffer",
		Stats: map[string]float64{},
	}
	text := ""

	// --- 1. Dataset-size ablation ---------------------------------------
	full, err := bench.CollectInference(inferenceScenario(hwsim.A100(), cfg))
	if err != nil {
		return nil, err
	}
	holdModel := "resnet50"
	if cfg.Quick {
		holdModel = "resnet18"
	}
	trainAll, held := lomoSplit(full, holdModel)
	sizes := []int{25, 100, 400, len(trainAll)}
	var rows [][]string
	for _, n := range sizes {
		if n > len(trainAll) {
			n = len(trainAll)
		}
		// Stratified-by-model subsample: a tiny benchmark budget should
		// still span the zoo, as a real reduced campaign would.
		sub := bench.Subsample(trainAll, n, cfg.Seed+int64(n))
		m, err := core.FitInference(sub)
		if err != nil {
			return nil, err
		}
		acts := make([]float64, len(held))
		preds := make([]float64, len(held))
		for i, s := range held {
			acts[i] = float64(s.Fwd)
			preds[i] = float64(m.Predict(s.Met, float64(s.BatchPerDevice)))
		}
		rep, err := regress.Evaluate(acts, preds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", rep.MAPE), fmt.Sprintf("%.3f", rep.R2)})
		res.Stats[fmt.Sprintf("datasize_mape_%d", n)] = rep.MAPE
	}
	text += fmt.Sprintf("Dataset-size ablation (held-out %s):\n%s\n", holdModel,
		table([]string{"Fit points", "MAPE", "R²"}, rows))

	// --- 2. Pooled vs model-specific coefficients ------------------------
	pooled, err := core.FitInference(trainAll)
	if err != nil {
		return nil, err
	}
	specific, err := core.FitInference(held)
	if err != nil {
		return nil, err
	}
	evalOn := func(m *core.InferenceModel) (regress.Report, error) {
		acts := make([]float64, len(held))
		preds := make([]float64, len(held))
		for i, s := range held {
			acts[i] = float64(s.Fwd)
			preds[i] = float64(m.Predict(s.Met, float64(s.BatchPerDevice)))
		}
		return regress.Evaluate(acts, preds)
	}
	pooledRep, err := evalOn(pooled)
	if err != nil {
		return nil, err
	}
	specificRep, err := evalOn(specific)
	if err != nil {
		return nil, err
	}
	res.Stats["pooled_mape"] = pooledRep.MAPE
	res.Stats["specific_mape"] = specificRep.MAPE
	text += fmt.Sprintf("Pooled vs %s-specific coefficients on %s: pooled MAPE %.3f, specific MAPE %.3f\n\n",
		holdModel, holdModel, pooledRep.MAPE, specificRep.MAPE)

	// --- 2b. Fitting objective: relative-weighted vs plain OLS -----------
	// The paper evaluates with MAPE ("large and small errors ... equally
	// important"); fitting with relative weights aligns the objective with
	// that metric, while plain OLS lets second-scale measurements dominate
	// millisecond ones. Compared under the full LOMO protocol (a single
	// held-out model can go either way; the sweep-wide gap is decisive).
	olsEv, err := core.EvaluateLOMO(full,
		func(train, held []core.Sample) ([]float64, error) {
			m, err := core.FitInferenceOLS(train)
			if err != nil {
				return nil, err
			}
			preds := make([]float64, len(held))
			for i, s := range held {
				preds[i] = float64(m.Predict(s.Met, float64(s.BatchPerDevice)))
			}
			return preds, nil
		},
		func(s core.Sample) float64 { return float64(s.Fwd) })
	if err != nil {
		return nil, err
	}
	wlsEv, err := core.EvaluateInferenceLOMO(full)
	if err != nil {
		return nil, err
	}
	res.Stats["ols_mape"] = olsEv.Overall.MAPE
	res.Stats["wls_mape"] = wlsEv.Overall.MAPE
	text += fmt.Sprintf("Fitting objective (overall LOMO, A100): relative-weighted MAPE %.3f / R² %.3f vs plain OLS MAPE %.3f / R² %.3f\n",
		wlsEv.Overall.MAPE, wlsEv.Overall.R2, olsEv.Overall.MAPE, olsEv.Overall.R2)
	// The gap is largest where runtimes span the most orders of magnitude:
	// the full-range CPU sweep (batch 1–2048), where OLS parks the
	// intercept tens of milliseconds away from the smallest measurements.
	cpuSc := bench.DefaultInferenceScenario(hwsim.XeonCore(), cfg.Seed)
	if cfg.Quick {
		cpuSc.Models = inferenceScenario(hwsim.XeonCore(), cfg).Models
		cpuSc.Images = []int{64, 128}
		cpuSc.Batches = []int{1, 16, 256}
	}
	cpuSamples, err := bench.CollectInference(cpuSc)
	if err != nil {
		return nil, err
	}
	cpuOLS, err := core.EvaluateLOMO(cpuSamples,
		func(train, held []core.Sample) ([]float64, error) {
			m, err := core.FitInferenceOLS(train)
			if err != nil {
				return nil, err
			}
			preds := make([]float64, len(held))
			for i, s := range held {
				preds[i] = float64(m.Predict(s.Met, float64(s.BatchPerDevice)))
			}
			return preds, nil
		},
		func(s core.Sample) float64 { return float64(s.Fwd) })
	if err != nil {
		return nil, err
	}
	cpuWLS, err := core.EvaluateInferenceLOMO(cpuSamples)
	if err != nil {
		return nil, err
	}
	res.Stats["ols_mape_cpu"] = cpuOLS.Overall.MAPE
	res.Stats["wls_mape_cpu"] = cpuWLS.Overall.MAPE
	text += fmt.Sprintf("Fitting objective (overall LOMO, full-range CPU sweep): relative-weighted MAPE %.3f vs plain OLS MAPE %.3f\n\n",
		cpuWLS.Overall.MAPE, cpuOLS.Overall.MAPE)

	// --- 3. Noise sensitivity --------------------------------------------
	rows = nil
	for _, sigma := range []float64{0.02, 0.06, 0.12} {
		sc := inferenceScenario(hwsim.A100(), cfg)
		sc.NoiseSigma = sigma
		samples, err := bench.CollectInference(sc)
		if err != nil {
			return nil, err
		}
		ev, err := core.EvaluateInferenceLOMO(samples)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{fmt.Sprintf("%.2f", sigma), fmt.Sprintf("%.3f", ev.Overall.MAPE), fmt.Sprintf("%.3f", ev.Overall.R2)})
		res.Stats[fmt.Sprintf("noise_mape_%.2f", sigma)] = ev.Overall.MAPE
	}
	text += "Noise sensitivity (LOMO inference, A100):\n" +
		table([]string{"σ", "MAPE", "R²"}, rows) + "\n"

	// --- 4. Fusion-buffer sweep -------------------------------------------
	g, err := models.Build("resnet50", 128)
	if err != nil {
		return nil, err
	}
	rows = nil
	for _, fusion := range []float64{1 << 12, 1 << 22, trainsim.DefaultFusionBytes, 1 << 30} {
		sim, err := trainsim.New(trainsim.Config{
			Device: hwsim.A100(), Fabric: netsim.Cluster(),
			FusionBytes: fusion, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		p, err := sim.TrainStepExact(g, 32, 16, 4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f KiB", fusion/1024),
			fmt.Sprintf("%.2f ms", p.Grad*1e3),
			fmt.Sprintf("%.2f ms", p.Iter*1e3),
		})
		res.Stats[fmt.Sprintf("fusion_grad_ms_%d", int(fusion))] = p.Grad * 1e3
	}
	text += "Fusion-buffer sweep (ResNet-50, 16 GPUs / 4 nodes, batch 32):\n" +
		table([]string{"Buffer", "Grad phase", "Step"}, rows) + "\n"

	// --- 5. Cross-device transfer vs native fit --------------------------
	// A Habitat-style shortcut (related work): scale A100 coefficients by
	// peak/bandwidth ratios instead of benchmarking the target device.
	srcModel, err := core.FitInference(full)
	if err != nil {
		return nil, err
	}
	transferred, err := baselines.TransferInference(srcModel, hwsim.A100(), hwsim.JetsonLike())
	if err != nil {
		return nil, err
	}
	edgeSc := inferenceScenario(hwsim.JetsonLike(), cfg)
	edgeSamples, err := bench.CollectInference(edgeSc)
	if err != nil {
		return nil, err
	}
	nativeModel, err := core.FitInference(edgeSamples)
	if err != nil {
		return nil, err
	}
	acts := make([]float64, len(edgeSamples))
	tPred := make([]float64, len(edgeSamples))
	nPred := make([]float64, len(edgeSamples))
	for i, s := range edgeSamples {
		acts[i] = float64(s.Fwd)
		tPred[i] = float64(transferred.Predict(s.Met, float64(s.BatchPerDevice)))
		nPred[i] = float64(nativeModel.Predict(s.Met, float64(s.BatchPerDevice)))
	}
	tRep, err := regress.Evaluate(acts, tPred)
	if err != nil {
		return nil, err
	}
	nRep, err := regress.Evaluate(acts, nPred)
	if err != nil {
		return nil, err
	}
	res.Stats["transfer_mape"] = tRep.MAPE
	res.Stats["native_mape"] = nRep.MAPE
	text += fmt.Sprintf("Cross-device transfer (A100→Jetson, Habitat-style) vs native fit:\n"+
		"  transferred coefficients: MAPE %.3f   native benchmark fit: MAPE %.3f\n"+
		"  — target-side benchmarking (ConvMeter's approach) is worth its small cost.\n",
		tRep.MAPE, nRep.MAPE)

	res.Text = text
	return res, nil
}
