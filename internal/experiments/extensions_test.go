package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestExtViTPredictsTransformers(t *testing.T) {
	res, err := ExtViT(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range vitModels() {
		mape, ok := res.Stats["mape_"+m]
		if !ok {
			t.Fatalf("%s missing from results", m)
		}
		if mape > 0.6 {
			t.Errorf("%s MAPE = %.3f — transformer extension not usable", m, mape)
		}
		if res.Stats["r2_"+m] < 0.7 {
			t.Errorf("%s R² = %.3f", m, res.Stats["r2_"+m])
		}
	}
	if !strings.Contains(res.Text, "vit_l_16") {
		t.Error("rendered table missing vit_l_16")
	}
}

func TestExtEdgeBothDevices(t *testing.T) {
	res, err := ExtEdge(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"jetson", "pi"} {
		if r2 := res.Stats["r2_"+dev]; r2 < 0.8 {
			t.Errorf("%s R² = %.3f", dev, r2)
		}
		if mape := res.Stats["mape_"+dev]; mape > 0.35 {
			t.Errorf("%s MAPE = %.3f", dev, mape)
		}
	}
}

func TestExtStrongScalingShape(t *testing.T) {
	res, err := ExtStrong(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Step time must shrink with nodes; speedup must be sub-linear; and
	// the prediction must track the simulated ground truth.
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		pred := res.Stats[fmt.Sprintf("pred_iter_resnet50_n%d", n)]
		sim := res.Stats[fmt.Sprintf("sim_iter_resnet50_n%d", n)]
		if pred <= 0 || sim <= 0 {
			t.Fatalf("n=%d: missing data", n)
		}
		if prev > 0 && pred >= prev {
			t.Errorf("n=%d: strong scaling not improving (%g >= %g)", n, pred, prev)
		}
		prev = pred
		if rel := math.Abs(pred-sim) / sim; rel > 0.5 {
			t.Errorf("n=%d: prediction %g vs simulated %g (rel %.2f)", n, pred, sim, rel)
		}
	}
	if sp := res.Stats["speedup_resnet50_n8"]; sp <= 1 || sp >= 8 {
		t.Errorf("8-node speedup %.2f should be in (1, 8)", sp)
	}
}

func TestExtRealMeasuresAndFits(t *testing.T) {
	res, err := ExtReal(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["points"] < 9 {
		t.Fatalf("only %.0f real measurements", res.Stats["points"])
	}
	// Real wall-clock on a loaded machine is noisy and the quick sweep is
	// tiny, so require only a usable fit.
	if res.Stats["mape_overall"] > 2.0 {
		t.Errorf("real-measurement MAPE %.3f unusable", res.Stats["mape_overall"])
	}
	if !strings.Contains(res.Text, "gocpu") {
		t.Error("device name missing from report")
	}
}

func TestExtPipelinePredictionTracksSimulation(t *testing.T) {
	res, err := ExtPipeline(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["series_mape"] > 0.5 {
		t.Errorf("pipeline prediction mean relative error %.3f", res.Stats["series_mape"])
	}
	// Pipelining VGG-16 over 4 stages must raise simulated throughput
	// over the single-stage run (it is a near-linear chain).
	if res.Stats["simulated_vgg16_k4"] <= res.Stats["simulated_vgg16_k1"] {
		t.Errorf("vgg16: 4-stage pipeline (%.0f img/s) should beat 1 stage (%.0f img/s)",
			res.Stats["simulated_vgg16_k4"], res.Stats["simulated_vgg16_k1"])
	}
	if res.Stats["bestk_vgg16"] < 2 {
		t.Errorf("vgg16 best stage count %.0f — pipelining should pay off", res.Stats["bestk_vgg16"])
	}
}
