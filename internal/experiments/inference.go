package experiments

import (
	"fmt"

	"convmeter/internal/baselines"
	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/hwsim"
)

// inferenceScenario picks the paper's sweep, shrunk under Quick. A
// single CPU core is capped at batch 32: measuring VGG-16 at batch 2048
// would take a quarter hour per data point, which no benchmark campaign
// (including the paper's) would sweep.
func inferenceScenario(dev hwsim.Device, cfg Config) bench.InferenceScenario {
	sc := bench.DefaultInferenceScenario(dev, cfg.Seed)
	if dev.Name == "xeon" {
		sc.Batches = []int{1, 2, 4, 8, 16, 32}
	}
	if cfg.Quick {
		sc.Models = []string{"alexnet", "resnet18", "resnet50", "mobilenet_v2", "vgg11", "squeezenet1_0"}
		sc.Images = []int{64, 128, 224}
		sc.Batches = []int{1, 8, 64, 512}
		if dev.Name == "xeon" {
			sc.Batches = []int{1, 4, 16, 32}
		}
	}
	sc.Obs = cfg.Obs
	return sc
}

// Fig2 reproduces Figure 2: inference-time prediction quality using
// FLOPs alone, Inputs alone, Outputs alone, and the combined model.
func Fig2(cfg Config) (*Result, error) {
	samples, err := bench.CollectInference(inferenceScenario(hwsim.A100(), cfg))
	if err != nil {
		return nil, err
	}
	masks := []baselines.MetricMask{
		{F: true}, {I: true}, {O: true}, {F: true, I: true, O: true},
	}
	res := &Result{
		ID:    "fig2",
		Title: "Figure 2: inference prediction by metric combination (A100, LOMO)",
		Stats: map[string]float64{},
	}
	var rows [][]string
	for _, mask := range masks {
		mask := mask
		ev, err := lomoEval(cfg, "fig2/"+mask.String(), func() (*core.Evaluation, error) {
			return baselines.EvaluateAblationLOMO(samples, mask)
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			mask.String(),
			fmt.Sprintf("%.3f", ev.Overall.R2),
			fmt.Sprintf("%.2f ms", ev.Overall.RMSE*1e3),
			fmt.Sprintf("%.3f", ev.Overall.NRMSE),
			fmt.Sprintf("%.3f", ev.Overall.MAPE),
		})
		res.Stats["mape_"+mask.String()] = ev.Overall.MAPE
		res.Stats["r2_"+mask.String()] = ev.Overall.R2
	}
	res.Text = table([]string{"Predictor", "R²", "RMSE", "NRMSE", "MAPE"}, rows)
	return res, nil
}

// perModelTable renders the paper's per-ConvNet error table layout.
func perModelTable(ev *core.Evaluation, rmseUnit string, rmseScale float64) string {
	var rows [][]string
	for _, name := range ev.Models() {
		rep := ev.PerModel[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", rep.R2),
			fmt.Sprintf("%.3g %s", rep.RMSE*rmseScale, rmseUnit),
			fmt.Sprintf("%.3f", rep.NRMSE),
			fmt.Sprintf("%.3f", rep.MAPE),
		})
	}
	rows = append(rows, []string{
		"OVERALL",
		fmt.Sprintf("%.3f", ev.Overall.R2),
		fmt.Sprintf("%.3g %s", ev.Overall.RMSE*rmseScale, rmseUnit),
		fmt.Sprintf("%.3f", ev.Overall.NRMSE),
		fmt.Sprintf("%.3f", ev.Overall.MAPE),
	})
	return table([]string{"ConvNet", "R²", "RMSE", "NRMSE", "MAPE"}, rows)
}

// table1Devices lists Table 1's hardware in the paper's column order.
func table1Devices() []hwsim.Device {
	return []hwsim.Device{hwsim.XeonCore(), hwsim.A100()}
}

// table1Samples is Table 1's fit stage: collect the benchmark dataset
// for every device. Split out so the DAG runs collection and evaluation
// as separate, individually resumable nodes.
func table1Samples(cfg Config) (map[string][]core.Sample, error) {
	out := make(map[string][]core.Sample, 2)
	for _, dev := range table1Devices() {
		samples, err := bench.CollectInference(inferenceScenario(dev, cfg))
		if err != nil {
			return nil, err
		}
		out[dev.Name] = samples
	}
	return out, nil
}

// table1FromSamples is Table 1's LOMO stage: evaluate the collected
// dataset and render the table. Composing it after table1Samples is
// exactly Table1 — the DAG's staged path and the flat path must agree
// bit for bit.
func table1FromSamples(cfg Config, byDev map[string][]core.Sample) (*Result, error) {
	res := &Result{
		ID:    "table1",
		Title: "Table 1: per-ConvNet inference accuracy (LOMO)",
		Stats: map[string]float64{},
	}
	text := ""
	for _, dev := range table1Devices() {
		samples, ok := byDev[dev.Name]
		if !ok {
			return nil, fmt.Errorf("experiments: table1 samples missing device %s", dev.Name)
		}
		ev, err := lomoEval(cfg, "table1/"+dev.Name, func() (*core.Evaluation, error) {
			return core.EvaluateInferenceLOMO(samples)
		})
		if err != nil {
			return nil, err
		}
		unit, scale := "ms", 1e3
		if dev.Name == "xeon" {
			unit, scale = "s", 1.0
		}
		text += fmt.Sprintf("-- %s (%d points) --\n%s\n", dev.Name, len(samples), perModelTable(ev, unit, scale))
		res.Stats["r2_"+dev.Name] = ev.Overall.R2
		res.Stats["mape_"+dev.Name] = ev.Overall.MAPE
		res.Stats["nrmse_"+dev.Name] = ev.Overall.NRMSE
		res.Stats["rmse_"+dev.Name] = ev.Overall.RMSE
		res.Stats["points_"+dev.Name] = float64(len(samples))
	}
	res.Text = text
	return res, nil
}

// Table1 reproduces Table 1 / Figure 3: per-ConvNet inference prediction
// accuracy on the Xeon CPU and the A100 GPU under leave-one-model-out.
func Table1(cfg Config) (*Result, error) {
	samples, err := table1Samples(cfg)
	if err != nil {
		return nil, err
	}
	return table1FromSamples(cfg, samples)
}

// Table2 reproduces Table 2 / Figure 4: block-wise inference prediction
// on the A100, leave-one-block-out.
func Table2(cfg Config) (*Result, error) {
	sc := bench.DefaultBlockScenario(cfg.Seed)
	if cfg.Quick {
		sc.Scales = []float64{1, 2}
		sc.Batches = []int{1, 16, 256}
	}
	sc.Obs = cfg.Obs
	samples, err := bench.CollectBlocks(sc)
	if err != nil {
		return nil, err
	}
	ev, err := lomoEval(cfg, "table2/blocks", func() (*core.Evaluation, error) {
		return core.EvaluateInferenceLOMO(samples)
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "table2",
		Title: "Table 2: block-wise inference accuracy on A100 (leave-one-block-out)",
		Text:  perModelTable(ev, "ms", 1e3),
		Stats: map[string]float64{
			"r2_overall":    ev.Overall.R2,
			"mape_overall":  ev.Overall.MAPE,
			"nrmse_overall": ev.Overall.NRMSE,
			"blocks":        float64(len(ev.PerModel)),
		},
	}
	for name, rep := range ev.PerModel {
		res.Stats["mape_"+name] = rep.MAPE
	}
	return res, nil
}
