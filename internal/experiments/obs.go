package experiments

import (
	"time"

	"convmeter/internal/obs"
)

// runOne executes one runner under telemetry: the run is wrapped in an
// "experiment:<id>" span (which child spans — bench tasks, LOMO
// evaluations, training steps — attach to via Config.Obs), timed into a
// per-experiment gauge, and its headline statistics are exported as
// convmeter_experiment_stat gauges so fit quality and residuals are
// scrapeable alongside the runtime metrics. With telemetry disabled this
// is exactly r.Run.
func runOne(r Runner, cfg Config) (*Result, error) {
	if cfg.Obs == nil {
		return r.Run(cfg)
	}
	sp := cfg.Obs.Start("experiment:" + r.ID)
	inner := cfg
	inner.Obs = cfg.Obs.WithSpan(sp)
	t0 := time.Now()
	res, err := r.Run(inner)
	sp.End()
	if err != nil {
		return nil, err
	}
	o := cfg.Obs
	o.Counter("convmeter_experiments_total", "experiment runners executed").Inc()
	o.Gauge(obs.Label("convmeter_experiment_seconds", "experiment", r.ID),
		"wall-clock of each experiment's most recent run").Set(time.Since(t0).Seconds())
	for _, stat := range sortedKeys(res.Stats) {
		o.Gauge(obs.Label("convmeter_experiment_stat", "experiment", r.ID, "stat", stat),
			"headline statistics (fit quality, residuals, point counts) of each experiment's most recent run").
			Set(res.Stats[stat])
	}
	return res, nil
}

// lomoEval wraps one leave-one-model-out evaluation in a "lomo" span and
// feeds its duration into a shared histogram. The evaluation itself runs
// in analytical packages (core, baselines), which the boundary rule keeps
// telemetry-free — so LOMO cost is measured here, at the call site.
func lomoEval[T any](cfg Config, eval func() (T, error)) (T, error) {
	if cfg.Obs == nil {
		return eval()
	}
	sp := cfg.Obs.Start("lomo")
	t0 := time.Now()
	out, err := eval()
	sp.End()
	cfg.Obs.Histogram("convmeter_experiment_lomo_seconds",
		"wall-clock per leave-one-model-out evaluation", obs.DefaultDurationBuckets()).
		Observe(time.Since(t0).Seconds())
	return out, err
}
