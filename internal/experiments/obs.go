package experiments

import (
	"time"

	"convmeter/internal/core"
	"convmeter/internal/obs"
)

// runOne executes one runner under telemetry and checkpointing. With a
// checkpoint store configured, a previously completed experiment is
// served from the store (the resume path of a killed sweep) and a fresh
// completion is persisted before returning. Under telemetry the run is
// wrapped in an "experiment:<id>" span (which child spans — bench tasks,
// LOMO evaluations, training steps — attach to via Config.Obs), timed
// into a per-experiment gauge, and its headline statistics are exported
// as convmeter_experiment_stat gauges so fit quality and residuals are
// scrapeable alongside the runtime metrics. With both disabled this is
// exactly r.Run.
func runOne(r Runner, cfg Config) (*Result, error) {
	key := "experiment/" + r.ID
	var cached Result
	if cfg.Checkpoint.Get(key, &cached) {
		if cfg.Obs != nil {
			cfg.Obs.Counter("convmeter_experiments_resumed_total",
				"experiments served from a checkpoint instead of re-run").Inc()
		}
		return &cached, nil
	}
	res, err := runLive(r, cfg)
	if err != nil {
		return nil, err
	}
	// Checkpointing is best-effort: a failed write must not fail an
	// otherwise completed experiment, it only costs resume coverage.
	_ = cfg.Checkpoint.Put(key, res)
	return res, nil
}

// runLive is runOne without the checkpoint layer.
func runLive(r Runner, cfg Config) (*Result, error) {
	if cfg.Obs == nil {
		return r.Run(cfg)
	}
	sp := cfg.Obs.Start("experiment:" + r.ID)
	inner := cfg
	inner.Obs = cfg.Obs.WithSpan(sp)
	t0 := time.Now()
	res, err := r.Run(inner)
	sp.End()
	if err != nil {
		return nil, err
	}
	o := cfg.Obs
	o.Counter("convmeter_experiments_total", "experiment runners executed").Inc()
	o.Gauge(obs.Label("convmeter_experiment_seconds", "experiment", r.ID),
		"wall-clock of each experiment's most recent run").Set(time.Since(t0).Seconds())
	for _, stat := range sortedKeys(res.Stats) {
		o.Gauge(obs.Label("convmeter_experiment_stat", "experiment", r.ID, "stat", stat),
			"headline statistics (fit quality, residuals, point counts) of each experiment's most recent run").
			Set(res.Stats[stat])
	}
	return res, nil
}

// lomoEval wraps one leave-one-model-out evaluation in a "lomo" span,
// feeds its duration into a shared histogram, and checkpoints the result
// under key: a sweep killed mid-campaign resumes from the last completed
// evaluation instead of from scratch. The evaluation itself runs in
// analytical packages (core, baselines), which the boundary rule keeps
// telemetry- and checkpoint-free — so both are applied here, at the
// measured-side call site.
func lomoEval[T any](cfg Config, key string, eval func() (T, error)) (T, error) {
	var cached T
	if key != "" && cfg.Checkpoint.Get("lomo/"+key, &cached) {
		if cfg.Obs != nil {
			cfg.Obs.Counter("convmeter_experiment_lomo_resumed_total",
				"LOMO evaluations served from a checkpoint instead of re-run").Inc()
		}
		return cached, nil
	}
	run := func() (T, error) {
		if cfg.Obs == nil {
			return eval()
		}
		sp := cfg.Obs.Start("lomo")
		t0 := time.Now()
		out, err := eval()
		sp.End()
		cfg.Obs.Histogram("convmeter_experiment_lomo_seconds",
			"wall-clock per leave-one-model-out evaluation", obs.DefaultDurationBuckets()).
			Observe(time.Since(t0).Seconds())
		return out, err
	}
	out, err := run()
	if err == nil {
		feedDriftEval(cfg, any(out))
		if key != "" {
			// Best-effort, like the experiment-level checkpoint above.
			_ = cfg.Checkpoint.Put("lomo/"+key, out)
		}
	}
	return out, err
}

// feedDriftEval streams a completed LOMO evaluation's scatter pairs into
// the drift monitor, one stream per held-out model: inference
// evaluations land on the "fwd" phase, training evaluations on "iter".
// Only freshly computed evaluations feed (checkpoint-served ones were
// already fed by the run that produced them); with no monitor configured
// this is a no-op.
func feedDriftEval(cfg Config, out any) {
	if cfg.Drift == nil {
		return
	}
	var pairs []core.PredPair
	phase := "fwd"
	switch ev := out.(type) {
	case *core.TrainEvaluation:
		if ev == nil {
			return
		}
		pairs, phase = ev.Pairs, "iter"
	case *core.Evaluation:
		if ev == nil {
			return
		}
		pairs = ev.Pairs
	default:
		return
	}
	for _, p := range pairs {
		cfg.Drift.Stream(p.Model, phase).Observe(p.Pred, p.Actual)
	}
}
