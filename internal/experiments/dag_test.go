package experiments

import (
	"errors"
	"reflect"
	"testing"

	"convmeter/internal/dagrun"
	"convmeter/internal/faults"
)

// TestDagMatchesFlat: the staged DAG path (fit → lomo → report) must
// produce exactly the flat Run("table1") result — same stats, same
// rendered text — or the refactor changed the paper's numbers.
func TestDagMatchesFlat(t *testing.T) {
	cfg := Config{Seed: 5, Quick: true}
	flat, err := Run("table1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, rep, err := RunDAG([]string{"table1"}, cfg, DagConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("DAG returned %d results, want 1", len(results))
	}
	if !reflect.DeepEqual(results[0], flat) {
		t.Fatalf("staged table1 diverged from flat run:\n dag:  %+v\n flat: %+v", results[0], flat)
	}
	for _, id := range []string{"fit", "lomo", "report"} {
		if st := rep.Node(id); st == nil || st.State != dagrun.StateDone {
			t.Fatalf("node %s: %+v", id, st)
		}
	}
}

// crashThenResume kills a DAG run at the scheduled node/point, then
// resumes it over the same directory and returns the resumed results.
func crashThenResume(t *testing.T, ids []string, cfg Config, dir, node, point string) ([]*Result, *dagrun.Report) {
	t.Helper()
	inj, err := faults.New(faultsSeed(cfg), faults.Profile{NodeCrashes: map[string]string{node: point}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := RunDAG(ids, cfg, DagConfig{Dir: dir, Workers: 2, Faults: inj})
	if !errors.Is(err, dagrun.ErrCrashed) {
		t.Fatalf("crash at %s@%s: err = %v, want ErrCrashed", node, point, err)
	}
	if rep == nil || rep.Crashed != node+"@"+point {
		t.Fatalf("crash at %s@%s: blame %+v", node, point, rep)
	}
	results, rep, err := RunDAG(ids, cfg, DagConfig{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("resume after %s@%s: %v", node, point, err)
	}
	return results, rep
}

// sameStats asserts bit-identical Result.Stats (and the full results)
// between a resumed and an uninterrupted run.
func sameStats(t *testing.T, label string, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Fatalf("%s: %s stats diverged after resume:\n resumed: %#v\n clean:   %#v",
				label, want[i].ID, got[i].Stats, want[i].Stats)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: %s result diverged after resume", label, want[i].ID)
		}
	}
}

// TestDagResumeMatrixTable1 is the acceptance proof on the clean seed:
// kill the fit→lomo→report DAG at every node boundary (and mid-node),
// resume, and require Result.Stats bit-identical to an uninterrupted
// run. Runs under -race via the dag-smoke target.
func TestDagResumeMatrixTable1(t *testing.T) {
	cfg := Config{Seed: 5, Quick: true}
	ids := []string{"table1"}
	clean, _, err := RunDAG(ids, cfg, DagConfig{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"fit", "lomo", "report"} {
		for _, point := range []string{faults.NodeCrashBoundary, faults.NodeCrashMid} {
			t.Run(node+"@"+point, func(t *testing.T) {
				resumed, rep := crashThenResume(t, ids, cfg, t.TempDir(), node, point)
				sameStats(t, node+"@"+point, resumed, clean)
				// Committed upstream nodes must be reused, not re-run.
				wantReused := map[string]int{"fit": 0, "lomo": 1, "report": 2}[node]
				if rep.Resumed != wantReused {
					t.Fatalf("resume reused %d nodes, want %d", rep.Resumed, wantReused)
				}
			})
		}
	}
}

// TestDagResumeMatrixChaos is the second acceptance leg: the same
// kill/resume proof over the chaos faults profile, on the experiment
// whose own workload is fault-injected (exttrainfaults) — the node
// crash schedule and the transport fault schedule must compose without
// perturbing each other's determinism.
func TestDagResumeMatrixChaos(t *testing.T) {
	cfg := Config{Seed: 5, Quick: true, FaultsSeed: 11, FaultsProfile: "chaos"}
	ids := []string{"exttrainfaults"}
	clean, _, err := RunDAG(ids, cfg, DagConfig{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"exp:exttrainfaults", "report"} {
		for _, point := range []string{faults.NodeCrashBoundary, faults.NodeCrashMid} {
			t.Run(node+"@"+point, func(t *testing.T) {
				resumed, _ := crashThenResume(t, ids, cfg, t.TempDir(), node, point)
				sameStats(t, node+"@"+point, resumed, clean)
			})
		}
	}
}

// TestDagFiguresBundle: requesting fig8+fig9 adds the figures node,
// which bundles both experiments' data series under prefixed names.
func TestDagFiguresBundle(t *testing.T) {
	cfg := Config{Seed: 5, Quick: true}
	nodes, err := BuildDAG([]string{"fig8", "fig9"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dagrun.New(dagrun.Config{Workers: 2, Code: CodeFingerprint}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st := rep.Node("figures"); st == nil || st.State != dagrun.StateDone {
		t.Fatalf("figures node: %+v", st)
	}
	raw, ok := r.Output("figures")
	if !ok {
		t.Fatal("no figures output")
	}
	var bundle map[string]string
	if err := dagrun.DecodeOutput(raw, &bundle); err != nil {
		t.Fatal(err)
	}
	if len(bundle) == 0 {
		t.Fatal("figures bundle is empty")
	}
	for name, doc := range bundle {
		if doc == "" {
			t.Fatalf("series %s is empty", name)
		}
	}
}

// TestDagRejectsUnknown: BuildDAG validates ids like Run does.
func TestDagRejectsUnknown(t *testing.T) {
	if _, err := BuildDAG([]string{"ghost"}, Config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := BuildDAG([]string{"fig2", "fig2"}, Config{}); err == nil {
		t.Fatal("duplicate experiment accepted")
	}
	if _, err := BuildDAG(nil, Config{}); err == nil {
		t.Fatal("empty list accepted")
	}
}
