package experiments

import (
	"fmt"
	"math"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/linalg"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/trainsim"
)

// measureRepeated returns the mean and standard deviation of repeated
// noisy training-step throughput measurements — the error bars of the
// paper's Figures 8 and 9.
func measureRepeated(sim *trainsim.Simulator, g *graph.Graph, batch, devices, nodes, reps int) (mean, std float64, err error) {
	vals := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		p, err := sim.TrainStep(g, batch, devices, nodes)
		if err != nil {
			return 0, 0, err
		}
		vals = append(vals, trainsim.Throughput(p, batch, devices))
	}
	return linalg.Mean(vals), linalg.StdDev(vals), nil
}

// Fig8 reproduces Figure 8: predicted vs measured training throughput
// (images/s) across node counts at fixed image size 128 and per-device
// batch 64, with the evaluated ConvNet held out of the fit.
func Fig8(cfg Config) (*Result, error) {
	const (
		image = 128
		batch = 64
	)
	nodeCounts := []int{1, 2, 4, 8, 16}
	reps := 5
	modelSet := bench.ScalingModels()
	if cfg.Quick {
		nodeCounts = []int{1, 4, 16}
		modelSet = []string{"alexnet", "resnet50", "mobilenet_v2"}
		reps = 3
	}
	// Fit dataset: the distributed campaign.
	fitSamples, err := bench.CollectTraining(distributedScenario(cfg))
	if err != nil {
		return nil, err
	}
	sim, err := trainsim.New(trainsim.Config{
		Device: hwsim.A100(), Fabric: netsim.Cluster(),
		NoiseSigma: 0.06, CommNoiseSigma: 0.16, Seed: cfg.Seed + 100,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig8",
		Title:  "Figure 8: throughput (img/s) vs node count, image 128, batch 64 (held-out models)",
		Stats:  map[string]float64{},
		Series: map[string]string{},
	}
	var rows, csvRows [][]string
	var allMeas, allPred []float64
	for _, name := range modelSet {
		g, err := models.Build(name, image)
		if err != nil {
			return nil, err
		}
		met, err := metrics.FromGraph(g)
		if err != nil {
			return nil, err
		}
		train, _ := lomoSplit(fitSamples, name)
		tm, err := core.FitTraining(train)
		if err != nil {
			return nil, err
		}
		for _, n := range nodeCounts {
			devices := n * 4
			meanT, stdT, err := measureRepeated(sim, g, batch, devices, n, reps)
			if err != nil {
				return nil, err
			}
			pred := tm.PredictThroughput(met, batch, devices, n)
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f ± %.0f", meanT, stdT),
				fmt.Sprintf("%.0f", pred),
			})
			csvRows = append(csvRows, []string{
				name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", meanT), fmt.Sprintf("%.1f", stdT), fmt.Sprintf("%.1f", pred),
			})
			allMeas = append(allMeas, meanT)
			allPred = append(allPred, pred)
			res.Stats[fmt.Sprintf("measured_%s_n%d", name, n)] = meanT
			res.Stats[fmt.Sprintf("predicted_%s_n%d", name, n)] = pred
		}
	}
	// Headline: how well predicted series track measured ones.
	mape := 0.0
	for i := range allMeas {
		mape += math.Abs(allPred[i]-allMeas[i]) / allMeas[i]
	}
	mape /= float64(len(allMeas))
	res.Stats["series_mape"] = mape
	res.Series["fig8"] = csvDoc([]string{"model", "nodes", "measured_imgs", "measured_std", "predicted_imgs"}, csvRows)
	res.Text = table([]string{"ConvNet", "Nodes", "Measured img/s", "Predicted img/s"}, rows) +
		fmt.Sprintf("\nSeries MAPE of prediction vs measured mean: %.3f\n", mape)
	return res, nil
}

// Fig9 reproduces Figure 9: throughput vs per-device batch size on a
// single A100 at fixed image size, including batch sizes beyond the
// fitted sweep (and, for large models, beyond device memory — where only
// the prediction exists, one of ConvMeter's selling points).
func Fig9(cfg Config) (*Result, error) {
	const image = 128
	batches := []int{1, 4, 16, 64, 256, 1024, 2048, 4096}
	reps := 5
	modelSet := bench.ScalingModels()
	if cfg.Quick {
		batches = []int{4, 64, 1024, 4096}
		modelSet = []string{"resnet18", "resnet50", "squeezenet1_0"}
		reps = 3
	}
	fitSamples, err := bench.CollectTraining(singleGPUScenario(cfg))
	if err != nil {
		return nil, err
	}
	sim, err := trainsim.New(trainsim.Config{
		Device: hwsim.A100(), Fabric: netsim.Cluster(),
		NoiseSigma: 0.06, CommNoiseSigma: 0.06, Seed: cfg.Seed + 200,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig9",
		Title:  "Figure 9: throughput (img/s) vs batch size on one A100, image 128 (held-out models)",
		Stats:  map[string]float64{},
		Series: map[string]string{},
	}
	var rows, csvRows [][]string
	for _, name := range modelSet {
		g, err := models.Build(name, image)
		if err != nil {
			return nil, err
		}
		met, err := metrics.FromGraph(g)
		if err != nil {
			return nil, err
		}
		train, _ := lomoSplit(fitSamples, name)
		tm, err := core.FitTraining(train)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			pred := tm.PredictThroughput(met, float64(b), 1, 1)
			measuredCell := "OOM (prediction only)"
			if sim.Fits(g, b) {
				meanT, stdT, err := measureRepeated(sim, g, b, 1, 1, reps)
				if err != nil {
					return nil, err
				}
				measuredCell = fmt.Sprintf("%.0f ± %.0f", meanT, stdT)
				res.Stats[fmt.Sprintf("measured_%s_b%d", name, b)] = meanT
			}
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", b), measuredCell, fmt.Sprintf("%.0f", pred),
			})
			meas := ""
			if v, ok := res.Stats[fmt.Sprintf("measured_%s_b%d", name, b)]; ok {
				meas = fmt.Sprintf("%.1f", v)
			}
			csvRows = append(csvRows, []string{name, fmt.Sprintf("%d", b), meas, fmt.Sprintf("%.1f", pred)})
			res.Stats[fmt.Sprintf("predicted_%s_b%d", name, b)] = pred
		}
	}
	res.Series["fig9"] = csvDoc([]string{"model", "batch", "measured_imgs", "predicted_imgs"}, csvRows)
	res.Text = table([]string{"ConvNet", "Batch", "Measured img/s", "Predicted img/s"}, rows)
	return res, nil
}
