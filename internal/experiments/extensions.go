package experiments

// Extension experiments — the paper's future-work directions, built on the
// same pipeline: vision transformers, edge processors, and pipeline model
// parallelism (§3's "can be extended to support other parallelization
// strategies" note and §6's outlook). They are not reproductions of paper
// figures; EXPERIMENTS.md marks them as extensions.

import (
	"fmt"
	"math"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/hwreal"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/pipesim"
	"convmeter/internal/trainsim"
)

// vitModels is the transformer zoo slice.
func vitModels() []string { return []string{"vit_b_16", "vit_b_32", "vit_l_16"} }

// ExtViT applies the unchanged ConvMeter pipeline to vision transformers:
// the zoo's three ViTs join the ConvNets in one A100 inference sweep and
// each ViT is predicted with leave-one-model-out.
func ExtViT(cfg Config) (*Result, error) {
	sc := bench.DefaultInferenceScenario(hwsim.A100(), cfg.Seed)
	// ViT position embeddings require patch-aligned image sizes.
	sc.Images = []int{64, 128, 160, 224}
	sc.Models = append(append([]string{}, sc.Models...), vitModels()...)
	if cfg.Quick {
		sc.Models = append([]string{"resnet18", "resnet50", "mobilenet_v2", "vgg11"}, vitModels()...)
		sc.Batches = []int{1, 8, 64, 512}
	}
	sc.Obs = cfg.Obs
	samples, err := bench.CollectInference(sc)
	if err != nil {
		return nil, err
	}
	ev, err := core.EvaluateInferenceLOMO(samples)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "extvit",
		Title: "Extension: inference prediction for vision transformers (A100, LOMO)",
		Stats: map[string]float64{"r2_overall": ev.Overall.R2, "mape_overall": ev.Overall.MAPE},
	}
	var rows [][]string
	for _, name := range vitModels() {
		rep, ok := ev.PerModel[name]
		if !ok {
			return nil, fmt.Errorf("extvit: %s missing from evaluation", name)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", rep.R2),
			fmt.Sprintf("%.3g ms", rep.RMSE*1e3),
			fmt.Sprintf("%.3f", rep.NRMSE),
			fmt.Sprintf("%.3f", rep.MAPE),
		})
		res.Stats["mape_"+name] = rep.MAPE
		res.Stats["r2_"+name] = rep.R2
	}
	res.Text = "ViTs predicted as unseen models from a mixed ConvNet+ViT sweep:\n" +
		table([]string{"Model", "R²", "RMSE", "NRMSE", "MAPE"}, rows) +
		fmt.Sprintf("\nOverall sweep (%d points): %s\n", len(samples), ev.Overall)
	return res, nil
}

// ExtEdge evaluates ConvMeter on simulated edge processors (a Jetson-like
// embedded GPU and a Pi-like ARM core) — the paper's "edge processors ...
// with limited resources" outlook. Edge memory limits shrink the feasible
// sweep automatically.
func ExtEdge(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "extedge",
		Title: "Extension: inference prediction on edge processors (LOMO)",
		Stats: map[string]float64{},
	}
	text := ""
	for _, dev := range []hwsim.Device{hwsim.JetsonLike(), hwsim.PiLike()} {
		sc := bench.DefaultInferenceScenario(dev, cfg.Seed)
		sc.Batches = []int{1, 2, 4, 8, 16, 32} // edge inference is small-batch
		if cfg.Quick {
			sc.Models = []string{
				"resnet18", "resnet50", "vgg11", "densenet121",
				"mobilenet_v2", "squeezenet1_0", "efficientnet_b0", "regnet_x_400mf",
			}
			sc.Images = []int{64, 128, 224}
			sc.Batches = []int{1, 4, 16, 32}
		}
		samples, err := bench.CollectInference(sc)
		if err != nil {
			return nil, err
		}
		ev, err := core.EvaluateInferenceLOMO(samples)
		if err != nil {
			return nil, err
		}
		text += fmt.Sprintf("-- %s (%d points) --\n  overall: %s\n", dev.Name, len(samples), ev.Overall)
		res.Stats["r2_"+dev.Name] = ev.Overall.R2
		res.Stats["mape_"+dev.Name] = ev.Overall.MAPE
	}
	res.Text = text
	return res, nil
}

// ExtStrong exercises the strong-scaling capability the paper claims in
// §4.3: a *fixed global batch* spread over growing node counts, the
// per-device mini-batch shrinking as b = G/N. Predictions (which never
// ran a benchmark at those fractional batches) are compared against the
// training simulator.
func ExtStrong(cfg Config) (*Result, error) {
	fitSamples, err := bench.CollectTraining(distributedScenario(cfg))
	if err != nil {
		return nil, err
	}
	sim, err := trainsim.New(trainsim.Config{
		Device: hwsim.A100(), Fabric: netsim.Cluster(),
		NoiseSigma: 0.06, CommNoiseSigma: 0.16, Seed: cfg.Seed + 300,
	})
	if err != nil {
		return nil, err
	}
	const (
		globalBatch = 1024
		gpn         = 4
	)
	nodeCounts := []int{1, 2, 4, 8}
	modelSet := []string{"resnet50", "vgg16"}
	if cfg.Quick {
		modelSet = []string{"resnet50"}
	}
	res := &Result{
		ID:    "extstrong",
		Title: "Extension: strong scaling — fixed global batch 1024 over node counts (§4.3 capability)",
		Stats: map[string]float64{},
	}
	var rows [][]string
	for _, name := range modelSet {
		g, err := models.Build(name, 128)
		if err != nil {
			return nil, err
		}
		met, err := metrics.FromGraph(g)
		if err != nil {
			return nil, err
		}
		train, _ := lomoSplit(fitSamples, name)
		tm, err := core.FitTraining(train)
		if err != nil {
			return nil, err
		}
		points, err := tm.PredictStrongScaling(met, globalBatch, gpn, nodeCounts)
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			// Simulated ground truth at the same integer per-device batch.
			b := int(p.BatchPerDevice)
			meas, err := sim.TrainStepExact(g, b, p.Devices, p.Nodes)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%.0f", p.BatchPerDevice),
				fmt.Sprintf("%.2f ms", meas.Iter*1e3),
				fmt.Sprintf("%.2f ms", p.Iter*1e3),
				fmt.Sprintf("%.2fx", p.Speedup),
			})
			res.Stats[fmt.Sprintf("pred_iter_%s_n%d", name, p.Nodes)] = float64(p.Iter)
			res.Stats[fmt.Sprintf("sim_iter_%s_n%d", name, p.Nodes)] = meas.Iter
			res.Stats[fmt.Sprintf("speedup_%s_n%d", name, p.Nodes)] = p.Speedup
		}
	}
	res.Text = table([]string{"Model", "Nodes", "b/device", "Sim step", "Pred step", "Pred speedup"}, rows) +
		"\nSpeedups are sub-linear: shrinking per-device batches lower device\nutilisation while the communication terms grow with N.\n"
	return res, nil
}

// ExtReal runs the complete paper methodology on *real* hardware: actual
// wall-clock measurements of the Go-native execution engine (the "gocpu"
// device — the machine running this process), fitted and evaluated with
// the unchanged pipeline. It demonstrates that the simulators are only
// dataset generators: genuine measurements plug into the same code.
func ExtReal(cfg Config) (*Result, error) {
	sc := hwreal.DefaultScenario(cfg.Seed)
	if cfg.Quick {
		sc.Models = []string{"squeezenet1_1", "mobilenet_v3_small", "resnet18"}
		sc.Images = []int{32}
		sc.Batches = []int{1, 2, 4}
		sc.Reps = 1
	}
	samples, err := hwreal.Collect(sc)
	if err != nil {
		return nil, err
	}
	ev, err := core.EvaluateInferenceLOMO(samples)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "extreal",
		Title: "Extension: real wall-clock measurements on the host CPU (gocpu, LOMO)",
		Stats: map[string]float64{
			"r2_overall":   ev.Overall.R2,
			"mape_overall": ev.Overall.MAPE,
			"points":       float64(len(samples)),
		},
	}
	var rows [][]string
	for _, name := range ev.Models() {
		rep := ev.PerModel[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", rep.R2),
			fmt.Sprintf("%.3g ms", rep.RMSE*1e3),
			fmt.Sprintf("%.3f", rep.MAPE),
		})
		res.Stats["mape_"+name] = rep.MAPE
	}
	res.Text = fmt.Sprintf("Measured %d real forward passes on %s:\n%s\noverall: %s\n",
		len(samples), hwreal.DeviceName,
		table([]string{"Model", "R²", "RMSE", "MAPE"}, rows), ev.Overall)
	return res, nil
}

// ExtPipeline validates the pipeline-model-parallel extension: the
// block-wise fitted model predicts per-stage times that are composed into
// pipeline throughput and compared against the pipeline simulator.
func ExtPipeline(cfg Config) (*Result, error) {
	blockSc := bench.DefaultBlockScenario(cfg.Seed)
	if cfg.Quick {
		blockSc.Scales = []float64{1, 2}
		blockSc.Batches = []int{1, 16, 256}
	}
	blockSamples, err := bench.CollectBlocks(blockSc)
	if err != nil {
		return nil, err
	}
	model, err := core.FitInference(blockSamples)
	if err != nil {
		return nil, err
	}
	pred := &pipesim.Predictor{Model: model, Link: pipesim.NVLink()}
	sim := hwsim.NewSimulator(hwsim.A100(), 0, cfg.Seed)
	res := &Result{
		ID:    "extpipeline",
		Title: "Extension: pipeline model parallelism via block-wise prediction",
		Stats: map[string]float64{},
	}
	modelSet := []string{"resnet50", "vgg16", "densenet121"}
	if cfg.Quick {
		modelSet = []string{"resnet50", "vgg16"}
	}
	const (
		batch      = 64
		microBatch = 8
	)
	var rows [][]string
	var errs []float64
	for _, name := range modelSet {
		g, err := models.Build(name, 224)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 2, 4} {
			stages, err := pipesim.Partition(g, k)
			if err != nil {
				return nil, err
			}
			p, err := pred.Predict(stages, batch, microBatch)
			if err != nil {
				return nil, err
			}
			m, err := pipesim.Simulate(sim, g, stages, pipesim.NVLink(), batch, microBatch)
			if err != nil {
				return nil, err
			}
			rel := math.Abs(p-m) / m
			errs = append(errs, rel)
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", k),
				fmt.Sprintf("%.0f", float64(batch)/m),
				fmt.Sprintf("%.0f", float64(batch)/p),
				fmt.Sprintf("%.2f", rel),
			})
			res.Stats[fmt.Sprintf("simulated_%s_k%d", name, k)] = float64(batch) / m
			res.Stats[fmt.Sprintf("predicted_%s_k%d", name, k)] = float64(batch) / p
		}
		bestK, bestT, err := pred.BestStageCount(g, 6, batch, microBatch)
		if err != nil {
			return nil, err
		}
		res.Stats["bestk_"+name] = float64(bestK)
		rows = append(rows, []string{name, "best", fmt.Sprintf("k=%d", bestK), fmt.Sprintf("%.0f", bestT), ""})
	}
	mape := 0.0
	for _, e := range errs {
		mape += e
	}
	mape /= float64(len(errs))
	res.Stats["series_mape"] = mape
	res.Text = table([]string{"Model", "Stages", "Sim img/s", "Pred img/s", "RelErr"}, rows) +
		fmt.Sprintf("\nMean relative error of pipeline prediction vs simulation: %.3f\n", mape)
	return res, nil
}
