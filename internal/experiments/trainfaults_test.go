package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"convmeter/internal/checkpoint"
	"convmeter/internal/driftwatch"
)

// faultsCfg is the acceptance configuration: quick sweep, the chaos
// profile, and a fault seed verified to deal at least one worker crash,
// one dropped connection and one corrupted chunk.
var faultsCfg = Config{Seed: 1, Quick: true, FaultsSeed: 7}

// TestExtTrainFaultsSurvivesChaos is the chaos acceptance test: the run
// must complete under the chaos profile, shrink the ring (the scheduled
// crash), inject at least one drop and one corruption, and still satisfy
// the data-parallel correctness conditions (falling loss, identical
// survivor checksums — both asserted inside the experiment itself).
func TestExtTrainFaultsSurvivesChaos(t *testing.T) {
	res, err := ExtTrainFaults(faultsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["workers_live"] >= res.Stats["workers_start"] {
		t.Fatalf("live %v of %v workers: ring did not shrink",
			res.Stats["workers_live"], res.Stats["workers_start"])
	}
	for _, class := range []string{"crash", "drop", "corrupt"} {
		if res.Stats["faults_"+class] < 1 {
			t.Fatalf("fault seed %d injected no %s (stats %v)", faultsCfg.FaultsSeed, class, res.Stats)
		}
	}
	if res.Stats["loss_last"] >= res.Stats["loss_first"] {
		t.Fatalf("loss did not fall: %v -> %v", res.Stats["loss_first"], res.Stats["loss_last"])
	}
}

// TestExtTrainFaultsReproducible: the same fault seed must reproduce the
// identical fault schedule and the identical training outcome — the
// framework's core determinism property, end to end through real TCP
// rings, retries and elastic degradation.
func TestExtTrainFaultsReproducible(t *testing.T) {
	a, err := ExtTrainFaults(faultsCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtTrainFaults(faultsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("same fault seed, different outcome:\n%v\n%v", a.Stats, b.Stats)
	}
	c, err := ExtTrainFaults(Config{Seed: 1, Quick: true, FaultsSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Stats, c.Stats) {
		t.Fatal("different fault seeds produced identical fault statistics")
	}
}

// TestExtTrainFaultsProfileSelection: the profile knob reaches the
// injector; "none" must inject nothing and keep every worker alive.
func TestExtTrainFaultsProfileSelection(t *testing.T) {
	cfg := faultsCfg
	cfg.FaultsProfile = "none"
	res, err := ExtTrainFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["workers_live"] != res.Stats["workers_start"] {
		t.Fatalf("fault-free run lost workers: %v", res.Stats)
	}
	for k, v := range res.Stats {
		if len(k) > 7 && k[:7] == "faults_" && v != 0 {
			t.Fatalf("fault-free run injected %s = %v", k, v)
		}
	}
	cfg.FaultsProfile = "not-a-profile"
	if _, err := ExtTrainFaults(cfg); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// chaosDriftStream runs the chaos experiment with a drift monitor
// attached and returns the trainreal/iter stream snapshot.
func chaosDriftStream(t *testing.T, profile string) driftwatch.StreamSnapshot {
	t.Helper()
	mon := driftwatch.New(driftwatch.Config{})
	cfg := faultsCfg
	cfg.FaultsProfile = profile
	cfg.Drift = mon
	if _, err := ExtTrainFaults(cfg); err != nil {
		t.Fatal(err)
	}
	snap := mon.Snapshot()
	if len(snap.Streams) != 1 {
		t.Fatalf("monitor has %d streams, want the trainreal/iter feed: %+v", len(snap.Streams), snap)
	}
	return snap.Streams[0]
}

// TestExtTrainFaultsDriftDetection is the tentpole acceptance criterion:
// under the slowdown profile the live step times break away from the
// fitted model's predictions and the drift stream latches drifting,
// while an otherwise identical fault-free run raises no drift event.
func TestExtTrainFaultsDriftDetection(t *testing.T) {
	slow := chaosDriftStream(t, "slowdown")
	if slow.Model != "trainreal" || slow.Phase != "iter" {
		t.Fatalf("drift feed landed on %s/%s, want trainreal/iter", slow.Model, slow.Phase)
	}
	if slow.Events < 1 || slow.State != driftwatch.StateDrifting {
		t.Errorf("slowdown run did not drift: %+v", slow)
	}
	clean := chaosDriftStream(t, "none")
	if clean.Events != 0 {
		t.Errorf("fault-free run raised %d drift events: %+v", clean.Events, clean)
	}
	if clean.Pairs == 0 {
		t.Errorf("fault-free run fed no pairs: %+v", clean)
	}
}

// TestRunServesExperimentFromCheckpoint: a completed experiment recorded
// in the checkpoint store must be served from it on re-run — the resume
// path of a killed sweep.
func TestRunServesExperimentFromCheckpoint(t *testing.T) {
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "ckpt.json"), "test")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := &Result{ID: "exttrainreal", Title: "served from checkpoint"}
	if err := store.Put("experiment/exttrainreal", sentinel); err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg
	cfg.Checkpoint = store
	res, err := Run("exttrainreal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Title != sentinel.Title {
		t.Fatalf("checkpointed experiment re-ran: title %q", res.Title)
	}
}

// TestLomoEvalCheckpoints: a completed LOMO evaluation is persisted under
// its key and not recomputed on the next call.
func TestLomoEvalCheckpoints(t *testing.T) {
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "ckpt.json"), "test")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Checkpoint: store}
	type evalOut struct{ Score float64 }
	calls := 0
	eval := func() (*evalOut, error) {
		calls++
		return &evalOut{Score: 0.93}, nil
	}
	first, err := lomoEval(cfg, "unit/a", eval)
	if err != nil {
		t.Fatal(err)
	}
	second, err := lomoEval(cfg, "unit/a", eval)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("eval ran %d times, want 1", calls)
	}
	if first.Score != second.Score {
		t.Fatalf("checkpointed result diverged: %v vs %v", first, second)
	}
	// A different key is a different unit and must run.
	if _, err := lomoEval(cfg, "unit/b", eval); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("distinct key served from cache (calls=%d)", calls)
	}
}
