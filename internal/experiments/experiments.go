// Package experiments reproduces every table and figure of the paper's
// evaluation section end-to-end: it generates the benchmark datasets via
// the simulators, fits ConvMeter and the baselines, runs the paper's
// leave-one-model-out protocol, and renders the resulting tables/series.
// DESIGN.md carries the experiment index; EXPERIMENTS.md records
// paper-vs-measured numbers produced by cmd/experiments.
package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"convmeter/internal/checkpoint"
	"convmeter/internal/driftwatch"
	"convmeter/internal/obs"
	"convmeter/internal/obs/critpath"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every simulator and fitting RNG; a fixed seed makes the
	// full experiment suite reproducible.
	Seed int64
	// Quick shrinks the sweeps for use in unit tests and testing.B
	// benchmarks; headline numbers shift slightly but every shape
	// conclusion must still hold.
	Quick bool
	// Obs, when non-nil, receives runtime telemetry: per-experiment spans
	// and duration gauges, headline-stat gauges, and everything the
	// instrumented layers underneath (bench, exec, allreduce, train)
	// record. Nil disables telemetry at zero cost.
	Obs *obs.Obs
	// Checkpoint, when non-nil, records completed experiments and LOMO
	// evaluations so a killed sweep resumes from the last completed unit.
	// Nil disables checkpointing.
	Checkpoint *checkpoint.Store
	// FaultsSeed drives the chaos experiment's fault schedule; 0 falls
	// back to Seed. The same FaultsSeed reproduces the identical schedule.
	FaultsSeed int64
	// FaultsProfile names the fault profile for the chaos experiment
	// (none, light, heavy, chaos, slowdown); empty means the experiment's
	// default.
	FaultsProfile string
	// Drift, when non-nil, receives streaming (predicted, measured)
	// pairs: the chaos experiment feeds live step times against the
	// fitted training model, and completed LOMO evaluations feed their
	// per-model pairs. Nil disables drift monitoring at zero cost.
	Drift *driftwatch.Monitor
	// Crit, when non-nil, receives per-step critical-path attributions
	// from the chaos experiment's trainer (which then also aligns worker
	// clocks and injects a small simulated skew so the alignment path is
	// exercised). Nil disables attribution at zero cost.
	Crit *critpath.Tracker
}

// Result is the outcome of one experiment: a rendered table plus the
// headline statistics used by tests and EXPERIMENTS.md. Figure
// experiments additionally attach their raw data series as CSV documents
// (keyed by series name) so the paper-style plots can be regenerated with
// any plotting tool.
type Result struct {
	ID     string
	Title  string
	Text   string
	Stats  map[string]float64
	Series map[string]string
}

// csvDoc renders rows as a CSV document with the given header. The
// writers below target an in-memory strings.Builder, whose Write never
// fails, so csv/tabwriter errors are impossible; the discards are
// explicit so convlint's droppederr holds everywhere real I/O happens.
func csvDoc(header []string, rows [][]string) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return sb.String()
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	_, _ = fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		_, _ = fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
	return sb.String()
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Runner is a named experiment entry point.
type Runner struct {
	ID   string
	Desc string
	Run  func(Config) (*Result, error)
}

// Runners lists every experiment in the paper's order.
func Runners() []Runner {
	return []Runner{
		{"fig2", "Inference prediction by metric combination (Figure 2)", Fig2},
		{"table1", "Per-ConvNet inference accuracy, CPU and GPU (Table 1 / Figure 3)", Table1},
		{"table2", "Block-wise inference accuracy on A100 (Table 2 / Figure 4)", Table2},
		{"table3single", "Single-GPU training-step phases (Table 3 left / Figure 5)", Table3Single},
		{"fig6", "ConvMeter vs DIPPM comparison (Figure 6)", Fig6},
		{"table3multi", "Distributed training-step phases (Table 3 right / Figure 7)", Table3Multi},
		{"fig8", "Throughput vs node count (Figure 8)", Fig8},
		{"fig9", "Throughput vs batch size (Figure 9)", Fig9},
		{"ablation", "Modeling-effort and design ablations (§3.4 / Table 4 context)", Ablation},
		{"extvit", "Extension: vision transformers (paper §6 outlook)", ExtViT},
		{"extedge", "Extension: edge processors (paper §6 outlook)", ExtEdge},
		{"extpipeline", "Extension: pipeline model parallelism (paper §3 note)", ExtPipeline},
		{"extreal", "Extension: real wall-clock measurements on the host CPU", ExtReal},
		{"exttrainreal", "Extension: real data-parallel training run (telemetry fixture)", ExtTrainReal},
		{"exttrainfaults", "Extension: chaos run — resilient training under injected faults", ExtTrainFaults},
		{"extstrong", "Extension: strong scaling at a fixed global batch (§4.3 capability)", ExtStrong},
	}
}

// IDs lists every experiment id in the paper's order.
func IDs() []string {
	rs := Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return runOne(r, cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// All runs every experiment in order, failing fast on the first error.
func All(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, r := range Runners() {
		res, err := runOne(r, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}
