package experiments

import (
	"path/filepath"
	"testing"

	"convmeter/internal/checkpoint"
	"convmeter/internal/core"
	"convmeter/internal/driftwatch"
)

// TestLomoEvalFeedsDrift: a freshly computed LOMO evaluation streams its
// scatter pairs into the drift monitor — inference evaluations on the
// "fwd" phase, training evaluations on "iter" — while a checkpoint-served
// repeat feeds nothing (its pairs were already streamed by the run that
// computed it).
func TestLomoEvalFeedsDrift(t *testing.T) {
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "ckpt.json"), "test")
	if err != nil {
		t.Fatal(err)
	}
	mon := driftwatch.New(driftwatch.Config{})
	cfg := Config{Checkpoint: store, Drift: mon}

	infer := &core.Evaluation{Pairs: []core.PredPair{
		{Model: "alexnet", Actual: 0.010, Pred: 0.011},
		{Model: "alexnet", Actual: 0.020, Pred: 0.019},
		{Model: "vgg16", Actual: 0.100, Pred: 0.104},
	}}
	if _, err := lomoEval(cfg, "drift/infer", func() (*core.Evaluation, error) { return infer, nil }); err != nil {
		t.Fatal(err)
	}
	train := &core.TrainEvaluation{Evaluation: core.Evaluation{Pairs: []core.PredPair{
		{Model: "resnet50", Actual: 0.300, Pred: 0.310},
	}}}
	if _, err := lomoEval(cfg, "drift/train", func() (*core.TrainEvaluation, error) { return train, nil }); err != nil {
		t.Fatal(err)
	}

	snap := mon.Snapshot()
	want := map[string]struct {
		phase string
		pairs int
	}{
		"alexnet":  {"fwd", 2},
		"vgg16":    {"fwd", 1},
		"resnet50": {"iter", 1},
	}
	if len(snap.Streams) != len(want) {
		t.Fatalf("monitor has %d streams, want %d: %+v", len(snap.Streams), len(want), snap)
	}
	for _, st := range snap.Streams {
		w, ok := want[st.Model]
		if !ok || st.Phase != w.phase || st.Pairs != w.pairs {
			t.Errorf("stream %s/%s with %d pairs, want %+v", st.Model, st.Phase, st.Pairs, want)
		}
	}

	// Checkpoint-served repeat: no new pairs.
	if _, err := lomoEval(cfg, "drift/infer", func() (*core.Evaluation, error) {
		t.Fatal("checkpointed eval re-ran")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := mon.Stream("alexnet", "fwd").Snapshot().Pairs; got != 2 {
		t.Errorf("checkpoint-served eval fed the monitor: %d pairs, want 2", got)
	}

	// Disabled monitoring and unrelated result types are no-ops.
	feedDriftEval(Config{}, infer)
	feedDriftEval(cfg, 42)
	feedDriftEval(cfg, (*core.Evaluation)(nil))
}
