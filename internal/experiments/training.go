package experiments

import (
	"fmt"

	"convmeter/internal/bench"
	"convmeter/internal/core"
)

// singleGPUScenario shrinks the paper's single-A100 sweep under Quick.
func singleGPUScenario(cfg Config) bench.TrainingScenario {
	sc := bench.DefaultSingleGPUScenario(cfg.Seed)
	if cfg.Quick {
		sc.Models = []string{
			"alexnet", "resnet18", "resnet50", "mobilenet_v2", "vgg11",
			"efficientnet_b0", "squeezenet1_0", "densenet121",
		}
		sc.Images = []int{64, 128, 224}
		sc.Batches = []int{4, 16, 64, 256}
	}
	sc.Obs = cfg.Obs
	return sc
}

// distributedScenario shrinks the paper's multi-node sweep under Quick.
func distributedScenario(cfg Config) bench.TrainingScenario {
	sc := bench.DefaultDistributedScenario(cfg.Seed)
	if cfg.Quick {
		sc.Models = []string{
			"alexnet", "resnet18", "resnet50", "mobilenet_v2", "vgg11",
			"efficientnet_b0", "squeezenet1_0", "densenet121",
		}
		sc.Images = []int{64, 128}
		sc.Batches = []int{16, 64, 256}
		sc.Topologies = [][2]int{{8, 2}, {16, 4}, {64, 16}}
	}
	sc.Obs = cfg.Obs
	return sc
}

// renderTraining renders per-model iteration accuracy plus the per-phase
// overall reports (the paper's Figure 5/7 panels).
func renderTraining(ev *core.TrainEvaluation) string {
	text := perModelTable(&ev.Evaluation, "ms", 1e3)
	phases := [][]string{
		{"forward", fmt.Sprintf("%.3f", ev.FwdOverall.R2), fmt.Sprintf("%.3f", ev.FwdOverall.NRMSE), fmt.Sprintf("%.3f", ev.FwdOverall.MAPE)},
		{"backward", fmt.Sprintf("%.3f", ev.BwdOverall.R2), fmt.Sprintf("%.3f", ev.BwdOverall.NRMSE), fmt.Sprintf("%.3f", ev.BwdOverall.MAPE)},
		{"gradient", fmt.Sprintf("%.3f", ev.GradOverall.R2), fmt.Sprintf("%.3f", ev.GradOverall.NRMSE), fmt.Sprintf("%.3f", ev.GradOverall.MAPE)},
		{"step", fmt.Sprintf("%.3f", ev.Overall.R2), fmt.Sprintf("%.3f", ev.Overall.NRMSE), fmt.Sprintf("%.3f", ev.Overall.MAPE)},
	}
	text += "\nPer-phase overall accuracy:\n"
	text += table([]string{"Phase", "R²", "NRMSE", "MAPE"}, phases)
	return text
}

// trainStats extracts the headline numbers of a training evaluation.
func trainStats(ev *core.TrainEvaluation) map[string]float64 {
	s := map[string]float64{
		"r2_overall":    ev.Overall.R2,
		"mape_overall":  ev.Overall.MAPE,
		"nrmse_overall": ev.Overall.NRMSE,
		"rmse_overall":  ev.Overall.RMSE,
		"mape_fwd":      ev.FwdOverall.MAPE,
		"mape_bwd":      ev.BwdOverall.MAPE,
		"mape_grad":     ev.GradOverall.MAPE,
	}
	for name, rep := range ev.PerModel {
		s["mape_"+name] = rep.MAPE
	}
	return s
}

// Table3Single reproduces the single-GPU half of Table 3 and Figure 5:
// training-step phase prediction on one A100 under leave-one-model-out.
func Table3Single(cfg Config) (*Result, error) {
	samples, err := bench.CollectTraining(singleGPUScenario(cfg))
	if err != nil {
		return nil, err
	}
	ev, err := lomoEval(cfg, "table3/single", func() (*core.TrainEvaluation, error) {
		return core.EvaluateTrainingLOMO(samples)
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "table3single",
		Title: "Table 3 (single GPU) / Figure 5: training-step prediction on one A100 (LOMO)",
		Text:  fmt.Sprintf("(%d points)\n%s", len(samples), renderTraining(ev)),
		Stats: trainStats(ev),
	}, nil
}

// Table3Multi reproduces the distributed half of Table 3 and Figure 7:
// training-step phase prediction on multiple A100 nodes.
func Table3Multi(cfg Config) (*Result, error) {
	samples, err := bench.CollectTraining(distributedScenario(cfg))
	if err != nil {
		return nil, err
	}
	ev, err := lomoEval(cfg, "table3/multi", func() (*core.TrainEvaluation, error) {
		return core.EvaluateTrainingLOMO(samples)
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "table3multi",
		Title: "Table 3 (distributed) / Figure 7: training-step prediction on multiple A100 nodes (LOMO)",
		Text:  fmt.Sprintf("(%d points)\n%s", len(samples), renderTraining(ev)),
		Stats: trainStats(ev),
	}, nil
}
