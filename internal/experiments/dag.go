package experiments

import (
	"fmt"

	"convmeter/internal/core"
	"convmeter/internal/dagrun"
	"convmeter/internal/faults"
)

// CodeFingerprint tags the semantics of the experiment DAG's nodes and
// is folded into every node fingerprint. Bump the version whenever a
// node's meaning changes — sweep shapes, fitting procedure, rendering —
// so manifests committed under the old semantics fail closed instead of
// resurfacing as current results.
const CodeFingerprint = "convmeter/experiments@v1"

// DagConfig parameterises a durable experiment run on top of the
// experiment Config.
type DagConfig struct {
	// Dir is the run's manifest directory; empty disables durability
	// (the DAG still executes, with parallelism, in memory).
	Dir string
	// Workers bounds the executor's worker pool; <= 0 means 2.
	Workers int
	// Faults carries the orchestrator-level crash schedule
	// (Profile.NodeCrashes). It is deliberately separate from the
	// experiments' own transport-fault injector: a kill -9 is an
	// environment event, not part of an experiment's identity, so it
	// must not move node fingerprints.
	Faults *faults.Injector
}

// SuiteReport is the terminal report node's output: every experiment
// result in the paper's order plus a rendered run summary.
type SuiteReport struct {
	Results []*Result `json:"results"`
	Text    string    `json:"text"`
}

// nodeID maps an experiment id to the DAG node that produces its
// Result. table1 is staged — its evaluation node is "lomo", fed by
// "fit" — while every other experiment runs whole as "exp:<id>".
func nodeID(id string) string {
	if id == "table1" {
		return "lomo"
	}
	return "exp:" + id
}

// nodeConfig renders the configuration fingerprint component shared by
// every node: the settings that shape outputs. Faults seed/profile are
// bound by the executor itself (dagrun.Config), not here.
func nodeConfig(stage string, cfg Config) string {
	return fmt.Sprintf("stage=%s seed=%d quick=%t", stage, cfg.Seed, cfg.Quick)
}

// BuildDAG assembles the experiment pipeline for the given ids:
//
//	fit ──▶ lomo ─┐
//	exp:fig8 ─┬─▶ figures ─┬─▶ report
//	exp:fig9 ─┘            │
//	exp:<id> ──────────────┘
//
// table1 expands into the staged fit→lomo pair; fig8+fig9 (when both
// are requested) feed a figures node that bundles their data series;
// and a terminal report node — depending on everything — assembles the
// ordered result list. Independent experiments are roots and run in
// parallel on the executor's pool.
func BuildDAG(ids []string, cfg Config) ([]dagrun.Node, error) {
	known := make(map[string]Runner, len(Runners()))
	for _, r := range Runners() {
		known[r.ID] = r
	}
	requested := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := known[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		if requested[id] {
			return nil, fmt.Errorf("experiments: experiment %q requested twice", id)
		}
		requested[id] = true
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("experiments: empty experiment list")
	}

	var nodes []dagrun.Node
	var reportDeps []string
	for _, r := range Runners() { // paper order, deterministic
		if !requested[r.ID] {
			continue
		}
		if r.ID == "table1" {
			nodes = append(nodes,
				dagrun.Node{
					ID:     "fit",
					Config: nodeConfig("fit", cfg),
					Run: func(in dagrun.Inputs) (any, error) {
						return table1Samples(cfg)
					},
				},
				dagrun.Node{
					ID:     "lomo",
					Deps:   []string{"fit"},
					Config: nodeConfig("lomo", cfg),
					Run: func(in dagrun.Inputs) (any, error) {
						var samples map[string][]core.Sample
						if err := in.Decode("fit", &samples); err != nil {
							return nil, err
						}
						return runOne(Runner{ID: "table1", Desc: known["table1"].Desc, Run: func(c Config) (*Result, error) {
							return table1FromSamples(c, samples)
						}}, cfg)
					},
				})
		} else {
			r := r
			nodes = append(nodes, dagrun.Node{
				ID:     nodeID(r.ID),
				Config: nodeConfig(r.ID, cfg),
				Run: func(in dagrun.Inputs) (any, error) {
					return runOne(r, cfg)
				},
			})
		}
		reportDeps = append(reportDeps, nodeID(r.ID))
	}

	if requested["fig8"] && requested["fig9"] {
		nodes = append(nodes, dagrun.Node{
			ID:     "figures",
			Deps:   []string{nodeID("fig8"), nodeID("fig9")},
			Config: nodeConfig("figures", cfg),
			Run: func(in dagrun.Inputs) (any, error) {
				bundle := map[string]string{}
				for _, dep := range []string{"fig8", "fig9"} {
					var res Result
					if err := in.Decode(nodeID(dep), &res); err != nil {
						return nil, err
					}
					for _, name := range sortedKeys(res.Series) {
						bundle[dep+"/"+name] = res.Series[name]
					}
				}
				return bundle, nil
			},
		})
		reportDeps = append(reportDeps, "figures")
	}

	resultDeps := append([]string(nil), reportDeps...)
	nodes = append(nodes, dagrun.Node{
		ID:     "report",
		Deps:   resultDeps,
		Config: nodeConfig("report", cfg),
		Run: func(in dagrun.Inputs) (any, error) {
			suite := &SuiteReport{}
			var rows [][]string
			for _, r := range Runners() {
				if !requested[r.ID] {
					continue
				}
				var res Result
				if err := in.Decode(nodeID(r.ID), &res); err != nil {
					return nil, err
				}
				suite.Results = append(suite.Results, &res)
				rows = append(rows, []string{res.ID, fmt.Sprintf("%d", len(res.Stats)), fmt.Sprintf("%d", len(res.Series))})
			}
			suite.Text = table([]string{"Experiment", "Stats", "Series"}, rows)
			return suite, nil
		},
	})
	return nodes, nil
}

// NewDAGRunner builds the executor for the given experiments. The
// returned runner is ready to Execute and can be registered on the ops
// server's /dag endpoint beforehand, so the audit trail is queryable
// while the run is live.
func NewDAGRunner(ids []string, cfg Config, dcfg DagConfig) (*dagrun.Runner, error) {
	nodes, err := BuildDAG(ids, cfg)
	if err != nil {
		return nil, err
	}
	return dagrun.New(dagrun.Config{
		Dir:           dcfg.Dir,
		Code:          CodeFingerprint,
		FaultsSeed:    faultsSeed(cfg),
		FaultsProfile: profileName(cfg),
		Workers:       dcfg.Workers,
		Obs:           cfg.Obs,
		Faults:        dcfg.Faults,
	}, nodes)
}

// CollectDAGResults decodes the terminal report node's output after a
// completed Execute.
func CollectDAGResults(r *dagrun.Runner) ([]*Result, error) {
	raw, ok := r.Output("report")
	if !ok {
		return nil, fmt.Errorf("experiments: DAG run has no report output")
	}
	var suite SuiteReport
	if err := dagrun.DecodeOutput(raw, &suite); err != nil {
		return nil, err
	}
	return suite.Results, nil
}

// RunDAG is the one-call path: build the DAG, execute it, collect the
// ordered results. The dagrun.Report is returned even on failure so
// callers can surface blame.
func RunDAG(ids []string, cfg Config, dcfg DagConfig) ([]*Result, *dagrun.Report, error) {
	r, err := NewDAGRunner(ids, cfg, dcfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := r.Execute()
	if err != nil {
		return nil, rep, err
	}
	results, err := CollectDAGResults(r)
	if err != nil {
		return nil, rep, err
	}
	return results, rep, nil
}
