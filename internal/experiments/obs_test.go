package experiments

import (
	"strings"
	"testing"

	"convmeter/internal/obs"
)

// TestTable1TelemetryCounters runs table1 with a live bundle and checks
// the sweep counter against the experiment's own point stats: every
// benchmark point the experiment reports must have been counted by the
// instrumented collector.
func TestTable1TelemetryCounters(t *testing.T) {
	o := obs.New()
	res, err := Run("table1", Config{Seed: 5, Quick: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := res.Stats["points_xeon"] + res.Stats["points_a100"]
	if wantPoints == 0 {
		t.Fatal("table1 reported zero points")
	}
	got := o.Counter(obs.Label("convmeter_bench_points_total", "scenario", "inference"), "").Value()
	if got != wantPoints {
		t.Fatalf("convmeter_bench_points_total = %g, want %g (stats points)", got, wantPoints)
	}
	if n := o.Counter("convmeter_experiments_total", "").Value(); n != 1 {
		t.Fatalf("convmeter_experiments_total = %g, want 1", n)
	}
	if h := o.Histogram("convmeter_experiment_lomo_seconds", "", obs.DefaultDurationBuckets()); h.Count() == 0 {
		t.Fatal("no LOMO evaluations observed")
	}

	// The run must also have produced a root experiment span.
	spans := o.Trc.Spans()
	found := false
	for _, s := range spans {
		if s.Name == "experiment:table1" && s.Parent == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no root experiment:table1 span among %d spans", len(spans))
	}
}

// TestExtTrainRealSpanAncestry runs the real data-parallel training
// fixture and asserts the acceptance span tree: every fwd, bwd, and grad
// span must reach the experiment:exttrainreal root by walking Parent IDs.
func TestExtTrainRealSpanAncestry(t *testing.T) {
	o := obs.New()
	res, err := Run("exttrainreal", Config{Seed: 5, Quick: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["loss_last"] >= res.Stats["loss_first"] {
		t.Fatalf("training did not learn: %g -> %g",
			res.Stats["loss_first"], res.Stats["loss_last"])
	}
	spans := o.Trc.Spans()
	byID := map[int64]obs.SpanRecord{}
	var rootID int64
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "experiment:exttrainreal" {
			rootID = s.ID
		}
	}
	if rootID == 0 {
		t.Fatal("no experiment:exttrainreal span recorded")
	}
	counts := map[string]int{}
	for _, s := range spans {
		kind := s.Name
		if strings.HasPrefix(kind, "step ") {
			kind = "step"
		}
		if kind != "fwd" && kind != "bwd" && kind != "grad" && kind != "step" {
			continue
		}
		counts[kind]++
		// Walk the parent chain to the root; a broken chain or one that
		// tops out somewhere other than the experiment span is a bug in
		// parent propagation through train → exec/allreduce.
		id := s.ID
		for hops := 0; ; hops++ {
			if hops > 100 {
				t.Fatalf("span %q: parent chain does not terminate", s.Name)
			}
			rec := byID[id]
			if rec.Parent == 0 {
				if rec.ID != rootID {
					t.Fatalf("span %q roots at %q, want experiment:exttrainreal",
						s.Name, rec.Name)
				}
				break
			}
			id = rec.Parent
		}
	}
	steps := int(res.Stats["steps"])
	if counts["step"] != steps {
		t.Fatalf("%d step spans, want %d", counts["step"], steps)
	}
	if counts["grad"] != steps {
		t.Fatalf("%d grad spans, want %d (one per step)", counts["grad"], steps)
	}
	workers := int(res.Stats["workers"])
	// One fwd per worker per step from Gradients, plus bwd to match.
	if counts["fwd"] != steps*workers || counts["bwd"] != steps*workers {
		t.Fatalf("fwd=%d bwd=%d, want %d each (steps×workers)",
			counts["fwd"], counts["bwd"], steps*workers)
	}
	if n := o.Counter("convmeter_train_steps_total", "").Value(); int(n) != steps {
		t.Fatalf("convmeter_train_steps_total = %g, want %d", n, steps)
	}
}

// TestNilObsStaysDark pins the disabled path at the experiment level: a
// nil bundle must not be lazily created anywhere down the stack.
func TestNilObsStaysDark(t *testing.T) {
	res, err := Run("exttrainreal", Config{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Stats["steps"] == 0 {
		t.Fatal("run without telemetry produced no result")
	}
}
