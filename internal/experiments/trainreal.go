package experiments

import (
	"fmt"

	"convmeter/internal/graph"
	"convmeter/internal/train"
)

// trainRealNet builds a small trainable CNN (3 classes) — large enough to
// exercise every instrumented layer (conv/pool/linear kernels, the ring
// all-reduce), small enough to train in well under a second.
func trainRealNet() (*graph.Graph, error) {
	b, x := graph.NewBuilder("trainreal", graph.Shape{C: 2, H: 8, W: 8})
	x = b.Conv(x, "conv1", 4, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.MaxPool2d(x, "pool", 2, 2, 0)
	x = b.Conv(x, "conv2", 8, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flat")
	x = b.Linear(x, "fc", 3)
	return b.Build()
}

// ExtTrainReal runs the *real* data-parallel trainer (internal/train →
// internal/exec kernels, internal/allreduce gradient sync) on a synthetic
// prototype task and verifies the two invariants the paper's performance
// model presumes: the loss falls and the replicas stay bit-synchronised.
// Unlike the simulator-driven experiments, every recorded duration here
// is genuine wall clock, which makes this the telemetry layer's
// end-to-end fixture: with Config.Obs set, the run produces a span tree
// experiment:exttrainreal → step N → fwd/bwd/grad plus kernel, step, and
// ring-transport metrics.
func ExtTrainReal(cfg Config) (*Result, error) {
	g, err := trainRealNet()
	if err != nil {
		return nil, err
	}
	workers, steps, batch := 4, 12, 8
	if cfg.Quick {
		workers, steps, batch = 2, 6, 4
	}
	task, err := train.NewPrototypeTask(g, 3, 0.3, cfg.Seed+41)
	if err != nil {
		return nil, err
	}
	res, err := train.DataParallel(g, train.Config{
		Workers: workers, LR: 0.1, Seed: cfg.Seed + 42, Obs: cfg.Obs,
	}, steps, task.Source(batch))
	if err != nil {
		return nil, err
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first {
		return nil, fmt.Errorf("exttrainreal: loss did not fall (%g -> %g)", first, last)
	}
	minSum, maxSum := res.Checksums[0], res.Checksums[0]
	for _, c := range res.Checksums[1:] {
		if c < minSum {
			minSum = c
		}
		if c > maxSum {
			maxSum = c
		}
	}
	spread := maxSum - minSum
	if spread != 0 {
		return nil, fmt.Errorf("exttrainreal: replicas desynchronised (checksum spread %g)", spread)
	}
	out := &Result{
		ID:    "exttrainreal",
		Title: "Extension: real data-parallel training run (exec kernels + ring all-reduce)",
		Stats: map[string]float64{
			"workers":         float64(workers),
			"steps":           float64(steps),
			"batch_per_w":     float64(batch),
			"loss_first":      first,
			"loss_last":       last,
			"checksum_spread": spread,
		},
	}
	out.Text = fmt.Sprintf(
		"Trained %d steps on %d workers (batch %d each): loss %.4f -> %.4f,\n"+
			"all %d replica checksums identical.\n",
		steps, workers, batch, first, last, len(res.Checksums))
	return out, nil
}
