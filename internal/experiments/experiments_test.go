package experiments

import (
	"encoding/csv"
	"fmt"
	"math"
	"strings"
	"testing"
)

// quickCfg is the reduced configuration used throughout the tests.
var quickCfg = Config{Seed: 1, Quick: true}

func TestFig2CombinedWins(t *testing.T) {
	res, err := Fig2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	combined := res.Stats["mape_FLOPs+Inputs+Outputs"]
	if combined <= 0 {
		t.Fatalf("combined MAPE = %g", combined)
	}
	for _, single := range []string{"mape_FLOPs", "mape_Inputs", "mape_Outputs"} {
		if res.Stats[single] <= combined {
			t.Errorf("%s = %.3f should exceed combined %.3f (paper Fig. 2 shape)",
				single, res.Stats[single], combined)
		}
	}
	if !strings.Contains(res.Text, "FLOPs+Inputs+Outputs") {
		t.Error("rendered table missing combined row")
	}
}

func TestTable1AccuracyBands(t *testing.T) {
	res, err := Table1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: R² 0.98 CPU / 0.96 GPU, MAPE 0.25 / 0.17. Allow generous
	// bands — shape, not absolute replication.
	for _, dev := range []string{"xeon", "a100"} {
		if r2 := res.Stats["r2_"+dev]; r2 < 0.85 {
			t.Errorf("%s R² = %.3f, want > 0.85", dev, r2)
		}
		if mape := res.Stats["mape_"+dev]; mape > 0.35 {
			t.Errorf("%s MAPE = %.3f, want < 0.35", dev, mape)
		}
		if res.Stats["points_"+dev] > 5000 {
			t.Errorf("%s dataset exceeds the paper's 5,000-point cap", dev)
		}
	}
	if !strings.Contains(res.Text, "OVERALL") {
		t.Error("rendered table missing OVERALL row")
	}
}

func TestTable2BlockAccuracy(t *testing.T) {
	res, err := Table2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: aggregate R² = 0.997 for block-wise prediction; blocks are
	// structurally simple so accuracy is high.
	if r2 := res.Stats["r2_overall"]; r2 < 0.9 {
		t.Errorf("block-wise R² = %.3f, want > 0.9", r2)
	}
	if res.Stats["blocks"] != 9 {
		t.Errorf("expected 9 blocks, got %.0f", res.Stats["blocks"])
	}
	if mape := res.Stats["mape_overall"]; mape > 0.4 {
		t.Errorf("block-wise MAPE = %.3f", mape)
	}
}

func TestTable3SingleGPUBands(t *testing.T) {
	res, err := Table3Single(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: R² 0.88, MAPE 0.18, per-model MAPE < 0.28.
	if r2 := res.Stats["r2_overall"]; r2 < 0.8 {
		t.Errorf("single-GPU training R² = %.3f", r2)
	}
	if mape := res.Stats["mape_overall"]; mape > 0.3 {
		t.Errorf("single-GPU training MAPE = %.3f", mape)
	}
}

func TestTable3MultiNoisierThanSingle(t *testing.T) {
	single, err := Table3Single(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Table3Multi(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: distributed prediction is less accurate than
	// single-GPU (R² 0.78 vs 0.88) because of communication variance.
	if multi.Stats["r2_overall"] >= single.Stats["r2_overall"] {
		t.Errorf("multi-node R² %.3f should be below single-GPU %.3f",
			multi.Stats["r2_overall"], single.Stats["r2_overall"])
	}
	if multi.Stats["r2_overall"] < 0.6 {
		t.Errorf("multi-node R² %.3f collapsed", multi.Stats["r2_overall"])
	}
	if multi.Stats["mape_overall"] > 0.35 {
		t.Errorf("multi-node MAPE %.3f", multi.Stats["mape_overall"])
	}
}

func TestFig6ConvMeterBeatsDIPPM(t *testing.T) {
	res, err := Fig6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["comparable"] < 4 {
		t.Fatalf("too few comparable models: %.0f", res.Stats["comparable"])
	}
	// Paper: ConvMeter outperforms DIPPM across all scenarios. Require a
	// clear majority in the quick configuration and the squeezenet skip.
	if res.Stats["wins"] < res.Stats["comparable"]-1 {
		t.Errorf("ConvMeter wins %.0f of %.0f — expected near-sweep",
			res.Stats["wins"], res.Stats["comparable"])
	}
	if !strings.Contains(res.Text, "n/a (graph parse failed)") {
		t.Error("squeezenet1_0 should be marked unparseable, as in the paper")
	}
}

func TestFig8ScalingShape(t *testing.T) {
	res, err := Fig8(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput grows with nodes for every model, in both measured and
	// predicted series.
	for _, model := range []string{"alexnet", "resnet50", "mobilenet_v2"} {
		for _, kind := range []string{"measured", "predicted"} {
			t1 := res.Stats[kind+"_"+model+"_n1"]
			t16 := res.Stats[kind+"_"+model+"_n16"]
			if t16 <= t1 {
				t.Errorf("%s %s: throughput at 16 nodes (%.0f) should exceed 1 node (%.0f)",
					kind, model, t16, t1)
			}
		}
	}
	// AlexNet shows the most prominent diminishing return (paper Fig. 8):
	// its measured 16-node speedup is the lowest of the set.
	alexGain := res.Stats["measured_alexnet_n16"] / res.Stats["measured_alexnet_n1"]
	for _, other := range []string{"resnet50", "mobilenet_v2"} {
		gain := res.Stats["measured_"+other+"_n16"] / res.Stats["measured_"+other+"_n1"]
		if alexGain >= gain {
			t.Errorf("alexnet 16-node gain %.2f should be below %s gain %.2f", alexGain, other, gain)
		}
	}
	if res.Stats["series_mape"] > 0.40 {
		t.Errorf("scaling-series MAPE %.3f too high", res.Stats["series_mape"])
	}
}

func TestFig9BatchScalingShape(t *testing.T) {
	res, err := Fig9(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 9 shapes: throughput grows with batch, then shows
	// pronounced diminishing returns at large batches, and predictions
	// extend beyond the device-memory limit.
	sawOOM := false
	for _, model := range []string{"resnet18", "resnet50", "squeezenet1_0"} {
		lowGain := res.Stats["predicted_"+model+"_b64"] / res.Stats["predicted_"+model+"_b4"]
		highGain := res.Stats["predicted_"+model+"_b4096"] / res.Stats["predicted_"+model+"_b1024"]
		if highGain >= lowGain {
			t.Errorf("%s: diminishing returns missing (low %.2f, high %.2f)", model, lowGain, highGain)
		}
		if highGain > 1.10 {
			t.Errorf("%s: still scaling strongly at batch 4096 (gain %.2f)", model, highGain)
		}
		if res.Stats["predicted_"+model+"_b4096"] <= 0 {
			t.Errorf("%s: beyond-memory prediction missing", model)
		}
		// Prediction tracks the measurement on every feasible batch.
		for _, b := range []int{4, 64, 1024} {
			meas, ok := res.Stats[fmt.Sprintf("measured_%s_b%d", model, b)]
			if !ok {
				continue
			}
			pred := res.Stats[fmt.Sprintf("predicted_%s_b%d", model, b)]
			if rel := math.Abs(pred-meas) / meas; rel > 0.5 {
				t.Errorf("%s b%d: prediction %.0f vs measured %.0f (rel %.2f)", model, b, pred, meas, rel)
			}
		}
		if _, ok := res.Stats[fmt.Sprintf("measured_%s_b4096", model)]; !ok {
			sawOOM = true
		}
	}
	if !sawOOM {
		t.Error("expected at least one beyond-memory (prediction-only) configuration")
	}
	if !strings.Contains(res.Text, "OOM (prediction only)") {
		t.Error("rendered table should mark beyond-memory rows")
	}
}

func TestAblationShapes(t *testing.T) {
	res, err := Ablation(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// More data should not hurt: the largest fit must beat the smallest.
	small := res.Stats["datasize_mape_25"]
	var largest float64
	for k, v := range res.Stats {
		if strings.HasPrefix(k, "datasize_mape_") && k != "datasize_mape_25" {
			largest = v // any larger size; the map holds the final sizes
			_ = k
		}
	}
	if largest > small*1.5 {
		t.Errorf("large-dataset MAPE %.3f should not be far above 25-point MAPE %.3f", largest, small)
	}
	// Fitting-objective ablation: the relative-weighted fit must beat
	// plain OLS on the MAPE metric, decisively so on the wide-dynamic-
	// range CPU sweep.
	if res.Stats["wls_mape"] >= res.Stats["ols_mape"] {
		t.Errorf("weighted MAPE %.3f should beat OLS %.3f",
			res.Stats["wls_mape"], res.Stats["ols_mape"])
	}
	if res.Stats["wls_mape_cpu"]*2 >= res.Stats["ols_mape_cpu"] {
		t.Errorf("CPU sweep: weighted MAPE %.3f should beat OLS %.3f by a wide margin",
			res.Stats["wls_mape_cpu"], res.Stats["ols_mape_cpu"])
	}
	// Cross-device transfer vs native target fit: the native fit wins
	// (ConvMeter's case for cheap target-side benchmarking).
	if res.Stats["native_mape"] >= res.Stats["transfer_mape"] {
		t.Errorf("native MAPE %.3f should beat Habitat-style transfer %.3f",
			res.Stats["native_mape"], res.Stats["transfer_mape"])
	}
	// §4.3: model-specific coefficients sharpen the model's own fit.
	if res.Stats["specific_mape"] >= res.Stats["pooled_mape"] {
		t.Errorf("specific MAPE %.3f should beat pooled %.3f",
			res.Stats["specific_mape"], res.Stats["pooled_mape"])
	}
	// Noise monotonicity: more measurement noise, more LOMO error.
	if res.Stats["noise_mape_0.02"] >= res.Stats["noise_mape_0.12"] {
		t.Errorf("noise ablation not monotone: %.3f vs %.3f",
			res.Stats["noise_mape_0.02"], res.Stats["noise_mape_0.12"])
	}
}

func TestFigureSeriesAreValidCSV(t *testing.T) {
	for _, id := range []string{"fig8", "fig9"} {
		res, err := Run(id, quickCfg)
		if err != nil {
			t.Fatal(err)
		}
		doc, ok := res.Series[id]
		if !ok {
			t.Fatalf("%s: missing CSV series", id)
		}
		r := csv.NewReader(strings.NewReader(doc))
		rows, err := r.ReadAll()
		if err != nil {
			t.Fatalf("%s: invalid CSV: %v", id, err)
		}
		if len(rows) < 4 {
			t.Fatalf("%s: only %d CSV rows", id, len(rows))
		}
		if rows[0][0] != "model" {
			t.Fatalf("%s: header %v", id, rows[0])
		}
	}
}

func TestRunnersDispatch(t *testing.T) {
	if len(Runners()) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(Runners()))
	}
	if _, err := Run("fig2", quickCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("nope", quickCfg); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestResultsCarryTextAndStats(t *testing.T) {
	for _, r := range Runners() {
		res, err := r.Run(quickCfg)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if res.ID != r.ID {
			t.Errorf("%s: result ID %q", r.ID, res.ID)
		}
		if strings.TrimSpace(res.Text) == "" {
			t.Errorf("%s: empty rendered text", r.ID)
		}
		if len(res.Stats) == 0 {
			t.Errorf("%s: no stats", r.ID)
		}
	}
}
