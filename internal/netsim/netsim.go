// Package netsim models the communication substrate of distributed data-
// parallel training: hierarchical ring all-reduce over NVLink within a
// node and InfiniBand between nodes, Horovod-style per-layer gradient
// buckets with tensor fusion, and the overlap of communication with the
// backward pass.
//
// It substitutes for the paper's NCCL + Horovod + 4×HDR-200 InfiniBand
// cluster fabric, reproducing its phenomenology: synchronisation cost
// grows with the number of layers (per-layer sync), with the model size,
// and with the node count; inter-node links are the bottleneck; and
// communication jitter makes multi-node measurements noisier than
// single-node ones (paper §4.2.1).
package netsim

import "fmt"

// Fabric describes the interconnect of a GPU cluster.
type Fabric struct {
	// GPUsPerNode is the number of devices that share NVLink (4 in the
	// paper's nodes).
	GPUsPerNode int
	// IntraBW is the per-GPU NVLink ring bandwidth in bytes/s.
	IntraBW float64
	// IntraLatency is the per-hop NVLink latency in seconds.
	IntraLatency float64
	// InterBW is the per-GPU share of inter-node bandwidth in bytes/s
	// (the paper's nodes have one HDR-200 NIC per GPU).
	InterBW float64
	// InterLatency is the per-hop network latency in seconds.
	InterLatency float64
	// PerTensorOverhead is the fixed cost of launching one fused
	// all-reduce operation (NCCL kernel launch + Horovod coordination).
	PerTensorOverhead float64
}

// Cluster returns the fabric of the paper's HPC cluster: four A100s per
// node on NVLink (≈200 GB/s effective per-GPU ring bandwidth) and four
// HDR-200 InfiniBand cards per node (≈25 GB/s per GPU).
func Cluster() Fabric {
	return Fabric{
		GPUsPerNode:       4,
		IntraBW:           2.0e11,
		IntraLatency:      3e-6,
		InterBW:           2.2e10,
		InterLatency:      8e-6,
		PerTensorOverhead: 2.5e-5,
	}
}

// Validate checks the fabric for usable values.
func (f Fabric) Validate() error {
	if f.GPUsPerNode <= 0 {
		return fmt.Errorf("netsim: GPUsPerNode = %d", f.GPUsPerNode)
	}
	if f.IntraBW <= 0 || f.InterBW <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth (intra %g, inter %g)", f.IntraBW, f.InterBW)
	}
	if f.IntraLatency < 0 || f.InterLatency < 0 || f.PerTensorOverhead < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	return nil
}

// AllReduce returns the time in seconds for a ring all-reduce of the
// given payload (bytes) across devices spread over nodes.
//
// Single node: one ring over g GPUs costs 2(g−1)/g · S/bw plus 2(g−1)
// latency hops. Multi node: hierarchical reduce-scatter within the node,
// ring all-reduce of the per-GPU shard across nodes on the per-GPU NIC
// share, then intra-node all-gather.
func (f Fabric) AllReduce(bytes float64, devices, nodes int) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: negative payload %g", bytes)
	}
	if nodes <= 0 || devices <= 0 {
		return 0, fmt.Errorf("netsim: devices=%d nodes=%d", devices, nodes)
	}
	if devices < nodes {
		return 0, fmt.Errorf("netsim: %d devices cannot span %d nodes", devices, nodes)
	}
	perNode := devices / nodes
	if perNode > f.GPUsPerNode {
		return 0, fmt.Errorf("netsim: %d GPUs per node exceeds fabric capacity %d", perNode, f.GPUsPerNode)
	}
	if devices == 1 {
		// Nothing to synchronise with; Horovod still touches the tensor
		// once (identity all-reduce), charge only the fixed overhead.
		return f.PerTensorOverhead, nil
	}
	t := f.PerTensorOverhead
	if nodes == 1 {
		g := float64(perNode)
		t += 2 * (g - 1) / g * bytes / f.IntraBW
		t += 2 * (g - 1) * f.IntraLatency
		return t, nil
	}
	n := float64(nodes)
	if perNode > 1 {
		g := float64(perNode)
		// Intra-node reduce-scatter then (after the inter phase) all-gather:
		// each costs (g−1)/g · S/bw, summing to the full ring term.
		t += 2 * (g - 1) / g * bytes / f.IntraBW
		t += 2 * (g - 1) * f.IntraLatency
		// The inter-node ring operates on the per-GPU shard.
		bytes /= g
	}
	t += 2 * (n - 1) / n * bytes / f.InterBW
	t += 2 * (n - 1) * f.InterLatency
	return t, nil
}

// Bucket is a fused group of per-layer gradient tensors (Horovod tensor
// fusion): Bytes of payload that become ready for synchronisation at
// ReadyAt seconds into the backward pass.
type Bucket struct {
	Bytes   float64
	ReadyAt float64
}

// CommEvent is one scheduled bucket all-reduce on the link timeline.
type CommEvent struct {
	Bucket     int
	Bytes      float64
	Start, End float64 // seconds from the start of the backward pass
}

// Schedule plays fused gradient buckets against a network that processes
// them in order: each all-reduce starts when its bucket is ready and the
// link is free. It returns the per-bucket spans.
func (f Fabric) Schedule(buckets []Bucket, devices, nodes int) ([]CommEvent, error) {
	events := make([]CommEvent, 0, len(buckets))
	linkFree := 0.0
	for i, b := range buckets {
		if b.Bytes < 0 || b.ReadyAt < 0 {
			return nil, fmt.Errorf("netsim: bucket %d malformed (%g bytes at %g)", i, b.Bytes, b.ReadyAt)
		}
		start := b.ReadyAt
		if linkFree > start {
			start = linkFree
		}
		dur, err := f.AllReduce(b.Bytes, devices, nodes)
		if err != nil {
			return nil, err
		}
		linkFree = start + dur
		events = append(events, CommEvent{Bucket: i, Bytes: b.Bytes, Start: start, End: linkFree})
	}
	return events, nil
}

// OverlapTimeline returns the time at which the last all-reduce completes
// (measured from the start of the backward pass) and the exposed
// communication time beyond backwardEnd.
func (f Fabric) OverlapTimeline(buckets []Bucket, devices, nodes int, backwardEnd float64) (commEnd, exposed float64, err error) {
	events, err := f.Schedule(buckets, devices, nodes)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range events {
		if e.End > commEnd {
			commEnd = e.End
		}
	}
	exposed = commEnd - backwardEnd
	if exposed < 0 {
		exposed = 0
	}
	return commEnd, exposed, nil
}
