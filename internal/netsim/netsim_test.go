package netsim

import (
	"testing"
	"testing/quick"
)

func TestAllReduceSingleDevice(t *testing.T) {
	f := Cluster()
	got, err := f.AllReduce(1e8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != f.PerTensorOverhead {
		t.Fatalf("single-device all-reduce = %g, want bare overhead %g", got, f.PerTensorOverhead)
	}
}

func TestAllReduceMonotonicInPayload(t *testing.T) {
	f := Cluster()
	prev := -1.0
	for _, s := range []float64{0, 1e6, 1e7, 1e8, 1e9} {
		cur, err := f.AllReduce(s, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cur <= prev {
			t.Fatalf("all-reduce not increasing at payload %g", s)
		}
		prev = cur
	}
}

func TestAllReduceInterNodeSlower(t *testing.T) {
	f := Cluster()
	intra, err := f.AllReduce(1e8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := f.AllReduce(1e8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inter <= intra {
		t.Fatalf("inter-node (%g) should exceed intra-node (%g)", inter, intra)
	}
}

func TestAllReduceGrowsWithNodes(t *testing.T) {
	f := Cluster()
	prev := 0.0
	for _, nodes := range []int{2, 4, 8, 16} {
		cur, err := f.AllReduce(2.5e8, nodes*4, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if cur <= prev {
			t.Fatalf("all-reduce should grow with node count at %d nodes: %g <= %g", nodes, cur, prev)
		}
		prev = cur
	}
}

func TestAllReduceBandwidthTermSaturates(t *testing.T) {
	// The ring bandwidth factor 2(n−1)/n approaches 2, so doubling nodes
	// far out must barely change the bandwidth cost of a big payload.
	f := Cluster()
	t8, _ := f.AllReduce(1e9, 32, 8)
	t16, _ := f.AllReduce(1e9, 64, 16)
	if ratio := t16 / t8; ratio > 1.25 {
		t.Fatalf("large-scale all-reduce ratio = %g, want near saturation", ratio)
	}
}

func TestAllReduceErrors(t *testing.T) {
	f := Cluster()
	cases := []struct {
		name           string
		bytes          float64
		devices, nodes int
	}{
		{"negative payload", -1, 4, 1},
		{"zero devices", 1e6, 0, 1},
		{"zero nodes", 1e6, 4, 0},
		{"devices < nodes", 1e6, 2, 4},
		{"too many gpus per node", 1e6, 16, 2},
	}
	for _, c := range cases {
		if _, err := f.AllReduce(c.bytes, c.devices, c.nodes); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	bad := Fabric{}
	if _, err := bad.AllReduce(1, 1, 1); err == nil {
		t.Error("invalid fabric must be rejected")
	}
}

func TestValidate(t *testing.T) {
	f := Cluster()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	f.IntraLatency = -1
	if err := f.Validate(); err == nil {
		t.Fatal("expected negative-latency error")
	}
}

func TestOverlapFullyHidden(t *testing.T) {
	f := Cluster()
	// One tiny bucket ready early against a long backward pass: fully
	// hidden communication.
	buckets := []Bucket{{Bytes: 1e6, ReadyAt: 0.001}}
	commEnd, exposed, err := f.OverlapTimeline(buckets, 4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if exposed != 0 {
		t.Fatalf("tiny early bucket should be hidden, exposed = %g", exposed)
	}
	if commEnd <= buckets[0].ReadyAt {
		t.Fatal("commEnd must be after bucket ready time")
	}
}

func TestOverlapExposedTail(t *testing.T) {
	f := Cluster()
	// A huge bucket ready at the very end of the backward pass: exposed.
	buckets := []Bucket{{Bytes: 5e9, ReadyAt: 0.010}}
	_, exposed, err := f.OverlapTimeline(buckets, 8, 2, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if exposed <= 0 {
		t.Fatal("late large bucket must expose communication")
	}
}

func TestOverlapSerialisesLink(t *testing.T) {
	f := Cluster()
	// Two buckets ready simultaneously: the second must wait for the link.
	dur, _ := f.AllReduce(1e8, 4, 1)
	buckets := []Bucket{
		{Bytes: 1e8, ReadyAt: 0},
		{Bytes: 1e8, ReadyAt: 0},
	}
	commEnd, _, err := f.OverlapTimeline(buckets, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if commEnd < 2*dur*0.999 {
		t.Fatalf("link must serialise buckets: end %g < 2×%g", commEnd, dur)
	}
}

func TestOverlapMalformedBucket(t *testing.T) {
	f := Cluster()
	if _, _, err := f.OverlapTimeline([]Bucket{{Bytes: -1}}, 4, 1, 0); err == nil {
		t.Fatal("expected malformed-bucket error")
	}
}

func TestAllReduceNonNegativeProperty(t *testing.T) {
	f := Cluster()
	check := func(rawBytes uint32, rawNodes uint8) bool {
		nodes := int(rawNodes%16) + 1
		devices := nodes * 4
		tm, err := f.AllReduce(float64(rawBytes), devices, nodes)
		return err == nil && tm >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
