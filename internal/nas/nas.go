// Package nas is a hardware-aware neural-architecture-search harness —
// the application the paper positions ConvMeter for ("a crucial feature
// needed by NAS methods": cheap, per-candidate latency prediction). The
// search space is a MobileNet-style inverted-bottleneck backbone with
// per-block kernel size, expansion ratio and squeeze-and-excitation
// choices (the ProxylessNAS/FBNet/MnasNet space family the paper cites).
//
// A candidate's latency is *predicted* from its static metrics via a
// fitted ConvMeter model — evaluating one candidate costs microseconds of
// arithmetic instead of a device benchmark, which is exactly what makes
// thousands-of-candidates searches tractable. The accuracy side of NAS is
// outside this repository's scope (no candidate is trained); following
// standard practice for search-harness evaluation, a monotone capacity
// proxy stands in for trained accuracy, and the tests verify the
// *latency* machinery: feasibility of selected candidates against the
// ground-truth simulator, budget monotonicity, and prediction-guided
// search matching measurement-guided search.
package nas

import (
	"fmt"
	"math"
	"math/rand"

	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/metrics"
)

// BlockChoice configures one searchable inverted-bottleneck block.
type BlockChoice struct {
	Kernel int  // 3, 5 or 7
	Expand int  // 1, 3 or 6
	SE     bool // squeeze-and-excitation gate
}

// kernels and expands enumerate the per-block choice axes.
var (
	kernels = []int{3, 5, 7}
	expands = []int{1, 3, 6}
)

// stageCfg fixes the backbone skeleton (widths, strides, block counts);
// the search varies what happens inside each block.
type stageCfg struct {
	out, blocks, stride int
}

var backbone = []stageCfg{
	{24, 2, 2},
	{40, 2, 2},
	{80, 3, 2},
	{112, 3, 1},
	{160, 2, 2},
}

// NumBlocks is the number of searchable block positions.
func NumBlocks() int {
	n := 0
	for _, s := range backbone {
		n += s.blocks
	}
	return n
}

// Candidate is one point of the search space.
type Candidate struct {
	Choices []BlockChoice
}

// validate checks the candidate against the space.
func (c Candidate) validate() error {
	if len(c.Choices) != NumBlocks() {
		return fmt.Errorf("nas: candidate has %d choices, space has %d blocks", len(c.Choices), NumBlocks())
	}
	for i, ch := range c.Choices {
		okK := ch.Kernel == 3 || ch.Kernel == 5 || ch.Kernel == 7
		okE := ch.Expand == 1 || ch.Expand == 3 || ch.Expand == 6
		if !okK || !okE {
			return fmt.Errorf("nas: block %d has invalid choice %+v", i, ch)
		}
	}
	return nil
}

// Build constructs the candidate's graph for a square img input.
func (c Candidate) Build(img int) (*graph.Graph, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	b, x := graph.NewBuilder("nas-candidate", graph.Shape{C: 3, H: img, W: img})
	x = b.Conv(x, "stem.conv", 16, 3, 2, 1)
	x = b.BatchNorm(x, "stem.bn")
	x = b.Act(x, "stem.act", graph.HardSwish)
	idx := 0
	for si, stage := range backbone {
		for blk := 0; blk < stage.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = stage.stride
			}
			x = invertedBlock(b, x, fmt.Sprintf("stage%d.%d", si, blk), c.Choices[idx], stage.out, stride)
			idx++
		}
	}
	x = b.Conv(x, "head.conv", 640, 1, 1, 0)
	x = b.BatchNorm(x, "head.bn")
	x = b.Act(x, "head.act", graph.HardSwish)
	x = b.GlobalAvgPool(x, "head.pool")
	x = b.Flatten(x, "head.flatten")
	x = b.Linear(x, "head.fc", 1000)
	return b.Build()
}

// invertedBlock appends one searchable inverted-bottleneck block.
func invertedBlock(b *graph.Builder, x graph.Ref, name string, ch BlockChoice, out, stride int) graph.Ref {
	inC := b.Channels(x)
	hidden := inC * ch.Expand
	identity := x
	h := x
	if ch.Expand != 1 {
		h = b.Conv(h, name+".expand", hidden, 1, 1, 0)
		h = b.BatchNorm(h, name+".expand_bn")
		h = b.Act(h, name+".expand_act", graph.HardSwish)
	}
	h = b.Conv2d(h, name+".dw", graph.ConvSpec{
		Out: hidden, KH: ch.Kernel, StrideH: stride, PadH: (ch.Kernel - 1) / 2, Groups: hidden,
	})
	h = b.BatchNorm(h, name+".dw_bn")
	h = b.Act(h, name+".dw_act", graph.HardSwish)
	if ch.SE {
		squeeze := hidden / 4
		if squeeze < 1 {
			squeeze = 1
		}
		gate := b.GlobalAvgPool(h, name+".se_squeeze")
		gate = b.Conv2d(gate, name+".se_fc1", graph.ConvSpec{Out: squeeze, Bias: true})
		gate = b.ReLU(gate, name+".se_act")
		gate = b.Conv2d(gate, name+".se_fc2", graph.ConvSpec{Out: hidden, Bias: true})
		gate = b.Act(gate, name+".se_gate", graph.HardSigmoid)
		h = b.Mul(name+".se_scale", h, gate)
	}
	h = b.Conv(h, name+".project", out, 1, 1, 0)
	h = b.BatchNorm(h, name+".project_bn")
	if stride == 1 && inC == out {
		return b.Add(name+".add", h, identity)
	}
	return h
}

// RandomCandidate samples a uniform point of the space.
func RandomCandidate(rng *rand.Rand) Candidate {
	choices := make([]BlockChoice, NumBlocks())
	for i := range choices {
		choices[i] = BlockChoice{
			Kernel: kernels[rng.Intn(len(kernels))],
			Expand: expands[rng.Intn(len(expands))],
			SE:     rng.Intn(2) == 1,
		}
	}
	return Candidate{Choices: choices}
}

// mutate flips a few block choices.
func mutate(rng *rand.Rand, c Candidate, flips int) Candidate {
	out := Candidate{Choices: append([]BlockChoice(nil), c.Choices...)}
	for f := 0; f < flips; f++ {
		i := rng.Intn(len(out.Choices))
		switch rng.Intn(3) {
		case 0:
			out.Choices[i].Kernel = kernels[rng.Intn(len(kernels))]
		case 1:
			out.Choices[i].Expand = expands[rng.Intn(len(expands))]
		default:
			out.Choices[i].SE = !out.Choices[i].SE
		}
	}
	return out
}

// AccuracyProxy is the monotone capacity score standing in for trained
// accuracy: bigger kernels, expansions and SE gates raise it, with
// diminishing returns (log scale) — mirroring the accuracy/latency
// trade-off curves real NAS navigates.
func AccuracyProxy(met metrics.Metrics) float64 {
	return math.Log(float64(met.FLOPs)) + 0.3*math.Log(float64(met.Weights))
}

// Evaluator scores candidates with a latency oracle.
type Evaluator struct {
	// Latency returns the (predicted or measured) forward time in seconds
	// for a candidate graph at the evaluation batch size.
	Latency func(g *graph.Graph, met metrics.Metrics) (float64, error)
}

// PredictedEvaluator wraps a fitted ConvMeter model — the NAS fast path.
func PredictedEvaluator(m *core.InferenceModel, batch float64) Evaluator {
	return Evaluator{Latency: func(g *graph.Graph, met metrics.Metrics) (float64, error) {
		return float64(m.Predict(met, batch)), nil
	}}
}

// Result is the outcome of a search.
type Result struct {
	Best        Candidate
	BestGraph   *graph.Graph
	BestMetrics metrics.Metrics
	BestScore   float64
	BestLatency float64
	Evaluated   int
	Feasible    int
}

// Search runs latency-constrained evolutionary search: maximise the
// accuracy proxy subject to Latency ≤ budget. It starts from random
// candidates and evolves the feasible elite by mutation.
func Search(eval Evaluator, img int, budget float64, population, generations int, seed int64) (*Result, error) {
	if budget <= 0 || population < 2 || generations < 1 {
		return nil, fmt.Errorf("nas: invalid search configuration (budget %g, pop %d, gen %d)", budget, population, generations)
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{BestScore: math.Inf(-1)}
	consider := func(c Candidate) (float64, error) {
		g, err := c.Build(img)
		if err != nil {
			return math.Inf(-1), err
		}
		met, err := metrics.FromGraph(g)
		if err != nil {
			return math.Inf(-1), err
		}
		lat, err := eval.Latency(g, met)
		if err != nil {
			return math.Inf(-1), err
		}
		res.Evaluated++
		if lat > budget {
			return math.Inf(-1), nil // infeasible
		}
		res.Feasible++
		score := AccuracyProxy(met)
		if score > res.BestScore {
			res.Best, res.BestGraph, res.BestMetrics = c, g, met
			res.BestScore, res.BestLatency = score, lat
		}
		return score, nil
	}
	// Generation 0: random population.
	type scored struct {
		c Candidate
		s float64
	}
	pop := make([]scored, 0, population)
	for i := 0; i < population; i++ {
		c := RandomCandidate(rng)
		s, err := consider(c)
		if err != nil {
			return nil, err
		}
		pop = append(pop, scored{c, s})
	}
	for gen := 1; gen < generations; gen++ {
		// Elite selection: keep the top half by score.
		for i := 0; i < len(pop); i++ {
			for j := i + 1; j < len(pop); j++ {
				if pop[j].s > pop[i].s {
					pop[i], pop[j] = pop[j], pop[i]
				}
			}
		}
		elite := pop[:population/2]
		next := make([]scored, 0, population)
		next = append(next, elite...)
		for len(next) < population {
			parent := elite[rng.Intn(len(elite))].c
			if math.IsInf(elite[0].s, -1) {
				// No feasible candidate yet: keep exploring randomly.
				parent = RandomCandidate(rng)
			}
			child := mutate(rng, parent, 1+rng.Intn(3))
			s, err := consider(child)
			if err != nil {
				return nil, err
			}
			next = append(next, scored{child, s})
		}
		pop = next
	}
	if math.IsInf(res.BestScore, -1) {
		return nil, fmt.Errorf("nas: no feasible candidate within %.4g s after %d evaluations", budget, res.Evaluated)
	}
	return res, nil
}
