package nas

import (
	"math"
	"math/rand"
	"testing"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
)

// fitModel fits the block-capable inference model used by the searches.
func fitModel(t *testing.T) *core.InferenceModel {
	t.Helper()
	sc := bench.DefaultInferenceScenario(hwsim.A100(), 5)
	sc.Models = []string{"mobilenet_v2", "mobilenet_v3_large", "efficientnet_b0", "mnasnet1_0", "resnet18", "regnet_x_400mf"}
	sc.Images = []int{64, 128, 224}
	sc.Batches = []int{1, 8, 64}
	samples, err := bench.CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCandidateBuildsAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		c := RandomCandidate(rng)
		g, err := c.Build(128)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		out, err := g.OutputShape()
		if err != nil {
			t.Fatal(err)
		}
		if out != (graph.Shape{C: 1000, H: 1, W: 1}) {
			t.Fatalf("candidate output %v", out)
		}
	}
}

func TestCandidateValidation(t *testing.T) {
	if _, err := (Candidate{}).Build(128); err == nil {
		t.Fatal("expected choice-count error")
	}
	rng := rand.New(rand.NewSource(2))
	c := RandomCandidate(rng)
	c.Choices[0].Kernel = 4
	if _, err := c.Build(128); err == nil {
		t.Fatal("expected invalid-kernel error")
	}
}

func TestChoiceAxesChangeCost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := RandomCandidate(rng)
	for i := range base.Choices {
		base.Choices[i] = BlockChoice{Kernel: 3, Expand: 3, SE: false}
	}
	big := Candidate{Choices: append([]BlockChoice(nil), base.Choices...)}
	for i := range big.Choices {
		big.Choices[i] = BlockChoice{Kernel: 7, Expand: 6, SE: true}
	}
	gSmall, err := base.Build(128)
	if err != nil {
		t.Fatal(err)
	}
	gBig, err := big.Build(128)
	if err != nil {
		t.Fatal(err)
	}
	if gBig.TotalFLOPs() <= gSmall.TotalFLOPs() || gBig.TotalParams() <= gSmall.TotalParams() {
		t.Fatal("maximal choices must cost more than minimal choices")
	}
	mSmall, _ := metrics.FromGraph(gSmall)
	mBig, _ := metrics.FromGraph(gBig)
	if AccuracyProxy(mBig) <= AccuracyProxy(mSmall) {
		t.Fatal("accuracy proxy must be monotone in capacity")
	}
}

func TestSearchRespectsBudgetAgainstGroundTruth(t *testing.T) {
	model := fitModel(t)
	sim := hwsim.NewSimulator(hwsim.A100(), 0, 9)
	const (
		img    = 128
		batch  = 64
		budget = 0.0025 // 2.5 ms at batch 64 — binding for large candidates
	)
	res, err := Search(PredictedEvaluator(model, batch), img, budget, 12, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible == 0 || res.Evaluated < 12 {
		t.Fatalf("search bookkeeping off: %+v", res)
	}
	if res.BestLatency > budget {
		t.Fatalf("selected candidate predicted at %.4g s over budget %.4g", res.BestLatency, budget)
	}
	// Ground truth: the simulator must agree the winner is (near) budget.
	actual := sim.ForwardExact(res.BestGraph, batch)
	if actual > budget*1.4 {
		t.Fatalf("selected candidate actually takes %.4g s, budget %.4g — prediction misled the search", actual, budget)
	}
}

func TestTighterBudgetSelectsSmallerNetworks(t *testing.T) {
	model := fitModel(t)
	loose, err := Search(PredictedEvaluator(model, 64), 128, 0.0030, 12, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Search(PredictedEvaluator(model, 64), 128, 0.0012, 12, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tight.BestMetrics.FLOPs >= loose.BestMetrics.FLOPs {
		t.Fatalf("tight budget picked %.3g FLOPs, loose %.3g — constraint not binding",
			tight.BestMetrics.FLOPs, loose.BestMetrics.FLOPs)
	}
	if tight.BestScore >= loose.BestScore {
		t.Fatalf("tighter budget cannot reach a higher proxy score")
	}
}

func TestPredictionGuidedMatchesMeasurementGuided(t *testing.T) {
	// The paper's pitch: searching with predictions finds (nearly) the
	// same architecture quality as searching with measurements. Run both
	// searches with identical seeds and compare the winners' scores.
	model := fitModel(t)
	sim := hwsim.NewSimulator(hwsim.A100(), 0, 9)
	measured := Evaluator{Latency: func(g *graph.Graph, met metrics.Metrics) (float64, error) {
		return sim.ForwardExact(g, 64), nil
	}}
	const budget = 0.0015
	predRes, err := Search(PredictedEvaluator(model, 64), 128, budget, 12, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	measRes, err := Search(measured, 128, budget, 12, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(predRes.BestScore - measRes.BestScore); diff > 0.35 {
		t.Fatalf("prediction-guided score %.3f vs measurement-guided %.3f (diff %.3f)",
			predRes.BestScore, measRes.BestScore, diff)
	}
}

func TestSearchConfigValidation(t *testing.T) {
	model := fitModel(t)
	ev := PredictedEvaluator(model, 64)
	if _, err := Search(ev, 128, 0, 12, 5, 1); err == nil {
		t.Fatal("expected budget error")
	}
	if _, err := Search(ev, 128, 0.01, 1, 5, 1); err == nil {
		t.Fatal("expected population error")
	}
	if _, err := Search(ev, 128, 0.01, 12, 0, 1); err == nil {
		t.Fatal("expected generation error")
	}
	// An impossible budget must report infeasibility, not hang.
	if _, err := Search(ev, 128, 1e-9, 8, 2, 1); err == nil {
		t.Fatal("expected no-feasible-candidate error")
	}
}
