package models

import (
	"encoding/json"
	"strings"
	"testing"

	"convmeter/internal/graph"
	"convmeter/internal/metrics"
)

// published torchvision parameter counts (1000 classes). These pin the
// architectures: a single wrong channel width or missing bias breaks them.
var wantParams = map[string]int64{
	"alexnet":            61100840,
	"vgg11":              132863336,
	"vgg13":              133047848,
	"vgg16":              138357544,
	"vgg19":              143667240,
	"vgg16_bn":           138365992,
	"vgg19_bn":           143678248,
	"resnet18":           11689512,
	"resnet34":           21797672,
	"resnet50":           25557032,
	"resnet101":          44549160,
	"resnet152":          60192808,
	"wide_resnet50_2":    68883240,
	"wide_resnet101_2":   126886696,
	"resnext101_64x4d":   83455272,
	"resnext50_32x4d":    25028904,
	"resnext101_32x8d":   88791336,
	"squeezenet1_0":      1248424,
	"squeezenet1_1":      1235496,
	"mobilenet_v2":       3504872,
	"mobilenet_v3_large": 5483032,
	"mobilenet_v3_small": 2542856,
	"efficientnet_b0":    5288548,
	"efficientnet_b1":    7794184,
	"efficientnet_b2":    9109994,
	"efficientnet_b3":    12233232,
	"regnet_x_400mf":     5495976,
	"regnet_x_8gf":       39572648,
	"regnet_y_400mf":     4344144,
	"regnet_y_8gf":       39381472,
	"densenet121":        7978856,
	"densenet169":        14149480,
	"inception_v3":       23834568, // aux classifier excluded
	"vit_b_16":           86567656,
	"vit_b_32":           88224232,
	"vit_l_16":           304326632,
	"mnasnet1_0":         4383312,
	"convnext_tiny":      28589128,
	"shufflenet_v2_x1_0": 2278604,
}

func TestParameterCountsMatchTorchvision(t *testing.T) {
	for name, want := range wantParams {
		g, err := Build(name, 224)
		if err != nil {
			t.Errorf("%s: build failed: %v", name, err)
			continue
		}
		if got := g.TotalParams(); got != want {
			t.Errorf("%s: params = %d, want %d (Δ %d)", name, got, want, got-want)
		}
	}
}

func TestAllRegisteredModelsCovered(t *testing.T) {
	for _, name := range Names() {
		if _, ok := wantParams[name]; !ok {
			t.Errorf("model %q registered but not covered by the parameter-count test", name)
		}
	}
	if len(Names()) < 20 {
		t.Fatalf("zoo has %d models, expected a paper-scale zoo (>=20)", len(Names()))
	}
}

func TestParamsInvariantToImageSize(t *testing.T) {
	// Parameter counts must not depend on the input resolution.
	for _, name := range []string{"resnet50", "mobilenet_v2", "densenet121"} {
		a, err := Build(name, 224)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := Build(name, 160)
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalParams() != bg.TotalParams() {
			t.Errorf("%s: params differ across image sizes: %d vs %d", name, a.TotalParams(), bg.TotalParams())
		}
		if a.TotalFLOPs() <= bg.TotalFLOPs() {
			t.Errorf("%s: FLOPs should grow with image size", name)
		}
	}
}

func TestKnownFLOPs(t *testing.T) {
	// Published per-image multiply-accumulate counts at 224×224 (our FLOPs
	// = 2×MACs plus small non-conv terms), so total FLOPs should land
	// within ~10%% of 2×MACs.
	wantGMACs := map[string]float64{
		"resnet18":     1.81,
		"resnet50":     4.09,
		"vgg16":        15.47,
		"alexnet":      0.71,
		"mobilenet_v2": 0.30,
	}
	for name, gmacs := range wantGMACs {
		g, err := Build(name, 224)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(g.TotalFLOPs())
		want := 2 * gmacs * 1e9
		if got < want*0.9 || got > want*1.15 {
			t.Errorf("%s: FLOPs = %.3g, want ≈%.3g", name, got, want)
		}
	}
}

func TestOutputShapesAreLogits(t *testing.T) {
	for _, name := range Names() {
		g, err := Build(name, 224)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		out, err := g.OutputShape()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if out != (graph.Shape{C: NumClasses, H: 1, W: 1}) {
			t.Errorf("%s: output shape %v, want %dx1x1", name, out, NumClasses)
		}
	}
}

func TestSmallImageSupport(t *testing.T) {
	// The paper sweeps image sizes from 32 px up; the residual and mobile
	// families must build at 32 px (AlexNet/VGG-style nets legitimately
	// cannot, and must return an error rather than a bogus graph).
	mustWork := []string{"resnet18", "resnet50", "mobilenet_v2", "mobilenet_v3_large", "squeezenet1_1", "regnet_x_400mf"}
	for _, name := range mustWork {
		if _, err := Build(name, 32); err != nil {
			t.Errorf("%s at 32px: %v", name, err)
		}
	}
	if _, err := Build("alexnet", 32); err == nil {
		t.Error("alexnet at 32px should fail (stride-4 stem collapses the tensor)")
	}
	if _, err := Build("inception_v3", 32); err == nil {
		t.Error("inception_v3 at 32px should fail (stem needs ≥75px)")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("nonexistent_net", 224); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if _, err := Build("resnet18", 0); err == nil {
		t.Fatal("expected non-positive image size error")
	}
	if _, err := Build("resnet18", -5); err == nil {
		t.Fatal("expected negative image size error")
	}
}

func TestMakeDivisible(t *testing.T) {
	cases := []struct {
		v    float64
		div  int
		want int
	}{
		{18, 8, 24}, // MobileNet-V3 SE squeeze for exp=72
		{16, 8, 16},
		{8, 8, 8},
		{1, 8, 8},
		{60, 8, 56}, // 60+4=64→64? (64/8*8=64) — see below
	}
	// Recompute the last case by the rule: int(60+4)/8*8 = 64; 64 ≥ 0.9·60 → 64.
	cases[4].want = 64
	for _, c := range cases {
		if got := makeDivisible(c.v, c.div); got != c.want {
			t.Errorf("makeDivisible(%g,%d) = %d, want %d", c.v, c.div, got, c.want)
		}
	}
}

func TestZooGraphsValidateAndSerialise(t *testing.T) {
	for _, name := range Names() {
		g, err := Build(name, 224)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		data, err := json.Marshal(g)
		if err != nil {
			t.Errorf("%s: marshal: %v", name, err)
			continue
		}
		var back graph.Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Errorf("%s: unmarshal: %v", name, err)
			continue
		}
		if back.TotalParams() != g.TotalParams() {
			t.Errorf("%s: params changed over JSON round trip", name)
		}
	}
}

func TestMetricsSanityAcrossZoo(t *testing.T) {
	for _, name := range Names() {
		g, err := Build(name, 224)
		if err != nil {
			t.Fatal(err)
		}
		m, err := metrics.FromGraph(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.FLOPs <= 0 || m.Inputs <= 0 || m.Outputs <= 0 || m.Weights <= 0 || m.Layers <= 0 {
			t.Errorf("%s: non-positive metric: %+v", name, m)
		}
		if m.Weights != metrics.Count(g.TotalParams()) {
			t.Errorf("%s: weights metric mismatch", name)
		}
	}
}

func TestDenseNetInputGrowthSignature(t *testing.T) {
	// The paper's Fig. 2 discussion: within a DenseNet block the conv input
	// tensors grow while outputs stay fixed, so summed Inputs exceed
	// summed Outputs by a wide margin relative to e.g. ResNet.
	dn, err := Build("densenet121", 224)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Build("resnet50", 224)
	if err != nil {
		t.Fatal(err)
	}
	dm, _ := metrics.FromGraph(dn)
	rm, _ := metrics.FromGraph(rn)
	if dm.Inputs/dm.Outputs <= rm.Inputs/rm.Outputs {
		t.Errorf("densenet I/O ratio %.2f should exceed resnet %.2f",
			dm.Inputs/dm.Outputs, rm.Inputs/rm.Outputs)
	}
}

func TestNamesSortedUnique(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if !(names[i-1] < names[i]) {
			t.Fatalf("Names not sorted/unique at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	for _, n := range names {
		if strings.TrimSpace(n) == "" {
			t.Fatal("empty model name registered")
		}
	}
}
