package models

import "convmeter/internal/graph"

func init() {
	register("inception_v3", InceptionV3)
}

// basicConv is Inception's BasicConv2d: unbiased conv → BN → ReLU.
func basicConv(b *graph.Builder, x graph.Ref, name string, spec graph.ConvSpec) graph.Ref {
	return convBNAct(b, x, name, spec, graph.ReLU)
}

// inceptionA is the 35×35 mixed block with a parameterised pooling branch.
func inceptionA(b *graph.Builder, x graph.Ref, name string, poolFeatures int) graph.Ref {
	b1 := basicConv(b, x, name+".branch1x1", graph.ConvSpec{Out: 64})
	b5 := basicConv(b, x, name+".branch5x5_1", graph.ConvSpec{Out: 48})
	b5 = basicConv(b, b5, name+".branch5x5_2", graph.ConvSpec{Out: 64, KH: 5, PadH: 2})
	d := basicConv(b, x, name+".branch3x3dbl_1", graph.ConvSpec{Out: 64})
	d = basicConv(b, d, name+".branch3x3dbl_2", graph.ConvSpec{Out: 96, KH: 3, PadH: 1})
	d = basicConv(b, d, name+".branch3x3dbl_3", graph.ConvSpec{Out: 96, KH: 3, PadH: 1})
	p := b.AvgPool2d(x, name+".branch_pool_avg", 3, 1, 1)
	p = basicConv(b, p, name+".branch_pool", graph.ConvSpec{Out: poolFeatures})
	return b.Concat(name+".cat", b1, b5, d, p)
}

// inceptionB is the 35→17 grid-reduction block.
func inceptionB(b *graph.Builder, x graph.Ref, name string) graph.Ref {
	b3 := basicConv(b, x, name+".branch3x3", graph.ConvSpec{Out: 384, KH: 3, StrideH: 2})
	d := basicConv(b, x, name+".branch3x3dbl_1", graph.ConvSpec{Out: 64})
	d = basicConv(b, d, name+".branch3x3dbl_2", graph.ConvSpec{Out: 96, KH: 3, PadH: 1})
	d = basicConv(b, d, name+".branch3x3dbl_3", graph.ConvSpec{Out: 96, KH: 3, StrideH: 2})
	p := b.MaxPool2d(x, name+".branch_pool", 3, 2, 0)
	return b.Concat(name+".cat", b3, d, p)
}

// inceptionC is the 17×17 block with factorised 7×7 convolutions.
func inceptionC(b *graph.Builder, x graph.Ref, name string, c7 int) graph.Ref {
	b1 := basicConv(b, x, name+".branch1x1", graph.ConvSpec{Out: 192})
	b7 := basicConv(b, x, name+".branch7x7_1", graph.ConvSpec{Out: c7})
	b7 = basicConv(b, b7, name+".branch7x7_2", graph.ConvSpec{Out: c7, KH: 1, KW: 7, PadW: 3})
	b7 = basicConv(b, b7, name+".branch7x7_3", graph.ConvSpec{Out: 192, KH: 7, KW: 1, PadH: 3})
	d := basicConv(b, x, name+".branch7x7dbl_1", graph.ConvSpec{Out: c7})
	d = basicConv(b, d, name+".branch7x7dbl_2", graph.ConvSpec{Out: c7, KH: 7, KW: 1, PadH: 3})
	d = basicConv(b, d, name+".branch7x7dbl_3", graph.ConvSpec{Out: c7, KH: 1, KW: 7, PadW: 3})
	d = basicConv(b, d, name+".branch7x7dbl_4", graph.ConvSpec{Out: c7, KH: 7, KW: 1, PadH: 3})
	d = basicConv(b, d, name+".branch7x7dbl_5", graph.ConvSpec{Out: 192, KH: 1, KW: 7, PadW: 3})
	p := b.AvgPool2d(x, name+".branch_pool_avg", 3, 1, 1)
	p = basicConv(b, p, name+".branch_pool", graph.ConvSpec{Out: 192})
	return b.Concat(name+".cat", b1, b7, d, p)
}

// inceptionD is the 17→8 grid-reduction block.
func inceptionD(b *graph.Builder, x graph.Ref, name string) graph.Ref {
	b3 := basicConv(b, x, name+".branch3x3_1", graph.ConvSpec{Out: 192})
	b3 = basicConv(b, b3, name+".branch3x3_2", graph.ConvSpec{Out: 320, KH: 3, StrideH: 2})
	b7 := basicConv(b, x, name+".branch7x7x3_1", graph.ConvSpec{Out: 192})
	b7 = basicConv(b, b7, name+".branch7x7x3_2", graph.ConvSpec{Out: 192, KH: 1, KW: 7, PadW: 3})
	b7 = basicConv(b, b7, name+".branch7x7x3_3", graph.ConvSpec{Out: 192, KH: 7, KW: 1, PadH: 3})
	b7 = basicConv(b, b7, name+".branch7x7x3_4", graph.ConvSpec{Out: 192, KH: 3, StrideH: 2})
	p := b.MaxPool2d(x, name+".branch_pool", 3, 2, 0)
	return b.Concat(name+".cat", b3, b7, p)
}

// inceptionE is the 8×8 block with split 3×3 factorisations.
func inceptionE(b *graph.Builder, x graph.Ref, name string) graph.Ref {
	b1 := basicConv(b, x, name+".branch1x1", graph.ConvSpec{Out: 320})
	b3 := basicConv(b, x, name+".branch3x3_1", graph.ConvSpec{Out: 384})
	b3a := basicConv(b, b3, name+".branch3x3_2a", graph.ConvSpec{Out: 384, KH: 1, KW: 3, PadW: 1})
	b3b := basicConv(b, b3, name+".branch3x3_2b", graph.ConvSpec{Out: 384, KH: 3, KW: 1, PadH: 1})
	b3c := b.Concat(name+".branch3x3_cat", b3a, b3b)
	d := basicConv(b, x, name+".branch3x3dbl_1", graph.ConvSpec{Out: 448})
	d = basicConv(b, d, name+".branch3x3dbl_2", graph.ConvSpec{Out: 384, KH: 3, PadH: 1})
	da := basicConv(b, d, name+".branch3x3dbl_3a", graph.ConvSpec{Out: 384, KH: 1, KW: 3, PadW: 1})
	db := basicConv(b, d, name+".branch3x3dbl_3b", graph.ConvSpec{Out: 384, KH: 3, KW: 1, PadH: 1})
	dc := b.Concat(name+".branch3x3dbl_cat", da, db)
	p := b.AvgPool2d(x, name+".branch_pool_avg", 3, 1, 1)
	p = basicConv(b, p, name+".branch_pool", graph.ConvSpec{Out: 192})
	return b.Concat(name+".cat", b1, b3c, dc, p)
}

// InceptionV3 builds the torchvision Inception-V3 without the auxiliary
// classifier (23.8 M parameters). The canonical input is 299×299; smaller
// images are accepted down to the architecture's structural minimum.
func InceptionV3(img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder("inception_v3", inputShape(img))
	x = basicConv(b, x, "Conv2d_1a_3x3", graph.ConvSpec{Out: 32, KH: 3, StrideH: 2})
	x = basicConv(b, x, "Conv2d_2a_3x3", graph.ConvSpec{Out: 32, KH: 3})
	x = basicConv(b, x, "Conv2d_2b_3x3", graph.ConvSpec{Out: 64, KH: 3, PadH: 1})
	x = b.MaxPool2d(x, "maxpool1", 3, 2, 0)
	x = basicConv(b, x, "Conv2d_3b_1x1", graph.ConvSpec{Out: 80})
	x = basicConv(b, x, "Conv2d_4a_3x3", graph.ConvSpec{Out: 192, KH: 3})
	x = b.MaxPool2d(x, "maxpool2", 3, 2, 0)
	x = inceptionA(b, x, "Mixed_5b", 32)
	x = inceptionA(b, x, "Mixed_5c", 64)
	x = inceptionA(b, x, "Mixed_5d", 64)
	x = inceptionB(b, x, "Mixed_6a")
	x = inceptionC(b, x, "Mixed_6b", 128)
	x = inceptionC(b, x, "Mixed_6c", 160)
	x = inceptionC(b, x, "Mixed_6d", 160)
	x = inceptionC(b, x, "Mixed_6e", 192)
	x = inceptionD(b, x, "Mixed_7a")
	x = inceptionE(b, x, "Mixed_7b")
	x = inceptionE(b, x, "Mixed_7c")
	x = b.GlobalAvgPool(x, "avgpool")
	x = b.Flatten(x, "flatten")
	x = b.Dropout(x, "dropout", 0.5)
	x = b.Linear(x, "fc", NumClasses)
	return b.Build()
}
