package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("vgg11", func(img int) (*graph.Graph, error) { return vgg("vgg11", vggCfgA, false, img) })
	register("vgg13", func(img int) (*graph.Graph, error) { return vgg("vgg13", vggCfgB, false, img) })
	register("vgg16", func(img int) (*graph.Graph, error) { return vgg("vgg16", vggCfgD, false, img) })
	register("vgg19", func(img int) (*graph.Graph, error) { return vgg("vgg19", vggCfgE, false, img) })
	register("vgg16_bn", func(img int) (*graph.Graph, error) { return vgg("vgg16_bn", vggCfgD, true, img) })
	register("vgg19_bn", func(img int) (*graph.Graph, error) { return vgg("vgg19_bn", vggCfgE, true, img) })
}

// VGG stage configurations (torchvision cfgs A/B/D/E); -1 marks max pooling.
var (
	vggCfgA = []int{64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1}
	vggCfgB = []int{64, 64, -1, 128, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1}
	vggCfgD = []int{64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1}
	vggCfgE = []int{64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1, 512, 512, 512, 512, -1, 512, 512, 512, 512, -1}
)

// vgg builds a VGG variant: stacked biased 3×3 convolutions (with batch
// norm for the _bn family), five max-pool stages, a 7×7 adaptive pool,
// and a 4096-4096-1000 classifier (VGG-16: 138.4 M parameters).
func vgg(name string, cfg []int, bn bool, img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder(name, inputShape(img))
	layer := 0
	for _, c := range cfg {
		if c == -1 {
			x = b.MaxPool2d(x, fmt.Sprintf("features.pool%d", layer), 2, 2, 0)
		} else {
			x = b.ConvBias(x, fmt.Sprintf("features.conv%d", layer), c, 3, 1, 1)
			if bn {
				x = b.BatchNorm(x, fmt.Sprintf("features.bn%d", layer))
			}
			x = b.ReLU(x, fmt.Sprintf("features.relu%d", layer))
		}
		layer++
	}
	x = b.AdaptiveAvgPool(x, "avgpool", 7)
	x = b.Flatten(x, "flatten")
	x = b.Linear(x, "classifier.0", 4096)
	x = b.ReLU(x, "classifier.1")
	x = b.Dropout(x, "classifier.2", 0.5)
	x = b.Linear(x, "classifier.3", 4096)
	x = b.ReLU(x, "classifier.4")
	x = b.Dropout(x, "classifier.5", 0.5)
	x = b.Linear(x, "classifier.6", NumClasses)
	return b.Build()
}
