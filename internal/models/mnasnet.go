package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("mnasnet1_0", MNASNet10)
}

// mnasBlock appends an MNASNet inverted residual: 1×1 expansion,
// depthwise k×k, linear 1×1 projection, residual when shape-preserving.
func mnasBlock(b *graph.Builder, x graph.Ref, name string, expand, k, stride, out int) graph.Ref {
	inC := b.Channels(x)
	hidden := inC * expand
	identity := x
	h := convBNAct(b, x, name+".expand", graph.ConvSpec{Out: hidden}, graph.ReLU)
	h = convBNAct(b, h, name+".dw", graph.ConvSpec{
		Out: hidden, KH: k, StrideH: stride, PadH: (k - 1) / 2, Groups: hidden,
	}, graph.ReLU)
	h = convBN(b, h, name+".project", graph.ConvSpec{Out: out})
	if stride == 1 && inC == out {
		return b.Add(name+".add", h, identity)
	}
	return h
}

// MNASNet10 builds the torchvision MNASNet 1.0 (4.38 M parameters): a
// depthwise-separable stem followed by six inverted-residual stacks found
// by platform-aware NAS — one of the architecture-search outcomes the
// paper's NAS motivation refers to.
func MNASNet10(img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder("mnasnet1_0", inputShape(img))
	x = convBNAct(b, x, "layers.0", graph.ConvSpec{Out: 32, KH: 3, StrideH: 2, PadH: 1}, graph.ReLU)
	x = convBNAct(b, x, "layers.3", graph.ConvSpec{Out: 32, KH: 3, PadH: 1, Groups: 32}, graph.ReLU)
	x = convBN(b, x, "layers.6", graph.ConvSpec{Out: 16})
	// (expansion, kernel, first stride, output channels, repeats)
	cfg := []struct{ t, k, s, c, n int }{
		{3, 3, 2, 24, 3},
		{3, 5, 2, 40, 3},
		{6, 5, 2, 80, 3},
		{6, 3, 1, 96, 2},
		{6, 5, 2, 192, 4},
		{6, 3, 1, 320, 1},
	}
	for si, stack := range cfg {
		for i := 0; i < stack.n; i++ {
			s := 1
			if i == 0 {
				s = stack.s
			}
			x = mnasBlock(b, x, fmt.Sprintf("layers.%d.%d", 8+si, i), stack.t, stack.k, s, stack.c)
		}
	}
	x = convBNAct(b, x, "layers.14", graph.ConvSpec{Out: 1280}, graph.ReLU)
	x = b.GlobalAvgPool(x, "pool")
	x = b.Flatten(x, "flatten")
	x = b.Dropout(x, "classifier.0", 0.2)
	x = b.Linear(x, "classifier.1", NumClasses)
	return b.Build()
}
