package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("densenet121", func(img int) (*graph.Graph, error) {
		return densenet("densenet121", [4]int{6, 12, 24, 16}, img)
	})
	register("densenet169", func(img int) (*graph.Graph, error) {
		return densenet("densenet169", [4]int{6, 12, 32, 32}, img)
	})
}

// DenseNet hyperparameters shared by the 121/169 variants.
const (
	denseGrowth = 32
	denseBNSize = 4
)

// denseLayer appends one DenseNet layer in pre-activation order
// (BN → ReLU → 1×1 → BN → ReLU → 3×3) and concatenates the new features
// onto the running feature map. This is the pattern the paper singles out
// in §3.1: inside a dense block the *input* tensors grow layer by layer
// while each layer's own output stays fixed at the growth rate, which is
// why an outputs-only performance model misses DenseNet's cost.
func denseLayer(b *graph.Builder, x graph.Ref, name string) graph.Ref {
	h := b.BatchNorm(x, name+".norm1")
	h = b.ReLU(h, name+".relu1")
	h = b.Conv2d(h, name+".conv1", graph.ConvSpec{Out: denseBNSize * denseGrowth})
	h = b.BatchNorm(h, name+".norm2")
	h = b.ReLU(h, name+".relu2")
	h = b.Conv2d(h, name+".conv2", graph.ConvSpec{Out: denseGrowth, KH: 3, PadH: 1})
	return b.Concat(name+".cat", x, h)
}

// transition halves channels with a 1×1 convolution and downsamples 2×.
func transition(b *graph.Builder, x graph.Ref, name string) graph.Ref {
	h := b.BatchNorm(x, name+".norm")
	h = b.ReLU(h, name+".relu")
	h = b.Conv2d(h, name+".conv", graph.ConvSpec{Out: b.Channels(x) / 2})
	return b.AvgPool2d(h, name+".pool", 2, 2, 0)
}

// densenet builds DenseNet-121 (7.98 M parameters) or -169.
func densenet(name string, blocks [4]int, img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder(name, inputShape(img))
	x = b.Conv(x, "features.conv0", 64, 7, 2, 3)
	x = b.BatchNorm(x, "features.norm0")
	x = b.ReLU(x, "features.relu0")
	x = b.MaxPool2d(x, "features.pool0", 3, 2, 1)
	for bi, layers := range blocks {
		for l := 0; l < layers; l++ {
			x = denseLayer(b, x, fmt.Sprintf("features.denseblock%d.denselayer%d", bi+1, l+1))
		}
		if bi < len(blocks)-1 {
			x = transition(b, x, fmt.Sprintf("features.transition%d", bi+1))
		}
	}
	x = b.BatchNorm(x, "features.norm5")
	x = b.ReLU(x, "features.relu5")
	x = classifierHead(b, x, "head", NumClasses)
	return b.Build()
}
