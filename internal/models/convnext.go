package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("convnext_tiny", func(img int) (*graph.Graph, error) {
		return convnext("convnext_tiny", [4]int{3, 3, 9, 3}, [4]int{96, 192, 384, 768}, img)
	})
}

// convnextBlock appends a ConvNeXt block: depthwise 7×7, channel-wise
// layer norm, an inverted MLP (1×1 expand ×4, GELU, 1×1 project, both as
// position-wise linears = biased 1×1 convolutions), a learnable layer
// scale, and the residual connection.
func convnextBlock(b *graph.Builder, x graph.Ref, name string) graph.Ref {
	dim := b.Channels(x)
	h := b.Conv2d(x, name+".dwconv", graph.ConvSpec{Out: dim, KH: 7, PadH: 3, Groups: dim, Bias: true})
	h = b.LayerNorm(h, name+".norm")
	h = b.Conv2d(h, name+".pwconv1", graph.ConvSpec{Out: 4 * dim, Bias: true})
	h = b.Act(h, name+".act", graph.GELU)
	h = b.Conv2d(h, name+".pwconv2", graph.ConvSpec{Out: dim, Bias: true})
	h = b.Scale(h, name+".layer_scale")
	return b.Add(name+".add", x, h)
}

// convnext builds a ConvNeXt variant (Tiny: 28.6 M parameters) — a
// modernised ConvNet with transformer-style layer norms and GELU MLPs,
// exercising the transformer ops inside a convolutional architecture.
func convnext(name string, depths, dims [4]int, img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder(name, inputShape(img))
	x = b.Conv2d(x, "features.0.0", graph.ConvSpec{Out: dims[0], KH: 4, StrideH: 4, Bias: true})
	x = b.LayerNorm(x, "features.0.1")
	for stage := 0; stage < 4; stage++ {
		if stage > 0 {
			x = b.LayerNorm(x, fmt.Sprintf("features.%d.norm", 2*stage))
			x = b.Conv2d(x, fmt.Sprintf("features.%d.reduce", 2*stage),
				graph.ConvSpec{Out: dims[stage], KH: 2, StrideH: 2, Bias: true})
		}
		for blk := 0; blk < depths[stage]; blk++ {
			x = convnextBlock(b, x, fmt.Sprintf("features.%d.%d", 2*stage+1, blk))
		}
	}
	x = b.GlobalAvgPool(x, "avgpool")
	x = b.LayerNorm(x, "classifier.0")
	x = b.Flatten(x, "classifier.1")
	x = b.Linear(x, "classifier.2", NumClasses)
	return b.Build()
}
