package models

import (
	"strings"
	"testing"

	"convmeter/internal/graph"
)

// shapeAfter returns the output shape of the last node whose name has the
// given prefix.
func shapeAfter(t *testing.T, g *graph.Graph, prefix string) graph.Shape {
	t.Helper()
	var out graph.Shape
	found := false
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.Name, prefix) {
			out = n.Out
			found = true
		}
	}
	if !found {
		t.Fatalf("no node with prefix %q", prefix)
	}
	return out
}

func TestResNet50StagePlan(t *testing.T) {
	// The canonical ResNet feature-map plan at 224 px:
	// stem 64×56×56 (after pool), layer1 256×56×56, layer2 512×28×28,
	// layer3 1024×14×14, layer4 2048×7×7.
	g, err := Build("resnet50", 224)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]graph.Shape{
		"stem.pool": {C: 64, H: 56, W: 56},
		"layer1":    {C: 256, H: 56, W: 56},
		"layer2":    {C: 512, H: 28, W: 28},
		"layer3":    {C: 1024, H: 14, W: 14},
		"layer4":    {C: 2048, H: 7, W: 7},
	}
	for prefix, shape := range want {
		if got := shapeAfter(t, g, prefix); got != shape {
			t.Errorf("%s: %v, want %v", prefix, got, shape)
		}
	}
}

func TestMobileNetV2StagePlan(t *testing.T) {
	g, err := Build("mobilenet_v2", 224)
	if err != nil {
		t.Fatal(err)
	}
	// Final inverted residual emits 320×7×7; the head expands to 1280.
	if got := shapeAfter(t, g, "features.17"); got != (graph.Shape{C: 320, H: 7, W: 7}) {
		t.Errorf("last block: %v", got)
	}
	if got := shapeAfter(t, g, "head.conv"); got.C != 1280 {
		t.Errorf("head width: %v", got)
	}
}

func TestViTTokenPlan(t *testing.T) {
	g, err := Build("vit_b_16", 224)
	if err != nil {
		t.Fatal(err)
	}
	// 224/16 = 14 → 196 patches + class token.
	if got := shapeAfter(t, g, "encoder.tokens"); got != (graph.Shape{C: 768, H: 197, W: 1}) {
		t.Errorf("token sequence: %v", got)
	}
	if got := shapeAfter(t, g, "encoder.ln"); got != (graph.Shape{C: 768, H: 197, W: 1}) {
		t.Errorf("final LN: %v", got)
	}
}

func TestInceptionMixedWidths(t *testing.T) {
	// The canonical Inception-V3 concat widths at 299 px input.
	g, err := Build("inception_v3", 299)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"Mixed_5b.cat": 256,
		"Mixed_5c.cat": 288,
		"Mixed_6a.cat": 768,
		"Mixed_6e.cat": 768,
		"Mixed_7a.cat": 1280,
		"Mixed_7c.cat": 2048,
	}
	for name, c := range want {
		if got := shapeAfter(t, g, name); got.C != c {
			t.Errorf("%s: %d channels, want %d", name, got.C, c)
		}
	}
	// At the canonical 299 px the mixed blocks run at 35/17/8 px.
	if got := shapeAfter(t, g, "Mixed_5b.cat"); got.H != 35 {
		t.Errorf("Mixed_5b spatial %d, want 35", got.H)
	}
	if got := shapeAfter(t, g, "Mixed_6e.cat"); got.H != 17 {
		t.Errorf("Mixed_6e spatial %d, want 17", got.H)
	}
	if got := shapeAfter(t, g, "Mixed_7c.cat"); got.H != 8 {
		t.Errorf("Mixed_7c spatial %d, want 8", got.H)
	}
}

func TestShuffleNetChannelPlan(t *testing.T) {
	g, err := Build("shufflenet_v2_x1_0", 224)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]graph.Shape{
		"stage2": {C: 116, H: 28, W: 28},
		"stage3": {C: 232, H: 14, W: 14},
		"stage4": {C: 464, H: 7, W: 7},
		"conv5":  {C: 1024, H: 7, W: 7},
	}
	for prefix, shape := range want {
		if got := shapeAfter(t, g, prefix); got != shape {
			t.Errorf("%s: %v, want %v", prefix, got, shape)
		}
	}
}

func TestConvNeXtStagePlan(t *testing.T) {
	g, err := Build("convnext_tiny", 224)
	if err != nil {
		t.Fatal(err)
	}
	// Stem /4, then /2 per downsample: 56, 28, 14, 7 at widths 96..768.
	want := map[string]graph.Shape{
		"features.1": {C: 96, H: 56, W: 56},
		"features.3": {C: 192, H: 28, W: 28},
		"features.5": {C: 384, H: 14, W: 14},
		"features.7": {C: 768, H: 7, W: 7},
	}
	for prefix, shape := range want {
		if got := shapeAfter(t, g, prefix); got != shape {
			t.Errorf("%s: %v, want %v", prefix, got, shape)
		}
	}
}

func TestDepthwiseConvsAreGrouped(t *testing.T) {
	// Every mobile-family depthwise convolution must really be grouped
	// (groups == in-channels) — the property the simulator's efficiency
	// model keys on.
	for _, name := range []string{"mobilenet_v2", "mobilenet_v3_large", "efficientnet_b0", "mnasnet1_0"} {
		g, err := Build(name, 224)
		if err != nil {
			t.Fatal(err)
		}
		dw := 0
		for _, n := range g.Nodes {
			if conv, ok := n.Op.(*graph.Conv2dOp); ok && conv.Groups > 1 {
				if conv.Groups != conv.InC || conv.InC != conv.OutC {
					t.Errorf("%s %s: groups %d, in %d, out %d — not depthwise",
						name, n.Name, conv.Groups, conv.InC, conv.OutC)
				}
				dw++
			}
		}
		if dw < 10 {
			t.Errorf("%s: only %d depthwise convolutions found", name, dw)
		}
	}
}

func TestSqueezeExcitationWiring(t *testing.T) {
	// Every SE gate must be a C×1×1 tensor multiplied into a full map.
	g, err := Build("efficientnet_b0", 224)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, n := range g.Nodes {
		if _, ok := n.Op.(*graph.MulOp); !ok {
			continue
		}
		full := g.Nodes[n.Inputs[0]].Out
		gate := g.Nodes[n.Inputs[1]].Out
		if gate.H != 1 || gate.W != 1 || gate.C != full.C {
			t.Errorf("%s: gate %v vs full %v", n.Name, gate, full)
		}
		seen++
	}
	if seen != 16 { // one SE per MBConv block in B0
		t.Errorf("efficientnet_b0 has %d SE gates, want 16", seen)
	}
}
