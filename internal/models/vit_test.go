package models

import (
	"testing"

	"convmeter/internal/metrics"
)

func TestViTRequiresPatchMultiple(t *testing.T) {
	if _, err := Build("vit_b_16", 224); err != nil {
		t.Fatal(err)
	}
	if _, err := Build("vit_b_16", 100); err == nil {
		t.Fatal("100px is not a multiple of 16, build must fail")
	}
	if _, err := Build("vit_b_32", 96); err != nil {
		t.Fatalf("96px is a multiple of 32: %v", err)
	}
}

func TestViTPosEmbedGrowsWithResolution(t *testing.T) {
	// Flexible-resolution ViT: the position-embedding table (and hence the
	// parameter count) grows with the token count.
	small, err := Build("vit_b_16", 160) // 100 tokens + cls
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build("vit_b_16", 224) // 196 tokens + cls
	if err != nil {
		t.Fatal(err)
	}
	diff := large.TotalParams() - small.TotalParams()
	wantDiff := int64((196 - 100) * 768)
	if diff != wantDiff {
		t.Fatalf("param growth = %d, want %d (96 position rows)", diff, wantDiff)
	}
}

func TestViTStructure(t *testing.T) {
	g, err := Build("vit_b_16", 224)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CountKind("attention"); got != 12 {
		t.Fatalf("attention cores = %d, want 12", got)
	}
	if got := g.CountKind("layernorm"); got != 25 { // 2 per block + final
		t.Fatalf("layernorms = %d, want 25", got)
	}
	if got := g.CountKind("token_linear"); got != 4*12 {
		t.Fatalf("token linears = %d, want 48", got)
	}
	if got := g.CountKind("conv2d"); got != 1 {
		t.Fatalf("convs = %d, want 1 (patch embedding)", got)
	}
}

func TestViTMetricsDominatedByTokenOps(t *testing.T) {
	g, err := Build("vit_b_16", 224)
	if err != nil {
		t.Fatal(err)
	}
	m, err := metrics.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// ViT-B/16 at 224px is ≈17.6 GFLOPs per image (2×8.8 GMACs +
	// attention softmax terms); check the magnitude.
	if m.FLOPs < 30e9 || m.FLOPs > 40e9 {
		t.Fatalf("vit_b_16 FLOPs = %.3g, want ≈35e9 (2 FLOPs/MAC convention)", m.FLOPs)
	}
	// Token ops must dominate the I/O metrics over the single patch conv.
	if m.Inputs < 10*metrics.Count(3*224*224) {
		t.Fatalf("Inputs = %g suspiciously small — token ops not counted?", m.Inputs)
	}
}

func TestViTBigBrotherOrdering(t *testing.T) {
	b16, err := Build("vit_b_16", 224)
	if err != nil {
		t.Fatal(err)
	}
	b32, err := Build("vit_b_32", 224)
	if err != nil {
		t.Fatal(err)
	}
	l16, err := Build("vit_l_16", 224)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer tokens (patch 32) → far fewer FLOPs at nearly equal params.
	if b32.TotalFLOPs() >= b16.TotalFLOPs() {
		t.Fatal("vit_b_32 should be cheaper than vit_b_16")
	}
	if l16.TotalFLOPs() <= b16.TotalFLOPs() || l16.TotalParams() <= b16.TotalParams() {
		t.Fatal("vit_l_16 should dwarf vit_b_16")
	}
}
