package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("shufflenet_v2_x1_0", func(img int) (*graph.Graph, error) {
		return shufflenetV2("shufflenet_v2_x1_0", [3]int{116, 232, 464}, 1024, img)
	})
}

// shuffleBranch is the main ShuffleNet-V2 branch: 1×1 → depthwise 3×3 →
// 1×1, batch-normalised, producing out channels.
func shuffleBranch(b *graph.Builder, x graph.Ref, name string, out, stride int) graph.Ref {
	h := convBNAct(b, x, name+".pw1", graph.ConvSpec{Out: out}, graph.ReLU)
	h = convBN(b, h, name+".dw", graph.ConvSpec{Out: out, KH: 3, StrideH: stride, PadH: 1, Groups: out})
	return convBNAct(b, h, name+".pw2", graph.ConvSpec{Out: out}, graph.ReLU)
}

// shuffleUnit appends a ShuffleNet-V2 unit. Stride 1: channel split, main
// branch on one half, concat, channel shuffle. Stride 2: both branches
// process the full input (the downsampling unit), doubling the width.
func shuffleUnit(b *graph.Builder, x graph.Ref, name string, out, stride int) graph.Ref {
	half := out / 2
	var left, right graph.Ref
	if stride == 1 {
		inC := b.Channels(x)
		left = b.SliceChannels(x, name+".split_l", 0, inC/2)
		rightIn := b.SliceChannels(x, name+".split_r", inC/2, inC)
		right = shuffleBranch(b, rightIn, name+".branch2", half, 1)
	} else {
		l := convBN(b, x, name+".branch1.dw", graph.ConvSpec{Out: b.Channels(x), KH: 3, StrideH: 2, PadH: 1, Groups: b.Channels(x)})
		left = convBNAct(b, l, name+".branch1.pw", graph.ConvSpec{Out: half}, graph.ReLU)
		right = shuffleBranch(b, x, name+".branch2", half, 2)
	}
	cat := b.Concat(name+".cat", left, right)
	return b.ShuffleChannels(cat, name+".shuffle", 2)
}

// shufflenetV2 builds ShuffleNet-V2 (x1.0: 2.28 M parameters), the
// memory-traffic-optimised mobile architecture whose design guidelines
// (minimise memory access cost, not FLOPs) are exactly the phenomenon
// that makes FLOPs-only runtime prediction fail.
func shufflenetV2(name string, stageOut [3]int, lastConv, img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder(name, inputShape(img))
	x = convBNAct(b, x, "conv1", graph.ConvSpec{Out: 24, KH: 3, StrideH: 2, PadH: 1}, graph.ReLU)
	x = b.MaxPool2d(x, "maxpool", 3, 2, 1)
	repeats := [3]int{4, 8, 4}
	for stage := 0; stage < 3; stage++ {
		for i := 0; i < repeats[stage]; i++ {
			stride := 1
			if i == 0 {
				stride = 2
			}
			x = shuffleUnit(b, x, fmt.Sprintf("stage%d.%d", stage+2, i), stageOut[stage], stride)
		}
	}
	x = convBNAct(b, x, "conv5", graph.ConvSpec{Out: lastConv}, graph.ReLU)
	x = classifierHead(b, x, "head", NumClasses)
	return b.Build()
}
