package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("mobilenet_v3_large", func(img int) (*graph.Graph, error) { return mobileNetV3("mobilenet_v3_large", true, img) })
	register("mobilenet_v3_small", func(img int) (*graph.Graph, error) { return mobileNetV3("mobilenet_v3_small", false, img) })
}

// v3Block is one MobileNet-V3 bottleneck row: kernel size, expanded width,
// output channels, squeeze-and-excitation flag, activation, stride.
type v3Block struct {
	k, exp, out int
	se          bool
	act         graph.ActFunc
	stride      int
}

// invertedResidualV3 appends a MobileNet-V3 bottleneck: optional 1×1
// expansion, depthwise k×k, optional SE gate (hard-sigmoid scaling,
// squeeze width rounded to multiples of 8), and a linear projection.
func invertedResidualV3(b *graph.Builder, x graph.Ref, name string, cfg v3Block) graph.Ref {
	inC := b.Channels(x)
	identity := x
	h := x
	if cfg.exp != inC {
		h = convBNAct(b, h, name+".expand", graph.ConvSpec{Out: cfg.exp}, cfg.act)
	}
	h = convBNAct(b, h, name+".dw", graph.ConvSpec{
		Out: cfg.exp, KH: cfg.k, StrideH: cfg.stride, PadH: (cfg.k - 1) / 2, Groups: cfg.exp,
	}, cfg.act)
	if cfg.se {
		h = seBlock(b, h, name+".se", makeDivisible(float64(cfg.exp)/4, 8), graph.HardSigmoid)
	}
	h = convBN(b, h, name+".project", graph.ConvSpec{Out: cfg.out})
	if cfg.stride == 1 && inC == cfg.out {
		return b.Add(name+".add", h, identity)
	}
	return h
}

// mobileNetV3 builds the torchvision MobileNet-V3 Large (5.48 M
// parameters) or Small (2.54 M) variants with hard-swish stem and head.
func mobileNetV3(name string, large bool, img int) (*graph.Graph, error) {
	const (
		re = graph.ReLU
		hs = graph.HardSwish
	)
	var blocks []v3Block
	var lastConv, hiddenFC int
	if large {
		blocks = []v3Block{
			{3, 16, 16, false, re, 1},
			{3, 64, 24, false, re, 2},
			{3, 72, 24, false, re, 1},
			{5, 72, 40, true, re, 2},
			{5, 120, 40, true, re, 1},
			{5, 120, 40, true, re, 1},
			{3, 240, 80, false, hs, 2},
			{3, 200, 80, false, hs, 1},
			{3, 184, 80, false, hs, 1},
			{3, 184, 80, false, hs, 1},
			{3, 480, 112, true, hs, 1},
			{3, 672, 112, true, hs, 1},
			{5, 672, 160, true, hs, 2},
			{5, 960, 160, true, hs, 1},
			{5, 960, 160, true, hs, 1},
		}
		lastConv, hiddenFC = 960, 1280
	} else {
		blocks = []v3Block{
			{3, 16, 16, true, re, 2},
			{3, 72, 24, false, re, 2},
			{3, 88, 24, false, re, 1},
			{5, 96, 40, true, hs, 2},
			{5, 240, 40, true, hs, 1},
			{5, 240, 40, true, hs, 1},
			{5, 120, 48, true, hs, 1},
			{5, 144, 48, true, hs, 1},
			{5, 288, 96, true, hs, 2},
			{5, 576, 96, true, hs, 1},
			{5, 576, 96, true, hs, 1},
		}
		lastConv, hiddenFC = 576, 1024
	}
	b, x := graph.NewBuilder(name, inputShape(img))
	x = convBNAct(b, x, "stem", graph.ConvSpec{Out: 16, KH: 3, StrideH: 2, PadH: 1}, hs)
	for i, blk := range blocks {
		x = invertedResidualV3(b, x, fmt.Sprintf("features.%d", i+1), blk)
	}
	x = convBNAct(b, x, "head.conv", graph.ConvSpec{Out: lastConv}, hs)
	x = b.GlobalAvgPool(x, "head.pool")
	x = b.Flatten(x, "head.flatten")
	x = b.Linear(x, "classifier.0", hiddenFC)
	x = b.Act(x, "classifier.1", hs)
	x = b.Dropout(x, "classifier.2", 0.2)
	x = b.Linear(x, "classifier.3", NumClasses)
	return b.Build()
}
