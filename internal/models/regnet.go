package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("regnet_x_400mf", func(img int) (*graph.Graph, error) {
		return regnet("regnet_x_400mf", regnetCfg{
			depths: [4]int{1, 2, 7, 12}, widths: [4]int{32, 64, 160, 400}, groupWidth: 16,
		}, img)
	})
	register("regnet_x_8gf", func(img int) (*graph.Graph, error) {
		return regnet("regnet_x_8gf", regnetCfg{
			depths: [4]int{2, 5, 15, 1}, widths: [4]int{80, 240, 720, 1920}, groupWidth: 120,
		}, img)
	})
	register("regnet_y_400mf", func(img int) (*graph.Graph, error) {
		return regnet("regnet_y_400mf", regnetCfg{
			depths: [4]int{1, 3, 6, 6}, widths: [4]int{48, 104, 208, 440}, groupWidth: 8, se: true,
		}, img)
	})
	register("regnet_y_8gf", func(img int) (*graph.Graph, error) {
		return regnet("regnet_y_8gf", regnetCfg{
			depths: [4]int{2, 4, 10, 1}, widths: [4]int{224, 448, 896, 2016}, groupWidth: 56, se: true,
		}, img)
	})
}

// regnetCfg describes a RegNet instance: per-stage depths and widths, the
// group width of the 3×3 convolutions, and whether squeeze-and-excitation
// is used (the Y family).
type regnetCfg struct {
	depths     [4]int
	widths     [4]int
	groupWidth int
	se         bool
}

// resBottleneckBlock appends a RegNet residual bottleneck (bottleneck
// multiplier 1.0): 1×1, grouped 3×3 with stride, optional SE, linear 1×1,
// projection shortcut on any shape change.
func resBottleneckBlock(b *graph.Builder, x graph.Ref, name string, out, stride, groupWidth int, se bool) graph.Ref {
	inC := b.Channels(x)
	// torchvision compatibility rule: group width never exceeds the
	// bottleneck width.
	g := groupWidth
	if g > out {
		g = out
	}
	groups := out / g
	identity := x
	h := convBNAct(b, x, name+".a", graph.ConvSpec{Out: out}, graph.ReLU)
	h = convBNAct(b, h, name+".b", graph.ConvSpec{Out: out, KH: 3, StrideH: stride, PadH: 1, Groups: groups}, graph.ReLU)
	if se {
		squeeze := inC / 4
		if squeeze < 1 {
			squeeze = 1
		}
		h = seBlock(b, h, name+".se", squeeze, graph.Sigmoid)
	}
	h = convBN(b, h, name+".c", graph.ConvSpec{Out: out})
	if stride != 1 || inC != out {
		identity = convBN(b, x, name+".proj", graph.ConvSpec{Out: out, StrideH: stride})
	}
	h = b.Add(name+".add", h, identity)
	return b.ReLU(h, name+".out")
}

// regnet assembles the RegNet stem, four downsampling stages, and head
// (X-400MF: 5.50 M parameters; Y-400MF: 4.34 M; X-8GF: 39.6 M).
func regnet(name string, cfg regnetCfg, img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder(name, inputShape(img))
	x = convBNAct(b, x, "stem", graph.ConvSpec{Out: 32, KH: 3, StrideH: 2, PadH: 1}, graph.ReLU)
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < cfg.depths[stage]; blk++ {
			stride := 1
			if blk == 0 {
				stride = 2
			}
			x = resBottleneckBlock(b, x, fmt.Sprintf("trunk.block%d-%d", stage+1, blk),
				cfg.widths[stage], stride, cfg.groupWidth, cfg.se)
		}
	}
	x = classifierHead(b, x, "head", NumClasses)
	return b.Build()
}
