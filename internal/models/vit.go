package models

import (
	"fmt"

	"convmeter/internal/graph"
)

// Vision transformers — the paper's future-work extension. The graphs
// follow torchvision's vit_* implementations (patch-embedding convolution,
// class token + position embeddings, pre-norm encoder blocks with fused
// QKV attention and GELU MLPs); parameter counts are verified against the
// published values in the tests.

func init() {
	register("vit_b_16", func(img int) (*graph.Graph, error) {
		return vit("vit_b_16", vitCfg{patch: 16, dim: 768, depth: 12, heads: 12, mlp: 3072}, img)
	})
	register("vit_b_32", func(img int) (*graph.Graph, error) {
		return vit("vit_b_32", vitCfg{patch: 32, dim: 768, depth: 12, heads: 12, mlp: 3072}, img)
	})
	register("vit_l_16", func(img int) (*graph.Graph, error) {
		return vit("vit_l_16", vitCfg{patch: 16, dim: 1024, depth: 24, heads: 16, mlp: 4096}, img)
	})
}

// vitCfg is a ViT instance: patch size, embedding dim, encoder depth,
// attention heads, and MLP hidden width.
type vitCfg struct {
	patch, dim, depth, heads, mlp int
}

// encoderBlock appends one pre-norm transformer encoder block:
// LN → fused-QKV attention → projection → residual, then
// LN → MLP (GELU) → residual.
func encoderBlock(b *graph.Builder, x graph.Ref, name string, cfg vitCfg) graph.Ref {
	h := b.LayerNorm(x, name+".ln_1")
	h = b.TokenLinear(h, name+".self_attention.qkv", 3*cfg.dim, true)
	h = b.AttentionCore(h, name+".self_attention.core", cfg.dim, cfg.heads)
	h = b.TokenLinear(h, name+".self_attention.out_proj", cfg.dim, true)
	x = b.Add(name+".add_1", x, h)
	h = b.LayerNorm(x, name+".ln_2")
	h = b.TokenLinear(h, name+".mlp.0", cfg.mlp, true)
	h = b.Act(h, name+".mlp.gelu", graph.GELU)
	h = b.TokenLinear(h, name+".mlp.3", cfg.dim, true)
	return b.Add(name+".add_2", x, h)
}

// vit assembles a vision transformer (ViT-B/16: 86.6 M parameters at
// 224 px). The input image edge must be a multiple of the patch size; the
// position-embedding table — and hence the parameter count — grows with
// the token count, as in flexible-resolution ViT implementations.
func vit(name string, cfg vitCfg, img int) (*graph.Graph, error) {
	if img%cfg.patch != 0 {
		return nil, fmt.Errorf("models: %s needs the image size to be a multiple of %d, got %d", name, cfg.patch, img)
	}
	b, x := graph.NewBuilder(name, inputShape(img))
	x = b.Conv2d(x, "conv_proj", graph.ConvSpec{
		Out: cfg.dim, KH: cfg.patch, StrideH: cfg.patch, Bias: true,
	})
	x = b.ToTokens(x, "encoder.tokens")
	for l := 0; l < cfg.depth; l++ {
		x = encoderBlock(b, x, fmt.Sprintf("encoder.layers.%d", l), cfg)
	}
	x = b.LayerNorm(x, "encoder.ln")
	x = b.TakeToken(x, "class_token")
	x = b.Flatten(x, "flatten")
	x = b.Linear(x, "heads.head", NumClasses)
	return b.Build()
}
