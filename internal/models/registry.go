// Package models is the ConvNet zoo: from-scratch computational-graph
// definitions of the architectures the paper benchmarks (AlexNet, VGG,
// ResNet/ResNeXt/Wide-ResNet, SqueezeNet, MobileNet-V2/V3, EfficientNet,
// RegNet, Inception-V3, DenseNet), plus the named constituent blocks used
// for the paper's block-wise prediction experiment (Table 2).
//
// Each constructor takes the input image edge length (images are square
// C=3 tensors, as in the paper's 32–224 px sweeps) and returns a validated
// graph. Architectures follow the torchvision 0.14 reference
// implementations; parameter counts are verified against the published
// values in the tests. One deliberate simplification: pooling uses floor
// (not ceil) rounding for output sizes, which changes some interior
// spatial dimensions of SqueezeNet slightly but no parameter counts.
package models

import (
	"fmt"
	"sort"

	"convmeter/internal/graph"
)

// NumClasses is the classifier width used across the zoo (ImageNet-1k).
const NumClasses = 1000

// BuildFunc constructs a model graph for a given square input image size.
type BuildFunc func(img int) (*graph.Graph, error)

var registry = map[string]BuildFunc{}

// register adds a model constructor to the zoo; it panics on duplicates
// because registration happens from init functions in this package only.
func register(name string, f BuildFunc) {
	if _, dup := registry[name]; dup {
		panic("models: duplicate registration of " + name)
	}
	registry[name] = f
}

// Names returns the registered model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named model for a square img×img input.
// It returns an error for unknown names or image sizes the architecture
// cannot process (e.g. AlexNet below ~63 px).
func Build(name string, img int) (*graph.Graph, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
	if img <= 0 {
		return nil, fmt.Errorf("models: non-positive image size %d", img)
	}
	return f(img)
}

// inputShape is the standard RGB input for a square image.
func inputShape(img int) graph.Shape { return graph.Shape{C: 3, H: img, W: img} }

// makeDivisible rounds v to the nearest multiple of divisor, never going
// below divisor and never dropping more than 10% — the channel-rounding
// rule MobileNet-V3 and EfficientNet inherit from the MobileNet papers.
func makeDivisible(v float64, divisor int) int {
	d := float64(divisor)
	newV := int(v+d/2) / divisor * divisor
	if newV < divisor {
		newV = divisor
	}
	if float64(newV) < 0.9*v {
		newV += divisor
	}
	return newV
}

// convBNAct appends conv → batch norm → activation, the standard modern
// ConvNet building sequence.
func convBNAct(b *graph.Builder, x graph.Ref, name string, spec graph.ConvSpec, fn graph.ActFunc) graph.Ref {
	x = b.Conv2d(x, name+".conv", spec)
	x = b.BatchNorm(x, name+".bn")
	return b.Act(x, name+".act", fn)
}

// convBN appends conv → batch norm without an activation (projection
// shortcuts, inverted-residual linear bottlenecks).
func convBN(b *graph.Builder, x graph.Ref, name string, spec graph.ConvSpec) graph.Ref {
	x = b.Conv2d(x, name+".conv", spec)
	return b.BatchNorm(x, name+".bn")
}

// seBlockAct appends a squeeze-and-excitation gate: global average pool,
// bottleneck 1×1 convolutions (with bias, per torchvision), an inner
// activation between them, and a per-channel multiplicative gate on x.
func seBlockAct(b *graph.Builder, x graph.Ref, name string, squeeze int, innerAct, scaleAct graph.ActFunc) graph.Ref {
	g := b.GlobalAvgPool(x, name+".squeeze")
	g = b.Conv2d(g, name+".fc1", graph.ConvSpec{Out: squeeze, Bias: true})
	g = b.Act(g, name+".fc1act", innerAct)
	g = b.Conv2d(g, name+".fc2", graph.ConvSpec{Out: b.Channels(x), Bias: true})
	g = b.Act(g, name+".gate", scaleAct)
	return b.Mul(name+".scale", x, g)
}

// seBlock is seBlockAct with the common ReLU inner activation.
func seBlock(b *graph.Builder, x graph.Ref, name string, squeeze int, scaleAct graph.ActFunc) graph.Ref {
	return seBlockAct(b, x, name, squeeze, graph.ReLU, scaleAct)
}

// classifierHead appends the common global-pool → flatten → linear head.
func classifierHead(b *graph.Builder, x graph.Ref, name string, classes int) graph.Ref {
	x = b.GlobalAvgPool(x, name+".avgpool")
	x = b.Flatten(x, name+".flatten")
	return b.Linear(x, name+".fc", classes)
}
