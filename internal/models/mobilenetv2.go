package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("mobilenet_v2", MobileNetV2)
}

// invertedResidualV2 appends a MobileNet-V2 inverted residual: optional
// 1×1 expansion, depthwise 3×3, and a linear 1×1 projection, with a
// residual connection when the stride is 1 and channels are preserved.
func invertedResidualV2(b *graph.Builder, x graph.Ref, name string, expand, out, stride int) graph.Ref {
	inC := b.Channels(x)
	hidden := inC * expand
	identity := x
	h := x
	if expand != 1 {
		h = convBNAct(b, h, name+".expand", graph.ConvSpec{Out: hidden}, graph.ReLU6)
	}
	h = convBNAct(b, h, name+".dw", graph.ConvSpec{Out: hidden, KH: 3, StrideH: stride, PadH: 1, Groups: hidden}, graph.ReLU6)
	h = convBN(b, h, name+".project", graph.ConvSpec{Out: out})
	if stride == 1 && inC == out {
		return b.Add(name+".add", h, identity)
	}
	return h
}

// MobileNetV2 builds the torchvision MobileNet-V2 (3.50 M parameters):
// a ReLU6 stem, seven inverted-residual stages, and a 1280-wide head.
func MobileNetV2(img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder("mobilenet_v2", inputShape(img))
	x = convBNAct(b, x, "stem", graph.ConvSpec{Out: 32, KH: 3, StrideH: 2, PadH: 1}, graph.ReLU6)
	// (expansion t, output channels c, repeats n, first stride s)
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, c := range cfg {
		for i := 0; i < c.n; i++ {
			s := 1
			if i == 0 {
				s = c.s
			}
			x = invertedResidualV2(b, x, fmt.Sprintf("features.%d", blk+1), c.t, c.c, s)
			blk++
		}
	}
	x = convBNAct(b, x, "head.conv", graph.ConvSpec{Out: 1280}, graph.ReLU6)
	x = b.GlobalAvgPool(x, "head.pool")
	x = b.Flatten(x, "head.flatten")
	x = b.Dropout(x, "classifier.0", 0.2)
	x = b.Linear(x, "classifier.1", NumClasses)
	return b.Build()
}
