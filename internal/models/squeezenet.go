package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("squeezenet1_0", func(img int) (*graph.Graph, error) { return squeezenet("squeezenet1_0", true, img) })
	register("squeezenet1_1", func(img int) (*graph.Graph, error) { return squeezenet("squeezenet1_1", false, img) })
}

// fire appends a SqueezeNet Fire module: a 1×1 squeeze convolution
// followed by parallel 1×1 and 3×3 expand convolutions whose outputs are
// concatenated. All convolutions are biased (SqueezeNet predates batch
// norm adoption).
func fire(b *graph.Builder, x graph.Ref, name string, squeeze, expand1, expand3 int) graph.Ref {
	s := b.Conv2d(x, name+".squeeze", graph.ConvSpec{Out: squeeze, Bias: true})
	s = b.ReLU(s, name+".squeeze_act")
	e1 := b.Conv2d(s, name+".expand1x1", graph.ConvSpec{Out: expand1, Bias: true})
	e1 = b.ReLU(e1, name+".expand1x1_act")
	e3 := b.Conv2d(s, name+".expand3x3", graph.ConvSpec{Out: expand3, KH: 3, PadH: 1, Bias: true})
	e3 = b.ReLU(e3, name+".expand3x3_act")
	return b.Concat(name+".cat", e1, e3)
}

// squeezenet builds SqueezeNet 1.0 (v10=true) or 1.1. The classifier is a
// 1×1 convolution followed by global average pooling (1.25 M parameters
// for 1.0), torchvision layout.
func squeezenet(name string, v10 bool, img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder(name, inputShape(img))
	type fireCfg struct{ s, e1, e3 int }
	var fires []fireCfg
	var poolAfter map[int]bool // fire index after which a max pool sits
	if v10 {
		x = b.ConvBias(x, "features.0", 96, 7, 2, 0)
		x = b.ReLU(x, "features.1")
		x = b.MaxPool2d(x, "features.2", 3, 2, 0)
		fires = []fireCfg{
			{16, 64, 64}, {16, 64, 64}, {32, 128, 128},
			{32, 128, 128}, {48, 192, 192}, {48, 192, 192}, {64, 256, 256},
			{64, 256, 256},
		}
		poolAfter = map[int]bool{2: true, 6: true}
	} else {
		x = b.ConvBias(x, "features.0", 64, 3, 2, 0)
		x = b.ReLU(x, "features.1")
		x = b.MaxPool2d(x, "features.2", 3, 2, 0)
		fires = []fireCfg{
			{16, 64, 64}, {16, 64, 64},
			{32, 128, 128}, {32, 128, 128},
			{48, 192, 192}, {48, 192, 192}, {64, 256, 256}, {64, 256, 256},
		}
		poolAfter = map[int]bool{1: true, 3: true}
	}
	for i, f := range fires {
		x = fire(b, x, fmt.Sprintf("features.fire%d", i+2), f.s, f.e1, f.e3)
		if poolAfter[i] {
			x = b.MaxPool2d(x, fmt.Sprintf("features.pool%d", i+2), 3, 2, 0)
		}
	}
	x = b.Dropout(x, "classifier.0", 0.5)
	x = b.Conv2d(x, "classifier.1", graph.ConvSpec{Out: NumClasses, Bias: true})
	x = b.ReLU(x, "classifier.2")
	x = b.GlobalAvgPool(x, "classifier.3")
	x = b.Flatten(x, "flatten")
	return b.Build()
}
