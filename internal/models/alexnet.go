package models

import "convmeter/internal/graph"

func init() {
	register("alexnet", AlexNet)
}

// AlexNet builds the torchvision AlexNet: five biased convolutions with
// interleaved max pooling, a 6×6 adaptive pool, and three fully connected
// layers (61.1 M parameters at 1000 classes).
func AlexNet(img int) (*graph.Graph, error) {
	b, x := graph.NewBuilder("alexnet", inputShape(img))
	x = b.ConvBias(x, "features.0", 64, 11, 4, 2)
	x = b.ReLU(x, "features.1")
	x = b.MaxPool2d(x, "features.2", 3, 2, 0)
	x = b.ConvBias(x, "features.3", 192, 5, 1, 2)
	x = b.ReLU(x, "features.4")
	x = b.MaxPool2d(x, "features.5", 3, 2, 0)
	x = b.ConvBias(x, "features.6", 384, 3, 1, 1)
	x = b.ReLU(x, "features.7")
	x = b.ConvBias(x, "features.8", 256, 3, 1, 1)
	x = b.ReLU(x, "features.9")
	x = b.ConvBias(x, "features.10", 256, 3, 1, 1)
	x = b.ReLU(x, "features.11")
	x = b.MaxPool2d(x, "features.12", 3, 2, 0)
	x = b.AdaptiveAvgPool(x, "avgpool", 6)
	x = b.Flatten(x, "flatten")
	x = b.Dropout(x, "classifier.0", 0.5)
	x = b.Linear(x, "classifier.1", 4096)
	x = b.ReLU(x, "classifier.2")
	x = b.Dropout(x, "classifier.3", 0.5)
	x = b.Linear(x, "classifier.4", 4096)
	x = b.ReLU(x, "classifier.5")
	x = b.Linear(x, "classifier.6", NumClasses)
	return b.Build()
}
