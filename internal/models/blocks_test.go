package models

import (
	"testing"

	"convmeter/internal/metrics"
)

func TestBlockRegistryMatchesTable2(t *testing.T) {
	// The nine blocks evaluated in the paper's Table 2.
	want := []string{
		"BasicBlock7", "Bottleneck1", "Bottleneck4", "Bottleneck9",
		"Conv2d_3x3", "InvertedResidual2", "InvertedResidual3",
		"MBConv", "ResBottleneckBlock3",
	}
	got := BlockNames()
	if len(got) != len(want) {
		t.Fatalf("BlockNames = %v, want %d entries", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BlockNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBlocksBuildAtNaturalSize(t *testing.T) {
	for _, name := range BlockNames() {
		info, err := Block(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := BuildBlock(name, info.NaturalHW)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		m, err := metrics.FromGraph(g)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.FLOPs <= 0 || m.Inputs <= 0 || m.Outputs <= 0 {
			t.Errorf("%s: degenerate metrics %+v", name, m)
		}
	}
}

func TestBlocksScaleWithSpatialSize(t *testing.T) {
	for _, name := range BlockNames() {
		info, _ := Block(name)
		small, err := BuildBlock(name, info.NaturalHW)
		if err != nil {
			t.Fatal(err)
		}
		large, err := BuildBlock(name, info.NaturalHW*2)
		if err != nil {
			t.Fatal(err)
		}
		if large.TotalFLOPs() <= small.TotalFLOPs() {
			t.Errorf("%s: FLOPs should grow with spatial size", name)
		}
		if large.TotalParams() != small.TotalParams() {
			t.Errorf("%s: params must not depend on spatial size", name)
		}
	}
}

func TestBlockErrors(t *testing.T) {
	if _, err := Block("NoSuchBlock"); err == nil {
		t.Fatal("expected unknown-block error")
	}
	if _, err := BuildBlock("NoSuchBlock", 14); err == nil {
		t.Fatal("expected unknown-block error")
	}
	if _, err := BuildBlock("Bottleneck4", 0); err == nil {
		t.Fatal("expected non-positive size error")
	}
}

func TestBlockParamsMatchParentModels(t *testing.T) {
	// Spot checks: Bottleneck4 must have the same parameter count as an
	// identity bottleneck in ResNet50's layer2 (planes 128):
	// 1x1 512→128 (65536) + bn 256 + 3x3 128→128 (147456) + bn 256 +
	// 1x1 128→512 (65536) + bn 1024 = 280064.
	g, err := BuildBlock("Bottleneck4", 28)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TotalParams(); got != 280064 {
		t.Errorf("Bottleneck4 params = %d, want 280064", got)
	}
	// BasicBlock7: two 3x3 512→512 convs (2·2359296) + two bns (2·1024).
	g, err = BuildBlock("BasicBlock7", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TotalParams(); got != 2*2359296+2*1024 {
		t.Errorf("BasicBlock7 params = %d", got)
	}
}
