package models

import (
	"fmt"
	"sort"

	"convmeter/internal/graph"
)

// BlockInfo describes a named constituent block used in the paper's
// block-wise prediction experiment (Table 2). Each block is a standalone
// graph whose input matches the block's natural position inside its source
// model at 224×224 input; the spatial size can be varied for sweeps.
type BlockInfo struct {
	Name      string // e.g. "Bottleneck4"
	Source    string // model the block is taken from, e.g. "ResNet50"
	InC       int    // natural input channels
	NaturalHW int    // natural spatial size at 224×224 model input
	build     func(b *graph.Builder, x graph.Ref) graph.Ref
}

// blockRegistry holds the Table 2 blocks keyed by name.
var blockRegistry = map[string]BlockInfo{}

func registerBlock(info BlockInfo) {
	if _, dup := blockRegistry[info.Name]; dup {
		panic("models: duplicate block " + info.Name)
	}
	blockRegistry[info.Name] = info
}

// BlockNames returns the registered block names in sorted order.
func BlockNames() []string {
	out := make([]string, 0, len(blockRegistry))
	for n := range blockRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Block returns the metadata for a named block.
func Block(name string) (BlockInfo, error) {
	info, ok := blockRegistry[name]
	if !ok {
		return BlockInfo{}, fmt.Errorf("models: unknown block %q", name)
	}
	return info, nil
}

// BuildBlock constructs the named block as a standalone graph with an
// hw×hw spatial input (pass info.NaturalHW for the paper's placement).
func BuildBlock(name string, hw int) (*graph.Graph, error) {
	info, ok := blockRegistry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown block %q", name)
	}
	if hw <= 0 {
		return nil, fmt.Errorf("models: non-positive block input size %d", hw)
	}
	b, x := graph.NewBuilder("block."+name, graph.Shape{C: info.InC, H: hw, W: hw})
	info.build(b, x)
	return b.Build()
}

func init() {
	registerBlock(BlockInfo{
		Name: "Bottleneck1", Source: "ResNeXt50-32x4d", InC: 256, NaturalHW: 56,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return bottleneckBlock(b, x, "block", 64, 1, 4, 32)
		},
	})
	registerBlock(BlockInfo{
		Name: "Bottleneck4", Source: "ResNet50", InC: 512, NaturalHW: 28,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return bottleneckBlock(b, x, "block", 128, 1, 64, 1)
		},
	})
	registerBlock(BlockInfo{
		Name: "Conv2d_3x3", Source: "InceptionV3", InC: 32, NaturalHW: 109,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return basicConv(b, x, "block", graph.ConvSpec{Out: 64, KH: 3, PadH: 1})
		},
	})
	registerBlock(BlockInfo{
		Name: "BasicBlock7", Source: "ResNet18", InC: 512, NaturalHW: 7,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return basicBlock(b, x, "block", 512, 1)
		},
	})
	registerBlock(BlockInfo{
		Name: "InvertedResidual2", Source: "MobileNetV3", InC: 24, NaturalHW: 56,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return invertedResidualV3(b, x, "block", v3Block{k: 3, exp: 72, out: 24, se: false, act: graph.ReLU, stride: 1})
		},
	})
	registerBlock(BlockInfo{
		Name: "ResBottleneckBlock3", Source: "RegNet-X-8gf", InC: 240, NaturalHW: 28,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return resBottleneckBlock(b, x, "block", 240, 1, 120, false)
		},
	})
	registerBlock(BlockInfo{
		Name: "Bottleneck9", Source: "Wide-ResNet50", InC: 1024, NaturalHW: 14,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return bottleneckBlock(b, x, "block", 256, 1, 128, 1)
		},
	})
	registerBlock(BlockInfo{
		Name: "MBConv", Source: "EfficientNet-B0", InC: 112, NaturalHW: 14,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return mbConv(b, x, "block", 6, 5, 1, 112)
		},
	})
	registerBlock(BlockInfo{
		Name: "InvertedResidual3", Source: "MobileNetV2", InC: 24, NaturalHW: 56,
		build: func(b *graph.Builder, x graph.Ref) graph.Ref {
			return invertedResidualV2(b, x, "block", 6, 32, 2)
		},
	})
}
