package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("efficientnet_b0", func(img int) (*graph.Graph, error) { return efficientNet("efficientnet_b0", 1.0, 1.0, img) })
	register("efficientnet_b1", func(img int) (*graph.Graph, error) { return efficientNet("efficientnet_b1", 1.0, 1.1, img) })
	register("efficientnet_b2", func(img int) (*graph.Graph, error) { return efficientNet("efficientnet_b2", 1.1, 1.2, img) })
	register("efficientnet_b3", func(img int) (*graph.Graph, error) { return efficientNet("efficientnet_b3", 1.2, 1.4, img) })
}

// mbConv appends an EfficientNet MBConv block: 1×1 expansion (skipped for
// expand ratio 1), depthwise k×k, squeeze-and-excitation with SiLU inner
// activation and sigmoid gate (squeeze width = block input channels / 4),
// and a linear projection; residual when stride 1 and shape preserved.
func mbConv(b *graph.Builder, x graph.Ref, name string, expand, k, stride, out int) graph.Ref {
	inC := b.Channels(x)
	hidden := inC * expand
	identity := x
	h := x
	if hidden != inC {
		h = convBNAct(b, h, name+".expand", graph.ConvSpec{Out: hidden}, graph.SiLU)
	}
	h = convBNAct(b, h, name+".dw", graph.ConvSpec{
		Out: hidden, KH: k, StrideH: stride, PadH: (k - 1) / 2, Groups: hidden,
	}, graph.SiLU)
	squeeze := inC / 4
	if squeeze < 1 {
		squeeze = 1
	}
	h = seBlockAct(b, h, name+".se", squeeze, graph.SiLU, graph.Sigmoid)
	h = convBN(b, h, name+".project", graph.ConvSpec{Out: out})
	if stride == 1 && inC == out {
		return b.Add(name+".add", h, identity)
	}
	return h
}

// ceilMult scales a repeat count by the compound depth multiplier,
// rounding up (the EfficientNet depth-scaling rule).
func ceilMult(n int, mult float64) int {
	v := float64(n) * mult
	c := int(v)
	if float64(c) < v {
		c++
	}
	return c
}

// efficientNet builds an EfficientNet via the compound-scaling rule:
// channel widths scale by widthMult (rounded to multiples of 8), repeats
// by depthMult (rounded up). B0: 5.29 M parameters; B1: depth 1.1;
// B2: width 1.1 / depth 1.2; B3: width 1.2 / depth 1.4.
func efficientNet(name string, widthMult, depthMult float64, img int) (*graph.Graph, error) {
	width := func(c int) int {
		//lint:ignore floatcmp widthMult is a literal from the registry (1.0, 1.1, …); exact match on the B0 sentinel is intended
		if widthMult == 1.0 {
			return c
		}
		return makeDivisible(float64(c)*widthMult, 8)
	}
	b, x := graph.NewBuilder(name, inputShape(img))
	x = convBNAct(b, x, "stem", graph.ConvSpec{Out: width(32), KH: 3, StrideH: 2, PadH: 1}, graph.SiLU)
	// (expand ratio, kernel, first stride, output channels, base repeats)
	cfg := []struct{ t, k, s, c, n int }{
		{1, 3, 1, 16, 1},
		{6, 3, 2, 24, 2},
		{6, 5, 2, 40, 2},
		{6, 3, 2, 80, 3},
		{6, 5, 1, 112, 3},
		{6, 5, 2, 192, 4},
		{6, 3, 1, 320, 1},
	}
	blk := 0
	for _, c := range cfg {
		repeats := ceilMult(c.n, depthMult)
		for i := 0; i < repeats; i++ {
			s := 1
			if i == 0 {
				s = c.s
			}
			x = mbConv(b, x, fmt.Sprintf("features.%d", blk+1), c.t, c.k, s, width(c.c))
			blk++
		}
	}
	x = convBNAct(b, x, "head.conv", graph.ConvSpec{Out: 4 * width(320)}, graph.SiLU)
	x = b.GlobalAvgPool(x, "head.pool")
	x = b.Flatten(x, "head.flatten")
	x = b.Dropout(x, "classifier.0", 0.2)
	x = b.Linear(x, "classifier.1", NumClasses)
	return b.Build()
}
