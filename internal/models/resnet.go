package models

import (
	"fmt"

	"convmeter/internal/graph"
)

func init() {
	register("resnet18", func(img int) (*graph.Graph, error) {
		return resnet("resnet18", resnetCfg{layers: [4]int{2, 2, 2, 2}, basic: true}, img)
	})
	register("resnet34", func(img int) (*graph.Graph, error) {
		return resnet("resnet34", resnetCfg{layers: [4]int{3, 4, 6, 3}, basic: true}, img)
	})
	register("resnet50", func(img int) (*graph.Graph, error) {
		return resnet("resnet50", resnetCfg{layers: [4]int{3, 4, 6, 3}, baseWidth: 64}, img)
	})
	register("resnet101", func(img int) (*graph.Graph, error) {
		return resnet("resnet101", resnetCfg{layers: [4]int{3, 4, 23, 3}, baseWidth: 64}, img)
	})
	register("resnet152", func(img int) (*graph.Graph, error) {
		return resnet("resnet152", resnetCfg{layers: [4]int{3, 8, 36, 3}, baseWidth: 64}, img)
	})
	register("wide_resnet50_2", func(img int) (*graph.Graph, error) {
		return resnet("wide_resnet50_2", resnetCfg{layers: [4]int{3, 4, 6, 3}, baseWidth: 128}, img)
	})
	register("wide_resnet101_2", func(img int) (*graph.Graph, error) {
		return resnet("wide_resnet101_2", resnetCfg{layers: [4]int{3, 4, 23, 3}, baseWidth: 128}, img)
	})
	register("resnext101_64x4d", func(img int) (*graph.Graph, error) {
		return resnet("resnext101_64x4d", resnetCfg{layers: [4]int{3, 4, 23, 3}, baseWidth: 4, groups: 64}, img)
	})
	register("resnext50_32x4d", func(img int) (*graph.Graph, error) {
		return resnet("resnext50_32x4d", resnetCfg{layers: [4]int{3, 4, 6, 3}, baseWidth: 4, groups: 32}, img)
	})
	register("resnext101_32x8d", func(img int) (*graph.Graph, error) {
		return resnet("resnext101_32x8d", resnetCfg{layers: [4]int{3, 4, 23, 3}, baseWidth: 8, groups: 32}, img)
	})
}

// resnetCfg selects the residual family variant: BasicBlock vs Bottleneck,
// the per-stage block counts, and the ResNeXt/Wide-ResNet width rules.
type resnetCfg struct {
	layers    [4]int
	basic     bool // BasicBlock (ResNet-18/34) instead of Bottleneck
	baseWidth int  // 64 plain, 128 wide, 4/8 for ResNeXt
	groups    int  // 1 plain/wide, 32 for ResNeXt
}

const bottleneckExpansion = 4

// basicBlock appends a ResNet BasicBlock (two 3×3 convolutions) with an
// optional projection shortcut.
func basicBlock(b *graph.Builder, x graph.Ref, name string, planes, stride int) graph.Ref {
	identity := x
	out := convBNAct(b, x, name+".1", graph.ConvSpec{Out: planes, KH: 3, StrideH: stride, PadH: 1}, graph.ReLU)
	out = convBN(b, out, name+".2", graph.ConvSpec{Out: planes, KH: 3, PadH: 1})
	if stride != 1 || b.Channels(x) != planes {
		identity = convBN(b, x, name+".downsample", graph.ConvSpec{Out: planes, StrideH: stride})
	}
	out = b.Add(name+".add", out, identity)
	return b.ReLU(out, name+".out")
}

// bottleneckBlock appends a ResNet Bottleneck (1×1 reduce, 3×3 grouped,
// 1×1 expand ×4) with an optional projection shortcut. The width rule
// width = planes · baseWidth/64 · groups covers plain ResNet
// (baseWidth 64), Wide-ResNet (128) and ResNeXt (4 or 8 with 32 groups).
func bottleneckBlock(b *graph.Builder, x graph.Ref, name string, planes, stride, baseWidth, groups int) graph.Ref {
	width := planes * baseWidth / 64 * groups
	outC := planes * bottleneckExpansion
	identity := x
	out := convBNAct(b, x, name+".1", graph.ConvSpec{Out: width}, graph.ReLU)
	out = convBNAct(b, out, name+".2", graph.ConvSpec{Out: width, KH: 3, StrideH: stride, PadH: 1, Groups: groups}, graph.ReLU)
	out = convBN(b, out, name+".3", graph.ConvSpec{Out: outC})
	if stride != 1 || b.Channels(x) != outC {
		identity = convBN(b, x, name+".downsample", graph.ConvSpec{Out: outC, StrideH: stride})
	}
	out = b.Add(name+".add", out, identity)
	return b.ReLU(out, name+".out")
}

// resnet assembles the stem, four residual stages, and classifier head.
func resnet(name string, cfg resnetCfg, img int) (*graph.Graph, error) {
	if cfg.groups == 0 {
		cfg.groups = 1
	}
	b, x := graph.NewBuilder(name, inputShape(img))
	x = convBNAct(b, x, "stem", graph.ConvSpec{Out: 64, KH: 7, StrideH: 2, PadH: 3}, graph.ReLU)
	x = b.MaxPool2d(x, "stem.pool", 3, 2, 1)
	planes := 64
	for stage := 0; stage < 4; stage++ {
		stride := 2
		if stage == 0 {
			stride = 1
		}
		for blk := 0; blk < cfg.layers[stage]; blk++ {
			s := 1
			if blk == 0 {
				s = stride
			}
			blockName := fmt.Sprintf("layer%d.%d", stage+1, blk)
			if cfg.basic {
				x = basicBlock(b, x, blockName, planes, s)
			} else {
				x = bottleneckBlock(b, x, blockName, planes, s, cfg.baseWidth, cfg.groups)
			}
		}
		planes *= 2
	}
	x = classifierHead(b, x, "head", NumClasses)
	return b.Build()
}
