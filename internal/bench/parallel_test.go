package bench

import (
	"errors"
	"sync/atomic"
	"testing"

	"convmeter/internal/hwsim"
)

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a := deriveSeed(1, "inference", "resnet18", "64")
	b := deriveSeed(1, "inference", "resnet18", "64")
	if a != b {
		t.Fatal("deriveSeed must be deterministic")
	}
	if a < 0 {
		t.Fatal("derived seed must be non-negative")
	}
	others := []int64{
		deriveSeed(2, "inference", "resnet18", "64"),
		deriveSeed(1, "training", "resnet18", "64"),
		deriveSeed(1, "inference", "resnet50", "64"),
		deriveSeed(1, "inference", "resnet18", "128"),
	}
	for i, o := range others {
		if o == a {
			t.Fatalf("variant %d collided with base seed", i)
		}
	}
	// Concatenation ambiguity must not collide thanks to separators.
	if deriveSeed(1, "ab", "c") == deriveSeed(1, "a", "bc") {
		t.Fatal("part-boundary collision")
	}
}

func TestRunParallelExecutesAllTasks(t *testing.T) {
	var count int64
	hits := make([]int64, 100)
	err := runParallel(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d tasks, want 100", count)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	wantErr := errors.New("boom")
	err := runParallel(50, func(i int) error {
		if i == 17 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestRunParallelZeroTasks(t *testing.T) {
	if err := runParallel(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("zero tasks must be a no-op")
	}
}

func TestParallelSweepBitIdenticalToItself(t *testing.T) {
	// The worker pool must not perturb results: two runs of the same
	// scenario are byte-identical regardless of scheduling.
	sc := InferenceScenario{
		Device:     hwsim.A100(),
		Models:     PaperModels()[:6],
		Images:     []int{64, 128},
		Batches:    []int{1, 8, 64},
		NoiseSigma: 0.08,
		Seed:       99,
	}
	a, err := CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between runs", i)
		}
	}
}

func TestParallelTrainingDeterministic(t *testing.T) {
	sc := DefaultDistributedScenario(7)
	sc.Models = sc.Models[:4]
	sc.Images = []int{64}
	sc.Batches = []int{16}
	a, err := CollectTraining(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectTraining(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training sample %d differs between runs", i)
		}
	}
}

func TestParallelBlocksDeterministic(t *testing.T) {
	sc := DefaultBlockScenario(11)
	sc.Batches = []int{1, 16}
	a, err := CollectBlocks(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectBlocks(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("block sample %d differs between runs", i)
		}
	}
}
