package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"convmeter/internal/core"
	"convmeter/internal/metrics"
	"convmeter/internal/obs"
)

// csvHeader is the dataset column layout.
var csvHeader = []string{
	"model", "image", "batch", "devices", "nodes",
	"flops", "inputs", "outputs", "weights", "layers",
	"fwd_s", "bwd_s", "grad_s",
}

// csvTelemetry records one CSV operation — row count and duration — on
// the bundle's registry. A nil Obs records nothing.
func csvTelemetry(o *obs.Obs, op string, rows int, elapsed time.Duration) {
	if o == nil {
		return
	}
	o.Counter(obs.Label("convmeter_bench_csv_rows_total", "op", op),
		"dataset rows moved through CSV serialisation, by direction").Add(float64(rows))
	o.Histogram(obs.Label("convmeter_bench_csv_seconds", "op", op),
		"CSV read/write latency", obs.DefaultDurationBuckets()).Observe(elapsed.Seconds())
}

// WriteCSV serialises samples (with their metrics) so datasets can be
// stored and refitted without re-running the simulators.
func WriteCSV(w io.Writer, samples []core.Sample) error {
	return WriteCSVObs(w, samples, nil)
}

// WriteCSVObs is WriteCSV with I/O telemetry on the bundle.
func WriteCSVObs(w io.Writer, samples []core.Sample, o *obs.Obs) error {
	t0 := time.Now()
	err := writeCSV(w, samples)
	if err == nil {
		csvTelemetry(o, "write", len(samples), time.Since(t0))
	}
	return err
}

func writeCSV(w io.Writer, samples []core.Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
	for _, s := range samples {
		rec := []string{
			s.Model,
			strconv.Itoa(s.Image),
			strconv.Itoa(s.BatchPerDevice),
			strconv.Itoa(s.Devices),
			strconv.Itoa(s.Nodes),
			f(float64(s.Met.FLOPs)), f(float64(s.Met.Inputs)), f(float64(s.Met.Outputs)), f(float64(s.Met.Weights)), f(float64(s.Met.Layers)),
			f(float64(s.Fwd)), f(float64(s.Bwd)), f(float64(s.Grad)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) ([]core.Sample, error) {
	return ReadCSVObs(r, nil)
}

// ReadCSVObs is ReadCSV with I/O telemetry on the bundle.
func ReadCSVObs(r io.Reader, o *obs.Obs) ([]core.Sample, error) {
	t0 := time.Now()
	out, err := readCSV(r)
	if err == nil {
		csvTelemetry(o, "read", len(out), time.Since(t0))
	}
	return out, err
}

func readCSV(r io.Reader) ([]core.Sample, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("bench: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty csv")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("bench: csv has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, h := range csvHeader {
		if rows[0][i] != h {
			return nil, fmt.Errorf("bench: csv column %d is %q, want %q", i, rows[0][i], h)
		}
	}
	var out []core.Sample
	for ln, rec := range rows[1:] {
		ints := make([]int, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(rec[1+i])
			if err != nil {
				return nil, fmt.Errorf("bench: csv line %d col %d: %w", ln+2, 2+i, err)
			}
			if v <= 0 {
				return nil, fmt.Errorf("bench: csv line %d col %d: %s must be positive, got %d", ln+2, 2+i, csvHeader[1+i], v)
			}
			ints[i] = v
		}
		floats := make([]float64, 8)
		for i := 0; i < 8; i++ {
			v, err := strconv.ParseFloat(rec[5+i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: csv line %d col %d: %w", ln+2, 6+i, err)
			}
			// A NaN or Inf metric poisons every downstream least-squares
			// fit without failing it; reject at the trust boundary.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("bench: csv line %d col %d: non-finite value %q", ln+2, 6+i, rec[5+i])
			}
			floats[i] = v
		}
		out = append(out, core.Sample{
			Model: rec[0],
			Image: ints[0], BatchPerDevice: ints[1], Devices: ints[2], Nodes: ints[3],
			Met: metrics.Metrics{
				Model: rec[0], FLOPs: metrics.FLOPs(floats[0]), Inputs: metrics.Count(floats[1]),
				Outputs: metrics.Count(floats[2]), Weights: metrics.Count(floats[3]), Layers: metrics.Count(floats[4]),
			},
			Fwd: metrics.Seconds(floats[5]), Bwd: metrics.Seconds(floats[6]), Grad: metrics.Seconds(floats[7]),
		})
	}
	return out, nil
}
