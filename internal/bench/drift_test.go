package bench

import (
	"testing"

	"convmeter/internal/core"
	"convmeter/internal/driftwatch"
	"convmeter/internal/metrics"
	"convmeter/internal/regress"
)

// TestFeedDrift: the sweep's pairs land on the stream in sample order,
// and with κ = 1 the stream's window reproduces the offline regress
// metrics over the same pairs.
func TestFeedDrift(t *testing.T) {
	samples := []core.Sample{
		{Model: "a", Fwd: metrics.Seconds(0.010)},
		{Model: "a", Fwd: metrics.Seconds(0.020)},
		{Model: "a", Fwd: metrics.Seconds(0.030)},
		{Model: "a", Fwd: metrics.Seconds(0.045)},
	}
	predict := func(s core.Sample) float64 { return float64(s.Fwd) * 1.1 }
	actual := func(s core.Sample) float64 { return float64(s.Fwd) }

	mon := driftwatch.New(driftwatch.Config{})
	st := mon.Stream("a", "fwd")
	FeedDrift(st, samples, predict, actual)

	snap := st.Snapshot()
	if snap.Pairs != len(samples) || snap.Window.N != len(samples) {
		t.Fatalf("snapshot = %+v, want %d pairs in window", snap, len(samples))
	}
	var pred, act []float64
	for _, s := range samples {
		pred = append(pred, predict(s))
		act = append(act, actual(s))
	}
	want, err := regress.Evaluate(act, pred)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Window.R2 != want.R2 || snap.Window.MAPE != want.MAPE {
		t.Errorf("window %+v differs from offline %+v", snap.Window, want)
	}

	// Disabled monitoring: a nil stream must be a no-op.
	FeedDrift(nil, samples, predict, actual)
}
