package bench

import (
	"bytes"
	"math"
	"testing"

	"convmeter/internal/core"
	"convmeter/internal/metrics"
	"convmeter/internal/obs"
)

// TestCSVRoundTripExact pins bit-exact field-for-field round-tripping
// through WriteCSV/ReadCSV for adversarial float values: FormatFloat with
// 17 significant digits must reproduce every float64 exactly, including
// subnormals, MaxFloat64, and values with no short decimal form.
func TestCSVRoundTripExact(t *testing.T) {
	gnarly := []float64{
		math.Pi,
		1.0 / 3.0,
		0.1, // classic non-representable decimal
		math.MaxFloat64,
		math.SmallestNonzeroFloat64, // subnormal
		1e-300,
		6.02214076e23,
		math.Nextafter(1, 2), // 1 + ulp
	}
	var samples []core.Sample
	for i, v := range gnarly {
		samples = append(samples, core.Sample{
			Model: "gnarly",
			Met: metrics.Metrics{
				Model: "gnarly", FLOPs: metrics.FLOPs(v), Inputs: metrics.Count(v / 7), Outputs: metrics.Count(v / 3),
				Weights: metrics.Count(math.Nextafter(v, 0)), Layers: metrics.Count(i + 1),
			},
			Image: 32 + i, BatchPerDevice: 1 + i, Devices: 1, Nodes: 1,
			Fwd: metrics.Seconds(v), Bwd: metrics.Seconds(v / 2), Grad: metrics.Seconds(v / 4),
		})
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(samples) {
		t.Fatalf("round trip returned %d rows, want %d", len(back), len(samples))
	}
	for i := range samples {
		// Struct equality is the whole point: every field, bit-exact.
		if back[i] != samples[i] {
			t.Errorf("row %d changed:\n  got %+v\n want %+v", i, back[i], samples[i])
		}
	}
}

// TestCSVObsTelemetry verifies the instrumented CSV paths count rows and
// record latency on the registry, and that failures record nothing.
func TestCSVObsTelemetry(t *testing.T) {
	samples := []core.Sample{
		{
			Model: "m",
			Met:   metrics.Metrics{Model: "m", FLOPs: 1, Inputs: 1, Outputs: 1, Weights: 1, Layers: 1},
			Image: 8, BatchPerDevice: 1, Devices: 1, Nodes: 1,
			Fwd: 0.001, Bwd: 0.002, Grad: 0.0005,
		},
		{
			Model: "m2",
			Met:   metrics.Metrics{Model: "m2", FLOPs: 2, Inputs: 2, Outputs: 2, Weights: 2, Layers: 2},
			Image: 16, BatchPerDevice: 2, Devices: 2, Nodes: 1,
			Fwd: 0.003, Bwd: 0.004, Grad: 0.001,
		},
	}
	o := obs.New()
	var buf bytes.Buffer
	if err := WriteCSVObs(&buf, samples, o); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSVObs(&buf, o); err != nil {
		t.Fatal(err)
	}
	wrote := o.Counter(obs.Label("convmeter_bench_csv_rows_total", "op", "write"), "").Value()
	read := o.Counter(obs.Label("convmeter_bench_csv_rows_total", "op", "read"), "").Value()
	if wrote != 2 || read != 2 {
		t.Fatalf("csv row counters write=%g read=%g, want 2 and 2", wrote, read)
	}
	writeH := o.Histogram(obs.Label("convmeter_bench_csv_seconds", "op", "write"), "", obs.DefaultDurationBuckets())
	if writeH.Count() != 1 {
		t.Fatalf("csv write latency observations %d, want 1", writeH.Count())
	}

	// A failed read must not credit the counters.
	if _, err := ReadCSVObs(bytes.NewReader([]byte("bad,header\n")), o); err == nil {
		t.Fatal("expected read error")
	}
	if got := o.Counter(obs.Label("convmeter_bench_csv_rows_total", "op", "read"), "").Value(); got != 2 {
		t.Fatalf("failed read moved the counter to %g", got)
	}
}
