package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the dataset parser against malformed input: it must
// either return an error or a structurally valid sample set — never
// panic. Valid inputs must round-trip.
func FuzzReadCSV(f *testing.F) {
	// Seed with a valid dataset and a few near-misses.
	var buf bytes.Buffer
	sc := quickInference(1)
	sc.Models = []string{"resnet18"}
	sc.Images = []int{64}
	sc.Batches = []int{1, 8}
	samples, err := CollectInference(sc)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteCSV(&buf, samples); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add("")
	f.Add(strings.Join(csvHeader, ",") + "\n")
	f.Add(strings.Replace(valid, "resnet18", "", 1))
	f.Add(strings.Replace(valid, "1", "NaN", 2))
	f.Add("model,extra\nx,y\n")
	// Non-finite fields must be rejected, never parsed into samples.
	f.Add(nonFiniteRow("NaN"))
	f.Add(nonFiniteRow("+Inf"))
	f.Add(nonFiniteRow("-Inf"))
	f.Add(nonFiniteRow("1e999"))

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Everything accepted must be finite: a NaN that slips through
		// here poisons every least-squares fit downstream.
		for i, s := range got {
			for _, v := range []float64{
				float64(s.Met.FLOPs), float64(s.Met.Inputs), float64(s.Met.Outputs), float64(s.Met.Weights), float64(s.Met.Layers),
				float64(s.Fwd), float64(s.Bwd), float64(s.Grad),
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d: accepted non-finite value %v", i, v)
				}
			}
		}
		// Accepted data must survive a write/read cycle unchanged.
		var out bytes.Buffer
		if err := WriteCSV(&out, got); err != nil {
			t.Fatalf("accepted dataset failed to serialise: %v", err)
		}
		back, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip of accepted dataset failed: %v", err)
		}
		if len(back) != len(got) {
			t.Fatalf("round trip changed row count: %d vs %d", len(back), len(got))
		}
	})
}

// nonFiniteRow builds a syntactically valid dataset whose float
// columns hold the given token — ReadCSV must reject it.
func nonFiniteRow(token string) string {
	row := []string{"m", "32", "1", "1", "1"}
	for i := 0; i < 8; i++ {
		row = append(row, token)
	}
	return strings.Join(csvHeader, ",") + "\n" + strings.Join(row, ",") + "\n"
}
