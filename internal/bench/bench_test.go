package bench

import (
	"bytes"
	"strings"
	"testing"

	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/netsim"
)

// quickInference is a reduced sweep for fast tests.
func quickInference(seed int64) InferenceScenario {
	return InferenceScenario{
		Device:     hwsim.A100(),
		Models:     []string{"resnet18", "mobilenet_v2", "alexnet"},
		Images:     []int{64, 128},
		Batches:    []int{1, 8, 64},
		NoiseSigma: 0.05,
		Seed:       seed,
	}
}

func TestCollectInferenceBasic(t *testing.T) {
	samples, err := CollectInference(quickInference(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	seen := map[string]bool{}
	for _, s := range samples {
		if s.Fwd <= 0 {
			t.Fatalf("non-positive measurement: %+v", s)
		}
		if s.Bwd != 0 || s.Grad != 0 {
			t.Fatal("inference samples must not carry training phases")
		}
		if s.Devices != 1 || s.Nodes != 1 {
			t.Fatal("inference runs on a single device")
		}
		seen[s.Model] = true
	}
	// AlexNet cannot build at 64px? (64→ conv11/4 = 15 → pool 7 → ... → pool fails?)
	// Regardless, the two small-image-capable models must be present.
	if !seen["resnet18"] || !seen["mobilenet_v2"] {
		t.Fatalf("expected models missing from sweep: %v", seen)
	}
}

func TestCollectInferenceDeterministic(t *testing.T) {
	a, err := CollectInference(quickInference(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectInference(quickInference(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	c, err := CollectInference(quickInference(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if i < len(c) && a[i].Fwd != c[i].Fwd {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should change the noise draws")
	}
}

func TestCollectInferenceRespectsMemory(t *testing.T) {
	sc := quickInference(1)
	sc.Models = []string{"vgg16"}
	sc.Images = []int{224}
	sc.Batches = []int{1, 1 << 20} // absurd batch must be filtered
	samples, err := CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.BatchPerDevice == 1<<20 {
			t.Fatal("memory-infeasible batch made it into the dataset")
		}
	}
}

func TestCollectInferenceErrors(t *testing.T) {
	if _, err := CollectInference(InferenceScenario{}); err == nil {
		t.Fatal("expected empty-scenario error")
	}
	sc := quickInference(1)
	sc.Models = []string{"alexnet"}
	sc.Images = []int{32} // alexnet cannot build at 32px at all
	if _, err := CollectInference(sc); err == nil {
		t.Fatal("expected error when a model builds at no image size")
	}
}

func TestDefaultScenarioUnderPaperCap(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	sc := DefaultInferenceScenario(hwsim.A100(), 7)
	samples, err := CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 || len(samples) > MaxPointsPerScenario {
		t.Fatalf("default sweep has %d points, want (0, %d]", len(samples), MaxPointsPerScenario)
	}
}

func TestCollectTraining(t *testing.T) {
	sc := TrainingScenario{
		Device:         hwsim.A100(),
		Fabric:         netsim.Cluster(),
		Models:         []string{"resnet18", "resnet50"},
		Images:         []int{64},
		Batches:        []int{8, 32},
		Topologies:     [][2]int{{4, 1}, {8, 2}},
		NoiseSigma:     0.05,
		CommNoiseSigma: 0.15,
		Seed:           3,
	}
	samples, err := CollectTraining(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 1 * 2 * 2 // models × images × batches × topologies
	if len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.Fwd <= 0 || s.Bwd <= 0 || s.Grad <= 0 {
			t.Fatalf("non-positive training phase: %+v", s)
		}
	}
}

func TestCollectTrainingErrors(t *testing.T) {
	if _, err := CollectTraining(TrainingScenario{}); err == nil {
		t.Fatal("expected empty-scenario error")
	}
	sc := DefaultSingleGPUScenario(1)
	sc.Fabric = netsim.Fabric{}
	if _, err := CollectTraining(sc); err == nil {
		t.Fatal("expected invalid-fabric error")
	}
}

func TestCollectBlocks(t *testing.T) {
	sc := DefaultBlockScenario(5)
	sc.Batches = []int{1, 16}
	sc.Scales = []float64{1}
	samples, err := CollectBlocks(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2*len(sc.Blocks)-2 {
		t.Fatalf("unexpectedly few block samples: %d", len(samples))
	}
	names := map[string]bool{}
	for _, s := range samples {
		names[s.Model] = true
	}
	if !names["Bottleneck4"] || !names["MBConv"] {
		t.Fatalf("expected blocks missing: %v", names)
	}
	if _, err := CollectBlocks(BlockScenario{}); err == nil {
		t.Fatal("expected empty-scenario error")
	}
}

func TestCapPoints(t *testing.T) {
	big := make([]core.Sample, 12000)
	for i := range big {
		big[i] = core.Sample{Model: "m", Image: i}
	}
	capped := capPoints(big)
	if len(capped) > MaxPointsPerScenario {
		t.Fatalf("capPoints left %d points", len(capped))
	}
	if len(capped) < MaxPointsPerScenario/2 {
		t.Fatalf("capPoints overshot: %d", len(capped))
	}
	// Decimation must preserve the sweep's ends approximately.
	if capped[0].Image != 0 {
		t.Fatal("capPoints dropped the first point")
	}
	small := []core.Sample{{Model: "x"}}
	if len(capPoints(small)) != 1 {
		t.Fatal("capPoints must not touch small sets")
	}
}

func TestCollectNamed(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns in short mode")
	}
	for _, scenario := range []string{"inference-gpu", "inference-cpu", "train-single", "train-multi", "blocks"} {
		samples, err := CollectNamed(scenario, 1)
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		if len(samples) == 0 || len(samples) > MaxPointsPerScenario {
			t.Fatalf("%s: %d samples", scenario, len(samples))
		}
	}
	if _, err := CollectNamed("warp-field", 1); err == nil {
		t.Fatal("expected unknown-scenario error")
	}
}

func TestSubsampleStratified(t *testing.T) {
	samples, err := CollectInference(quickInference(4))
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]bool{}
	for _, s := range samples {
		models[s.Model] = true
	}
	sub := Subsample(samples, 9, 1)
	if len(sub) != 9 {
		t.Fatalf("got %d samples, want 9", len(sub))
	}
	// Every model must be represented in the stratified draw.
	seen := map[string]int{}
	for _, s := range sub {
		seen[s.Model]++
	}
	for m := range models {
		if seen[m] == 0 {
			t.Fatalf("model %s missing from stratified subsample", m)
		}
	}
	// Determinism.
	again := Subsample(samples, 9, 1)
	for i := range sub {
		if sub[i] != again[i] {
			t.Fatal("subsample not deterministic")
		}
	}
	// Edge cases: n out of range returns the input untouched.
	if got := Subsample(samples, 0, 1); len(got) != len(samples) {
		t.Fatal("n=0 should return all samples")
	}
	if got := Subsample(samples, len(samples)+10, 1); len(got) != len(samples) {
		t.Fatal("oversized n should return all samples")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	samples := []core.Sample{
		{
			Model: "resnet18",
			Met: metrics.Metrics{
				Model: "resnet18", FLOPs: 3.6e9, Inputs: 2.2e6,
				Outputs: 2.4e6, Weights: 1.1e7, Layers: 41,
			},
			Image: 224, BatchPerDevice: 16, Devices: 4, Nodes: 1,
			Fwd: 0.0123, Bwd: 0.025, Grad: 0.004,
		},
		{
			Model: "alexnet",
			Met: metrics.Metrics{
				Model: "alexnet", FLOPs: 1.4e9, Inputs: 5e5,
				Outputs: 6e5, Weights: 6.1e7, Layers: 8,
			},
			Image: 128, BatchPerDevice: 1, Devices: 1, Nodes: 1,
			Fwd: 0.0007,
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(samples) {
		t.Fatalf("round trip lost rows: %d", len(back))
	}
	for i := range samples {
		if back[i] != samples[i] {
			t.Fatalf("row %d changed:\n  got %+v\n want %+v", i, back[i], samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected empty-csv error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("expected column-count error")
	}
	hdr := strings.Join(csvHeader, ",")
	if _, err := ReadCSV(strings.NewReader(hdr + "\nx,not_an_int,1,1,1,1,1,1,1,1,1,1,1\n")); err == nil {
		t.Fatal("expected int parse error")
	}
	if _, err := ReadCSV(strings.NewReader(hdr + "\nx,1,1,1,1,zz,1,1,1,1,1,1,1\n")); err == nil {
		t.Fatal("expected float parse error")
	}
	wrongHdr := strings.Replace(hdr, "model", "nodel", 1)
	if _, err := ReadCSV(strings.NewReader(wrongHdr + "\n")); err == nil {
		t.Fatal("expected header mismatch error")
	}
}

func TestFittedFromCSVDatasetWorks(t *testing.T) {
	// End-to-end: sweep → CSV → reload → fit → predict.
	samples, err := CollectInference(quickInference(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.FitInference(back)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(back[0].Met, float64(back[0].BatchPerDevice))
	if pred <= 0 {
		t.Fatalf("prediction from reloaded dataset = %g", pred)
	}
}
