package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// deriveSeed mixes the scenario seed with a configuration identity so
// that every parallel worker owns an independent, reproducible noise
// stream: the dataset is bit-identical regardless of worker count or
// scheduling order.
func deriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	// hash.Hash.Write is documented never to return an error.
	_, _ = fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(p))
	}
	return int64(h.Sum64() >> 1) // keep it non-negative
}

// runParallel executes n independent tasks over a bounded worker pool and
// returns the first error. Task outputs must be written to pre-allocated
// per-index slots by the closure, keeping assembly order deterministic.
func runParallel(n int, task func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := task(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return first
}
