package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"convmeter/internal/obs"
)

// deriveSeed mixes the scenario seed with a configuration identity so
// that every parallel worker owns an independent, reproducible noise
// stream: the dataset is bit-identical regardless of worker count or
// scheduling order.
func deriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	// hash.Hash.Write is documented never to return an error.
	_, _ = fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(p))
	}
	return int64(h.Sum64() >> 1) // keep it non-negative
}

// runParallel executes n independent tasks over a bounded worker pool and
// returns the first error. Task outputs must be written to pre-allocated
// per-index slots by the closure, keeping assembly order deterministic.
func runParallel(n int, task func(i int) error) error {
	return runParallelObs(n, nil, "", task)
}

// runParallelObs is runParallel with telemetry: per-task durations feed a
// latency histogram and a busy-seconds counter (busy seconds over wall
// clock is the pool's worker utilisation), and the worker count is
// exported as a gauge. A nil Obs adds no work beyond one nil check per
// task.
func runParallelObs(n int, o *obs.Obs, scenario string, task func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		tasksC *obs.Counter
		busyC  *obs.Counter
		taskH  *obs.Histogram
	)
	if o != nil {
		tasksC = o.Counter(obs.Label("convmeter_bench_tasks_total", "scenario", scenario),
			"bench collector tasks executed, by scenario kind")
		busyC = o.Counter(obs.Label("convmeter_bench_busy_seconds_total", "scenario", scenario),
			"summed task wall-clock; divide by elapsed time and workers for pool utilisation")
		taskH = o.Histogram(obs.Label("convmeter_bench_task_seconds", "scenario", scenario),
			"bench collector per-task latency", obs.DefaultDurationBuckets())
		o.Gauge("convmeter_bench_workers", "bench collector worker-pool size").Set(float64(workers))
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var t0 time.Time
				if o != nil {
					t0 = time.Now()
				}
				err := task(i)
				if o != nil {
					d := time.Since(t0).Seconds()
					taskH.Observe(d)
					busyC.Add(d)
					tasksC.Inc()
				}
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return first
}
